// The corpus manager: what the fuzzer keeps and what it mutates next.
//
// Admission is the coverage-guided criterion: an input enters the corpus
// iff its signature sets at least one bit the accumulated map has never
// seen (a new FSM transition, a new invariant class, a new property
// outcome).  Each entry carries an energy — the number of bits it
// contributed when admitted — and seed selection draws entries with
// probability proportional to energy, so inputs that opened new behaviour
// get mutated more.  minimize() is a greedy set cover: it keeps a subset
// of entries whose union still covers every accumulated bit, evicting
// seeds made redundant by later, richer ones.
//
// The corpus has no internal locking.  The engine mutates it only from
// the sequential planning/merge phases of a round (see fuzz/engine.hpp);
// worker threads see it read-only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/signature.hpp"
#include "scenario/dsl.hpp"
#include "util/rng.hpp"

namespace mcan {

struct CorpusEntry {
  ScenarioSpec spec;
  Signature sig;
  std::uint64_t exec_index = 0;  ///< execution that discovered this entry
  int energy = 1;                ///< selection weight (bits contributed)
};

class Corpus {
 public:
  /// Admit `spec` iff `sig` adds at least one new bit.  Returns true on
  /// admission.
  bool admit(const ScenarioSpec& spec, const Signature& sig,
             std::uint64_t exec_index);

  /// Energy-weighted seed selection.  Precondition: !empty().
  [[nodiscard]] const CorpusEntry& select(Rng& rng) const;

  /// Greedy set-cover reduction: drop entries whose signature is covered
  /// by the kept set.  Returns how many entries were evicted.
  int minimize();

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<CorpusEntry>& entries() const {
    return entries_;
  }

  /// Union of every signature ever admitted (survives minimize()).
  [[nodiscard]] const Signature& accumulated() const { return accumulated_; }

  /// Replace the whole corpus state with a checkpointed snapshot: the
  /// entries exactly as they were (energies included) plus the accumulated
  /// map, which may cover bits no surviving entry carries.  Used by the
  /// campaign service's journal resume (serve/backend.cpp).
  void restore(std::vector<CorpusEntry> entries, const Signature& accumulated);

 private:
  std::vector<CorpusEntry> entries_;
  Signature accumulated_;
  long long total_energy_ = 0;
};

/// Write every corpus entry as `<dir>/corpus-NNNN.scn` (dir is created).
/// Returns the number of files written.
int save_corpus(const Corpus& corpus, const std::string& dir);

/// Load every *.scn under `dir` (sorted by name, non-recursive), re-execute
/// each through the oracle and admit it.  Returns the number admitted;
/// unparsable files throw.
int load_corpus_dir(Corpus& corpus, const std::string& dir);

}  // namespace mcan
