#include "fuzz/signature.hpp"

#include <bit>
#include <cstdio>

namespace mcan {

int Signature::merge(const Signature& other) {
  int added = 0;
  for (int i = 0; i < kWords; ++i) {
    const std::uint64_t fresh = other.w_[static_cast<std::size_t>(i)] &
                                ~w_[static_cast<std::size_t>(i)];
    added += std::popcount(fresh);
    w_[static_cast<std::size_t>(i)] |= other.w_[static_cast<std::size_t>(i)];
  }
  return added;
}

bool Signature::contains(const Signature& other) const {
  for (int i = 0; i < kWords; ++i) {
    if (other.w_[static_cast<std::size_t>(i)] &
        ~w_[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

int Signature::new_bits(const Signature& other) const {
  int added = 0;
  for (int i = 0; i < kWords; ++i) {
    added += std::popcount(other.w_[static_cast<std::size_t>(i)] &
                           ~w_[static_cast<std::size_t>(i)]);
  }
  return added;
}

int Signature::popcount() const {
  int n = 0;
  for (const std::uint64_t w : w_) n += std::popcount(w);
  return n;
}

int Signature::fsm_popcount() const {
  int n = 0;
  for (int i = 0; i < kFsmWords; ++i) {
    std::uint64_t w = w_[static_cast<std::size_t>(i)];
    if (i == kFsmWords - 1) {
      // Mask the tail beyond bit kFsmBits (none are ever set, but keep the
      // count definitionally about transition bits).
      const int used = kFsmBits - 64 * (kFsmWords - 1);
      w &= (used == 64) ? ~0ULL : ((1ULL << used) - 1);
    }
    n += std::popcount(w);
  }
  return n;
}

std::string Signature::to_hex() const {
  std::string s;
  char buf[24];
  for (const std::uint64_t w : w_) {
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(w));
    if (!s.empty()) s += '.';
    s += buf;
  }
  return s;
}

bool Signature::from_hex(const std::string& s, Signature& out) {
  Signature parsed;
  std::size_t pos = 0;
  for (int w = 0; w < kWords; ++w) {
    if (w > 0) {
      if (pos >= s.size() || s[pos] != '.') return false;
      ++pos;
    }
    if (pos + 16 > s.size()) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = s[pos++];
      int digit = 0;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        return false;
      }
      v = (v << 4) | static_cast<std::uint64_t>(digit);
    }
    parsed.w_[static_cast<std::size_t>(w)] = v;
  }
  if (pos != s.size()) return false;
  out = parsed;
  return true;
}

}  // namespace mcan
