#include "fuzz/oracle.hpp"

#include <sstream>
#include <utility>

#include "rsm/runner.hpp"

namespace mcan {

const char* fuzz_class_name(FuzzClass c) {
  switch (c) {
    case FuzzClass::Election: return "election";
    case FuzzClass::LogDiverge: return "logdiverge";
    case FuzzClass::StateDiverge: return "statediverge";
    case FuzzClass::RsmStall: return "rsmstall";
    case FuzzClass::AttackSpoof: return "attackspoof";
    case FuzzClass::AttackBusOff: return "attackbusoff";
    case FuzzClass::AttackGlitch: return "attackglitch";
    case FuzzClass::Agreement: return "agreement";
    case FuzzClass::Validity: return "validity";
    case FuzzClass::Duplicate: return "duplicate";
    case FuzzClass::Order: return "order";
    case FuzzClass::NonTriviality: return "nontriviality";
    case FuzzClass::Invariant: return "invariant";
    case FuzzClass::Timeout: return "timeout";
  }
  return "?";
}

std::string fuzz_classes_to_string(std::uint32_t mask) {
  if (mask == 0) return "none";
  std::string s;
  for (int i = 0; i < kFuzzClassCount; ++i) {
    if (!(mask & (1u << i))) continue;
    if (!s.empty()) s += '+';
    s += fuzz_class_name(static_cast<FuzzClass>(i));
  }
  return s;
}

bool parse_fuzz_classes(const std::string& csv, std::uint32_t& mask,
                        std::string& error) {
  mask = 0;
  std::stringstream in(csv);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (tok.empty()) continue;
    if (tok == "none") continue;
    if (tok == "imo") tok = "agreement";    // the paper's name for AB2
    if (tok == "double") tok = "duplicate"; // the DSL's name for AB3
    bool found = false;
    for (int i = 0; i < kFuzzClassCount; ++i) {
      if (tok == fuzz_class_name(static_cast<FuzzClass>(i))) {
        mask |= 1u << i;
        found = true;
        break;
      }
    }
    if (!found) {
      error = "unknown violation class '" + tok +
              "' (want none|election|logdiverge|statediverge|rsmstall|"
              "attackspoof|attackbusoff|attackglitch|agreement|validity|"
              "duplicate|order|nontriviality|invariant|timeout)";
      return false;
    }
  }
  return true;
}

FuzzClass FuzzVerdict::primary() const {
  for (int i = 0; i < kFuzzClassCount; ++i) {
    if (classes & (1u << i)) return static_cast<FuzzClass>(i);
  }
  return FuzzClass::Timeout;
}

FuzzVerdict run_fuzz_case(const ScenarioSpec& spec) {
  FuzzVerdict v;
  DslRunResult run;
  RsmReport rsm;
  const bool has_rsm = spec.rsm.has_value();
  {
    // Capture this thread's FSM transitions for the scope of the run.
    ScopedSignatureSink sink(v.sig);
    if (has_rsm) {
      RsmRunResult rr = run_rsm_scenario(spec);
      run = std::move(rr.base);
      rsm = std::move(rr.rsm);
    } else {
      run = run_scenario(spec);
    }
  }

  if (rsm.election_violations > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::Election);
  }
  if (rsm.log_mismatches > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::LogDiverge);
  }
  if (rsm.state_mismatches > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::StateDiverge);
  }
  if (rsm.liveness_violations > 0 || rsm.stalled_recoveries > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::RsmStall);
  }
  if (run.ab.agreement_violations > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::Agreement);
  }
  // AB1 is only meaningful with a live audience: a lone correct node has
  // nobody to acknowledge its frames, so "its broadcast was never
  // delivered" restates the crash scenario, not a protocol defect.
  if (run.ab.validity_violations > 0 && run.ab.correct_nodes >= 2) {
    v.classes |= fuzz_class_bit(FuzzClass::Validity);
  }
  if (run.ab.duplicate_deliveries > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::Duplicate);
  }
  if (run.ab.order_inversions > 0 || run.ab.fifo_violations > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::Order);
  }
  if (run.ab.nontriviality_violations > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::NonTriviality);
  }
  if (!run.invariants.clean()) {
    v.classes |= fuzz_class_bit(FuzzClass::Invariant);
  }
  if (!run.quiesced) v.classes |= fuzz_class_bit(FuzzClass::Timeout);

  // Attack classes, judged on what the attackers *achieved*, not what was
  // scheduled: a spoof that lands, a victim actually knocked off the bus,
  // and — for the glitcher — targeted flips that broke some other property
  // (a glitch volley that the protocol absorbed is not a finding).
  if (run.attack.spoofed_delivered > 0) {
    v.classes |= fuzz_class_bit(FuzzClass::AttackSpoof);
  }
  if (run.attack.victim_busoff) {
    v.classes |= fuzz_class_bit(FuzzClass::AttackBusOff);
  }
  const std::uint32_t attack_only = fuzz_class_bit(FuzzClass::AttackSpoof) |
                                    fuzz_class_bit(FuzzClass::AttackBusOff);
  if (run.attack.glitch_flips > 0 && (v.classes & ~attack_only) != 0) {
    v.classes |= fuzz_class_bit(FuzzClass::AttackGlitch);
  }

  // Property-outcome features (the non-FSM half of the novelty signal).
  for (int i = 0; i < kFuzzClassCount; ++i) {
    if (v.classes & (1u << i)) {
      v.sig.set_feature(Signature::kClassBase + i);
    }
  }
  for (int r = 0; r < kInvariantRuleCount; ++r) {
    if (run.invariants.count(static_cast<InvariantRule>(r)) > 0) {
      v.sig.set_feature(Signature::kInvariantBase + r);
    }
  }
  bool any = false;
  bool all = true;
  for (int i = 1; i < run.outcome.n_nodes; ++i) {
    const bool got = run.outcome.deliveries[static_cast<std::size_t>(i)] > 0;
    any = any || got;
    all = all && got;
  }
  if (all) v.sig.set_feature(Signature::kDeliveredAll);
  if (!any) v.sig.set_feature(Signature::kDeliveredNone);
  if (any && !all) v.sig.set_feature(Signature::kDeliveredSplit);
  if (run.outcome.tx_attempts > 1) v.sig.set_feature(Signature::kRetransmit);
  if (run.outcome.tx_attempts > 2) {
    v.sig.set_feature(Signature::kMultiRetransmit);
  }
  if (spec.crash) v.sig.set_feature(Signature::kCrashScheduled);
  if (!spec.attacks.empty()) v.sig.set_feature(Signature::kAttackScheduled);
  if (!spec.traffic.empty()) v.sig.set_feature(Signature::kTrafficMix);
  if (!run.quiesced) v.sig.set_feature(Signature::kNotQuiesced);

  if (v.violation()) {
    v.detail = fuzz_classes_to_string(v.classes) + ": " + run.ab.summary();
    if (has_rsm) {
      v.detail += "\nrsm: " + rsm.summary();
      if (!rsm.detail.empty()) v.detail += "\n" + rsm.detail;
    }
    if (run.attack.any_fired()) {
      v.detail += "\nattack: " + run.attack.summary();
    }
    if (!run.invariants.clean()) {
      v.detail += "\n" + run.invariants.summary();
    }
  }
  return v;
}

}  // namespace mcan
