// The fuzzing engine: coverage-guided search over scenario space.
//
// Determinism is the design constraint.  Every campaign is reproducible
// from (seed, max_execs) on any machine with any --jobs value, because
// randomness is never shared between executions: execution i draws all of
// its decisions from its own Rng(seed, i) stream ((seed, seq) PCG32
// streams, util/rng.hpp).  The loop is round-based:
//
//   1. plan   (sequential)  — for each slot of the round, select a parent
//                             from the frozen corpus and mutate it, using
//                             that slot's private stream;
//   2. execute (parallel)   — run every planned input through the oracle;
//                             workers claim slots off an atomic counter
//                             and touch nothing shared but their slot;
//   3. merge  (sequential)  — in slot order: update stats, admit novel
//                             inputs, record findings.
//
// Because the corpus is read-only between plan and merge, thread count
// changes only wall-clock time, never results — asserted by
// tests/determinism_test.cpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracle.hpp"

namespace mcan {

struct FuzzStats {
  std::uint64_t execs = 0;
  std::uint64_t admitted = 0;     ///< inputs that entered the corpus
  std::uint64_t findings = 0;     ///< executions with a non-empty class mask
  std::uint64_t evicted = 0;      ///< entries dropped by periodic minimize()
  std::uint32_t classes_seen = 0; ///< union of fuzz_class_bit() masks
  int corpus_size = 0;
  int signature_bits = 0;  ///< accumulated coverage map popcount
  int fsm_transitions = 0; ///< FSM slice of the accumulated map
  double elapsed_s = 0;    ///< wall clock (informational; not replayed)
};

struct FuzzFinding {
  ScenarioSpec spec;
  FuzzVerdict verdict;
  std::uint64_t exec_index = 0;
};

struct FuzzConfig {
  ProtocolParams protocol;
  int n_nodes = 3;
  std::uint64_t seed = 1;
  std::uint64_t max_execs = 2000;
  double max_time_s = 0;  ///< wall-clock budget; 0 = none.  A time-capped
                          ///< run is reproducible only in what it DID
                          ///< explore: execution i is identical across
                          ///< runs, but where the run stops is not.
  int jobs = 1;           ///< worker threads; 0 = one per hardware thread
  int batch = 64;         ///< executions per round
  FuzzBounds bounds;
  /// Consensus workload: when set, every planned input (seed round
  /// included) carries this rsm directive — re-sanitized against the
  /// mutated node count — so the whole campaign fuzzes the consensus
  /// stack and the four rsm violation classes are live.  The mutator
  /// itself never drops or edits the workload; the disturbance genome is
  /// what evolves.
  std::optional<RsmWorkload> workload;
  std::uint64_t minimize_every = 2048;  ///< corpus minimize period, in execs
  /// Called after each round with a stats snapshot (progress meters).
  std::function<void(const FuzzStats&)> on_round;
  /// Cooperative stop: when set, the campaign finishes the round in flight
  /// and returns the partial (still fully deterministic) result.  Safe to
  /// flip from a signal handler.
  const std::atomic<bool>* stop = nullptr;
};

struct FuzzResult {
  FuzzStats stats;
  Corpus corpus;
  std::vector<FuzzFinding> findings;  ///< raw, un-triaged (see fuzz/triage.hpp)
};

/// Run a campaign.  `seeds` joins the implicit clean seed_scenario() as
/// round zero; all seeds are sanitized into cfg.bounds first.
[[nodiscard]] FuzzResult run_fuzz(const FuzzConfig& cfg,
                                  const std::vector<ScenarioSpec>& seeds = {});

// ---------------------------------------------------------------------------
// Round-stepped campaign: the plan/execute/merge loop as an object.
//
// run_fuzz() is a thin driver over this class; the campaign orchestration
// service (src/serve/) drives the same object with its worker fleet.  The
// contract that makes both produce bit-identical results:
//
//   * plan_round() is sequential and plans the next batch of slots;
//   * execute_slot(i) is pure per slot — it reads the frozen corpus and
//     writes only slot i, so any set of threads may run any subset of
//     slots, in any order, even more than once (idempotent re-execution is
//     what lets a dead worker's shard be requeued without a determinism
//     penalty);
//   * merge_round() is sequential and folds the slots in slot order.
// ---------------------------------------------------------------------------
class FuzzCampaign {
 public:
  explicit FuzzCampaign(const FuzzConfig& cfg,
                        const std::vector<ScenarioSpec>& seeds = {});

  /// Plan the next round; returns the number of slots (0 = campaign over:
  /// budget exhausted, out of time, or cfg.stop raised).  Round zero is
  /// the clean seed scenario plus every constructor-provided seed.
  [[nodiscard]] std::size_t plan_round();

  /// Execute planned slot `i` (thread-safe across distinct — or even
  /// repeated — slot indices; the corpus is frozen during a round).
  void execute_slot(std::size_t i);

  /// Fold the executed round into the campaign state, in slot order.
  void merge_round();

  [[nodiscard]] bool finished() const;
  [[nodiscard]] const FuzzConfig& config() const { return cfg_; }
  [[nodiscard]] const FuzzStats& stats() const { return res_.stats; }
  [[nodiscard]] std::uint64_t exec_index() const { return exec_index_; }
  [[nodiscard]] std::uint64_t next_minimize() const { return next_minimize_; }
  [[nodiscard]] const Corpus& corpus() const { return res_.corpus; }
  [[nodiscard]] const std::vector<FuzzFinding>& findings() const {
    return res_.findings;
  }

  /// Restore a checkpointed campaign (see serve/backend.cpp for the
  /// serialization): the engine continues exactly as if it had just merged
  /// the round that produced the snapshot.
  void restore_state(std::uint64_t exec_index, std::uint64_t next_minimize,
                     const FuzzStats& stats, std::vector<CorpusEntry> corpus,
                     const Signature& accumulated,
                     std::vector<FuzzFinding> findings);

  /// Final stats refresh + move the result out (ends the campaign).
  [[nodiscard]] FuzzResult take_result();

 private:
  struct Slot {
    ScenarioSpec spec;
    FuzzVerdict verdict;  // filled by the execute phase
  };

  void merge_slot(const Slot& s);
  void attach_workload(ScenarioSpec& spec) const;
  void refresh_stats();
  [[nodiscard]] bool out_of_time() const;

  FuzzConfig cfg_;
  std::vector<ScenarioSpec> seeds_;
  FuzzResult res_;
  std::vector<Slot> slots_;
  std::uint64_t exec_index_ = 0;
  std::uint64_t next_minimize_ = 0;
  std::uint64_t rounds_merged_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

/// The campaign stats as a one-line JSON object — the exact shape the
/// mcan-fuzz CLI writes for --stats-json and the serve fuzz backend
/// returns as a job result, so the two can be compared byte-for-byte
/// (modulo the wall-clock "seconds" field).
[[nodiscard]] std::string fuzz_stats_json(const FuzzStats& st,
                                          const ProtocolParams& protocol,
                                          int n_nodes, std::uint64_t seed);

}  // namespace mcan
