// The fuzzing engine: coverage-guided search over scenario space.
//
// Determinism is the design constraint.  Every campaign is reproducible
// from (seed, max_execs) on any machine with any --jobs value, because
// randomness is never shared between executions: execution i draws all of
// its decisions from its own Rng(seed, i) stream ((seed, seq) PCG32
// streams, util/rng.hpp).  The loop is round-based:
//
//   1. plan   (sequential)  — for each slot of the round, select a parent
//                             from the frozen corpus and mutate it, using
//                             that slot's private stream;
//   2. execute (parallel)   — run every planned input through the oracle;
//                             workers claim slots off an atomic counter
//                             and touch nothing shared but their slot;
//   3. merge  (sequential)  — in slot order: update stats, admit novel
//                             inputs, record findings.
//
// Because the corpus is read-only between plan and merge, thread count
// changes only wall-clock time, never results — asserted by
// tests/determinism_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracle.hpp"

namespace mcan {

struct FuzzStats {
  std::uint64_t execs = 0;
  std::uint64_t admitted = 0;     ///< inputs that entered the corpus
  std::uint64_t findings = 0;     ///< executions with a non-empty class mask
  std::uint64_t evicted = 0;      ///< entries dropped by periodic minimize()
  std::uint32_t classes_seen = 0; ///< union of fuzz_class_bit() masks
  int corpus_size = 0;
  int signature_bits = 0;  ///< accumulated coverage map popcount
  int fsm_transitions = 0; ///< FSM slice of the accumulated map
  double elapsed_s = 0;    ///< wall clock (informational; not replayed)
};

struct FuzzFinding {
  ScenarioSpec spec;
  FuzzVerdict verdict;
  std::uint64_t exec_index = 0;
};

struct FuzzConfig {
  ProtocolParams protocol;
  int n_nodes = 3;
  std::uint64_t seed = 1;
  std::uint64_t max_execs = 2000;
  double max_time_s = 0;  ///< wall-clock budget; 0 = none.  A time-capped
                          ///< run is reproducible only in what it DID
                          ///< explore: execution i is identical across
                          ///< runs, but where the run stops is not.
  int jobs = 1;           ///< worker threads; 0 = one per hardware thread
  int batch = 64;         ///< executions per round
  FuzzBounds bounds;
  std::uint64_t minimize_every = 2048;  ///< corpus minimize period, in execs
  /// Called after each round with a stats snapshot (progress meters).
  std::function<void(const FuzzStats&)> on_round;
};

struct FuzzResult {
  FuzzStats stats;
  Corpus corpus;
  std::vector<FuzzFinding> findings;  ///< raw, un-triaged (see fuzz/triage.hpp)
};

/// Run a campaign.  `seeds` joins the implicit clean seed_scenario() as
/// round zero; all seeds are sanitized into cfg.bounds first.
[[nodiscard]] FuzzResult run_fuzz(const FuzzConfig& cfg,
                                  const std::vector<ScenarioSpec>& seeds = {});

}  // namespace mcan
