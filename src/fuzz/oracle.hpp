// The fuzzing oracle: one scenario execution, classified.
//
// Every input runs through run_any_scenario (rsm/runner.hpp) — the same
// engine that replays committed .scn files and that mcan-lint checks —
// with the protocol invariant analyzer attached (InvariantScope) and the
// atomic broadcast properties AB1..AB5 evaluated over tagged delivery
// journals (analysis/properties.hpp).  Scenarios carrying an `rsm`
// workload additionally run the consensus stack and are judged by the
// consensus property checkers (rsm/properties.hpp): election safety, log
// matching, state-machine safety and progress.  The verdict is a bitmask
// of violation classes plus the run's coverage signature, so the engine
// gets its bug-or-not answer and its novelty feedback from a single
// execution.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/signature.hpp"
#include "scenario/dsl.hpp"

namespace mcan {

/// Violation classes, in severity order (primary() picks the first set
/// bit).  The consensus classes lead: an application-level safety break is
/// the end-to-end consequence the link-level classes only foreshadow.
/// Agreement and Validity are the paper's headline wire properties: a
/// MajorCAN_m run within the <= m disturbance envelope must never set
/// either — and with an rsm workload attached, must set none of the four
/// consensus classes either.
enum class FuzzClass : std::uint8_t {
  Election,       ///< two coordinators claimed the same recovery term
  LogDiverge,     ///< two replicas hold different entries at one index
  StateDiverge,   ///< equal applied index, different state digests
  RsmStall,       ///< consensus progress failure: an in-envelope command
                  ///< never committed, or a scheduled recovery never
                  ///< received its snapshot
  AttackSpoof,    ///< a spoofed (never-broadcast) frame was delivered
  AttackBusOff,   ///< an attacker drove a victim controller to bus-off
  AttackGlitch,   ///< targeted glitch flips broke a broadcast property
  Agreement,      ///< AB2: inconsistent message omission
  Validity,       ///< AB1: a correct sender's message was lost everywhere
  Duplicate,      ///< AB3: some node delivered a message twice
  Order,          ///< AB5: two nodes delivered two messages in opposite order
  NonTriviality,  ///< AB4: a delivery that was never broadcast
  Invariant,      ///< bit-level protocol conformance violation
  Timeout,        ///< the bus never quiesced within the step budget
};

inline constexpr int kFuzzClassCount = 14;

[[nodiscard]] const char* fuzz_class_name(FuzzClass c);

[[nodiscard]] constexpr std::uint32_t fuzz_class_bit(FuzzClass c) {
  return 1u << static_cast<int>(c);
}

/// "agreement+duplicate", or "none" for an empty mask.
[[nodiscard]] std::string fuzz_classes_to_string(std::uint32_t mask);

/// Parse a comma-separated class list ("agreement,validity"; "imo" and
/// "double" are accepted as aliases; "none" = empty mask).  Returns false
/// with a message in `error` on an unknown class name.
[[nodiscard]] bool parse_fuzz_classes(const std::string& csv,
                                      std::uint32_t& mask, std::string& error);

struct FuzzVerdict {
  std::uint32_t classes = 0;  ///< fuzz_class_bit() mask
  Signature sig;
  std::string detail;  ///< human-readable account of the violation(s)

  [[nodiscard]] bool violation() const { return classes != 0; }

  /// Most severe class present; meaningless when classes == 0.
  [[nodiscard]] FuzzClass primary() const;
};

/// Execute one input and classify it.  Deterministic: the same spec always
/// yields the same verdict, on any thread, in any build.
[[nodiscard]] FuzzVerdict run_fuzz_case(const ScenarioSpec& spec);

}  // namespace mcan
