// Coverage signatures: the fuzzer's feedback signal.
//
// Each execution of a scenario is summarised as a fixed-size bitmap over
// three feature families:
//
//   * FSM transition bits — which controller state transitions the run
//     fired, captured through the thread-local TransitionSink hook in
//     core/fsm_coverage.hpp (works in every build; the MCAN_FSM_COVERAGE
//     option only gates the separate process-global counters);
//   * invariant-class bits — which protocol invariant rules the run
//     violated (analysis/invariants.hpp), one bit per rule;
//   * property-outcome bits — the shape of the run's result: violation
//     classes, delivery pattern, retransmissions, crash/traffic presence.
//
// The corpus manager admits an input iff its signature contains at least
// one bit the accumulated corpus map has never seen — the classic
// coverage-guided novelty criterion, over protocol-semantic features
// instead of basic blocks.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/fsm_coverage.hpp"

namespace mcan {

class Signature {
 public:
  static constexpr int kFsmBits = kFsmStateCount * kFsmStateCount;  // 225
  static constexpr int kFsmWords = (kFsmBits + 63) / 64;            // 4
  static constexpr int kWords = kFsmWords + 1;  // + one feature word

  // Bits of the feature word (kWords - 1).
  enum Feature : int {
    kDeliveredAll = 0,   ///< every receiver delivered at least once
    kDeliveredNone,      ///< no receiver delivered
    kDeliveredSplit,     ///< some did, some did not
    kRetransmit,         ///< more than one SOF at the transmitter
    kMultiRetransmit,    ///< more than two
    kCrashScheduled,     ///< the scenario crashed a node
    kTrafficMix,         ///< extra frames beyond the probe
    kNotQuiesced,        ///< run hit the step budget
    kAttackScheduled,    ///< the scenario carried attack directives
    kClassBase = 9,      ///< + FuzzClass index (14 classes, fuzz/oracle.hpp)
    kInvariantBase = 23, ///< + InvariantRule index (6 rules)
    kVariantBase = 29,   ///< + Variant index (3 variants)
    kFeatureBits = 32,
  };

  void set_transition(FsmState from, FsmState to) {
    const int bit =
        static_cast<int>(from) * kFsmStateCount + static_cast<int>(to);
    w_[static_cast<std::size_t>(bit >> 6)] |= 1ULL << (bit & 63);
  }

  void set_feature(int bit) { w_[kWords - 1] |= 1ULL << bit; }

  [[nodiscard]] bool feature(int bit) const {
    return (w_[kWords - 1] >> bit) & 1ULL;
  }

  /// OR `other` into this map; returns how many bits were newly set.
  int merge(const Signature& other);

  /// True iff every bit of `other` is already set here.
  [[nodiscard]] bool contains(const Signature& other) const;

  /// Bits `other` would add on top of this map.
  [[nodiscard]] int new_bits(const Signature& other) const;

  [[nodiscard]] int popcount() const;
  [[nodiscard]] int fsm_popcount() const;

  /// Hex dump (one group per word), for stats output and debugging.
  [[nodiscard]] std::string to_hex() const;

  /// Inverse of to_hex(): exact round trip, false on a malformed dump.
  [[nodiscard]] static bool from_hex(const std::string& s, Signature& out);

  [[nodiscard]] bool operator==(const Signature&) const = default;

 private:
  std::array<std::uint64_t, kWords> w_{};
};

/// TransitionSink that sets transition + variant bits in a Signature.
/// Install with ScopedSignatureSink around one scenario execution.
class SignatureSink final : public TransitionSink {
 public:
  explicit SignatureSink(Signature& sig) : sig_(&sig) {}

  void on_transition(Variant v, FsmState from, FsmState to) override {
    sig_->set_transition(from, to);
    sig_->set_feature(Signature::kVariantBase + static_cast<int>(v));
  }

 private:
  Signature* sig_;
};

/// RAII: route this thread's FSM transitions into `sig` for the scope.
class ScopedSignatureSink {
 public:
  explicit ScopedSignatureSink(Signature& sig)
      : sink_(sig), prev_(fsm_coverage::set_thread_sink(&sink_)) {}
  ~ScopedSignatureSink() { fsm_coverage::set_thread_sink(prev_); }

  ScopedSignatureSink(const ScopedSignatureSink&) = delete;
  ScopedSignatureSink& operator=(const ScopedSignatureSink&) = delete;

 private:
  SignatureSink sink_;
  TransitionSink* prev_;
};

}  // namespace mcan
