#include "fuzz/triage.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <tuple>

#include "rsm/runner.hpp"

namespace mcan {

namespace {

bool reproduces(const ScenarioSpec& spec, FuzzClass cls) {
  return (run_fuzz_case(spec).classes & fuzz_class_bit(cls)) != 0;
}

/// Canonical flip order: by node, then addressing form, then position.
std::tuple<NodeId, int, long long, int> flip_rank(const FaultTarget& f) {
  if (f.seg == Seg::Eof && f.index) {
    return {f.node, 0, *f.index, f.frame_index.value_or(0)};
  }
  if (f.eof_rel) return {f.node, 1, *f.eof_rel, f.frame_index.value_or(0)};
  if (f.seg == Seg::Body && f.index) {
    return {f.node, 2, *f.index, f.frame_index.value_or(0)};
  }
  return {f.node, 3, static_cast<long long>(f.at.value_or(0)), 0};
}

bool references_node(const ScenarioSpec& spec, NodeId node) {
  for (const FaultTarget& f : spec.flips) {
    if (f.node == node) return true;
  }
  for (const TrafficFrame& t : spec.traffic) {
    if (t.sender == node) return true;
  }
  for (const AttackSpec& a : spec.attacks) {
    if (a.victim == node || a.attacker == node || a.as == node) return true;
  }
  if (spec.rsm && spec.rsm->crash_node == static_cast<int>(node)) return true;
  return spec.crash && spec.crash->first == node;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string finding_key(const ScenarioSpec& spec, FuzzClass cls) {
  ScenarioSpec canon = spec;
  canon.name.clear();            // presentation, not identity
  canon.expect = Expectation::Any;
  return std::string(fuzz_class_name(cls)) + "\n" + write_scenario(canon);
}

ScenarioSpec minimize_finding(const ScenarioSpec& spec, FuzzClass cls) {
  ScenarioSpec best = spec;
  bool improved = true;
  while (improved) {
    improved = false;

    // Drop each flip in turn (greedy ddmin granule of one).
    for (std::size_t i = 0; i < best.flips.size(); ++i) {
      ScenarioSpec c = best;
      c.flips.erase(c.flips.begin() + static_cast<std::ptrdiff_t>(i));
      if (reproduces(c, cls)) {
        best = std::move(c);
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // Drop each traffic frame.
    for (std::size_t i = 0; i < best.traffic.size(); ++i) {
      ScenarioSpec c = best;
      c.traffic.erase(c.traffic.begin() + static_cast<std::ptrdiff_t>(i));
      if (reproduces(c, cls)) {
        best = std::move(c);
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // Drop each attacker; then shrink the survivors' strength (budget,
    // span, spoof volume) one notch at a time — the reproducer should
    // witness the *minimum* attack that still breaks the property.
    for (std::size_t i = 0; i < best.attacks.size(); ++i) {
      ScenarioSpec c = best;
      c.attacks.erase(c.attacks.begin() + static_cast<std::ptrdiff_t>(i));
      if (reproduces(c, cls)) {
        best = std::move(c);
        improved = true;
        break;
      }
    }
    if (improved) continue;
    for (std::size_t i = 0; i < best.attacks.size() && !improved; ++i) {
      const AttackSpec& a = best.attacks[i];
      ScenarioSpec c = best;
      if (a.kind == AttackKind::Glitch && a.budget > 1) {
        c.attacks[i].budget -= 1;
      } else if (a.kind == AttackKind::Glitch && a.span > 1) {
        c.attacks[i].span -= 1;
      } else if (a.kind == AttackKind::BusOff && a.budget > 33) {
        // 32 corrupted attempts reach TEC 256; below that the victim stays
        // on the bus, so probe just above the threshold first.
        c.attacks[i].budget = 33;
      } else if (a.kind == AttackKind::Spoof && a.count > 1) {
        c.attacks[i].count -= 1;
      } else {
        continue;
      }
      if (reproduces(c, cls)) {
        best = std::move(c);
        improved = true;
      }
    }
    if (improved) continue;

    // Drop the crash.
    if (best.crash) {
      ScenarioSpec c = best;
      c.crash.reset();
      if (reproduces(c, cls)) {
        best = std::move(c);
        improved = true;
        continue;
      }
    }

    // Shrink the consensus workload: fewer commands, smaller payloads,
    // then no host crash/recovery at all.
    if (best.rsm) {
      ScenarioSpec c = best;
      if (c.rsm->commands > 1) {
        c.rsm->commands -= 1;
        if (reproduces(c, cls)) {
          best = std::move(c);
          improved = true;
          continue;
        }
        c = best;
      }
      if (c.rsm->payload > 1) {
        c.rsm->payload -= 1;
        if (reproduces(c, cls)) {
          best = std::move(c);
          improved = true;
          continue;
        }
        c = best;
      }
      if (c.rsm->crash_node >= 0) {
        c.rsm->crash_node = -1;
        c.rsm->crash_t = 0;
        c.rsm->recover_t = 0;
        if (reproduces(c, cls)) {
          best = std::move(c);
          improved = true;
          continue;
        }
      }
    }

    // Shrink the bus while no directive names the removed node.
    if (best.n_nodes > 2 &&
        !references_node(best, static_cast<NodeId>(best.n_nodes - 1))) {
      ScenarioSpec c = best;
      c.n_nodes -= 1;
      if (reproduces(c, cls)) {
        best = std::move(c);
        improved = true;
        continue;
      }
    }

    // Normalize the probe identity towards the committed figures.
    if (best.frame_id != 0x100 || best.frame_dlc != 4) {
      ScenarioSpec c = best;
      c.frame_id = 0x100;
      c.frame_dlc = 4;
      if (reproduces(c, cls)) {
        best = std::move(c);
        improved = true;
        continue;
      }
    }
  }
  // Canonical order; flips are independent match criteria, so reordering
  // cannot change which bits fire.
  std::stable_sort(best.flips.begin(), best.flips.end(),
                   [](const FaultTarget& a, const FaultTarget& b) {
                     return flip_rank(a) < flip_rank(b);
                   });
  return best;
}

std::vector<TriagedFinding> triage_findings(const std::vector<FuzzFinding>& raw) {
  // Pre-dedupe raw genomes so each distinct one is minimized once.
  std::map<std::string, FuzzFinding> unique;
  std::map<std::string, int> counts;
  for (const FuzzFinding& f : raw) {
    const std::string key = finding_key(f.spec, f.verdict.primary());
    counts[key] += 1;
    auto it = unique.find(key);
    if (it == unique.end()) {
      unique.emplace(key, f);
    } else if (f.exec_index < it->second.exec_index) {
      it->second = f;
    }
  }

  // Minimize, then dedupe again: different raw genomes often reduce to the
  // same reproducer.
  std::map<std::string, TriagedFinding> out;
  for (const auto& [raw_key, f] : unique) {
    const FuzzClass cls = f.verdict.primary();
    TriagedFinding t;
    t.spec = minimize_finding(f.spec, cls);
    t.cls = cls;
    t.exec_index = f.exec_index;
    t.raw_count = counts.at(raw_key);
    const std::string key = finding_key(t.spec, cls);
    auto it = out.find(key);
    if (it == out.end()) {
      out.emplace(key, std::move(t));
    } else {
      it->second.raw_count += t.raw_count;
      it->second.exec_index = std::min(it->second.exec_index, t.exec_index);
    }
  }

  std::vector<TriagedFinding> result;
  for (auto& [key, t] : out) {
    // Name the reproducer, pick the strongest expect clause the DSL can
    // verify, and replay-verify through the writer/parser.
    const std::uint64_t h = fnv1a(key);
    char tail[16];
    std::snprintf(tail, sizeof tail, "%012llx",
                  static_cast<unsigned long long>(h & 0xffffffffffffULL));
    t.spec.name = std::string("fuzz-") + fuzz_class_name(t.cls) + "-" + tail;
    t.spec.expect = Expectation::Any;
    const bool rsm_cls = t.cls == FuzzClass::Election ||
                         t.cls == FuzzClass::LogDiverge ||
                         t.cls == FuzzClass::StateDiverge ||
                         t.cls == FuzzClass::RsmStall;
    if (t.cls == FuzzClass::Agreement || (rsm_cls && t.spec.rsm)) {
      // The rsm runner reads `expect imo` as "some consensus property
      // must break" — the strongest clause the DSL can state for a
      // consensus finding.
      ScenarioSpec probe = t.spec;
      probe.expect = Expectation::Imo;
      if (run_any_scenario(probe).expectation_met) {
        t.spec.expect = Expectation::Imo;
      }
    } else if (t.cls == FuzzClass::Duplicate) {
      ScenarioSpec probe = t.spec;
      probe.expect = Expectation::Double;
      if (run_any_scenario(probe).expectation_met) {
        t.spec.expect = Expectation::Double;
      }
    }
    t.verdict = run_fuzz_case(t.spec);
    const ScenarioSpec parsed = parse_scenario(write_scenario(t.spec));
    t.replay_ok = parsed == t.spec &&
                  (run_fuzz_case(parsed).classes & fuzz_class_bit(t.cls)) != 0;
    result.push_back(std::move(t));
  }
  std::sort(result.begin(), result.end(),
            [](const TriagedFinding& a, const TriagedFinding& b) {
              if (a.cls != b.cls) return a.cls < b.cls;
              return a.exec_index < b.exec_index;
            });
  return result;
}

std::string finding_file_name(const TriagedFinding& f) {
  return f.spec.name + ".scn";
}

std::string export_finding(const TriagedFinding& f,
                           const std::string& campaign) {
  ScenarioWriteOptions opts;
  opts.header = {
      "Reproducer exported by mcan-fuzz (" + campaign + ").",
      "class: " + std::string(fuzz_class_name(f.cls)) + " — first seen at "
          "exec " + std::to_string(f.exec_index) + ", " +
          std::to_string(f.raw_count) + " raw finding(s) collapsed here.",
      "Auto-minimized (ddmin) and replay-verified: " +
          std::string(f.replay_ok ? "yes" : "NO — investigate"),
  };
  if (!f.verdict.detail.empty()) {
    opts.header.push_back("oracle: " +
                          f.verdict.detail.substr(0, f.verdict.detail.find('\n')));
  }
  return write_scenario(f.spec, opts);
}

std::vector<TriagedFinding> export_findings(const std::vector<FuzzFinding>& raw,
                                            const std::string& dir,
                                            const std::string& campaign) {
  std::vector<TriagedFinding> triaged = triage_findings(raw);
  if (!triaged.empty()) std::filesystem::create_directories(dir);
  for (const TriagedFinding& t : triaged) {
    std::ofstream out(std::filesystem::path(dir) / finding_file_name(t));
    out << export_finding(t, campaign);
  }
  return triaged;
}

}  // namespace mcan
