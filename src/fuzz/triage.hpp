// The triage pipeline: from raw findings to committed-quality reproducers.
//
// A fuzzing campaign reports every violating execution; most are the same
// bug wearing different genomes.  Triage (1) minimizes each finding with
// a ddmin-style greedy reduction — drop flips, traffic frames and the
// crash, shrink the bus — accepting any step that preserves the finding's
// primary violation class; (2) canonicalizes the survivor (sorted flips)
// and dedupes by (class, canonical genome); (3) replay-verifies each
// reproducer by round-tripping it through the .scn writer/parser and
// re-running the oracle on the parsed spec — what gets written to disk is
// proven to reproduce the bug when read back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/engine.hpp"

namespace mcan {

struct TriagedFinding {
  ScenarioSpec spec;    ///< minimized + canonicalized genome
  FuzzVerdict verdict;  ///< oracle verdict of the minimized genome
  FuzzClass cls{};      ///< the preserved primary class
  std::uint64_t exec_index = 0;  ///< earliest execution showing this bug
  int raw_count = 1;    ///< raw findings collapsed into this reproducer
  bool replay_ok = false;  ///< write -> parse -> run reproduces `cls`
};

/// Canonical dedupe key: class + the genome's canonical .scn text.
[[nodiscard]] std::string finding_key(const ScenarioSpec& spec, FuzzClass cls);

/// ddmin-style greedy minimization to a fixpoint, preserving `cls` among
/// the oracle's classes.  Also canonicalizes (sorts flips).
[[nodiscard]] ScenarioSpec minimize_finding(const ScenarioSpec& spec,
                                            FuzzClass cls);

/// Minimize, dedupe and replay-verify a campaign's raw findings.  Output
/// is sorted by (class severity, discovery order).
[[nodiscard]] std::vector<TriagedFinding> triage_findings(
    const std::vector<FuzzFinding>& raw);

/// Stable reproducer file name: fuzz-<class>-<hash-of-genome>.scn.
[[nodiscard]] std::string finding_file_name(const TriagedFinding& f);

/// Render the reproducer as lint-clean .scn text with a provenance header.
/// `campaign` names the run for the header (e.g. "seed 7, 2000 execs").
[[nodiscard]] std::string export_finding(const TriagedFinding& f,
                                         const std::string& campaign);

/// Triage + write every reproducer into `dir` (created).  Returns the
/// triaged set (file names follow finding_file_name()).
std::vector<TriagedFinding> export_findings(const std::vector<FuzzFinding>& raw,
                                            const std::string& dir,
                                            const std::string& campaign);

}  // namespace mcan
