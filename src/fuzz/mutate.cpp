#include "fuzz/mutate.hpp"

#include <algorithm>
#include <set>

#include "analysis/tagged.hpp"
#include "frame/encoder.hpp"
#include "scenario/exhaustive.hpp"

namespace mcan {

int fuzz_window_hi(const ProtocolParams& p) {
  ExhaustiveConfig cfg;
  cfg.protocol = p;
  return cfg.window_hi();
}

int fuzz_body_bits(const ScenarioSpec& spec) {
  const Frame probe =
      make_tagged_frame(spec.frame_id, MsgKind::Data, MessageKey{0, 1},
                        std::max<std::uint8_t>(4, spec.frame_dlc));
  return wire_length(probe, spec.protocol.eof_bits()) -
         spec.protocol.eof_bits();
}

ScenarioSpec seed_scenario(const ProtocolParams& p, int n_nodes) {
  ScenarioSpec spec;
  spec.name = "fuzz-seed";
  spec.protocol = p;
  spec.n_nodes = n_nodes;
  spec.frame_id = 0x100;
  spec.frame_dlc = 4;
  spec.expect = Expectation::Any;
  return spec;
}

namespace {

int clampi(int v, int lo, int hi) { return std::max(lo, std::min(hi, v)); }

/// Clamp one flip into a canonical, writer-representable form.
void sanitize_flip(FaultTarget& f, const ScenarioSpec& spec,
                   const FuzzBounds& b) {
  f.node = f.node % static_cast<NodeId>(spec.n_nodes);
  f.count = 1;  // the .scn writer has no count syntax; keep genomes exact
  const int hi = fuzz_window_hi(spec.protocol);
  bool timed = false;
  if (f.seg == Seg::Eof && f.index) {
    f.eof_rel.reset();
    f.at.reset();
    f.index = clampi(*f.index, 0, spec.protocol.eof_bits() - 1);
  } else if (f.eof_rel) {
    f.seg.reset();
    f.index.reset();
    f.at.reset();
    f.eof_rel = clampi(*f.eof_rel, b.win_lo, hi);
  } else if (f.seg == Seg::Body && f.index) {
    f.at.reset();
    if (b.allow_body) {
      f.index = clampi(*f.index, 0, fuzz_body_bits(spec) - 1);
      f.frame_index = 0;  // body bits address the probe frame only
    } else {  // rewrite into the EOF-relative window
      f.seg.reset();
      f.index.reset();
      f.eof_rel = hi;
    }
  } else if (f.at) {
    f.seg.reset();
    f.index.reset();
    f.at = std::max<BitTime>(1, std::min<BitTime>(*f.at, 5000));
    timed = true;
  } else {
    f = FaultTarget::eof_relative(f.node, hi);
  }
  if (timed) {
    f.frame_index.reset();  // the t= form carries no frame index
  } else {
    // Canonical form matches the parser: frame_index engaged, 0 = probe.
    f.frame_index = clampi(f.frame_index.value_or(0), 0,
                           static_cast<int>(spec.traffic.size()));
  }
}

}  // namespace

void sanitize_scenario(ScenarioSpec& spec, const FuzzBounds& b) {
  spec.expect = Expectation::Any;  // the oracle judges, not the DSL clause
  if (spec.name.empty()) spec.name = "fuzz";

  // Canonicalize through the factories: the .scn writer only records
  // (variant, m), so any drifted ablation knob or a stale m on a
  // non-MajorCAN variant would not survive a parse -> write -> parse
  // round trip.
  switch (spec.protocol.variant) {
    case Variant::StandardCan:
      spec.protocol = ProtocolParams::standard_can();
      break;
    case Variant::MinorCan:
      spec.protocol = ProtocolParams::minor_can();
      break;
    case Variant::MajorCan:
      spec.protocol = ProtocolParams::major_can(
          clampi(spec.protocol.m, 3, std::min(b.max_m, kMaxTolerance)));
      break;
  }

  spec.n_nodes = clampi(spec.n_nodes, b.min_nodes, b.max_nodes);
  if (spec.rsm) {
    // The consensus runner's membership bitmap caps the bus at 8; the
    // workload itself re-fits through the same sanitizer every other
    // consumer (runner, serve backend) uses, so no mutated genome can
    // carry an unrunnable workload.
    spec.n_nodes = std::min(spec.n_nodes, 8);
    spec.rsm = sanitize_rsm_workload(*spec.rsm, spec.n_nodes);
  }
  spec.frame_id &= kMaxId;
  spec.frame_dlc = static_cast<std::uint8_t>(
      clampi(spec.frame_dlc, 0, kMaxDataBytes));

  if (!b.allow_traffic) spec.traffic.clear();
  if (static_cast<int>(spec.traffic.size()) > b.max_traffic) {
    spec.traffic.resize(static_cast<std::size_t>(b.max_traffic));
  }
  // Distinct CAN ids: two nodes starting the same id simultaneously is
  // outside the protocol's model (arbitration cannot separate them).
  std::set<std::uint32_t> ids{spec.frame_id};
  for (TrafficFrame& t : spec.traffic) {
    t.sender = t.sender % static_cast<NodeId>(spec.n_nodes);
    t.dlc = static_cast<std::uint8_t>(clampi(t.dlc, 0, kMaxDataBytes));
    t.id &= kMaxId;
    while (!ids.insert(t.id).second) t.id = (t.id + 1) & kMaxId;
  }

  if (static_cast<int>(spec.flips.size()) > b.max_flips) {
    spec.flips.resize(static_cast<std::size_t>(b.max_flips));
  }
  for (FaultTarget& f : spec.flips) sanitize_flip(f, spec, b);

  if (spec.crash) {
    if (!b.allow_crash) {
      spec.crash.reset();
    } else {
      spec.crash->first =
          spec.crash->first % static_cast<NodeId>(spec.n_nodes);
      spec.crash->second =
          std::max<BitTime>(1, std::min<BitTime>(spec.crash->second, 5000));
    }
  }

  if (b.max_attacks <= 0) {
    spec.attacks.clear();
  } else {
    if (static_cast<int>(spec.attacks.size()) > b.max_attacks) {
      spec.attacks.resize(static_cast<std::size_t>(b.max_attacks));
    }
    const int hi = fuzz_window_hi(spec.protocol);
    std::vector<AttackSpec> kept;
    int glitch_total = 0;
    for (AttackSpec a : spec.attacks) {
      if (!b.allow_spoof && a.kind == AttackKind::Spoof) {
        a.kind = AttackKind::Glitch;
      }
      if (!b.allow_busoff && a.kind == AttackKind::BusOff) {
        a.kind = AttackKind::Glitch;
      }
      sanitize_attack(a, spec.n_nodes, b.win_lo, hi);
      if (a.kind == AttackKind::Glitch) {
        // Total glitch strength is capped: that cap is what the CI gates
        // reason about ("clean below budget k"), so no genome may exceed it.
        const int left = b.attack_budget - glitch_total;
        if (left <= 0) continue;
        a.budget = std::min(a.budget, left);
        glitch_total += a.budget;
      }
      kept.push_back(a);
    }
    spec.attacks = std::move(kept);
  }
}

bool scenario_in_bounds(const ScenarioSpec& spec, const FuzzBounds& b) {
  ScenarioSpec copy = spec;
  sanitize_scenario(copy, b);
  copy.expect = spec.expect;
  copy.name = spec.name;
  return copy == spec;
}

namespace {

NodeId pick_node(const ScenarioSpec& spec, Rng& rng) {
  return static_cast<NodeId>(
      rng.next_below(static_cast<std::uint32_t>(spec.n_nodes)));
}

FaultTarget random_flip(const ScenarioSpec& spec, const FuzzBounds& b,
                        Rng& rng) {
  const NodeId node = pick_node(spec, rng);
  const int hi = fuzz_window_hi(spec.protocol);
  const std::uint32_t form = rng.next_below(b.allow_body ? 4 : 3);
  switch (form) {
    case 0: {  // EOF bit of the probe (the figures' vocabulary)
      const int pos = static_cast<int>(rng.next_below(
          static_cast<std::uint32_t>(spec.protocol.eof_bits())));
      return FaultTarget::eof_bit(node, pos);
    }
    case 1:
    case 2: {  // EOF-relative end-game position — the interesting region,
               // so give it double weight
      const int span = hi - b.win_lo + 1;
      const int pos =
          b.win_lo +
          static_cast<int>(rng.next_below(static_cast<std::uint32_t>(span)));
      const int frame = (spec.traffic.empty() || !rng.chance(0.25))
                            ? 0
                            : 1 + static_cast<int>(rng.next_below(
                                      static_cast<std::uint32_t>(
                                          spec.traffic.size())));
      return FaultTarget::eof_relative(node, pos, frame);
    }
    default: {  // body wire bit (stuffing / CRC space)
      const int bits = fuzz_body_bits(spec);
      FaultTarget t;
      t.node = node;
      t.seg = Seg::Body;
      t.index =
          static_cast<int>(rng.next_below(static_cast<std::uint32_t>(bits)));
      return t;
    }
  }
}

AttackSpec random_attack(const ScenarioSpec& spec, const FuzzBounds& b,
                         Rng& rng) {
  AttackSpec a;
  std::vector<AttackKind> kinds{AttackKind::Glitch};
  if (b.allow_busoff) kinds.push_back(AttackKind::BusOff);
  if (b.allow_spoof) kinds.push_back(AttackKind::Spoof);
  a.kind = kinds[rng.next_below(static_cast<std::uint32_t>(kinds.size()))];
  switch (a.kind) {
    case AttackKind::Glitch: {
      a.victim = pick_node(spec, rng);
      const int hi = fuzz_window_hi(spec.protocol);
      a.pos = b.win_lo + static_cast<int>(rng.next_below(
                             static_cast<std::uint32_t>(hi - b.win_lo + 1)));
      a.span = 1 + static_cast<int>(rng.next_below(3));
      a.budget = 1 + static_cast<int>(rng.next_below(static_cast<std::uint32_t>(
                         std::max(1, b.attack_budget))));
      a.frame = rng.chance(0.25) ? -1 : 0;
      a.when = static_cast<GlitchWhen>(rng.next_below(3));
      break;
    }
    case AttackKind::BusOff:
      a.victim = pick_node(spec, rng);
      a.budget = 8 + static_cast<int>(rng.next_below(57));  // 8..64 attempts
      a.start = rng.next_below(400);
      break;
    case AttackKind::Spoof:
      a.attacker = pick_node(spec, rng);
      a.as = pick_node(spec, rng);
      a.seq = 512 + static_cast<int>(rng.next_below(4096));
      a.id = rng.next_below(kMaxId + 1);
      a.count = 1 + static_cast<int>(rng.next_below(4));
      break;
  }
  return a;
}

}  // namespace

ScenarioSpec mutate_scenario(const ScenarioSpec& parent, const FuzzBounds& b,
                             Rng& rng) {
  ScenarioSpec child = parent;
  const int rounds = 1 + static_cast<int>(rng.next_below(3));
  // The case count depends on whether attacks are enabled so that legacy
  // campaigns (max_attacks == 0, the default) replay byte-identically: the
  // rng draw sequence must not change under a knob that is switched off.
  const std::uint32_t n_cases = b.max_attacks > 0 ? 14 : 12;
  for (int round = 0; round < rounds; ++round) {
    switch (rng.next_below(n_cases)) {
      case 0:  // add a flip
        if (static_cast<int>(child.flips.size()) < b.max_flips) {
          child.flips.push_back(random_flip(child, b, rng));
        }
        break;
      case 1:  // drop a flip
        if (!child.flips.empty()) {
          const auto i = rng.next_below(
              static_cast<std::uint32_t>(child.flips.size()));
          child.flips.erase(child.flips.begin() + i);
        }
        break;
      case 2:  // nudge a flip's position
        if (!child.flips.empty()) {
          FaultTarget& f = child.flips[rng.next_below(
              static_cast<std::uint32_t>(child.flips.size()))];
          const int delta = 1 + static_cast<int>(rng.next_below(3));
          const int sign = rng.chance(0.5) ? 1 : -1;
          if (f.eof_rel) {
            *f.eof_rel += sign * delta;
          } else if (f.index) {
            *f.index += sign * delta;
          } else if (f.at) {
            f.at = static_cast<BitTime>(
                std::max<long long>(1, static_cast<long long>(*f.at) +
                                           sign * delta));
          }
        }
        break;
      case 3:  // retarget a flip to another node
        if (!child.flips.empty()) {
          child.flips[rng.next_below(
                          static_cast<std::uint32_t>(child.flips.size()))]
              .node = pick_node(child, rng);
        }
        break;
      case 4:  // mirror a flip onto a second node at the same position —
               // the paper's IMO scenarios are exactly this shape
        if (!child.flips.empty() &&
            static_cast<int>(child.flips.size()) < b.max_flips) {
          FaultTarget copy = child.flips[rng.next_below(
              static_cast<std::uint32_t>(child.flips.size()))];
          copy.node = pick_node(child, rng);
          child.flips.push_back(copy);
        }
        break;
      case 5:  // probe frame identity
        if (rng.chance(0.5)) {
          child.frame_id = rng.next_below(kMaxId + 1);
        } else {
          child.frame_dlc = static_cast<std::uint8_t>(
              rng.next_below(kMaxDataBytes + 1));
        }
        break;
      case 6:  // add a traffic frame
        if (b.allow_traffic &&
            static_cast<int>(child.traffic.size()) < b.max_traffic) {
          child.traffic.push_back(
              {.id = rng.next_below(kMaxId + 1),
               .dlc = static_cast<std::uint8_t>(
                   rng.next_below(kMaxDataBytes + 1)),
               .sender = pick_node(child, rng)});
        }
        break;
      case 7:  // drop or retarget a traffic frame
        if (!child.traffic.empty()) {
          const auto i = rng.next_below(
              static_cast<std::uint32_t>(child.traffic.size()));
          if (rng.chance(0.5)) {
            child.traffic.erase(child.traffic.begin() + i);
          } else {
            child.traffic[i].sender = pick_node(child, rng);
          }
        }
        break;
      case 8:  // grow / shrink the bus
        if (b.mutate_nodes) {
          child.n_nodes += rng.chance(0.5) ? 1 : -1;
        }
        break;
      case 9:  // schedule, move or cancel a crash
        if (b.allow_crash) {
          if (!child.crash) {
            child.crash = {pick_node(child, rng),
                           static_cast<BitTime>(1 + rng.next_below(400))};
          } else if (rng.chance(0.3)) {
            child.crash.reset();
          } else {
            child.crash->second =
                static_cast<BitTime>(1 + rng.next_below(400));
          }
        }
        break;
      case 10:  // protocol drift
        if (b.mutate_protocol) {
          switch (rng.next_below(3)) {
            case 0: child.protocol.variant = Variant::StandardCan; break;
            case 1: child.protocol.variant = Variant::MinorCan; break;
            default:
              child.protocol.variant = Variant::MajorCan;
              child.protocol.m = 3 + static_cast<int>(rng.next_below(
                                         static_cast<std::uint32_t>(
                                             b.max_m - 3 + 1)));
              break;
          }
        }
        break;
      case 12:  // add or drop an attacker
        if (child.attacks.empty() ||
            (static_cast<int>(child.attacks.size()) < b.max_attacks &&
             rng.chance(0.7))) {
          child.attacks.push_back(random_attack(child, b, rng));
        } else {
          const auto i = rng.next_below(
              static_cast<std::uint32_t>(child.attacks.size()));
          child.attacks.erase(child.attacks.begin() + i);
        }
        break;
      case 13:  // perturb an attacker in place
        if (!child.attacks.empty()) {
          AttackSpec& a = child.attacks[rng.next_below(
              static_cast<std::uint32_t>(child.attacks.size()))];
          switch (a.kind) {
            case AttackKind::Glitch:
              switch (rng.next_below(4)) {
                case 0:
                  a.pos += rng.chance(0.5) ? 1 : -1;
                  break;
                case 1:
                  a.span += rng.chance(0.5) ? 1 : -1;
                  break;
                case 2:
                  a.budget += rng.chance(0.5) ? 1 : -1;
                  break;
                default:
                  a.victim = pick_node(child, rng);
                  break;
              }
              break;
            case AttackKind::BusOff:
              if (rng.chance(0.5)) {
                a.victim = pick_node(child, rng);
              } else {
                a.start = rng.next_below(400);
              }
              break;
            case AttackKind::Spoof:
              if (rng.chance(0.5)) {
                a.as = pick_node(child, rng);
              } else {
                a.count = 1 + static_cast<int>(rng.next_below(4));
              }
              break;
          }
        } else if (b.max_attacks > 0) {
          child.attacks.push_back(random_attack(child, b, rng));
        }
        break;
      default:  // re-roll a flip wholesale
        if (!child.flips.empty()) {
          child.flips[rng.next_below(static_cast<std::uint32_t>(
              child.flips.size()))] = random_flip(child, b, rng);
        } else if (static_cast<int>(child.flips.size()) < b.max_flips) {
          child.flips.push_back(random_flip(child, b, rng));
        }
        break;
    }
  }
  sanitize_scenario(child, b);
  return child;
}

}  // namespace mcan
