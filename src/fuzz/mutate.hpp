// The mutation engine: bounded perturbation of scenario genomes.
//
// A fuzz input is a ScenarioSpec (scenario/dsl.hpp) — the same structure
// committed .scn files parse to, so every corpus entry and finding is a
// replayable data file by construction.  Mutators perturb the flip
// pattern (add / drop / move / retarget, EOF-relative end-game positions
// and body wire bits), fault timing, frame identity and payload size, the
// traffic mix, the node count, a scheduled crash, and — when enabled —
// the protocol parameters themselves, always inside
// ProtocolParams::validate() bounds.  sanitize() re-establishes every
// bound after a mutation so any mutated genome is a valid scenario.
#pragma once

#include "scenario/dsl.hpp"
#include "util/rng.hpp"

namespace mcan {

/// Mutation bounds.  The defaults open the whole scenario space the
/// simulator supports; the CLI narrows them (e.g. --envelope caps flips at
/// the protocol's tolerance m, the claim the paper makes).
struct FuzzBounds {
  int min_nodes = 2;
  int max_nodes = 8;
  int max_flips = 8;    ///< flips per input
  int max_traffic = 3;  ///< extra frames per input
  int win_lo = -4;      ///< EOF-relative window low bound (tail of the frame)
  bool allow_body = true;    ///< body wire-bit flips (CRC/stuffing space)
  bool allow_crash = true;   ///< scheduled node crashes
  bool allow_traffic = true; ///< traffic-mix mutations
  int max_attacks = 0;       ///< attack directives per input (0 = off; the
                             ///< default keeps legacy campaigns byte-stable)
  int attack_budget = 4;     ///< total glitch flip budget across attackers
  bool allow_spoof = true;   ///< spoof attackers when attacks are on
  bool allow_busoff = true;  ///< bus-off attackers when attacks are on
  bool mutate_nodes = true;  ///< node-count mutations
  bool mutate_protocol = false;  ///< variant / m drift (off: gates stay
                                 ///< about one protocol)
  int max_m = 7;  ///< MajorCAN tolerance cap under protocol mutation
};

/// Upper EOF-relative flip bound for `p` (the model checker's end-game
/// window: 3m+5 for MajorCAN, EOF + intermission otherwise).
[[nodiscard]] int fuzz_window_hi(const ProtocolParams& p);

/// Wire bits of the probe frame before its EOF (the body-flip range).
[[nodiscard]] int fuzz_body_bits(const ScenarioSpec& spec);

/// The clean starting genome: one probe frame, no disturbances.
[[nodiscard]] ScenarioSpec seed_scenario(const ProtocolParams& p, int n_nodes);

/// Clamp `spec` into `b`'s bounds (node references, window positions,
/// flip/traffic counts, distinct frame ids, valid protocol).
void sanitize_scenario(ScenarioSpec& spec, const FuzzBounds& b);

/// True iff `spec` already satisfies the bounds (corpus-load validation
/// and tests).
[[nodiscard]] bool scenario_in_bounds(const ScenarioSpec& spec,
                                      const FuzzBounds& b);

/// Derive a child genome: 1..3 stacked mutations + sanitize.  Deterministic
/// in (parent, rng state).
[[nodiscard]] ScenarioSpec mutate_scenario(const ScenarioSpec& parent,
                                           const FuzzBounds& b, Rng& rng);

}  // namespace mcan
