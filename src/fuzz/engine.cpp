#include "fuzz/engine.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/text.hpp"

namespace mcan {

FuzzCampaign::FuzzCampaign(const FuzzConfig& cfg,
                           const std::vector<ScenarioSpec>& seeds)
    : cfg_(cfg),
      seeds_(seeds),
      next_minimize_(cfg.minimize_every),
      t0_(std::chrono::steady_clock::now()) {
  // The rsm runner's membership bitmap caps the bus at 8 replicas.
  if (cfg_.workload) {
    cfg_.bounds.max_nodes = std::min(cfg_.bounds.max_nodes, 8);
    cfg_.bounds.min_nodes =
        std::min(cfg_.bounds.min_nodes, cfg_.bounds.max_nodes);
  }
}

bool FuzzCampaign::out_of_time() const {
  if (cfg_.max_time_s <= 0) return false;
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0_;
  return dt.count() >= cfg_.max_time_s;
}

bool FuzzCampaign::finished() const {
  if (rounds_merged_ == 0) return false;  // round zero always runs
  if (cfg_.stop && cfg_.stop->load(std::memory_order_relaxed)) return true;
  return exec_index_ >= cfg_.max_execs || out_of_time();
}

std::size_t FuzzCampaign::plan_round() {
  slots_.clear();
  if (rounds_merged_ == 0) {
    // Round zero: the clean seed plus every caller-provided seed, in
    // order.  Seeds always run (they prime the corpus) even if they
    // overshoot max_execs.
    slots_.push_back({seed_scenario(cfg_.protocol, cfg_.n_nodes), {}});
    for (const ScenarioSpec& s : seeds_) slots_.push_back({s, {}});
    for (Slot& s : slots_) {
      attach_workload(s.spec);
      sanitize_scenario(s.spec, cfg_.bounds);
    }
    return slots_.size();
  }
  if (finished()) return 0;
  // Plan (sequential): each slot draws from its own (seed, exec) stream.
  const std::uint64_t n_slots = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(std::max(1, cfg_.batch)),
      cfg_.max_execs - exec_index_);
  for (std::uint64_t i = 0; i < n_slots; ++i) {
    Rng rng(cfg_.seed, exec_index_ + i);
    const CorpusEntry& parent = res_.corpus.select(rng);
    Slot s{mutate_scenario(parent.spec, cfg_.bounds, rng), {}};
    attach_workload(s.spec);
    slots_.push_back(std::move(s));
  }
  return slots_.size();
}

void FuzzCampaign::attach_workload(ScenarioSpec& spec) const {
  if (!cfg_.workload) return;
  // Reassert the campaign's workload on every genome (parents already
  // carry it; this keeps a drifted corpus entry — e.g. a restored
  // checkpoint from older bounds — from changing what is being fuzzed)
  // and re-fit it to this genome's node count.
  spec.rsm = sanitize_rsm_workload(*cfg_.workload, spec.n_nodes);
}

void FuzzCampaign::execute_slot(std::size_t i) {
  slots_[i].verdict = run_fuzz_case(slots_[i].spec);
}

void FuzzCampaign::merge_slot(const Slot& s) {
  res_.stats.execs += 1;
  res_.stats.classes_seen |= s.verdict.classes;
  if (res_.corpus.admit(s.spec, s.verdict.sig, exec_index_)) {
    res_.stats.admitted += 1;
  }
  if (s.verdict.violation()) {
    res_.stats.findings += 1;
    res_.findings.push_back({s.spec, s.verdict, exec_index_});
  }
  ++exec_index_;
}

void FuzzCampaign::refresh_stats() {
  res_.stats.corpus_size = static_cast<int>(res_.corpus.size());
  res_.stats.signature_bits = res_.corpus.accumulated().popcount();
  res_.stats.fsm_transitions = res_.corpus.accumulated().fsm_popcount();
  res_.stats.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
}

void FuzzCampaign::merge_round() {
  // Merge (sequential, slot order): identical for every worker count.
  for (const Slot& s : slots_) merge_slot(s);
  if (rounds_merged_ > 0) {
    if (cfg_.minimize_every > 0 && exec_index_ >= next_minimize_) {
      res_.stats.evicted +=
          static_cast<std::uint64_t>(res_.corpus.minimize());
      next_minimize_ += cfg_.minimize_every;
    }
    refresh_stats();
    if (cfg_.on_round) cfg_.on_round(res_.stats);
  }
  slots_.clear();
  ++rounds_merged_;
}

void FuzzCampaign::restore_state(std::uint64_t exec_index,
                                 std::uint64_t next_minimize,
                                 const FuzzStats& stats,
                                 std::vector<CorpusEntry> corpus,
                                 const Signature& accumulated,
                                 std::vector<FuzzFinding> findings) {
  exec_index_ = exec_index;
  next_minimize_ = next_minimize;
  res_.stats = stats;
  res_.corpus.restore(std::move(corpus), accumulated);
  res_.findings = std::move(findings);
  slots_.clear();
  // A snapshot is only ever taken after a merged round, so the restored
  // campaign plans from the corpus (round zero is behind it).
  rounds_merged_ = 1;
}

FuzzResult FuzzCampaign::take_result() {
  refresh_stats();
  return std::move(res_);
}

namespace {

void execute_round(FuzzCampaign& campaign, std::size_t n_slots, int jobs) {
  if (jobs <= 1 || n_slots <= 1) {
    for (std::size_t i = 0; i < n_slots; ++i) campaign.execute_slot(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&campaign, &next, n_slots] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n_slots) return;
      campaign.execute_slot(i);
    }
  };
  const int n = std::min<int>(jobs, static_cast<int>(n_slots));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace

FuzzResult run_fuzz(const FuzzConfig& cfg, const std::vector<ScenarioSpec>& seeds) {
  const int jobs = cfg.jobs > 0
                       ? cfg.jobs
                       : std::max(1u, std::thread::hardware_concurrency());
  FuzzCampaign campaign(cfg, seeds);
  for (;;) {
    const std::size_t n = campaign.plan_round();
    if (n == 0) break;
    execute_round(campaign, n, jobs);
    campaign.merge_round();
  }
  return campaign.take_result();
}

std::string fuzz_stats_json(const FuzzStats& st, const ProtocolParams& protocol,
                            int n_nodes, std::uint64_t seed) {
  std::string s = "{";
  s += "\"protocol\":\"" + json_escape(protocol.name()) + "\"";
  s += ",\"nodes\":" + std::to_string(n_nodes);
  s += ",\"seed\":" + std::to_string(seed);
  s += ",\"execs\":" + std::to_string(st.execs);
  s += ",\"admitted\":" + std::to_string(st.admitted);
  s += ",\"findings\":" + std::to_string(st.findings);
  s += ",\"evicted\":" + std::to_string(st.evicted);
  s += ",\"corpus\":" + std::to_string(st.corpus_size);
  s += ",\"signature_bits\":" + std::to_string(st.signature_bits);
  s += ",\"fsm_transitions\":" + std::to_string(st.fsm_transitions);
  s += ",\"classes\":\"" + fuzz_classes_to_string(st.classes_seen) + "\"";
  s += ",\"seconds\":" + json_number(st.elapsed_s);
  s += "}\n";
  return s;
}

}  // namespace mcan
