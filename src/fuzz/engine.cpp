#include "fuzz/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace mcan {

namespace {

/// One planned slot of a round.
struct Slot {
  ScenarioSpec spec;
  FuzzVerdict verdict;  // filled by the execute phase
};

void execute_slots(std::vector<Slot>& slots, int jobs) {
  if (jobs <= 1 || slots.size() <= 1) {
    for (Slot& s : slots) s.verdict = run_fuzz_case(s.spec);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&slots, &next] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= slots.size()) return;
      slots[i].verdict = run_fuzz_case(slots[i].spec);
    }
  };
  const int n = std::min<int>(jobs, static_cast<int>(slots.size()));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace

FuzzResult run_fuzz(const FuzzConfig& cfg, const std::vector<ScenarioSpec>& seeds) {
  const auto t0 = std::chrono::steady_clock::now();
  const int jobs = cfg.jobs > 0
                       ? cfg.jobs
                       : std::max(1u, std::thread::hardware_concurrency());

  FuzzResult res;
  std::uint64_t exec_index = 0;
  std::uint64_t next_minimize = cfg.minimize_every;

  auto merge_slot = [&](const Slot& s) {
    res.stats.execs += 1;
    res.stats.classes_seen |= s.verdict.classes;
    if (res.corpus.admit(s.spec, s.verdict.sig, exec_index)) {
      res.stats.admitted += 1;
    }
    if (s.verdict.violation()) {
      res.stats.findings += 1;
      res.findings.push_back({s.spec, s.verdict, exec_index});
    }
    ++exec_index;
  };

  // Round zero: the clean seed plus every caller-provided seed, in order.
  // Seeds always run (they prime the corpus) even if they overshoot
  // max_execs.
  std::vector<Slot> slots;
  slots.push_back({seed_scenario(cfg.protocol, cfg.n_nodes), {}});
  for (const ScenarioSpec& s : seeds) slots.push_back({s, {}});
  for (Slot& s : slots) sanitize_scenario(s.spec, cfg.bounds);
  execute_slots(slots, jobs);
  for (const Slot& s : slots) merge_slot(s);

  const auto out_of_time = [&] {
    if (cfg.max_time_s <= 0) return false;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return dt.count() >= cfg.max_time_s;
  };

  while (exec_index < cfg.max_execs && !out_of_time()) {
    // Plan (sequential): each slot draws from its own (seed, exec) stream.
    const std::uint64_t n_slots = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(std::max(1, cfg.batch)),
        cfg.max_execs - exec_index);
    slots.clear();
    for (std::uint64_t i = 0; i < n_slots; ++i) {
      Rng rng(cfg.seed, exec_index + i);
      const CorpusEntry& parent = res.corpus.select(rng);
      slots.push_back({mutate_scenario(parent.spec, cfg.bounds, rng), {}});
    }

    // Execute (parallel): the corpus is frozen, slots are independent.
    execute_slots(slots, jobs);

    // Merge (sequential, slot order): identical for every jobs value.
    for (const Slot& s : slots) merge_slot(s);

    if (cfg.minimize_every > 0 && exec_index >= next_minimize) {
      res.stats.evicted +=
          static_cast<std::uint64_t>(res.corpus.minimize());
      next_minimize += cfg.minimize_every;
    }

    res.stats.corpus_size = static_cast<int>(res.corpus.size());
    res.stats.signature_bits = res.corpus.accumulated().popcount();
    res.stats.fsm_transitions = res.corpus.accumulated().fsm_popcount();
    res.stats.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (cfg.on_round) cfg.on_round(res.stats);
  }

  res.stats.corpus_size = static_cast<int>(res.corpus.size());
  res.stats.signature_bits = res.corpus.accumulated().popcount();
  res.stats.fsm_transitions = res.corpus.accumulated().fsm_popcount();
  res.stats.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

}  // namespace mcan
