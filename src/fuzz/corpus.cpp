#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fuzz/oracle.hpp"

namespace mcan {

bool Corpus::admit(const ScenarioSpec& spec, const Signature& sig,
                   std::uint64_t exec_index) {
  const int added = accumulated_.merge(sig);
  if (added == 0) return false;
  entries_.push_back({spec, sig, exec_index, added});
  total_energy_ += added;
  return true;
}

const CorpusEntry& Corpus::select(Rng& rng) const {
  long long pick = static_cast<long long>(
      rng.next_below(static_cast<std::uint32_t>(total_energy_)));
  for (const CorpusEntry& e : entries_) {
    pick -= e.energy;
    if (pick < 0) return e;
  }
  return entries_.back();
}

int Corpus::minimize() {
  // Greedy set cover, richest signatures first.  Stable sort on an index
  // vector so ties resolve by discovery order (determinism).
  std::vector<std::size_t> order(entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return entries_[a].sig.popcount() >
                            entries_[b].sig.popcount();
                   });
  Signature covered;
  std::vector<bool> keep(entries_.size(), false);
  for (const std::size_t i : order) {
    if (covered.merge(entries_[i].sig) > 0) keep[i] = true;
  }
  std::vector<CorpusEntry> kept;
  total_energy_ = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!keep[i]) continue;
    kept.push_back(entries_[i]);
    total_energy_ += entries_[i].energy;
  }
  const int evicted = static_cast<int>(entries_.size() - kept.size());
  entries_ = std::move(kept);
  return evicted;
}

void Corpus::restore(std::vector<CorpusEntry> entries,
                     const Signature& accumulated) {
  entries_ = std::move(entries);
  accumulated_ = accumulated;
  total_energy_ = 0;
  for (const CorpusEntry& e : entries_) total_energy_ += e.energy;
}

int save_corpus(const Corpus& corpus, const std::string& dir) {
  std::filesystem::create_directories(dir);
  int n = 0;
  for (const CorpusEntry& e : corpus.entries()) {
    char name[32];
    std::snprintf(name, sizeof name, "corpus-%04d.scn", n);
    ScenarioWriteOptions opts;
    opts.header = {"fuzz corpus entry (exec " + std::to_string(e.exec_index) +
                   ", energy " + std::to_string(e.energy) + ")"};
    std::ofstream out(std::filesystem::path(dir) / name);
    out << write_scenario(e.spec, opts);
    ++n;
  }
  return n;
}

int load_corpus_dir(Corpus& corpus, const std::string& dir) {
  std::vector<std::filesystem::path> files;
  if (!std::filesystem::is_directory(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".scn") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  int admitted = 0;
  for (const auto& path : files) {
    const ScenarioSpec spec = load_scenario_file(path.string());
    const FuzzVerdict v = run_fuzz_case(spec);
    if (corpus.admit(spec, v.sig, 0)) ++admitted;
  }
  return admitted;
}

}  // namespace mcan
