#include "fault/burst_faults.hpp"

namespace mcan {

double BurstParams::average_rate() const {
  // Stationary probability of the Bad state.
  const double denom = p_good_to_bad + p_bad_to_good;
  const double pi_bad = denom > 0 ? p_good_to_bad / denom : 0.0;
  return pi_bad * flip_bad + (1.0 - pi_bad) * flip_good;
}

BurstFaults::BurstFaults(BurstParams params, Rng rng)
    : params_(params), master_(rng) {
  global_.rng = master_.split(0);
}

bool BurstFaults::step_channel(Channel& ch, BitTime t) {
  // Advance the Markov chain once per bit time (channels are polled once
  // per node per bit; only the first poll of a bit advances the state).
  if (ch.last_t != t) {
    ch.last_t = t;
    if (ch.bad) {
      if (ch.rng.chance(params_.p_bad_to_good)) ch.bad = false;
    } else {
      if (ch.rng.chance(params_.p_good_to_bad)) {
        ch.bad = true;
        ++bursts_;
      }
    }
  }
  const double p = ch.bad ? params_.flip_bad : params_.flip_good;
  if (ch.rng.chance(p)) {
    ++injected_;
    return true;
  }
  return false;
}

bool BurstFaults::flips(NodeId node, BitTime t, const NodeBitInfo&, Level) {
  if (params_.bus_global) {
    return step_channel(global_, t);
  }
  if (per_node_.size() <= node) {
    const auto old = per_node_.size();
    per_node_.resize(node + 1);
    for (std::size_t i = old; i < per_node_.size(); ++i) {
      per_node_[i].rng = master_.split(i + 1);
    }
  }
  return step_channel(per_node_[node], t);
}

}  // namespace mcan
