// Scripted fault injection: flip specific bits of specific nodes' views,
// addressed either by absolute bit time or — much more robustly — by the
// node's frame-relative position, in the same vocabulary the paper's
// figures use ("the last but one bit of the EOF of the nodes belonging to
// X", "the 4th and 5th bit of the transmitter's EOF", ...).
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/injector.hpp"

namespace mcan {

/// One disturbance.  All optional criteria must match for the flip to fire;
/// it fires at most `count` times.
struct FaultTarget {
  NodeId node = 0;
  std::optional<Seg> seg;          ///< FSM segment to match
  std::optional<int> index;        ///< bit index within the segment
  std::optional<int> eof_rel;      ///< 0-based EOF-relative position
  std::optional<int> frame_index;  ///< which frame start (0-based) at the node
  std::optional<BitTime> at;       ///< absolute bit time
  int count = 1;

  /// Flip `node`'s view of EOF bit `eof_pos` (0-based) of its
  /// `frame_index`-th observed frame.
  [[nodiscard]] static FaultTarget eof_bit(NodeId node, int eof_pos,
                                           int frame_index = 0);

  /// Flip `node`'s view at EOF-relative position `pos` (0-based; continues
  /// past the EOF field through flags/sampling in MajorCAN).
  [[nodiscard]] static FaultTarget eof_relative(NodeId node, int pos,
                                                int frame_index = 0);

  /// Flip `node`'s view at absolute time `t`.
  [[nodiscard]] static FaultTarget at_time(NodeId node, BitTime t);

  [[nodiscard]] bool operator==(const FaultTarget&) const = default;
};

/// Parse one `flip` directive's key=value fields into a FaultTarget.
/// Throws std::invalid_argument naming the offending field: unknown fields
/// are rejected with the accepted field list, bad values name the field
/// they were given for, and exactly one addressing form (eof=, eofrel=,
/// body= or t=) must be present.  The scenario DSL wraps the message with
/// its line number, so a bad flip reports both line and field.
[[nodiscard]] FaultTarget parse_fault_target(
    const std::map<std::string, std::string>& kv);

/// A bus-wide permanent medium failure: from `from` on, every node sees a
/// dominant level regardless of what is driven — a wire short, the classic
/// failure a replicated-bus architecture is built against (and which the
/// paper's assumptions exclude for a single bus).
class StuckDominantBus final : public FaultInjector {
 public:
  explicit StuckDominantBus(BitTime from) : from_(from) {}

  [[nodiscard]] bool flips(NodeId, BitTime t, const NodeBitInfo&,
                           Level bus) override {
    return t >= from_ && is_recessive(bus);
  }

  [[nodiscard]] BitTime quiet_until(BitTime t) override {
    return t < from_ ? from_ : t;  // stateless before the short, busy after
  }

 private:
  BitTime from_;
};

/// Combine several injectors: a view bit is flipped iff an odd number of
/// children flip it.
class CompositeInjector final : public FaultInjector {
 public:
  void add(FaultInjector& inj) { children_.push_back(&inj); }

  [[nodiscard]] bool flips(NodeId node, BitTime t, const NodeBitInfo& info,
                           Level bus) override {
    bool f = false;
    for (FaultInjector* c : children_) {
      if (c->flips(node, t, info, bus)) f = !f;
    }
    return f;
  }

  [[nodiscard]] BitTime quiet_until(BitTime t) override {
    BitTime q = kNoTime;
    for (FaultInjector* c : children_) q = std::min(q, c->quiet_until(t));
    return q;
  }

 private:
  std::vector<FaultInjector*> children_;
};

class ScriptedFaults final : public FaultInjector {
 public:
  ScriptedFaults() = default;
  explicit ScriptedFaults(std::vector<FaultTarget> targets);

  void add(FaultTarget t) { targets_.push_back(Armed{t, 0}); }

  [[nodiscard]] bool flips(NodeId node, BitTime t, const NodeBitInfo& info,
                           Level bus) override;

  /// Exhausted scripts are inert forever; scripts whose only pending
  /// targets are absolute-time (`at`) ones are quiet until the earliest
  /// such time.  Position-addressed targets promise nothing (they match on
  /// node state, not time).
  [[nodiscard]] BitTime quiet_until(BitTime t) override;

  /// Total flips that actually fired.
  [[nodiscard]] int fired() const { return fired_; }

  /// True iff every target fired its full count (scenario sanity check).
  [[nodiscard]] bool all_fired() const;

 private:
  struct Armed {
    FaultTarget target;
    int fired = 0;
  };
  std::vector<Armed> targets_;
  int fired_ = 0;
};

}  // namespace mcan
