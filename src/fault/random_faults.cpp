#include "fault/random_faults.hpp"

namespace mcan {

bool RandomFaults::flips(NodeId /*node*/, BitTime /*t*/,
                         const NodeBitInfo& info, Level /*bus*/) {
  if (frames_only_ &&
      (info.seg == Seg::Idle || info.seg == Seg::Intermission ||
       info.seg == Seg::Off)) {
    return false;
  }
  if (rng_.chance(ber_star_)) {
    ++injected_;
    return true;
  }
  return false;
}

}  // namespace mcan
