// Bursty channel disturbances: a two-state Gilbert-Elliott model per bus.
//
// The paper (following Charzinski) assumes errors *randomly distributed*
// over nodes and bits — that is what ber* and the "up to m per frame"
// budget mean.  Real EMI on a harness is bursty: quiet for long stretches,
// then several corrupted bits in a row.  This injector makes that regime
// testable: in the Good state bits flip with a small probability, in the
// Bad state with a large one; state transitions follow the classic
// two-state Markov chain.  Bursts can be bus-global (all nodes disturbed
// together, e.g. common-mode EMI) or drawn per node.
#pragma once

#include <vector>

#include "sim/injector.hpp"
#include "util/rng.hpp"

namespace mcan {

struct BurstParams {
  double p_good_to_bad = 1e-4;  ///< per bit
  double p_bad_to_good = 0.2;   ///< per bit => mean burst length 5 bits
  double flip_good = 0.0;       ///< flip probability in the Good state
  double flip_bad = 0.3;        ///< flip probability in the Bad state
  /// One channel state for the whole bus: burst *timing* is common-mode
  /// (EMI hits everyone at once) while each node's view still flips
  /// independently within the burst.  false = fully independent per-node
  /// channels.
  bool bus_global = true;

  /// Long-run average flip probability (per node view bit).
  [[nodiscard]] double average_rate() const;
};

class BurstFaults final : public FaultInjector {
 public:
  BurstFaults(BurstParams params, Rng rng);

  [[nodiscard]] bool flips(NodeId node, BitTime t, const NodeBitInfo& info,
                           Level bus) override;

  [[nodiscard]] long long injected() const { return injected_; }
  [[nodiscard]] long long bursts() const { return bursts_; }

 private:
  struct Channel {
    bool bad = false;
    BitTime last_t = kNoTime;
    Rng rng{0, 0};
  };

  bool step_channel(Channel& ch, BitTime t);

  BurstParams params_;
  Rng master_;
  Channel global_;
  std::vector<Channel> per_node_;
  long long injected_ = 0;
  long long bursts_ = 0;
};

}  // namespace mcan
