#include "fault/scripted.hpp"

namespace mcan {

FaultTarget FaultTarget::eof_bit(NodeId node, int eof_pos, int frame_index) {
  FaultTarget t;
  t.node = node;
  t.seg = Seg::Eof;
  t.index = eof_pos;
  t.frame_index = frame_index;
  return t;
}

FaultTarget FaultTarget::eof_relative(NodeId node, int pos, int frame_index) {
  FaultTarget t;
  t.node = node;
  t.eof_rel = pos;
  t.frame_index = frame_index;
  return t;
}

FaultTarget FaultTarget::at_time(NodeId node, BitTime at) {
  FaultTarget t;
  t.node = node;
  t.at = at;
  return t;
}

ScriptedFaults::ScriptedFaults(std::vector<FaultTarget> targets) {
  for (FaultTarget& t : targets) add(t);
}

bool ScriptedFaults::flips(NodeId node, BitTime t, const NodeBitInfo& info,
                           Level /*bus*/) {
  for (Armed& a : targets_) {
    const FaultTarget& tg = a.target;
    if (a.fired >= tg.count) continue;
    if (tg.node != node) continue;
    if (tg.at && *tg.at != t) continue;
    if (tg.seg && *tg.seg != info.seg) continue;
    if (tg.index && *tg.index != info.index) continue;
    if (tg.eof_rel && *tg.eof_rel != info.eof_rel) continue;
    if (tg.frame_index && *tg.frame_index != info.frame_index) continue;
    ++a.fired;
    ++fired_;
    return true;
  }
  return false;
}

bool ScriptedFaults::all_fired() const {
  for (const Armed& a : targets_) {
    if (a.fired < a.target.count) return false;
  }
  return true;
}

}  // namespace mcan
