#include "fault/scripted.hpp"

#include <stdexcept>

namespace mcan {

namespace {

[[noreturn]] void fail_flip(const std::string& what) {
  throw std::invalid_argument("flip: " + what);
}

long long flip_field_int(const std::string& field, const std::string& value) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    fail_flip("field '" + field + "': not an integer: '" + value + "'");
  }
}

long long flip_field_uint(const std::string& field,
                          const std::string& value) {
  const long long v = flip_field_int(field, value);
  if (v < 0) fail_flip("field '" + field + "': must be >= 0, got " + value);
  return v;
}

}  // namespace

FaultTarget parse_fault_target(
    const std::map<std::string, std::string>& kv) {
  for (const auto& [key, value] : kv) {
    if (key != "node" && key != "eof" && key != "eofrel" && key != "body" &&
        key != "t" && key != "frame") {
      fail_flip("unknown field '" + key +
                "' (want node=, eof=, eofrel=, body=, t=, frame=)");
    }
  }
  const auto node_it = kv.find("node");
  if (node_it == kv.end()) fail_flip("needs node=");
  const NodeId node =
      static_cast<NodeId>(flip_field_uint("node", node_it->second));

  int forms = 0;
  for (const char* form : {"eof", "eofrel", "body", "t"}) {
    if (kv.contains(form)) ++forms;
  }
  if (forms != 1) {
    fail_flip("needs exactly one of eof=, eofrel=, body= or t=");
  }

  const int frame =
      kv.contains("frame")
          ? static_cast<int>(flip_field_uint("frame", kv.at("frame")))
          : 0;
  if (auto it = kv.find("eof"); it != kv.end()) {
    return FaultTarget::eof_bit(
        node, static_cast<int>(flip_field_uint("eof", it->second)), frame);
  }
  if (auto it = kv.find("eofrel"); it != kv.end()) {
    return FaultTarget::eof_relative(
        node, static_cast<int>(flip_field_int("eofrel", it->second)), frame);
  }
  if (auto it = kv.find("body"); it != kv.end()) {
    FaultTarget t;
    t.node = node;
    t.seg = Seg::Body;
    t.index = static_cast<int>(flip_field_uint("body", it->second));
    t.frame_index = frame;
    return t;
  }
  if (kv.contains("frame")) {
    fail_flip("field 'frame': the t= form carries no frame index");
  }
  return FaultTarget::at_time(
      node, static_cast<BitTime>(flip_field_uint("t", kv.at("t"))));
}

FaultTarget FaultTarget::eof_bit(NodeId node, int eof_pos, int frame_index) {
  FaultTarget t;
  t.node = node;
  t.seg = Seg::Eof;
  t.index = eof_pos;
  t.frame_index = frame_index;
  return t;
}

FaultTarget FaultTarget::eof_relative(NodeId node, int pos, int frame_index) {
  FaultTarget t;
  t.node = node;
  t.eof_rel = pos;
  t.frame_index = frame_index;
  return t;
}

FaultTarget FaultTarget::at_time(NodeId node, BitTime at) {
  FaultTarget t;
  t.node = node;
  t.at = at;
  return t;
}

ScriptedFaults::ScriptedFaults(std::vector<FaultTarget> targets) {
  for (FaultTarget& t : targets) add(t);
}

bool ScriptedFaults::flips(NodeId node, BitTime t, const NodeBitInfo& info,
                           Level /*bus*/) {
  for (Armed& a : targets_) {
    const FaultTarget& tg = a.target;
    if (a.fired >= tg.count) continue;
    if (tg.node != node) continue;
    if (tg.at && *tg.at != t) continue;
    if (tg.seg && *tg.seg != info.seg) continue;
    if (tg.index && *tg.index != info.index) continue;
    if (tg.eof_rel && *tg.eof_rel != info.eof_rel) continue;
    if (tg.frame_index && *tg.frame_index != info.frame_index) continue;
    ++a.fired;
    ++fired_;
    return true;
  }
  return false;
}

BitTime ScriptedFaults::quiet_until(BitTime t) {
  BitTime q = kNoTime;
  for (const Armed& a : targets_) {
    const FaultTarget& tg = a.target;
    if (a.fired >= tg.count) continue;  // exhausted: inert
    if (tg.at.has_value()) {
      if (*tg.at < t) continue;  // absolute time in the past: never matches
      q = std::min(q, *tg.at);
      continue;
    }
    return t;  // position-addressed: no time-based promise possible
  }
  return q;
}

bool ScriptedFaults::all_fired() const {
  for (const Armed& a : targets_) {
    if (a.fired < a.target.count) return false;
  }
  return true;
}

}  // namespace mcan
