// Random fault injection following the paper's probabilistic error model:
// every node's view of every bit is independently flipped with probability
// ber* = ber / N (Charzinski's p_eff = 1/N spatial distribution, paper §4).
#pragma once

#include "sim/injector.hpp"
#include "util/rng.hpp"

namespace mcan {

class RandomFaults final : public FaultInjector {
 public:
  /// `ber_star` — per-node per-bit flip probability.
  RandomFaults(double ber_star, Rng rng)
      : ber_star_(ber_star), rng_(rng) {}

  [[nodiscard]] bool flips(NodeId node, BitTime t, const NodeBitInfo& info,
                           Level bus) override;

  /// Rng::chance(p <= 0) draws nothing, so with a zero rate skipped calls
  /// cannot desync the RNG stream; any positive rate draws on every call
  /// and forbids skipping.
  [[nodiscard]] BitTime quiet_until(BitTime t) override {
    return ber_star_ <= 0.0 ? kNoTime : t;
  }

  /// Restrict injection to bits where the node is *inside a frame* (any
  /// non-idle, non-intermission segment).  Useful to relate error counts to
  /// "errors per frame" in campaigns.
  void set_frames_only(bool v) { frames_only_ = v; }

  /// Change the flip rate mid-run (campaigns drain the bus with rate 0).
  void set_rate(double ber_star) { ber_star_ = ber_star; }

  [[nodiscard]] long long injected() const { return injected_; }

 private:
  double ber_star_;
  Rng rng_;
  bool frames_only_ = false;
  long long injected_ = 0;
};

}  // namespace mcan
