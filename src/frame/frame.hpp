// The CAN 2.0A (11-bit identifier) data/remote frame as an application-level
// value.  Wire-level concerns (stuffing, CRC, fixed-form fields) live in
// encoder.hpp / layout.hpp; this type is what hosts enqueue and what
// controllers deliver.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace mcan {

/// Maximum payload of a classical CAN frame.
inline constexpr int kMaxDataBytes = 8;

/// Number of identifier bits in a standard (2.0A) frame.
inline constexpr int kIdBits = 11;

/// Extra identifier bits of an extended (2.0B) frame.
inline constexpr int kExtIdBits = 18;

/// Highest valid 11-bit identifier.  Lower numeric ids win arbitration.
inline constexpr std::uint32_t kMaxId = (1u << kIdBits) - 1;

/// Highest valid 29-bit identifier (2.0B).
inline constexpr std::uint32_t kMaxExtId = (1u << (kIdBits + kExtIdBits)) - 1;

struct Frame {
  std::uint32_t id = 0;        ///< 11-bit (or 29-bit when extended) identifier
  bool remote = false;         ///< RTR frame (no data field)
  bool extended = false;       ///< 2.0B frame (29-bit identifier)
  std::uint8_t dlc = 0;        ///< data length code, 0..8
  std::array<std::uint8_t, kMaxDataBytes> data{};

  /// Construct a data frame from a byte span (size sets dlc; max 8 bytes).
  [[nodiscard]] static Frame make_data(std::uint32_t id,
                                       std::span<const std::uint8_t> bytes);

  /// Construct a data frame with `dlc` zero bytes (common in tests).
  [[nodiscard]] static Frame make_blank(std::uint32_t id, std::uint8_t dlc);

  /// Construct a remote (RTR) frame.
  [[nodiscard]] static Frame make_remote(std::uint32_t id, std::uint8_t dlc);

  /// Construct an extended (29-bit identifier) data frame.
  [[nodiscard]] static Frame make_extended(std::uint32_t id,
                                           std::span<const std::uint8_t> bytes);

  /// Construct an extended remote frame.
  [[nodiscard]] static Frame make_extended_remote(std::uint32_t id,
                                                  std::uint8_t dlc);

  /// Base (most significant 11) identifier bits — the first arbitration
  /// field.  For standard frames this is the whole identifier.
  [[nodiscard]] std::uint32_t base_id() const {
    return extended ? id >> kExtIdBits : id;
  }

  /// Extension (least significant 18) identifier bits, extended frames only.
  [[nodiscard]] std::uint32_t ext_id() const {
    return extended ? id & (kMaxExtId >> kIdBits) : 0;
  }

  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    // DLC codes 9..15 are legal on the wire but carry 8 bytes (ISO 11898).
    const int bytes = remote ? 0 : (dlc > kMaxDataBytes ? kMaxDataBytes : dlc);
    return {data.data(), static_cast<std::size_t>(bytes)};
  }

  [[nodiscard]] bool operator==(const Frame&) const = default;

  [[nodiscard]] std::string to_string() const;

  /// Append the frame to a machine-state digest, field by field.  Never
  /// digest a Frame's raw object bytes (statekey::append): the struct has
  /// padding, and padding bytes survive memberwise copy-assignment — two
  /// value-equal frames can then produce different digests.
  void append_state(std::string& out) const {
    out.append(reinterpret_cast<const char*>(&id), sizeof(id));
    out.push_back(remote ? '\1' : '\0');
    out.push_back(extended ? '\1' : '\0');
    out.push_back(static_cast<char>(dlc));
    out.append(reinterpret_cast<const char*>(data.data()), data.size());
  }
};

}  // namespace mcan
