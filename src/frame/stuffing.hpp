// CAN bit stuffing.
//
// In the stuffed region (SOF through the CRC sequence) the transmitter
// inserts a complementary bit after every run of five equal wire bits (stuff
// bits themselves count towards the next run); receivers remove these stuff
// bits and treat a sixth equal bit as a *stuff error*.  Error and overload
// flags deliberately violate this rule (six dominant bits) — that is how a
// local error is globalised.
#pragma once

#include <optional>

#include "util/bitvec.hpp"

namespace mcan {

/// Length of an equal-bit run that triggers stuffing / stuff errors.
inline constexpr int kStuffRun = 5;

/// Incremental stuffing encoder (transmitter side).
///
/// Protocol: before emitting each payload bit, check `due()`; if it returns a
/// level, that stuff bit goes on the wire first (and must be `record`ed).
/// Every wire bit actually transmitted — payload or stuff — is `record`ed.
class BitStuffer {
 public:
  /// Level of the stuff bit that must be transmitted next, if one is due.
  [[nodiscard]] std::optional<Level> due() const;

  /// Account for a wire bit that was just transmitted.
  void record(Level l);

  void reset();

 private:
  Level last_ = Level::Recessive;
  int run_ = 0;
};

/// Incremental destuffing decoder (receiver side).
class BitDestuffer {
 public:
  enum class Result {
    Payload,     ///< bit is payload; hand it to the frame parser
    StuffBit,    ///< bit was a stuff bit; discard
    StuffError,  ///< sixth equal bit in a row: protocol violation
  };

  /// Classify the next received wire bit in the stuffed region.
  Result push(Level l);

  /// True when the run length says the *next* wire bit must be a stuff bit.
  /// The receiver FSM uses this after the final CRC bit: a stuff condition
  /// firing there still inserts one stuff bit before the CRC delimiter.
  [[nodiscard]] bool stuff_pending() const { return run_ >= kStuffRun; }

  /// Run-tracking introspection (model-checker state digests): level and
  /// length of the current equal-bit run.
  [[nodiscard]] Level run_level() const { return last_; }
  [[nodiscard]] int run_length() const { return run_; }

  void reset();

 private:
  Level last_ = Level::Recessive;
  int run_ = 0;
};

/// Whole-vector convenience: stuff an unstuffed sequence.
[[nodiscard]] BitVec stuff(const BitVec& unstuffed);

/// Whole-vector convenience: destuff; returns nullopt on stuff error.
[[nodiscard]] std::optional<BitVec> destuff(const BitVec& stuffed);

}  // namespace mcan
