#include "frame/stuffing.hpp"

namespace mcan {

std::optional<Level> BitStuffer::due() const {
  if (run_ >= kStuffRun) return flip(last_);
  return std::nullopt;
}

void BitStuffer::record(Level l) {
  if (run_ > 0 && l == last_) {
    ++run_;
  } else {
    last_ = l;
    run_ = 1;
  }
}

void BitStuffer::reset() {
  last_ = Level::Recessive;
  run_ = 0;
}

BitDestuffer::Result BitDestuffer::push(Level l) {
  if (run_ >= kStuffRun) {
    if (l == last_) {
      // Sixth equal bit: stuff error.  The caller resets us via reset().
      return Result::StuffError;
    }
    last_ = l;
    run_ = 1;
    return Result::StuffBit;
  }
  if (run_ > 0 && l == last_) {
    ++run_;
  } else {
    last_ = l;
    run_ = 1;
  }
  return Result::Payload;
}

void BitDestuffer::reset() {
  last_ = Level::Recessive;
  run_ = 0;
}

BitVec stuff(const BitVec& unstuffed) {
  BitVec out;
  BitStuffer st;
  for (Level l : unstuffed) {
    if (auto s = st.due()) {
      out.push_back(*s);
      st.record(*s);
    }
    out.push_back(l);
    st.record(l);
  }
  // A stuff condition triggered by the final payload bit still inserts a
  // stuff bit (it is part of the stuffed region on the wire).
  if (auto s = st.due()) out.push_back(*s);
  return out;
}

std::optional<BitVec> destuff(const BitVec& stuffed) {
  BitVec out;
  BitDestuffer ds;
  for (Level l : stuffed) {
    switch (ds.push(l)) {
      case BitDestuffer::Result::Payload:
        out.push_back(l);
        break;
      case BitDestuffer::Result::StuffBit:
        break;
      case BitDestuffer::Result::StuffError:
        return std::nullopt;
    }
  }
  return out;
}

}  // namespace mcan
