#include "frame/layout.hpp"

#include <algorithm>

#include "frame/crc15.hpp"

namespace mcan {

std::string to_string(TxPhase p) {
  switch (p) {
    case TxPhase::Sof: return "SOF";
    case TxPhase::Arbitration: return "ARB";
    case TxPhase::Control: return "CTRL";
    case TxPhase::Data: return "DATA";
    case TxPhase::Crc: return "CRC";
    case TxPhase::CrcDelim: return "CRCDEL";
    case TxPhase::AckSlot: return "ACK";
    case TxPhase::AckDelim: return "ACKDEL";
    case TxPhase::Eof: return "EOF";
  }
  return "?";
}

BitVec unstuffed_body(const Frame& f) {
  BitVec v;
  v.push_back(Level::Dominant);                       // SOF
  v.append_uint(f.base_id(), kIdBits);                // base identifier
  if (f.extended) {
    v.push_back(Level::Recessive);                    // SRR
    v.push_back(Level::Recessive);                    // IDE: extended
    v.append_uint(f.ext_id(), kExtIdBits);            // identifier extension
    v.push_back(level_of(f.remote));                  // RTR: dominant = data
    v.push_back(Level::Dominant);                     // r1
  } else {
    v.push_back(level_of(f.remote));                  // RTR: dominant = data
    v.push_back(Level::Dominant);                     // IDE: standard frame
  }
  v.push_back(Level::Dominant);                       // r0
  v.append_uint(f.dlc, kDlcBits);                     // DLC
  if (!f.remote) {
    // ISO 11898: DLC values 9..15 are transmitted as-is but carry 8 bytes.
    const int bytes = std::min<int>(f.dlc, kMaxDataBytes);
    for (int i = 0; i < bytes; ++i) {
      v.append_uint(f.data[static_cast<std::size_t>(i)], 8);
    }
  }
  v.append_uint(crc15(v), kCrcBits);                  // CRC over SOF..data
  return v;
}

int body_bits_of(const Frame& f) {
  const int data_bits = f.remote ? 0 : f.dlc * 8;
  return body_bits_for(data_bits) + (f.extended ? kExtendedExtraBits : 0);
}

}  // namespace mcan
