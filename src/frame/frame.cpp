#include "frame/frame.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mcan {

Frame Frame::make_data(std::uint32_t id, std::span<const std::uint8_t> bytes) {
  if (id > kMaxId) throw std::invalid_argument("CAN id exceeds 11 bits");
  if (bytes.size() > kMaxDataBytes) {
    throw std::invalid_argument("CAN payload exceeds 8 bytes");
  }
  Frame f;
  f.id = id;
  f.dlc = static_cast<std::uint8_t>(bytes.size());
  std::copy(bytes.begin(), bytes.end(), f.data.begin());
  return f;
}

Frame Frame::make_blank(std::uint32_t id, std::uint8_t dlc) {
  if (id > kMaxId) throw std::invalid_argument("CAN id exceeds 11 bits");
  if (dlc > kMaxDataBytes) throw std::invalid_argument("dlc exceeds 8");
  Frame f;
  f.id = id;
  f.dlc = dlc;
  return f;
}

Frame Frame::make_remote(std::uint32_t id, std::uint8_t dlc) {
  Frame f = make_blank(id, dlc);
  f.remote = true;
  return f;
}

Frame Frame::make_extended(std::uint32_t id,
                           std::span<const std::uint8_t> bytes) {
  if (id > kMaxExtId) throw std::invalid_argument("CAN id exceeds 29 bits");
  if (bytes.size() > kMaxDataBytes) {
    throw std::invalid_argument("CAN payload exceeds 8 bytes");
  }
  Frame f;
  f.id = id;
  f.extended = true;
  f.dlc = static_cast<std::uint8_t>(bytes.size());
  std::copy(bytes.begin(), bytes.end(), f.data.begin());
  return f;
}

Frame Frame::make_extended_remote(std::uint32_t id, std::uint8_t dlc) {
  if (id > kMaxExtId) throw std::invalid_argument("CAN id exceeds 29 bits");
  if (dlc > kMaxDataBytes) throw std::invalid_argument("dlc exceeds 8");
  Frame f;
  f.id = id;
  f.extended = true;
  f.remote = true;
  f.dlc = dlc;
  return f;
}

std::string Frame::to_string() const {
  char buf[96];
  int n = std::snprintf(buf, sizeof(buf), "%s%s(id=0x%03x dlc=%u",
                        extended ? "ext-" : "", remote ? "rtr" : "data", id,
                        dlc);
  std::string s(buf, static_cast<std::size_t>(n));
  if (!remote && dlc > 0) {
    s += " [";
    for (int i = 0; i < dlc; ++i) {
      std::snprintf(buf, sizeof(buf), "%s%02x", i ? " " : "", data[static_cast<std::size_t>(i)]);
      s += buf;
    }
    s += ']';
  }
  s += ')';
  return s;
}

}  // namespace mcan
