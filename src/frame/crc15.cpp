#include "frame/crc15.hpp"

namespace mcan {

void Crc15::feed(Level bit) {
  bool in = logical(bit);
  bool crcnxt = in != (((reg_ >> 14) & 1u) != 0);
  reg_ = static_cast<std::uint16_t>((reg_ << 1) & 0x7fff);
  if (crcnxt) reg_ ^= kCrc15Poly;
}

std::uint16_t crc15(const BitVec& bits) {
  Crc15 c;
  for (Level l : bits) c.feed(l);
  return c.value();
}

}  // namespace mcan
