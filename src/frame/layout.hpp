// Wire-level layout of a CAN 2.0A frame.
//
// The *body* (SOF through CRC sequence) is subject to bit stuffing and CRC;
// the *tail* (CRC delimiter, ACK slot, ACK delimiter, EOF) is fixed-form.
// The EOF length is a protocol-variant parameter: 7 bits in standard CAN and
// MinorCAN, 2m bits in MajorCAN_m — that is the paper's §5 modification.
#pragma once

#include <cstdint>
#include <string>

#include "frame/crc15.hpp"
#include "frame/frame.hpp"
#include "util/bitvec.hpp"

namespace mcan {

/// Phase of a transmitted wire bit; drives the transmitter's error semantics
/// (arbitration loss vs. bit error vs. ACK).
enum class TxPhase : std::uint8_t {
  Sof,          ///< start of frame: 1 dominant bit
  Arbitration,  ///< identifier + RTR: recessive-vs-dominant means arb loss
  Control,      ///< IDE, r0, DLC
  Data,         ///< 0..64 data bits
  Crc,          ///< 15-bit CRC sequence
  CrcDelim,     ///< fixed recessive
  AckSlot,      ///< transmitter sends recessive, receivers answer dominant
  AckDelim,     ///< fixed recessive
  Eof,          ///< end of frame: all recessive, length = eof_bits
};

[[nodiscard]] std::string to_string(TxPhase p);

/// Field widths of the standard frame.
inline constexpr int kSofBits = 1;
inline constexpr int kRtrBits = 1;
inline constexpr int kIdeBits = 1;
inline constexpr int kR0Bits = 1;
inline constexpr int kDlcBits = 4;
inline constexpr int kCrcDelimBits = 1;
inline constexpr int kAckSlotBits = 1;
inline constexpr int kAckDelimBits = 1;

/// Standard CAN EOF length (also used by MinorCAN).
inline constexpr int kStandardEofBits = 7;

/// Length of the intermission (interframe space) in bit times.
inline constexpr int kIntermissionBits = 3;

/// EOF length for MajorCAN_m: two sub-fields of m bits each (paper §5).
[[nodiscard]] constexpr int majorcan_eof_bits(int m) { return 2 * m; }

/// Unstuffed body of a frame.
/// Standard (2.0A): SOF, ID(11), RTR, IDE(=d), r0, DLC, data, CRC.
/// Extended (2.0B): SOF, base ID(11), SRR(=r), IDE(=r), ext ID(18), RTR,
///                  r1, r0, DLC, data, CRC.
/// This is the sequence the CRC is computed over (CRC excluded, of course)
/// and the sequence bit stuffing applies to (CRC included).
[[nodiscard]] BitVec unstuffed_body(const Frame& f);

/// Number of unstuffed body bits for a standard frame with `data_bits`
/// payload bits.
[[nodiscard]] constexpr int body_bits_for(int data_bits) {
  return kSofBits + kIdBits + kRtrBits + kIdeBits + kR0Bits + kDlcBits +
         data_bits + kCrcBits;
}

/// Extra unstuffed body bits of an extended frame vs. a standard one:
/// SRR + 18 extension id bits + r1 = 20.
inline constexpr int kExtendedExtraBits = 1 + kExtIdBits + 1;

/// Number of unstuffed body bits for frame `f`.
[[nodiscard]] int body_bits_of(const Frame& f);

/// Fixed tail length after the CRC sequence, for a given EOF length.
[[nodiscard]] constexpr int tail_bits_for(int eof_bits) {
  return kCrcDelimBits + kAckSlotBits + kAckDelimBits + eof_bits;
}

}  // namespace mcan
