#include "frame/encoder.hpp"

#include "frame/stuffing.hpp"

namespace mcan {

namespace {

/// Phase of unstuffed body bit `i`.
///
/// The arbitration field runs through the RTR bit: SOF + 11 id + RTR for
/// standard frames; SOF + 11 id + SRR + IDE + 18 id + RTR for extended
/// ones (a 2.0B transmitter backs off on a dominant bit anywhere in
/// there — which is also how a standard frame with the same base id beats
/// the extended frame, via its dominant RTR/IDE).
TxPhase body_phase(int i, int data_bits, bool extended) {
  const int arb_bits =
      extended ? kIdBits + 1 + kIdeBits + kExtIdBits + kRtrBits  // +SRR
               : kIdBits + kRtrBits;
  const int ctrl_bits = extended ? 1 + kR0Bits + kDlcBits  // r1, r0, DLC
                                 : kIdeBits + kR0Bits + kDlcBits;
  int p = i;
  if (p < kSofBits) return TxPhase::Sof;
  p -= kSofBits;
  if (p < arb_bits) return TxPhase::Arbitration;
  p -= arb_bits;
  if (p < ctrl_bits) return TxPhase::Control;
  p -= ctrl_bits;
  if (p < data_bits) return TxPhase::Data;
  return TxPhase::Crc;
}

}  // namespace

std::vector<TxBit> encode_tx(const Frame& f, int eof_bits) {
  const BitVec body = unstuffed_body(f);
  const int data_bits = f.remote ? 0 : f.dlc * 8;

  std::vector<TxBit> out;
  out.reserve(body.size() + body.size() / kStuffRun + 16);

  BitStuffer st;
  for (std::size_t i = 0; i < body.size(); ++i) {
    TxPhase phase = body_phase(static_cast<int>(i), data_bits, f.extended);
    if (auto s = st.due()) {
      // A stuff bit belongs to the phase of the bit that precedes it: losing
      // arbitration on a stuff bit inside the identifier is possible.
      TxPhase stuff_phase =
          (i == 0) ? phase
                   : body_phase(static_cast<int>(i) - 1, data_bits, f.extended);
      out.push_back({*s, stuff_phase, true});
      st.record(*s);
    }
    out.push_back({body[i], phase, false});
    st.record(body[i]);
  }
  if (auto s = st.due()) {
    // Stuff condition fired on the final CRC bit.
    out.push_back({*s, TxPhase::Crc, true});
  }

  out.push_back({Level::Recessive, TxPhase::CrcDelim, false});
  out.push_back({Level::Recessive, TxPhase::AckSlot, false});
  out.push_back({Level::Recessive, TxPhase::AckDelim, false});
  for (int i = 0; i < eof_bits; ++i) {
    out.push_back({Level::Recessive, TxPhase::Eof, false});
  }
  return out;
}

int wire_length(const Frame& f, int eof_bits) {
  return static_cast<int>(encode_tx(f, eof_bits).size());
}

int stuff_bit_count(const Frame& f) {
  const BitVec body = unstuffed_body(f);
  return static_cast<int>(stuff(body).size() - body.size());
}

}  // namespace mcan
