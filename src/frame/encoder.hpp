// Transmit-side frame encoding: the exact wire bit sequence a transmitter
// pushes onto the bus, with per-bit phase annotations that the controller
// FSM uses to pick error semantics (arbitration loss, ACK handling, bit
// error) for each position.
#pragma once

#include <vector>

#include "frame/frame.hpp"
#include "frame/layout.hpp"

namespace mcan {

struct TxBit {
  Level level;
  TxPhase phase;
  bool is_stuff = false;
};

/// Full transmit bitstream: stuffed body followed by the fixed-form tail
/// (CRC delimiter, recessive ACK slot, ACK delimiter, `eof_bits` of EOF).
[[nodiscard]] std::vector<TxBit> encode_tx(const Frame& f, int eof_bits);

/// Wire length of the frame as transmitted (stuffed body + tail), in bits.
/// Excludes intermission.
[[nodiscard]] int wire_length(const Frame& f, int eof_bits);

/// Number of stuff bits the frame's body incurs.
[[nodiscard]] int stuff_bit_count(const Frame& f);

}  // namespace mcan
