// The CAN CRC-15 (polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1, i.e. 0x4599).
//
// ISO 11898 computes the CRC over the *destuffed* bit sequence from SOF
// through the end of the data field.  The code detects up to 5 randomly
// distributed bit errors per frame, which is why the paper proposes m = 5
// for MajorCAN: the atomic-broadcast guarantee then matches the error-
// detection guarantee.
#pragma once

#include <cstdint>

#include "util/bitvec.hpp"

namespace mcan {

inline constexpr std::uint16_t kCrc15Poly = 0x4599;
inline constexpr int kCrcBits = 15;

/// Incremental CRC-15 register, fed one destuffed bit at a time.
class Crc15 {
 public:
  /// Feed one logical bit (dominant = 0, recessive = 1).
  void feed(Level bit);

  /// Current remainder (15 significant bits).
  [[nodiscard]] std::uint16_t value() const { return reg_; }

  void reset() { reg_ = 0; }

 private:
  std::uint16_t reg_ = 0;
};

/// CRC of a whole destuffed bit sequence.
[[nodiscard]] std::uint16_t crc15(const BitVec& bits);

}  // namespace mcan
