#include "rare/bias.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcan {

void BiasProfile::resolve(const ProtocolParams& protocol) {
  if (win_lo_rel > win_hi_rel) {
    win_lo_rel = -2;
    // Same end-game horizon the exhaustive sweeps default to: the whole
    // extended end-game for MajorCAN, EOF + intermission otherwise.
    win_hi_rel = protocol.variant == Variant::MajorCan
                     ? 3 * protocol.m + 5
                     : protocol.eof_bits() + 3;
  }
  const int eof = protocol.eof_bits();
  if (tx_hot.empty()) tx_hot = {eof - 2, eof - 1};
  if (rx_hot.empty()) rx_hot = {eof - 3, eof - 2};
}

double BiasProfile::q(bool transmitter, int eof_rel) const {
  if (eof_rel < win_lo_rel || eof_rel > win_hi_rel) return base;
  const std::vector<int>& hot = transmitter ? tx_hot : rx_hot;
  if (std::find(hot.begin(), hot.end(), eof_rel) != hot.end()) {
    return transmitter ? tx_hot_q : rx_hot_q;
  }
  return window_q;
}

void BiasProfile::validate() const {
  const auto check = [](double v, const char* what) {
    if (!(v >= 0.0) || v > 1.0) {
      throw std::invalid_argument(std::string("bias profile: ") + what +
                                  " must be in [0, 1]");
    }
  };
  check(base, "base");
  check(window_q, "window_q");
  check(tx_hot_q, "tx_hot_q");
  check(rx_hot_q, "rx_hot_q");
  if (win_lo_rel > win_hi_rel) {
    throw std::invalid_argument(
        "bias profile: window unresolved (win_lo_rel > win_hi_rel); call "
        "resolve() first");
  }
}

BiasProfile unbiased_profile(const ProtocolParams& protocol, double ber_star) {
  BiasProfile p;
  p.resolve(protocol);
  p.base = ber_star;
  p.window_q = ber_star;
  p.tx_hot_q = ber_star;
  p.rx_hot_q = ber_star;
  return p;
}

BiasedFaults::BiasedFaults(double ber_star, BiasProfile profile, int eof_start,
                           Rng rng)
    : p_(ber_star), profile_(profile), eof_start_(eof_start), rng_(rng) {
  profile_.validate();
}

bool BiasedFaults::flips(NodeId node, BitTime t, const NodeBitInfo& /*info*/,
                         Level /*bus*/) {
  const long long rel = static_cast<long long>(t) - eof_start_;
  const bool in_window =
      rel >= profile_.win_lo_rel && rel <= profile_.win_hi_rel;
  // Campaign convention: node 0 is the probe frame's transmitter.
  const double q = in_window ? profile_.q(node == 0, static_cast<int>(rel))
                             : profile_.base;
  if (q <= 0.0) {
    // Forced clean under the proposal: exp of the accumulated log(1-p)
    // terms is exactly the nominal probability of this many clean draws.
    ++base_clean_;
    return false;
  }
  const bool flip = rng_.chance(q);
  if (flip) {
    llr_ += std::log(p_ / q);
    if (in_window) {
      ++window_flips_;
      if (node == 0) ++tx_window_flips_;
    }
  } else {
    llr_ += std::log1p(-p_) - std::log1p(-q);
  }
  return flip;
}

void BiasedFaults::account_clean_prefix(long long draws) {
  if (profile_.base > 0.0) {
    throw std::logic_error(
        "BiasedFaults: clean-prefix accounting requires base == 0 "
        "(tail-only mode); with a nonzero base the prefix must be "
        "simulated");
  }
  base_clean_ += draws;
}

double BiasedFaults::llr() const {
  return llr_ + static_cast<double>(base_clean_) * std::log1p(-p_);
}

}  // namespace mcan
