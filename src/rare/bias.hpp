// Importance-sampling fault injection for the rare-event campaigns.
//
// The nominal error model is the paper's (§4): every node's view of every
// bit flips independently with probability p = ber* = ber/N.  At the
// Table-1 rates the inconsistency patterns need two position-exact flips
// in the frame tail, so their probability per frame is ~1e-10 and naive
// simulation cannot reach them.  BiasedFaults samples from a *proposal*
// measure instead: inside an EOF-relative tail window the flip probability
// is raised (with extra-hot slots at the positions the Fig. 3a pattern
// needs — the transmitter's last bits and the receivers' last-but-one
// bits), outside the window it is the base rate (or zero in tail-only
// mode).  Every Bernoulli draw contributes its log-likelihood ratio
// log(P(draw)/Q(draw)) to a per-run accumulator, so a run that exhibits an
// event contributes weight exp(llr) to the Horvitz–Thompson estimator —
// which is unbiased for the nominal probability by construction, for any
// proposal that keeps q > 0 wherever the event needs a flip.
//
// Tail-only mode (base = 0) conditions on "no flips outside the window":
// draws outside the window are forced clean and contribute log(1-p) each,
// so the estimator targets P{event AND all flips inside the window} — a
// lower bound on P{event}, and exactly the channel expression (4) models
// (every pattern it counts is clean outside the frame tail).
#pragma once

#include <vector>

#include "core/protocol.hpp"
#include "sim/injector.hpp"
#include "util/rng.hpp"

namespace mcan {

/// Proposal flip probabilities, addressed by absolute bit time relative to
/// the probe frame's EOF start (the same EOF-relative grid the model
/// checker and the paper's figures use) and by role (transmitter = node 0).
struct BiasProfile {
  /// Flip probability outside [win_lo_rel, win_hi_rel].  0 = tail-only
  /// conditioning (see header comment); otherwise usually ber*.
  double base = 0.0;

  /// Tail window, EOF-relative, inclusive.  Resolved against the protocol
  /// by resolve() when lo > hi (the "unset" state).
  int win_lo_rel = 1;
  int win_hi_rel = 0;

  /// Proposal inside the window (floor for every in-window slot).
  double window_q = 2e-3;

  /// Extra-hot slots: the transmitter's last EOF bits (where a flip masks
  /// the receivers' error flag) and the receivers' last-but-one bits
  /// (where a flip splits the receiver set) — the Fig. 3a geometry.
  double tx_hot_q = 0.25;
  std::vector<int> tx_hot;  ///< EOF-relative positions
  double rx_hot_q = 0.03;
  std::vector<int> rx_hot;

  /// Fill unset fields from the protocol: window [-2, window_hi] where
  /// window_hi matches the exhaustive sweeps' auto bound (end-game horizon),
  /// tx_hot = last two EOF bits, rx_hot = the two bits before the last.
  void resolve(const ProtocolParams& protocol);

  /// Proposal probability for one (role, position) slot.  `eof_rel` may be
  /// outside the window (returns base).
  [[nodiscard]] double q(bool transmitter, int eof_rel) const;

  /// Throws std::invalid_argument on probabilities outside [0, 1] or an
  /// unresolved window.
  void validate() const;
};

/// A naive-equivalent profile: proposal == nominal everywhere (all weights
/// exactly 1).  Used by the naive-MC baseline and the unbiasedness tests.
[[nodiscard]] BiasProfile unbiased_profile(const ProtocolParams& protocol,
                                           double ber_star);

/// The importance-sampling injector.  Value-semantic and copyable so the
/// splitting engine can clone a trajectory mid-run together with its
/// likelihood state; the clone's rng must then be re-seeded (fork()).
class BiasedFaults final : public FaultInjector {
 public:
  /// `ber_star` — nominal per-node per-bit probability; `eof_start` — the
  /// absolute bit time of the probe frame's first EOF bit, anchoring the
  /// profile's EOF-relative window.
  BiasedFaults(double ber_star, BiasProfile profile, int eof_start, Rng rng);

  [[nodiscard]] bool flips(NodeId node, BitTime t, const NodeBitInfo& info,
                           Level bus) override;

  /// Account for `draws` Bernoulli draws that were skipped by clean-prefix
  /// cloning: under the proposal they are forced clean (tail-only base = 0),
  /// so each contributes log(1-p) of likelihood ratio.  Only valid when
  /// base == 0 — with a nonzero base the prefix must actually be simulated.
  void account_clean_prefix(long long draws);

  /// Log-likelihood ratio log(dP/dQ) accumulated over all draws so far.
  [[nodiscard]] double llr() const;

  /// Flip counts inside the window, for the splitting engine's levels.
  [[nodiscard]] int window_flips() const { return window_flips_; }
  [[nodiscard]] int tx_window_flips() const { return tx_window_flips_; }
  [[nodiscard]] int rx_window_flips() const {
    return window_flips_ - tx_window_flips_;
  }

  /// Re-seed the rng (splitting clones diverge from their parent here).
  void reseed(Rng rng) { rng_ = rng; }
  [[nodiscard]] Rng fork(std::uint64_t tag) const { return rng_.split(tag); }

 private:
  double p_;            ///< nominal probability
  BiasProfile profile_;
  int eof_start_;
  Rng rng_;
  double llr_ = 0.0;        ///< exact terms (in-window draws)
  long long base_clean_ = 0;///< out-of-window clean draws, folded in llr()
  int window_flips_ = 0;
  int tx_window_flips_ = 0;
};

}  // namespace mcan
