// Multilevel splitting (RESTART-style) over the frame-tail window.
//
// A trajectory's "proximity" to the paper's inconsistency geometry is a
// monotone level function computed from the injector's flip counters:
//
//   level 0  nothing yet
//   level 1  any tail disturbance (a flip inside the window)
//   level 2  receiver split component: some receiver's view disturbed
//   level 3  transmitter masked as well: both sides of the Fig. 3a
//            geometry present (receiver disturbed AND transmitter
//            disturbed inside the window)
//
// When a trajectory first reaches a new level it is *split*: the whole
// machine state of the bus is cloned (CanController::clone_runtime_state
// + Simulator::warp_to — the model checker's prefix-cloning machinery,
// applied mid-window) into `factor` children, each continuing with an
// independent random stream and 1/factor of the parent's weight.  Total
// weight is conserved at every split, so the estimator stays unbiased
// while the effort concentrates on trajectories that already crossed the
// rare thresholds.  Splitting runs on top of the biased proposal (the
// likelihood ratio still corrects to the nominal measure), so the two
// variance-reduction mechanisms compose — and give an estimate with
// *different* error structure than plain importance sampling, which the
// campaigns cross-validate against each other.
#pragma once

#include "rare/trial.hpp"

namespace mcan {

struct SplitParams {
  int factor = 4;          ///< children per level crossing
  int max_particles = 256; ///< per-root cap; crossings beyond it stop splitting
                           ///< (weight-neutral, so the estimate stays unbiased)

  /// Throws std::invalid_argument on a non-positive factor or cap.
  void validate() const;
};

/// Aggregate Horvitz–Thompson contribution of one root trial and all of
/// its split descendants.
struct SplitTrialResult {
  double x_imo = 0;      ///< sum over leaves of I(imo) * exp(llr) * weight
  double x_dup = 0;
  long long leaves = 0;  ///< trajectories run to quiescence
  long long timeouts = 0;
  int max_level = 0;     ///< highest level any descendant reached
};

/// Run one root trial with splitting.  Requires a tail-only plan
/// (plan.t_first > 0 with a prefix template): levels are defined by
/// window flips, so flips must be confined to the window.
[[nodiscard]] SplitTrialResult run_split_trial(const ProbePlan& plan,
                                               const PrefixState& prefix,
                                               const SplitParams& sp,
                                               Rng rng);

}  // namespace mcan
