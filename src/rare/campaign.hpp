// The rare-event campaign runner: empirical estimates of the paper's
// Table-1 probabilities from the executable bit-level bus.
//
// Determinism follows the fuzz engine's plan/execute/merge discipline:
// trial i draws everything from its private Rng(seed, i) stream, workers
// only execute (claiming slots off an atomic counter), and results are
// merged in trial order — so estimates are bit-identical for any --jobs
// value, and identical again across checkpoint/resume (the journal stores
// the streaming accumulators as exact hex floats).
//
// Three estimation modes share the pipeline:
//   naive       unweighted Monte-Carlo from bit 0 (the baseline the
//               variance-reduction factor is measured against);
//   importance  biased tail-window sampling + Horvitz–Thompson weights
//               (src/rare/bias.hpp), clean-prefix cloning;
//   splitting   multilevel splitting layered on the biased proposal
//               (src/rare/splitting.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "rare/splitting.hpp"
#include "rare/trial.hpp"

namespace mcan {

enum class RareMode : std::uint8_t { kNaive, kImportance, kSplitting };

[[nodiscard]] const char* rare_mode_name(RareMode m);

struct RareConfig {
  ProtocolParams protocol = ProtocolParams::standard_can();
  int n_nodes = 32;           ///< the reference bus of Table 1
  double ber = 1e-5;          ///< network-wide rate; per-node is ber/N
  RareMode mode = RareMode::kImportance;
  BiasProfile bias;           ///< window/proposal; defaults resolved per protocol
  SplitParams split;          ///< splitting mode only
  std::uint64_t seed = 1;
  long long trials = 20000;   ///< root trials (splitting counts roots)
  int jobs = 1;               ///< worker threads; 0 = one per hardware thread
  int batch = 256;            ///< trials per plan/execute/merge round
  BitTime quiet_budget = 30000;
  double bitrate = 1e6;       ///< reference bus, for the per-hour conversion
  double load = 0.9;
  std::string journal;            ///< checkpoint file; empty = no checkpoints
  long long checkpoint_every = 8192;  ///< trials between journal snapshots
  /// Progress callback (trials done, trials total); called after each round.
  std::function<void(long long, long long)> on_progress;
  /// Cooperative stop: when set, the campaign finishes the round in
  /// flight, flushes a final journal snapshot, and returns the partial
  /// result.  Safe to flip from a signal handler.
  const std::atomic<bool>* stop = nullptr;

  /// Throws std::invalid_argument on unusable values.
  void validate() const;

  /// Everything that determines the trial stream, as text.  A journal
  /// snapshot is only resumable into a campaign with an equal fingerprint.
  [[nodiscard]] std::string fingerprint() const;
};

struct RareResult {
  RareConfig cfg;        ///< as run (bias resolved)
  ProbePlan plan;        ///< probe frame geometry actually simulated
  RareAccumulator imo;   ///< P{inconsistent message omission} per frame
  RareAccumulator dup;   ///< P{inconsistent duplicate} per frame
  long long timeouts = 0;
  long long resumed_from = 0;  ///< trials restored from the journal
  double seconds = 0;
  int jobs_used = 1;

  [[nodiscard]] RareEstimate imo_estimate() const { return imo.estimate(); }
  [[nodiscard]] RareEstimate dup_estimate() const { return dup.estimate(); }

  /// Expression (4) evaluated at the *simulated* geometry: same N, same
  /// ber, tau = the probe frame's wire length — the closed form this
  /// campaign cross-validates.
  [[nodiscard]] double closed_form_p4() const;

  /// Frames/hour of the reference bus at the simulated frame length.
  [[nodiscard]] double frames_per_hour() const;

  /// Per-sample variance of a naive 0/1 estimator at our p_hat, divided by
  /// the measured per-trial variance: how many times fewer trials this
  /// campaign needs than naive Monte-Carlo for equal error bars.
  [[nodiscard]] double variance_reduction() const;

  /// Naive trials needed to match this campaign's standard error.
  [[nodiscard]] double naive_trials_equivalent() const;

  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::string to_json() const;
};

// ---------------------------------------------------------------------------
// Round-stepped campaign: the plan/execute/merge loop as an object.
//
// run_campaign() is a thin driver over this class; the campaign
// orchestration service (src/serve/) drives the same object with its
// worker fleet.  execute_slot(i) is pure per slot (trial i draws only from
// its private Rng(seed, i) stream), so any set of threads may run any
// subset of slots, in any order, even more than once — which is what lets
// a dead worker's shard be requeued without perturbing the estimate.
// ---------------------------------------------------------------------------
class RareCampaign {
 public:
  /// Validates the config and resolves the bias profile (throws
  /// std::invalid_argument like run_campaign does).
  explicit RareCampaign(const RareConfig& cfg);

  /// Config as resolved (bias defaults filled in, fingerprint stable).
  [[nodiscard]] const RareConfig& config() const { return cfg_; }
  [[nodiscard]] const ProbePlan& probe_plan() const { return plan_; }

  /// Plan the next round of trials; returns the slot count (0 = target
  /// trial count reached, or cfg.stop raised).
  [[nodiscard]] std::size_t plan_round();

  /// Execute planned slot `i` (thread-safe across distinct — or even
  /// repeated — slot indices).
  void execute_slot(std::size_t i);

  /// Fold the executed round into the accumulators, in trial order.
  void merge_round();

  [[nodiscard]] bool finished() const;
  [[nodiscard]] long long trials_done() const { return done_; }
  [[nodiscard]] long long resumed_from() const { return resumed_from_; }

  /// One journal snapshot line ("snap ..."), exact to the bit (hex-float
  /// accumulators) — the checkpoint discipline the serve job journal
  /// reuses.  restore_checkpoint_line() is the inverse; false on a
  /// malformed line.
  [[nodiscard]] std::string checkpoint_line() const;
  [[nodiscard]] bool restore_checkpoint_line(const std::string& line);

  /// The result so far (cfg/plan/accumulators; the run_campaign driver
  /// adds wall-clock seconds and the worker count).
  [[nodiscard]] RareResult result() const;

 private:
  struct Slot {
    long long index = 0;
    double x_imo = 0;
    double x_dup = 0;
    long long timeouts = 0;
  };

  RareConfig cfg_;
  ProbePlan plan_;
  std::optional<PrefixState> prefix_;
  std::vector<Slot> slots_;
  long long done_ = 0;
  long long resumed_from_ = 0;
  RareAccumulator imo_;
  RareAccumulator dup_;
  long long timeouts_ = 0;
};

/// Run (or resume) a campaign.  If cfg.journal names an existing file, the
/// last snapshot is restored — its fingerprint must match — and the run
/// continues toward cfg.trials (a no-op if the journal already covers it).
[[nodiscard]] RareResult run_campaign(const RareConfig& cfg);

/// Restore a result (without running anything) from a journal file.
/// Throws std::runtime_error on a missing/corrupt journal or a fingerprint
/// mismatch against cfg.
[[nodiscard]] RareResult load_campaign(const RareConfig& cfg);

}  // namespace mcan
