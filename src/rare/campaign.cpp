#include "rare/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/prob_model.hpp"
#include "frame/encoder.hpp"
#include "util/text.hpp"

namespace mcan {

namespace {

std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%la", v);
  return buf;
}

constexpr const char* kJournalMagic = "mcan-rare-journal v1";

struct Snapshot {
  long long trials = 0;
  long long timeouts = 0;
  RareAccumulator imo;
  RareAccumulator dup;
};

std::string snapshot_line(const Snapshot& s) {
  std::ostringstream os;
  os << "snap " << s.trials << ' ' << s.timeouts << " | " << s.imo.serialize()
     << " | " << s.dup.serialize();
  return os.str();
}

bool parse_snapshot_line(const std::string& line, Snapshot& out) {
  if (line.rfind("snap ", 0) != 0) return false;
  const std::size_t bar1 = line.find(" | ");
  if (bar1 == std::string::npos) return false;
  const std::size_t bar2 = line.find(" | ", bar1 + 3);
  if (bar2 == std::string::npos) return false;
  if (std::sscanf(line.c_str() + 5, "%lld %lld", &out.trials, &out.timeouts) !=
      2) {
    return false;
  }
  return RareAccumulator::parse(line.substr(bar1 + 3, bar2 - bar1 - 3),
                                out.imo) &&
         RareAccumulator::parse(line.substr(bar2 + 3), out.dup);
}

/// Last valid snapshot line of the journal, after a fingerprint check.
/// Returns false when the file does not exist or holds no snapshot yet;
/// throws on corruption or mismatch.
bool read_journal(const std::string& path, const std::string& fingerprint,
                  std::string& out_line) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("rare: empty journal: " + path);
  }
  const std::string want = std::string(kJournalMagic) + " | " + fingerprint;
  if (line != want) {
    throw std::runtime_error(
        "rare: journal " + path +
        " was written by a different campaign configuration (fingerprint "
        "mismatch); refusing to resume");
  }
  bool any = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Snapshot snap;
    if (!parse_snapshot_line(line, snap)) {
      // A torn final line (interrupted write) is expected; anything after a
      // valid prefix is simply ignored.
      break;
    }
    out_line = line;
    any = true;
  }
  return any;
}

void append_journal_line(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("rare: cannot write journal: " + path);
  out << line << '\n';
}

}  // namespace

const char* rare_mode_name(RareMode m) {
  switch (m) {
    case RareMode::kNaive: return "naive";
    case RareMode::kImportance: return "importance";
    case RareMode::kSplitting: return "splitting";
  }
  return "?";
}

void RareConfig::validate() const {
  protocol.validate();
  if (n_nodes < 2) {
    throw std::invalid_argument("rare: n_nodes must be >= 2");
  }
  if (!(ber > 0.0) || ber > 1.0) {
    throw std::invalid_argument("rare: ber must be in (0, 1]");
  }
  if (trials < 1) {
    throw std::invalid_argument("rare: trials must be >= 1");
  }
  if (jobs < 0) {
    throw std::invalid_argument("rare: jobs must be >= 0 (0 = auto)");
  }
  if (batch < 1) {
    throw std::invalid_argument("rare: batch must be >= 1");
  }
  if (quiet_budget < 1) {
    throw std::invalid_argument("rare: quiet_budget must be >= 1");
  }
  if (checkpoint_every < 1) {
    throw std::invalid_argument("rare: checkpoint_every must be >= 1");
  }
  if (!(bitrate > 0.0)) {
    throw std::invalid_argument("rare: bitrate must be positive");
  }
  if (!(load > 0.0) || load > 1.0) {
    throw std::invalid_argument("rare: load must be in (0, 1]");
  }
  if (mode == RareMode::kSplitting) split.validate();
}

std::string RareConfig::fingerprint() const {
  // Everything that changes any trial's outcome for a given index.  Layout
  // knobs (jobs, batch, checkpoint cadence, journal path, trial count) are
  // deliberately excluded: the stream they index into is the same.
  std::ostringstream os;
  os << protocol.name() << " n=" << n_nodes << " ber=" << hexf(ber)
     << " mode=" << rare_mode_name(mode) << " seed=" << seed
     << " quiet=" << quiet_budget;
  if (mode != RareMode::kNaive) {
    os << " win=[" << bias.win_lo_rel << ',' << bias.win_hi_rel << ']'
       << " base=" << hexf(bias.base) << " wq=" << hexf(bias.window_q)
       << " txq=" << hexf(bias.tx_hot_q) << " tx=[";
    for (std::size_t i = 0; i < bias.tx_hot.size(); ++i) {
      os << (i ? "," : "") << bias.tx_hot[i];
    }
    os << "] rxq=" << hexf(bias.rx_hot_q) << " rx=[";
    for (std::size_t i = 0; i < bias.rx_hot.size(); ++i) {
      os << (i ? "," : "") << bias.rx_hot[i];
    }
    os << ']';
  }
  if (mode == RareMode::kSplitting) {
    os << " factor=" << split.factor << " cap=" << split.max_particles;
  }
  return os.str();
}

RareCampaign::RareCampaign(const RareConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  BiasProfile bias = cfg_.bias;
  if (cfg_.mode == RareMode::kNaive) {
    bias = unbiased_profile(cfg_.protocol,
                            cfg_.ber / static_cast<double>(cfg_.n_nodes));
  }
  plan_ = ProbePlan::make(cfg_.protocol, cfg_.n_nodes, cfg_.ber, bias,
                          cfg_.quiet_budget);
  cfg_.bias = plan_.bias;  // resolved defaults, so fingerprint() is stable
  if (cfg_.mode == RareMode::kSplitting && plan_.t_first == 0) {
    throw std::invalid_argument(
        "rare: splitting mode requires a tail-only bias (base == 0)");
  }
  if (plan_.t_first > 0) prefix_.emplace(plan_);
}

bool RareCampaign::finished() const {
  if (cfg_.stop && cfg_.stop->load(std::memory_order_relaxed)) return true;
  return done_ >= cfg_.trials;
}

std::size_t RareCampaign::plan_round() {
  slots_.clear();
  if (finished()) return 0;
  // Plan (sequential): slot i gets the global trial index, nothing else.
  const long long n = std::min<long long>(cfg_.batch, cfg_.trials - done_);
  slots_.assign(static_cast<std::size_t>(n), Slot{});
  for (long long i = 0; i < n; ++i) {
    slots_[static_cast<std::size_t>(i)].index = done_ + i;
  }
  return slots_.size();
}

void RareCampaign::execute_slot(std::size_t i) {
  Slot& s = slots_[i];
  s.x_imo = 0;
  s.x_dup = 0;
  s.timeouts = 0;
  Rng rng(cfg_.seed, static_cast<std::uint64_t>(s.index));
  if (cfg_.mode == RareMode::kSplitting) {
    const SplitTrialResult r = run_split_trial(plan_, *prefix_, cfg_.split, rng);
    s.x_imo = r.x_imo;
    s.x_dup = r.x_dup;
    s.timeouts = r.timeouts;
    return;
  }
  const PrefixState* prefix = prefix_ ? &*prefix_ : nullptr;
  const TrialOutcome out = run_biased_trial(plan_, prefix, rng);
  if (out.timeout) {
    s.timeouts = 1;
    return;
  }
  const double w = std::exp(out.llr);
  if (out.imo) s.x_imo = w;
  if (out.dup) s.x_dup = w;
}

void RareCampaign::merge_round() {
  // Merge (sequential, trial order): identical for every worker count.
  for (const Slot& s : slots_) {
    imo_.add(s.x_imo);
    dup_.add(s.x_dup);
    timeouts_ += s.timeouts;
  }
  done_ += static_cast<long long>(slots_.size());
  slots_.clear();
}

std::string RareCampaign::checkpoint_line() const {
  Snapshot snap;
  snap.trials = done_;
  snap.timeouts = timeouts_;
  snap.imo = imo_;
  snap.dup = dup_;
  return snapshot_line(snap);
}

bool RareCampaign::restore_checkpoint_line(const std::string& line) {
  Snapshot snap;
  if (!parse_snapshot_line(line, snap)) return false;
  done_ = snap.trials;
  resumed_from_ = snap.trials;
  timeouts_ = snap.timeouts;
  imo_ = snap.imo;
  dup_ = snap.dup;
  slots_.clear();
  return true;
}

RareResult RareCampaign::result() const {
  RareResult res;
  res.cfg = cfg_;
  res.plan = plan_;
  res.imo = imo_;
  res.dup = dup_;
  res.timeouts = timeouts_;
  res.resumed_from = resumed_from_;
  return res;
}

namespace {

void execute_round(RareCampaign& campaign, std::size_t n_slots, int jobs) {
  if (jobs <= 1 || n_slots <= 1) {
    for (std::size_t i = 0; i < n_slots; ++i) campaign.execute_slot(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&campaign, &next, n_slots] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n_slots) return;
      campaign.execute_slot(i);
    }
  };
  const int n = std::min<int>(jobs, static_cast<int>(n_slots));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

}  // namespace

RareResult run_campaign(const RareConfig& cfg0) {
  RareCampaign campaign(cfg0);
  const RareConfig& cfg = campaign.config();

  const std::string fp = cfg.fingerprint();
  if (!cfg.journal.empty()) {
    std::string snap_line;
    if (read_journal(cfg.journal, fp, snap_line)) {
      if (!campaign.restore_checkpoint_line(snap_line)) {
        throw std::runtime_error("rare: corrupt journal snapshot in " +
                                 cfg.journal);
      }
    } else {
      append_journal_line(cfg.journal,
                          std::string(kJournalMagic) + " | " + fp);
    }
  }

  const int jobs =
      cfg.jobs > 0 ? cfg.jobs
                   : static_cast<int>(
                         std::max(1u, std::thread::hardware_concurrency()));

  const auto t0 = std::chrono::steady_clock::now();
  long long last_snap = campaign.trials_done();
  for (;;) {
    const std::size_t n = campaign.plan_round();
    if (n == 0) break;
    // Execute (parallel): trials are independent, each on its own stream.
    execute_round(campaign, n, jobs);
    campaign.merge_round();
    const long long done = campaign.trials_done();
    if (!cfg.journal.empty() &&
        (done - last_snap >= cfg.checkpoint_every || done >= cfg.trials)) {
      append_journal_line(cfg.journal, campaign.checkpoint_line());
      last_snap = done;
    }
    if (cfg.on_progress) cfg.on_progress(done, cfg.trials);
  }
  // A cooperative stop flushes whatever the periodic cadence had not yet
  // written, so an interrupted campaign resumes from its last full round.
  if (!cfg.journal.empty() && campaign.trials_done() > last_snap) {
    append_journal_line(cfg.journal, campaign.checkpoint_line());
  }

  RareResult res = campaign.result();
  res.jobs_used = jobs;
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

RareResult load_campaign(const RareConfig& cfg0) {
  RareCampaign campaign(cfg0);
  if (campaign.config().journal.empty()) {
    throw std::runtime_error("rare: load_campaign needs a journal path");
  }
  std::string snap_line;
  if (!read_journal(campaign.config().journal,
                    campaign.config().fingerprint(), snap_line)) {
    throw std::runtime_error("rare: no journal at " +
                             campaign.config().journal);
  }
  if (!campaign.restore_checkpoint_line(snap_line)) {
    throw std::runtime_error("rare: corrupt journal snapshot in " +
                             campaign.config().journal);
  }
  return campaign.result();
}

double RareResult::closed_form_p4() const {
  ModelParams mp;
  mp.n_nodes = cfg.n_nodes;
  mp.ber = cfg.ber;
  mp.frame_bits = wire_length(plan.frame, cfg.protocol.eof_bits());
  mp.bitrate = cfg.bitrate;
  mp.load = cfg.load;
  return p_new_scenario_per_frame(mp);
}

double RareResult::frames_per_hour() const {
  ModelParams mp;
  mp.n_nodes = cfg.n_nodes;
  mp.ber = cfg.ber;
  mp.frame_bits = wire_length(plan.frame, cfg.protocol.eof_bits());
  mp.bitrate = cfg.bitrate;
  mp.load = cfg.load;
  return mp.frames_per_hour();
}

double RareResult::variance_reduction() const {
  const RareEstimate est = imo.estimate();
  const double var = imo.moments().variance();
  if (!(var > 0.0) || est.p_hat <= 0.0) return 0.0;
  return est.p_hat * (1.0 - est.p_hat) / var;
}

double RareResult::naive_trials_equivalent() const {
  const RareEstimate est = imo.estimate();
  if (!(est.std_err > 0.0) || est.p_hat <= 0.0) return 0.0;
  return est.p_hat * (1.0 - est.p_hat) / (est.std_err * est.std_err);
}

std::string RareResult::summary() const {
  const RareEstimate est = imo.estimate();
  const double p4 = closed_form_p4();
  std::ostringstream os;
  os << "mode=" << rare_mode_name(cfg.mode) << " protocol="
     << cfg.protocol.name() << " n=" << cfg.n_nodes << " ber=" << sci(cfg.ber)
     << " trials=" << imo.trials();
  if (resumed_from > 0) os << " (resumed from " << resumed_from << ")";
  os << "\n  P{IMO}/frame  = " << est.to_string();
  os << "\n  expr(4)       = " << sci(p4)
     << (p4 > 0 && est.p_hat > 0
             ? "  (ratio " + sci(est.p_hat / p4, 2) + ")"
             : "");
  os << "\n  IMO/hour      = " << sci(est.p_hat * frames_per_hour())
     << "  (closed form " << sci(p4 * frames_per_hour()) << ")";
  const RareEstimate dup_est = dup.estimate();
  os << "\n  P{dup}/frame  = " << dup_est.to_string();
  if (cfg.mode != RareMode::kNaive) {
    os << "\n  variance reduction vs naive = " << sci(variance_reduction(), 2)
       << "  (naive trials for equal error: "
       << sci(naive_trials_equivalent(), 2) << ")";
  }
  if (timeouts > 0) os << "\n  timeouts = " << timeouts;
  return os.str();
}

std::string RareResult::to_json() const {
  const RareEstimate est = imo.estimate();
  const RareEstimate dup_est = dup.estimate();
  const double p4 = closed_form_p4();
  std::ostringstream os;
  os << "{\n";
  os << "  \"protocol\": \"" << json_escape(cfg.protocol.name()) << "\",\n";
  os << "  \"mode\": \"" << rare_mode_name(cfg.mode) << "\",\n";
  os << "  \"n_nodes\": " << cfg.n_nodes << ",\n";
  os << "  \"ber\": " << json_number(cfg.ber) << ",\n";
  os << "  \"seed\": " << cfg.seed << ",\n";
  os << "  \"trials\": " << imo.trials() << ",\n";
  os << "  \"frame_bits\": " << wire_length(plan.frame, cfg.protocol.eof_bits())
     << ",\n";
  os << "  \"imo\": {\"p_hat\": " << json_number(est.p_hat)
     << ", \"std_err\": " << json_number(est.std_err)
     << ", \"ci_lo\": " << json_number(est.ci_lo)
     << ", \"ci_hi\": " << json_number(est.ci_hi)
     << ", \"rel_halfwidth\": " << json_number(est.rel_halfwidth)
     << ", \"ess\": " << json_number(est.ess) << ", \"hits\": " << est.hits
     << "},\n";
  os << "  \"dup\": {\"p_hat\": " << json_number(dup_est.p_hat)
     << ", \"std_err\": " << json_number(dup_est.std_err)
     << ", \"hits\": " << dup_est.hits << "},\n";
  os << "  \"closed_form_p4\": " << json_number(p4) << ",\n";
  os << "  \"imo_per_hour\": " << json_number(est.p_hat * frames_per_hour())
     << ",\n";
  os << "  \"closed_form_per_hour\": " << json_number(p4 * frames_per_hour())
     << ",\n";
  os << "  \"variance_reduction\": " << json_number(variance_reduction())
     << ",\n";
  os << "  \"naive_trials_equivalent\": "
     << json_number(naive_trials_equivalent()) << ",\n";
  os << "  \"timeouts\": " << timeouts << ",\n";
  os << "  \"seconds\": " << json_number(seconds) << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace mcan
