#include "rare/splitting.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace mcan {

namespace {

/// One live trajectory: bus state, its private injector (likelihood state
/// travels with it), branch weight, and the delivery/TxSuccess counts
/// accumulated by *ancestors* (clone_runtime_state does not copy journals,
/// so counts are carried as offsets across splits).
struct Particle {
  std::unique_ptr<Network> net;
  std::unique_ptr<BiasedFaults> inj;
  double weight = 1.0;
  int level = 0;
  std::vector<int> delivery_offsets;
  int tx_offset = 0;
};

int level_of(const BiasedFaults& inj) {
  int lvl = 0;
  if (inj.window_flips() > 0) lvl = 1;
  if (inj.rx_window_flips() > 0) lvl = 2;
  if (inj.rx_window_flips() > 0 && inj.tx_window_flips() > 0) lvl = 3;
  return lvl;
}

/// Clone `src` at its current bit time into an identical particle with an
/// independent random stream.
Particle clone_particle(const ProbePlan& plan, const Particle& src,
                        Rng child_rng) {
  Particle p;
  p.net = std::make_unique<Network>(plan.n_nodes, plan.protocol);
  for (int i = 0; i < plan.n_nodes; ++i) {
    p.net->node(i).clone_runtime_state(src.net->node(i));
  }
  p.net->sim().warp_to(src.net->sim().now());
  p.inj = std::make_unique<BiasedFaults>(*src.inj);
  p.inj->reseed(child_rng);
  p.net->set_injector(*p.inj);
  p.level = src.level;
  // Fold the parent's own counts into the child's offsets: the child's
  // fresh journals restart at zero from the clone point.
  p.delivery_offsets = src.delivery_offsets;
  for (int i = 0; i < plan.n_nodes; ++i) {
    p.delivery_offsets[static_cast<std::size_t>(i)] +=
        static_cast<int>(src.net->deliveries(i).size());
  }
  p.tx_offset = src.tx_offset +
                static_cast<int>(src.net->log().count(EventKind::TxSuccess, 0));
  return p;
}

}  // namespace

void SplitParams::validate() const {
  if (factor < 1) {
    throw std::invalid_argument("splitting: factor must be >= 1, got " +
                                std::to_string(factor));
  }
  if (max_particles < 1) {
    throw std::invalid_argument("splitting: max_particles must be >= 1");
  }
}

SplitTrialResult run_split_trial(const ProbePlan& plan,
                                 const PrefixState& prefix,
                                 const SplitParams& sp, Rng rng) {
  sp.validate();
  if (plan.t_first == 0 || plan.bias.base > 0.0) {
    throw std::logic_error(
        "splitting requires a tail-only plan (flips confined to the window)");
  }
  // Beyond this bit no flip — hence no level crossing — can occur.
  const BitTime t_cut =
      static_cast<BitTime>(plan.eof_start + plan.bias.win_hi_rel + 1);

  SplitTrialResult res;
  long long spawned = 1;       // particles created for this root
  std::uint64_t clone_seq = 0; // unique rng fork tags within the trial

  std::vector<Particle> stack;
  {
    Particle root;
    root.net = make_trial_bus(plan, &prefix);
    root.inj = std::make_unique<BiasedFaults>(plan.ber_star, plan.bias,
                                              plan.eof_start, rng);
    root.inj->account_clean_prefix(plan.prefix_draws());
    root.net->set_injector(*root.inj);
    root.delivery_offsets.assign(static_cast<std::size_t>(plan.n_nodes), 0);
    stack.push_back(std::move(root));
  }

  while (!stack.empty()) {
    Particle p = std::move(stack.back());
    stack.pop_back();

    // Advance through the remainder of the window bit by bit, splitting at
    // each first arrival to a higher level.
    bool split_away = false;
    while (p.net->sim().now() < t_cut) {
      p.net->sim().step();
      const int lvl = level_of(*p.inj);
      if (lvl <= p.level) continue;
      p.level = lvl;
      res.max_level = std::max(res.max_level, lvl);
      if (sp.factor < 2 || spawned + sp.factor > sp.max_particles) {
        continue;  // cap reached: carry on unsplit, weight unchanged
      }
      // Replace the parent with `factor` children of weight w/factor: the
      // parent continues as one of them (keeping its stream), the rest are
      // clones with independent streams.
      p.weight /= static_cast<double>(sp.factor);
      for (int c = 1; c < sp.factor; ++c) {
        Particle child = clone_particle(plan, p, p.inj->fork(++clone_seq));
        child.weight = p.weight;
        stack.push_back(std::move(child));
      }
      spawned += sp.factor - 1;
      // Re-queue the parent too so clones and parent are processed alike
      // (depth-first order, deterministic).
      stack.push_back(std::move(p));
      split_away = true;
      break;
    }
    if (split_away) continue;

    // Window exhausted: no further crossings possible.  Run to quiescence
    // and classify with ancestor offsets folded in.
    const bool quiet = p.net->run_until_quiet(plan.quiet_budget);
    std::vector<int> deliveries(static_cast<std::size_t>(plan.n_nodes), 0);
    for (int i = 0; i < plan.n_nodes; ++i) {
      deliveries[static_cast<std::size_t>(i)] =
          static_cast<int>(p.net->deliveries(i).size()) +
          p.delivery_offsets[static_cast<std::size_t>(i)] +
          prefix.deliveries[static_cast<std::size_t>(i)];
    }
    const int tx_success =
        static_cast<int>(p.net->log().count(EventKind::TxSuccess, 0)) +
        p.tx_offset + prefix.tx_success;
    const TrialOutcome out =
        classify_trial(plan.n_nodes, deliveries, tx_success, !quiet);

    ++res.leaves;
    if (out.timeout) {
      ++res.timeouts;
      continue;
    }
    const double w = std::exp(p.inj->llr()) * p.weight;
    if (out.imo) res.x_imo += w;
    if (out.dup) res.x_dup += w;
  }
  return res;
}

}  // namespace mcan
