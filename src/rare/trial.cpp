#include "rare/trial.hpp"

#include <stdexcept>

#include "analysis/tagged.hpp"
#include "scenario/model_check.hpp"

namespace mcan {

ProbePlan ProbePlan::make(const ProtocolParams& protocol, int n_nodes,
                          double ber, BiasProfile bias, BitTime quiet_budget) {
  protocol.validate();
  if (n_nodes < 2) {
    throw std::invalid_argument("rare: n_nodes must be >= 2, got " +
                                std::to_string(n_nodes));
  }
  if (!(ber > 0.0) || ber > 1.0) {
    throw std::invalid_argument("rare: ber must be in (0, 1]");
  }
  ProbePlan plan;
  plan.protocol = protocol;
  plan.n_nodes = n_nodes;
  plan.ber_star = ber / n_nodes;
  bias.resolve(protocol);
  bias.validate();
  plan.bias = bias;
  plan.frame = model_check_frame();
  plan.eof_start = model_check_eof_start(protocol);
  plan.quiet_budget = quiet_budget;
  if (bias.base <= 0.0) {
    // Tail-only: the prefix is clean under the proposal with certainty, so
    // it can be simulated once and cloned.  (The window never starts
    // before the frame: eof_start + win_lo_rel >= 0 is enforced here.)
    const int cut = plan.eof_start + bias.win_lo_rel;
    if (cut < 0) {
      throw std::invalid_argument(
          "rare: bias window starts before the probe frame (win_lo_rel=" +
          std::to_string(bias.win_lo_rel) + ")");
    }
    plan.t_first = static_cast<BitTime>(cut);
  } else {
    plan.t_first = 0;  // flips possible anywhere: simulate from bit 0
  }
  return plan;
}

PrefixState::PrefixState(const ProbePlan& plan)
    : net(plan.n_nodes, plan.protocol) {
  net.node(0).enqueue(plan.frame);
  while (net.sim().now() < plan.t_first) net.sim().step();
  deliveries.assign(static_cast<std::size_t>(plan.n_nodes), 0);
  for (int i = 0; i < plan.n_nodes; ++i) {
    deliveries[static_cast<std::size_t>(i)] =
        static_cast<int>(net.deliveries(i).size());
  }
  tx_success = static_cast<int>(net.log().count(EventKind::TxSuccess, 0));
}

TrialOutcome classify_trial(int n_nodes, const std::vector<int>& deliveries,
                            int tx_success, bool timeout) {
  TrialOutcome out;
  if (timeout) {
    out.timeout = true;
    return out;
  }
  bool any = false;
  bool all = true;
  for (int i = 1; i < n_nodes; ++i) {
    const int c = deliveries[static_cast<std::size_t>(i)];
    if (c > 0) any = true;
    if (c == 0) all = false;
    if (c > 1) out.dup = true;
  }
  const bool sender_has = tx_success > 0;
  out.imo = (any || sender_has) && !all;
  out.loss = !any && sender_has;
  return out;
}

std::unique_ptr<Network> make_trial_bus(const ProbePlan& plan,
                                        const PrefixState* prefix) {
  auto net = std::make_unique<Network>(plan.n_nodes, plan.protocol);
  if (prefix) {
    for (int i = 0; i < plan.n_nodes; ++i) {
      net->node(i).clone_runtime_state(prefix->net.node(i));
    }
    net->sim().warp_to(plan.t_first);
  } else {
    net->node(0).enqueue(plan.frame);
  }
  return net;
}

TrialOutcome run_biased_trial(const ProbePlan& plan, const PrefixState* prefix,
                              Rng rng) {
  if (!prefix && plan.t_first != 0) {
    throw std::logic_error("rare: plan expects a prefix template");
  }
  std::unique_ptr<Network> net = make_trial_bus(plan, prefix);
  BiasedFaults inj(plan.ber_star, plan.bias, plan.eof_start, rng);
  if (prefix) inj.account_clean_prefix(plan.prefix_draws());
  net->set_injector(inj);

  const bool quiet = net->run_until_quiet(plan.quiet_budget);

  std::vector<int> deliveries(static_cast<std::size_t>(plan.n_nodes), 0);
  for (int i = 0; i < plan.n_nodes; ++i) {
    deliveries[static_cast<std::size_t>(i)] =
        static_cast<int>(net->deliveries(i).size()) +
        (prefix ? prefix->deliveries[static_cast<std::size_t>(i)] : 0);
  }
  const int tx_success =
      static_cast<int>(net->log().count(EventKind::TxSuccess, 0)) +
      (prefix ? prefix->tx_success : 0);

  TrialOutcome out =
      classify_trial(plan.n_nodes, deliveries, tx_success, !quiet);
  out.llr = inj.llr();
  return out;
}

}  // namespace mcan
