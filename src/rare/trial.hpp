// One rare-event trial: the probe scenario (the model checker's tagged
// frame, transmitted by node 0 to N-1 receivers), executed under the
// importance-sampling injector and classified with the reference
// inconsistency semantics (IMO / duplicate / total loss / timeout).
//
// Trials in tail-only mode share a clean-prefix template: one bus is
// stepped (fault-free) to the start of the flip window, and every trial
// starts from a cloned copy (CanController::clone_runtime_state +
// Simulator::warp_to) — the same machinery the model checker uses for
// prefix cloning.  The skipped Bernoulli draws are folded into the
// trial's likelihood ratio analytically, so the estimator is exactly the
// one a full from-bit-0 simulation would produce for tail-window events.
#pragma once

#include <memory>
#include <vector>

#include "core/network.hpp"
#include "rare/bias.hpp"

namespace mcan {

/// Per-campaign constants: the probe frame, its EOF anchor, the resolved
/// bias profile and the derived cloning cut.
struct ProbePlan {
  ProtocolParams protocol;
  int n_nodes = 32;
  double ber_star = 0;       ///< nominal per-node per-bit probability
  BiasProfile bias;          ///< resolved window + proposal
  Frame frame;               ///< the tagged probe frame
  int eof_start = 0;         ///< absolute bit of the first EOF bit
  BitTime t_first = 0;       ///< prefix-clone cut (0 = simulate from bit 0)
  BitTime quiet_budget = 30000;

  /// Resolve the plan: probe frame, EOF anchor, bias window defaults, and
  /// the clone cut (only in tail-only mode, where the prefix is provably
  /// clean under the proposal).
  [[nodiscard]] static ProbePlan make(const ProtocolParams& protocol,
                                      int n_nodes, double ber,
                                      BiasProfile bias,
                                      BitTime quiet_budget = 30000);

  /// Bernoulli draws skipped by starting at t_first instead of bit 0.
  [[nodiscard]] long long prefix_draws() const {
    return static_cast<long long>(n_nodes) * static_cast<long long>(t_first);
  }
};

/// The shared clean-prefix template (immutable after construction; safe to
/// clone from concurrently).
struct PrefixState {
  Network net;
  std::vector<int> deliveries;  ///< per node, accumulated in the prefix
  int tx_success = 0;

  explicit PrefixState(const ProbePlan& plan);
};

/// Reference classification of a finished run (same semantics as the model
/// checker and bench_imo_rate): deliveries are per-receiver counts.
struct TrialOutcome {
  bool imo = false;      ///< someone (or the sender) has it, someone lacks it
  bool dup = false;      ///< some receiver delivered it twice
  bool loss = false;     ///< sender believes success, nobody has it
  bool timeout = false;  ///< the bus did not quiesce within the budget
  double llr = 0;        ///< log importance weight of the whole run
};

[[nodiscard]] TrialOutcome classify_trial(int n_nodes,
                                          const std::vector<int>& deliveries,
                                          int tx_success, bool timeout);

/// Run one importance-sampled trial.  `prefix` may be null only when
/// plan.t_first == 0 (full simulation from bit 0).  `rng` is the trial's
/// private stream — the caller derives it as Rng(seed, trial_index) so
/// results are independent of scheduling.
[[nodiscard]] TrialOutcome run_biased_trial(const ProbePlan& plan,
                                            const PrefixState* prefix,
                                            Rng rng);

/// Build a network positioned at the plan's clone cut: fresh bus cloned
/// from the template (or a fresh bus with the probe enqueued when there is
/// no prefix).  Shared by the plain trial runner and the splitting engine.
[[nodiscard]] std::unique_ptr<Network> make_trial_bus(
    const ProbePlan& plan, const PrefixState* prefix);

}  // namespace mcan
