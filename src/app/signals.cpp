#include "app/signals.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mcan {

namespace {

std::uint64_t payload_raw(const Frame& f) {
  std::uint64_t v = 0;
  for (int i = 0; i < kMaxDataBytes; ++i) {
    v |= static_cast<std::uint64_t>(f.data[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

void store_payload(std::uint64_t v, Frame& f) {
  for (int i = 0; i < kMaxDataBytes; ++i) {
    f.data[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  }
}

std::uint64_t mask_of(int length) {
  return length >= 64 ? ~0ULL : ((1ULL << length) - 1);
}

}  // namespace

std::int64_t SignalSpec::raw_min() const {
  if (!is_signed) return 0;
  return length >= 64 ? std::numeric_limits<std::int64_t>::min()
                      : -(static_cast<std::int64_t>(1) << (length - 1));
}

std::int64_t SignalSpec::raw_max() const {
  if (is_signed) {
    return length >= 64 ? std::numeric_limits<std::int64_t>::max()
                        : (static_cast<std::int64_t>(1) << (length - 1)) - 1;
  }
  return length >= 64
             ? std::numeric_limits<std::int64_t>::max()  // pragmatic cap
             : static_cast<std::int64_t>(mask_of(length));
}

void SignalSpec::validate() const {
  if (name.empty()) throw std::invalid_argument("signal needs a name");
  if (length < 1 || length > 64) {
    throw std::invalid_argument(name + ": length must be 1..64");
  }
  if (start_bit < 0 || start_bit + length > 64) {
    throw std::invalid_argument(name + ": exceeds the 64-bit payload");
  }
  if (scale == 0.0) throw std::invalid_argument(name + ": zero scale");
}

const SignalSpec* MessageSpec::find(const std::string& signal) const {
  for (const SignalSpec& s : signals) {
    if (s.name == signal) return &s;
  }
  return nullptr;
}

void MessageSpec::validate() const {
  if (extended ? can_id > kMaxExtId : can_id > kMaxId) {
    throw std::invalid_argument(name + ": identifier out of range");
  }
  if (dlc > kMaxDataBytes) throw std::invalid_argument(name + ": dlc > 8");
  std::uint64_t used = 0;
  for (const SignalSpec& s : signals) {
    s.validate();
    if (s.start_bit + s.length > 8 * dlc) {
      throw std::invalid_argument(s.name + ": exceeds the dlc payload");
    }
    const std::uint64_t bits = mask_of(s.length) << s.start_bit;
    if (used & bits) {
      throw std::invalid_argument(s.name + ": overlaps another signal");
    }
    used |= bits;
  }
}

Frame encode_signals(const MessageSpec& spec, const SignalValues& values) {
  spec.validate();
  Frame f = spec.extended ? Frame::make_extended(spec.can_id, {})
                          : Frame::make_blank(spec.can_id, spec.dlc);
  f.dlc = spec.dlc;
  for (const auto& [name, value] : values) {
    const SignalSpec* sig = spec.find(name);
    if (sig == nullptr) {
      throw std::invalid_argument("unknown signal: " + name);
    }
    set_signal(*sig, value, f);
  }
  return f;
}

void set_signal(const SignalSpec& sig, double value, Frame& f) {
  const double clamped = std::clamp(value, sig.phys_min(), sig.phys_max());
  const auto raw =
      static_cast<std::int64_t>(std::llround((clamped - sig.offset) / sig.scale));
  const std::uint64_t bits =
      static_cast<std::uint64_t>(raw) & mask_of(sig.length);
  std::uint64_t payload = payload_raw(f);
  payload &= ~(mask_of(sig.length) << sig.start_bit);
  payload |= bits << sig.start_bit;
  store_payload(payload, f);
}

double decode_signal(const SignalSpec& sig, const Frame& f) {
  std::uint64_t raw = (payload_raw(f) >> sig.start_bit) & mask_of(sig.length);
  std::int64_t value;
  if (sig.is_signed && sig.length < 64 &&
      (raw & (1ULL << (sig.length - 1)))) {
    value = static_cast<std::int64_t>(raw | ~mask_of(sig.length));
  } else {
    value = static_cast<std::int64_t>(raw);
  }
  return static_cast<double>(value) * sig.scale + sig.offset;
}

SignalValues decode_signals(const MessageSpec& spec, const Frame& f) {
  if (f.id != spec.can_id || f.extended != spec.extended) {
    throw std::invalid_argument(spec.name + ": frame id mismatch");
  }
  if (f.dlc < spec.dlc) {
    throw std::invalid_argument(spec.name + ": frame too short");
  }
  SignalValues out;
  for (const SignalSpec& s : spec.signals) {
    out.emplace(s.name, decode_signal(s, f));
  }
  return out;
}

}  // namespace mcan
