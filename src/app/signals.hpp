// Signal codec: physical values packed into CAN payloads, DBC-style.
//
// A MessageSpec names a CAN identifier and a set of signals; each signal
// occupies `length` bits starting at `start_bit` (Intel/little-endian bit
// order: bit i lives in byte i/8, bit position i%8), holds an optionally
// signed raw integer, and maps to a physical value via
//     physical = raw * scale + offset.
// This is the application substrate a control system puts on top of the
// broadcast layer — and what makes the consistency properties *matter*:
// a brake-pressure signal decoded from an inconsistently delivered frame
// is a plant-level fault.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "frame/frame.hpp"

namespace mcan {

struct SignalSpec {
  std::string name;
  int start_bit = 0;       ///< 0..63, Intel bit order
  int length = 1;          ///< 1..64
  double scale = 1.0;
  double offset = 0.0;
  bool is_signed = false;

  /// Raw-value range representable by this signal.
  [[nodiscard]] std::int64_t raw_min() const;
  [[nodiscard]] std::int64_t raw_max() const;

  [[nodiscard]] double phys_min() const { return raw_min() * scale + offset; }
  [[nodiscard]] double phys_max() const { return raw_max() * scale + offset; }

  /// Throws std::invalid_argument on nonsense (bad range, zero scale...).
  void validate() const;
};

struct MessageSpec {
  std::string name;
  std::uint32_t can_id = 0;
  bool extended = false;
  std::uint8_t dlc = 8;
  std::vector<SignalSpec> signals;

  [[nodiscard]] const SignalSpec* find(const std::string& signal) const;

  /// Throws std::invalid_argument on overlapping signals, signals past the
  /// payload, or invalid component specs.
  void validate() const;
};

using SignalValues = std::map<std::string, double>;

/// Encode the given physical values (missing signals encode as raw 0;
/// unknown names throw).  Values are clamped to the signal's range and
/// rounded to the nearest representable step.
[[nodiscard]] Frame encode_signals(const MessageSpec& spec,
                                   const SignalValues& values);

/// Decode every signal of `spec` from a frame.  Throws if the frame does
/// not match the spec's identifier/dlc.
[[nodiscard]] SignalValues decode_signals(const MessageSpec& spec,
                                          const Frame& f);

/// Decode a single signal.
[[nodiscard]] double decode_signal(const SignalSpec& sig, const Frame& f);

/// Overwrite one signal in an existing frame payload.
void set_signal(const SignalSpec& sig, double value, Frame& f);

}  // namespace mcan
