#include "app/scheduler.hpp"

namespace mcan {

void PeriodicScheduler::add(PeriodicMessage msg) {
  msg.spec.validate();
  Entry e;
  e.next_release = msg.phase;
  e.msg = std::move(msg);
  entries_.push_back(std::move(e));
}

void PeriodicScheduler::tick(BitTime now) {
  for (Entry& e : entries_) {
    while (now >= e.next_release) {
      const SignalValues values =
          e.msg.sampler ? e.msg.sampler(now) : SignalValues{};
      const Frame f = encode_signals(e.msg.spec, values);
      ++releases_;
      if (ctrl_->replace_pending(f)) {
        // The previous instance never made it out: overrun, superseded.
        ++overruns_;
      } else {
        ctrl_->enqueue(f);
      }
      e.next_release += e.msg.period;
    }
  }
}

}  // namespace mcan
