// Periodic transmission scheduler: the standard shape of control traffic
// on a CAN bus (sensor values every T bit times, staggered offsets), with
// overrun accounting — the queue-depth and deadline statistics a bus
// designer watches.
#pragma once

#include <functional>
#include <vector>

#include "app/signals.hpp"
#include "core/controller.hpp"

namespace mcan {

struct PeriodicMessage {
  MessageSpec spec;
  BitTime period = 1000;
  BitTime phase = 0;  ///< first release offset
  /// Called at each release to sample the current values.
  std::function<SignalValues(BitTime)> sampler;
};

class PeriodicScheduler {
 public:
  explicit PeriodicScheduler(CanController& ctrl) : ctrl_(&ctrl) {}

  void add(PeriodicMessage msg);

  /// Advance to `now` (call once per bit, or at any stride): enqueues every
  /// message whose release time passed.  If the previous instance is still
  /// sitting in the controller queue, the release is counted as an overrun
  /// and the stale instance is superseded (fresher data wins — standard
  /// practice for periodic state messages).
  void tick(BitTime now);

  [[nodiscard]] int releases() const { return releases_; }
  [[nodiscard]] int overruns() const { return overruns_; }

 private:
  struct Entry {
    PeriodicMessage msg;
    BitTime next_release = 0;
  };

  CanController* ctrl_;
  std::vector<Entry> entries_;
  int releases_ = 0;
  int overruns_ = 0;
};

}  // namespace mcan
