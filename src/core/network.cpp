#include "core/network.hpp"

#include "sim/fast/fast_kernel.hpp"
#include "sim/kernel.hpp"

namespace mcan {

Network::Network(int n, const ProtocolParams& protocol,
                 const FaultConfinementConfig& fc) {
  deliveries_.resize(static_cast<std::size_t>(n));
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ControllerConfig cfg;
    cfg.id = static_cast<NodeId>(i);
    cfg.protocol = protocol;
    cfg.fc = fc;
    auto node = std::make_unique<CanController>(cfg, log_);
    auto& journal = deliveries_[static_cast<std::size_t>(i)];
    node->add_delivery_handler(
        [&journal](const Frame& f, BitTime t) { journal.push_back({f, t}); });
    sim_.attach(*node);
    nodes_.push_back(std::move(node));
  }
  // One install point for every engine that assembles buses through
  // Network: the scenario runner, fuzzer, rare-event trials, model
  // checker, rsm, attack sweeps and serve backends all inherit the
  // process-global --kernel selection here.
  if (default_kernel() == KernelKind::Fast) {
    sim_.install_kernel(make_fast_kernel(sim_));
  }
}

void Network::enable_trace() { sim_.add_observer(trace_); }

bool Network::run_until_quiet(BitTime max_bits) {
  // Let at least one bit pass so a just-enqueued frame gets started.
  sim_.step();
  return sim_.run_until(
      [this] {
        for (const auto& node : nodes_) {
          if (sim_.crashed(node->id())) continue;
          if (!node->active()) continue;
          if (!node->bus_idle() || node->pending_tx() > 0) return false;
        }
        return true;
      },
      max_bits);
}

std::vector<std::string> Network::labels() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    out.push_back("node " + std::to_string(node->id()));
  }
  return out;
}

}  // namespace mcan
