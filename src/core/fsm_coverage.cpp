#include "core/fsm_coverage.hpp"

#include <atomic>

namespace mcan {

const char* fsm_state_name(FsmState s) {
  switch (s) {
    case FsmState::Idle: return "Idle";
    case FsmState::Intermission: return "Intermission";
    case FsmState::BusOffWait: return "BusOffWait";
    case FsmState::Suspend: return "Suspend";
    case FsmState::Tx: return "Tx";
    case FsmState::Rx: return "Rx";
    case FsmState::RxTail: return "RxTail";
    case FsmState::RxEof: return "RxEof";
    case FsmState::ErrorFlag: return "ErrorFlag";
    case FsmState::PassiveFlag: return "PassiveFlag";
    case FsmState::OverloadFlag: return "OverloadFlag";
    case FsmState::DelimWait: return "DelimWait";
    case FsmState::Delim: return "Delim";
    case FsmState::Sampling: return "Sampling";
    case FsmState::ExtFlag: return "ExtFlag";
  }
  return "?";
}

bool fsm_coverage_compiled() {
#ifdef MCAN_ENABLE_FSM_COVERAGE
  return true;
#else
  return false;
#endif
}

namespace fsm_coverage {

namespace {

constexpr int kVariants = 3;  // StandardCan, MinorCan, MajorCan

// One flat matrix of relaxed atomics; zero-initialised at program start.
std::atomic<std::uint64_t>
    g_counts[kVariants][kFsmStateCount][kFsmStateCount];

int vi(Variant v) { return static_cast<int>(v); }
int si(FsmState s) { return static_cast<int>(s); }

}  // namespace

void record(Variant v, FsmState from, FsmState to) noexcept {
  g_counts[vi(v)][si(from)][si(to)].fetch_add(1, std::memory_order_relaxed);
}

namespace {
thread_local TransitionSink* t_sink = nullptr;
}  // namespace

TransitionSink* set_thread_sink(TransitionSink* sink) noexcept {
  TransitionSink* prev = t_sink;
  t_sink = sink;
  return prev;
}

void note(Variant v, FsmState from, FsmState to) noexcept {
  if (t_sink != nullptr) t_sink->on_transition(v, from, to);
#ifdef MCAN_ENABLE_FSM_COVERAGE
  record(v, from, to);
#endif
}

void reset() {
  for (auto& per_variant : g_counts) {
    for (auto& row : per_variant) {
      for (auto& cell : row) cell.store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t count(Variant v, FsmState from, FsmState to) {
  return g_counts[vi(v)][si(from)][si(to)].load(std::memory_order_relaxed);
}

std::vector<FsmTransitionCount> snapshot(Variant v) {
  std::vector<FsmTransitionCount> out;
  for (int f = 0; f < kFsmStateCount; ++f) {
    for (int t = 0; t < kFsmStateCount; ++t) {
      const std::uint64_t c =
          g_counts[vi(v)][f][t].load(std::memory_order_relaxed);
      if (c == 0) continue;
      out.push_back({static_cast<FsmState>(f), static_cast<FsmState>(t), c});
    }
  }
  return out;
}

}  // namespace fsm_coverage

}  // namespace mcan
