// FSM transition-coverage instrumentation for the controller.
//
// When the build option MCAN_FSM_COVERAGE is ON (compile definition
// MCAN_ENABLE_FSM_COVERAGE, mirroring the MCAN_CONTRACTS pattern), every
// controller state change is counted in a global per-variant transition
// matrix.  The model checker and CI use this to prove which parts of the
// controller FSM a sweep actually exercised — and, via the expected-
// transition table in analysis/coverage.hpp, which legal transitions were
// *never* exercised and whether any transition outside the hand-derived
// FSM contract fired at all.
//
// The counters are process-global (like a coverage profile) and atomic
// with relaxed ordering, so the parallel exploration engine can record
// from many worker threads without synchronisation cost.  They are *not*
// part of simulation semantics: with the option OFF the controller keeps
// no global counters.
//
// Independently of the build option, a *thread-local* transition sink can
// be installed with fsm_coverage::set_thread_sink(): every transition
// taken by simulations running on that thread is reported to the sink.
// This is the per-execution feedback signal of the scenario fuzzer
// (src/fuzz/), which needs to know which transitions *one* run fired
// while sibling worker threads run other cases — something the global
// matrix cannot answer.  With no sink installed the cost is one
// thread-local load and branch per state change.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"

namespace mcan {

/// Mirror of CanController's private state enum, in the identical order
/// (controller.cpp static_asserts the correspondence).  Public so reports
/// can name states without exposing the controller's internals.
enum class FsmState : std::uint8_t {
  Idle,
  Intermission,
  BusOffWait,
  Suspend,
  Tx,
  Rx,
  RxTail,
  RxEof,
  ErrorFlag,
  PassiveFlag,
  OverloadFlag,
  DelimWait,
  Delim,
  Sampling,
  ExtFlag,
};

inline constexpr int kFsmStateCount = 15;

[[nodiscard]] const char* fsm_state_name(FsmState s);

/// True iff the library was compiled with MCAN_FSM_COVERAGE=ON, i.e. the
/// controller actually records transitions.  Reports check this so a
/// non-instrumented build yields "not instrumented" instead of a
/// misleading all-zero matrix.
[[nodiscard]] bool fsm_coverage_compiled();

/// One observed transition with its hit count.
struct FsmTransitionCount {
  FsmState from = FsmState::Idle;
  FsmState to = FsmState::Idle;
  std::uint64_t count = 0;
};

/// Per-thread observer of FSM transitions (see header comment).  The
/// callback runs inline in the controller's state-change path: keep it
/// cheap (the fuzzer sets bits in a fixed bitmap).
class TransitionSink {
 public:
  virtual ~TransitionSink() = default;
  virtual void on_transition(Variant v, FsmState from, FsmState to) = 0;
};

namespace fsm_coverage {

/// Record one state change (relaxed atomic increment; thread-safe).
void record(Variant v, FsmState from, FsmState to) noexcept;

/// Install (or clear, with nullptr) this thread's transition sink.
/// Returns the previously installed sink so scopes can nest.
TransitionSink* set_thread_sink(TransitionSink* sink) noexcept;

/// Report one state change to the thread's sink (if any) and, in
/// MCAN_FSM_COVERAGE builds, to the global counters.  This is the single
/// entry point the controller calls.
void note(Variant v, FsmState from, FsmState to) noexcept;

/// Zero all counters for all variants.
void reset();

/// Hit count of one transition.
[[nodiscard]] std::uint64_t count(Variant v, FsmState from, FsmState to);

/// All transitions with a non-zero count for `v`, in (from, to) order.
[[nodiscard]] std::vector<FsmTransitionCount> snapshot(Variant v);

}  // namespace fsm_coverage

}  // namespace mcan
