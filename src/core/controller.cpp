#include "core/controller.hpp"

#include <cassert>
#include <string>

#include "util/contract.hpp"
#include "util/statekey.hpp"

#include "core/fsm_coverage.hpp"
#include "sim/fast/fast_kernel.hpp"

namespace mcan {

// The kNoEofRel sentinel must stay strictly below every anchored
// EOF-relative value, the lowest of which is the transmitter horizon
// -(m+4); validate() rejects m above kMaxTolerance.
static_assert(kNoEofRel < -(kMaxTolerance + 4),
              "kNoEofRel collides with reachable EOF-relative anchors");


namespace {
std::string at_eof(int pos) {
  // Paper figures number EOF bits from 1; keep diagnostics in that style.
  return "EOF bit " + std::to_string(pos + 1);
}
}  // namespace

CanController::CanController(ControllerConfig cfg, EventLog& log)
    : cfg_(std::move(cfg)), log_(&log), fc_(cfg_.fc) {
  cfg_.protocol.validate();
}

void CanController::detach_shared_state() {
  if (proxy_ != nullptr) {
    const CanController* shadow = proxy_;
    proxy_ = nullptr;
    copy_runtime_state_from(*shadow);
  }
  if (fast_owner_ != nullptr && !fast_touched_) {
    fast_touched_ = true;
    fast_owner_->note_extern_mutation(fast_index_);
  }
}

void CanController::enqueue(const Frame& f) {
  detach_shared_state();
  queue_.push_back(f);
}

bool CanController::replace_pending(const Frame& f) {
  detach_shared_state();
  // While a transmission is on the wire the queue front is that frame;
  // leave it alone and only supersede genuinely pending entries.
  const std::size_t first = st_ == St::Tx ? 1 : 0;
  for (std::size_t i = first; i < queue_.size(); ++i) {
    if (queue_[i].id == f.id && queue_[i].extended == f.extended) {
      queue_[i] = f;
      return true;
    }
  }
  return false;
}

void CanController::force_error_counters(int tec, int rec) {
  detach_shared_state();
  fc_.force_counters(tec, rec);
}

std::size_t CanController::pending_tx() const { return self().queue_.size(); }

void CanController::emit(BitTime t, EventKind kind, std::string detail,
                         std::optional<Frame> frame) {
  log_->emit(Event{t, cfg_.id, kind, std::move(detail), std::move(frame)});
}

void CanController::cov_note() {
  // FsmState (the public mirror in fsm_coverage.hpp) must track St exactly:
  // cov_note() casts between them.
  static_assert(static_cast<int>(St::Idle) == static_cast<int>(FsmState::Idle));
  static_assert(static_cast<int>(St::Intermission) ==
                static_cast<int>(FsmState::Intermission));
  static_assert(static_cast<int>(St::BusOffWait) ==
                static_cast<int>(FsmState::BusOffWait));
  static_assert(static_cast<int>(St::Suspend) ==
                static_cast<int>(FsmState::Suspend));
  static_assert(static_cast<int>(St::Tx) == static_cast<int>(FsmState::Tx));
  static_assert(static_cast<int>(St::Rx) == static_cast<int>(FsmState::Rx));
  static_assert(static_cast<int>(St::RxTail) ==
                static_cast<int>(FsmState::RxTail));
  static_assert(static_cast<int>(St::RxEof) ==
                static_cast<int>(FsmState::RxEof));
  static_assert(static_cast<int>(St::ErrorFlag) ==
                static_cast<int>(FsmState::ErrorFlag));
  static_assert(static_cast<int>(St::PassiveFlag) ==
                static_cast<int>(FsmState::PassiveFlag));
  static_assert(static_cast<int>(St::OverloadFlag) ==
                static_cast<int>(FsmState::OverloadFlag));
  static_assert(static_cast<int>(St::DelimWait) ==
                static_cast<int>(FsmState::DelimWait));
  static_assert(static_cast<int>(St::Delim) ==
                static_cast<int>(FsmState::Delim));
  static_assert(static_cast<int>(St::Sampling) ==
                static_cast<int>(FsmState::Sampling));
  static_assert(static_cast<int>(St::ExtFlag) ==
                static_cast<int>(FsmState::ExtFlag));
  static_assert(kFsmStateCount == static_cast<int>(St::ExtFlag) + 1);

  if (st_ != cov_prev_) {
    fsm_coverage::note(cfg_.protocol.variant,
                       static_cast<FsmState>(cov_prev_),
                       static_cast<FsmState>(st_));
    cov_prev_ = st_;
  }
}

// ---------------------------------------------------------------------------
// drive
// ---------------------------------------------------------------------------

Level CanController::drive(BitTime t) {
  switch (st_) {
    case St::Idle:
      if (!queue_.empty()) {
        start_transmission(t);
        cov_note();
        return txe_.current().level;  // SOF, dominant
      }
      return Level::Recessive;

    case St::Tx:
      return txe_.current().level;

    case St::RxTail:
      // ACK slot: a receiver that got a CRC-correct body answers dominant.
      if (tail_pos_ == 1 && will_ack_) return Level::Dominant;
      return Level::Recessive;

    case St::ErrorFlag:
    case St::OverloadFlag:
    case St::ExtFlag:
      return Level::Dominant;

    case St::Intermission:
    case St::BusOffWait:
    case St::Suspend:
    case St::Rx:
    case St::RxEof:
    case St::PassiveFlag:
    case St::DelimWait:
    case St::Delim:
    case St::Sampling:
      return Level::Recessive;
  }
  return Level::Recessive;
}

// ---------------------------------------------------------------------------
// sample: the FSM transition function
// ---------------------------------------------------------------------------

void CanController::sample(BitTime t, Level view) {
  switch (st_) {
    case St::Idle:
      if (is_dominant(view)) start_reception(t, view);
      break;
    case St::BusOffWait:
      // ISO 11898 recovery: 128 occurrences of 11 consecutive recessive
      // bits, then rejoin error-active with cleared counters.
      if (is_recessive(view)) {
        if (++recovery_run_ >= 11) {
          recovery_run_ = 0;
          if (++recovery_runs_ >= 128) {
            fc_.reset_after_busoff();
            last_fc_state_ = fc_.state();
            become_idle();
            emit(t, EventKind::BusOffRecovered);
          }
        }
      } else {
        recovery_run_ = 0;
      }
      break;
    case St::Intermission:
      handle_intermission_bit(t, view);
      break;
    case St::Suspend:
      if (is_dominant(view)) {
        start_reception(t, view);
      } else if (--suspend_left_ <= 0) {
        become_idle();
      }
      break;
    case St::Tx:
      handle_tx_bit(t, txe_.current().level, view);
      break;
    case St::Rx:
      handle_rx_body_bit(t, view);
      break;
    case St::RxTail:
      handle_rx_tail_bit(t, view);
      break;
    case St::RxEof:
      handle_rx_eof_bit(t, view);
      break;
    case St::ErrorFlag:
    case St::OverloadFlag:
      handle_flag_bit(t, view);
      break;
    case St::PassiveFlag: {
      if (passive_run_ == 0 || view == passive_last_) {
        ++passive_run_;
      } else {
        passive_run_ = 1;
      }
      passive_last_ = view;
      bump_eof_rel();
      if (passive_run_ >= ProtocolParams::flag_bits()) {
        after_own_flag();
      }
      break;
    }
    case St::DelimWait:
      handle_delim_wait_bit(t, view);
      break;
    case St::Delim:
      handle_delim_bit(t, view);
      break;
    case St::Sampling:
      handle_sampling_bit(t, view);
      break;
    case St::ExtFlag:
      handle_ext_flag_bit(t, view);
      break;
  }
  // Two recording points so an intermediate state set by the handler is
  // attributed before note_fc_state() possibly overrides it (bus-off entry
  // with auto-recovery moves the FSM once more within the same bit).
  cov_note();
  note_fc_state(t);
  cov_note();
}

void CanController::note_fc_state(BitTime t) {
  const FcState s = fc_.state();
  if (s == last_fc_state_) return;
  last_fc_state_ = s;
  switch (s) {
    case FcState::ErrorActive:
      break;
    case FcState::ErrorPassive:
      emit(t, EventKind::EnteredErrorPassive);
      break;
    case FcState::BusOff:
      emit(t, EventKind::EnteredBusOff);
      if (cfg_.busoff_auto_recovery) {
        txe_.abort();
        st_ = St::BusOffWait;
        recovery_runs_ = 0;
        recovery_run_ = 0;
        eof_rel_ = kNoEofRel;
      }
      break;
    case FcState::SwitchedOff:
      emit(t, EventKind::WarningSwitchOff);
      break;
  }
}

// ---------------------------------------------------------------------------
// frame start / end helpers
// ---------------------------------------------------------------------------

void CanController::start_transmission(BitTime t) {
  assert(!queue_.empty());
  MCAN_ASSERT(st_ == St::Idle, "transmission may only start from bus idle");
  txe_.start(queue_.front(), cfg_.protocol.eof_bits());
  rx_.reset();  // runs in parallel so an arbitration loss can continue as rx
  st_ = St::Tx;
  tx_role_ = true;
  tx_in_flight_ = true;
  ack_seen_ = false;
  eof_rel_ = kNoEofRel;
  ++frame_index_;
  emit(t, EventKind::SofSent, {}, queue_.front());
}

void CanController::start_reception(BitTime t, Level first_bit) {
  rx_.reset();
  rx_.push(first_bit);  // the dominant SOF that brought us here
  st_ = St::Rx;
  tx_role_ = false;
  have_rx_frame_ = false;
  crc_failed_ = false;
  will_ack_ = false;
  eof_rel_ = kNoEofRel;
  ++frame_index_;
  emit(t, EventKind::SofSeen);
}

void CanController::become_idle() {
  st_ = St::Idle;
  tx_role_ = false;
  eof_rel_ = kNoEofRel;
}

void CanController::enter_intermission() {
  st_ = St::Intermission;
  interm_pos_ = 0;
  eof_rel_ = kNoEofRel;
}

void CanController::bump_eof_rel() {
  if (eof_rel_ != kNoEofRel) ++eof_rel_;
}

void CanController::after_own_flag() {
  switch (after_flag_) {
    case AfterFlag::Delimiter:
      if (is_major() && eof_rel_ != kNoEofRel &&
          cfg_.protocol.delimiter != DelimiterMode::EagerCount) {
        // A frame-tail error in MajorCAN: other nodes may be running the
        // end-game until EOF-relative position 3m+4, so hold the delimiter
        // until then (vote-less wait).  This is what keeps all nodes
        // reconverging on the same bit.  (EagerCount is the ablation that
        // skips the hold — see DelimiterMode.)
        st_ = St::Sampling;
        vote_enabled_ = false;
        return;
      }
      st_ = St::DelimWait;
      delim_first_bit_ = true;
      delim_seen_ = 0;
      delim_dom_run_ = 0;
      return;
    case AfterFlag::MinorCheck:
      st_ = St::DelimWait;
      delim_first_bit_ = true;
      delim_seen_ = 0;
      delim_dom_run_ = 0;
      return;
    case AfterFlag::MajorSample:
      MCAN_ASSERT(is_major(), "sampling end-game is MajorCAN-only");
      st_ = St::Sampling;
      vote_enabled_ = true;
      return;
  }
}

void CanController::start_error_flag(BitTime t, AfterFlag next,
                                     const std::string& why) {
  after_flag_ = next;
  delim_is_overload_ = false;
  // A node that just crossed into bus-off must not signal actively either:
  // its last error is flagged passively (it stops driving the bus) until
  // note_fc_state() detaches it on the next sampled bit.
  if (fc_.error_passive() || fc_.off()) {
    st_ = St::PassiveFlag;
    passive_run_ = 0;
    emit(t, EventKind::PassiveFlagStart, why);
  } else {
    st_ = St::ErrorFlag;
    flag_sent_ = 0;
    emit(t, EventKind::ErrorFlagStart, why);
  }
}

void CanController::start_overload_flag(BitTime t, const std::string& why) {
  st_ = St::OverloadFlag;
  flag_sent_ = 0;
  after_flag_ = AfterFlag::Delimiter;
  delim_is_overload_ = true;
  eof_rel_ = kNoEofRel;
  emit(t, EventKind::OverloadFlagStart, why);
}

// ---------------------------------------------------------------------------
// error entry points
// ---------------------------------------------------------------------------

void CanController::rx_error(BitTime t, AfterFlag next, const std::string& why) {
  emit(t, EventKind::ErrorDetected, why);
  if (next == AfterFlag::Delimiter) {
    // Immediate verdict: the frame in progress is lost for this node.
    fc_.on_rx_error();
    reject_frame(t, why.c_str());
  }
  start_error_flag(t, next, why);
}

void CanController::tx_error(BitTime t, AfterFlag next, const std::string& why) {
  emit(t, EventKind::ErrorDetected, why);
  txe_.abort();
  if (next == AfterFlag::Delimiter) {
    fc_.on_tx_error();
    tx_rejected(t, why.c_str());
  }
  start_error_flag(t, next, why);
}

// ---------------------------------------------------------------------------
// verdicts
// ---------------------------------------------------------------------------

void CanController::accept_frame(BitTime t, const char* how) {
  MCAN_ASSERT(!tx_role_, "only receivers accept frames");
  MCAN_ASSERT(have_rx_frame_, "acceptance requires a completely parsed body");
  fc_.on_rx_success();
  have_rx_frame_ = false;
  emit(t, EventKind::FrameAccepted, how, rx_.frame());
  for (const DeliveryHandler& h : on_deliver_) h(rx_.frame(), t);
}

void CanController::reject_frame(BitTime t, const char* why) {
  std::optional<Frame> f;
  if (have_rx_frame_) f = rx_.frame();
  have_rx_frame_ = false;
  emit(t, EventKind::FrameRejected, why, std::move(f));
}

void CanController::tx_success(BitTime t, const char* how) {
  MCAN_ASSERT(tx_role_ && tx_in_flight_,
              "tx verdict without a transmission in flight");
  MCAN_ASSERT(!queue_.empty(), "tx verdict with an empty queue");
  fc_.on_tx_success();
  tx_in_flight_ = false;
  Frame f = queue_.front();
  queue_.pop_front();
  if (fc_.error_passive()) suspend_left_ = 8;
  emit(t, EventKind::TxSuccess, how, f);
  for (const TxDoneHandler& h : on_tx_done_) h(f, t);
}

void CanController::tx_rejected(BitTime t, const char* why) {
  tx_in_flight_ = false;
  emit(t, EventKind::TxRejected, why,
       queue_.empty() ? std::optional<Frame>{}
                      : std::optional<Frame>{queue_.front()});
  if (fc_.error_passive()) suspend_left_ = 8;
  if (cfg_.auto_retransmit) {
    emit(t, EventKind::TxRetransmit);
  } else if (!queue_.empty()) {
    queue_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// transmitter path
// ---------------------------------------------------------------------------

void CanController::handle_tx_bit(BitTime t, Level sent, Level view) {
  MCAN_ASSERT(tx_role_, "Tx state entered without the transmitter role");
  // Keep the receive parser in lockstep so an arbitration loss can continue
  // seamlessly as a reception.
  if (!rx_.done()) rx_.push(view);

  const TxPhase phase = txe_.current().phase;

  // Track the EOF-relative position of the current bit.  The transmitter
  // knows it exactly everywhere; we anchor it once the frame is close
  // enough to the tail that an error flag here could start someone else's
  // end-game (within m+4 bits: detection delays of up to m-1 plus the
  // receivers' own -3 tail anchor).  Anchored errors then hold through the
  // end-game horizon instead of re-flagging into a sampling window —
  // paper §5's "no additional error flag" rule, which the duplicate
  // counterexample in DESIGN.md §5 shows is load-bearing here.
  {
    const int rel = txe_.eof_relative();
    eof_rel_ = rel >= -(cfg_.protocol.m + 4) ? rel : kNoEofRel;
  }

  if (phase == TxPhase::Eof) {
    const int pos = txe_.eof_index();
    if (is_dominant(view)) {
      handle_eof_error_tx(t, pos);
      bump_eof_rel();  // end-game positions continue past the detection bit
      return;
    }
    if (pos == cfg_.protocol.eof_bits() - 1) {
      // Frame valid for the transmitter: no error through the end of EOF.
      tx_success(t, "clean EOF");
      enter_intermission();
      return;
    }
    txe_.advance();
    return;
  }

  if (phase == TxPhase::AckSlot) {
    if (is_dominant(view)) {
      ack_seen_ = true;
    } else {
      tx_error(t, AfterFlag::Delimiter, "ACK error");
      bump_eof_rel();
      return;
    }
    txe_.advance();
    return;
  }

  if (view != sent) {
    if ((phase == TxPhase::Arbitration || phase == TxPhase::Sof) &&
        is_recessive(sent) && is_dominant(view)) {
      // Lost arbitration: back off and continue receiving; the frame stays
      // queued and is retried once the bus is free.
      txe_.abort();
      tx_role_ = false;
      tx_in_flight_ = false;
      st_ = rx_.done() ? St::RxTail : St::Rx;
      tail_pos_ = 0;
      emit(t, EventKind::ArbitrationLost);
      return;
    }
    tx_error(t, AfterFlag::Delimiter, "bit error in " + to_string(phase));
    bump_eof_rel();
    return;
  }

  txe_.advance();
}

void CanController::handle_eof_error_tx(BitTime t, int pos) {
  const ProtocolParams& p = cfg_.protocol;
  const int last = p.eof_bits() - 1;
  MCAN_ASSERT(pos >= 0 && pos <= last, "EOF error outside the EOF field");

  switch (p.variant) {
    case Variant::StandardCan:
      // A transmitter handles an error in the last EOF bit like any other:
      // flag and retransmit (the asymmetry at the root of Fig. 1b/1c).
      tx_error(t, AfterFlag::Delimiter, at_eof(pos) + " (tx)");
      return;

    case Variant::MinorCan:
      if (pos < last) {
        tx_error(t, AfterFlag::Delimiter, at_eof(pos) + " (tx)");
      } else {
        // Defer the verdict to the Primary_error observation.
        emit(t, EventKind::ErrorDetected, at_eof(pos) + " (tx, last bit)");
        txe_.abort();
        start_error_flag(t, AfterFlag::MinorCheck, "last-EOF-bit flag");
      }
      return;

    case Variant::MajorCan:
      txe_.abort();
      if (pos <= p.first_subfield_last()) {
        // First sub-field: someone may have rejected; flag then vote.
        emit(t, EventKind::ErrorDetected, at_eof(pos) + " (tx, 1st sub-field)");
        samples_dom_ = 0;
        samples_seen_ = 0;
        start_error_flag(t, AfterFlag::MajorSample, "first-sub-field flag");
      } else {
        // Second sub-field: the first detector is already sampling; accept
        // and notify with the extended flag.
        emit(t, EventKind::ErrorDetected, at_eof(pos) + " (tx, 2nd sub-field)");
        tx_success(t, "second sub-field acceptance");
        st_ = St::ExtFlag;
        emit(t, EventKind::ExtendedFlagStart, at_eof(pos));
      }
      return;
  }
}

// ---------------------------------------------------------------------------
// receiver path
// ---------------------------------------------------------------------------

void CanController::handle_rx_body_bit(BitTime t, Level view) {
  switch (rx_.push(view)) {
    case RxParser::Status::InBody:
      return;
    case RxParser::Status::StuffError:
      rx_error(t, AfterFlag::Delimiter, "stuff error");
      return;
    case RxParser::Status::FormError:
      rx_error(t, AfterFlag::Delimiter, "form error in body");
      return;
    case RxParser::Status::BodyDone:
      have_rx_frame_ = true;
      crc_failed_ = !rx_.crc_ok();
      will_ack_ = rx_.crc_ok() && cfg_.ack_enabled;
      st_ = St::RxTail;
      tail_pos_ = 0;
      eof_rel_ = -3;  // next bit is the CRC delimiter
      return;
  }
}

void CanController::handle_rx_tail_bit(BitTime t, Level view) {
  switch (tail_pos_) {
    case 0:  // CRC delimiter, fixed recessive
      if (is_dominant(view)) {
        rx_error(t, AfterFlag::Delimiter, "form error at CRC delimiter");
        bump_eof_rel();
        return;
      }
      tail_pos_ = 1;
      bump_eof_rel();
      return;
    case 1:  // ACK slot: no receiver-side error condition
      if (will_ack_) emit(t, EventKind::AckSent);
      tail_pos_ = 2;
      bump_eof_rel();
      return;
    case 2:  // ACK delimiter, fixed recessive
      if (is_dominant(view)) {
        rx_error(t, AfterFlag::Delimiter, "form error at ACK delimiter");
        bump_eof_rel();
        return;
      }
      if (crc_failed_) {
        // ISO 11898: the CRC-error flag starts at the bit following the ACK
        // delimiter — the first bit of EOF.  In MajorCAN this node must
        // never accept, so no sampling follows (Fig. 4, first row).
        rx_error(t, AfterFlag::Delimiter, "CRC error");
        bump_eof_rel();
        return;
      }
      st_ = St::RxEof;
      eof_rel_ = 0;
      return;
    default:
      assert(false);
  }
}

void CanController::handle_rx_eof_bit(BitTime t, Level view) {
  const int pos = eof_rel_;
  MCAN_ASSERT(pos >= 0 && pos < cfg_.protocol.eof_bits(),
              "receiver EOF position out of range");
  if (is_dominant(view)) {
    handle_eof_error_rx(t, pos);
    bump_eof_rel();
    return;
  }
  if (pos == cfg_.protocol.eof_bits() - 1) {
    accept_frame(t, "clean EOF");
    enter_intermission();
    return;
  }
  bump_eof_rel();
}

void CanController::handle_eof_error_rx(BitTime t, int pos) {
  const ProtocolParams& p = cfg_.protocol;
  const int last = p.eof_bits() - 1;

  switch (p.variant) {
    case Variant::StandardCan:
      if (pos < last) {
        rx_error(t, AfterFlag::Delimiter, at_eof(pos) + " (rx)");
      } else {
        // The last-bit rule: accept and signal an overload condition.
        emit(t, EventKind::ErrorDetected, at_eof(pos) + " (rx, last bit)");
        accept_frame(t, "last-EOF-bit rule");
        start_overload_flag(t, "last-EOF-bit overload");
      }
      return;

    case Variant::MinorCan:
      if (pos < last) {
        rx_error(t, AfterFlag::Delimiter, at_eof(pos) + " (rx)");
      } else {
        emit(t, EventKind::ErrorDetected, at_eof(pos) + " (rx, last bit)");
        start_error_flag(t, AfterFlag::MinorCheck, "last-EOF-bit flag");
      }
      return;

    case Variant::MajorCan:
      if (pos <= p.first_subfield_last()) {
        emit(t, EventKind::ErrorDetected, at_eof(pos) + " (rx, 1st sub-field)");
        samples_dom_ = 0;
        samples_seen_ = 0;
        start_error_flag(t, AfterFlag::MajorSample, "first-sub-field flag");
      } else {
        emit(t, EventKind::ErrorDetected, at_eof(pos) + " (rx, 2nd sub-field)");
        accept_frame(t, "second sub-field acceptance");
        st_ = St::ExtFlag;
        emit(t, EventKind::ExtendedFlagStart, at_eof(pos));
      }
      return;
  }
}

// ---------------------------------------------------------------------------
// flags, delimiters, end-game
// ---------------------------------------------------------------------------

void CanController::handle_flag_bit(BitTime, Level /*view*/) {
  MCAN_ASSERT(flag_sent_ < ProtocolParams::flag_bits(),
              "active flag longer than 6 bits");
  // While transmitting a flag the node does not evaluate new errors.
  ++flag_sent_;
  bump_eof_rel();
  if (flag_sent_ >= ProtocolParams::flag_bits()) after_own_flag();
}

void CanController::handle_delim_wait_bit(BitTime t, Level view) {
  const bool first = delim_first_bit_;
  delim_first_bit_ = false;

  if (first && after_flag_ == AfterFlag::MinorCheck) {
    // MinorCAN verdict: a dominant bit right after our own flag means we
    // were the first detector (Primary_error) — nobody rejected before us,
    // so we must not either.
    if (is_dominant(view)) {
      if (tx_role_) {
        tx_success(t, "Primary_error: first detector");
      } else {
        accept_frame(t, "Primary_error: first detector");
      }
    } else {
      if (tx_role_) {
        fc_.on_tx_error();
        tx_rejected(t, "not primary: another node rejected first");
      } else {
        fc_.on_rx_error();
        reject_frame(t, "not primary: another node rejected first");
      }
    }
    after_flag_ = AfterFlag::Delimiter;
  } else if (first && is_dominant(view) && !tx_role_ && !delim_is_overload_) {
    // Dominant right after our error flag: we signalled a primary error.
    fc_.on_rx_primary_error();
  }

  bump_eof_rel();

  if (is_dominant(view)) {
    // ISO 11898: after the 8th consecutive dominant bit following an error
    // (or overload) flag, and after each further sequence of 8, the
    // counters increase by 8 — this is how a stuck-dominant medium drives
    // its nodes towards passive/bus-off instead of hanging them silently.
    if (++delim_dom_run_ % 8 == 0) {
      if (tx_role_) {
        fc_.on_tx_error();
      } else {
        fc_.on_rx_primary_error();  // +8 on the receive counter
      }
      emit(t, EventKind::ErrorDetected,
           "8 consecutive dominant bits after flag");
    }
    return;
  }

  delim_dom_run_ = 0;
  if (is_recessive(view)) {
    st_ = St::Delim;
    delim_seen_ = 1;
    delim_fixed_ = false;
    // Under the ablation delimiter modes, MajorCAN flag delimiters count
    // convergently (reset on dominant, no re-flagging).
    delim_convergent_ =
        is_major() && cfg_.protocol.delimiter != DelimiterMode::FixedEndGame;
  }
}

void CanController::handle_delim_bit(BitTime t, Level view) {
  const int total = cfg_.protocol.error_delim_total();
  MCAN_ASSERT(delim_seen_ < total, "delimiter count past its total length");

  bump_eof_rel();

  if (delim_fixed_) {
    // MajorCAN end-game participants: all of them left the end-game on the
    // same bit (position 3m+4), so a fixed, content-ignoring count of 2m+1
    // bits keeps them bit-synchronised and immune to view disturbances —
    // the second-error suppression of §5 extended through the delimiter.
    if (++delim_seen_ >= total) {
      delim_fixed_ = false;
      enter_intermission();
    }
    return;
  }

  if (delim_convergent_) {
    // Ablation delimiter (ConvergentCount / EagerCount): count consecutive
    // recessive bits, restarting on any dominant one, never re-flagging.
    if (is_recessive(view)) {
      if (++delim_seen_ >= total) {
        delim_convergent_ = false;
        enter_intermission();
      }
    } else {
      delim_seen_ = 0;
    }
    return;
  }

  if (is_recessive(view)) {
    if (++delim_seen_ >= total) enter_intermission();
    return;
  }
  // Dominant inside the delimiter.
  if (delim_seen_ == total - 1) {
    // Last delimiter bit: overload condition (ISO 11898).
    start_overload_flag(t, "dominant at last delimiter bit");
    return;
  }
  // Form error in the delimiter: signal again.
  if (tx_role_) {
    fc_.on_tx_error();
  } else {
    fc_.on_rx_error();
  }
  emit(t, EventKind::ErrorDetected, "form error in delimiter");
  start_error_flag(t, AfterFlag::Delimiter, "delimiter form error");
}

void CanController::handle_sampling_bit(BitTime t, Level view) {
  MCAN_ASSERT(is_major(), "Sampling state is MajorCAN-only");
  MCAN_ASSERT(eof_rel_ != kNoEofRel, "sampling requires an EOF anchor");
  const ProtocolParams& p = cfg_.protocol;
  const int pos = eof_rel_;

  if (!p.suppress_second_errors && is_dominant(view) &&
      pos < p.sample_begin()) {
    // Ablation: without §5's second-error suppression, a dominant bit in
    // the gap before the window is answered with a fresh error flag —
    // which destroys the agreement the end-game was establishing.
    if (tx_role_) {
      tx_error(t, AfterFlag::Delimiter, "second error during end-game");
    } else {
      rx_error(t, AfterFlag::Delimiter, "second error during end-game");
    }
    bump_eof_rel();
    return;
  }

  if (vote_enabled_ && pos >= p.sample_begin() && pos <= p.sample_end()) {
    ++samples_seen_;
    if (is_dominant(view)) ++samples_dom_;
  }
  // Dominant bits outside the window are deliberately ignored: a second
  // error during the end-game must not start a new flag (paper §5).

  bump_eof_rel();
  if (pos >= p.sample_end()) {
    if (vote_enabled_) {
      conclude_sampling(t);
    }
    st_ = St::Delim;
    delim_seen_ = 0;
    delim_fixed_ = p.delimiter == DelimiterMode::FixedEndGame;
    delim_convergent_ = !delim_fixed_;
  }
}

void CanController::conclude_sampling(BitTime t) {
  const ProtocolParams& p = cfg_.protocol;
  MCAN_ASSERT(samples_seen_ == p.sample_count(),
              "majority vote must cover all 2m-1 window bits");
  const bool accept = samples_dom_ >= p.majority();
  emit(t, EventKind::SamplingDecision,
       (accept ? "accept: " : "reject: ") + std::to_string(samples_dom_) +
           "/" + std::to_string(samples_seen_) + " dominant");

  if (accept) {
    if (tx_role_) {
      tx_success(t, "majority vote");
    } else {
      accept_frame(t, "majority vote");
    }
  } else {
    if (tx_role_) {
      fc_.on_tx_error();
      tx_rejected(t, "majority vote");
    } else {
      fc_.on_rx_error();
      reject_frame(t, "majority vote");
    }
  }
}

void CanController::handle_ext_flag_bit(BitTime, Level /*view*/) {
  MCAN_ASSERT(is_major(), "extended flags are MajorCAN-only");
  MCAN_ASSERT(eof_rel_ != kNoEofRel, "extended flag requires an EOF anchor");
  const int pos = eof_rel_;
  bump_eof_rel();
  if (pos >= cfg_.protocol.sample_end()) {
    st_ = St::Delim;
    delim_seen_ = 0;
    delim_fixed_ = cfg_.protocol.delimiter == DelimiterMode::FixedEndGame;
    delim_convergent_ = !delim_fixed_;
  }
}

void CanController::handle_intermission_bit(BitTime t, Level view) {
  if (is_dominant(view)) {
    if (interm_pos_ <= 1) {
      start_overload_flag(t, "dominant at intermission bit " +
                                 std::to_string(interm_pos_ + 1));
    } else {
      // Third intermission bit: interpreted as a start of frame.
      start_reception(t, view);
    }
    return;
  }
  if (++interm_pos_ >= kIntermissionBits) {
    if (suspend_left_ > 0 && fc_.error_passive()) {
      st_ = St::Suspend;
    } else {
      suspend_left_ = 0;
      become_idle();
    }
  }
}

// ---------------------------------------------------------------------------
// introspection
// ---------------------------------------------------------------------------

NodeBitInfo CanController::bit_info() const {
  if (proxy_ != nullptr) return proxy_->bit_info();
  NodeBitInfo info;
  info.frame_index = frame_index_;
  info.transmitter = tx_role_;
  info.eof_rel = eof_rel_;
  info.tec = fc_.tec();
  info.rec = fc_.rec();

  switch (st_) {
    case St::Idle:
      info.seg = Seg::Idle;
      break;
    case St::Intermission:
      info.seg = Seg::Intermission;
      info.index = interm_pos_;
      break;
    case St::BusOffWait:
      info.seg = Seg::Off;
      info.index = recovery_runs_;
      break;
    case St::Suspend:
      info.seg = Seg::Suspend;
      info.index = suspend_left_;
      break;
    case St::Tx:
      switch (txe_.current().phase) {
        case TxPhase::Eof:
          info.seg = Seg::Eof;
          info.index = txe_.eof_index();
          info.eof_rel = info.index;
          break;
        case TxPhase::CrcDelim:
        case TxPhase::AckSlot:
        case TxPhase::AckDelim:
          info.seg = Seg::Tail;
          info.index =
              txe_.current().phase == TxPhase::CrcDelim
                  ? 0
                  : (txe_.current().phase == TxPhase::AckSlot ? 1 : 2);
          break;
        default:
          info.seg = Seg::Body;
          info.index = txe_.position();
          break;
      }
      break;
    case St::Rx:
      info.seg = Seg::Body;
      info.index = rx_.bits_consumed();
      break;
    case St::RxTail:
      info.seg = Seg::Tail;
      info.index = tail_pos_;
      break;
    case St::RxEof:
      info.seg = Seg::Eof;
      info.index = eof_rel_;
      break;
    case St::ErrorFlag:
      info.seg = Seg::ErrorFlag;
      info.index = flag_sent_;
      break;
    case St::PassiveFlag:
      info.seg = Seg::PassiveFlag;
      info.index = passive_run_;
      break;
    case St::OverloadFlag:
      info.seg = Seg::OverloadFlag;
      info.index = flag_sent_;
      break;
    case St::DelimWait:
      info.seg =
          delim_is_overload_ ? Seg::OverloadDelimWait : Seg::ErrorDelimWait;
      break;
    case St::Delim:
      info.seg = delim_is_overload_ ? Seg::OverloadDelim : Seg::ErrorDelim;
      info.index = delim_seen_;
      break;
    case St::Sampling:
      info.seg = Seg::Sampling;
      info.index = eof_rel_ == kNoEofRel ? 0 : eof_rel_;
      break;
    case St::ExtFlag:
      info.seg = Seg::ExtFlag;
      info.index = eof_rel_ == kNoEofRel ? 0 : eof_rel_;
      break;
  }
  return info;
}

// ---------------------------------------------------------------------------
// fast-kernel quiet-sample classification
// ---------------------------------------------------------------------------

// Mirrors sample()'s dispatch exactly: a bit is quiet iff the handler for
// the current state, fed `view`, emits no event, fires no handler, and
// leaves the fault-confinement counters untouched (so note_fc_state cannot
// emit either — fc_ was synced at the end of the previous sample).  State
// transitions and pure bookkeeping are allowed: the group shadow carries
// them for every member.  When in doubt a branch must return false; the
// only cost of a false negative is one per-member trial bit.
bool CanController::sample_is_quiet(Level view) const {
  switch (st_) {
    case St::Idle:
      // Dominant starts a reception (SofSeen).  A non-empty queue would
      // make drive() start a transmission, but grouped nodes always have
      // empty queues; stay conservative anyway.
      return is_recessive(view) && queue_.empty();
    case St::BusOffWait:
      // Silent counting, except the 128th completed 11-recessive sequence
      // (recovery + BusOffRecovered emit).
      if (!is_recessive(view)) return true;
      return !(recovery_run_ + 1 >= 11 && recovery_runs_ + 1 >= 128);
    case St::Intermission:
      // Dominant: overload flag or SOF, both emit.
      return is_recessive(view);
    case St::Suspend:
      // Dominant starts a reception; recessive counts down silently.
      return is_recessive(view);
    case St::Tx:
      // Transmitters are never grouped (non-empty queue); conservative.
      return false;
    case St::Rx:
      return rx_.push_is_quiet(view);
    case St::RxTail:
      if (tail_pos_ == 0) return is_recessive(view);  // CRC delim form error
      if (tail_pos_ == 1) return !will_ack_;          // AckSent emit
      // ACK delimiter: form error, or the deferred CRC-error flag.
      return is_recessive(view) && !crc_failed_;
    case St::RxEof:
      // Dominant: EOF error (all variants emit).  Last recessive EOF bit:
      // acceptance (FrameAccepted + delivery handlers).
      return is_recessive(view) && eof_rel_ < cfg_.protocol.eof_bits() - 1;
    case St::ErrorFlag:
    case St::OverloadFlag:
    case St::PassiveFlag:
      // Flag progress never emits; after_own_flag only switches state.
      return true;
    case St::DelimWait:
      // Dominant: fc bumps / possible 8-dominant emission.  The first bit
      // after a MinorCAN flag carries the Primary_error verdict either way.
      return is_recessive(view) &&
             !(delim_first_bit_ && after_flag_ == AfterFlag::MinorCheck);
    case St::Delim:
      // Fixed and convergent counting ignore content and never emit; the
      // standard count emits on any dominant (overload or re-flag).
      if (delim_fixed_ || delim_convergent_) return true;
      return is_recessive(view);
    case St::Sampling: {
      const ProtocolParams& p = cfg_.protocol;
      if (!p.suppress_second_errors && is_dominant(view) &&
          eof_rel_ < p.sample_begin()) {
        return false;  // ablation: fresh error flag during the end-game
      }
      // Window counting is silent; the verdict bit emits iff a vote is
      // pending (vote-less holds just fall through to the delimiter).
      return eof_rel_ < p.sample_end() || !vote_enabled_;
    }
    case St::ExtFlag:
      // Drives dominant, counts its position, never emits.
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// model-checker hooks
// ---------------------------------------------------------------------------

void CanController::append_state(std::string& out) const {
  if (proxy_ != nullptr) {
    proxy_->append_state(out);
    return;
  }
  statekey::append_tag(out, 'C');
  fc_.append_state(out);
  rx_.append_state(out);
  txe_.append_state(out);
  // Queue *content* is shared across cases in a sweep (same probe frame);
  // the depth captures whether a retransmission is still pending.
  statekey::append(out, queue_.size());

  statekey::append(out, st_);
  statekey::append_bool(out, tx_role_);
  statekey::append_bool(out, tx_in_flight_);
  statekey::append(out, tail_pos_);
  statekey::append(out, eof_rel_);
  statekey::append(out, flag_sent_);
  statekey::append(out, delim_seen_);
  statekey::append(out, interm_pos_);
  statekey::append(out, suspend_left_);
  statekey::append_bool(out, crc_failed_);
  statekey::append_bool(out, ack_seen_);
  statekey::append_bool(out, will_ack_);
  statekey::append(out, after_flag_);
  statekey::append_bool(out, delim_first_bit_);
  statekey::append_bool(out, delim_is_overload_);
  statekey::append_bool(out, delim_fixed_);
  statekey::append_bool(out, delim_convergent_);
  statekey::append(out, delim_dom_run_);
  statekey::append(out, passive_run_);
  statekey::append(out, passive_last_);
  statekey::append(out, last_fc_state_);
  statekey::append(out, recovery_runs_);
  statekey::append(out, recovery_run_);
  statekey::append(out, samples_dom_);
  statekey::append(out, samples_seen_);
  statekey::append_bool(out, vote_enabled_);
  statekey::append_bool(out, have_rx_frame_);
}

void CanController::clone_runtime_state(const CanController& src) {
  detach_shared_state();
  copy_runtime_state_from(src.self());
}

void CanController::copy_runtime_state_from(const CanController& src) {
  MCAN_ASSERT(cfg_.protocol.variant == src.cfg_.protocol.variant &&
                  cfg_.protocol.m == src.cfg_.protocol.m,
              "runtime state may only be cloned between same-protocol nodes");
  fc_ = src.fc_;
  rx_ = src.rx_;
  txe_ = src.txe_;
  queue_ = src.queue_;

  st_ = src.st_;
  tx_role_ = src.tx_role_;
  tx_in_flight_ = src.tx_in_flight_;
  tail_pos_ = src.tail_pos_;
  eof_rel_ = src.eof_rel_;
  flag_sent_ = src.flag_sent_;
  delim_seen_ = src.delim_seen_;
  interm_pos_ = src.interm_pos_;
  suspend_left_ = src.suspend_left_;
  crc_failed_ = src.crc_failed_;
  ack_seen_ = src.ack_seen_;
  will_ack_ = src.will_ack_;
  after_flag_ = src.after_flag_;
  delim_first_bit_ = src.delim_first_bit_;
  delim_is_overload_ = src.delim_is_overload_;
  delim_fixed_ = src.delim_fixed_;
  delim_convergent_ = src.delim_convergent_;
  delim_dom_run_ = src.delim_dom_run_;
  frame_index_ = src.frame_index_;
  passive_run_ = src.passive_run_;
  passive_last_ = src.passive_last_;
  last_fc_state_ = src.last_fc_state_;
  recovery_runs_ = src.recovery_runs_;
  recovery_run_ = src.recovery_run_;
  samples_dom_ = src.samples_dom_;
  samples_seen_ = src.samples_seen_;
  vote_enabled_ = src.vote_enabled_;
  have_rx_frame_ = src.have_rx_frame_;
  // Coverage attribution restarts from the cloned state: the template
  // bus already recorded the prefix transitions once.
  cov_prev_ = src.st_;
}

}  // namespace mcan
