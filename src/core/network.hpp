// Convenience assembly of a complete simulated bus: N controllers of one
// protocol variant, an event log, a trace recorder and the simulator,
// wired together with per-node delivery journals.  This is the entry point
// most examples, tests and benches use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace mcan {

/// One recorded delivery at one node.
struct Delivery {
  Frame frame;
  BitTime t = 0;
};

class Network {
 public:
  /// Build `n` nodes (ids 0..n-1) speaking `protocol`.
  Network(int n, const ProtocolParams& protocol,
          const FaultConfinementConfig& fc = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] CanController& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const CanController& node(int i) const {
    return *nodes_.at(static_cast<std::size_t>(i));
  }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Simulator& sim() const { return sim_; }
  [[nodiscard]] EventLog& log() { return log_; }
  [[nodiscard]] TraceRecorder& trace() { return trace_; }

  /// Frames delivered at node `i`, in delivery order.
  [[nodiscard]] const std::vector<Delivery>& deliveries(int i) const {
    return deliveries_.at(static_cast<std::size_t>(i));
  }

  /// Enable per-bit trace recording (off by default: it is memory-hungry).
  void enable_trace();

  /// Install a fault injector for the whole bus.
  void set_injector(FaultInjector& inj) { sim_.set_injector(inj); }

  /// Run until every live node is idle with nothing queued, or `max_bits`.
  /// Returns true if the bus quiesced.
  bool run_until_quiet(BitTime max_bits = 100000);

  /// Node labels ("tx 0", "rx 1", ...) for the trace renderer.
  [[nodiscard]] std::vector<std::string> labels() const;

 private:
  // Declaration order is a lifetime contract: sim_ last, so its destructor
  // (which flushes an installed kernel backend's shared state back into
  // the controllers) runs while the controllers are still alive.
  EventLog log_;
  TraceRecorder trace_;
  std::vector<std::vector<Delivery>> deliveries_;
  std::vector<std::unique_ptr<CanController>> nodes_;
  Simulator sim_;
};

}  // namespace mcan
