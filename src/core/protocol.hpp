// Protocol-variant parameters: the paper's contribution in numbers.
//
// Standard CAN and MinorCAN share the classic frame geometry (7-bit EOF,
// 8-bit error delimiter); they differ only in the last-bit-of-EOF decision
// rule.  MajorCAN_m (paper §5) changes the geometry itself:
//
//   * EOF = 2m bits, split into two m-bit sub-fields.  An error detected in
//     the first sub-field (positions 1..m, paper's 1-based numbering) means
//     "somebody may have rejected": send a regular 6-bit error flag, then
//     majority-vote 2m-1 sampled bits.  An error detected in the second
//     sub-field (positions m+1..2m) means "somebody detected the error
//     before me and is sampling": accept the frame and notify with an
//     *extended* error flag.
//   * The extended flag and the sampling window both end at position 3m+5;
//     the window covers positions m+7 .. 3m+5 (2m-1 bits), so up to m-1
//     additional disturbances cannot swing the majority.
//   * The error delimiter becomes 2m+1 recessive bits, matching the
//     recessive tail (ACK delimiter + EOF) of an error-free frame so nodes
//     can resynchronise on either.
//
// All positions in this header are 0-based relative to the first EOF bit;
// the paper's figures use 1-based positions (subtract 1 to convert).
#pragma once

#include <string>

namespace mcan {

enum class Variant {
  StandardCan,  ///< ISO 11898 semantics
  MinorCan,     ///< paper §3: Primary_error rule at the last EOF bit
  MajorCan,     ///< paper §5: split EOF + extended flags + majority voting
};

[[nodiscard]] const char* variant_name(Variant v);

/// MajorCAN delimiter mechanics (ablation; see DESIGN.md §5).  The paper
/// fixes the delimiter *length* (2m+1) but not its robustness; only
/// FixedEndGame keeps the <= m guarantee.
enum class DelimiterMode : std::uint8_t {
  /// End-game participants hold until EOF-relative position 3m+5, then
  /// count a fixed 2m+1 bits ignoring bus content.  The sound design.
  FixedEndGame,
  /// Hold until 3m+5, then count consecutive recessive bits, restarting on
  /// any dominant one.  A single view flip in the delimiter silently
  /// stalls a node past the retransmission.
  ConvergentCount,
  /// No hold: a flagging node starts its (convergent) delimiter as soon as
  /// its own flag ends.  Early finishers desynchronise from the samplers.
  EagerCount,
};

[[nodiscard]] const char* delimiter_mode_name(DelimiterMode m);

/// Upper bound on the MajorCAN tolerance parameter m, enforced by
/// ProtocolParams::validate().  Keeps every EOF-relative anchor value
/// (which run from -(m+4)) strictly above the kNoEofRel sentinel, and
/// frames within any plausible hardware budget (m = 5 is the paper's pick).
inline constexpr int kMaxTolerance = 100;

struct ProtocolParams {
  Variant variant = Variant::StandardCan;
  /// MajorCAN error-tolerance parameter; the paper proposes m = 5 to match
  /// the CRC's 5-random-bit-error detection guarantee.  Must be >= 3
  /// (with m = 2 the Fig. 3a scenario is still possible, §5).
  int m = 5;

  // --- ablation knobs; defaults reproduce the paper's design ---

  /// §5: "if any node detects its second error during the bits
  /// corresponding to the EOF and the extended error flags, this is not
  /// signaled with any additional error flag."  Turning this off makes
  /// end-game nodes answer stray dominant bits with fresh flags, which
  /// "could spoil the agreement process" — measurably (bench_ablation).
  bool suppress_second_errors = true;

  /// Delimiter mechanics (MajorCAN only); see DelimiterMode.
  DelimiterMode delimiter = DelimiterMode::FixedEndGame;

  /// Override the first sub-field width (0 = the paper's m).  The paper
  /// sizes it at exactly m so that a CRC-error flag delayed by up to m-1
  /// errors can never be first seen in the accepting sub-field.
  int first_subfield_override = 0;

  /// Override the majority threshold (0 = the paper's m, a strict
  /// majority of the 2m-1 samples).
  int majority_override = 0;

  [[nodiscard]] static ProtocolParams standard_can();
  [[nodiscard]] static ProtocolParams minor_can();
  [[nodiscard]] static ProtocolParams major_can(int m = 5);

  /// Throws std::invalid_argument on unusable parameters.
  void validate() const;

  /// EOF field length: 7 (CAN, MinorCAN) or 2m (MajorCAN).
  [[nodiscard]] int eof_bits() const;

  /// Total recessive bits of the error/overload delimiter, counting the
  /// first recessive bit seen after the flag: 8 (CAN) or 2m+1 (MajorCAN).
  [[nodiscard]] int error_delim_total() const;

  /// Length of active error/overload flags (always 6).
  [[nodiscard]] static constexpr int flag_bits() { return 6; }

  // --- MajorCAN end-game geometry (0-based EOF-relative positions) ---

  /// Width of the first EOF sub-field (paper: m).
  [[nodiscard]] int first_subfield_bits() const {
    return first_subfield_override > 0 ? first_subfield_override : m;
  }

  /// Last position of the first EOF sub-field ("reject side"): m-1.
  [[nodiscard]] int first_subfield_last() const {
    return first_subfield_bits() - 1;
  }

  /// Last position of the second EOF sub-field ("accept side"): 2m-1.
  [[nodiscard]] int second_subfield_last() const { return 2 * m - 1; }

  /// First sampled position: paper (m+7)th => 0-based m+6.
  [[nodiscard]] int sample_begin() const { return m + 6; }

  /// Last sampled position (also where extended flags end):
  /// paper (3m+5)th => 0-based 3m+4.
  [[nodiscard]] int sample_end() const { return 3 * m + 4; }

  /// Number of sampled bits: 2m-1.
  [[nodiscard]] int sample_count() const { return 2 * m - 1; }

  /// Dominant samples needed to accept: strict majority of 2m-1, i.e. m.
  [[nodiscard]] int majority() const {
    return majority_override > 0 ? majority_override : m;
  }

  // --- Overhead accounting (paper §5 / §6) ---

  /// Error-free overhead vs. standard CAN: 2m-7 bits (0 for CAN/MinorCAN).
  [[nodiscard]] int best_case_overhead_bits() const;

  /// Worst-case overhead vs. standard CAN when the end-game runs:
  /// (2m-7) + (2m-2) = 4m-9 bits (0 for CAN/MinorCAN).
  [[nodiscard]] int worst_case_overhead_bits() const;

  /// "CAN", "MinorCAN", "MajorCAN_5", ...
  [[nodiscard]] std::string name() const;

  [[nodiscard]] bool operator==(const ProtocolParams&) const = default;
};

}  // namespace mcan
