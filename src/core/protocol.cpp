#include "core/protocol.hpp"

#include <stdexcept>

#include "frame/layout.hpp"

namespace mcan {

const char* delimiter_mode_name(DelimiterMode m) {
  switch (m) {
    case DelimiterMode::FixedEndGame: return "fixed-end-game";
    case DelimiterMode::ConvergentCount: return "convergent-count";
    case DelimiterMode::EagerCount: return "eager-count";
  }
  return "?";
}

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::StandardCan: return "CAN";
    case Variant::MinorCan: return "MinorCAN";
    case Variant::MajorCan: return "MajorCAN";
  }
  return "?";
}

ProtocolParams ProtocolParams::standard_can() {
  return ProtocolParams{Variant::StandardCan, 5};
}

ProtocolParams ProtocolParams::minor_can() {
  return ProtocolParams{Variant::MinorCan, 5};
}

ProtocolParams ProtocolParams::major_can(int m) {
  ProtocolParams p{Variant::MajorCan, m};
  p.validate();
  return p;
}

void ProtocolParams::validate() const {
  if (variant == Variant::MajorCan && m < 3) {
    throw std::invalid_argument(
        "MajorCAN requires m >= 3: with 2 errors the Fig. 3a scenario "
        "defeats any smaller tolerance (paper, section 5)");
  }
  if (variant == Variant::MajorCan && m > kMaxTolerance) {
    throw std::invalid_argument(
        "MajorCAN tolerance m exceeds kMaxTolerance; the EOF-relative "
        "anchor range [-(m+4), 3m+4] must stay clear of the kNoEofRel "
        "sentinel");
  }
}

int ProtocolParams::eof_bits() const {
  return variant == Variant::MajorCan ? majorcan_eof_bits(m) : kStandardEofBits;
}

int ProtocolParams::error_delim_total() const {
  return variant == Variant::MajorCan ? 2 * m + 1 : 8;
}

int ProtocolParams::best_case_overhead_bits() const {
  return variant == Variant::MajorCan ? 2 * m - 7 : 0;
}

int ProtocolParams::worst_case_overhead_bits() const {
  return variant == Variant::MajorCan ? 4 * m - 9 : 0;
}

std::string ProtocolParams::name() const {
  if (variant == Variant::MajorCan) {
    return "MajorCAN_" + std::to_string(m);
  }
  return variant_name(variant);
}

}  // namespace mcan
