// The CAN / MinorCAN / MajorCAN controller: a bit-level protocol FSM
// implementing ISO 11898 medium access, error detection and signalling,
// fault confinement, and — selected by ProtocolParams — one of the three
// frame end-game rules the paper studies:
//
//   * StandardCan: a receiver seeing a dominant level at the *last* EOF bit
//     accepts the frame and signals an overload condition; the transmitter
//     treats the same observation as an error and retransmits.  This
//     asymmetry is the root of double reception (Fig. 1b) and of the
//     inconsistent-message-omission scenarios (Fig. 1c, Fig. 3a).
//   * MinorCan (§3): both roles flag the last-bit error and then decide by
//     the Primary_error observation — a dominant bit right after one's own
//     flag means the node was the *first* detector (nobody rejected before
//     it) so it accepts; a recessive bit means it was reacting to someone
//     else's flag, so it rejects.
//   * MajorCan (§5): a 2m-bit EOF in two sub-fields.  Detection in the
//     first sub-field => 6-bit flag + majority vote over the 2m-1 sampled
//     bits at EOF-relative positions [m+6, 3m+4] (0-based).  Detection in
//     the second sub-field => accept + extended error flag up to position
//     3m+4.  Errors detected during the end-game are never answered with a
//     new flag (second-error suppression), and the delimiter is 2m+1
//     consecutive recessive bits re-counted from scratch after any dominant
//     one, which makes all nodes reconverge at the same bit.
//
// One instance is one node.  The host (application or a higher-level
// protocol such as EDCAN/RELCAN/TOTCAN) talks to it through enqueue() and
// the delivery / tx-done callbacks; the simulator drives it through the
// BusParticipant interface.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "node/fault_confinement.hpp"
#include "node/rx_parser.hpp"
#include "node/tx_engine.hpp"
#include "sim/bus.hpp"
#include "sim/event.hpp"

namespace mcan {

struct ControllerConfig {
  NodeId id = 0;
  ProtocolParams protocol;
  FaultConfinementConfig fc;
  bool ack_enabled = true;      ///< drive the ACK slot for correct frames
  bool auto_retransmit = true;  ///< retransmit rejected frames automatically
  /// ISO 11898 bus-off recovery: rejoin after observing 128 sequences of
  /// 11 consecutive recessive bits.  Off by default: the paper assumes
  /// fail-silent nodes, so a bus-off node stays off.
  bool busoff_auto_recovery = false;
};

class FastKernel;

class CanController final : public BusParticipant {
 public:
  using DeliveryHandler = std::function<void(const Frame&, BitTime)>;
  using TxDoneHandler = std::function<void(const Frame&, BitTime)>;

  CanController(ControllerConfig cfg, EventLog& log);

  // ---- host API ----

  /// Queue a frame for transmission (FIFO per node; inter-node priority is
  /// resolved by bus arbitration on the identifier).
  void enqueue(const Frame& f);

  /// Supersede a queued frame carrying the same identifier with fresher
  /// content (periodic state messages).  The frame currently on the wire
  /// is never touched.  Returns true if a queued frame was replaced.
  bool replace_pending(const Frame& f);

  /// Called on every frame this node accepts (delivers).  Duplicates are
  /// delivered as duplicates — exactly what the CAN3 at-least-once property
  /// says; deduplication is a host concern.  Several observers may listen
  /// (e.g. the link-level journal plus a higher-level protocol host).
  void add_delivery_handler(DeliveryHandler h) {
    on_deliver_.push_back(std::move(h));
  }

  /// Called when this node, as transmitter, considers a frame successfully
  /// broadcast (used by RELCAN/TOTCAN to trigger CONFIRM/ACCEPT).
  void add_tx_done_handler(TxDoneHandler h) {
    on_tx_done_.push_back(std::move(h));
  }

  [[nodiscard]] std::size_t pending_tx() const;
  [[nodiscard]] bool bus_idle() const { return self().st_ == St::Idle; }
  [[nodiscard]] int tec() const { return self().fc_.tec(); }
  [[nodiscard]] int rec() const { return self().fc_.rec(); }
  [[nodiscard]] FcState fc_state() const { return self().fc_.state(); }
  [[nodiscard]] const ProtocolParams& protocol() const { return cfg_.protocol; }

  /// Scenario/test hook: preload error counters (e.g. "node is already
  /// error-passive", paper §2).
  void force_error_counters(int tec, int rec);

  // ---- model-checker hooks (scenario/model_check.cpp) ----

  /// Append an exact serialization of every runtime field that can
  /// influence this node's future behaviour.  Two controllers with equal
  /// digests and equal configuration evolve bit-identically from here, so
  /// the model checker can memoize simulation tails keyed on the digests
  /// of all nodes.  Deliberately excluded: the event log, delivery
  /// handlers and frame_index_ — bookkeeping that never feeds back into
  /// the FSM.
  void append_state(std::string& out) const;

  /// Overwrite this controller's runtime state with a copy of `src`'s
  /// (same protocol and queue content required for the copy to make
  /// sense).  Used for prefix cloning: one template bus is stepped through
  /// the clean frame prefix once, and each enumerated case starts from a
  /// clone instead of re-simulating the prefix.  Configuration, log and
  /// handlers are left untouched.
  void clone_runtime_state(const CanController& src);

  // ---- BusParticipant ----

  [[nodiscard]] Level drive(BitTime t) override;
  void sample(BitTime t, Level view) override;
  [[nodiscard]] NodeBitInfo bit_info() const override;
  [[nodiscard]] NodeId id() const override { return cfg_.id; }
  [[nodiscard]] bool active() const override {
    const CanController& s = self();
    if (s.fc_.state() == FcState::BusOff && cfg_.busoff_auto_recovery) {
      return true;  // stays on the bus, silently counting towards recovery
    }
    return !s.fc_.off();
  }
  [[nodiscard]] bool quiescent() const override {
    const CanController& s = self();
    // A bus-off node with auto-recovery needs to observe every bit: the
    // recovery sequence counts recessive bits, and even a node still in
    // St::Idle (bus-off forced between bits) only enters BusOffWait on its
    // next sample.  Never let the idle skip starve it.
    if (s.fc_.state() == FcState::BusOff && cfg_.busoff_auto_recovery) {
      return false;
    }
    return s.st_ == St::Idle && s.queue_.empty();
  }

 private:
  // The fast kernel (src/sim/fast/) groups controllers that provably evolve
  // in lockstep and carries their runtime state in one shared shadow
  // controller.  While grouped, proxy_ points at that shadow: reads go
  // through self(), and every external mutation first copies the shared
  // state back (detach_shared_state) and notifies the owning kernel so the
  // group dissolves before the next bit.  proxy_ == nullptr — the reference
  // kernel, or an ungrouped node — is the identity path throughout.
  friend class FastKernel;
  enum class St : std::uint8_t {
    Idle,
    Intermission,
    BusOffWait,     ///< counting recessive sequences towards recovery
    Suspend,        ///< error-passive transmitter back-off (8 bits)
    Tx,             ///< pumping the TxEngine (body + tail + EOF)
    Rx,             ///< parser consuming the stuffed body
    RxTail,         ///< CRC delimiter / ACK slot / ACK delimiter
    RxEof,          ///< receiver inside the EOF field
    ErrorFlag,      ///< 6 dominant bits
    PassiveFlag,    ///< 6 equal bits observed, driving recessive
    OverloadFlag,   ///< 6 dominant bits, no frame rejection implied
    DelimWait,      ///< flag sent; waiting to see a recessive bit
    Delim,          ///< counting delimiter recessive bits
    Sampling,       ///< MajorCAN: gap + majority-vote window
    ExtFlag,        ///< MajorCAN: extended acceptance-notification flag
  };

  /// What to do once an error/overload flag has been fully transmitted.
  enum class AfterFlag : std::uint8_t {
    Delimiter,      ///< normal: wait for recessive, count delimiter
    MinorCheck,     ///< MinorCAN: decide accept/reject on the next bit
    MajorSample,    ///< MajorCAN: enter the sampling window
  };

  // eof_rel_ uses the shared kNoEofRel sentinel (sim/bus.hpp).  Anchored
  // values span [-(m+4), 3m+4 + error_delim_total()]: receivers anchor at
  // -3 (CRC delimiter); transmitters anchor once within m+4 bits of EOF
  // (handle_tx_bit); bump_eof_rel() then advances the anchor through the
  // end-game and delimiter.  Every comparison against the sentinel must be
  // an exact equality test — ordering comparisons (e.g. `eof_rel_ >= 0`)
  // would silently treat the sentinel as a position.

  /// The state-bearing controller: the group shadow while proxied, this
  /// node otherwise.  Every read-only accessor routes through it.
  [[nodiscard]] const CanController& self() const {
    return proxy_ != nullptr ? *proxy_ : *this;
  }

  /// Materialize shared state back into this node (if proxied) and notify
  /// the owning fast kernel that an external mutation is about to happen.
  /// Called at the top of every public mutator.
  void detach_shared_state();

  /// Raw runtime-state copy (no shared-state guard); the body of
  /// clone_runtime_state and the kernel's group (de)materialization path.
  void copy_runtime_state_from(const CanController& src);

  /// True only if sampling `view` in the current state is a *silent*
  /// transition: no event emitted, no delivery/tx handler fired, no
  /// fault-confinement change.  The fast kernel's gate for advancing a
  /// whole group through its shared shadow without re-running members.
  /// Must stay in exact sync with sample()'s handlers — every code path
  /// that can emit must be classified non-quiet here.
  [[nodiscard]] bool sample_is_quiet(Level view) const;

  // --- helpers ---
  void start_transmission(BitTime t);
  void start_reception(BitTime t, Level first_bit);
  void become_idle();
  void enter_intermission();
  void bump_eof_rel();
  void after_own_flag();
  void start_error_flag(BitTime t, AfterFlag next, const std::string& why);
  void start_overload_flag(BitTime t, const std::string& why);

  void rx_error(BitTime t, AfterFlag next, const std::string& why);
  void tx_error(BitTime t, AfterFlag next, const std::string& why);

  void accept_frame(BitTime t, const char* how);
  void reject_frame(BitTime t, const char* why);
  void tx_success(BitTime t, const char* how);
  void tx_rejected(BitTime t, const char* why);

  void handle_tx_bit(BitTime t, Level sent, Level view);
  void handle_rx_body_bit(BitTime t, Level view);
  void handle_rx_tail_bit(BitTime t, Level view);
  void handle_rx_eof_bit(BitTime t, Level view);
  void handle_eof_error_rx(BitTime t, int pos);
  void handle_eof_error_tx(BitTime t, int pos);
  void handle_flag_bit(BitTime t, Level view);
  void handle_delim_wait_bit(BitTime t, Level view);
  void handle_delim_bit(BitTime t, Level view);
  void handle_sampling_bit(BitTime t, Level view);
  void handle_ext_flag_bit(BitTime t, Level view);
  void handle_intermission_bit(BitTime t, Level view);

  void conclude_sampling(BitTime t);

  /// Emit state-change events and react to fault-confinement transitions
  /// (bus-off entry, recovery start); called once per sampled bit.
  void note_fc_state(BitTime t);

  void emit(BitTime t, EventKind kind, std::string detail = {},
            std::optional<Frame> frame = std::nullopt);

  /// Report an FSM transition if st_ changed since the last call: to this
  /// thread's TransitionSink (always) and to the global coverage counters
  /// (MCAN_ENABLE_FSM_COVERAGE builds only).
  void cov_note();

  [[nodiscard]] bool is_major() const {
    return cfg_.protocol.variant == Variant::MajorCan;
  }
  [[nodiscard]] bool is_minor() const {
    return cfg_.protocol.variant == Variant::MinorCan;
  }

  // --- configuration & collaborators ---
  ControllerConfig cfg_;
  EventLog* log_;
  std::vector<DeliveryHandler> on_deliver_;
  std::vector<TxDoneHandler> on_tx_done_;

  FaultConfinement fc_;
  RxParser rx_;
  TxEngine txe_;
  std::deque<Frame> queue_;

  // --- FSM state ---
  St st_ = St::Idle;
  bool tx_role_ = false;        ///< this node transmitted the current frame
  bool tx_in_flight_ = false;   ///< a frame attempt is unresolved
  int tail_pos_ = 0;            ///< 0 = CRC delim, 1 = ACK slot, 2 = ACK delim
  int eof_rel_ = kNoEofRel;     ///< 0-based position relative to EOF start
  int flag_sent_ = 0;           ///< dominant flag bits transmitted so far
  int delim_seen_ = 0;          ///< delimiter recessive bits counted
  int interm_pos_ = 0;
  int suspend_left_ = 0;
  bool crc_failed_ = false;     ///< receiver: CRC mismatch pending signalling
  bool ack_seen_ = false;       ///< transmitter: dominant in the ACK slot
  bool will_ack_ = false;       ///< receiver: drive ACK slot dominant
  AfterFlag after_flag_ = AfterFlag::Delimiter;
  bool delim_first_bit_ = false;   ///< next DelimWait bit is the first after our flag
  bool delim_is_overload_ = false; ///< delimiter follows an overload flag
  bool delim_fixed_ = false;       ///< MajorCAN post-end-game fixed-length delimiter
  bool delim_convergent_ = false;  ///< ablation: reset-on-dominant counting
  int delim_dom_run_ = 0;          ///< consecutive dominants after own flag
  int frame_index_ = -1;           ///< frames started on the bus, 0-based

  // passive flag progress
  int passive_run_ = 0;
  Level passive_last_ = Level::Recessive;

  // fault-confinement bookkeeping
  FcState last_fc_state_ = FcState::ErrorActive;
  int recovery_runs_ = 0;  ///< completed 11-recessive sequences
  int recovery_run_ = 0;   ///< current consecutive recessive count

  // MajorCAN end-game
  int samples_dom_ = 0;
  int samples_seen_ = 0;
  bool vote_enabled_ = false;  ///< Sampling state carries a pending verdict

  // deferred decision bookkeeping
  bool have_rx_frame_ = false;  ///< rx_ holds a complete body for this frame

  // FSM-coverage bookkeeping: last state reported to the coverage matrix.
  // Unused (but kept, for a stable layout) when coverage is compiled out.
  St cov_prev_ = St::Idle;

  // --- fast-kernel shared-state plumbing (see the friend declaration) ---
  const CanController* proxy_ = nullptr;  ///< group shadow while grouped
  FastKernel* fast_owner_ = nullptr;      ///< kernel to notify, while grouped
  std::uint32_t fast_index_ = 0;          ///< this node's slot in the kernel
  bool fast_touched_ = false;             ///< externally mutated this bit
};

}  // namespace mcan
