#include "higher/relcan.hpp"

namespace mcan {

void RelcanHost::on_data(const MessageKey& key, BitTime t) {
  const bool first = deliver(key, t);
  if (first && key.source != id()) {
    waiting_.emplace(key, t + params_.timeout_bits);
  }
}

void RelcanHost::on_control(const Tag& tag, BitTime) {
  if (tag.kind == MsgKind::Confirm) waiting_.erase(tag.key);
}

void RelcanHost::on_own_tx_done(const Tag& tag, BitTime) {
  // Our DATA frame made it out: confirm it.  (CONFIRM frames need no
  // follow-up of their own.)
  if (tag.kind == MsgKind::Data && tag.key.source == id()) {
    send_control(MsgKind::Confirm, tag.key);
  }
}

void RelcanHost::on_tick(BitTime now) {
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (now >= it->second) {
      // No CONFIRM: assume the transmitter failed and diffuse the message.
      send_data(it->first, /*relay=*/true);
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mcan
