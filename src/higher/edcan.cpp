#include "higher/edcan.hpp"

// EdcanHost is header-only; this TU anchors the library target.
namespace mcan {}
