#include "higher/host.hpp"

namespace mcan {

namespace {
// CAN-id bands: control frames outrank data, data outranks relays, and the
// node id breaks ties, so every concurrent sender has a distinct identifier.
std::uint32_t control_id(NodeId node) { return 0x080 + node; }
std::uint32_t data_id(NodeId node) { return 0x100 + node; }
std::uint32_t relay_id(NodeId node) { return 0x300 + node; }
}  // namespace

HigherHost::HigherHost(CanController& ctrl, HostParams params)
    : ctrl_(ctrl), params_(params) {
  ctrl_.add_delivery_handler(
      [this](const Frame& f, BitTime t) { handle_frame(f, t); });
  ctrl_.add_tx_done_handler([this](const Frame& f, BitTime t) {
    if (auto tag = parse_tag(f)) on_own_tx_done(*tag, t);
  });
}

void HigherHost::broadcast(MessageKey key) {
  broadcasts_.push_back({key, id()});
  on_broadcast(key, now_);
}

void HigherHost::on_broadcast(const MessageKey& key, BitTime now) {
  deliver(key, now);  // the sender has its own message
  send_data(key, /*relay=*/false);
}

void HigherHost::tick(BitTime now) {
  now_ = now;
  on_tick(now);
}

bool HigherHost::deliver(const MessageKey& key, BitTime t) {
  if (!seen_.insert(key).second) return false;
  delivered_.push_back({key, t});
  return true;
}

void HigherHost::send_data(const MessageKey& key, bool relay) {
  const std::uint32_t id = relay ? relay_id(ctrl_.id()) : data_id(ctrl_.id());
  ctrl_.enqueue(make_tagged_frame(id, MsgKind::Data, key));
  if (relay) ++extra_frames_;
}

void HigherHost::send_control(MsgKind kind, const MessageKey& key) {
  ctrl_.enqueue(make_tagged_frame(control_id(ctrl_.id()), kind, key));
  ++extra_frames_;
}

void HigherHost::handle_frame(const Frame& f, BitTime t) {
  auto tag = parse_tag(f);
  if (!tag) return;
  if (tag->kind == MsgKind::Data) {
    on_data(tag->key, t);
  } else {
    on_control(*tag, t);
  }
}

void HigherHost::on_control(const Tag&, BitTime) {}
void HigherHost::on_own_tx_done(const Tag&, BitTime) {}
void HigherHost::on_tick(BitTime) {}

}  // namespace mcan
