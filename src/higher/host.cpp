#include "higher/host.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mcan {

namespace {
// CAN-id bands: control frames outrank data, data outranks relays, and the
// node id breaks ties, so every concurrent sender has a distinct identifier.
std::uint32_t control_id(NodeId node) { return 0x080 + node; }
std::uint32_t data_id(NodeId node) { return 0x100 + node; }
std::uint32_t relay_id(NodeId node) { return 0x300 + node; }
}  // namespace

BitTime host_min_timeout_bits(const ProtocolParams& link) {
  const auto frame_bits = [&link](int dlc) {
    const int data_bits = 8 * dlc;
    // Stuffable region (SOF..CRC) is 34 + 8n bits; worst-case stuffing
    // inserts one bit per four.  The tail (CRC delimiter, ACK slot and
    // delimiter, EOF, intermission) adds 6 + eof_bits more.
    const int stuff_max = (34 + data_bits - 1) / 4;
    return static_cast<BitTime>(34 + data_bits + stuff_max + 6 +
                                link.eof_bits());
  };
  // The control frame arrives just after a maximal frame started, that
  // frame errors once and retransmits, then the control frame itself must
  // complete; 31 bits cover the error flag, delimiter, intermission and
  // an error-passive suspend window.
  return 2 * frame_bits(8) + frame_bits(4) + 31;
}

void HostParams::validate(const ProtocolParams& link) const {
  const BitTime min = host_min_timeout_bits(link);
  if (timeout_bits <= min) {
    throw std::invalid_argument(
        "HostParams::timeout_bits=" + std::to_string(timeout_bits) +
        " cannot exceed the worst-case control-frame bus-win time (" +
        std::to_string(min) + " bits) for this link");
  }
}

HigherHost::HigherHost(CanController& ctrl, HostParams params)
    : ctrl_(ctrl), params_(params) {
  params_.validate(ctrl_.protocol());
  ctrl_.add_delivery_handler(
      [this](const Frame& f, BitTime t) { handle_frame(f, t); });
  ctrl_.add_tx_done_handler([this](const Frame& f, BitTime t) {
    if (auto tag = parse_tag(f)) on_own_tx_done(*tag, t);
  });
}

void HigherHost::broadcast(MessageKey key) {
  broadcasts_.push_back({key, id()});
  on_broadcast(key, now_);
}

void HigherHost::broadcast_frame(const Frame& f) {
  const auto tag = parse_tag(f);
  if (!tag || tag->kind != MsgKind::Data) {
    throw std::invalid_argument(
        "broadcast_frame needs a tagged DATA frame");
  }
  payloads_.insert({tag->key, f});
  broadcast(tag->key);
}

void HigherHost::on_broadcast(const MessageKey& key, BitTime now) {
  deliver(key, now);  // the sender has its own message
  send_data(key, /*relay=*/false);
}

void HigherHost::tick(BitTime now) {
  now_ = now;
  on_tick(now);
}

bool HigherHost::deliver(const MessageKey& key, BitTime t) {
  if (!seen_.insert(key).second) return false;
  delivered_.push_back({key, t});
  if (app_frame_handler_) {
    const auto it = payloads_.find(key);
    app_frame_handler_(it != payloads_.end()
                           ? it->second
                           : make_tagged_frame(data_id(key.source),
                                               MsgKind::Data, key),
                       t);
  }
  return true;
}

void HigherHost::send_data(const MessageKey& key, bool relay) {
  const std::uint32_t id = relay ? relay_id(ctrl_.id()) : data_id(ctrl_.id());
  Frame f;
  if (const auto it = payloads_.find(key); it != payloads_.end()) {
    f = it->second;
    f.id = id;
  } else {
    f = make_tagged_frame(id, MsgKind::Data, key);
  }
  ctrl_.enqueue(f);
  if (relay) ++extra_frames_;
}

void HigherHost::send_control(MsgKind kind, const MessageKey& key) {
  ctrl_.enqueue(make_tagged_frame(control_id(ctrl_.id()), kind, key));
  ++extra_frames_;
}

void HigherHost::handle_frame(const Frame& f, BitTime t) {
  auto tag = parse_tag(f);
  if (!tag) return;
  if (tag->kind == MsgKind::Data) {
    payloads_.insert({tag->key, f});  // first copy wins; relays reuse it
    on_data(tag->key, t);
  } else {
    on_control(*tag, t);
  }
}

void HigherHost::on_control(const Tag&, BitTime) {}
void HigherHost::on_own_tx_done(const Tag&, BitTime) {}
void HigherHost::on_tick(BitTime) {}

}  // namespace mcan
