// TOTCAN (Rufino et al., FTCS'98): totally ordered broadcast via ACCEPT.
//
// Receivers do not deliver DATA immediately: each message joins the tail of
// a pending queue.  The transmitter sends an ACCEPT control frame after the
// main message succeeds; receiving the ACCEPT fixes the message's position
// and releases it (in queue order).  If the ACCEPT does not arrive within
// the timeout, the message is removed undelivered.  This yields Atomic
// Broadcast under the Fig. 1 failure assumptions — but in the paper's new
// Fig. 3 scenarios the DATA frame itself is inconsistently received while
// the transmitter believes it succeeded, so the ACCEPT releases the message
// only where the DATA arrived: agreement breaks (§4).
#pragma once

#include <deque>
#include <set>

#include "higher/host.hpp"

namespace mcan {

class TotcanHost final : public HigherHost {
 public:
  using HigherHost::HigherHost;

  [[nodiscard]] bool busy() const override { return !pending_.empty(); }

 protected:
  void on_data(const MessageKey& key, BitTime t) override;
  void on_control(const Tag& tag, BitTime t) override;
  void on_own_tx_done(const Tag& tag, BitTime t) override;
  void on_tick(BitTime now) override;
  void on_broadcast(const MessageKey& key, BitTime now) override;

 private:
  struct Pending {
    MessageKey key;
    BitTime deadline = 0;
    bool accepted = false;
  };

  void release_head(BitTime now);

  std::deque<Pending> pending_;
};

}  // namespace mcan
