#include "higher/gateway.hpp"

namespace mcan {

Gateway::Gateway(CanController& a, CanController& b) : side_{&a, &b} {
  a.add_delivery_handler(
      [this](const Frame& f, BitTime) { on_frame(0, f); });
  b.add_delivery_handler(
      [this](const Frame& f, BitTime) { on_frame(1, f); });
}

void Gateway::add_rule(int from_bus, std::uint32_t id_lo, std::uint32_t id_hi) {
  rules_.push_back({from_bus == 0 ? 0 : 1, id_lo, id_hi});
}

void Gateway::on_frame(int from_bus, const Frame& f) {
  for (const Rule& r : rules_) {
    if (r.from_bus == from_bus && f.id >= r.lo && f.id <= r.hi) {
      side_[from_bus == 0 ? 1 : 0]->enqueue(f);
      ++forwarded_[from_bus];
      return;
    }
  }
  ++dropped_[from_bus];
}

}  // namespace mcan
