#include "higher/totcan.hpp"

namespace mcan {

void TotcanHost::on_data(const MessageKey& key, BitTime t) {
  if (already_delivered(key)) return;
  for (const Pending& p : pending_) {
    if (p.key == key) return;  // duplicate reception: position already fixed
  }
  pending_.push_back({key, t + params_.timeout_bits, false});
}

void TotcanHost::on_control(const Tag& tag, BitTime t) {
  if (tag.kind != MsgKind::Accept) return;
  for (Pending& p : pending_) {
    if (p.key == tag.key) {
      p.accepted = true;
      break;
    }
  }
  release_head(t);
}

void TotcanHost::on_own_tx_done(const Tag& tag, BitTime t) {
  if (tag.kind == MsgKind::Data && tag.key.source == id()) {
    // Our DATA frame just cleared the bus: receivers enqueued it at this
    // moment, so this — not broadcast time — is our own queue position too.
    // (Queueing at broadcast time would misorder concurrent senders.)
    pending_.push_back({tag.key, t + params_.timeout_bits, false});
    send_control(MsgKind::Accept, tag.key);
  } else if (tag.kind == MsgKind::Accept && tag.key.source == id()) {
    // Our own ACCEPT went out: our message's position is fixed for us too.
    for (Pending& p : pending_) {
      if (p.key == tag.key) {
        p.accepted = true;
        break;
      }
    }
    release_head(t);
  }
}

void TotcanHost::on_tick(BitTime now) {
  // Expire unaccepted heads; deliver accepted ones in queue order.
  while (!pending_.empty()) {
    Pending& head = pending_.front();
    if (head.accepted) {
      deliver(head.key, now);
      pending_.pop_front();
    } else if (now >= head.deadline) {
      pending_.pop_front();  // ACCEPT never came: discard undelivered
    } else {
      break;
    }
  }
}

void TotcanHost::release_head(BitTime now) { on_tick(now); }

void TotcanHost::on_broadcast(const MessageKey& key, BitTime) {
  // The sender's own message also waits for its ACCEPT, keeping one total
  // order across all nodes; it joins pending_ when the DATA frame clears
  // the bus (see on_own_tx_done).
  send_data(key, /*relay=*/false);
}

}  // namespace mcan
