// A complete bus running one of the higher-level protocols over standard
// CAN: controllers + hosts + per-bit host ticking, with journal collection
// for the property checker.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/network.hpp"
#include "higher/edcan.hpp"
#include "higher/relcan.hpp"
#include "higher/totcan.hpp"

namespace mcan {

enum class HigherKind { Edcan, Relcan, Totcan };

[[nodiscard]] const char* higher_kind_name(HigherKind k);

class HigherNetwork {
 public:
  HigherNetwork(HigherKind kind, int n, HostParams params = {},
                const ProtocolParams& link = ProtocolParams::standard_can());

  [[nodiscard]] int size() const { return net_.size(); }
  [[nodiscard]] Network& link() { return net_; }
  [[nodiscard]] HigherHost& host(int i) {
    return *hosts_.at(static_cast<std::size_t>(i));
  }

  /// One bit time: simulator step + host timers.
  void step();
  void run(BitTime n);

  /// Run until bus idle, controller queues empty and hosts not busy.
  bool run_until_quiet(BitTime max_bits = 200000);

  /// Everything broadcast by any host.
  [[nodiscard]] std::vector<BroadcastRecord> all_broadcasts() const;

  /// Application-level journals per node.
  [[nodiscard]] std::map<NodeId, DeliveryJournal> journals() const;

  /// AB1..AB5 over the app-level journals of `correct` nodes (defaults to
  /// every node that is still active and not crashed).
  [[nodiscard]] AbReport check() const;
  [[nodiscard]] AbReport check(const std::set<NodeId>& correct) const;

  /// Total extra (control + relay) frames across hosts.
  [[nodiscard]] int extra_frames() const;

 private:
  Network net_;
  std::vector<std::unique_ptr<HigherHost>> hosts_;
};

}  // namespace mcan
