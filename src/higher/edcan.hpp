// EDCAN (Rufino et al., FTCS'98): Eager Diffusion.
//
// Every receiver retransmits each message once upon first reception, so a
// transmitter failure after a partial delivery cannot leave anyone without
// the message: whoever got a copy spreads it.  This gives Reliable
// Broadcast (no total order, AB5 fails) and is the only one of the three
// baselines that also survives the paper's new Fig. 3 scenarios — at the
// cost of at least one extra frame per message per receiver.
#pragma once

#include "higher/host.hpp"

namespace mcan {

class EdcanHost final : public HigherHost {
 public:
  using HigherHost::HigherHost;

 protected:
  void on_data(const MessageKey& key, BitTime t) override {
    const bool first = deliver(key, t);
    if (first && key.source != id()) {
      send_data(key, /*relay=*/true);
    }
  }
};

}  // namespace mcan
