// Replicated-media architecture: the "double CAN" of Ferriol, Navio,
// Proenza et al. (ICC'98), the same group's other answer to CAN
// dependability limits.  Every node owns one controller on each of two
// independent buses; a broadcast goes out on both, receivers deliver the
// first copy and discard the twin.
//
// This masks any disturbance pattern confined to one bus — including the
// paper's Fig. 3a scenario — and survives a permanent medium failure
// (which the paper's single-bus assumptions exclude), at the price of
// duplicating the bandwidth and the transceivers.  Correlated disturbances
// hitting both buses still split the receivers, so replication and
// MajorCAN are complementary, not substitutes; the dual-bus bench
// quantifies exactly that.
#pragma once

#include <memory>
#include <set>

#include "analysis/properties.hpp"
#include "analysis/tagged.hpp"
#include "core/network.hpp"

namespace mcan {

class DualBusNetwork {
 public:
  DualBusNetwork(int n, const ProtocolParams& link);

  DualBusNetwork(const DualBusNetwork&) = delete;
  DualBusNetwork& operator=(const DualBusNetwork&) = delete;

  [[nodiscard]] int size() const { return n_; }

  /// The two replicated buses (0 = A, 1 = B).
  [[nodiscard]] Network& bus(int which) { return which == 0 ? a_ : b_; }

  /// Install per-bus fault injectors.
  void set_injector(int which, FaultInjector& inj) {
    bus(which).set_injector(inj);
  }

  /// Application broadcast: the tagged message goes out on both buses.
  void broadcast(int node, MessageKey key);

  /// One bit time on both buses (they run the same clock).
  void step();
  void run(BitTime n);
  bool run_until_quiet(BitTime max_bits = 60000);

  /// Application-level (deduplicated) journals per node.
  [[nodiscard]] const std::map<NodeId, DeliveryJournal>& journals() const {
    return journals_;
  }

  [[nodiscard]] AbReport check() const;

  /// Copies of `key` node `i` delivered at the application level (0 or 1).
  [[nodiscard]] std::size_t app_deliveries(int i) const {
    return journals_.at(static_cast<NodeId>(i)).size();
  }

 private:
  int n_;
  Network a_;
  Network b_;
  std::map<NodeId, DeliveryJournal> journals_;
  std::map<NodeId, std::set<MessageKey>> seen_;
  std::vector<BroadcastRecord> broadcasts_;
};

}  // namespace mcan
