// Base class for the Rufino et al. higher-level protocols (EDCAN, RELCAN,
// TOTCAN) layered over *standard* CAN controllers.  These are the paper's
// baselines: they repair the Fig. 1 inconsistencies with extra frames, but
// (except EDCAN) fail in the new Fig. 3 scenarios, and all of them cost more
// than a frame per message — the overhead MajorCAN's 3..11 bits avoid.
//
// A host owns the application-level view of one node: it broadcasts tagged
// DATA messages, reacts to frames its controller delivers, keeps timers in
// bit time, deduplicates, and journals application-level deliveries for the
// property checker.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "analysis/properties.hpp"
#include "analysis/tagged.hpp"
#include "core/controller.hpp"

namespace mcan {

/// Smallest safe HostParams::timeout_bits for a link speaking `link`: the
/// worst-case time for a sender's control frame to win the bus — a maximal
/// stuffed data frame already on the wire, one error-recovery retransmission
/// of it, then the control frame itself, plus the error flag / delimiter /
/// intermission margin.
[[nodiscard]] BitTime host_min_timeout_bits(const ProtocolParams& link);

struct HostParams {
  /// Timeout, in bit times, a receiver waits for CONFIRM/ACCEPT before
  /// acting (RELCAN: relay; TOTCAN: discard).  Must exceed
  /// host_min_timeout_bits() for the link's ProtocolParams — a shorter
  /// timeout can expire while the control frame is still legitimately
  /// queued behind bus traffic, turning normal arbitration delay into
  /// spurious relays/discards.  HigherHost validates this at construction.
  BitTime timeout_bits = 800;

  /// Throws std::invalid_argument when timeout_bits cannot exceed the
  /// worst-case control-frame bus-win time on `link`.
  void validate(const ProtocolParams& link) const;
};

class HigherHost {
 public:
  HigherHost(CanController& ctrl, HostParams params);
  virtual ~HigherHost() = default;

  HigherHost(const HigherHost&) = delete;
  HigherHost& operator=(const HigherHost&) = delete;

  /// Application broadcast of message `key` (key.source should be this
  /// node).  The message is considered delivered locally right away.
  void broadcast(MessageKey key);

  /// Broadcast a full tagged DATA frame: like broadcast(), but the frame's
  /// payload bytes beyond the tag travel with the message — through relays
  /// and into receivers' frame handlers.  This is how a layered client
  /// (the RSM stack) pipes its segment payloads through EDCAN/RELCAN/
  /// TOTCAN without the host rebuilding tag-only frames.  Throws
  /// std::invalid_argument unless `f` parses as a tagged DATA frame.
  void broadcast_frame(const Frame& f);

  /// Observe application-level deliveries as full frames, in delivery
  /// order (post-dedup; TOTCAN invokes it at ACCEPT-release time).  The
  /// frame passed is the one stored for the key — an own broadcast_frame,
  /// a received DATA frame, or a synthesized tag-only frame for plain
  /// broadcast() keys.
  using AppFrameHandler = std::function<void(const Frame&, BitTime)>;
  void set_app_frame_handler(AppFrameHandler h) {
    app_frame_handler_ = std::move(h);
  }

  /// Advance host timers; call once per bit after the simulator step.
  void tick(BitTime now);

  /// Application-level deliveries (post-dedup, post-ordering), in order.
  [[nodiscard]] const DeliveryJournal& app_deliveries() const {
    return delivered_;
  }

  [[nodiscard]] const std::vector<BroadcastRecord>& broadcasts() const {
    return broadcasts_;
  }

  /// True while timers or relays are outstanding (quiescence check).
  [[nodiscard]] virtual bool busy() const { return false; }

  [[nodiscard]] NodeId id() const { return ctrl_.id(); }

  /// Total control/relay frames this host originated (overhead accounting).
  [[nodiscard]] int extra_frames_sent() const { return extra_frames_; }

 protected:
  virtual void on_data(const MessageKey& key, BitTime t) = 0;
  virtual void on_control(const Tag& tag, BitTime t);
  virtual void on_own_tx_done(const Tag& tag, BitTime t);
  virtual void on_tick(BitTime now);

  /// Local handling of an own broadcast.  Default: deliver immediately and
  /// queue the DATA frame.  TOTCAN defers its own delivery to ACCEPT time.
  virtual void on_broadcast(const MessageKey& key, BitTime now);

  /// Deliver `key` to the application unless already delivered.
  /// Returns true on first delivery.
  bool deliver(const MessageKey& key, BitTime t);

  [[nodiscard]] bool already_delivered(const MessageKey& key) const {
    return seen_.contains(key);
  }

  /// Queue a DATA frame for `key` (relays mark `relay` for id spacing).
  void send_data(const MessageKey& key, bool relay);

  /// Queue a control frame (CONFIRM/ACCEPT) for `key` — high priority.
  void send_control(MsgKind kind, const MessageKey& key);

  CanController& ctrl_;
  HostParams params_;

 private:
  void handle_frame(const Frame& f, BitTime t);

  DeliveryJournal delivered_;
  std::set<MessageKey> seen_;
  std::vector<BroadcastRecord> broadcasts_;
  /// Full frame per key, so relays and app-level delivery preserve payload
  /// bytes beyond the tag (first reception wins; later copies are dedup'd).
  std::map<MessageKey, Frame> payloads_;
  AppFrameHandler app_frame_handler_;
  int extra_frames_ = 0;
  BitTime now_ = 0;
};

}  // namespace mcan
