// Base class for the Rufino et al. higher-level protocols (EDCAN, RELCAN,
// TOTCAN) layered over *standard* CAN controllers.  These are the paper's
// baselines: they repair the Fig. 1 inconsistencies with extra frames, but
// (except EDCAN) fail in the new Fig. 3 scenarios, and all of them cost more
// than a frame per message — the overhead MajorCAN's 3..11 bits avoid.
//
// A host owns the application-level view of one node: it broadcasts tagged
// DATA messages, reacts to frames its controller delivers, keeps timers in
// bit time, deduplicates, and journals application-level deliveries for the
// property checker.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "analysis/properties.hpp"
#include "analysis/tagged.hpp"
#include "core/controller.hpp"

namespace mcan {

struct HostParams {
  /// Timeout, in bit times, a receiver waits for CONFIRM/ACCEPT before
  /// acting (RELCAN: relay; TOTCAN: discard).  Must exceed the worst-case
  /// time for the sender's control frame to win the bus.
  BitTime timeout_bits = 800;
};

class HigherHost {
 public:
  HigherHost(CanController& ctrl, HostParams params);
  virtual ~HigherHost() = default;

  HigherHost(const HigherHost&) = delete;
  HigherHost& operator=(const HigherHost&) = delete;

  /// Application broadcast of message `key` (key.source should be this
  /// node).  The message is considered delivered locally right away.
  void broadcast(MessageKey key);

  /// Advance host timers; call once per bit after the simulator step.
  void tick(BitTime now);

  /// Application-level deliveries (post-dedup, post-ordering), in order.
  [[nodiscard]] const DeliveryJournal& app_deliveries() const {
    return delivered_;
  }

  [[nodiscard]] const std::vector<BroadcastRecord>& broadcasts() const {
    return broadcasts_;
  }

  /// True while timers or relays are outstanding (quiescence check).
  [[nodiscard]] virtual bool busy() const { return false; }

  [[nodiscard]] NodeId id() const { return ctrl_.id(); }

  /// Total control/relay frames this host originated (overhead accounting).
  [[nodiscard]] int extra_frames_sent() const { return extra_frames_; }

 protected:
  virtual void on_data(const MessageKey& key, BitTime t) = 0;
  virtual void on_control(const Tag& tag, BitTime t);
  virtual void on_own_tx_done(const Tag& tag, BitTime t);
  virtual void on_tick(BitTime now);

  /// Local handling of an own broadcast.  Default: deliver immediately and
  /// queue the DATA frame.  TOTCAN defers its own delivery to ACCEPT time.
  virtual void on_broadcast(const MessageKey& key, BitTime now);

  /// Deliver `key` to the application unless already delivered.
  /// Returns true on first delivery.
  bool deliver(const MessageKey& key, BitTime t);

  [[nodiscard]] bool already_delivered(const MessageKey& key) const {
    return seen_.contains(key);
  }

  /// Queue a DATA frame for `key` (relays mark `relay` for id spacing).
  void send_data(const MessageKey& key, bool relay);

  /// Queue a control frame (CONFIRM/ACCEPT) for `key` — high priority.
  void send_control(MsgKind kind, const MessageKey& key);

  CanController& ctrl_;
  HostParams params_;

 private:
  void handle_frame(const Frame& f, BitTime t);

  DeliveryJournal delivered_;
  std::set<MessageKey> seen_;
  std::vector<BroadcastRecord> broadcasts_;
  int extra_frames_ = 0;
  BitTime now_ = 0;
};

}  // namespace mcan
