// Store-and-forward gateway between two buses — the standard way vehicle
// networks segment traffic (powertrain bus vs body bus) while sharing
// selected identifiers.  The gateway owns one controller per bus and
// re-enqueues every delivered frame that matches a directional identifier
// range.  Controllers never deliver their own transmissions, so forwarded
// frames cannot bounce back through the gateway.
#pragma once

#include <cstdint>
#include <vector>

#include "core/controller.hpp"

namespace mcan {

class Gateway {
 public:
  /// `a` and `b` are the gateway's controllers on the two buses.
  Gateway(CanController& a, CanController& b);

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Forward frames delivered on bus `from_bus` (0 = a, 1 = b) whose
  /// identifier lies in [id_lo, id_hi] to the other bus.
  void add_rule(int from_bus, std::uint32_t id_lo, std::uint32_t id_hi);

  [[nodiscard]] long long forwarded(int from_bus) const {
    return forwarded_[from_bus == 0 ? 0 : 1];
  }
  [[nodiscard]] long long dropped(int from_bus) const {
    return dropped_[from_bus == 0 ? 0 : 1];
  }

 private:
  struct Rule {
    int from_bus;
    std::uint32_t lo;
    std::uint32_t hi;
  };

  void on_frame(int from_bus, const Frame& f);

  CanController* side_[2];
  std::vector<Rule> rules_;
  long long forwarded_[2] = {0, 0};
  long long dropped_[2] = {0, 0};
};

}  // namespace mcan
