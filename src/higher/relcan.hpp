// RELCAN (Rufino et al., FTCS'98): lazy diffusion with confirmation.
//
// The transmitter sends a CONFIRM control frame after the main message
// succeeds.  Receivers deliver immediately but arm a timer; only if the
// CONFIRM fails to arrive (transmitter died) do they retransmit the main
// message themselves.  Cheaper than EDCAN in the failure-free case (one
// extra CONFIRM frame), but its recovery only triggers on *transmitter*
// failure — in the paper's Fig. 3 scenarios the transmitter stays correct
// and never learns some receivers rejected, so RELCAN inherits the
// inconsistency (§4).
#pragma once

#include <map>

#include "higher/host.hpp"

namespace mcan {

class RelcanHost final : public HigherHost {
 public:
  using HigherHost::HigherHost;

  [[nodiscard]] bool busy() const override { return !waiting_.empty(); }

 protected:
  void on_data(const MessageKey& key, BitTime t) override;
  void on_control(const Tag& tag, BitTime t) override;
  void on_own_tx_done(const Tag& tag, BitTime t) override;
  void on_tick(BitTime now) override;

 private:
  std::map<MessageKey, BitTime> waiting_;  ///< key -> confirm deadline
};

}  // namespace mcan
