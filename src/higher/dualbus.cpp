#include "higher/dualbus.hpp"

namespace mcan {

DualBusNetwork::DualBusNetwork(int n, const ProtocolParams& link)
    : n_(n), a_(n, link), b_(n, link) {
  for (int i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(i);
    journals_.emplace(id, DeliveryJournal{});
    seen_.emplace(id, std::set<MessageKey>{});
    auto deliver = [this, id](const Frame& f, BitTime t) {
      auto tag = parse_tag(f);
      if (!tag || tag->kind != MsgKind::Data) return;
      if (!seen_.at(id).insert(tag->key).second) return;  // twin copy
      journals_.at(id).push_back({tag->key, t});
    };
    a_.node(i).add_delivery_handler(deliver);
    b_.node(i).add_delivery_handler(deliver);
  }
}

void DualBusNetwork::broadcast(int node, MessageKey key) {
  const Frame f = make_tagged_frame(
      0x100 + static_cast<std::uint32_t>(node), MsgKind::Data, key);
  a_.node(node).enqueue(f);
  b_.node(node).enqueue(f);
  broadcasts_.push_back({key, static_cast<NodeId>(node)});
  // The sender has its own message.
  if (seen_.at(static_cast<NodeId>(node)).insert(key).second) {
    journals_.at(static_cast<NodeId>(node)).push_back({key, a_.sim().now()});
  }
}

void DualBusNetwork::step() {
  a_.sim().step();
  b_.sim().step();
}

void DualBusNetwork::run(BitTime n) {
  for (BitTime i = 0; i < n; ++i) step();
}

bool DualBusNetwork::run_until_quiet(BitTime max_bits) {
  for (BitTime i = 0; i < max_bits; ++i) {
    step();
    bool quiet = true;
    for (Network* net : {&a_, &b_}) {
      for (int j = 0; j < n_; ++j) {
        const CanController& node = net->node(j);
        if (net->sim().crashed(node.id()) || !node.active()) continue;
        if (!node.bus_idle() || node.pending_tx() > 0) {
          quiet = false;
          break;
        }
      }
      if (!quiet) break;
    }
    if (quiet) return true;
  }
  return false;
}

AbReport DualBusNetwork::check() const {
  // A node is correct if it is alive on at least one bus (the architecture
  // treats the pair as one logical node).
  std::set<NodeId> correct;
  for (int i = 0; i < n_; ++i) {
    const auto id = static_cast<NodeId>(i);
    const bool on_a = !a_.sim().crashed(id) && a_.node(i).active();
    const bool on_b = !b_.sim().crashed(id) && b_.node(i).active();
    if (on_a || on_b) correct.insert(id);
  }
  return check_atomic_broadcast(broadcasts_, journals_, correct);
}

}  // namespace mcan
