#include "higher/higher_network.hpp"

namespace mcan {

const char* higher_kind_name(HigherKind k) {
  switch (k) {
    case HigherKind::Edcan: return "EDCAN";
    case HigherKind::Relcan: return "RELCAN";
    case HigherKind::Totcan: return "TOTCAN";
  }
  return "?";
}

HigherNetwork::HigherNetwork(HigherKind kind, int n, HostParams params,
                             const ProtocolParams& link)
    : net_(n, link) {
  hosts_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    switch (kind) {
      case HigherKind::Edcan:
        hosts_.push_back(std::make_unique<EdcanHost>(net_.node(i), params));
        break;
      case HigherKind::Relcan:
        hosts_.push_back(std::make_unique<RelcanHost>(net_.node(i), params));
        break;
      case HigherKind::Totcan:
        hosts_.push_back(std::make_unique<TotcanHost>(net_.node(i), params));
        break;
    }
  }
}

void HigherNetwork::step() {
  net_.sim().step();
  const BitTime now = net_.sim().now();
  for (auto& host : hosts_) host->tick(now);
}

void HigherNetwork::run(BitTime n) {
  for (BitTime i = 0; i < n; ++i) step();
}

bool HigherNetwork::run_until_quiet(BitTime max_bits) {
  for (BitTime i = 0; i < max_bits; ++i) {
    step();
    bool quiet = true;
    for (int j = 0; j < net_.size(); ++j) {
      const CanController& node = net_.node(j);
      if (net_.sim().crashed(node.id()) || !node.active()) continue;
      if (!node.bus_idle() || node.pending_tx() > 0 ||
          hosts_[static_cast<std::size_t>(j)]->busy()) {
        quiet = false;
        break;
      }
    }
    if (quiet) return true;
  }
  return false;
}

std::vector<BroadcastRecord> HigherNetwork::all_broadcasts() const {
  std::vector<BroadcastRecord> out;
  for (const auto& host : hosts_) {
    const auto& b = host->broadcasts();
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

std::map<NodeId, DeliveryJournal> HigherNetwork::journals() const {
  std::map<NodeId, DeliveryJournal> out;
  for (const auto& host : hosts_) {
    out.emplace(host->id(), host->app_deliveries());
  }
  return out;
}

AbReport HigherNetwork::check() const {
  std::set<NodeId> correct;
  for (int i = 0; i < net_.size(); ++i) {
    const CanController& node = net_.node(i);
    if (!net_.sim().crashed(node.id()) && node.active()) {
      correct.insert(node.id());
    }
  }
  return check(correct);
}

AbReport HigherNetwork::check(const std::set<NodeId>& correct) const {
  return check_atomic_broadcast(all_broadcasts(), journals(), correct);
}

int HigherNetwork::extra_frames() const {
  int n = 0;
  for (const auto& host : hosts_) n += host->extra_frames_sent();
  return n;
}

}  // namespace mcan
