// The budgeted view-flip optimizer: how many *targeted* flips defeat a
// protocol variant's atomic broadcast?
//
// The paper's envelope theorem bounds what <= m random end-game
// disturbances can do to MajorCAN_m; this module measures the adversarial
// complement.  For each budget k = 1, 2, ... it searches the EOF-relative
// flip grid (the exact grid the bounded model checker sweeps) for a
// k-pattern that breaks agreement / at-most-once:
//
//   1. targeted candidates first — contiguous k-runs on a single node's
//      view (the shape that swings a MajorCAN majority window or re-times
//      one node's end-game), checked with run_flip_case();
//   2. exhaustive certification — run_model_check() over every k-pattern,
//      both to find witnesses the heuristics miss and to certify budgets
//      *below* the defeating one clean (the --expect-clean gate).
//
// The result is the minimum defeating budget with a concrete witness, plus
// the per-budget clean/violation record BENCH_attack.json commits.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "attack/attack.hpp"
#include "scenario/dsl.hpp"
#include "scenario/model_check.hpp"

namespace mcan {

struct BudgetProbeOptions {
  int jobs = 0;             ///< model-check workers (0 = hardware)
  long long max_cases = 0;  ///< exhaustive budget per k (0 = unlimited)
  int win_lo = -4;          ///< flip window, EOF-relative
  bool heuristics = true;   ///< try targeted candidates before enumerating
};

/// One budget level's verdict.
struct BudgetProbe {
  int k = 0;
  long long cases = 0;      ///< patterns covered (heuristic + exhaustive)
  bool exhaustive = false;  ///< true iff every k-pattern was covered
  bool violation = false;
  std::vector<std::pair<NodeId, int>> witness;  ///< first defeating pattern
  std::string witness_desc;                     ///< its classification
};

struct MinBudgetResult {
  ProtocolParams protocol;
  int n_nodes = 3;
  int budget = -1;  ///< minimum defeating budget found; -1 = none <= max
  std::vector<BudgetProbe> probes;  ///< k = 1 .. last probed

  /// True iff every probe below `budget` covered its space exhaustively —
  /// the minimality certificate.
  [[nodiscard]] bool clean_below_certified() const;
  [[nodiscard]] std::string summary() const;
};

/// Probe one budget level.
[[nodiscard]] BudgetProbe probe_budget(const ProtocolParams& protocol,
                                       int n_nodes, int k,
                                       const BudgetProbeOptions& opt = {});

/// Find the minimum defeating budget in 1..max_budget.
[[nodiscard]] MinBudgetResult find_min_defeating_budget(
    const ProtocolParams& protocol, int n_nodes, int max_budget,
    const BudgetProbeOptions& opt = {});

/// Render a witness pattern as a replayable scenario (glitch attacks, one
/// per victim run — ddmin-shaped by construction: the witness is minimal
/// in budget).
[[nodiscard]] ScenarioSpec witness_scenario(const ProtocolParams& protocol,
                                            int n_nodes,
                                            const BudgetProbe& probe);

/// Drive `victim`'s transmitter to bus-off with an error-frame flooder and
/// report what happened (busoff_t is the certified time-to-bus-off).
[[nodiscard]] AttackReport measure_time_to_busoff(
    const ProtocolParams& protocol, int n_nodes, NodeId victim = 0,
    int budget = 40);

}  // namespace mcan
