#include "attack/injector.hpp"

#include <algorithm>

namespace mcan {

namespace {

/// First body wire bit a bus-off attacker may strike.  Past the
/// arbitration and control fields, so corrupting the transmitter's view of
/// a dominant bit reads as a bit error (TEC += 8) rather than a lost
/// arbitration; every data/CRC section of a tagged frame has dominant bits
/// beyond this offset.
constexpr int kBusOffStrikeFrom = 20;

}  // namespace

AttackEngine::AttackEngine(std::vector<AttackSpec> attacks) {
  for (AttackSpec& a : attacks) {
    armed_.push_back(Armed{a, 0, -1, -1});
  }
}

bool AttackEngine::flips(NodeId node, BitTime t, const NodeBitInfo& info,
                         Level bus) {
  bool flip = false;
  for (Armed& g : armed_) {
    const AttackSpec& a = g.spec;
    switch (a.kind) {
      case AttackKind::Glitch: {
        if (node != a.victim || g.used >= a.budget) break;
        if (a.start > 0) {
          // Scheduled trigger: absolute bits [start, start + span).
          if (t < a.start || t >= a.start + static_cast<BitTime>(a.span)) {
            break;
          }
        } else {
          // Reactive trigger: the victim's observed EOF-relative position.
          if (info.eof_rel == kNoEofRel) break;
          if (a.frame >= 0 && info.frame_index != a.frame) break;
          if (info.eof_rel < a.pos || info.eof_rel >= a.pos + a.span) break;
        }
        if (a.when == GlitchWhen::Dominant && !is_dominant(bus)) break;
        if (a.when == GlitchWhen::Recessive && !is_recessive(bus)) break;
        ++g.used;
        ++rep_.glitch_flips;
        flip = !flip;
        break;
      }
      case AttackKind::BusOff: {
        if (node != a.victim) break;
        g.last_seen = static_cast<long long>(t);
        rep_.victim_peak_tec = std::max(rep_.victim_peak_tec, info.tec);
        if (t < a.start || g.used >= a.budget) break;
        if (!info.transmitter || info.seg != Seg::Body) break;
        if (info.index < kBusOffStrikeFrom || !is_dominant(bus)) break;
        if (info.frame_index == g.last_frame) break;  // one strike per attempt
        g.last_frame = info.frame_index;
        ++g.used;
        ++rep_.busoff_attempts;
        flip = !flip;
        break;
      }
      case AttackKind::Spoof:
        break;  // traffic-level; the runner enqueues the forged frames
    }
  }
  return flip;
}

BitTime AttackEngine::quiet_until(BitTime t) {
  for (const Armed& g : armed_) {
    if (g.spec.kind != AttackKind::Spoof) return t;
  }
  return kNoTime;
}

std::vector<NodeId> AttackEngine::busoff_victims() const {
  std::vector<NodeId> victims;
  for (const Armed& g : armed_) {
    if (g.spec.kind != AttackKind::BusOff) continue;
    if (std::find(victims.begin(), victims.end(), g.spec.victim) !=
        victims.end()) {
      continue;
    }
    victims.push_back(g.spec.victim);
  }
  return victims;
}

void AttackEngine::finalize_victim(NodeId victim, bool off_bus, int tec) {
  rep_.victim_peak_tec = std::max(rep_.victim_peak_tec, tec);
  if (!off_bus) return;
  rep_.victim_busoff = true;
  for (const Armed& g : armed_) {
    if (g.spec.kind != AttackKind::BusOff || g.spec.victim != victim) continue;
    if (g.last_seen >= 0 &&
        (rep_.busoff_t < 0 || g.last_seen + 1 < rep_.busoff_t)) {
      rep_.busoff_t = g.last_seen + 1;
    }
  }
}

}  // namespace mcan
