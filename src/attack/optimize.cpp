#include "attack/optimize.hpp"

#include <algorithm>

#include "scenario/dsl.hpp"

namespace mcan {

BudgetProbe probe_budget(const ProtocolParams& protocol, int n_nodes, int k,
                         const BudgetProbeOptions& opt) {
  BudgetProbe p;
  p.k = k;

  ExhaustiveConfig base;
  base.protocol = protocol;
  base.n_nodes = n_nodes;
  base.errors = k;
  base.win_lo_rel = opt.win_lo;
  const int hi = base.window_hi();

  // Targeted candidates: contiguous k-runs on one node's view — the shape
  // that swings a majority window or re-times one node's end-game.  Cheap
  // (O(nodes * window)) and usually enough to find the witness.
  if (opt.heuristics) {
    for (int node = 0; node < n_nodes; ++node) {
      for (int start = opt.win_lo; start + k - 1 <= hi; ++start) {
        std::vector<std::pair<NodeId, int>> flips;
        for (int j = 0; j < k; ++j) {
          flips.emplace_back(static_cast<NodeId>(node), start + j);
        }
        const FlipCaseResult r = run_flip_case(protocol, n_nodes, flips);
        ++p.cases;
        if (r.violation()) {
          p.violation = true;
          p.witness = std::move(flips);
          p.witness_desc = r.describe;
          return p;
        }
      }
    }
  }

  // Exhaustive pass: every k-pattern on the grid (re-visits the heuristic
  // candidates; counting them twice only inflates `cases`, never verdicts).
  ModelCheckConfig cfg;
  cfg.base = base;
  cfg.jobs = opt.jobs;
  cfg.max_cases = opt.max_cases;
  cfg.max_examples = 1;
  const ModelCheckResult r = run_model_check(cfg);
  p.cases += r.cases;
  p.exhaustive = r.complete;
  if (r.violations() > 0) {
    p.violation = true;
    if (!r.examples.empty()) {
      p.witness = r.examples[0].flips;
      p.witness_desc = r.examples[0].outcome;
    }
  }
  return p;
}

MinBudgetResult find_min_defeating_budget(const ProtocolParams& protocol,
                                          int n_nodes, int max_budget,
                                          const BudgetProbeOptions& opt) {
  MinBudgetResult res;
  res.protocol = protocol;
  res.n_nodes = n_nodes;
  for (int k = 1; k <= max_budget; ++k) {
    BudgetProbe p = probe_budget(protocol, n_nodes, k, opt);
    const bool hit = p.violation;
    res.probes.push_back(std::move(p));
    if (hit) {
      res.budget = k;
      break;
    }
  }
  return res;
}

bool MinBudgetResult::clean_below_certified() const {
  for (const BudgetProbe& p : probes) {
    if (budget >= 0 && p.k >= budget) continue;
    if (p.violation || !p.exhaustive) return false;
  }
  return true;
}

std::string MinBudgetResult::summary() const {
  std::string s = protocol.name() + " N=" + std::to_string(n_nodes) + ": ";
  if (budget < 0) {
    s += "no defeating pattern up to budget " +
         std::to_string(probes.empty() ? 0 : probes.back().k);
  } else {
    s += "minimum defeating budget " + std::to_string(budget);
    const BudgetProbe& p = probes.back();
    if (!p.witness_desc.empty()) s += " (" + p.witness_desc + ")";
    s += clean_below_certified() ? "; below certified clean exhaustively"
                                 : "; below NOT fully certified";
  }
  return s;
}

ScenarioSpec witness_scenario(const ProtocolParams& protocol, int n_nodes,
                              const BudgetProbe& probe) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.n_nodes = n_nodes;
  spec.name = "attack-glitch-" + protocol.name() + "-k" +
              std::to_string(probe.k);

  // Fold the witness into per-victim glitch attackers: contiguous
  // positions on one node become one budgeted span, anything else gets a
  // single-flip attacker.  The attackers use the *scheduled* trigger
  // (absolute bit times, start = eof_start + grid position): the search
  // grid is absolute, and a reactive trigger would drift off it as soon
  // as the first flip perturbs the victim's parser.
  const int eof_start = model_check_eof_start(protocol);
  std::vector<std::pair<NodeId, int>> flips = probe.witness;
  std::sort(flips.begin(), flips.end());
  std::size_t i = 0;
  while (i < flips.size()) {
    std::size_t j = i + 1;
    while (j < flips.size() && flips[j].first == flips[i].first &&
           flips[j].second == flips[j - 1].second + 1) {
      ++j;
    }
    AttackSpec a;
    a.kind = AttackKind::Glitch;
    a.victim = flips[i].first;
    a.start = static_cast<BitTime>(eof_start + flips[i].second);
    a.span = static_cast<int>(j - i);
    a.budget = static_cast<int>(j - i);
    spec.attacks.push_back(a);
    i = j;
  }
  return spec;
}

AttackReport measure_time_to_busoff(const ProtocolParams& protocol,
                                    int n_nodes, NodeId victim, int budget) {
  ScenarioSpec spec;
  spec.name = "busoff-probe";
  spec.protocol = protocol;
  spec.n_nodes = n_nodes;
  AttackSpec a;
  a.kind = AttackKind::BusOff;
  a.victim = victim;
  a.budget = budget;
  spec.attacks.push_back(a);
  return run_scenario(spec).attack;
}

}  // namespace mcan
