// Adversarial attacker models: targeted disturbances instead of random ones.
//
// The paper proves MajorCAN_m atomic under up to m *random* channel faults;
// this subsystem asks the adversarial version of that question.  Three
// attacker archetypes from the CAN security literature (SoK: Kicking CAN
// Down the Road; CAIBA-style reactive bit glitching) are modelled as data —
// an AttackSpec value the .scn DSL scripts, the fuzzer mutates and the
// serve backend ships — and executed by the AttackEngine fault injector
// (attack/injector.hpp):
//
//   * glitch — a reactive bit-glitcher: triggers on the victim's observed
//     EOF-relative position (optionally only when the bus level matches a
//     predicate), then flips a budgeted span of that one node's view.  This
//     is the paper's disturbance, but *aimed*: per-receiver, per-position,
//     per-frame.
//   * busoff — an error-frame flooder: corrupts the victim transmitter's
//     own view of one dominant body bit per transmission attempt, driving
//     its TEC up by 8 each time (node/fault_confinement.hpp) until the
//     fault confinement entity takes it off the bus.  The engine certifies
//     the time-to-bus-off.
//   * spoof — a spoofed-ID arbitration attacker: a compromised node
//     enqueues frames whose tag impersonates another source
//     (analysis/tagged.hpp).  Deliveries of the forged keys surface as AB4
//     non-triviality violations — masquerade made visible to the oracle.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/tagged.hpp"
#include "util/bit.hpp"

namespace mcan {

enum class AttackKind : std::uint8_t { Glitch, BusOff, Spoof };

[[nodiscard]] const char* attack_kind_name(AttackKind k);

/// Glitch trigger predicate on the resolved bus level (the reactive part:
/// the attacker only strikes when it *observes* the level it wants to
/// corrupt).
enum class GlitchWhen : std::uint8_t { Any, Dominant, Recessive };

/// One scripted attacker.  Fields outside the kind's vocabulary stay at
/// their defaults (sanitize_attack enforces this), so specs compare equal
/// across a write_scenario / parse_scenario round trip.
struct AttackSpec {
  AttackKind kind = AttackKind::Glitch;

  // glitch + busoff: the node under attack (glitch flips this node's view;
  // busoff drives this transmitter's TEC).
  NodeId victim = 1;

  // glitch: trigger window start (EOF-relative, model-check grid), width,
  // flip budget, which observed frame (-1 = every frame), level predicate.
  int pos = 0;
  int span = 1;
  int budget = 1;
  int frame = 0;
  GlitchWhen when = GlitchWhen::Any;

  // busoff: arming time (budget caps corrupted transmission attempts).
  // glitch: start > 0 switches to the *scheduled* trigger — flip the
  // victim's view at absolute bits [start, start + span) instead of
  // reacting to its observed position.  The optimizer emits witnesses in
  // this form: its grid is absolute (the model checker's), and a reactive
  // trigger drifts off the grid once the first flip perturbs the victim's
  // parser.
  BitTime start = 0;

  // spoof: injecting node, arbitration id, impersonated source, forged
  // sequence base, frames injected, payload size.
  NodeId attacker = 0;
  std::uint32_t id = 0x80;
  NodeId as = 0;
  int seq = 900;
  int count = 1;
  std::uint8_t dlc = 4;

  [[nodiscard]] bool operator==(const AttackSpec&) const = default;
};

/// Parse one `attack` directive's fields.  `kind_token` is the word after
/// "attack" (glitch|busoff|spoof); `kv` the key=value fields.  Throws
/// std::invalid_argument naming the offending field — unknown fields are
/// rejected with the accepted field list (the ModelParams::validate
/// convention), bad values name the field they were given for.
[[nodiscard]] AttackSpec parse_attack(
    const std::string& kind_token,
    const std::map<std::string, std::string>& kv);

/// Render `a` as the directive body parse_attack reads back to an equal
/// spec ("attack " + render_attack(a) is the .scn line).
[[nodiscard]] std::string render_attack(const AttackSpec& a);

/// Clamp `a` into runnable shape for an `n_nodes` bus with the glitch
/// window [win_lo, win_hi], and reset every field outside the kind's
/// vocabulary to its default (canonical form, so round trips compare
/// equal).  Shared by the fuzz mutator and the CLI so genomes cannot drift
/// from what the DSL can express.
void sanitize_attack(AttackSpec& a, int n_nodes, int win_lo, int win_hi);

/// Sum of glitch flip budgets — the attacker strength the sweep gates and
/// the fuzzer's --budget cap reason about.
[[nodiscard]] int attack_glitch_budget(const std::vector<AttackSpec>& attacks);

/// The forged message keys a spoof attack injects (count keys from seq).
[[nodiscard]] std::vector<MessageKey> spoof_keys(const AttackSpec& a);

/// What the attackers actually did during one run — the oracle's evidence.
struct AttackReport {
  int glitch_flips = 0;      ///< view flips fired by glitch attackers
  int busoff_attempts = 0;   ///< transmission attempts corrupted
  int victim_peak_tec = 0;   ///< highest TEC observed on a bus-off victim
  long long busoff_t = -1;   ///< first bus-off bit time (-1: never)
  bool victim_busoff = false;///< a victim ended the run off the bus
  int spoofed = 0;           ///< forged frames enqueued
  int spoofed_delivered = 0; ///< deliveries of forged keys, summed over nodes

  [[nodiscard]] bool any_fired() const {
    return glitch_flips > 0 || busoff_attempts > 0 || spoofed > 0;
  }
  [[nodiscard]] std::string summary() const;
};

}  // namespace mcan
