// The AttackEngine: executes a list of AttackSpecs as one FaultInjector.
//
// Glitch and bus-off attackers act through the same per-(node, bit) view
// interface the stochastic injectors use (sim/injector.hpp) — an attacker
// is just a *policy* over the same channel the paper's error model grants
// faults.  Spoof attackers act at the traffic level instead; the scenario
// runner enqueues their forged frames (spoof_keys / make_tagged_frame) and
// feeds delivery counts back through note_spoof_delivered().
//
// The engine composes with ScriptedFaults via CompositeInjector (odd-parity
// XOR), so scripted flips and attacks coexist in one scenario.
#pragma once

#include <vector>

#include "attack/attack.hpp"
#include "sim/injector.hpp"

namespace mcan {

class AttackEngine final : public FaultInjector {
 public:
  AttackEngine() = default;
  explicit AttackEngine(std::vector<AttackSpec> attacks);

  [[nodiscard]] bool flips(NodeId node, BitTime t, const NodeBitInfo& info,
                           Level bus) override;

  /// Conservative: bus-off attackers update their bookkeeping (last_seen,
  /// victim_peak_tec) on *every* call for their victim, and glitch
  /// triggers react to node positions rather than times — so any armed
  /// non-spoof attacker forbids skipping flips() calls.  Spoof attackers
  /// act at the traffic level and never flip.
  [[nodiscard]] BitTime quiet_until(BitTime t) override;

  /// Victims named by bus-off attacks (deduplicated, in spec order).
  [[nodiscard]] std::vector<NodeId> busoff_victims() const;

  /// Fold a bus-off victim's end-of-run fault-confinement state into the
  /// report.  The victim leaves the bus the bit after its TEC reaches the
  /// limit, so the injector never observes the final counter itself; the
  /// runner reads it off the controller and the engine dates the bus-off
  /// one bit after the victim was last seen driving.
  void finalize_victim(NodeId victim, bool off_bus, int tec);

  /// Count forged frames the runner enqueued / saw delivered.
  void note_spoofed(int frames) { rep_.spoofed += frames; }
  void note_spoof_delivered() { ++rep_.spoofed_delivered; }

  [[nodiscard]] const AttackReport& report() const { return rep_; }

 private:
  struct Armed {
    AttackSpec spec;
    int used = 0;            ///< budget consumed (flips / struck attempts)
    int last_frame = -1;     ///< busoff: last frame_index struck
    long long last_seen = -1;///< busoff: last bit the victim participated
  };

  std::vector<Armed> armed_;
  AttackReport rep_;
};

}  // namespace mcan
