#include "attack/attack.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mcan {

namespace {

[[noreturn]] void fail_attack(const std::string& kind,
                              const std::string& what) {
  throw std::invalid_argument("attack " + kind + ": " + what);
}

long long field_int(const std::string& kind, const std::string& field,
                    const std::string& value) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    fail_attack(kind,
                "field '" + field + "': not an integer: '" + value + "'");
  }
}

std::uint32_t field_uint(const std::string& kind, const std::string& field,
                         const std::string& value) {
  const long long v = field_int(kind, field, value);
  if (v < 0) {
    fail_attack(kind, "field '" + field + "': must be >= 0, got " + value);
  }
  return static_cast<std::uint32_t>(v);
}

/// Reject any key outside `allowed`, naming the field and the accepted
/// vocabulary (ModelParams::validate convention).
void check_fields(const std::string& kind,
                  const std::map<std::string, std::string>& kv,
                  const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : kv) {
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    std::string want;
    for (const std::string& a : allowed) {
      if (!want.empty()) want += ", ";
      want += a + "=";
    }
    fail_attack(kind, "unknown field '" + key + "' (want " + want + ")");
  }
}

const char* when_name(GlitchWhen w) {
  switch (w) {
    case GlitchWhen::Any: return "any";
    case GlitchWhen::Dominant: return "dominant";
    case GlitchWhen::Recessive: return "recessive";
  }
  return "any";
}

}  // namespace

const char* attack_kind_name(AttackKind k) {
  switch (k) {
    case AttackKind::Glitch: return "glitch";
    case AttackKind::BusOff: return "busoff";
    case AttackKind::Spoof: return "spoof";
  }
  return "?";
}

AttackSpec parse_attack(const std::string& kind_token,
                        const std::map<std::string, std::string>& kv) {
  AttackSpec a;
  if (kind_token == "glitch") {
    a.kind = AttackKind::Glitch;
    check_fields(kind_token, kv,
                 {"victim", "pos", "span", "budget", "frame", "when",
                  "start"});
    if (auto it = kv.find("victim"); it != kv.end()) {
      a.victim = field_uint(kind_token, "victim", it->second);
    }
    if (auto it = kv.find("pos"); it != kv.end()) {
      a.pos = static_cast<int>(field_int(kind_token, "pos", it->second));
    }
    if (auto it = kv.find("span"); it != kv.end()) {
      a.span = static_cast<int>(field_int(kind_token, "span", it->second));
      if (a.span < 1) {
        fail_attack(kind_token, "field 'span': must be >= 1, got " +
                                    it->second);
      }
    }
    if (auto it = kv.find("budget"); it != kv.end()) {
      a.budget = static_cast<int>(field_int(kind_token, "budget", it->second));
      if (a.budget < 1) {
        fail_attack(kind_token, "field 'budget': must be >= 1, got " +
                                    it->second);
      }
    }
    if (auto it = kv.find("frame"); it != kv.end()) {
      if (it->second == "any") {
        a.frame = -1;
      } else {
        a.frame =
            static_cast<int>(field_int(kind_token, "frame", it->second));
        if (a.frame < 0) {
          fail_attack(kind_token,
                      "field 'frame': want a frame index or 'any', got " +
                          it->second);
        }
      }
    }
    if (auto it = kv.find("when"); it != kv.end()) {
      if (it->second == "any") {
        a.when = GlitchWhen::Any;
      } else if (it->second == "dominant") {
        a.when = GlitchWhen::Dominant;
      } else if (it->second == "recessive") {
        a.when = GlitchWhen::Recessive;
      } else {
        fail_attack(kind_token,
                    "field 'when': want any|dominant|recessive, got " +
                        it->second);
      }
    }
    if (auto it = kv.find("start"); it != kv.end()) {
      a.start = field_uint(kind_token, "start", it->second);
    }
  } else if (kind_token == "busoff") {
    a.kind = AttackKind::BusOff;
    check_fields(kind_token, kv, {"victim", "budget", "start"});
    if (auto it = kv.find("victim"); it != kv.end()) {
      a.victim = field_uint(kind_token, "victim", it->second);
    }
    if (auto it = kv.find("budget"); it != kv.end()) {
      a.budget = static_cast<int>(field_int(kind_token, "budget", it->second));
      if (a.budget < 1) {
        fail_attack(kind_token, "field 'budget': must be >= 1, got " +
                                    it->second);
      }
    }
    if (auto it = kv.find("start"); it != kv.end()) {
      a.start = field_uint(kind_token, "start", it->second);
    }
  } else if (kind_token == "spoof") {
    a.kind = AttackKind::Spoof;
    check_fields(kind_token, kv,
                 {"attacker", "as", "seq", "id", "dlc", "count"});
    if (auto it = kv.find("attacker"); it != kv.end()) {
      a.attacker = field_uint(kind_token, "attacker", it->second);
    }
    if (auto it = kv.find("as"); it != kv.end()) {
      a.as = field_uint(kind_token, "as", it->second);
    }
    if (auto it = kv.find("seq"); it != kv.end()) {
      a.seq = static_cast<int>(field_uint(kind_token, "seq", it->second));
    }
    if (auto it = kv.find("id"); it != kv.end()) {
      a.id = field_uint(kind_token, "id", it->second);
    }
    if (auto it = kv.find("dlc"); it != kv.end()) {
      a.dlc = static_cast<std::uint8_t>(
          field_uint(kind_token, "dlc", it->second));
    }
    if (auto it = kv.find("count"); it != kv.end()) {
      a.count = static_cast<int>(field_int(kind_token, "count", it->second));
      if (a.count < 1) {
        fail_attack(kind_token, "field 'count': must be >= 1, got " +
                                    it->second);
      }
    }
  } else {
    throw std::invalid_argument("attack: unknown kind '" + kind_token +
                                "' (want glitch|busoff|spoof)");
  }
  return a;
}

std::string render_attack(const AttackSpec& a) {
  std::string s = attack_kind_name(a.kind);
  switch (a.kind) {
    case AttackKind::Glitch:
      s += " victim=" + std::to_string(a.victim);
      if (a.start > 0) {
        s += " start=" + std::to_string(a.start);
      } else {
        s += " pos=" + std::to_string(a.pos);
        s += a.frame < 0 ? " frame=any" : " frame=" + std::to_string(a.frame);
      }
      s += " span=" + std::to_string(a.span);
      s += " budget=" + std::to_string(a.budget);
      s += std::string(" when=") + when_name(a.when);
      break;
    case AttackKind::BusOff:
      s += " victim=" + std::to_string(a.victim);
      s += " budget=" + std::to_string(a.budget);
      s += " start=" + std::to_string(a.start);
      break;
    case AttackKind::Spoof: {
      char idbuf[16];
      std::snprintf(idbuf, sizeof idbuf, "0x%x", a.id);
      s += " attacker=" + std::to_string(a.attacker);
      s += " as=" + std::to_string(a.as);
      s += " seq=" + std::to_string(a.seq);
      s += std::string(" id=") + idbuf;
      s += " dlc=" + std::to_string(a.dlc);
      s += " count=" + std::to_string(a.count);
      break;
    }
  }
  return s;
}

void sanitize_attack(AttackSpec& a, int n_nodes, int win_lo, int win_hi) {
  const AttackSpec defaults;
  const auto clampi = [](int v, int lo, int hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  const NodeId n = static_cast<NodeId>(n_nodes < 1 ? 1 : n_nodes);
  switch (a.kind) {
    case AttackKind::Glitch:
      a.victim = a.victim % n;
      a.start = std::min<BitTime>(a.start, 100000);
      if (a.start > 0) {
        // Scheduled trigger: the reactive fields are out of vocabulary.
        a.pos = defaults.pos;
        a.frame = defaults.frame;
        a.span = clampi(a.span, 1, 64);
      } else {
        a.pos = clampi(a.pos, win_lo, win_hi);
        a.span = clampi(a.span, 1, win_hi - a.pos + 1);
      }
      a.budget = clampi(a.budget, 1, 64);
      a.frame = clampi(a.frame, -1, 8);
      // spoof / busoff vocabulary back to defaults
      a.attacker = defaults.attacker;
      a.id = defaults.id;
      a.as = defaults.as;
      a.seq = defaults.seq;
      a.count = defaults.count;
      a.dlc = defaults.dlc;
      break;
    case AttackKind::BusOff:
      a.victim = a.victim % n;
      a.budget = clampi(a.budget, 1, 64);
      a.start = std::max<BitTime>(0, std::min<BitTime>(a.start, 5000));
      a.pos = defaults.pos;
      a.span = defaults.span;
      a.frame = defaults.frame;
      a.when = defaults.when;
      a.attacker = defaults.attacker;
      a.id = defaults.id;
      a.as = defaults.as;
      a.seq = defaults.seq;
      a.count = defaults.count;
      a.dlc = defaults.dlc;
      break;
    case AttackKind::Spoof:
      a.attacker = a.attacker % n;
      a.as = a.as % n;
      // Keep forged sequences clear of the probe/traffic key ranges so the
      // masquerade is what the oracle sees, not an accidental collision.
      a.seq = clampi(a.seq, 512, 0xFFFF - 8);
      a.id &= kMaxId;
      a.dlc = static_cast<std::uint8_t>(
          clampi(a.dlc, 4, static_cast<int>(kMaxDataBytes)));
      a.count = clampi(a.count, 1, 4);
      a.victim = defaults.victim;
      a.pos = defaults.pos;
      a.span = defaults.span;
      a.budget = defaults.budget;
      a.frame = defaults.frame;
      a.when = defaults.when;
      a.start = defaults.start;
      break;
  }
}

int attack_glitch_budget(const std::vector<AttackSpec>& attacks) {
  int total = 0;
  for (const AttackSpec& a : attacks) {
    if (a.kind == AttackKind::Glitch) total += a.budget;
  }
  return total;
}

std::vector<MessageKey> spoof_keys(const AttackSpec& a) {
  std::vector<MessageKey> keys;
  if (a.kind != AttackKind::Spoof) return keys;
  for (int j = 0; j < a.count; ++j) {
    keys.push_back(
        MessageKey{a.as, static_cast<std::uint16_t>(a.seq + j)});
  }
  return keys;
}

std::string AttackReport::summary() const {
  std::string s = "glitch flips " + std::to_string(glitch_flips) +
                  ", busoff attempts " + std::to_string(busoff_attempts);
  if (victim_peak_tec > 0) {
    s += " (peak tec " + std::to_string(victim_peak_tec) + ")";
  }
  if (victim_busoff) {
    s += ", victim bus-off at t=" + std::to_string(busoff_t);
  }
  if (spoofed > 0) {
    s += ", spoofed " + std::to_string(spoofed) + " (" +
         std::to_string(spoofed_delivered) + " delivered)";
  }
  return s;
}

}  // namespace mcan
