// The job journal: crash recovery for the campaign service.
//
// One append-only file per job (`<dir>/job-<id>.jnl`), following the rare
// campaign journal's checkpoint discipline (src/rare/campaign.cpp): a
// header that pins the job's identity, periodic single-line snapshots of
// all merged state, and tolerance for exactly one torn trailing line (the
// write that a kill -9 interrupted).  Restoring replays nothing and
// guesses nothing — a snapshot is only accepted under an equal
// fingerprint, and because campaign execution is deterministic, a job
// resumed from any snapshot produces a result byte-identical to an
// uninterrupted run.
//
//     mcan-serve-journal v1
//     id 7
//     priority 2
//     spec {"backend":"fuzz",...}          <- as submitted
//     fingerprint {"backend":"fuzz",...}   <- canonical (defaults resolved)
//     snap <units_done> <backend payload>  <- repeated, newest last
//     done "<result bytes, JSON-escaped>"  <- exactly one terminal line:
//     failed "<message>"                      done | failed | cancelled
//     cancelled
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcan {

enum class JournalTerminal { kNone, kDone, kFailed, kCancelled };

/// Everything a journal file says about one job.
struct JournalRecord {
  std::uint64_t id = 0;
  int priority = 0;
  std::string spec_text;     ///< submitted spec, one line of JSON
  std::string fingerprint;   ///< canonical spec the snapshots belong to
  bool has_snapshot = false;
  std::uint64_t snap_units = 0;  ///< units_done at the newest snapshot
  std::string snapshot;          ///< newest backend checkpoint payload
  JournalTerminal terminal = JournalTerminal::kNone;
  std::string result;  ///< done: result bytes; failed: the error message
};

/// Not internally synchronized: JobJournal has no lock of its own.  Its
/// single owner is JobManager, which declares its instance
/// MCAN_GUARDED_BY(mu_) and performs every append/load under that lock —
/// concurrent appends to one job file would interleave lines.
class JobJournal {
 public:
  /// `dir` is created if missing; empty = journaling disabled (every
  /// append becomes a no-op and load_dir finds nothing).
  explicit JobJournal(std::string dir);

  [[nodiscard]] bool enabled() const { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string path_for(std::uint64_t id) const;

  /// Start a job's journal (header through fingerprint).  Truncates any
  /// stale file with the same id.
  [[nodiscard]] bool open(std::uint64_t id, int priority,
                          const std::string& spec_text,
                          const std::string& fingerprint);

  [[nodiscard]] bool append_snapshot(std::uint64_t id, std::uint64_t units,
                                     const std::string& payload);
  [[nodiscard]] bool append_done(std::uint64_t id, const std::string& result);
  [[nodiscard]] bool append_failed(std::uint64_t id,
                                   const std::string& message);
  [[nodiscard]] bool append_cancelled(std::uint64_t id);

  /// Parse one journal file.  False (with a message) on a missing file or
  /// a corrupt header; a torn final line is dropped silently, and
  /// anything after the first unparsable body line is ignored.
  [[nodiscard]] static bool load_file(const std::string& path,
                                      JournalRecord& out, std::string& error);

  /// Load every job-*.jnl under dir(), sorted by job id.  Files that fail
  /// to parse are reported in `notes` and skipped, not fatal: one corrupt
  /// journal must not take down recovery of the rest.
  [[nodiscard]] std::vector<JournalRecord> load_dir(
      std::vector<std::string>& notes) const;

 private:
  [[nodiscard]] bool append_line(std::uint64_t id, const std::string& line);

  std::string dir_;
};

}  // namespace mcan
