#include "serve/proto.hpp"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/text.hpp"

namespace mcan {

long long Json::as_int(long long dflt) const {
  if (type_ == Type::Int) return i_;
  if (type_ == Type::Double && std::isfinite(d_)) {
    return static_cast<long long>(d_);
  }
  return dflt;
}

double Json::as_double(double dflt) const {
  if (type_ == Type::Double) return d_;
  if (type_ == Type::Int) return static_cast<double>(i_);
  if (type_ == Type::String) {
    if (s_ == "NaN") return std::nan("");
    if (s_ == "Infinity") return HUGE_VAL;
    if (s_ == "-Infinity") return -HUGE_VAL;
  }
  return dflt;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(const std::string& key, Json v) {
  type_ = Type::Object;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  type_ = Type::Array;
  arr_.push_back(std::move(v));
  return *this;
}

namespace {

void dump_value(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::Null:
      out += "null";
      break;
    case Json::Type::Bool:
      out += j.as_bool() ? "true" : "false";
      break;
    case Json::Type::Int:
      out += std::to_string(j.as_int());
      break;
    case Json::Type::Double:
      out += json_number(j.as_double());
      break;
    case Json::Type::String:
      out += '"';
      out += json_escape(j.as_string());
      out += '"';
      break;
    case Json::Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      break;
    }
    case Json::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        dump_value(v, out);
      }
      out += '}';
      break;
    }
  }
}

// Recursive-descent parser.  Depth is bounded so hostile nesting cannot
// blow the stack; overall size is already bounded by the frame cap.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool run(Json& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      error = err_ + " at byte " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing bytes after value at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* msg) {
    err_ = msg;
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out = Json();
        return literal("null");
      case 't':
        out = Json(true);
        return literal("true");
      case 'f':
        out = Json(false);
        return literal("false");
      case '"':
        return parse_string(out);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return fail("invalid number");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        out = Json(v);
        return true;
      }
      // Out of long long range: fall through to double.
    }
    out = Json(std::strtod(tok.c_str(), nullptr));
    return true;
  }

  bool parse_string(Json& out) {
    std::string s;
    if (!parse_raw_string(s)) return false;
    out = Json(std::move(s));
    return true;
  }

  bool parse_raw_string(std::string& s) {
    ++pos_;  // opening quote
    s.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        s += c;
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          // Surrogate pair → one code point.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return fail("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(s, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid hex digit in \\u escape");
      }
    }
    out = v;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_array(Json& out, int depth) {
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Json item;
      skip_ws();
      if (!parse_value(item, depth + 1)) return false;
      out.push(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Json& out, int depth) {
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected string key in object");
      }
      std::string key;
      if (!parse_raw_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.set(key, std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

bool Json::parse(const std::string& text, Json& out, std::string& error) {
  return Parser(text).run(out, error);
}

// ---------------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------------

namespace {

/// Read exactly n bytes; 1 = ok, 0 = EOF before any byte, -1 = EOF or
/// error mid-read.
int read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got == 0 ? 0 : -1;
    if (errno == EINTR) continue;
    return -1;
  }
  return 1;
}

bool write_exact(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, buf + sent, n - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

FrameRead read_frame(int fd, std::string& payload, std::size_t max_bytes) {
  unsigned char prefix[4];
  errno = 0;
  const int rc = read_exact(fd, reinterpret_cast<char*>(prefix), 4);
  if (rc == 0) return FrameRead::kEof;
  if (rc < 0) return errno == 0 ? FrameRead::kTruncated : FrameRead::kError;
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > max_bytes) return FrameRead::kTooLarge;
  payload.resize(len);
  if (len == 0) return FrameRead::kOk;
  errno = 0;
  const int body = read_exact(fd, payload.data(), len);
  if (body == 1) return FrameRead::kOk;
  return errno == 0 || body == 0 ? FrameRead::kTruncated : FrameRead::kError;
}

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  const char prefix[4] = {static_cast<char>(len >> 24),
                          static_cast<char>(len >> 16),
                          static_cast<char>(len >> 8), static_cast<char>(len)};
  return write_exact(fd, prefix, 4) &&
         write_exact(fd, payload.data(), payload.size());
}

// ---------------------------------------------------------------------------
// Request/response vocabulary.
// ---------------------------------------------------------------------------

Json make_request(const std::string& type) {
  Json req = Json::object();
  req.set("proto", Json(static_cast<long long>(kProtoVersion)));
  req.set("type", Json(type));
  return req;
}

Json ok_response() {
  Json res = Json::object();
  res.set("ok", Json(true));
  return res;
}

Json error_response(const std::string& message, bool rejected) {
  Json res = Json::object();
  res.set("ok", Json(false));
  res.set("error", Json(message));
  if (rejected) res.set("rejected", Json(true));
  return res;
}

std::string validate_request(const Json& req) {
  if (!req.is_object()) return "request must be a JSON object";
  const Json* proto = req.find("proto");
  if (!proto || !proto->is_number()) {
    return "missing protocol version field \"proto\"";
  }
  if (proto->as_int() != kProtoVersion) {
    return "unsupported protocol version " + std::to_string(proto->as_int()) +
           " (daemon speaks " + std::to_string(kProtoVersion) + ")";
  }
  const Json* type = req.find("type");
  if (!type || !type->is_string() || type->as_string().empty()) {
    return "missing request type field \"type\"";
  }
  return {};
}

}  // namespace mcan
