#include "serve/queue.hpp"

#include <algorithm>
#include <utility>

#include "util/text.hpp"

namespace mcan {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool job_state_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

struct JobManager::Shard {
  enum class Status { kPending, kClaimed, kDone };
  Status status = Status::kPending;
  std::uint64_t generation = 0;
  int retries = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct JobManager::Job {
  std::uint64_t id = 0;
  int priority = 0;
  JobState state = JobState::kQueued;
  std::string kind;
  std::string spec_text;
  std::string fingerprint;
  std::unique_ptr<CampaignBackend> backend;  ///< null for restored terminals

  // Current round.
  std::uint64_t round = 0;
  bool planned = false;
  std::vector<Shard> shards;
  std::size_t shards_done_round = 0;

  // Progress / bookkeeping.
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;
  std::uint64_t rounds_merged = 0;
  std::uint64_t shards_completed = 0;
  std::uint64_t retries_total = 0;
  std::uint64_t resumed_units = 0;
  std::uint64_t last_snap_units = 0;
  std::string result;  ///< done: result bytes
  std::string error;   ///< failed: why
};

JobManager::JobManager(ServeConfig cfg)
    : cfg_(std::move(cfg)),
      journal_(cfg_.journal_dir),
      t0_(std::chrono::steady_clock::now()) {
  if (cfg_.shard_size == 0) cfg_.shard_size = 16;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
}

JobManager::~JobManager() { stop(); }

JobManager::Job* JobManager::find_locked(std::uint64_t id) {
  for (auto& job : jobs_) {
    if (job->id == id) return job.get();
  }
  return nullptr;
}

const JobManager::Job* JobManager::find_locked(std::uint64_t id) const {
  for (const auto& job : jobs_) {
    if (job->id == id) return job.get();
  }
  return nullptr;
}

std::size_t JobManager::live_locked() const {
  std::size_t n = 0;
  for (const auto& job : jobs_) {
    if (!job_state_terminal(job->state)) ++n;
  }
  return n;
}

std::vector<std::string> JobManager::recover() {
  std::vector<std::string> notes;
  MutexLock lock(mu_);
  for (JournalRecord& rec : journal_.load_dir(notes)) {
    auto job = std::make_shared<Job>();
    job->id = rec.id;
    job->priority = rec.priority;
    job->spec_text = rec.spec_text;
    job->fingerprint = rec.fingerprint;
    next_id_ = std::max(next_id_, rec.id + 1);
    if (rec.terminal != JournalTerminal::kNone) {
      // Terminal jobs come back queryable, not runnable.
      switch (rec.terminal) {
        case JournalTerminal::kDone:
          job->state = JobState::kDone;
          job->result = rec.result;
          break;
        case JournalTerminal::kFailed:
          job->state = JobState::kFailed;
          job->error = rec.result;
          break;
        default:
          job->state = JobState::kCancelled;
          break;
      }
      job->units_done = rec.snap_units;
      job->kind = "?";
      Json spec;
      std::string err;
      if (Json::parse(rec.spec_text, spec, err)) {
        if (const Json* b = spec.find("backend"); b && b->is_string()) {
          job->kind = b->as_string();
        }
      }
      notes.push_back("job " + std::to_string(job->id) + ": restored " +
                      job_state_name(job->state));
      jobs_.push_back(std::move(job));
      continue;
    }
    // In-flight job: rebuild the backend and resume from the snapshot.
    Json spec;
    std::string err;
    std::unique_ptr<CampaignBackend> backend;
    if (!Json::parse(rec.spec_text, spec, err)) {
      err = "journal spec does not parse: " + err;
    } else {
      backend = make_backend(spec, err);
    }
    if (backend && backend->fingerprint() != rec.fingerprint) {
      backend.reset();
      err = "journal fingerprint mismatch (spec semantics changed?)";
    }
    if (backend && rec.has_snapshot && !backend->restore(rec.snapshot)) {
      backend.reset();
      err = "journal snapshot does not restore";
    }
    if (!backend) {
      job->state = JobState::kFailed;
      job->error = err;
      (void)journal_.append_failed(job->id, err);
      notes.push_back("job " + std::to_string(job->id) + ": failed: " + err);
    } else {
      job->kind = backend->kind();
      job->units_total = backend->units_total();
      job->units_done = backend->units_done();
      job->resumed_units = job->units_done;
      job->last_snap_units = job->units_done;
      job->backend = std::move(backend);
      notes.push_back("job " + std::to_string(job->id) + ": resuming " +
                      job->kind + " at " + std::to_string(job->units_done) +
                      "/" + std::to_string(job->units_total) + " units");
    }
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_all();
  return notes;
}

std::uint64_t JobManager::submit(const Json& spec, int priority,
                                 std::string& error, bool& rejected) {
  rejected = false;
  MutexLock lock(mu_);
  if (stopped_) {
    error = "server is shutting down";
    return 0;
  }
  if (live_locked() >= cfg_.capacity) {
    rejected = true;
    error = "queue full (" + std::to_string(cfg_.capacity) +
            " live jobs); retry later";
    return 0;
  }
  std::unique_ptr<CampaignBackend> backend = make_backend(spec, error);
  if (!backend) return 0;
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->priority = priority;
  job->kind = backend->kind();
  job->spec_text = spec.dump();
  job->fingerprint = backend->fingerprint();
  job->units_total = backend->units_total();
  job->backend = std::move(backend);
  if (!journal_.open(job->id, priority, job->spec_text, job->fingerprint)) {
    error = "cannot write job journal in " + journal_.dir();
    return 0;
  }
  const std::uint64_t id = job->id;
  jobs_.push_back(std::move(job));
  work_cv_.notify_all();
  return id;
}

bool JobManager::cancel(std::uint64_t id, std::string& error) {
  MutexLock lock(mu_);
  Job* job = find_locked(id);
  if (!job) {
    error = "unknown job " + std::to_string(id);
    return false;
  }
  if (job_state_terminal(job->state)) {
    error = "job " + std::to_string(id) + " is already " +
            job_state_name(job->state);
    return false;
  }
  job->state = JobState::kCancelled;
  job->planned = false;
  job->shards.clear();  // outstanding completions become stale
  (void)journal_.append_cancelled(id);
  work_cv_.notify_all();
  return true;
}

bool JobManager::status(std::uint64_t id, JobProgress& out) const {
  MutexLock lock(mu_);
  const Job* job = find_locked(id);
  if (!job) return false;
  out = progress_locked(*job);
  return true;
}

bool JobManager::result(std::uint64_t id, JobState& out_state,
                        std::string& out, std::string& error) const {
  MutexLock lock(mu_);
  const Job* job = find_locked(id);
  if (!job) {
    error = "unknown job " + std::to_string(id);
    out_state = JobState::kFailed;
    return false;
  }
  out_state = job->state;
  switch (job->state) {
    case JobState::kDone:
      out = job->result;
      return true;
    case JobState::kFailed:
      error = job->error.empty() ? "job failed" : job->error;
      return false;
    case JobState::kCancelled:
      error = "job was cancelled";
      return false;
    default:
      error = "job is " + std::string(job_state_name(job->state));
      return false;
  }
}

std::vector<JobProgress> JobManager::jobs() const {
  MutexLock lock(mu_);
  std::vector<JobProgress> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) out.push_back(progress_locked(*job));
  return out;
}

JobProgress JobManager::progress_locked(const Job& job) const {
  JobProgress p;
  p.id = job.id;
  p.priority = job.priority;
  p.state = job.state;
  p.kind = job.kind;
  p.units_done = job.units_done;
  p.units_total = job.units_total;
  p.rounds = job.rounds_merged;
  p.shards_done = job.shards_completed;
  p.retries = job.retries_total;
  p.resumed_units = job.resumed_units;
  p.error = job.error;
  return p;
}

Json JobManager::stats(std::size_t workers) const {
  MutexLock lock(mu_);
  Json j = Json::object();
  j.set("workers", Json(static_cast<long long>(workers)));
  j.set("capacity", Json(static_cast<long long>(cfg_.capacity)));
  Json by_state = Json::object();
  long long queued = 0, running = 0, done = 0, failed = 0, cancelled = 0;
  for (const auto& job : jobs_) {
    switch (job->state) {
      case JobState::kQueued: ++queued; break;
      case JobState::kRunning: ++running; break;
      case JobState::kDone: ++done; break;
      case JobState::kFailed: ++failed; break;
      case JobState::kCancelled: ++cancelled; break;
    }
  }
  by_state.set("queued", Json(queued));
  by_state.set("running", Json(running));
  by_state.set("done", Json(done));
  by_state.set("failed", Json(failed));
  by_state.set("cancelled", Json(cancelled));
  by_state.set("total", Json(static_cast<long long>(jobs_.size())));
  j.set("jobs", std::move(by_state));
  j.set("queue_depth", Json(queued + running));
  Json shards = Json::object();
  shards.set("completed", Json(static_cast<long long>(shards_completed_)));
  shards.set("requeued", Json(static_cast<long long>(shards_requeued_)));
  shards.set("stale_completions",
             Json(static_cast<long long>(stale_completions_)));
  j.set("shards", std::move(shards));
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  Json tput = Json::object();
  tput.set("units_merged", Json(static_cast<long long>(units_merged_)));
  tput.set("uptime_s", Json(uptime));
  tput.set("units_per_s",
           Json(uptime > 0 ? static_cast<double>(units_merged_) / uptime
                           : 0.0));
  j.set("throughput", std::move(tput));
  Json per_job = Json::array();
  for (const auto& job : jobs_) {
    const JobProgress p = progress_locked(*job);
    Json item = Json::object();
    item.set("id", Json(static_cast<long long>(p.id)));
    item.set("backend", Json(p.kind));
    item.set("state", Json(job_state_name(p.state)));
    item.set("priority", Json(static_cast<long long>(p.priority)));
    item.set("units_done", Json(static_cast<long long>(p.units_done)));
    item.set("units_total", Json(static_cast<long long>(p.units_total)));
    item.set("rounds", Json(static_cast<long long>(p.rounds)));
    item.set("shards_done", Json(static_cast<long long>(p.shards_done)));
    item.set("retries", Json(static_cast<long long>(p.retries)));
    if (p.resumed_units > 0) {
      item.set("resumed_units", Json(static_cast<long long>(p.resumed_units)));
    }
    if (!p.error.empty()) item.set("error", Json(p.error));
    per_job.push(std::move(item));
  }
  j.set("per_job", std::move(per_job));
  return j;
}

// --- worker interface -----------------------------------------------------

bool JobManager::plan_locked(Job& job) {
  const std::size_t n = job.backend->plan_round();
  if (n == 0) {
    finalize_locked(job);
    return false;
  }
  std::size_t shard_size = job.backend->shard_size_hint();
  if (shard_size == 0) shard_size = cfg_.shard_size;
  job.shards.clear();
  for (std::size_t begin = 0; begin < n; begin += shard_size) {
    Shard s;
    s.begin = begin;
    s.end = std::min(begin + shard_size, n);
    job.shards.push_back(s);
  }
  job.shards_done_round = 0;
  job.planned = true;
  return true;
}

void JobManager::finalize_locked(Job& job) {
  if (job.backend->finished()) {
    job.result = job.backend->result_json();
    job.state = JobState::kDone;
    job.units_done = job.backend->units_done();
    (void)journal_.append_done(job.id, job.result);
  } else {
    fail_locked(job, "backend stopped planning before it finished");
  }
  job.planned = false;
  job.shards.clear();
  work_cv_.notify_all();
}

void JobManager::fail_locked(Job& job, const std::string& why) {
  job.state = JobState::kFailed;
  job.error = why;
  job.planned = false;
  job.shards.clear();
  (void)journal_.append_failed(job.id, why);
  work_cv_.notify_all();
}

bool JobManager::claim_wait(Claim& out) {
  UniqueMutexLock lock(mu_);
  for (;;) {
    if (stopped_) return false;
    // Highest priority first, then submission order: stable ordering so
    // equal-priority jobs drain FIFO.
    std::vector<Job*> order;
    order.reserve(jobs_.size());
    for (auto& job : jobs_) {
      if (!job_state_terminal(job->state)) order.push_back(job.get());
    }
    std::stable_sort(order.begin(), order.end(), [](Job* a, Job* b) {
      return a->priority > b->priority;
    });
    for (Job* job : order) {
      if (!job->planned) {
        if (!plan_locked(*job)) continue;  // finished or failed instead
      }
      for (std::size_t i = 0; i < job->shards.size(); ++i) {
        Shard& s = job->shards[i];
        if (s.status != Shard::Status::kPending) continue;
        s.status = Shard::Status::kClaimed;
        job->state = JobState::kRunning;
        out.ref = {job->id,  job->round, i, s.generation,
                   s.begin,  s.end};
        out.backend = job->backend.get();
        // Hold the Job alive (and with it the backend) across the
        // lock-free execute phase, even if the job is cancelled meanwhile.
        for (auto& owner : jobs_) {
          if (owner.get() == job) {
            out.hold = owner;
            break;
          }
        }
        return true;
      }
    }
    // The wait releases and reacquires mu_; it is held again when the
    // call returns, so the scoped capability stays accurate.
    work_cv_.wait(lock.native());
  }
}

bool JobManager::stale_locked(const Job* job, const ShardRef& ref) const {
  return job == nullptr || job_state_terminal(job->state) ||
         ref.round != job->round || ref.shard >= job->shards.size() ||
         job->shards[ref.shard].generation != ref.generation ||
         job->shards[ref.shard].status == Shard::Status::kDone;
}

void JobManager::complete(const ShardRef& ref) {
  MutexLock lock(mu_);
  Job* job = find_locked(ref.job_id);
  if (stale_locked(job, ref)) {
    ++stale_completions_;
    return;
  }
  job->shards[ref.shard].status = Shard::Status::kDone;
  ++job->shards_done_round;
  ++job->shards_completed;
  ++shards_completed_;
  if (job->shards_done_round == job->shards.size()) merge_locked(*job);
}

void JobManager::merge_locked(Job& job) {
  job.backend->merge_round();
  ++job.rounds_merged;
  ++job.round;
  job.planned = false;
  job.shards.clear();
  const std::uint64_t units = job.backend->units_done();
  units_merged_ += units - job.units_done;
  job.units_done = units;
  snapshot_locked(job, /*force=*/false);
  // Plan the next round right away so waiting workers wake into work.
  plan_locked(job);
  work_cv_.notify_all();
}

void JobManager::snapshot_locked(Job& job, bool force) {
  if (!journal_.enabled() || !job.backend) return;
  if (!force && job.units_done - job.last_snap_units < cfg_.checkpoint_every) {
    return;
  }
  if (job.units_done == job.last_snap_units) return;
  const std::string payload = job.backend->checkpoint();
  if (payload.empty()) return;  // backend without snapshots (check)
  if (journal_.append_snapshot(job.id, job.units_done, payload)) {
    job.last_snap_units = job.units_done;
  }
}

void JobManager::abandon(const ShardRef& ref) {
  MutexLock lock(mu_);
  Job* job = find_locked(ref.job_id);
  if (stale_locked(job, ref)) {
    ++stale_completions_;
    return;
  }
  Shard& s = job->shards[ref.shard];
  ++s.retries;
  ++job->retries_total;
  ++shards_requeued_;
  if (s.retries > cfg_.max_retries) {
    fail_locked(*job,
                "shard " + std::to_string(ref.shard) + " of round " +
                    std::to_string(ref.round) + " exceeded " +
                    std::to_string(cfg_.max_retries) + " retries");
    return;
  }
  s.status = Shard::Status::kPending;
  ++s.generation;  // the dead worker's completion is now stale
  work_cv_.notify_all();
}

void JobManager::stop() {
  MutexLock lock(mu_);
  stopped_ = true;
  work_cv_.notify_all();
}

bool JobManager::stopped() const {
  MutexLock lock(mu_);
  return stopped_;
}

void JobManager::flush_journals() {
  MutexLock lock(mu_);
  for (auto& job : jobs_) {
    if (!job_state_terminal(job->state)) {
      snapshot_locked(*job, /*force=*/true);
    }
  }
}

}  // namespace mcan
