// The campaign service wire protocol: length-prefixed JSON frames over a
// Unix-domain socket.
//
// Framing is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON.  Every request is a JSON object carrying
//
//     {"proto": 1, "type": "submit" | "status" | "result" | "cancel" |
//                          "stats" | "shutdown", ...}
//
// and every response is an object with an "ok" boolean ("error" text when
// false).  The protocol is versioned by the "proto" field: a daemon
// rejects any other version with an error response instead of guessing.
// Malformed input — truncated length prefix, oversized frame, bytes that
// do not parse as JSON, a non-object payload, an unknown request type —
// is rejected explicitly; the connection survives everything except a
// frame too large to skip.
//
// The Json value type below is deliberately small (no external parser is
// available in this tree): objects preserve insertion order so dumps are
// deterministic, integers are kept exact alongside doubles, and the
// NaN/Infinity sentinels written by util/text's json_number() round-trip
// back into doubles.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcan {

inline constexpr int kProtoVersion = 1;

/// Frames larger than this are rejected (and the connection dropped,
/// since skipping an arbitrarily large payload is itself a resource
/// hazard).  Large enough for any checkpointed corpus we ship.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{8} << 20;

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;
  explicit Json(bool b) : type_(Type::Bool), b_(b) {}
  explicit Json(long long i) : type_(Type::Int), i_(i) {}
  explicit Json(double d) : type_(Type::Double), d_(d) {}
  explicit Json(std::string s) : type_(Type::String), s_(std::move(s)) {}
  explicit Json(const char* s) : type_(Type::String), s_(s) {}

  [[nodiscard]] static Json array() { return with_type(Type::Array); }
  [[nodiscard]] static Json object() { return with_type(Type::Object); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::Int || type_ == Type::Double;
  }

  [[nodiscard]] bool as_bool(bool dflt = false) const {
    return type_ == Type::Bool ? b_ : dflt;
  }
  [[nodiscard]] long long as_int(long long dflt = 0) const;
  /// Doubles, exact ints, and the json_number() sentinels ("NaN",
  /// "Infinity", "-Infinity") all convert.
  [[nodiscard]] double as_double(double dflt = 0) const;
  [[nodiscard]] const std::string& as_string() const { return s_; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Insert-or-replace an object member (keeps first-insertion order).
  Json& set(const std::string& key, Json v);
  /// Append an array element.
  Json& push(Json v);

  [[nodiscard]] const std::vector<Json>& items() const { return arr_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return obj_;
  }

  /// Compact deterministic serialization (insertion order, no spaces).
  [[nodiscard]] std::string dump() const;

  /// Parse `text` (one complete JSON value, trailing whitespace allowed).
  /// Returns false with a position-tagged message in `error`.
  [[nodiscard]] static bool parse(const std::string& text, Json& out,
                                  std::string& error);

 private:
  [[nodiscard]] static Json with_type(Type t) {
    Json j;
    j.type_ = t;
    return j;
  }

  Type type_ = Type::Null;
  bool b_ = false;
  long long i_ = 0;
  double d_ = 0;
  std::string s_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

// ---------------------------------------------------------------------------
// Frame I/O over a connected socket (or any fd).
// ---------------------------------------------------------------------------

enum class FrameRead {
  kOk,         ///< one complete frame in `payload`
  kEof,        ///< peer closed cleanly before any byte of a frame
  kTruncated,  ///< peer closed mid-prefix or mid-payload
  kTooLarge,   ///< declared length exceeds `max_bytes`
  kError,      ///< read(2) failed
};

/// Read one length-prefixed frame, looping over partial reads (fragmented
/// delivery is normal on a stream socket).
[[nodiscard]] FrameRead read_frame(int fd, std::string& payload,
                                   std::size_t max_bytes = kMaxFrameBytes);

/// Write one frame, looping over partial writes; false on error.
[[nodiscard]] bool write_frame(int fd, const std::string& payload);

// ---------------------------------------------------------------------------
// Request/response vocabulary.
// ---------------------------------------------------------------------------

/// A request skeleton: {"proto": kProtoVersion, "type": type}.
[[nodiscard]] Json make_request(const std::string& type);

/// {"ok": true}.
[[nodiscard]] Json ok_response();

/// {"ok": false, "error": message[, "rejected": true]}.  `rejected`
/// marks backpressure (queue full), which clients may retry later —
/// unlike a malformed request, which they must not.
[[nodiscard]] Json error_response(const std::string& message,
                                  bool rejected = false);

/// Validate the envelope of a parsed request: must be an object, carry
/// proto == kProtoVersion and a string "type".  Returns "" when valid,
/// else the rejection message.
[[nodiscard]] std::string validate_request(const Json& req);

}  // namespace mcan
