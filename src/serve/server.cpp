#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "serve/backend.hpp"

namespace mcan {

CampaignServer::CampaignServer(ServerConfig cfg)
    : cfg_(std::move(cfg)), manager_(cfg_.serve), pool_(manager_, cfg_.pool) {}

CampaignServer::~CampaignServer() { stop(); }

bool CampaignServer::start(std::vector<std::string>& notes,
                           std::string& error) {
  if (cfg_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    error = "socket path too long: " + cfg_.socket_path;
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    // system_category().message over strerror: no shared static buffer
    // (concurrency-mt-unsafe).
    error = "socket: " + std::system_category().message(errno);
    return false;
  }
  // A previous daemon instance (cleanly stopped or killed) leaves the
  // socket file behind; rebinding over it is the restart path.
  ::unlink(cfg_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    error = cfg_.socket_path + ": " + std::system_category().message(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  notes = manager_.recover();
  pool_.start();
  accept_thread_ = std::thread([this] { accept_main(); });
  return true;
}

void CampaignServer::accept_main() {
  while (!stop_requested_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    MutexLock lock(conn_mu_);
    if (stop_requested_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void CampaignServer::handle_connection(int fd) {
  std::string payload;
  for (;;) {
    const FrameRead rc = read_frame(fd, payload);
    if (rc == FrameRead::kTooLarge) {
      // The oversized body is still in the pipe; reject and drop the
      // connection rather than trying to skip an arbitrary amount.
      (void)write_frame(fd, error_response("frame exceeds " +
                                           std::to_string(kMaxFrameBytes) +
                                           " bytes")
                                .dump());
      break;
    }
    if (rc != FrameRead::kOk) break;  // EOF / truncated / io error
    Json req;
    std::string err;
    Json res = Json::object();
    if (!Json::parse(payload, req, err)) {
      res = error_response("request does not parse as JSON: " + err);
    } else if (std::string invalid = validate_request(req);
               !invalid.empty()) {
      res = error_response(invalid);
    } else {
      res = dispatch(req);
    }
    if (!write_frame(fd, res.dump())) break;
  }
  {
    // Deregister before closing so stop() never shutdown()s a recycled
    // descriptor number.
    MutexLock lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

namespace {

std::uint64_t req_id(const Json& req) {
  const Json* id = req.find("id");
  return id && id->is_number() && id->as_int() > 0
             ? static_cast<std::uint64_t>(id->as_int())
             : 0;
}

Json progress_json(const JobProgress& p) {
  Json j = Json::object();
  j.set("id", Json(static_cast<long long>(p.id)));
  j.set("backend", Json(p.kind));
  j.set("state", Json(job_state_name(p.state)));
  j.set("priority", Json(static_cast<long long>(p.priority)));
  j.set("units_done", Json(static_cast<long long>(p.units_done)));
  j.set("units_total", Json(static_cast<long long>(p.units_total)));
  j.set("rounds", Json(static_cast<long long>(p.rounds)));
  j.set("shards_done", Json(static_cast<long long>(p.shards_done)));
  j.set("retries", Json(static_cast<long long>(p.retries)));
  if (p.resumed_units > 0) {
    j.set("resumed_units", Json(static_cast<long long>(p.resumed_units)));
  }
  if (!p.error.empty()) j.set("error", Json(p.error));
  return j;
}

}  // namespace

Json CampaignServer::dispatch(const Json& req) {
  const std::string& type = req.find("type")->as_string();
  if (type == "ping") return ok_response();
  if (type == "submit") {
    const Json* spec = req.find("spec");
    if (!spec || !spec->is_object()) {
      return error_response("submit: missing object field \"spec\"");
    }
    const Json* prio = req.find("priority");
    std::string error;
    bool rejected = false;
    const std::uint64_t id = manager_.submit(
        *spec, prio ? static_cast<int>(prio->as_int()) : 0, error, rejected);
    if (id == 0) return error_response(error, rejected);
    Json res = ok_response();
    res.set("id", Json(static_cast<long long>(id)));
    return res;
  }
  if (type == "status") {
    JobProgress p;
    if (!manager_.status(req_id(req), p)) {
      return error_response("unknown job");
    }
    Json res = ok_response();
    res.set("job", progress_json(p));
    return res;
  }
  if (type == "result") {
    JobState state = JobState::kQueued;
    std::string result, error;
    const bool ok = manager_.result(req_id(req), state, result, error);
    Json res = ok ? ok_response() : error_response(error);
    res.set("state", Json(job_state_name(state)));
    if (ok) res.set("result", Json(result));
    return res;
  }
  if (type == "cancel") {
    std::string error;
    if (!manager_.cancel(req_id(req), error)) return error_response(error);
    return ok_response();
  }
  if (type == "stats") {
    Json res = ok_response();
    res.set("stats", manager_.stats(pool_.size()));
    return res;
  }
  if (type == "shutdown") {
    request_stop();
    return ok_response();
  }
  return error_response("unknown request type \"" + type + "\"");
}

void CampaignServer::run(const std::atomic<bool>* external_stop) {
  while (!stop_requested_.load() &&
         !(external_stop != nullptr && external_stop->load())) {
    pollfd none{-1, 0, 0};
    ::poll(&none, 0, 200);  // portable 200 ms sleep, EINTR-tolerant
  }
  stop();
}

void CampaignServer::stop() {
  {
    MutexLock lock(conn_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stop_requested_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(cfg_.socket_path.c_str());
  }
  // Drain the fleet (in-flight shards finish and merge), then write the
  // final snapshots — the SIGTERM flush guarantee.
  pool_.stop_join();
  manager_.flush_journals();
  // The accept thread is joined, so no new handlers can appear: swap the
  // thread list out under the lock and join outside it (handlers take
  // conn_mu_ to deregister, so joining under it would deadlock).
  std::vector<std::thread> to_join;
  {
    MutexLock lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    to_join.swap(conn_threads_);
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
}

}  // namespace mcan
