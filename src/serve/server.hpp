// The campaign job server: a Unix-domain socket front end over the
// JobManager + WorkerPool.
//
// One thread accepts connections (polling, so a requested stop is seen
// promptly); each connection gets a handler thread that loops over
// length-prefixed JSON frames (serve/proto.hpp) and dispatches:
//
//   submit   {"spec": {...}, "priority": N}  -> {"ok", "id"} | rejected
//   status   {"id": N}                       -> {"ok", "state", progress}
//   result   {"id": N}                       -> {"ok", "state", "result"}
//   cancel   {"id": N}                       -> {"ok"}
//   stats    {}                              -> {"ok", queue/shard/throughput}
//   ping     {}                              -> {"ok"}
//   shutdown {}                              -> {"ok"} then graceful stop
//
// Graceful stop (shutdown request or SIGINT/SIGTERM via request_stop):
// stop accepting, drain workers (in-flight shards finish), flush a final
// journal snapshot for every live job, close connections.  A kill -9
// skips all of that by definition — which is exactly what the journal's
// snapshot discipline is for (docs/SERVING.md walks the recovery).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "serve/worker.hpp"

namespace mcan {

struct ServerConfig {
  std::string socket_path = "mcan-serve.sock";
  ServeConfig serve;
  WorkerPoolConfig pool;
};

class CampaignServer {
 public:
  explicit CampaignServer(ServerConfig cfg);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Bind the socket, recover journalled jobs, start workers and the
  /// accept thread.  False with a message on failure (e.g. socket path in
  /// use).  `notes` receives the recovery report.
  [[nodiscard]] bool start(std::vector<std::string>& notes,
                           std::string& error);

  /// Block until a stop is requested (shutdown request / request_stop),
  /// then shut down gracefully.
  void run();

  /// Async-signal-safe stop request: just an atomic store; run() notices
  /// within its poll interval.
  void request_stop() { stop_requested_.store(true); }

  /// Graceful shutdown (idempotent; run() calls it on exit).
  void stop();

  [[nodiscard]] JobManager& manager() { return manager_; }
  [[nodiscard]] const std::string& socket_path() const {
    return cfg_.socket_path;
  }

 private:
  void accept_main();
  void handle_connection(int fd);
  [[nodiscard]] Json dispatch(const Json& req);

  ServerConfig cfg_;
  JobManager manager_;
  WorkerPool pool_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stop_requested_{false};
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  bool stopped_ = false;
};

}  // namespace mcan
