// The campaign job server: a Unix-domain socket front end over the
// JobManager + WorkerPool.
//
// One thread accepts connections (polling, so a requested stop is seen
// promptly); each connection gets a handler thread that loops over
// length-prefixed JSON frames (serve/proto.hpp) and dispatches:
//
//   submit   {"spec": {...}, "priority": N}  -> {"ok", "id"} | rejected
//   status   {"id": N}                       -> {"ok", "state", progress}
//   result   {"id": N}                       -> {"ok", "state", "result"}
//   cancel   {"id": N}                       -> {"ok"}
//   stats    {}                              -> {"ok", queue/shard/throughput}
//   ping     {}                              -> {"ok"}
//   shutdown {}                              -> {"ok"} then graceful stop
//
// Graceful stop (shutdown request or SIGINT/SIGTERM via request_stop):
// stop accepting, drain workers (in-flight shards finish), flush a final
// journal snapshot for every live job, close connections.  A kill -9
// skips all of that by definition — which is exactly what the journal's
// snapshot discipline is for (docs/SERVING.md walks the recovery).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "serve/worker.hpp"
#include "util/mutex.hpp"

namespace mcan {

struct ServerConfig {
  std::string socket_path = "mcan-serve.sock";
  ServeConfig serve;
  WorkerPoolConfig pool;
};

class CampaignServer {
 public:
  explicit CampaignServer(ServerConfig cfg);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Bind the socket, recover journalled jobs, start workers and the
  /// accept thread.  False with a message on failure (e.g. socket path in
  /// use).  `notes` receives the recovery report.
  [[nodiscard]] bool start(std::vector<std::string>& notes,
                           std::string& error);

  /// Block until a stop is requested (shutdown request, request_stop, or
  /// `external_stop` — typically a lock-free atomic a signal handler
  /// stores to), then shut down gracefully.
  void run(const std::atomic<bool>* external_stop = nullptr);

  /// Stop request from another thread: just an atomic store; run()
  /// notices within its poll interval.  Not for signal handlers — a
  /// member call through a global pointer is not async-signal-safe; give
  /// run() an external_stop flag instead.
  void request_stop() { stop_requested_.store(true); }

  /// Graceful shutdown (idempotent; run() calls it on exit).
  void stop() MCAN_EXCLUDES(conn_mu_);

  [[nodiscard]] JobManager& manager() { return manager_; }
  [[nodiscard]] const std::string& socket_path() const {
    return cfg_.socket_path;
  }

 private:
  void accept_main();
  void handle_connection(int fd);
  [[nodiscard]] Json dispatch(const Json& req);

  ServerConfig cfg_;
  JobManager manager_;
  WorkerPool pool_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stop_requested_{false};
  Mutex conn_mu_;
  std::vector<int> conn_fds_ MCAN_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ MCAN_GUARDED_BY(conn_mu_);
  bool stopped_ MCAN_GUARDED_BY(conn_mu_) = false;
};

}  // namespace mcan
