// The worker fleet: threads that claim shards from the JobManager,
// execute their slots, and report completion — plus the heartbeat monitor
// that notices dead workers and requeues whatever they were holding.
//
// Execution is the only phase that runs without the manager lock, and
// engines guarantee it is pure per slot, so a worker death costs nothing
// but the requeue: the replacement re-executes the same slots and the
// merged result is bit-identical (the generation token on the shard makes
// any completion from the dead worker's ghost stale).
//
// Death, in process terms: a worker thread leaves its loop without
// completing its shard — an exception escaping execute_slot, or the
// fail_hook test injection that simulates a crashed worker box.  Each
// worker heartbeats between slots; the monitor requeues a dead or silent
// worker's shard after heartbeat_timeout_s.  The timeout must exceed the
// worst-case slot execution time — a merely slow worker that is declared
// dead wastes (harmless, idempotent) duplicate execution.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "util/mutex.hpp"

namespace mcan {

struct WorkerPoolConfig {
  int workers = 1;  ///< 0 = one per hardware thread
  /// Monitor: requeue a busy worker's shard when its heartbeat is older
  /// than this.  Dead workers (thread exited) are requeued immediately.
  double heartbeat_timeout_s = 60;
  double monitor_period_s = 0.25;
  /// Test injection: called with the shard a worker just claimed; return
  /// true to make that worker die on the spot (shard left unfinished for
  /// the monitor to requeue).
  std::function<bool(const ShardRef&)> fail_hook;
};

class WorkerPool {
 public:
  WorkerPool(JobManager& manager, WorkerPoolConfig cfg);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void start();

  /// Graceful drain: stop the manager (workers finish their current
  /// shard), then join every thread.  Idempotent.
  void stop_join();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }
  [[nodiscard]] std::uint64_t deaths() const {
    return deaths_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t alive() const;

 private:
  struct WorkerState {
    std::thread thread;
    std::atomic<std::int64_t> beat_ms{0};
    std::atomic<bool> dead{false};
    /// Guards the shard-holding state below.  Per-worker (not the pool
    /// lock): the worker takes it between slots and the monitor takes it
    /// per scan, so the two never contend across workers.
    Mutex mu;
    bool holds_shard MCAN_GUARDED_BY(mu) = false;
    ShardRef current MCAN_GUARDED_BY(mu);
  };

  void worker_main(WorkerState& st);
  void monitor_main() MCAN_EXCLUDES(mu_);
  void set_current(WorkerState& st, const ShardRef& ref);
  void clear_current(WorkerState& st);
  [[nodiscard]] static std::int64_t now_ms();

  JobManager& manager_;
  WorkerPoolConfig cfg_;
  /// Filled by start() before any thread exists, then never resized:
  /// worker/monitor threads only index into it, so it needs no guard.
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::thread monitor_;
  Mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ MCAN_GUARDED_BY(mu_) = false;
  bool joined_ MCAN_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> deaths_{0};
};

}  // namespace mcan
