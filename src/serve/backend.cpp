#include "serve/backend.hpp"

#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "fuzz/engine.hpp"
#include "rare/campaign.hpp"
#include "rsm/cluster.hpp"
#include "scenario/model_check.hpp"
#include "scenario/sweep_cli.hpp"

namespace mcan {

namespace {

// --- spec field accessors (every field optional, engine defaults) --------

long long spec_int(const Json& spec, const char* key, long long dflt) {
  const Json* v = spec.find(key);
  return v && v->is_number() ? v->as_int(dflt) : dflt;
}

double spec_double(const Json& spec, const char* key, double dflt) {
  const Json* v = spec.find(key);
  return v ? v->as_double(dflt) : dflt;
}

bool spec_bool(const Json& spec, const char* key, bool dflt) {
  const Json* v = spec.find(key);
  return v && v->type() == Json::Type::Bool ? v->as_bool(dflt) : dflt;
}

std::string spec_string(const Json& spec, const char* key,
                        const std::string& dflt) {
  const Json* v = spec.find(key);
  return v && v->is_string() ? v->as_string() : dflt;
}

/// The spec token for a protocol — the inverse of parse_protocol_arg,
/// used to render canonical specs.
std::string protocol_token(const ProtocolParams& p) {
  switch (p.variant) {
    case Variant::StandardCan: return "can";
    case Variant::MinorCan: return "minor";
    case Variant::MajorCan: return "major:" + std::to_string(p.m);
  }
  return "can";
}

// --- fuzz / rsm -----------------------------------------------------------

/// One backend, three kinds: "fuzz" drives the bare wire-level campaign;
/// "rsm" attaches a consensus workload (FuzzConfig::workload) so every
/// execution runs the replicated state machine and the four consensus
/// violation classes are live; "attack" opens the adversarial genome space
/// (attack directives: glitch/busoff/spoof attackers, fuzz/mutate.hpp
/// bounds) on top of the wire-level campaign.  Checkpoint/restore is
/// shared — the corpus snapshot round-trips through .scn text, and both
/// the rsm and attack directives are part of that text.
class FuzzServeBackend final : public CampaignBackend {
 public:
  enum class Mode { Fuzz, Rsm, Attack };

  explicit FuzzServeBackend(const Json& spec, Mode mode = Mode::Fuzz)
      : mode_(mode) {
    cfg_.protocol = parse_protocol_arg(spec_string(spec, "protocol", "can"));
    cfg_.n_nodes = static_cast<int>(spec_int(spec, "nodes", cfg_.n_nodes));
    cfg_.seed = static_cast<std::uint64_t>(spec_int(
        spec, "seed", static_cast<long long>(cfg_.seed)));
    cfg_.max_execs = static_cast<std::uint64_t>(spec_int(
        spec, "max_execs", static_cast<long long>(cfg_.max_execs)));
    cfg_.batch = static_cast<int>(spec_int(spec, "batch", cfg_.batch));
    cfg_.minimize_every = static_cast<std::uint64_t>(spec_int(
        spec, "minimize_every", static_cast<long long>(cfg_.minimize_every)));
    const int max_flips = static_cast<int>(spec_int(spec, "max_flips", 0));
    if (max_flips > 0) cfg_.bounds.max_flips = max_flips;
    cfg_.bounds.mutate_protocol =
        spec_bool(spec, "mutate_protocol", cfg_.bounds.mutate_protocol);
    envelope_ = spec_bool(spec, "envelope", false);
    if (envelope_) {
      // Mirror mcan-fuzz --envelope: the paper's <= m disturbance claim.
      cfg_.bounds.max_flips = cfg_.protocol.variant == Variant::MajorCan
                                  ? cfg_.protocol.m
                                  : 2;
      cfg_.bounds.allow_body = false;
      cfg_.bounds.allow_crash = false;
      cfg_.bounds.mutate_protocol = false;
    }
    if (mode_ == Mode::Attack) {
      cfg_.bounds.max_attacks =
          static_cast<int>(spec_int(spec, "max_attacks", 2));
      cfg_.bounds.attack_budget =
          static_cast<int>(spec_int(spec, "attack_budget", 4));
      cfg_.bounds.allow_spoof = spec_bool(spec, "allow_spoof", true);
      cfg_.bounds.allow_busoff = spec_bool(spec, "allow_busoff", true);
      if (cfg_.bounds.max_attacks < 1 || cfg_.bounds.attack_budget < 1) {
        throw std::invalid_argument(
            "attack spec: max_attacks/attack_budget must be >= 1");
      }
    }
    if (mode_ == Mode::Rsm) {
      RsmWorkload w;
      w.commands = static_cast<int>(spec_int(spec, "commands", w.commands));
      w.payload = static_cast<int>(spec_int(spec, "payload", w.payload));
      w.k = static_cast<int>(spec_int(spec, "k", w.k));
      w.spacing = spec_int(spec, "spacing", w.spacing);
      const std::string link = spec_string(spec, "link", "direct");
      w.link = -1;
      for (int i = 0; i < 4; ++i) {
        if (link == rsm_link_name(static_cast<RsmLink>(i))) w.link = i;
      }
      if (w.link < 0) {
        throw std::invalid_argument("rsm spec: unknown link \"" + link +
                                    "\" (want direct|edcan|relcan|totcan)");
      }
      w.crash_node = static_cast<int>(spec_int(spec, "crash", -1));
      w.crash_t = spec_int(spec, "crasht", 0);
      w.recover_t = spec_int(spec, "recovert", 0);
      if (cfg_.n_nodes > 8) {
        throw std::invalid_argument("rsm spec: at most 8 nodes");
      }
      cfg_.workload = sanitize_rsm_workload(w, cfg_.n_nodes);
    }
    cfg_.protocol.validate();
    if (cfg_.n_nodes < 2 || cfg_.max_execs == 0 || cfg_.batch < 1) {
      throw std::invalid_argument(std::string(kind()) +
                                  " spec: nodes/max_execs/batch invalid");
    }
    campaign_.emplace(cfg_);
  }

  [[nodiscard]] const char* kind() const override {
    switch (mode_) {
      case Mode::Rsm: return "rsm";
      case Mode::Attack: return "attack";
      case Mode::Fuzz: break;
    }
    return "fuzz";
  }

  [[nodiscard]] std::string fingerprint() const override {
    Json c = Json::object();
    c.set("backend", Json(kind()));
    if (cfg_.workload) {
      const RsmWorkload& w = *cfg_.workload;
      c.set("commands", Json(static_cast<long long>(w.commands)));
      c.set("payload", Json(static_cast<long long>(w.payload)));
      c.set("k", Json(static_cast<long long>(w.k)));
      c.set("spacing", Json(static_cast<long long>(w.spacing)));
      c.set("link",
            Json(rsm_link_name(static_cast<RsmLink>(w.link))));
      c.set("crash", Json(static_cast<long long>(w.crash_node)));
      c.set("crasht", Json(static_cast<long long>(w.crash_t)));
      c.set("recovert", Json(static_cast<long long>(w.recover_t)));
    }
    c.set("protocol", Json(protocol_token(cfg_.protocol)));
    c.set("nodes", Json(static_cast<long long>(cfg_.n_nodes)));
    c.set("seed", Json(static_cast<long long>(cfg_.seed)));
    c.set("max_execs", Json(static_cast<long long>(cfg_.max_execs)));
    c.set("batch", Json(static_cast<long long>(cfg_.batch)));
    c.set("minimize_every",
          Json(static_cast<long long>(cfg_.minimize_every)));
    c.set("max_flips", Json(static_cast<long long>(cfg_.bounds.max_flips)));
    c.set("mutate_protocol", Json(cfg_.bounds.mutate_protocol));
    c.set("envelope", Json(envelope_));
    if (mode_ == Mode::Attack) {
      c.set("max_attacks",
            Json(static_cast<long long>(cfg_.bounds.max_attacks)));
      c.set("attack_budget",
            Json(static_cast<long long>(cfg_.bounds.attack_budget)));
      c.set("allow_spoof", Json(cfg_.bounds.allow_spoof));
      c.set("allow_busoff", Json(cfg_.bounds.allow_busoff));
    }
    return c.dump();
  }

  [[nodiscard]] std::size_t plan_round() override {
    return campaign_->plan_round();
  }
  void execute_slot(std::size_t i) override { campaign_->execute_slot(i); }
  void merge_round() override { campaign_->merge_round(); }
  [[nodiscard]] bool finished() const override {
    return campaign_->finished();
  }

  [[nodiscard]] std::uint64_t units_done() const override {
    return campaign_->exec_index();
  }
  [[nodiscard]] std::uint64_t units_total() const override {
    return cfg_.max_execs;
  }

  [[nodiscard]] std::string checkpoint() const override {
    Json j = Json::object();
    j.set("exec_index",
          Json(static_cast<long long>(campaign_->exec_index())));
    j.set("next_minimize",
          Json(static_cast<long long>(campaign_->next_minimize())));
    const FuzzStats& st = campaign_->stats();
    Json stats = Json::object();
    stats.set("execs", Json(static_cast<long long>(st.execs)));
    stats.set("admitted", Json(static_cast<long long>(st.admitted)));
    stats.set("findings", Json(static_cast<long long>(st.findings)));
    stats.set("evicted", Json(static_cast<long long>(st.evicted)));
    stats.set("classes", Json(static_cast<long long>(st.classes_seen)));
    j.set("stats", std::move(stats));
    Json corpus = Json::array();
    for (const CorpusEntry& e : campaign_->corpus().entries()) {
      Json entry = Json::object();
      entry.set("scn", Json(write_scenario(e.spec)));
      entry.set("sig", Json(e.sig.to_hex()));
      entry.set("exec", Json(static_cast<long long>(e.exec_index)));
      entry.set("energy", Json(static_cast<long long>(e.energy)));
      corpus.push(std::move(entry));
    }
    j.set("corpus", std::move(corpus));
    j.set("accumulated", Json(campaign_->corpus().accumulated().to_hex()));
    Json findings = Json::array();
    for (const FuzzFinding& f : campaign_->findings()) {
      Json finding = Json::object();
      finding.set("scn", Json(write_scenario(f.spec)));
      finding.set("classes",
                  Json(static_cast<long long>(f.verdict.classes)));
      finding.set("sig", Json(f.verdict.sig.to_hex()));
      finding.set("detail", Json(f.verdict.detail));
      finding.set("exec", Json(static_cast<long long>(f.exec_index)));
      findings.push(std::move(finding));
    }
    j.set("findings", std::move(findings));
    return j.dump();
  }

  [[nodiscard]] bool restore(const std::string& payload) override {
    Json j;
    std::string err;
    if (!Json::parse(payload, j, err) || !j.is_object()) return false;
    const Json* stats = j.find("stats");
    const Json* corpus = j.find("corpus");
    const Json* acc = j.find("accumulated");
    const Json* findings = j.find("findings");
    if (!stats || !stats->is_object() || !corpus || !corpus->is_array() ||
        !acc || !acc->is_string() || !findings || !findings->is_array()) {
      return false;
    }
    FuzzStats st;
    st.execs = static_cast<std::uint64_t>(spec_int(*stats, "execs", 0));
    st.admitted = static_cast<std::uint64_t>(spec_int(*stats, "admitted", 0));
    st.findings = static_cast<std::uint64_t>(spec_int(*stats, "findings", 0));
    st.evicted = static_cast<std::uint64_t>(spec_int(*stats, "evicted", 0));
    st.classes_seen =
        static_cast<std::uint32_t>(spec_int(*stats, "classes", 0));
    Signature accumulated;
    if (!Signature::from_hex(acc->as_string(), accumulated)) return false;
    try {
      std::vector<CorpusEntry> entries;
      for (const Json& e : corpus->items()) {
        const Json* scn = e.find("scn");
        const Json* sig = e.find("sig");
        if (!scn || !scn->is_string() || !sig || !sig->is_string()) {
          return false;
        }
        CorpusEntry entry;
        entry.spec = parse_scenario(scn->as_string());
        if (!Signature::from_hex(sig->as_string(), entry.sig)) return false;
        entry.exec_index = static_cast<std::uint64_t>(spec_int(e, "exec", 0));
        entry.energy = static_cast<int>(spec_int(e, "energy", 1));
        entries.push_back(std::move(entry));
      }
      std::vector<FuzzFinding> found;
      for (const Json& f : findings->items()) {
        const Json* scn = f.find("scn");
        const Json* sig = f.find("sig");
        if (!scn || !scn->is_string() || !sig || !sig->is_string()) {
          return false;
        }
        FuzzFinding finding;
        finding.spec = parse_scenario(scn->as_string());
        finding.verdict.classes =
            static_cast<std::uint32_t>(spec_int(f, "classes", 0));
        if (!Signature::from_hex(sig->as_string(), finding.verdict.sig)) {
          return false;
        }
        finding.verdict.detail = spec_string(f, "detail", "");
        finding.exec_index = static_cast<std::uint64_t>(spec_int(f, "exec", 0));
        found.push_back(std::move(finding));
      }
      campaign_->restore_state(
          static_cast<std::uint64_t>(spec_int(j, "exec_index", 0)),
          static_cast<std::uint64_t>(spec_int(j, "next_minimize", 0)), st,
          std::move(entries), accumulated, std::move(found));
    } catch (const std::exception&) {
      return false;  // malformed .scn text inside the snapshot
    }
    return true;
  }

  [[nodiscard]] std::string result_json() override {
    FuzzResult res = campaign_->take_result();
    res.stats.elapsed_s = 0;  // deterministic result bytes; see backend.hpp
    return fuzz_stats_json(res.stats, cfg_.protocol, cfg_.n_nodes, cfg_.seed);
  }

 private:
  FuzzConfig cfg_;
  Mode mode_ = Mode::Fuzz;
  bool envelope_ = false;
  std::optional<FuzzCampaign> campaign_;
};

// --- rare -----------------------------------------------------------------

RareMode parse_rare_mode(const std::string& s) {
  if (s == "naive") return RareMode::kNaive;
  if (s == "importance") return RareMode::kImportance;
  if (s == "splitting") return RareMode::kSplitting;
  throw std::invalid_argument("rare spec: unknown mode \"" + s + "\"");
}

class RareServeBackend final : public CampaignBackend {
 public:
  explicit RareServeBackend(const Json& spec) {
    RareConfig cfg;
    cfg.protocol = parse_protocol_arg(spec_string(spec, "protocol", "can"));
    cfg.n_nodes = static_cast<int>(spec_int(spec, "nodes", cfg.n_nodes));
    cfg.ber = spec_double(spec, "ber", cfg.ber);
    cfg.mode = parse_rare_mode(spec_string(spec, "mode", "importance"));
    cfg.seed = static_cast<std::uint64_t>(
        spec_int(spec, "seed", static_cast<long long>(cfg.seed)));
    cfg.trials = spec_int(spec, "trials", cfg.trials);
    cfg.batch = static_cast<int>(spec_int(spec, "batch", cfg.batch));
    // The serve journal owns checkpointing; the engine's own journal off.
    cfg.journal.clear();
    campaign_.emplace(cfg);  // validates, resolves bias
  }

  [[nodiscard]] const char* kind() const override { return "rare"; }

  [[nodiscard]] std::string fingerprint() const override {
    const RareConfig& cfg = campaign_->config();
    Json c = Json::object();
    c.set("backend", Json("rare"));
    // The engine's own fingerprint covers everything that determines the
    // trial stream (bias profile included).
    c.set("engine", Json(cfg.fingerprint()));
    c.set("batch", Json(static_cast<long long>(cfg.batch)));
    return c.dump();
  }

  [[nodiscard]] std::size_t plan_round() override {
    return campaign_->plan_round();
  }
  void execute_slot(std::size_t i) override { campaign_->execute_slot(i); }
  void merge_round() override { campaign_->merge_round(); }
  [[nodiscard]] bool finished() const override {
    return campaign_->finished();
  }

  [[nodiscard]] std::uint64_t units_done() const override {
    return static_cast<std::uint64_t>(campaign_->trials_done());
  }
  [[nodiscard]] std::uint64_t units_total() const override {
    return static_cast<std::uint64_t>(campaign_->config().trials);
  }

  [[nodiscard]] std::string checkpoint() const override {
    return campaign_->checkpoint_line();
  }
  [[nodiscard]] bool restore(const std::string& payload) override {
    return campaign_->restore_checkpoint_line(payload);
  }

  [[nodiscard]] std::string result_json() override {
    RareResult res = campaign_->result();
    res.seconds = 0;  // deterministic result bytes; see backend.hpp
    return res.to_json();
  }

 private:
  std::optional<RareCampaign> campaign_;
};

// --- check ----------------------------------------------------------------

class CheckServeBackend final : public CampaignBackend {
 public:
  explicit CheckServeBackend(const Json& spec) {
    std::vector<ProtocolParams> protocols;
    if (const Json* list = spec.find("protocols");
        list && list->is_array() && !list->items().empty()) {
      for (const Json& tok : list->items()) {
        if (!tok.is_string()) {
          throw std::invalid_argument("check spec: protocols must be strings");
        }
        protocols.push_back(parse_protocol_arg(tok.as_string()));
      }
    } else {
      protocols = default_protocol_set();
    }
    max_k_ = static_cast<int>(spec_int(spec, "max_k", 2));
    nodes_ = static_cast<int>(spec_int(spec, "nodes", 3));
    budget_ = spec_int(spec, "budget", 0);
    dedup_ = spec_bool(spec, "dedup", true);
    symmetry_ = spec_bool(spec, "symmetry", true);
    if (max_k_ < 1) throw std::invalid_argument("check spec: max_k < 1");
    for (const ProtocolParams& p : protocols) {
      for (int k = 1; k <= max_k_; ++k) {
        unit_config(p, k).validate();  // throw before any work
        units_.push_back({p, k});
      }
    }
    slots_.resize(units_.size());
  }

  [[nodiscard]] const char* kind() const override { return "check"; }

  [[nodiscard]] std::string fingerprint() const override {
    Json c = Json::object();
    c.set("backend", Json("check"));
    Json protos = Json::array();
    for (const Unit& u : units_) {
      if (u.k == 1) protos.push(Json(protocol_token(u.protocol)));
    }
    c.set("protocols", std::move(protos));
    c.set("max_k", Json(static_cast<long long>(max_k_)));
    c.set("nodes", Json(static_cast<long long>(nodes_)));
    c.set("budget", Json(budget_));
    c.set("dedup", Json(dedup_));
    c.set("symmetry", Json(symmetry_));
    return c.dump();
  }

  [[nodiscard]] std::size_t plan_round() override {
    if (planned_ || finished()) return 0;
    planned_ = true;
    return units_.size();
  }

  void execute_slot(std::size_t i) override {
    const ModelCheckResult r =
        run_model_check(unit_config(units_[i].protocol, units_[i].k));
    slots_[i] = {r.cases, r.imo, r.double_rx, r.total_loss, r.timeouts,
                 r.complete};
  }

  void merge_round() override { done_ = units_.size(); }

  [[nodiscard]] bool finished() const override {
    return done_ == units_.size();
  }

  [[nodiscard]] std::uint64_t units_done() const override { return done_; }
  [[nodiscard]] std::uint64_t units_total() const override {
    return units_.size();
  }
  [[nodiscard]] std::size_t shard_size_hint() const override { return 1; }

  // Sweep units are coarse and merge exactly once, so there is no
  // mid-campaign snapshot: a killed check job restarts from scratch (and
  // still produces identical bytes — the sweep itself is deterministic).
  [[nodiscard]] std::string checkpoint() const override { return {}; }
  [[nodiscard]] bool restore(const std::string& payload) override {
    return payload.empty();
  }

  [[nodiscard]] std::string result_json() override {
    Json j = Json::object();
    j.set("backend", Json("check"));
    Json out = Json::array();
    for (std::size_t i = 0; i < units_.size(); ++i) {
      Json u = Json::object();
      u.set("protocol", Json(units_[i].protocol.name()));
      u.set("k", Json(static_cast<long long>(units_[i].k)));
      u.set("cases", Json(slots_[i].cases));
      u.set("imo", Json(slots_[i].imo));
      u.set("double", Json(slots_[i].double_rx));
      u.set("loss", Json(slots_[i].loss));
      u.set("timeouts", Json(slots_[i].timeouts));
      u.set("complete", Json(slots_[i].complete));
      out.push(std::move(u));
    }
    j.set("units", std::move(out));
    return j.dump() + "\n";
  }

 private:
  struct Unit {
    ProtocolParams protocol;
    int k = 1;
  };
  struct Outcome {
    long long cases = 0;
    long long imo = 0;
    long long double_rx = 0;
    long long loss = 0;
    long long timeouts = 0;
    bool complete = true;
  };

  [[nodiscard]] ModelCheckConfig unit_config(const ProtocolParams& p,
                                             int k) const {
    ModelCheckConfig cfg;
    cfg.base.protocol = p;
    cfg.base.n_nodes = nodes_;
    cfg.base.errors = k;
    cfg.jobs = 1;  // the serve worker fleet is the parallelism
    cfg.dedup = dedup_;
    cfg.symmetry = symmetry_;
    cfg.max_cases = budget_;
    return cfg;
  }

  std::vector<Unit> units_;
  std::vector<Outcome> slots_;
  std::size_t done_ = 0;
  bool planned_ = false;
  long long budget_ = 0;
  bool dedup_ = true;
  bool symmetry_ = true;
  int nodes_ = 3;
  int max_k_ = 2;
};

}  // namespace

std::unique_ptr<CampaignBackend> make_backend(const Json& spec,
                                              std::string& error) {
  if (!spec.is_object()) {
    error = "job spec must be a JSON object";
    return nullptr;
  }
  const std::string kind = spec_string(spec, "backend", "");
  try {
    if (kind == "fuzz") return std::make_unique<FuzzServeBackend>(spec);
    if (kind == "rsm") {
      return std::make_unique<FuzzServeBackend>(spec,
                                                FuzzServeBackend::Mode::Rsm);
    }
    if (kind == "attack") {
      return std::make_unique<FuzzServeBackend>(
          spec, FuzzServeBackend::Mode::Attack);
    }
    if (kind == "rare") return std::make_unique<RareServeBackend>(spec);
    if (kind == "check") return std::make_unique<CheckServeBackend>(spec);
  } catch (const std::exception& e) {
    error = e.what();
    return nullptr;
  }
  error = kind.empty() ? "job spec: missing \"backend\" field"
                       : "job spec: unknown backend \"" + kind + "\"";
  return nullptr;
}

}  // namespace mcan
