// The job queue and shard scheduler of the campaign service.
//
// A job is one campaign (a CampaignBackend).  The scheduler drives every
// job with the engines' own round discipline and never touches their
// determinism contract:
//
//   plan    — sequential, under the manager lock (plan_round carves the
//             round's slots into shards of shard_size);
//   execute — workers claim shards (highest priority first) and run their
//             slots without any lock; slot execution is pure per slot, so
//             shards may be re-executed after a worker death;
//   merge   — the worker that completes the round's last shard folds it,
//             sequentially, under the lock — identical for any worker
//             count, which is what pins "serve result == local --jobs N
//             run" down to the byte.
//
// Worker death: an abandoned shard returns to the queue with its
// generation bumped, so a completion from the dead worker's ghost is
// recognized as stale and dropped; after max_retries requeues the job
// fails instead of looping forever.  Backpressure: submits beyond
// `capacity` live jobs get an explicit `rejected` response, never an
// unbounded queue.  Crash recovery: every merged round may be
// checkpointed into the job journal (serve/journal.hpp); recover()
// rebuilds jobs from their journals at daemon start.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/backend.hpp"
#include "serve/journal.hpp"
#include "serve/proto.hpp"
#include "util/mutex.hpp"

namespace mcan {

struct ServeConfig {
  std::string journal_dir;        ///< "" = no crash recovery
  std::size_t capacity = 64;      ///< max live (queued+running) jobs
  std::size_t shard_size = 16;    ///< slots per shard (backends may hint 1)
  int max_retries = 3;            ///< shard requeues before the job fails
  std::uint64_t checkpoint_every = 4096;  ///< units between journal snaps
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] const char* job_state_name(JobState s);
[[nodiscard]] bool job_state_terminal(JobState s);

/// What a worker holds while executing: the shard's identity (with the
/// generation that guards against stale completions) plus slot range.
struct ShardRef {
  std::uint64_t job_id = 0;
  std::uint64_t round = 0;
  std::size_t shard = 0;       ///< index within the round
  std::uint64_t generation = 0;
  std::size_t begin = 0;       ///< slot range [begin, end)
  std::size_t end = 0;
};

struct Claim {
  ShardRef ref;
  CampaignBackend* backend = nullptr;
  std::shared_ptr<const void> hold;  ///< keeps the backend alive unlocked
};

/// One job's public progress view (status and stats endpoints).
struct JobProgress {
  std::uint64_t id = 0;
  int priority = 0;
  JobState state = JobState::kQueued;
  std::string kind;
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;
  std::uint64_t rounds = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t retries = 0;
  std::uint64_t resumed_units = 0;  ///< journal snapshot the job resumed from
  std::string error;  ///< failed jobs: why
};

class JobManager {
 public:
  explicit JobManager(ServeConfig cfg);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Rebuild jobs from the journal directory (call once, before workers
  /// start).  Returns human-readable notes about what was recovered or
  /// skipped.
  std::vector<std::string> recover();

  /// Submit a job.  Returns the job id, or 0 with either rejected=true
  /// (backpressure: capacity reached, retry later) or a spec error.
  std::uint64_t submit(const Json& spec, int priority, std::string& error,
                       bool& rejected);

  /// Cancel a live job; false (with a message) when unknown or terminal.
  bool cancel(std::uint64_t id, std::string& error);

  [[nodiscard]] bool status(std::uint64_t id, JobProgress& out) const;

  /// Fetch a terminal job's result.  False while the job is still live
  /// (state reported in `out_state` either way) or unknown.
  bool result(std::uint64_t id, JobState& out_state, std::string& out,
              std::string& error) const;

  [[nodiscard]] std::vector<JobProgress> jobs() const;

  /// The stats endpoint body (queue depth, shard counters, throughput,
  /// per-job progress).
  [[nodiscard]] Json stats(std::size_t workers) const;

  // --- worker interface ---------------------------------------------------

  /// Block until a shard is claimable or the manager stops; false = stop.
  bool claim_wait(Claim& out);

  /// Worker finished every slot of the shard.  Stale refs (terminal job,
  /// superseded generation, old round) are counted and dropped.
  void complete(const ShardRef& ref);

  /// Worker died (or was declared dead) while holding the shard: requeue
  /// it with a bumped generation, or fail the job past max_retries.
  void abandon(const ShardRef& ref);

  /// Stop handing out work and wake every waiting worker.
  void stop();
  [[nodiscard]] bool stopped() const;

  /// Checkpoint every live job to the journal (graceful-shutdown flush;
  /// also safe to call periodically).
  void flush_journals();

 private:
  struct Shard;
  struct Job;

  Job* find_locked(std::uint64_t id) MCAN_REQUIRES(mu_);
  const Job* find_locked(std::uint64_t id) const MCAN_REQUIRES(mu_);
  [[nodiscard]] bool stale_locked(const Job* job, const ShardRef& ref) const
      MCAN_REQUIRES(mu_);
  /// plan_round + shard carving; finalizes the job when the campaign is
  /// over.  Returns true if the job now has claimable shards.
  bool plan_locked(Job& job) MCAN_REQUIRES(mu_);
  void merge_locked(Job& job) MCAN_REQUIRES(mu_);
  void finalize_locked(Job& job) MCAN_REQUIRES(mu_);
  void fail_locked(Job& job, const std::string& why) MCAN_REQUIRES(mu_);
  void snapshot_locked(Job& job, bool force) MCAN_REQUIRES(mu_);
  [[nodiscard]] JobProgress progress_locked(const Job& job) const
      MCAN_REQUIRES(mu_);
  [[nodiscard]] std::size_t live_locked() const MCAN_REQUIRES(mu_);

  ServeConfig cfg_;
  mutable Mutex mu_;
  /// The journal has no lock of its own; every append/load goes through
  /// this manager under mu_ (journal.hpp states the contract).
  JobJournal journal_ MCAN_GUARDED_BY(mu_);
  std::condition_variable work_cv_;
  std::vector<std::shared_ptr<Job>> jobs_ MCAN_GUARDED_BY(mu_);
  std::uint64_t next_id_ MCAN_GUARDED_BY(mu_) = 1;
  bool stopped_ MCAN_GUARDED_BY(mu_) = false;

  // Service counters (stats endpoint).
  std::uint64_t shards_completed_ MCAN_GUARDED_BY(mu_) = 0;
  std::uint64_t shards_requeued_ MCAN_GUARDED_BY(mu_) = 0;
  std::uint64_t stale_completions_ MCAN_GUARDED_BY(mu_) = 0;
  /// Units progressed in this process.
  std::uint64_t units_merged_ MCAN_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point t0_;  ///< const after construction
};

}  // namespace mcan
