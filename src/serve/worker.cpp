#include "serve/worker.hpp"

#include <algorithm>
#include <chrono>

namespace mcan {

WorkerPool::WorkerPool(JobManager& manager, WorkerPoolConfig cfg)
    : manager_(manager), cfg_(std::move(cfg)) {
  if (cfg_.workers <= 0) {
    cfg_.workers =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
}

WorkerPool::~WorkerPool() { stop_join(); }

std::int64_t WorkerPool::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WorkerPool::start() {
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    auto st = std::make_unique<WorkerState>();
    st->beat_ms.store(now_ms(), std::memory_order_relaxed);
    workers_.push_back(std::move(st));
  }
  for (auto& st : workers_) {
    st->thread = std::thread([this, state = st.get()] { worker_main(*state); });
  }
  monitor_ = std::thread([this] { monitor_main(); });
}

std::size_t WorkerPool::alive() const {
  std::size_t n = 0;
  for (const auto& st : workers_) {
    if (!st->dead.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

void WorkerPool::set_current(WorkerState& st, const ShardRef& ref) {
  MutexLock lock(st.mu);
  st.current = ref;
  st.holds_shard = true;
}

void WorkerPool::clear_current(WorkerState& st) {
  MutexLock lock(st.mu);
  st.holds_shard = false;
}

void WorkerPool::worker_main(WorkerState& st) {
  for (;;) {
    Claim claim;
    if (!manager_.claim_wait(claim)) return;
    set_current(st, claim.ref);
    st.beat_ms.store(now_ms(), std::memory_order_relaxed);
    if (cfg_.fail_hook && cfg_.fail_hook(claim.ref)) {
      // Simulated worker death: exit holding the shard.  The monitor
      // requeues it; the generation bump orphans this worker forever.
      st.dead.store(true, std::memory_order_relaxed);
      deaths_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    try {
      for (std::size_t i = claim.ref.begin; i < claim.ref.end; ++i) {
        st.beat_ms.store(now_ms(), std::memory_order_relaxed);
        claim.backend->execute_slot(i);
      }
      clear_current(st);
      manager_.complete(claim.ref);
    } catch (...) {
      // A slot blew up: this worker is dead, its shard goes back to the
      // queue for a (bounded) retry by someone else.
      clear_current(st);
      manager_.abandon(claim.ref);
      st.dead.store(true, std::memory_order_relaxed);
      deaths_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void WorkerPool::monitor_main() {
  const auto period = std::chrono::duration<double>(
      cfg_.monitor_period_s > 0 ? cfg_.monitor_period_s : 0.25);
  const std::int64_t timeout_ms =
      static_cast<std::int64_t>(cfg_.heartbeat_timeout_s * 1000.0);
  for (;;) {
    {
      // Plain wait_for (no predicate): a spurious wakeup only causes an
      // early scan, which is harmless and keeps the lock discipline
      // visible to the thread-safety analysis.
      UniqueMutexLock lock(mu_);
      if (stopping_) return;
      // stop_join() flips stopping_ under mu_, which we hold until the
      // wait releases it — the notify cannot be missed.
      stop_cv_.wait_for(lock.native(), period);
      if (stopping_) return;
    }
    const std::int64_t now = now_ms();
    for (auto& st : workers_) {
      bool requeue = false;
      ShardRef ref;
      {
        MutexLock lock(st->mu);
        if (st->holds_shard) {
          const bool dead = st->dead.load(std::memory_order_relaxed);
          const bool silent =
              timeout_ms > 0 &&
              now - st->beat_ms.load(std::memory_order_relaxed) > timeout_ms;
          if (dead || silent) {
            ref = st->current;
            st->holds_shard = false;
            requeue = true;
          }
        }
      }
      // Requeue outside the worker's lock (abandon takes the manager
      // lock; never hold both).
      if (requeue) manager_.abandon(ref);
    }
  }
}

void WorkerPool::stop_join() {
  {
    MutexLock lock(mu_);
    if (joined_) return;
    joined_ = true;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  manager_.stop();
  for (auto& st : workers_) {
    if (st->thread.joinable()) st->thread.join();
  }
  if (monitor_.joinable()) monitor_.join();
}

}  // namespace mcan
