// Campaign backends: the job server's view of the engines it drives.
//
// The fuzz, rare-event and model-check engines all run the same
// plan/execute/merge round discipline (fuzz/engine.hpp explains why that
// makes worker count irrelevant to results).  A CampaignBackend exposes
// exactly that loop, plus a checkpoint/restore pair and a deterministic
// result rendering, so the scheduler (serve/queue.hpp) can drive any
// campaign kind with one code path:
//
//   * plan_round()/merge_round() are called only from the scheduler's
//     sequential sections (under the manager lock);
//   * execute_slot(i) is called from worker threads, any subset of slots
//     in any order, possibly more than once — engines guarantee slot
//     execution is pure per slot, which is what makes a dead worker's
//     shard requeueable;
//   * checkpoint() is a single line of text capturing everything merged
//     so far, exact to the bit (the rare journal's hex-float discipline);
//     restore() is its inverse.  A backend that cannot snapshot
//     mid-campaign (model check) returns "" and restarts on resume;
//   * result_json() renders the finished campaign with deterministic
//     bytes: wall-clock fields are zeroed, so two runs of the same spec —
//     any worker count, killed and resumed or not — compare equal with
//     plain string equality.  Wall-clock telemetry lives in the stats
//     endpoint instead.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/proto.hpp"

namespace mcan {

class CampaignBackend {
 public:
  virtual ~CampaignBackend() = default;

  /// "fuzz", "rsm", "attack", "rare" or "check".
  [[nodiscard]] virtual const char* kind() const = 0;

  /// Canonical identity of the campaign: the spec with every default
  /// resolved, dumped deterministically.  A journal snapshot is only
  /// restored into a backend with an equal fingerprint.
  [[nodiscard]] virtual std::string fingerprint() const = 0;

  /// Plan the next round; returns the slot count (0 = campaign over).
  [[nodiscard]] virtual std::size_t plan_round() = 0;

  /// Execute planned slot `i` (worker threads; idempotent per slot).
  virtual void execute_slot(std::size_t i) = 0;

  /// Fold the executed round into campaign state, in slot order.
  virtual void merge_round() = 0;

  [[nodiscard]] virtual bool finished() const = 0;

  /// Progress in backend units (execs / trials / sweep units).
  [[nodiscard]] virtual std::uint64_t units_done() const = 0;
  [[nodiscard]] virtual std::uint64_t units_total() const = 0;

  /// Preferred slots-per-shard; 0 = take the server default.  Backends
  /// with coarse slots (a model-check sweep unit is a whole run) hint 1
  /// so the worker fleet can spread a round at all.
  [[nodiscard]] virtual std::size_t shard_size_hint() const { return 0; }

  /// One-line snapshot of all merged state; "" when unsupported.
  [[nodiscard]] virtual std::string checkpoint() const = 0;

  /// Inverse of checkpoint(); false on a malformed payload.  Only called
  /// before the first plan_round().
  [[nodiscard]] virtual bool restore(const std::string& payload) = 0;

  /// Final result as JSON with deterministic bytes (call once, after
  /// finished()).
  [[nodiscard]] virtual std::string result_json() = 0;
};

/// Build a backend from a submitted job spec:
///
///   {"backend": "fuzz",  "protocol": "major:5", "nodes": 3, "seed": 1,
///    "max_execs": 2000, "batch": 64, "minimize_every": 2048,
///    "envelope": false, "max_flips": 0, "mutate_protocol": false}
///   {"backend": "attack", "protocol": "major:5", "nodes": 3, "seed": 1,
///    "max_execs": 2000, "max_attacks": 2, "attack_budget": 4,
///    "allow_spoof": true, "allow_busoff": true}
///   {"backend": "rare",  "protocol": "can", "nodes": 32, "ber": 1e-5,
///    "mode": "importance", "seed": 1, "trials": 20000, "batch": 256}
///   {"backend": "check", "protocols": ["can", "major:5"], "max_k": 2,
///    "nodes": 3, "budget": 0}
///
/// Every field except "backend" has the engine's default.  Returns nullptr
/// with a message in `error` on an unknown backend or an invalid value.
[[nodiscard]] std::unique_ptr<CampaignBackend> make_backend(
    const Json& spec, std::string& error);

}  // namespace mcan
