#include "serve/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "serve/proto.hpp"
#include "util/text.hpp"

namespace mcan {

namespace {

constexpr const char* kMagic = "mcan-serve-journal v1";

/// Split complete lines only: a trailing segment without '\n' is the torn
/// write of an interrupted append and is dropped.
std::vector<std::string> complete_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;  // tail without newline: torn
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool read_all(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

/// "key value" → value, or false when the line has a different key.
bool keyed(const std::string& line, const std::string& key,
           std::string& value) {
  if (line.rfind(key + ' ', 0) != 0) return false;
  value = line.substr(key.size() + 1);
  return true;
}

/// Parse the payload of a done/failed line: one JSON string literal.
bool unquote(const std::string& payload, std::string& out) {
  Json j;
  std::string err;
  if (!Json::parse(payload, j, err) || !j.is_string()) return false;
  out = j.as_string();
  return true;
}

}  // namespace

JobJournal::JobJournal(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
  }
}

std::string JobJournal::path_for(std::uint64_t id) const {
  return dir_ + "/job-" + std::to_string(id) + ".jnl";
}

bool JobJournal::open(std::uint64_t id, int priority,
                      const std::string& spec_text,
                      const std::string& fingerprint) {
  if (!enabled()) return true;
  std::ofstream out(path_for(id), std::ios::trunc);
  if (!out) return false;
  out << kMagic << '\n';
  out << "id " << id << '\n';
  out << "priority " << priority << '\n';
  out << "spec " << spec_text << '\n';
  out << "fingerprint " << fingerprint << '\n';
  return static_cast<bool>(out);
}

bool JobJournal::append_line(std::uint64_t id, const std::string& line) {
  if (!enabled()) return true;
  std::ofstream out(path_for(id), std::ios::app);
  if (!out) return false;
  out << line << '\n';
  return static_cast<bool>(out);
}

bool JobJournal::append_snapshot(std::uint64_t id, std::uint64_t units,
                                 const std::string& payload) {
  return append_line(id,
                     "snap " + std::to_string(units) + ' ' + payload);
}

bool JobJournal::append_done(std::uint64_t id, const std::string& result) {
  return append_line(id, "done \"" + json_escape(result) + '"');
}

bool JobJournal::append_failed(std::uint64_t id, const std::string& message) {
  return append_line(id, "failed \"" + json_escape(message) + '"');
}

bool JobJournal::append_cancelled(std::uint64_t id) {
  return append_line(id, "cancelled");
}

bool JobJournal::load_file(const std::string& path, JournalRecord& out,
                           std::string& error) {
  std::string text;
  if (!read_all(path, text)) {
    error = "cannot read " + path;
    return false;
  }
  const std::vector<std::string> lines = complete_lines(text);
  if (lines.size() < 5 || lines[0] != kMagic) {
    error = path + ": not a serve journal";
    return false;
  }
  std::string value;
  if (!keyed(lines[1], "id", value) ||
      std::sscanf(value.c_str(), "%llu",
                  reinterpret_cast<unsigned long long*>(&out.id)) != 1) {
    error = path + ": bad id line";
    return false;
  }
  if (!keyed(lines[2], "priority", value) ||
      std::sscanf(value.c_str(), "%d", &out.priority) != 1) {
    error = path + ": bad priority line";
    return false;
  }
  if (!keyed(lines[3], "spec", out.spec_text) || out.spec_text.empty()) {
    error = path + ": bad spec line";
    return false;
  }
  if (!keyed(lines[4], "fingerprint", out.fingerprint) ||
      out.fingerprint.empty()) {
    error = path + ": bad fingerprint line";
    return false;
  }
  for (std::size_t i = 5; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    if (keyed(line, "snap", value)) {
      const std::size_t sp = value.find(' ');
      std::uint64_t units = 0;
      if (sp == std::string::npos ||
          std::sscanf(value.substr(0, sp).c_str(), "%llu",
                      reinterpret_cast<unsigned long long*>(&units)) != 1) {
        break;  // corrupt snapshot: keep the last good one
      }
      out.has_snapshot = true;
      out.snap_units = units;
      out.snapshot = value.substr(sp + 1);
      continue;
    }
    if (keyed(line, "done", value)) {
      if (!unquote(value, out.result)) break;
      out.terminal = JournalTerminal::kDone;
      break;
    }
    if (keyed(line, "failed", value)) {
      if (!unquote(value, out.result)) break;
      out.terminal = JournalTerminal::kFailed;
      break;
    }
    if (line == "cancelled") {
      out.terminal = JournalTerminal::kCancelled;
      break;
    }
    break;  // unknown record: ignore it and everything after
  }
  return true;
}

std::vector<JournalRecord> JobJournal::load_dir(
    std::vector<std::string>& notes) const {
  std::vector<JournalRecord> records;
  if (!enabled()) return records;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("job-", 0) != 0 || entry.path().extension() != ".jnl") {
      continue;
    }
    JournalRecord rec;
    std::string error;
    if (JobJournal::load_file(entry.path().string(), rec, error)) {
      records.push_back(std::move(rec));
    } else {
      notes.push_back(error);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.id < b.id;
            });
  return records;
}

}  // namespace mcan
