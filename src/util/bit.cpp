#include "util/bit.hpp"

#include <stdexcept>

namespace mcan {

char level_char(Level l) { return is_dominant(l) ? 'd' : 'r'; }

Level level_from_char(char c) {
  switch (c) {
    case 'd':
    case 'D':
    case '0':
      return Level::Dominant;
    case 'r':
    case 'R':
    case '1':
      return Level::Recessive;
    default:
      throw std::invalid_argument(std::string("not a level char: ") + c);
  }
}

std::string to_string(Level l) {
  return is_dominant(l) ? "dominant" : "recessive";
}

}  // namespace mcan
