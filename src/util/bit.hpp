// Fundamental bit-level types for the CAN wire model.
//
// CAN is a wired-AND bus: the *dominant* level (logical '0') overwrites the
// *recessive* level (logical '1').  Everything in the simulator that touches
// the wire uses `Level` rather than bool so that intent is explicit at call
// sites ("is this bit dominant?" instead of "is this bit true?").
#pragma once

#include <cstdint>
#include <string>

namespace mcan {

/// One bus level for one bit time.
enum class Level : std::uint8_t {
  Dominant = 0,   ///< logical '0'; wins on the bus
  Recessive = 1,  ///< logical '1'; default/idle level
};

/// Wired-AND combination of two levels: dominant wins.
[[nodiscard]] constexpr Level operator&(Level a, Level b) {
  return (a == Level::Dominant || b == Level::Dominant) ? Level::Dominant
                                                        : Level::Recessive;
}

/// Invert a level (used by the fault injector to model a disturbed view).
[[nodiscard]] constexpr Level flip(Level l) {
  return l == Level::Dominant ? Level::Recessive : Level::Dominant;
}

[[nodiscard]] constexpr bool is_dominant(Level l) { return l == Level::Dominant; }
[[nodiscard]] constexpr bool is_recessive(Level l) { return l == Level::Recessive; }

/// Map a logical bit value (0/1) onto a level.
[[nodiscard]] constexpr Level level_of(bool logical_one) {
  return logical_one ? Level::Recessive : Level::Dominant;
}

/// Logical value of a level (dominant = 0, recessive = 1).
[[nodiscard]] constexpr bool logical(Level l) { return l == Level::Recessive; }

/// 'd' / 'r' rendering used in the paper's trace figures.
[[nodiscard]] char level_char(Level l);

/// Parse 'd'/'r' (or '0'/'1') into a level; throws std::invalid_argument.
[[nodiscard]] Level level_from_char(char c);

/// Node identity within one simulated bus.
using NodeId = std::uint32_t;

/// Global simulation time, in bit times since simulation start.
using BitTime = std::uint64_t;

/// Sentinel for "no such time".
inline constexpr BitTime kNoTime = ~BitTime{0};

[[nodiscard]] std::string to_string(Level l);

}  // namespace mcan
