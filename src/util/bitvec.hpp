// A small, value-semantic sequence of wire levels.
//
// Used for frame bitstreams, CRC computation, and the trace renderer.  A thin
// wrapper over std::vector<Level> with helpers for the encodings that show up
// constantly in CAN work (integers MSB-first, 'd'/'r' strings).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/bit.hpp"

namespace mcan {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::vector<Level> bits) : bits_(std::move(bits)) {}
  BitVec(std::initializer_list<Level> bits) : bits_(bits) {}

  /// Build from a 'd'/'r' string, e.g. "rrdddr".  Spaces are skipped.
  [[nodiscard]] static BitVec from_string(const std::string& s);

  /// Append `width` bits of `value`, most-significant bit first, as logical
  /// values (1 = recessive).
  void append_uint(std::uint32_t value, int width);

  /// Read `width` bits starting at `pos` as an MSB-first unsigned integer.
  [[nodiscard]] std::uint32_t read_uint(std::size_t pos, int width) const;

  void push_back(Level l) { bits_.push_back(l); }
  void append(const BitVec& other);
  /// Append `n` copies of level `l`.
  void append_repeated(Level l, std::size_t n);

  [[nodiscard]] Level operator[](std::size_t i) const { return bits_[i]; }
  [[nodiscard]] Level& operator[](std::size_t i) { return bits_[i]; }
  [[nodiscard]] Level at(std::size_t i) const { return bits_.at(i); }

  [[nodiscard]] std::size_t size() const { return bits_.size(); }
  [[nodiscard]] bool empty() const { return bits_.empty(); }

  [[nodiscard]] auto begin() const { return bits_.begin(); }
  [[nodiscard]] auto end() const { return bits_.end(); }

  /// 'd'/'r' rendering (same alphabet as the paper's figures).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const BitVec&) const = default;

  [[nodiscard]] const std::vector<Level>& raw() const { return bits_; }

 private:
  std::vector<Level> bits_;
};

}  // namespace mcan
