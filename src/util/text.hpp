// Small text-formatting helpers shared by the trace renderer and benches.
#pragma once

#include <string>
#include <vector>

namespace mcan {

/// Left-pad/truncate to exactly `width` characters.
[[nodiscard]] std::string pad_right(std::string s, std::size_t width);

/// Format a double in scientific notation with `digits` significant digits,
/// in the style the paper's Table 1 uses (e.g. "8.80e-03").
[[nodiscard]] std::string sci(double v, int digits = 3);

/// Join strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// Render a simple fixed-width text table (first row = header).
[[nodiscard]] std::string render_table(
    const std::vector<std::vector<std::string>>& rows);

/// Escape a string for embedding in a JSON string literal.  Every control
/// character below 0x20 is escaped (short forms \b \t \n \f \r, \u00XX for
/// the rest), plus the quote and backslash.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Render a double as a JSON value that any parser accepts: finite values
/// round-trip exactly (%.17g), while NaN and the infinities — which bare
/// JSON numbers cannot express — become the quoted sentinels "NaN",
/// "Infinity" and "-Infinity".  All stats/journal writers emit doubles
/// through this helper.
[[nodiscard]] std::string json_number(double v);

/// Write `content` to `path`, replacing any existing file; false on error.
[[nodiscard]] bool write_text_file(const std::string& path,
                                   const std::string& content);

}  // namespace mcan
