// Throttled stderr progress reporting for long sweeps.
//
// Long enumeration campaigns (bench_exhaustive, bench_model_check,
// mcan-check) can run for minutes; a ProgressMeter gives the operator a
// single in-place updating line with completed/total, a cases/sec rate and
// an ETA, without ever flooding a log: updates are rate-limited and the
// line is only emitted at all when enough work has happened to matter.
#pragma once

#include <chrono>
#include <string>

#include "util/mutex.hpp"

namespace mcan {

class ProgressMeter {
 public:
  /// `label` prefixes the line; `total` of 0 means "unknown" (no ETA).
  explicit ProgressMeter(std::string label, long long total = 0,
                         double min_interval_s = 0.5);

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Erases the progress line if one was printed (so subsequent output
  /// starts on a clean line).
  ~ProgressMeter();

  /// Report the absolute number of completed items.  Thread-safe; cheap
  /// when called more often than the throttle interval.
  void update(long long done);

  /// (Re)announce the total, for callers that only learn it mid-run —
  /// e.g. once the engine has resolved the combination count.
  void set_total(long long total);

  /// Erase the in-place line.  Idempotent.
  void finish();

 private:
  void print_line(long long done, double elapsed) MCAN_REQUIRES(mu_);

  std::string label_;       ///< const after construction
  double min_interval_;     ///< const after construction
  std::chrono::steady_clock::time_point start_;  ///< const after construction
  Mutex mu_;
  long long total_ MCAN_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point last_print_ MCAN_GUARDED_BY(mu_);
  bool printed_ MCAN_GUARDED_BY(mu_) = false;
  bool finished_ MCAN_GUARDED_BY(mu_) = false;
};

}  // namespace mcan
