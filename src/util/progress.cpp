#include "util/progress.hpp"

#include <cstdio>

namespace mcan {

namespace {

std::string format_eta(double seconds) {
  if (seconds < 0) return "?";
  const long long s = static_cast<long long>(seconds + 0.5);
  if (s < 60) return std::to_string(s) + "s";
  if (s < 3600) {
    return std::to_string(s / 60) + "m" + std::to_string(s % 60) + "s";
  }
  return std::to_string(s / 3600) + "h" + std::to_string((s % 3600) / 60) + "m";
}

}  // namespace

ProgressMeter::ProgressMeter(std::string label, long long total,
                             double min_interval_s)
    : label_(std::move(label)),
      min_interval_(min_interval_s),
      start_(std::chrono::steady_clock::now()),
      total_(total),
      last_print_(start_) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::update(long long done) {
  MutexLock lock(mu_);
  if (finished_) return;
  const auto now = std::chrono::steady_clock::now();
  const double since_print =
      std::chrono::duration<double>(now - last_print_).count();
  if (since_print < min_interval_) return;
  last_print_ = now;
  print_line(done, std::chrono::duration<double>(now - start_).count());
}

void ProgressMeter::set_total(long long total) {
  MutexLock lock(mu_);
  total_ = total;
}

void ProgressMeter::finish() {
  MutexLock lock(mu_);
  if (finished_) return;
  finished_ = true;
  if (printed_) std::fprintf(stderr, "\r\033[K");
}

void ProgressMeter::print_line(long long done, double elapsed) {
  const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed : 0;
  std::string line = label_ + ": " + std::to_string(done);
  if (total_ > 0) line += "/" + std::to_string(total_);
  line += " cases";
  if (rate > 0) {
    line += ", " + std::to_string(static_cast<long long>(rate)) + "/s";
    if (total_ > 0 && done > 0 && done < total_) {
      line += ", ETA " + format_eta(static_cast<double>(total_ - done) / rate);
    }
  }
  std::fprintf(stderr, "\r\033[K%s", line.c_str());
  std::fflush(stderr);
  printed_ = true;
}

}  // namespace mcan
