// Raw-byte serialization helpers for machine-state digests.
//
// The model checker's tail memoization (scenario/model_check.cpp) needs an
// *exact* key for "the complete runtime state of every controller at the
// dedup cut": two cases may only share a memoized tail if their futures are
// bit-identical, so the key must cover every field that can influence
// future behaviour and must never collide.  Serializing the raw bytes of
// each field into a std::string gives an exact (collision-free) key;
// std::unordered_map then hashes the string internally, and a hash
// collision only costs an equality compare, never a wrong answer.
#pragma once

#include <string>
#include <type_traits>

namespace mcan::statekey {

/// Append the object representation of a trivially copyable value.
template <typename T>
void append(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>,
                "state keys are built from trivially copyable fields");
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

inline void append_bool(std::string& out, bool b) {
  out.push_back(b ? '\1' : '\0');
}

/// Field separator: guards against ambiguous concatenation of
/// variable-length parts (e.g. two adjacent containers).
inline void append_tag(std::string& out, char tag) { out.push_back(tag); }

}  // namespace mcan::statekey
