// Deterministic pseudo-random number generation for fault-injection
// campaigns.
//
// We implement PCG32 (O'Neill) rather than using std::mt19937 so that stream
// splitting is cheap and the generator state is tiny: campaigns spawn one
// independent stream per (node, trial) and must be reproducible across
// platforms from a single campaign seed.
#pragma once

#include <cstdint>

namespace mcan {

/// PCG32: 64-bit state, 32-bit output, selectable stream.
class Rng {
 public:
  /// `seq` selects one of 2^63 independent streams for the same seed.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t seq = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability `p`.
  bool chance(double p);

  /// Derive an independent child stream; `tag` distinguishes siblings.
  [[nodiscard]] Rng split(std::uint64_t tag) const;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace mcan
