#include "util/bitvec.hpp"

#include <stdexcept>

namespace mcan {

BitVec BitVec::from_string(const std::string& s) {
  BitVec v;
  for (char c : s) {
    if (c == ' ' || c == '\t') continue;
    v.push_back(level_from_char(c));
  }
  return v;
}

void BitVec::append_uint(std::uint32_t value, int width) {
  if (width < 0 || width > 32) throw std::invalid_argument("bad width");
  for (int i = width - 1; i >= 0; --i) {
    bits_.push_back(level_of(((value >> i) & 1u) != 0));
  }
}

std::uint32_t BitVec::read_uint(std::size_t pos, int width) const {
  if (width < 0 || width > 32 || pos + static_cast<std::size_t>(width) > size()) {
    throw std::out_of_range("read_uint out of range");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < width; ++i) {
    v = (v << 1) | (logical(bits_[pos + static_cast<std::size_t>(i)]) ? 1u : 0u);
  }
  return v;
}

void BitVec::append(const BitVec& other) {
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

void BitVec::append_repeated(Level l, std::size_t n) {
  bits_.insert(bits_.end(), n, l);
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(size());
  for (Level l : bits_) s.push_back(level_char(l));
  return s;
}

}  // namespace mcan
