// Clang thread-safety-analysis attribute shim.
//
// The lock discipline of the concurrent layers (src/serve/, the
// model-check tail memo, ProgressMeter) is machine-checked by Clang's
// -Wthread-safety analysis: mutex-guarded state is declared GUARDED_BY
// its mutex, functions that expect the lock held are declared REQUIRES,
// and a build with MCAN_THREAD_SAFETY=ON (see the top-level
// CMakeLists.txt; Clang only) turns any violation into a compile error.
// Under GCC — which has no such analysis — every macro expands to
// nothing, so the annotations are free documentation.
//
// The macro set follows the capability vocabulary of the Clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
// MCAN_ to stay out of other headers' namespaces.  util/mutex.hpp
// provides the annotated Mutex / lock types these macros attach to;
// std::mutex itself is not annotated by libstdc++, so guarding state
// with a bare std::mutex would make the analysis vacuous.
#pragma once

#if defined(__clang__)
#define MCAN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MCAN_THREAD_ANNOTATION_(x)
#endif

/// A type that represents a lock: holding it is a "capability".
#define MCAN_CAPABILITY(x) MCAN_THREAD_ANNOTATION_(capability(x))

/// RAII types whose lifetime equals a critical section.
#define MCAN_SCOPED_CAPABILITY MCAN_THREAD_ANNOTATION_(scoped_lockable)

/// Data that may only be touched while holding the given mutex.
#define MCAN_GUARDED_BY(x) MCAN_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer whose pointee may only be touched while holding the mutex.
#define MCAN_PT_GUARDED_BY(x) MCAN_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that must be called with the given mutex(es) held.
#define MCAN_REQUIRES(...) \
  MCAN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that must be called with the mutex(es) NOT held.
#define MCAN_EXCLUDES(...) MCAN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability (blocks until it does).
#define MCAN_ACQUIRE(...) \
  MCAN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define MCAN_RELEASE(...) \
  MCAN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `ret`.
#define MCAN_TRY_ACQUIRE(ret, ...) \
  MCAN_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Runtime assertion that the capability is held (no-op body).
#define MCAN_ASSERT_CAPABILITY(x) \
  MCAN_THREAD_ANNOTATION_(assert_capability(x))

/// Function returning a reference to the capability guarding it.
#define MCAN_RETURN_CAPABILITY(x) MCAN_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: exclude a function from the analysis entirely.
#define MCAN_NO_THREAD_SAFETY_ANALYSIS \
  MCAN_THREAD_ANNOTATION_(no_thread_safety_analysis)
