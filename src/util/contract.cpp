#include "util/contract.hpp"

#include <cstdio>
#include <cstdlib>

namespace mcan::detail {

void contract_failed(const char* condition, const char* message,
                     const char* file, int line) {
  std::fprintf(stderr, "MCAN contract violated: %s\n  %s:%d: %s\n", message,
               file, line, condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace mcan::detail
