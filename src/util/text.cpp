#include "util/text.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mcan {

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, v);
  return buf;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      out += pad_right(rows[r][c], widths[c] + 2);
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < rows[0].size(); ++c) {
        out += std::string(widths[c], '-') + "  ";
      }
      out += '\n';
    }
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\f': out += "\\f"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const int rc = std::fclose(f);
  return n == content.size() && rc == 0;
}

}  // namespace mcan
