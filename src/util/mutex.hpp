// Annotated mutex and lock types for Clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability
// attributes, so code guarded by them is invisible to -Wthread-safety.
// These thin wrappers add the attributes (util/thread_annotations.hpp)
// and nothing else: mcan::Mutex is a std::mutex, mcan::MutexLock is a
// lock_guard, and mcan::UniqueMutexLock is a unique_lock that exposes
// its native handle for std::condition_variable::wait.
//
// Usage discipline (enforced at compile time under MCAN_THREAD_SAFETY):
//
//   mutable Mutex mu_;
//   std::vector<Job> jobs_ MCAN_GUARDED_BY(mu_);
//   void merge_locked(Job& job) MCAN_REQUIRES(mu_);
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace mcan {

class MCAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MCAN_ACQUIRE() { mu_.lock(); }
  void unlock() MCAN_RELEASE() { mu_.unlock(); }
  bool try_lock() MCAN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for condition-variable waits.  The analysis does
  /// not model the wait's release/reacquire — which is sound: the lock is
  /// held again by the time wait returns.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard with capability annotations.
class MCAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MCAN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MCAN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock with capability annotations: relockable, and usable
/// with std::condition_variable via native().
class MCAN_SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) MCAN_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~UniqueMutexLock() MCAN_RELEASE() {}

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  void lock() MCAN_ACQUIRE() { lock_.lock(); }
  void unlock() MCAN_RELEASE() { lock_.unlock(); }

  /// For std::condition_variable::wait / wait_for.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace mcan
