// MCAN_ASSERT: debug-build contract checks for the protocol FSMs.
//
// Compiled in only when MCAN_ENABLE_CONTRACTS is defined (CMake option
// MCAN_CONTRACTS); release builds pay nothing.  Unlike the invariant
// analyzer — which observes the bus from outside and tolerates violations
// long enough to report them — a contract breach means the controller's own
// internal state is inconsistent, so the process aborts at the first one
// with file/line provenance.
#pragma once

namespace mcan::detail {

/// Prints the violated contract and aborts.  Out-of-line so the macro
/// expansion stays tiny and the header needs no <cstdio>/<cstdlib>.
[[noreturn]] void contract_failed(const char* condition, const char* message,
                                  const char* file, int line);

}  // namespace mcan::detail

#if defined(MCAN_ENABLE_CONTRACTS)
#define MCAN_ASSERT(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::mcan::detail::contract_failed(#cond, msg, __FILE__, __LINE__);  \
    }                                                                   \
  } while (false)
#else
#define MCAN_ASSERT(cond, msg) ((void)0)
#endif
