#include "util/rng.hpp"

namespace mcan {

namespace {
constexpr std::uint64_t kMult = 6364136223846793005ULL;

// SplitMix64 step: used to hash seeds/tags into well-mixed stream parameters.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t seq) : state_(0), inc_((seq << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  std::uint64_t old = state_;
  state_ = old * kMult + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  if (bound == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random bits into [0,1).
  std::uint64_t hi = next_u32();
  std::uint64_t lo = next_u32();
  std::uint64_t v = ((hi << 32) | lo) >> 11;
  return static_cast<double>(v) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split(std::uint64_t tag) const {
  std::uint64_t mix = state_ ^ (inc_ * 0x9e3779b97f4a7c15ULL);
  std::uint64_t a = mix + tag;
  std::uint64_t seed = splitmix64(a);
  std::uint64_t seq = splitmix64(a);
  return Rng(seed, seq);
}

}  // namespace mcan
