#include "analysis/tuning.hpp"

#include <cmath>

#include "util/text.hpp"

namespace mcan {

double binomial_pmf(int n, int k, double p) {
  if (k < 0 || k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  // log-space to survive n ~ thousands.
  double log_pmf = std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
                   std::lgamma(n - k + 1.0) + k * std::log(p) +
                   (n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double p_more_than_m_errors_per_frame(const ModelParams& p, int m) {
  const int n = p.n_nodes * p.frame_bits;
  const double q = p.ber_star();
  // Sum the upper tail directly: 1 - CDF cancels catastrophically once the
  // tail drops below double-precision epsilon, and these tails go far
  // below 1e-16 for realistic ber.
  double tail = 0.0;
  for (int k = m + 1; k <= n; ++k) {
    const double term = binomial_pmf(n, k, q);
    tail += term;
    if (term < tail * 1e-18 && k > m + 3) break;
  }
  return tail;
}

double residual_exposure_per_hour(const ModelParams& p, int m) {
  return p_more_than_m_errors_per_frame(p, m) * p.frames_per_hour();
}

std::vector<TuningRow> tuning_table(const ModelParams& p, int m_max) {
  std::vector<TuningRow> rows;
  for (int m = 3; m <= m_max; ++m) {
    TuningRow r;
    r.m = m;
    r.p_exceed_per_frame = p_more_than_m_errors_per_frame(p, m);
    r.exposure_per_hour = residual_exposure_per_hour(p, m);
    // Paper §5/§6 overhead formulas (kept in sync with ProtocolParams).
    r.overhead_bits_best = 2 * m - 7;
    r.overhead_bits_worst = 4 * m - 9;
    rows.push_back(r);
  }
  return rows;
}

int recommend_m(const ModelParams& p, double target_per_hour, int m_max) {
  for (int m = 3; m <= m_max; ++m) {
    if (residual_exposure_per_hour(p, m) <= target_per_hour) return m;
  }
  return m_max + 1;
}

std::string render_tuning_table(const std::vector<TuningRow>& rows) {
  std::vector<std::vector<std::string>> cells;
  cells.push_back({"m", "P{>m errors}/frame", "exposure/hour",
                   "overhead best", "overhead worst"});
  for (const TuningRow& r : rows) {
    cells.push_back({std::to_string(r.m), sci(r.p_exceed_per_frame),
                     sci(r.exposure_per_hour),
                     std::to_string(r.overhead_bits_best) + " bits",
                     std::to_string(r.overhead_bits_worst) + " bits"});
  }
  return render_table(cells);
}

}  // namespace mcan
