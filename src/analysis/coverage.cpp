#include "analysis/coverage.hpp"

#include <algorithm>
#include <array>

namespace mcan {

namespace {

using S = FsmState;

struct EdgeSpec {
  S from;
  S to;
};

// The expected transition relation, derived edge-by-edge from the
// controller's drive()/sample() rules (core/controller.cpp) and the
// paper's protocol descriptions.  Shared edges first.
constexpr EdgeSpec kCommonEdges[] = {
    // Frame start: an idle node either wins the bus or hears SOF.
    {S::Idle, S::Tx},
    {S::Idle, S::Rx},
    // A transmitter loses arbitration back into reception, finishes the
    // frame, or detects an error (active or passive flag by TEC state).
    {S::Tx, S::Rx},
    {S::Tx, S::Intermission},
    {S::Tx, S::ErrorFlag},
    {S::Tx, S::PassiveFlag},
    // Receiver pipeline: body -> ACK/CRC-delimiter tail -> EOF.
    {S::Rx, S::RxTail},
    {S::Rx, S::ErrorFlag},
    {S::Rx, S::PassiveFlag},
    {S::RxTail, S::RxEof},
    {S::RxTail, S::ErrorFlag},
    {S::RxTail, S::PassiveFlag},
    {S::RxEof, S::Intermission},
    {S::RxEof, S::ErrorFlag},
    {S::RxEof, S::PassiveFlag},
    // Every flag is followed by the delimiter wait-for-recessive, then the
    // delimiter proper.
    {S::ErrorFlag, S::DelimWait},
    {S::PassiveFlag, S::DelimWait},
    {S::OverloadFlag, S::DelimWait},
    {S::DelimWait, S::Delim},
    // A delimiter ends cleanly or is itself disturbed (new flag, or an
    // overload condition on its tail).
    {S::Delim, S::Intermission},
    {S::Delim, S::OverloadFlag},
    {S::Delim, S::ErrorFlag},
    {S::Delim, S::PassiveFlag},
    // Intermission: overload on its first two bits, SOF cutting it short,
    // clean return to idle, or the error-passive transmitter suspend.
    {S::Intermission, S::OverloadFlag},
    {S::Intermission, S::Rx},
    {S::Intermission, S::Idle},
    {S::Intermission, S::Suspend},
    {S::Suspend, S::Rx},
    {S::Suspend, S::Idle},
    // Bus-off auto-recovery overrides the end-game states a node can be in
    // when its TEC crosses the limit; recovery completes to Idle.
    {S::PassiveFlag, S::BusOffWait},
    {S::DelimWait, S::BusOffWait},
    {S::Delim, S::BusOffWait},
    {S::BusOffWait, S::Idle},
};

// Standard CAN only: the last-EOF-bit rule accepts the frame and raises an
// overload condition straight from RxEof (MinorCAN turns the same sample
// into Primary_error -> ErrorFlag, already expected above).
constexpr EdgeSpec kCanOnlyEdges[] = {
    {S::RxEof, S::OverloadFlag},
};

// MajorCAN only: split-EOF end-game (paper §5).
constexpr EdgeSpec kMajorOnlyEdges[] = {
    // Second-sub-field error: accept + notify with an extended flag.
    {S::Tx, S::ExtFlag},
    {S::RxEof, S::ExtFlag},
    // First-sub-field error: regular flag, then the majority-vote sampling
    // window instead of an immediate delimiter.
    {S::ErrorFlag, S::Sampling},
    {S::PassiveFlag, S::Sampling},
    // Both end-game arms converge on the fixed 2m+1 delimiter.
    {S::Sampling, S::Delim},
    {S::ExtFlag, S::Delim},
    // Second-error suppression normally keeps a sampler sampling; with the
    // ablation knob off, a second error restarts the flag.
    {S::Sampling, S::ErrorFlag},
    {S::Sampling, S::PassiveFlag},
};

const char* variant_label(Variant v) { return variant_name(v); }

}  // namespace

std::vector<FsmEdge> expected_fsm_transitions(Variant v) {
  std::vector<FsmEdge> out;
  auto add = [&out](const EdgeSpec* specs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back({specs[i].from, specs[i].to, 0});
    }
  };
  add(kCommonEdges, std::size(kCommonEdges));
  if (v == Variant::StandardCan) {
    add(kCanOnlyEdges, std::size(kCanOnlyEdges));
  }
  if (v == Variant::MajorCan) {
    add(kMajorOnlyEdges, std::size(kMajorOnlyEdges));
  }
  std::sort(out.begin(), out.end(), [](const FsmEdge& a, const FsmEdge& b) {
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  return out;
}

FsmCoverageReport collect_fsm_coverage(Variant v) {
  FsmCoverageReport rep;
  rep.variant = v;
  rep.instrumented = fsm_coverage_compiled();

  const std::vector<FsmEdge> expected = expected_fsm_transitions(v);
  if (!rep.instrumented) {
    rep.never_exercised = expected;
    return rep;
  }

  const std::vector<FsmTransitionCount> seen = fsm_coverage::snapshot(v);
  auto is_expected = [&expected](FsmState f, FsmState t) {
    return std::any_of(expected.begin(), expected.end(),
                       [&](const FsmEdge& e) {
                         return e.from == f && e.to == t;
                       });
  };
  auto seen_count = [&seen](FsmState f, FsmState t) -> std::uint64_t {
    for (const auto& s : seen) {
      if (s.from == f && s.to == t) return s.count;
    }
    return 0;
  };

  for (const auto& s : seen) {
    rep.visited.push_back({s.from, s.to, s.count});
    if (!is_expected(s.from, s.to)) {
      rep.unexpected.push_back({s.from, s.to, s.count});
    }
  }
  for (const auto& e : expected) {
    if (seen_count(e.from, e.to) == 0) rep.never_exercised.push_back(e);
  }

  // States relevant to this variant (appear in the expected relation),
  // minus those actually entered.
  std::array<bool, kFsmStateCount> relevant{}, entered{};
  relevant[static_cast<int>(S::Idle)] = true;  // initial state
  for (const auto& e : expected) {
    relevant[static_cast<int>(e.from)] = true;
    relevant[static_cast<int>(e.to)] = true;
  }
  entered[static_cast<int>(S::Idle)] = true;
  for (const auto& s : seen) {
    entered[static_cast<int>(s.from)] = true;
    entered[static_cast<int>(s.to)] = true;
  }
  for (int i = 0; i < kFsmStateCount; ++i) {
    if (relevant[i] && !entered[i]) {
      rep.unreached_states.push_back(static_cast<FsmState>(i));
    }
  }
  return rep;
}

double FsmCoverageReport::transition_coverage() const {
  // Expected edges with hits = visited minus the unexpected ones.
  const std::size_t exercised = visited.size() - unexpected.size();
  const std::size_t expected_total = exercised + never_exercised.size();
  if (expected_total == 0) return 0.0;
  return static_cast<double>(exercised) /
         static_cast<double>(expected_total);
}

std::string FsmCoverageReport::summary() const {
  std::string s = "FSM transition coverage [";
  s += variant_label(variant);
  s += "]";
  if (!instrumented) {
    s += ": NOT INSTRUMENTED (build with -DMCAN_FSM_COVERAGE=ON)\n";
    return s;
  }
  const std::size_t exercised =
      visited.size() - unexpected.size();  // expected edges with hits
  const std::size_t expected_total = exercised + never_exercised.size();
  s += ": " + std::to_string(exercised) + "/" +
       std::to_string(expected_total) + " expected transitions exercised\n";
  if (!never_exercised.empty()) {
    s += "  never exercised:\n";
    for (const auto& e : never_exercised) {
      s += "    " + std::string(fsm_state_name(e.from)) + " -> " +
           fsm_state_name(e.to) + "\n";
    }
  }
  if (!unexpected.empty()) {
    s += "  UNEXPECTED transitions (controller bug or stale model):\n";
    for (const auto& e : unexpected) {
      s += "    " + std::string(fsm_state_name(e.from)) + " -> " +
           fsm_state_name(e.to) + " (x" + std::to_string(e.count) + ")\n";
    }
  }
  if (!unreached_states.empty()) {
    s += "  states never entered:";
    for (const auto st : unreached_states) {
      s += " " + std::string(fsm_state_name(st));
    }
    s += "\n";
  }
  return s;
}

namespace {

void append_edge_array(std::string& s, const std::vector<FsmEdge>& edges,
                       bool with_counts) {
  s += "[";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i) s += ",";
    s += "{\"from\":\"";
    s += fsm_state_name(edges[i].from);
    s += "\",\"to\":\"";
    s += fsm_state_name(edges[i].to);
    s += "\"";
    if (with_counts) {
      s += ",\"count\":" + std::to_string(edges[i].count);
    }
    s += "}";
  }
  s += "]";
}

}  // namespace

std::string FsmCoverageReport::to_json() const {
  std::string s = "{\"variant\":\"";
  s += variant_label(variant);
  s += "\",\"instrumented\":";
  s += instrumented ? "true" : "false";
  s += ",\"transition_coverage\":" + std::to_string(transition_coverage());
  s += ",\"visited\":";
  append_edge_array(s, visited, true);
  s += ",\"never_exercised\":";
  append_edge_array(s, never_exercised, false);
  s += ",\"unexpected\":";
  append_edge_array(s, unexpected, true);
  s += ",\"unreached_states\":[";
  for (std::size_t i = 0; i < unreached_states.size(); ++i) {
    if (i) s += ",";
    s += "\"";
    s += fsm_state_name(unreached_states[i]);
    s += "\"";
  }
  s += "]}";
  return s;
}

}  // namespace mcan
