#include "analysis/static/analyze.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "util/text.hpp"

namespace mcan::sa {

namespace fs = std::filesystem;

std::vector<std::string> AnalyzeConfig::default_wallclock_allow() {
  // The audited whitelist.  Every entry is a benchmark or a
  // latency/liveness mechanism whose clock reads never reach result
  // bytes (serve zeroes the "seconds" stats field before comparing
  // served to local output; docs/STATIC_ANALYSIS.md has the audit).
  return {
      "bench/",                    // benchmarks measure time by definition
      "tests/",                    // test timeouts / throughput assertions
      "src/util/progress",         // ETA display on stderr
      "src/serve/queue",           // uptime + units/s stats endpoint
      "src/serve/worker",          // heartbeat liveness timestamps
      "src/fuzz/engine",           // execs/s stats + --max-time budget
      "src/scenario/model_check",  // sweep elapsed-seconds reporting
      "src/rare/campaign",         // campaign elapsed-seconds reporting
  };
}

namespace {

bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool matches_any(const std::string& rel,
                 const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&](const std::string& p) { return has_prefix(rel, p); });
}

bool finding_order(const StaticFinding& a, const StaticFinding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

}  // namespace

std::string relativize(const std::string& root, const std::string& path) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) return path;
  const std::string s = rel.generic_string();
  if (has_prefix(s, "..")) return path;
  return s;
}

std::vector<StaticFinding> analyze_source(
    const std::string& file, const std::string& content,
    const AnalyzeConfig& cfg, std::vector<StaticFinding>* suppressed_out) {
  RuleContext ctx;
  ctx.file = file;
  ctx.wallclock_allowed = matches_any(file, cfg.wallclock_allow);
  ctx.only_rules = cfg.only_rules;

  const LexOutput lexed = lex(content);
  std::vector<StaticFinding> raw;
  run_rules(lexed, ctx, raw);

  std::vector<StaticFinding> out;
  // Malformed directives are findings: a typo must not silently allow
  // nothing (or everything).
  for (const auto& [line, why] : lexed.bad_directives) {
    out.push_back({"bad-directive", file, line, why});
  }

  std::vector<bool> used(lexed.suppressions.size(), false);
  for (StaticFinding& f : raw) {
    bool silenced = false;
    for (std::size_t i = 0; i < lexed.suppressions.size(); ++i) {
      const Suppression& s = lexed.suppressions[i];
      const bool covers =
          f.line == s.line || (s.own_line && f.line == s.line + 1);
      if (!covers) continue;
      if (std::find(s.rules.begin(), s.rules.end(), f.rule) ==
          s.rules.end()) {
        continue;
      }
      used[i] = true;
      if (s.reason.empty()) {
        out.push_back({"suppression-missing-reason", file, s.line,
                       "allow(" + f.rule +
                           ") has no reason; every suppression must say why "
                           "the pattern is sound here"});
      }
      silenced = true;
      break;
    }
    if (silenced) {
      if (suppressed_out != nullptr) suppressed_out->push_back(std::move(f));
    } else {
      out.push_back(std::move(f));
    }
  }
  for (std::size_t i = 0; i < lexed.suppressions.size(); ++i) {
    if (used[i]) continue;
    std::string rules;
    for (const std::string& r : lexed.suppressions[i].rules) {
      rules += (rules.empty() ? "" : ",") + r;
    }
    out.push_back({"unused-suppression", file, lexed.suppressions[i].line,
                   "allow(" + rules +
                       ") suppresses nothing; delete it (stale whitelist "
                       "entries hide future violations)"});
  }
  return out;
}

AnalyzeReport analyze_paths(const std::string& root,
                            const std::vector<std::string>& paths,
                            const AnalyzeConfig& cfg) {
  AnalyzeReport report;
  for (const std::string& path : paths) {
    const std::string rel = relativize(root, path);
    if (matches_any(rel, cfg.exclude)) continue;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      report.findings.push_back(
          {"io-error", rel, 0, "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    ++report.files_scanned;
    std::vector<StaticFinding> suppressed;
    std::vector<StaticFinding> found =
        analyze_source(rel, buf.str(), cfg, &suppressed);
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
    report.suppressed.insert(report.suppressed.end(),
                             std::make_move_iterator(suppressed.begin()),
                             std::make_move_iterator(suppressed.end()));
  }
  std::sort(report.findings.begin(), report.findings.end(), finding_order);
  std::sort(report.suppressed.begin(), report.suppressed.end(),
            finding_order);
  return report;
}

bool collect_files(const std::string& compdb_path, const std::string& root,
                   const AnalyzeConfig& cfg, std::vector<std::string>& out,
                   std::string& error) {
  (void)cfg;  // excludes are applied at analysis time (analyze_paths)
  std::ifstream in(compdb_path, std::ios::binary);
  if (!in) {
    error = compdb_path +
            ": cannot open compilation database (configure the build "
            "first: cmake --preset relwithdebinfo)";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string db = buf.str();

  std::set<std::string> files;
  // Minimal extraction of "file": "<path>" entries — the database format
  // is fixed (CMake writes it) and the analyzer must not depend on the
  // serving layer's JSON parser.
  const std::string key = "\"file\"";
  for (std::size_t pos = db.find(key); pos != std::string::npos;
       pos = db.find(key, pos + key.size())) {
    std::size_t i = pos + key.size();
    while (i < db.size() &&
           (db[i] == ' ' || db[i] == ':' || db[i] == '\t')) {
      ++i;
    }
    if (i >= db.size() || db[i] != '"') continue;
    std::string path;
    for (++i; i < db.size() && db[i] != '"'; ++i) {
      if (db[i] == '\\' && i + 1 < db.size()) ++i;
      path.push_back(db[i]);
    }
    if (!relativize(root, path).empty() && path != relativize(root, path)) {
      files.insert(path);
    }
  }
  if (files.empty()) {
    error = compdb_path + ": no source files under " + root;
    return false;
  }
  // Headers: not in the database, but full of rule-relevant code.
  for (const char* dir : {"src", "examples", "bench", "tests"}) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".h") {
        files.insert(it->path().string());
      }
    }
  }
  out.assign(files.begin(), files.end());
  std::sort(out.begin(), out.end());
  return true;
}

std::string format_text(const AnalyzeReport& report) {
  std::string s;
  for (const StaticFinding& f : report.findings) {
    s += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message + "\n";
  }
  s += std::to_string(report.files_scanned) + " files scanned, " +
       std::to_string(report.findings.size()) + " finding" +
       (report.findings.size() == 1 ? "" : "s") + ", " +
       std::to_string(report.suppressed.size()) + " suppressed\n";
  return s;
}

std::string format_json(const AnalyzeReport& report) {
  auto finding_json = [](const StaticFinding& f) {
    return std::string("{\"file\":\"") + json_escape(f.file) +
           "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
           json_escape(f.rule) + "\",\"message\":\"" + json_escape(f.message) +
           "\"}";
  };
  std::string s = "{\n  \"files_scanned\": " +
                  std::to_string(report.files_scanned) +
                  ",\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    s += (i == 0 ? "\n    " : ",\n    ") + finding_json(report.findings[i]);
  }
  s += report.findings.empty() ? "]" : "\n  ]";
  s += ",\n  \"suppressed\": [";
  for (std::size_t i = 0; i < report.suppressed.size(); ++i) {
    s += (i == 0 ? "\n    " : ",\n    ") + finding_json(report.suppressed[i]);
  }
  s += report.suppressed.empty() ? "]" : "\n  ]";
  s += ",\n  \"clean\": ";
  s += report.clean() ? "true" : "false";
  s += "\n}\n";
  return s;
}

}  // namespace mcan::sa
