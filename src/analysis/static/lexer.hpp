// Token-level C++ scanner for mcan-analyze (src/analysis/static/).
//
// The determinism rules (rules.hpp) work on token streams, not ASTs: no
// libclang dependency, no build-flag replication — just the source
// bytes.  The scanner understands exactly as much C++ lexing as the
// rules need to be reliable:
//
//   - comments are skipped as code but parsed for suppression
//     directives — the `allow(<rule>[,<rule>...]) <reason>` form after
//     the tool's comment key (docs/STATIC_ANALYSIS.md has the syntax);
//   - string / char literals (including raw strings) become single
//     String/Char tokens, so `printf("rand()")` never trips a rule;
//   - multi-char operators that matter for scanning (`::`, `->`, `<<`,
//     `>>`) are single tokens, so `a::b` is never mistaken for a
//     template bracket and `std::unordered_map` is three tokens;
//   - every token carries its 1-based source line.
//
// Anything subtler (preprocessor conditionals, template disambiguation)
// is intentionally out of scope; the rules are written to tolerate it
// and docs/STATIC_ANALYSIS.md documents the lexical limits.
#pragma once

#include <string>
#include <vector>

namespace mcan::sa {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
};

/// One `allow(...)` suppression directive found in a comment (after the
/// tool's comment key; see kDirectiveKey in lexer.cpp).
struct Suppression {
  std::vector<std::string> rules;  ///< rule ids the directive names
  std::string reason;              ///< free text after the ')'
  int line = 1;                    ///< line the directive appears on
  /// True when the comment is the first thing on its line: the
  /// suppression then also covers the next source line (the common
  /// "comment above the offending statement" style).  A trailing
  /// comment covers only its own line.
  bool own_line = false;
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  /// Directives that failed to parse (e.g. `allow` without a rule
  /// list); reported as findings so typos cannot silently disable
  /// nothing.
  std::vector<std::pair<int, std::string>> bad_directives;
};

/// Scan a whole source text.  Never fails: unterminated literals are
/// closed at end of file.
[[nodiscard]] LexOutput lex(const std::string& source);

}  // namespace mcan::sa
