// mcan-analyze driver: file collection, suppression matching, reports.
//
// The analyzer's file list comes from the build's own
// compile_commands.json (every compiled .cpp, no path guessing) plus a
// walk for headers under src/, examples/, bench/ and tests/ — headers
// never appear in the compilation database but carry rule-relevant code
// (statekey.hpp, engine headers).  docs/STATIC_ANALYSIS.md is the
// operator manual: rule catalog, suppression syntax, whitelist policy.
#pragma once

#include <string>
#include <vector>

#include "analysis/static/rules.hpp"

namespace mcan::sa {

struct AnalyzeConfig {
  /// Files (repo-relative path prefixes) where wall-clock reads are
  /// legitimate: benchmarks, progress/ETA display, heartbeat liveness,
  /// throughput stats.  The default list is the audited one; see
  /// docs/STATIC_ANALYSIS.md before extending it.
  std::vector<std::string> wallclock_allow = default_wallclock_allow();

  /// Repo-relative path prefixes never scanned (committed rule-violation
  /// fixtures for the analyzer's own tests).
  std::vector<std::string> exclude = {"tests/fixtures/"};

  /// Empty = all rules; otherwise only these rule ids.
  std::vector<std::string> only_rules;

  [[nodiscard]] static std::vector<std::string> default_wallclock_allow();
};

struct AnalyzeReport {
  /// Unsuppressed findings (includes meta findings: bad-directive,
  /// suppression-missing-reason, unused-suppression), sorted by
  /// file/line/rule.
  std::vector<StaticFinding> findings;
  /// Findings silenced by a well-formed allow(...) with a reason.
  std::vector<StaticFinding> suppressed;
  int files_scanned = 0;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Analyze one in-memory source; `file` is the path used in findings and
/// matched against the config's path-prefix lists.
[[nodiscard]] std::vector<StaticFinding> analyze_source(
    const std::string& file, const std::string& content,
    const AnalyzeConfig& cfg, std::vector<StaticFinding>* suppressed = nullptr);

/// Analyze files on disk.  `paths` are absolute or cwd-relative;
/// `root` is the repo root they are reported (and matched) relative to.
[[nodiscard]] AnalyzeReport analyze_paths(const std::string& root,
                                          const std::vector<std::string>& paths,
                                          const AnalyzeConfig& cfg);

/// Build the file list: every repo file named in compile_commands.json
/// plus headers under src/, examples/, bench/, tests/.  False with a
/// message when the database is missing or unreadable.
[[nodiscard]] bool collect_files(const std::string& compdb_path,
                                 const std::string& root,
                                 const AnalyzeConfig& cfg,
                                 std::vector<std::string>& out,
                                 std::string& error);

/// `file:line: [rule] message` lines, one per finding.
[[nodiscard]] std::string format_text(const AnalyzeReport& report);

/// Deterministic JSON report (findings, suppressed, counters).
[[nodiscard]] std::string format_json(const AnalyzeReport& report);

/// Repo-relative form of `path` under `root` ("" when outside).
[[nodiscard]] std::string relativize(const std::string& root,
                                     const std::string& path);

}  // namespace mcan::sa
