// Determinism & async-signal-safety rules for mcan-analyze.
//
// Every guarantee the campaign engines sell — served results
// byte-identical to local runs, jobs-count-independent estimates,
// kill -9 resume byte-identity — holds only while result-producing code
// is deterministic.  These rules turn that discipline from convention
// into a gate (the MajorCAN stance: consistency by mechanism, not by
// care):
//
//   nondet-random         rand()/srand()/random_device &c: unseeded or
//                         process-varying entropy in result code.
//   nondet-hash           std::hash<...> instantiations: hash values are
//                         implementation-defined and (for pointers)
//                         run-varying; they must never order or key
//                         anything that reaches output.
//   nondet-pointer-key    std::map/std::set keyed by a pointer type:
//                         iteration order = allocation order = run-varying.
//   nondet-unordered-iter iteration (range-for / .begin()) over a
//                         std::unordered_{map,set,...} declared in the
//                         same file: bucket order is unspecified and
//                         changes across libraries; sort before emitting.
//   wallclock             steady_clock/system_clock & friends outside the
//                         benchmark/latency file whitelist: wall-clock
//                         values in result paths break byte-identity.
//   signal-safety         signal handlers may only touch
//                         volatile std::sig_atomic_t globals, lock-free
//                         std::atomic globals (static_assert'ed
//                         is_always_lock_free in the same file), and the
//                         async-signal-safe call allowlist (_exit, write,
//                         signal, abort, raise, kill).
//
// Findings are suppressed inline with an `allow(<rule>) <reason>`
// comment directive (docs/STATIC_ANALYSIS.md has the exact syntax)
// on the offending line or alone on the line above; the reason is
// mandatory and unused suppressions are themselves findings, so the
// whitelist can never rot silently.
#pragma once

#include <string>
#include <vector>

#include "analysis/static/lexer.hpp"

namespace mcan::sa {

struct StaticFinding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;

  friend bool operator==(const StaticFinding&, const StaticFinding&) = default;
};

struct RuleContext {
  std::string file;              ///< path as reported in findings
  bool wallclock_allowed = false;  ///< file is on the wallclock whitelist
  /// Empty = run every rule; otherwise only the named ones.
  std::vector<std::string> only_rules;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule catalog, in report order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Run every (enabled) rule over one file's tokens.  Appends raw
/// findings; suppression matching happens in analyze.cpp.
void run_rules(const LexOutput& lexed, const RuleContext& ctx,
               std::vector<StaticFinding>& out);

}  // namespace mcan::sa
