#include "analysis/static/rules.hpp"

#include <algorithm>
#include <initializer_list>
#include <map>
#include <set>
#include <string>

namespace mcan::sa {

namespace {

using Tokens = std::vector<Token>;

bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

/// Keywords that look like calls (`if (...)`) to a token matcher.
bool is_cpp_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "while",    "for",        "switch",  "return",
      "sizeof",   "alignof",  "decltype",   "catch",   "throw",
      "new",      "delete",   "co_await",   "co_return", "co_yield",
      "noexcept", "typeid",   "static_cast", "const_cast",
      "dynamic_cast", "reinterpret_cast", "static_assert", "assert"};
  return kKeywords.count(s) != 0;
}

bool any_of_ident(const Token& t, std::initializer_list<const char*> names) {
  if (t.kind != TokKind::kIdent) return false;
  return std::any_of(names.begin(), names.end(),
                     [&](const char* n) { return t.text == n; });
}

/// Token at i-1 / i-2 (default-constructed punct when out of range).
const Token& prev(const Tokens& ts, std::size_t i, std::size_t back = 1) {
  static const Token none{};
  return i >= back ? ts[i - back] : none;
}

/// True when the identifier at `i` is a member access (`x.rand()`),
/// or qualified by a namespace other than std (`mylib::rand()`).
bool is_member_or_foreign(const Tokens& ts, std::size_t i) {
  const Token& p = prev(ts, i);
  if (p.text == "." || p.text == "->") return true;
  if (p.text == "::") {
    const Token& q = prev(ts, i, 2);
    if (q.kind == TokKind::kIdent && q.text != "std") return true;
  }
  return false;
}

/// With ts[i] == "<", return the index one past the matching ">".
/// Treats ">>" as two closes.  Returns i when this cannot be a template
/// argument list (unbalanced before ';' / '{' or too long).
std::size_t skip_template(const Tokens& ts, std::size_t i) {
  if (i >= ts.size() || ts[i].text != "<") return i;
  int depth = 0;
  for (std::size_t j = i; j < ts.size() && j < i + 256; ++j) {
    const std::string& t = ts[j].text;
    if (t == "<") ++depth;
    else if (t == "<<") depth += 2;
    else if (t == ">") --depth;
    else if (t == ">>") depth -= 2;
    else if (t == ";" || t == "{") return i;
    if (depth <= 0) return j + 1;
  }
  return i;
}

/// First template argument of the list opened at ts[i] == "<", as tokens.
std::vector<const Token*> first_template_arg(const Tokens& ts, std::size_t i) {
  std::vector<const Token*> arg;
  if (i >= ts.size() || ts[i].text != "<") return arg;
  int depth = 0;
  for (std::size_t j = i; j < ts.size() && j < i + 256; ++j) {
    const std::string& t = ts[j].text;
    if (t == "<") ++depth;
    else if (t == "<<") depth += 2;
    else if (t == ">") --depth;
    else if (t == ">>") depth -= 2;
    if (depth <= 0) break;
    if (depth == 1 && t == ",") break;
    if (j > i) arg.push_back(&ts[j]);
  }
  return arg;
}

void add(std::vector<StaticFinding>& out, const RuleContext& ctx,
         const char* rule, int line, std::string message) {
  if (!ctx.only_rules.empty() &&
      std::find(ctx.only_rules.begin(), ctx.only_rules.end(), rule) ==
          ctx.only_rules.end()) {
    return;
  }
  out.push_back(StaticFinding{rule, ctx.file, line, std::move(message)});
}

// --- nondet-random ----------------------------------------------------------

void rule_random(const Tokens& ts, const RuleContext& ctx,
                 std::vector<StaticFinding>& out) {
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (t.kind != TokKind::kIdent) continue;
    if (is_member_or_foreign(ts, i)) continue;
    if (t.text == "random_device") {
      add(out, ctx, "nondet-random", t.line,
          "std::random_device draws per-process entropy; results built on "
          "it can never be reproduced from a seed");
      continue;
    }
    const bool call = i + 1 < ts.size() && ts[i + 1].text == "(";
    if (!call) continue;
    if (any_of_ident(t, {"rand", "srand", "rand_r", "drand48", "lrand48",
                         "mrand48", "random", "srandom"})) {
      add(out, ctx, "nondet-random", t.line,
          "'" + t.text +
              "()' uses hidden global RNG state; use util/rng.hpp Rng "
              "streams keyed by (seed, index) instead");
    }
  }
}

// --- nondet-hash ------------------------------------------------------------

void rule_hash(const Tokens& ts, const RuleContext& ctx,
               std::vector<StaticFinding>& out) {
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_ident(ts[i], "hash")) continue;
    if (prev(ts, i).text != "::" || !is_ident(prev(ts, i, 2), "std")) continue;
    if (ts[i + 1].text != "<") continue;
    const auto arg = first_template_arg(ts, i + 1);
    const bool pointer =
        std::any_of(arg.begin(), arg.end(),
                    [](const Token* t) { return t->text == "*"; });
    add(out, ctx, "nondet-hash", ts[i].line,
        pointer ? std::string(
                      "std::hash over a pointer type: the value is the "
                      "address, different every run")
                : std::string(
                      "std::hash value is implementation-defined; it must "
                      "not order, select, or key anything that reaches "
                      "serialized output"));
  }
}

// --- nondet-pointer-key -----------------------------------------------------

void rule_pointer_key(const Tokens& ts, const RuleContext& ctx,
                      std::vector<StaticFinding>& out) {
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    const Token& t = ts[i];
    if (!any_of_ident(t, {"map", "set", "multimap", "multiset"})) continue;
    if (prev(ts, i).text != "::" || !is_ident(prev(ts, i, 2), "std")) continue;
    if (ts[i + 1].text != "<") continue;
    const auto arg = first_template_arg(ts, i + 1);
    if (std::any_of(arg.begin(), arg.end(),
                    [](const Token* a) { return a->text == "*"; })) {
      add(out, ctx, "nondet-pointer-key", t.line,
          "std::" + t.text +
              " keyed by a pointer: iteration order is allocation order, "
              "different every run; key by a stable id instead");
    }
  }
}

// --- nondet-unordered-iter --------------------------------------------------

void rule_unordered_iter(const Tokens& ts, const RuleContext& ctx,
                         std::vector<StaticFinding>& out) {
  // Pass 1: names declared (in this file) with an unordered type.
  std::set<std::string> unordered;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!any_of_ident(ts[i], {"unordered_map", "unordered_set",
                              "unordered_multimap", "unordered_multiset"})) {
      continue;
    }
    std::size_t j = skip_template(ts, i + 1);
    if (j == i + 1) continue;  // no template args: a using-decl or mention
    while (j < ts.size() &&
           (ts[j].text == "&" || ts[j].text == "*" ||
            is_ident(ts[j], "const"))) {
      ++j;
    }
    if (j < ts.size() && ts[j].kind == TokKind::kIdent) {
      unordered.insert(ts[j].text);
    }
  }
  if (unordered.empty()) return;

  for (std::size_t i = 0; i < ts.size(); ++i) {
    // Range-for over a tracked container.
    if (is_ident(ts[i], "for") && i + 1 < ts.size() &&
        ts[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < ts.size() && j < i + 128; ++j) {
        if (ts[j].text == "(") ++depth;
        else if (ts[j].text == ")") {
          if (--depth == 0) { close = j; break; }
        } else if (ts[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (ts[j].kind == TokKind::kIdent &&
              unordered.count(ts[j].text) != 0 &&
              prev(ts, j).text != "." && prev(ts, j).text != "->") {
            add(out, ctx, "nondet-unordered-iter", ts[j].line,
                "range-for over unordered container '" + ts[j].text +
                    "': bucket order is unspecified; copy to a sorted "
                    "container before iterating into results");
            break;
          }
        }
      }
      continue;
    }
    // Explicit iterator loops: tracked.begin() / .cbegin() / .rbegin().
    if (ts[i].kind == TokKind::kIdent && unordered.count(ts[i].text) != 0 &&
        i + 3 < ts.size() &&
        (ts[i + 1].text == "." || ts[i + 1].text == "->") &&
        any_of_ident(ts[i + 2], {"begin", "cbegin", "rbegin", "crbegin"}) &&
        ts[i + 3].text == "(") {
      add(out, ctx, "nondet-unordered-iter", ts[i].line,
          "iterator walk over unordered container '" + ts[i].text +
              "': bucket order is unspecified; sort before emitting");
    }
  }
}

// --- wallclock --------------------------------------------------------------

void rule_wallclock(const Tokens& ts, const RuleContext& ctx,
                    std::vector<StaticFinding>& out) {
  if (ctx.wallclock_allowed) return;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (t.kind != TokKind::kIdent) continue;
    if (any_of_ident(t, {"steady_clock", "system_clock",
                         "high_resolution_clock"})) {
      if (prev(ts, i).text == "." || prev(ts, i).text == "->") continue;
      add(out, ctx, "wallclock", t.line,
          "'" + t.text +
              "' read outside the benchmark/latency whitelist: wall-clock "
              "values must never influence campaign results (zero them in "
              "serialized output, or whitelist the file)");
      continue;
    }
    const bool call = i + 1 < ts.size() && ts[i + 1].text == "(";
    if (!call) continue;
    if (any_of_ident(t, {"gettimeofday", "clock_gettime", "timespec_get"}) &&
        !is_member_or_foreign(ts, i)) {
      add(out, ctx, "wallclock", t.line,
          "'" + t.text + "()' outside the benchmark/latency whitelist");
      continue;
    }
    // Bare `time(` / `clock(` are too ambiguous; require qualification.
    if (any_of_ident(t, {"time", "clock"}) && prev(ts, i).text == "::") {
      const Token& q = prev(ts, i, 2);
      if (q.kind != TokKind::kIdent || q.text == "std") {
        add(out, ctx, "wallclock", t.line,
            "'" + t.text + "()' outside the benchmark/latency whitelist");
      }
    }
  }
}

// --- signal-safety ----------------------------------------------------------

struct GlobalVar {
  enum class Kind { kSigAtomic, kAtomic, kOther };
  Kind kind = Kind::kOther;
  bool is_volatile = false;
};

/// Globals declared at (effective) file scope.  Namespace braces are
/// transparent; class/function braces are not.
void collect_globals(const Tokens& ts,
                     std::map<std::string, GlobalVar>& globals) {
  std::vector<bool> brace_is_ns;  // stack: true = namespace/extern block
  std::size_t stmt_begin = 0;     // token index after the last ; or } or {
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const std::string& txt = ts[i].text;
    if (txt == "{") {
      // Brace initializer (`std::atomic<bool> g{false};` or `= {...}`),
      // not a scope: skip its tokens but keep the statement alive so the
      // declaration still classifies when its ';' arrives.
      const Token& p = prev(ts, i);
      bool init = p.kind == TokKind::kIdent || p.text == "=";
      for (std::size_t j = stmt_begin; j < i && init; ++j) {
        if (ts[j].text == "(" ||
            any_of_ident(ts[j], {"namespace", "extern", "struct", "class",
                                 "enum", "union"})) {
          init = false;
        }
      }
      if (init) {
        int depth = 1;
        std::size_t j = i + 1;
        for (; j < ts.size() && depth > 0; ++j) {
          if (ts[j].text == "{") ++depth;
          else if (ts[j].text == "}") --depth;
        }
        i = j - 1;
        continue;
      }
      bool ns = false;
      for (std::size_t j = stmt_begin; j < i; ++j) {
        if (is_ident(ts[j], "namespace") || is_ident(ts[j], "extern")) {
          ns = true;
          break;
        }
      }
      brace_is_ns.push_back(ns);
      // Inside a non-namespace brace: fast-forward to its close so class
      // members and function locals never register as globals.
      if (!ns) {
        int depth = 1;
        std::size_t j = i + 1;
        for (; j < ts.size() && depth > 0; ++j) {
          if (ts[j].text == "{") ++depth;
          else if (ts[j].text == "}") --depth;
        }
        i = j - 1;
        brace_is_ns.pop_back();
      }
      stmt_begin = i + 1;
      continue;
    }
    if (txt == "}") {
      if (!brace_is_ns.empty()) brace_is_ns.pop_back();
      stmt_begin = i + 1;
      continue;
    }
    if (txt != ";") continue;
    // Statement [stmt_begin, i): classify simple declarations.
    const std::size_t b = stmt_begin;
    stmt_begin = i + 1;
    bool vol = false, sig = false, atomic = false;
    std::string name;
    for (std::size_t j = b; j < i; ++j) {
      if (is_ident(ts[j], "volatile")) vol = true;
      if (is_ident(ts[j], "sig_atomic_t")) sig = true;
      if (is_ident(ts[j], "atomic")) atomic = true;
      if (is_ident(ts[j], "using") || is_ident(ts[j], "typedef") ||
          is_ident(ts[j], "return") || is_ident(ts[j], "static_assert")) {
        sig = atomic = false;
        name.clear();
        break;
      }
      if (ts[j].text == "=" || ts[j].text == "{" || ts[j].text == "(") break;
      if (ts[j].kind == TokKind::kIdent) name = ts[j].text;
    }
    if (name.empty()) continue;
    GlobalVar g;
    g.is_volatile = vol;
    if (sig) g.kind = GlobalVar::Kind::kSigAtomic;
    else if (atomic) g.kind = GlobalVar::Kind::kAtomic;
    globals[name] = g;
  }
}

void rule_signal_safety(const Tokens& ts, const RuleContext& ctx,
                        std::vector<StaticFinding>& out) {
  // Handler registrations: signal(SIGX, handler).
  std::set<std::string> handlers;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_ident(ts[i], "signal") || ts[i + 1].text != "(") continue;
    if (prev(ts, i).text == "." || prev(ts, i).text == "->") continue;
    // Second argument = tokens between the first depth-1 comma and ')'.
    int depth = 0;
    std::size_t comma = 0, close = 0;
    for (std::size_t j = i + 1; j < ts.size() && j < i + 64; ++j) {
      if (ts[j].text == "(") ++depth;
      else if (ts[j].text == ")") {
        if (--depth == 0) { close = j; break; }
      } else if (ts[j].text == "," && depth == 1 && comma == 0) {
        comma = j;
      }
    }
    if (comma == 0 || close == 0) continue;
    if (close == comma + 2 && ts[comma + 1].kind == TokKind::kIdent) {
      const std::string& h = ts[comma + 1].text;
      if (h != "SIG_IGN" && h != "SIG_DFL") handlers.insert(h);
    } else {
      for (std::size_t j = comma + 1; j < close; ++j) {
        if (ts[j].text == "[") {
          add(out, ctx, "signal-safety", ts[i].line,
              "signal handler must be a named function so its body can be "
              "checked for async-signal-safety");
          break;
        }
      }
    }
  }
  if (handlers.empty()) return;

  std::map<std::string, GlobalVar> globals;
  collect_globals(ts, globals);
  const bool lockfree_asserted =
      std::any_of(ts.begin(), ts.end(), [](const Token& t) {
        return is_ident(t, "is_always_lock_free");
      });
  auto safe_var = [&](const std::string& name, std::string& why) {
    const auto it = globals.find(name);
    if (it == globals.end()) return true;  // unknown: assume local/benign
    switch (it->second.kind) {
      case GlobalVar::Kind::kSigAtomic:
        if (it->second.is_volatile) return true;
        why = "'" + name +
              "' is sig_atomic_t but not volatile: the handler's store may "
              "be invisible to the interrupted code";
        return false;
      case GlobalVar::Kind::kAtomic:
        if (lockfree_asserted) return true;
        why = "std::atomic global '" + name +
              "' has no static_assert(is_always_lock_free) in this file: a "
              "locking atomic deadlocks inside a handler";
        return false;
      case GlobalVar::Kind::kOther:
        why = "'" + name +
              "' is a plain global: handlers may only touch volatile "
              "std::sig_atomic_t or lock-free std::atomic globals";
        return false;
    }
    return true;
  };

  // Check each handler's body.
  for (const std::string& h : handlers) {
    std::size_t body = 0, body_end = 0;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != TokKind::kIdent || ts[i].text != h ||
          ts[i + 1].text != "(") {
        continue;
      }
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < ts.size(); ++j) {
        if (ts[j].text == "(") ++depth;
        else if (ts[j].text == ")" && --depth == 0) break;
      }
      if (j + 1 >= ts.size() || ts[j + 1].text != "{") continue;
      body = j + 2;
      depth = 1;
      for (j = body; j < ts.size() && depth > 0; ++j) {
        if (ts[j].text == "{") ++depth;
        else if (ts[j].text == "}") --depth;
      }
      body_end = j > 0 ? j - 1 : body;
      break;
    }
    if (body == 0) continue;  // defined elsewhere; out of lexical reach

    for (std::size_t i = body; i < body_end; ++i) {
      const Token& t = ts[i];
      if (t.kind != TokKind::kIdent) continue;
      const bool call = i + 1 < body_end + 1 && ts[i + 1].text == "(";
      // Member call: check the base object, allow atomic/flag operations.
      if (call && (prev(ts, i).text == "." || prev(ts, i).text == "->")) {
        const Token& base = prev(ts, i, 2);
        std::string why;
        if (base.kind == TokKind::kIdent && !safe_var(base.text, why)) {
          add(out, ctx, "signal-safety", t.line,
              "signal handler '" + h + "' calls through " + why);
        } else if (!any_of_ident(
                       t, {"store", "load", "exchange", "test_and_set",
                           "clear", "fetch_add", "fetch_sub", "fetch_or",
                           "fetch_and", "count_down"})) {
          add(out, ctx, "signal-safety", t.line,
              "signal handler '" + h + "' calls member '" + t.text +
                  "': not on the async-signal-safe allowlist");
        }
        continue;
      }
      if (call) {
        if (is_cpp_keyword(t.text) ||
            any_of_ident(t, {"_exit", "_Exit", "abort", "signal", "raise",
                             "kill", "write", "sigaction"})) {
          continue;
        }
        add(out, ctx, "signal-safety", t.line,
            "signal handler '" + h + "' calls '" + t.text +
                "': not on the async-signal-safe allowlist (volatile "
                "sig_atomic_t stores, lock-free atomics, _exit, write, "
                "signal, abort, raise, kill)");
        continue;
      }
      // Assignment to a known-unsafe global.
      if (i + 1 < body_end && ts[i + 1].text == "=" &&
          (i + 2 >= body_end || ts[i + 2].text != "=") &&
          prev(ts, i).text != "=" && prev(ts, i).text != "!" &&
          prev(ts, i).text != "<" && prev(ts, i).text != ">" &&
          prev(ts, i).text != "." && prev(ts, i).text != "->") {
        std::string why;
        if (!safe_var(t.text, why)) {
          add(out, ctx, "signal-safety", t.line,
              "signal handler '" + h + "' writes " + why);
        }
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {"nondet-random",
       "rand()/srand()/std::random_device: unseeded process entropy"},
      {"nondet-hash",
       "std::hash<...>: implementation-defined values must not reach output"},
      {"nondet-pointer-key",
       "std::map/std::set keyed by pointer: allocation-order iteration"},
      {"nondet-unordered-iter",
       "iteration over std::unordered_* containers: unspecified order"},
      {"wallclock",
       "clock reads outside the benchmark/latency file whitelist"},
      {"signal-safety",
       "signal handlers restricted to async-signal-safe operations"},
  };
  return kRules;
}

void run_rules(const LexOutput& lexed, const RuleContext& ctx,
               std::vector<StaticFinding>& out) {
  rule_random(lexed.tokens, ctx, out);
  rule_hash(lexed.tokens, ctx, out);
  rule_pointer_key(lexed.tokens, ctx, out);
  rule_unordered_iter(lexed.tokens, ctx, out);
  rule_wallclock(lexed.tokens, ctx, out);
  rule_signal_safety(lexed.tokens, ctx, out);
}

}  // namespace mcan::sa
