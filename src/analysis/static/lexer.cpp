#include "analysis/static/lexer.hpp"

#include <cctype>

namespace mcan::sa {

namespace {

constexpr const char kDirectiveKey[] = "mcan-analyze:";

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse a suppression directive — kDirectiveKey followed by
/// `allow(rule[,rule...]) reason` — out of a comment's text.  Returns
/// true when the comment contains the directive key at all (out/err
/// filled accordingly).
bool parse_directive(const std::string& comment, int line, bool own_line,
                     Suppression& out, std::string& err) {
  const std::size_t key = comment.find(kDirectiveKey);
  if (key == std::string::npos) return false;
  std::size_t i = key + sizeof(kDirectiveKey) - 1;
  auto skip_ws = [&] {
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i]))) {
      ++i;
    }
  };
  skip_ws();
  const std::string verb = "allow";
  if (comment.compare(i, verb.size(), verb) != 0) {
    err = "unknown mcan-analyze directive (only allow(<rule>) exists)";
    return true;
  }
  i += verb.size();
  skip_ws();
  if (i >= comment.size() || comment[i] != '(') {
    err = "allow needs a parenthesized rule list: allow(<rule>)";
    return true;
  }
  ++i;
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) {
    err = "allow(...) is missing its closing parenthesis";
    return true;
  }
  Suppression s;
  s.line = line;
  s.own_line = own_line;
  std::string id;
  for (std::size_t j = i; j <= close; ++j) {
    const char c = j < close ? comment[j] : ',';
    if (c == ',') {
      while (!id.empty() && std::isspace(static_cast<unsigned char>(
                                id.back()))) {
        id.pop_back();
      }
      if (!id.empty()) s.rules.push_back(id);
      id.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c)) || !id.empty()) {
      id.push_back(c);
    }
  }
  if (s.rules.empty()) {
    err = "allow() names no rule";
    return true;
  }
  std::size_t r = close + 1;
  while (r < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[r]))) {
    ++r;
  }
  s.reason = comment.substr(r);
  while (!s.reason.empty() && (s.reason.back() == '\n' ||
                               s.reason.back() == '\r' ||
                               std::isspace(static_cast<unsigned char>(
                                   s.reason.back())))) {
    s.reason.pop_back();
  }
  out = std::move(s);
  return true;
}

}  // namespace

LexOutput lex(const std::string& src) {
  LexOutput out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool line_has_code = false;  // any token seen on the current line?

  auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
    line_has_code = true;
  };
  auto newline = [&] {
    ++line;
    line_has_code = false;
  };
  auto handle_comment = [&](const std::string& text, int at_line,
                            bool own_line) {
    Suppression s;
    std::string err;
    if (parse_directive(text, at_line, own_line, s, err)) {
      if (err.empty()) {
        out.suppressions.push_back(std::move(s));
      } else {
        out.bad_directives.emplace_back(at_line, err);
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const bool own_line = !line_has_code;
      const int at_line = line;
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      handle_comment(src.substr(i + 2, j - (i + 2)), at_line, own_line);
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const bool own_line = !line_has_code;
      const int at_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') newline();
        text.push_back(src[j]);
        ++j;
      }
      handle_comment(text, at_line, own_line);
      i = j + 1 < n ? j + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n' && delim.size() < 16) {
        delim.push_back(src[j]);
        ++j;
      }
      const std::string close = ")" + delim + "\"";
      const std::size_t end = src.find(close, j);
      const std::size_t stop = end == std::string::npos ? n : end + close.size();
      const int at_line = line;
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') newline();
      }
      out.tokens.push_back(Token{TokKind::kString, "<raw-string>", at_line});
      line_has_code = true;
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') break;  // unterminated; stop at line end
        ++j;
      }
      push(quote == '"' ? TokKind::kString : TokKind::kChar,
           src.substr(i, j - i + 1));
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      push(TokKind::kIdent, src.substr(i, j - i));
      i = j;
      continue;
    }
    // Number (digits, hex, floats — exact shape is irrelevant to rules).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > 0 &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::kNumber, src.substr(i, j - i));
      i = j;
      continue;
    }
    // Multi-char punctuation the rules care about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      push(TokKind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      push(TokKind::kPunct, "->");
      i += 2;
      continue;
    }
    if ((c == '<' || c == '>') && i + 1 < n && src[i + 1] == c) {
      push(TokKind::kPunct, std::string(2, c));
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace mcan::sa
