#include "analysis/properties.hpp"

#include <algorithm>

namespace mcan {

namespace {

/// First-delivery order of messages at one node (by first occurrence).
std::map<MessageKey, std::size_t> first_positions(const DeliveryJournal& j) {
  std::map<MessageKey, std::size_t> pos;
  std::size_t next = 0;
  for (const DeliveryEvent& e : j) {
    if (pos.emplace(e.key, next).second) ++next;
  }
  return pos;
}

}  // namespace

AbReport check_atomic_broadcast(
    const std::vector<BroadcastRecord>& broadcasts,
    const std::map<NodeId, DeliveryJournal>& journals,
    const std::set<NodeId>& correct) {
  AbReport rep;
  rep.broadcasts = static_cast<int>(broadcasts.size());
  rep.correct_nodes = static_cast<int>(correct.size());

  std::set<MessageKey> broadcast_keys;
  for (const BroadcastRecord& b : broadcasts) broadcast_keys.insert(b.key);

  // Who delivered what (correct nodes only), and duplicate accounting.
  std::map<MessageKey, std::set<NodeId>> delivered_by;
  std::set<MessageKey> keys_with_dups;
  for (const auto& [node, journal] : journals) {
    if (!correct.contains(node)) continue;
    std::map<MessageKey, int> copies;
    for (const DeliveryEvent& e : journal) {
      ++copies[e.key];
      delivered_by[e.key].insert(node);
      if (!broadcast_keys.contains(e.key)) {
        ++rep.nontriviality_violations;  // AB4
      }
    }
    for (const auto& [key, n] : copies) {
      if (n > 1) {
        rep.duplicate_deliveries += n - 1;  // AB3
        keys_with_dups.insert(key);
      }
    }
  }
  rep.messages_with_duplicates = static_cast<int>(keys_with_dups.size());

  // AB1 + AB2.
  for (const BroadcastRecord& b : broadcasts) {
    auto it = delivered_by.find(b.key);
    const std::size_t receivers = it == delivered_by.end() ? 0 : it->second.size();
    if (receivers == 0) {
      if (correct.contains(b.sender)) ++rep.validity_violations;  // AB1
      continue;
    }
    if (receivers < correct.size()) ++rep.agreement_violations;  // AB2 (IMO)
  }

  // AB5: pairwise order comparison across correct nodes.
  std::vector<std::map<MessageKey, std::size_t>> orders;
  for (const auto& [node, journal] : journals) {
    if (!correct.contains(node)) continue;
    orders.push_back(first_positions(journal));
  }

  // Per-source FIFO: within one node, first deliveries of one sender must
  // come in ascending sequence order.
  for (const auto& order : orders) {
    // Re-sort by position, then scan per source.
    std::map<NodeId, std::uint16_t> last_seq;
    std::vector<std::pair<std::size_t, MessageKey>> by_pos;
    for (const auto& [key, pos] : order) by_pos.emplace_back(pos, key);
    std::sort(by_pos.begin(), by_pos.end());
    for (const auto& [pos, key] : by_pos) {
      auto it = last_seq.find(key.source);
      if (it != last_seq.end() && key.seq < it->second) ++rep.fifo_violations;
      if (it == last_seq.end() || key.seq > it->second) {
        last_seq[key.source] = key.seq;
      }
    }
  }
  for (std::size_t a = 0; a < orders.size(); ++a) {
    for (std::size_t b = a + 1; b < orders.size(); ++b) {
      // Messages delivered at both nodes.
      std::vector<MessageKey> common;
      for (const auto& [key, pos] : orders[a]) {
        if (orders[b].contains(key)) common.push_back(key);
      }
      for (std::size_t i = 0; i < common.size(); ++i) {
        for (std::size_t j = i + 1; j < common.size(); ++j) {
          const bool ab = orders[a].at(common[i]) < orders[a].at(common[j]);
          const bool ba = orders[b].at(common[i]) < orders[b].at(common[j]);
          if (ab != ba) ++rep.order_inversions;
        }
      }
    }
  }

  return rep;
}

std::string AbReport::summary() const {
  std::string s;
  s += "broadcasts=" + std::to_string(broadcasts);
  s += " correct_nodes=" + std::to_string(correct_nodes);
  s += " | AB1 validity violations=" + std::to_string(validity_violations);
  s += " AB2 agreement violations (IMO)=" + std::to_string(agreement_violations);
  s += " AB3 duplicate deliveries=" + std::to_string(duplicate_deliveries);
  s += " AB4 non-triviality violations=" + std::to_string(nontriviality_violations);
  s += " AB5 order inversions=" + std::to_string(order_inversions);
  if (fifo_violations) {
    s += " per-source FIFO violations=" + std::to_string(fifo_violations);
  }
  s += atomic_broadcast() ? " => ATOMIC BROADCAST HOLDS" : " => VIOLATED";
  return s;
}

}  // namespace mcan
