#include "analysis/invariants.hpp"

#include <cstdio>

#include "core/network.hpp"
#include "frame/stuffing.hpp"

namespace mcan {

namespace {

/// Ablation configurations intentionally break the end-game guarantees;
/// only the physical-layer rules apply to nodes running them.
bool sound_configuration(const ProtocolParams& p) {
  return p.delimiter == DelimiterMode::FixedEndGame &&
         p.suppress_second_errors && p.first_subfield_override == 0 &&
         p.majority_override == 0;
}

std::vector<ProtocolParams> network_params(Network& net) {
  std::vector<ProtocolParams> out;
  out.reserve(static_cast<std::size_t>(net.size()));
  for (int i = 0; i < net.size(); ++i) out.push_back(net.node(i).protocol());
  return out;
}

}  // namespace

const char* invariant_rule_name(InvariantRule r) {
  switch (r) {
    case InvariantRule::WiredAnd: return "wired-and";
    case InvariantRule::StuffConformance: return "stuff-conformance";
    case InvariantRule::FlagLegality: return "flag-legality";
    case InvariantRule::EndGameLegality: return "end-game-legality";
    case InvariantRule::CounterTransition: return "counter-transition";
    case InvariantRule::Reconvergence: return "reconvergence";
  }
  return "?";
}

std::string InvariantViolation::to_string() const {
  std::string out = "[" + std::string(invariant_rule_name(rule)) + "] bit " +
                    std::to_string(t);
  if (node >= 0) out += " node " + std::to_string(node);
  out += ": " + message;
  return out;
}

std::string InvariantReport::summary() const {
  if (clean()) return {};
  std::string out = std::to_string(total) + " protocol invariant violation" +
                    (total == 1 ? "" : "s") + " over " +
                    std::to_string(bits_checked) + " bits:\n";
  for (int r = 0; r < kInvariantRuleCount; ++r) {
    if (by_rule[static_cast<std::size_t>(r)] == 0) continue;
    out += "  " +
           std::string(invariant_rule_name(static_cast<InvariantRule>(r))) +
           ": " + std::to_string(by_rule[static_cast<std::size_t>(r)]) + "\n";
  }
  for (const InvariantViolation& v : violations) {
    out += "  " + v.to_string() + "\n";
  }
  if (total > violations.size()) {
    out += "  (" + std::to_string(total - violations.size()) +
           " further violations not recorded)\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// InvariantChecker
// ---------------------------------------------------------------------------

InvariantChecker::InvariantChecker(std::vector<ProtocolParams> per_node,
                                   const EventLog* log, InvariantConfig cfg)
    : cfg_(cfg), params_(std::move(per_node)), log_(log) {
  sound_.reserve(params_.size());
  for (const ProtocolParams& p : params_) {
    sound_.push_back(sound_configuration(p));
  }
  // Skip any events already in the log: they belong to a run this checker
  // did not observe.
  if (log_ != nullptr) next_event_ = log_->events().size();
}

void InvariantChecker::violation(InvariantRule rule, BitTime t, int node,
                                 std::string msg) {
  ++report_.total;
  ++report_.by_rule[static_cast<std::size_t>(rule)];
  if (report_.violations.size() < cfg_.max_recorded) {
    report_.violations.push_back({rule, t, node, std::move(msg)});
  }
}

void InvariantChecker::on_bit(const BitRecord& rec) {
  const std::size_t n = rec.driven.size();
  if (states_.size() != n) states_.assign(n, NodeState{});
  ++report_.bits_checked;

  check_record_level(rec);

  if (params_.size() == n) {
    for (std::size_t i = 0; i < n; ++i) check_node(rec, i);
    if (cfg_.reconvergence) check_reconvergence(rec);
    if (log_ != nullptr) check_events(rec);
  }
}

void InvariantChecker::check_record_level(const BitRecord& rec) {
  if (!cfg_.wired_and) return;
  const std::size_t n = rec.driven.size();

  Level expect = Level::Recessive;
  for (std::size_t i = 0; i < n; ++i) {
    if (rec.active[i]) expect = expect & rec.driven[i];
  }
  if (expect != rec.bus) {
    violation(InvariantRule::WiredAnd, rec.t, -1,
              "bus resolved " + to_string(rec.bus) +
                  " but the wired-AND of driven levels is " +
                  to_string(expect));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!rec.active[i]) continue;
    const Level want = rec.disturbed[i] ? flip(rec.bus) : rec.bus;
    if (rec.view[i] != want) {
      violation(InvariantRule::WiredAnd, rec.t, static_cast<int>(i),
                "view " + to_string(rec.view[i]) +
                    " inconsistent with bus level and disturbance marker");
    }
  }

  // Stuff conformance is a wire-level rule, but the stuffed region is only
  // known from FSM introspection: track it while any active transmitter is
  // pumping the body (SOF..CRC) *and nobody is signalling an error*.  A
  // receiver's flag superimposes 6 dominant bits on the body while the
  // transmitter — which may legitimately take up to 5 more bits to notice —
  // is still inside it; that deliberate violation is the globalisation
  // mechanism itself, so tracking suspends the moment any flag starts.
  if (!cfg_.stuff_conformance || params_.size() != n) return;
  bool in_stuffed_region = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (!rec.active[i]) continue;
    switch (rec.info[i].seg) {
      case Seg::ErrorFlag:
      case Seg::PassiveFlag:
      case Seg::OverloadFlag:
      case Seg::ExtFlag:
      case Seg::ErrorDelimWait:
      case Seg::ErrorDelim:
      case Seg::OverloadDelimWait:
      case Seg::OverloadDelim:
      case Seg::Sampling:
        stuff_run_len_ = 0;
        return;
      default:
        break;
    }
    if (rec.info[i].transmitter && rec.info[i].seg == Seg::Body) {
      in_stuffed_region = true;
    }
  }
  if (!in_stuffed_region) {
    stuff_run_len_ = 0;
    return;
  }
  if (stuff_run_len_ > 0 && rec.bus == stuff_run_level_) {
    ++stuff_run_len_;
  } else {
    stuff_run_level_ = rec.bus;
    stuff_run_len_ = 1;
  }
  if (stuff_run_len_ == kStuffRun + 1) {
    violation(InvariantRule::StuffConformance, rec.t, -1,
              std::to_string(kStuffRun + 1) + " identical " +
                  to_string(rec.bus) +
                  " bits on the wire inside the stuffed region");
  }
}

void InvariantChecker::check_node(const BitRecord& rec, std::size_t i) {
  NodeState& st = states_[i];
  const NodeBitInfo& info = rec.info[i];

  if (!rec.active[i] || info.seg == Seg::Off) {
    // Crashed / bus-off / switched-off: nothing to check, and the node is
    // permanently excluded from cross-node agreement (it may legitimately
    // have missed frames).
    st.tainted = true;
    st.baseline = false;
    st.flag_run = 0;
    return;
  }

  const ProtocolParams& p = params_[i];
  const int node = static_cast<int>(i);

  if (cfg_.flag_legality) {
    const bool in_flag =
        info.seg == Seg::ErrorFlag || info.seg == Seg::OverloadFlag;
    if (in_flag) {
      if (!is_dominant(rec.driven[i])) {
        violation(InvariantRule::FlagLegality, rec.t, node,
                  "active flag bit driven recessive");
      }
      ++st.flag_run;
      if (st.flag_run == ProtocolParams::flag_bits() + 1) {
        violation(InvariantRule::FlagLegality, rec.t, node,
                  "active flag longer than " +
                      std::to_string(ProtocolParams::flag_bits()) + " bits");
      }
    } else {
      if (st.flag_run > 0 && st.flag_run != ProtocolParams::flag_bits()) {
        violation(InvariantRule::FlagLegality, rec.t, node,
                  "active flag of " + std::to_string(st.flag_run) +
                      " bits (must be exactly " +
                      std::to_string(ProtocolParams::flag_bits()) + ")");
      }
      st.flag_run = 0;
    }
    if (info.seg == Seg::PassiveFlag && is_dominant(rec.driven[i])) {
      violation(InvariantRule::FlagLegality, rec.t, node,
                "error-passive node driving dominant in its flag");
    }
    if (info.seg == Seg::ExtFlag && !is_dominant(rec.driven[i])) {
      violation(InvariantRule::FlagLegality, rec.t, node,
                "extended flag bit driven recessive");
    }
  }

  if (cfg_.end_game) {
    if ((info.seg == Seg::Sampling || info.seg == Seg::ExtFlag) &&
        p.variant != Variant::MajorCan) {
      violation(InvariantRule::EndGameLegality, rec.t, node,
                "MajorCAN end-game state under " + p.name());
    }
    if (info.seg == Seg::Eof &&
        (info.index < 0 || info.index >= p.eof_bits())) {
      violation(InvariantRule::EndGameLegality, rec.t, node,
                "EOF position " + std::to_string(info.index) +
                    " outside the " + std::to_string(p.eof_bits()) +
                    "-bit field");
    }
    if ((info.seg == Seg::ErrorDelim || info.seg == Seg::OverloadDelim) &&
        info.index > p.error_delim_total()) {
      violation(InvariantRule::EndGameLegality, rec.t, node,
                "delimiter count " + std::to_string(info.index) +
                    " past its total of " +
                    std::to_string(p.error_delim_total()));
    }
    if (sound_[i] && p.variant == Variant::MajorCan) {
      if (info.seg == Seg::Sampling &&
          (info.eof_rel == kNoEofRel || info.eof_rel > p.sample_end())) {
        violation(InvariantRule::EndGameLegality, rec.t, node,
                  "sampling at EOF-relative position " +
                      std::to_string(info.eof_rel) +
                      " outside the end-game (ends at 3m+4 = " +
                      std::to_string(p.sample_end()) + ")");
      }
      if (info.seg == Seg::ExtFlag &&
          (info.eof_rel == kNoEofRel || info.eof_rel > p.sample_end())) {
        violation(InvariantRule::EndGameLegality, rec.t, node,
                  "extended flag past position 3m+4 = " +
                      std::to_string(p.sample_end()));
      }
    }
  }

  if (cfg_.counter_transitions) {
    if (st.baseline) {
      const int dtec = info.tec - st.tec;
      // The implementation never bumps TEC by +1: every transmit error is
      // +8 (ISO 11898 rules as modelled by FaultConfinement).
      const bool tec_ok = dtec == 0 || dtec == -1 || dtec == 8 ||
                          (info.tec == 0 && st.tec > 0);
      if (!tec_ok) {
        violation(InvariantRule::CounterTransition, rec.t, node,
                  "TEC stepped " + std::to_string(st.tec) + " -> " +
                      std::to_string(info.tec));
      }
      const int drec = info.rec - st.rec;
      const bool rec_ok = drec == 0 || drec == 1 || drec == -1 || drec == 8 ||
                          (info.rec == 0 && st.rec > 0) ||
                          (st.rec > 127 && info.rec == 119);
      if (!rec_ok) {
        violation(InvariantRule::CounterTransition, rec.t, node,
                  "REC stepped " + std::to_string(st.rec) + " -> " +
                      std::to_string(info.rec));
      }
    }
    if (info.tec >= cfg_.busoff_limit && is_dominant(rec.driven[i])) {
      violation(InvariantRule::CounterTransition, rec.t, node,
                "node at TEC " + std::to_string(info.tec) +
                    " (bus-off limit " + std::to_string(cfg_.busoff_limit) +
                    ") driving dominant");
    }
    st.tec = info.tec;
    st.rec = info.rec;
    st.baseline = true;
  }
}

void InvariantChecker::check_reconvergence(const BitRecord& rec) {
  // Ablation modes exist to demonstrate desynchronisation; agreement is not
  // an invariant of those configurations.
  for (std::size_t i = 0; i < sound_.size(); ++i) {
    if (!sound_[i]) return;
  }

  int eligible = 0;
  int first_fi = 0;
  bool have_first = false;
  bool disagree = false;
  for (std::size_t i = 0; i < rec.info.size(); ++i) {
    if (!rec.active[i] || states_[i].tainted) continue;
    if (rec.info[i].seg != Seg::Idle) {
      idle_reported_ = false;
      return;  // not an all-idle bit; nothing to compare
    }
    ++eligible;
    if (!have_first) {
      first_fi = rec.info[i].frame_index;
      have_first = true;
    } else if (rec.info[i].frame_index != first_fi) {
      disagree = true;
    }
  }
  if (eligible >= 2 && disagree && !idle_reported_) {
    std::string counts;
    for (std::size_t i = 0; i < rec.info.size(); ++i) {
      if (!rec.active[i] || states_[i].tainted) continue;
      if (!counts.empty()) counts += ", ";
      counts += std::to_string(rec.info[i].frame_index);
    }
    violation(InvariantRule::Reconvergence, rec.t, -1,
              "bus idle but correct nodes disagree on the frame count (" +
                  counts + ")");
    idle_reported_ = true;  // one report per idle episode, not per bit
  }
}

void InvariantChecker::check_events(const BitRecord& rec) {
  const std::vector<Event>& evs = log_->events();
  for (; next_event_ < evs.size(); ++next_event_) {
    const Event& e = evs[next_event_];
    if (e.t > rec.t) break;
    if (e.t < rec.t) continue;  // emitted before observation began
    const std::size_t i = e.node;  // Network convention: node id == slot
    if (i >= rec.info.size() || i >= params_.size()) continue;
    const ProtocolParams& p = params_[i];
    const NodeBitInfo& info = rec.info[i];
    const int node = static_cast<int>(i);

    switch (e.kind) {
      case EventKind::SamplingDecision:
        if (!cfg_.end_game) break;
        if (p.variant != Variant::MajorCan) {
          violation(InvariantRule::EndGameLegality, e.t, node,
                    "majority vote under " + p.name());
        } else if (sound_[i] && info.eof_rel != p.sample_end()) {
          violation(InvariantRule::EndGameLegality, e.t, node,
                    "majority vote concluded at EOF-relative position " +
                        std::to_string(info.eof_rel) + ", expected 3m+4 = " +
                        std::to_string(p.sample_end()));
        }
        break;

      case EventKind::ErrorFlagStart:
        if (cfg_.flag_legality && (info.tec >= cfg_.passive_limit ||
                                   info.rec >= cfg_.passive_limit)) {
          violation(InvariantRule::FlagLegality, e.t, node,
                    "active error flag from a node already at the "
                    "error-passive limit (TEC " +
                        std::to_string(info.tec) + ", REC " +
                        std::to_string(info.rec) + ")");
        }
        break;

      case EventKind::FrameAccepted:
        if (!cfg_.end_game) break;
        if (p.variant == Variant::StandardCan &&
            e.detail == "last-EOF-bit rule") {
          // The last-bit asymmetry: acceptance must come with an overload
          // condition signalled on the same bit.
          bool paired = false;
          for (std::size_t j = next_event_ + 1;
               j < evs.size() && evs[j].t == e.t; ++j) {
            if (evs[j].node == e.node &&
                evs[j].kind == EventKind::OverloadFlagStart) {
              paired = true;
              break;
            }
          }
          if (!paired) {
            violation(InvariantRule::EndGameLegality, e.t, node,
                      "last-EOF-bit acceptance without the paired overload "
                      "condition");
          }
        }
        [[fallthrough]];

      case EventKind::TxSuccess:
        if (cfg_.end_game && p.variant == Variant::MinorCan &&
            e.detail.find("Primary_error") != std::string::npos &&
            info.seg != Seg::ErrorDelimWait) {
          violation(InvariantRule::EndGameLegality, e.t, node,
                    "Primary_error verdict outside the first bit after the "
                    "node's own flag");
        }
        break;

      default:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// InvariantScope
// ---------------------------------------------------------------------------

InvariantScope::InvariantScope(Network& net, InvariantConfig cfg)
    : InvariantScope(net.sim(), network_params(net), &net.log(),
                     std::move(cfg)) {}

InvariantScope::InvariantScope(Simulator& sim,
                               std::vector<ProtocolParams> per_node,
                               const EventLog* log, InvariantConfig cfg)
    : sim_(&sim), checker_(std::move(per_node), log, std::move(cfg)) {
  handler_ = [](const InvariantReport& r) {
    std::fputs(r.summary().c_str(), stderr);
  };
  sim_->add_observer(checker_);
}

InvariantScope::~InvariantScope() {
  sim_->remove_observer(checker_);
  if (!checker_.report().clean() && handler_) handler_(checker_.report());
}

}  // namespace mcan
