// Protocol invariant analyzer: an always-on conformance pass over the
// bit-level trace stream.
//
// The credibility of every result in this repository rests on the
// controller FSM implementing the paper's bit-level rules *exactly*.  This
// module re-states those rules as observable invariants of the recorded
// BitRecord stream (plus the event log) and validates every simulation
// against them, in the spirit of the machine-checked CAN specifications of
// van Glabbeek & Höfner (arXiv:1703.06569) and Spichkova (arXiv:1811.08128)
// — but as a cheap streaming check instead of a proof:
//
//   WiredAnd          — the resolved bus level is the AND of all driven
//                       levels, and each node's view differs from the bus
//                       exactly where the injector marked a disturbance.
//   StuffConformance  — the wire never shows 6 identical bits inside the
//                       stuffed region (SOF..CRC); stuffing is the carrier
//                       of error globalisation, so a quiet violation here
//                       voids every error-signalling result.
//   FlagLegality      — active error/overload flags are exactly 6 dominant
//                       bits; error-passive flags never drive dominant;
//                       MajorCAN extended flags drive dominant; a node whose
//                       counters already exceed the passive limit never
//                       starts an active flag.
//   EndGameLegality   — variant-specific frame end-games: EOF indices stay
//                       inside the field; the StandardCan last-bit
//                       acceptance is always paired with an overload
//                       condition; MinorCAN Primary_error verdicts happen on
//                       the single bit after the node's own flag; MajorCAN
//                       sampling/extended flags never run past EOF-relative
//                       position 3m+4 and majority votes conclude exactly
//                       there; delimiters stay within 2m+1 (8) bits.
//   CounterTransition — TEC/REC move by ISO 11898 deltas only (+8, +1, -1,
//                       the >127 -> 119 rebound, bus-off reset), and a node
//                       at/above the bus-off limit never drives dominant.
//   Reconvergence     — whenever the bus is idle, every correct node agrees
//                       on how many frames have been on the wire (frame
//                       boundary agreement after every end-game).
//
// Checks that need FSM introspection relax automatically for nodes running
// ablation configurations (non-default DelimiterMode, disabled second-error
// suppression, geometry overrides): those modes exist precisely to
// demonstrate end-game breakage, so only the physical-layer rules apply.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"

namespace mcan {

class Network;

enum class InvariantRule : std::uint8_t {
  WiredAnd,
  StuffConformance,
  FlagLegality,
  EndGameLegality,
  CounterTransition,
  Reconvergence,
};

inline constexpr int kInvariantRuleCount = 6;

[[nodiscard]] const char* invariant_rule_name(InvariantRule r);

/// One observed violation, with bit-time and node provenance.
struct InvariantViolation {
  InvariantRule rule = InvariantRule::WiredAnd;
  BitTime t = 0;
  int node = -1;  ///< slot index in attach order; -1 = bus-wide
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

struct InvariantConfig {
  bool wired_and = true;
  bool stuff_conformance = true;
  bool flag_legality = true;
  bool end_game = true;
  bool counter_transitions = true;
  bool reconvergence = true;

  /// Fault-confinement limits the counter/flag rules check against.  Must
  /// match the bus's FaultConfinementConfig; disable the rules instead when
  /// a scenario runs deliberately non-ISO limits.
  int passive_limit = 128;
  int busoff_limit = 256;

  /// Violations stored verbatim; beyond this they are only counted.
  std::size_t max_recorded = 64;
};

struct InvariantReport {
  std::vector<InvariantViolation> violations;  ///< first max_recorded of them
  std::size_t total = 0;
  std::array<std::size_t, kInvariantRuleCount> by_rule{};
  BitTime bits_checked = 0;

  [[nodiscard]] bool clean() const { return total == 0; }

  /// Count for one rule.
  [[nodiscard]] std::size_t count(InvariantRule r) const {
    return by_rule[static_cast<std::size_t>(r)];
  }

  /// Multi-line human-readable report (empty string when clean).
  [[nodiscard]] std::string summary() const;
};

/// Streaming conformance checker.  Attach to a Simulator as a trace
/// observer *before* the run; read `report()` any time.  Holds O(nodes)
/// state — no trace is retained, so it is cheap enough to stay on for the
/// largest campaigns.
class InvariantChecker final : public TraceObserver {
 public:
  /// `per_node` — protocol parameters per attached node, in attach order.
  /// An empty vector restricts checking to record-level rules (wired-AND),
  /// the mode VCD replay uses.  `log` (optional, non-owning) enables the
  /// event-anchored end-game checks; event node ids must equal slot indices
  /// (the Network convention).
  explicit InvariantChecker(std::vector<ProtocolParams> per_node = {},
                            const EventLog* log = nullptr,
                            InvariantConfig cfg = {});

  void on_bit(const BitRecord& rec) override;

  [[nodiscard]] const InvariantReport& report() const { return report_; }
  [[nodiscard]] const InvariantConfig& config() const { return cfg_; }

 private:
  struct NodeState {
    bool baseline = false;  ///< tec/rec baselines valid
    bool tainted = false;   ///< ever crashed/off: excluded from reconvergence
    int flag_run = 0;       ///< consecutive bits spent in an active flag
    int tec = 0;
    int rec = 0;
  };

  void violation(InvariantRule rule, BitTime t, int node, std::string msg);
  void check_record_level(const BitRecord& rec);
  void check_node(const BitRecord& rec, std::size_t i);
  void check_reconvergence(const BitRecord& rec);
  void check_events(const BitRecord& rec);

  InvariantConfig cfg_;
  std::vector<ProtocolParams> params_;
  std::vector<bool> sound_;  ///< per node: not an ablation configuration
  const EventLog* log_ = nullptr;
  std::size_t next_event_ = 0;

  InvariantReport report_;
  std::vector<NodeState> states_;
  Level stuff_run_level_ = Level::Recessive;
  int stuff_run_len_ = 0;
  bool idle_reported_ = false;  ///< one reconvergence report per idle episode
};

/// RAII harness: attaches an InvariantChecker to a simulator for the
/// enclosing scope and, at scope exit, hands a non-clean report to the
/// violation handler (default: stderr).  This is what turns every test and
/// example that simulates a bus into a continuous protocol-conformance
/// check:
///
///     Network net(5, ProtocolParams::major_can());
///     InvariantScope invariants(net);
///     ... run ...
///     // scope exit: violations (if any) are reported
class InvariantScope {
 public:
  using Handler = std::function<void(const InvariantReport&)>;

  /// Convenience: checker over all nodes of `net`, wired to its event log.
  explicit InvariantScope(Network& net, InvariantConfig cfg = {});

  /// General form for hand-assembled buses.
  InvariantScope(Simulator& sim, std::vector<ProtocolParams> per_node,
                 const EventLog* log, InvariantConfig cfg = {});

  InvariantScope(const InvariantScope&) = delete;
  InvariantScope& operator=(const InvariantScope&) = delete;

  ~InvariantScope();

  [[nodiscard]] InvariantChecker& checker() { return checker_; }
  [[nodiscard]] const InvariantReport& report() const {
    return checker_.report();
  }

  /// Replace the scope-exit handler (e.g. with a gtest failure reporter).
  void set_handler(Handler h) { handler_ = std::move(h); }

 private:
  Simulator* sim_;
  InvariantChecker checker_;
  Handler handler_;
};

}  // namespace mcan
