// Validation harness for the probabilistic WCRT analysis: drive a
// saturated periodic multi-stream workload on the real bit-level bus
// with iid view-flip faults (the paper's ber* model), measure per-stream
// queue-to-delivery response times per *instance*, and compare the
// empirical quantiles against the analytic distribution.
//
// Instance accounting is exact: each release stamps its release time
// into the frame payload, so a delivery can always be matched to its
// release even across retransmissions, duplicates, omissions and queue
// backlog — no per-id bookkeeping that a back-to-back queueing could
// confuse.  The analysis is a conservative bound, so the acceptance
// criterion is one-sided: empirical quantile <= analytic quantile, and
// empirical miss rate <= analytic miss probability (within binomial
// noise at the configured sample counts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/rta/prob_rta.hpp"
#include "analysis/rta/rta.hpp"

namespace mcan {

struct SimStreamObservation {
  RtaMessage msg;
  long long released = 0;
  long long delivered = 0;   ///< samples (duplicates count: they happened)
  long long missed = 0;      ///< deliveries later than the deadline
  BitTime worst = 0;         ///< largest observed response time
  std::vector<BitTime> latencies;  ///< sorted ascending

  /// Empirical quantile (nearest-rank); 0 with no samples.
  [[nodiscard]] BitTime quantile(double q) const;
  /// Observed deadline-miss fraction.
  [[nodiscard]] double miss_rate() const {
    return delivered ? static_cast<double>(missed) /
                           static_cast<double>(delivered)
                     : 0.0;
  }
};

struct SimValidation {
  ProtocolParams proto;
  double ber = 0;          ///< network-wide rate; per-node view = ber/N
  BitTime horizon = 0;
  std::uint64_t seed = 1;
  std::vector<SimStreamObservation> streams;  ///< priority (bus) order
};

/// Simulate `messages` for `horizon` bit times on an (N senders + 1
/// receiver) bus under RandomFaults(ber/N) and collect per-instance
/// response-time samples at the receiver.  Deterministic in (set, proto,
/// ber, horizon, seed).
[[nodiscard]] SimValidation simulate_response_times(
    std::vector<RtaMessage> messages, const ProtocolParams& proto, double ber,
    BitTime horizon, std::uint64_t seed);

/// One stream's analysis-vs-simulation comparison verdict.
struct ValidationVerdict {
  std::string stream;
  double q = 0;               ///< quantile compared
  BitTime analytic = 0;
  BitTime simulated = 0;
  bool ok = false;            ///< simulated <= analytic (+ slack)
};

/// Check every configured analytic quantile against the empirical one,
/// stream by stream.  A quantile is only compared when the stream has
/// enough samples to resolve it (count * (1-q) >= 10) and the analysis
/// bounds it inside the deadline.  `slack_bits` loosens the one-sided
/// comparison (0 = the pure bound).
[[nodiscard]] std::vector<ValidationVerdict> compare_quantiles(
    const ProbRtaResult& analysis, const SimValidation& sim,
    BitTime slack_bits = 0);

}  // namespace mcan
