// Probabilistic worst-case response-time analysis: the convolution-based
// method (after the probabilistic WCRT line of work, arxiv 2411.05835)
// layered on the classic Tindell/Davis fixed-priority non-preemptive
// analysis in rta.hpp.
//
// Each message transmission is a *distribution* over bus time — the
// variant error model's attempt_pmf: clean transmission, MajorCAN
// end-game stretches, geometric retransmission chains.  The level-i busy
// period is iterated over distributions: starting from the blocking
// distribution, higher-priority releases are convolved in until the
// release count implied by the distribution's largest finite outcome
// stops growing; every outcome is truncated (absorbingly) at the
// deadline, so the iteration terminates and the truncated mass is
// exactly the probability the analysis could not bound the response
// inside the deadline.  The per-stream result is a full response-time
// PMF, its quantiles, and a deadline-miss probability
//     P{R_i > D_i} = finite mass above D_i + truncated tail mass,
// an upper bound under the critical-instant release assumption.
//
// With a zero error rate every attempt distribution degenerates to its
// deterministic C_i and the fixed point reproduces the classic analysis
// exactly (pinned by tests/rta_test.cpp).
#pragma once

#include <utility>
#include <vector>

#include "analysis/rta/error_model.hpp"
#include "analysis/rta/rta.hpp"
#include "analysis/stats/dist.hpp"

namespace mcan {

struct ProbRtaOptions {
  /// Retransmission chain depth modelled exactly; deeper chains are tail
  /// mass (conservative).
  int max_retx = 8;
  /// Response-time quantiles to report.
  std::vector<double> quantiles = {0.5, 0.9, 0.99, 0.999, 0.9999};
};

struct ProbRtaRow {
  RtaRow det;     ///< the deterministic fault-free analysis of this stream
  Pmf response;   ///< response-time distribution, truncated at the deadline
  double miss_prob = 0;  ///< P{R > D}: above-deadline mass + truncated tail
  /// (q, response quantile); kNoTime when the quantile falls in the
  /// truncated tail (the analysis cannot bound it inside the deadline).
  std::vector<std::pair<double, BitTime>> quantiles;

  /// Quantile lookup for one of the configured q values (kNoTime if
  /// unbounded or not configured).
  [[nodiscard]] BitTime quantile(double q) const;
};

struct ProbRtaResult {
  ProtocolParams proto;
  MeasuredRates rates;
  ProbRtaOptions options;
  std::vector<ProbRtaRow> rows;  ///< priority (bus) order
  double utilisation = 0;        ///< fault-free sum C_i / T_i
  double max_miss_prob = 0;      ///< worst per-stream miss probability
  bool deterministic_schedulable = false;  ///< classic analysis verdict

  [[nodiscard]] std::string to_json() const;
};

/// Run the probabilistic analysis over `messages` with the given variant
/// error model parameters.  Rows come back in priority order.
[[nodiscard]] ProbRtaResult probabilistic_rta(std::vector<RtaMessage> messages,
                                              const ProtocolParams& proto,
                                              const MeasuredRates& rates,
                                              const ProbRtaOptions& options = {});

}  // namespace mcan
