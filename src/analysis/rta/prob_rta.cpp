#include "analysis/rta/prob_rta.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/text.hpp"

namespace mcan {

BitTime ProbRtaRow::quantile(double q) const {
  for (const auto& [qq, v] : quantiles) {
    if (qq == q) return v;
  }
  return kNoTime;
}

namespace {

/// Queueing-delay fixed point for one stream: blocking plus
/// higher-priority interference, iterated over distributions via
/// *conditional convolution*.  Releases of higher-priority streams are
/// walked in ascending release time; the instance released at time t
/// interferes only with the part of the delay distribution still >= t
/// (the deterministic recurrence counts releases with t <= w, and at
/// ber = 0 this walk reproduces it exactly).  Convolving the whole
/// distribution per release — the naive reading of the recurrence —
/// would charge the clean path for interference only the rare
/// retransmission paths can experience, saturating the miss probability
/// at any load.  `cap` is the largest queueing delay that can still meet
/// the deadline; anything beyond it is truncated into the tail
/// (absorbing), which bounds the finite support and with it the number
/// of release events, so the walk terminates.
Pmf queueing_distribution(const std::vector<RtaRow>& rows, std::size_t i,
                          const std::vector<Pmf>& attempt, const Pmf& blocking,
                          BitTime cap) {
  Pmf w = blocking;
  std::vector<BitTime> next(i, 0);  // next release instant per hp stream
  for (;;) {
    if (!w.has_finite_mass()) return w;  // everything already truncated
    // Earliest pending release (ties resolve to the higher priority —
    // the bus order — keeping the walk deterministic).
    std::size_t jmin = i;
    for (std::size_t j = 0; j < i; ++j) {
      if (jmin == i || next[j] < next[jmin]) jmin = j;
    }
    if (jmin == i || next[jmin] > w.max_value()) {
      return w;  // every remaining release lands after the bus is free
    }
    auto [settled, busy] = w.split(next[jmin]);
    Pmf grown = Pmf::convolve(busy, attempt[jmin], cap);
    grown.accumulate(settled);
    w = std::move(grown);
    next[jmin] += rows[jmin].msg.period;
  }
}

}  // namespace

ProbRtaResult probabilistic_rta(std::vector<RtaMessage> messages,
                                const ProtocolParams& proto,
                                const MeasuredRates& rates,
                                const ProbRtaOptions& options) {
  if (options.max_retx < 0) {
    throw std::invalid_argument("probabilistic_rta: max_retx < 0");
  }
  ProbRtaResult res;
  res.proto = proto;
  res.rates = rates;
  res.options = options;

  // The deterministic fault-free baseline fixes priorities, C_i and B_i.
  const std::vector<RtaRow> det =
      response_time_analysis(std::move(messages), proto.eof_bits());
  res.utilisation = rta_utilisation(det);
  res.deterministic_schedulable = true;
  for (const RtaRow& r : det) {
    res.deterministic_schedulable &= r.schedulable;
  }

  const VariantErrorModel model(proto, rates);

  // Per-stream transmission-time distributions (shared across busy
  // periods; the cap is applied per-convolution, so build them uncapped
  // here — supports are tiny: 2 + max_retx atoms).
  std::vector<Pmf> attempt;
  attempt.reserve(det.size());
  for (const RtaRow& r : det) {
    attempt.push_back(model.attempt_pmf(r.c_bits, options.max_retx));
  }

  for (std::size_t i = 0; i < det.size(); ++i) {
    ProbRtaRow row;
    row.det = det[i];
    const BitTime deadline = det[i].msg.period;

    // Blocking: one lower-priority frame already on the wire.  Under
    // faults it may additionally drag an error frame across our release.
    Pmf blocking;
    if (det[i].blocking > 0) {
      const double p = model.retransmit_prob(det[i].blocking);
      blocking.add_mass(static_cast<BitTime>(det[i].blocking), 1.0 - p);
      blocking.add_mass(static_cast<BitTime>(det[i].blocking) +
                            static_cast<BitTime>(model.error_frame_bits()),
                        p);
    } else {
      blocking = Pmf::point(0);
    }

    const Pmf w = queueing_distribution(det, i, attempt, blocking, deadline);
    row.response = Pmf::convolve(w, attempt[i], deadline);
    // exceed() sums thousands of convolution products; clamp the rounding
    // drift so a probability is reported.
    row.miss_prob = std::min(1.0, std::max(0.0, row.response.exceed(deadline)));
    for (double q : options.quantiles) {
      const auto v = row.response.quantile(q);
      row.quantiles.emplace_back(q, v ? *v : kNoTime);
    }
    res.max_miss_prob = std::max(res.max_miss_prob, row.miss_prob);
    res.rows.push_back(std::move(row));
  }
  return res;
}

std::string ProbRtaResult::to_json() const {
  std::string s = "{\"protocol\": \"" + json_escape(proto.name()) + "\"";
  s += ", \"ber\": " + json_number(rates.ber);
  s += ", \"calibration\": " + json_number(rates.calibration);
  s += ", \"rates_source\": \"" + json_escape(rates.source) + "\"";
  s += ", \"utilisation\": " + json_number(utilisation);
  s += ", \"deterministic_schedulable\": " +
       std::string(deterministic_schedulable ? "true" : "false");
  s += ", \"max_miss_prob\": " + json_number(max_miss_prob);
  s += ", \"streams\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ProbRtaRow& r = rows[i];
    if (i) s += ",";
    s += "\n  {\"name\": \"" + json_escape(r.det.msg.name) + "\"";
    s += ", \"period\": " + std::to_string(r.det.msg.period);
    s += ", \"c_bits\": " + std::to_string(r.det.c_bits);
    s += ", \"blocking\": " + std::to_string(r.det.blocking);
    s += ", \"response_det\": " + std::to_string(r.det.response);
    s += ", \"schedulable_det\": " +
         std::string(r.det.schedulable ? "true" : "false");
    s += ", \"miss_prob\": " + json_number(r.miss_prob);
    s += ", \"quantiles\": {";
    for (std::size_t k = 0; k < r.quantiles.size(); ++k) {
      if (k) s += ", ";
      char qkey[32];
      std::snprintf(qkey, sizeof(qkey), "%g", r.quantiles[k].first);
      s += std::string("\"") + qkey + "\": ";
      s += r.quantiles[k].second == kNoTime
               ? "null"
               : std::to_string(r.quantiles[k].second);
    }
    s += "}}";
  }
  s += "\n]}";
  return s;
}

}  // namespace mcan
