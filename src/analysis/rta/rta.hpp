// Worst-case response-time analysis for periodic CAN traffic — the classic
// fixed-priority non-preemptive analysis (Tindell & Burns, refined by
// Davis et al.) — parameterised by the protocol's EOF length so the cost
// of MajorCAN's longer frames shows up directly in the schedulability
// numbers.  The probabilistic layer (prob_rta.hpp) builds on these
// deterministic bounds.
//
// Model: messages are queued periodically (period T_i, implicit deadline
// D_i = T_i), priorities follow CAN arbitration (lower identifier wins,
// standard beats extended on equal base ids), transmission is
// non-preemptive.  The response time of message i is
//     R_i = w_i + C_i,
//     w_i = B_i + sum_{j in hp(i)} ceil((w_i + 1) / T_j) * C_j
// where B_i is the longest lower-priority frame that may block the bus and
// C_i the worst-case frame length (maximal bit stuffing) plus the
// intermission.  The recurrence is iterated to a fixed point; if w_i + C_i
// exceeds T_i the message is unschedulable.
#pragma once

#include <string>
#include <vector>

#include "frame/frame.hpp"
#include "util/bit.hpp"

namespace mcan {

/// Worst-case wire bits of a frame with `dlc` data bytes: fixed fields +
/// data + maximal stuffing + the EOF of the protocol in use + intermission.
///
/// The stuffing term is the *corrected* bound of Davis, Burns, Bril &
/// Lukkien (RTS 2007), ⌊(g + 8s − 1) / 4⌋ extra bits for g fixed
/// stuffable bits and s data bytes: the worst pattern stuffs every 4th
/// bit after the first stuff, because a stuff bit participates in the
/// next run.  Tindell's original analysis used ⌊(g + 8s) / 5⌋ — one
/// stuff per 5 bits — which *undercounts* the worst case and made the
/// published C_i values optimistic.  With the correction, a standard
/// frame at EOF = 7 costs exactly 55 + 10s bits and an extended frame
/// 80 + 10s bits (including the 3-bit intermission), the values Davis
/// et al. publish; tests/rta_test.cpp pins both and the fact that the
/// refuted bound is strictly smaller.
[[nodiscard]] int worst_case_frame_bits(int dlc, bool extended, int eof_bits);

/// Tindell's original (refuted) frame bound, kept only so tests and docs
/// can demonstrate the flaw: same layout, but stuffing counted as
/// ⌊stuffable / 5⌋.  Never use this in analysis — it undercounts.
[[nodiscard]] int tindell_refuted_frame_bits(int dlc, bool extended,
                                             int eof_bits);

struct RtaMessage {
  std::string name;
  std::uint32_t can_id = 0;
  bool extended = false;
  int dlc = 8;
  BitTime period = 1000;  ///< also the deadline
};

struct RtaRow {
  RtaMessage msg;
  int c_bits = 0;         ///< worst-case transmission time C_i
  int blocking = 0;       ///< B_i
  BitTime response = 0;   ///< R_i (meaningless if !schedulable)
  bool schedulable = false;
};

/// Analyse the whole set; rows come back sorted by priority (bus order).
[[nodiscard]] std::vector<RtaRow> response_time_analysis(
    std::vector<RtaMessage> messages, int eof_bits);

/// The SAE-flavoured benchmark set shared by bench_rta, mcan-rta and the
/// tests: fast safety-critical messages down to slow housekeeping, ~62%
/// utilisation at standard CAN.
[[nodiscard]] std::vector<RtaMessage> sae_benchmark_set();

/// Scale every period by `f` (>= 0.1), rounding down but never below the
/// frame itself — the saturation knob for validation workloads.
[[nodiscard]] std::vector<RtaMessage> scale_periods(
    std::vector<RtaMessage> messages, double f);

/// Total bus utilisation of the set (sum C_i / T_i).
[[nodiscard]] double rta_utilisation(const std::vector<RtaRow>& rows);

/// True iff frame a outranks frame b in CAN arbitration.
[[nodiscard]] bool arbitration_before(const RtaMessage& a, const RtaMessage& b);

}  // namespace mcan
