// Error-rate provenance for the probabilistic WCRT analysis.
//
// The analysis is parameterised by a per-bit corruption rate.  Rather
// than hardcoding an assumed constant, the rate is loaded from what the
// rare-event engine (src/rare/, mcan-rare, bench_table1) actually
// *measured* on the executable bus: BENCH_table1.json carries, per bit
// error rate, the closed-form expression-(4) probability and the
// importance-sampled empirical estimate.  Their ratio calibrates the
// analytic rate — the "fed by measured fault rates" leg of the ROADMAP
// item — and the file/row provenance travels with every result so a
// report can always answer "where did this ber come from?".
#pragma once

#include <string>
#include <vector>

namespace mcan {

/// The error-rate parameters one analysis run uses, with provenance.
struct MeasuredRates {
  double ber = 1e-5;        ///< network-wide per-bit corruption rate
  /// Empirical-over-closed-form ratio from the rare-event campaign
  /// (p_hat / expression (4)); multiplies ber in the error model.  1.0
  /// when no measurement backs this rate.
  double calibration = 1.0;
  double imo_per_frame = 0;   ///< measured inconsistency probability (info)
  int measured_frame_bits = 0;  ///< probe frame length of the measurement
  std::string source = "assumed";  ///< file/row or "assumed"

  /// The rate the error model should use: ber scaled by the measured
  /// machine-vs-model calibration.
  [[nodiscard]] double effective_ber() const { return ber * calibration; }
};

/// One row of a rare-engine result file.
struct RateRow {
  double ber = 0;
  double p_hat = 0;            ///< measured P{IMO}/frame (0 = not measured)
  double closed_form_p4 = 0;   ///< expression (4) at the probe geometry
  double frame_bits = 0;
  double trials = 0;
};

/// The parsed rate table.
struct RateTable {
  std::vector<RateRow> rows;
  std::string source;  ///< path the table was loaded from

  /// Parse the BENCH_table1.json shape from `text` (rows[] of objects;
  /// nested objects are flattened, so "empirical.p_hat" is found).
  /// False with a message in `error` when no usable row exists.
  [[nodiscard]] static bool parse(const std::string& text, RateTable& out,
                                  std::string& error);

  /// Read and parse `path`; false with a message in `error`.
  [[nodiscard]] static bool load(const std::string& path, RateTable& out,
                                 std::string& error);

  /// The row whose ber is nearest to `ber` (log-scale); rows is non-empty
  /// for any table parse() accepted.
  [[nodiscard]] const RateRow& nearest(double ber) const;

  /// MeasuredRates for the row nearest `ber`: calibration = p_hat/p4 when
  /// the row carries a measurement, else 1.0.
  [[nodiscard]] MeasuredRates rates_for(double ber) const;
};

}  // namespace mcan
