#include "analysis/rta/rates.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mcan {

namespace {

// Minimal scanner for the rare-engine result shape: locate the "rows"
// array, then for each top-level object in it collect every
// `"key": <number>` pair at any nesting depth (the empirical sub-object
// flattens into the row).  This is deliberately not a general JSON
// parser — the files are written by this repository's own tools
// (bench_table1 --json) — but it fails loudly instead of guessing when
// the shape is off.

struct Scanner {
  const std::string& s;
  std::size_t i = 0;

  [[nodiscard]] bool done() const { return i >= s.size(); }
  [[nodiscard]] char peek() const { return s[i]; }

  void skip_ws() {
    while (!done() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }

  /// Consume a JSON string literal; false if not at one.
  bool take_string(std::string& out) {
    skip_ws();
    if (done() || s[i] != '"') return false;
    out.clear();
    for (++i; !done(); ++i) {
      if (s[i] == '\\' && i + 1 < s.size()) {
        out += s[++i];  // good enough: keys here never need real unescaping
      } else if (s[i] == '"') {
        ++i;
        return true;
      } else {
        out += s[i];
      }
    }
    return false;
  }

  /// Consume a number; false if not at one.
  bool take_number(double& out) {
    skip_ws();
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    i += static_cast<std::size_t>(end - begin);
    return true;
  }
};

void assign_field(RateRow& row, const std::string& key, double v) {
  if (key == "ber") row.ber = v;
  else if (key == "p_hat") row.p_hat = v;
  else if (key == "closed_form_p4") row.closed_form_p4 = v;
  else if (key == "frame_bits") row.frame_bits = v;
  else if (key == "trials") row.trials = v;
}

/// Parse one row object starting at '{': recurse into nested objects,
/// flattening their numeric fields into `row`.
bool parse_row_object(Scanner& sc, RateRow& row) {
  sc.skip_ws();
  if (sc.done() || sc.peek() != '{') return false;
  ++sc.i;
  for (;;) {
    sc.skip_ws();
    if (sc.done()) return false;
    if (sc.peek() == '}') {
      ++sc.i;
      return true;
    }
    if (sc.peek() == ',') {
      ++sc.i;
      continue;
    }
    std::string key;
    if (!sc.take_string(key)) return false;
    sc.skip_ws();
    if (sc.done() || sc.peek() != ':') return false;
    ++sc.i;
    sc.skip_ws();
    if (sc.done()) return false;
    if (sc.peek() == '{') {
      if (!parse_row_object(sc, row)) return false;  // flatten nested object
    } else if (sc.peek() == '"') {
      std::string ignored;
      if (!sc.take_string(ignored)) return false;
    } else {
      double v = 0;
      if (!sc.take_number(v)) return false;
      assign_field(row, key, v);
    }
  }
}

}  // namespace

bool RateTable::parse(const std::string& text, RateTable& out,
                      std::string& error) {
  const std::size_t rows_at = text.find("\"rows\"");
  if (rows_at == std::string::npos) {
    error = "no \"rows\" array in rate table";
    return false;
  }
  Scanner sc{text, text.find('[', rows_at)};
  if (sc.i == std::string::npos) {
    error = "\"rows\" is not an array";
    return false;
  }
  ++sc.i;
  RateTable table;
  for (;;) {
    sc.skip_ws();
    if (sc.done()) {
      error = "unterminated \"rows\" array";
      return false;
    }
    if (sc.peek() == ']') break;
    if (sc.peek() == ',') {
      ++sc.i;
      continue;
    }
    RateRow row;
    if (!parse_row_object(sc, row)) {
      error = "malformed row object in \"rows\"";
      return false;
    }
    if (row.ber <= 0 || row.ber > 1) {
      error = "row without a usable \"ber\" in (0, 1]";
      return false;
    }
    table.rows.push_back(row);
  }
  if (table.rows.empty()) {
    error = "rate table has no rows";
    return false;
  }
  out = std::move(table);
  return true;
}

bool RateTable::load(const std::string& path, RateTable& out,
                     std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parse(buf.str(), out, error)) {
    error = path + ": " + error;
    return false;
  }
  out.source = path;
  return true;
}

const RateRow& RateTable::nearest(double ber) const {
  std::size_t best = 0;
  double best_d = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double d = std::fabs(std::log(rows[i].ber) - std::log(ber));
    if (i == 0 || d < best_d) {
      best = i;
      best_d = d;
    }
  }
  return rows[best];
}

MeasuredRates RateTable::rates_for(double ber) const {
  const RateRow& row = nearest(ber);
  MeasuredRates r;
  r.ber = row.ber;
  if (row.p_hat > 0 && row.closed_form_p4 > 0) {
    r.calibration = row.p_hat / row.closed_form_p4;
    r.imo_per_frame = row.p_hat;
    r.measured_frame_bits = static_cast<int>(row.frame_bits);
  }
  char row_tag[48];
  std::snprintf(row_tag, sizeof(row_tag), " row ber=%g", row.ber);
  r.source = (source.empty() ? "parsed" : source) + row_tag;
  return r;
}

}  // namespace mcan
