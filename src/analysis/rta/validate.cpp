#include "analysis/rta/validate.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "util/rng.hpp"

namespace mcan {

BitTime SimStreamObservation::quantile(double q) const {
  if (latencies.empty()) return 0;
  const double rank = q * static_cast<double>(latencies.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank - 0.5);
  if (idx >= latencies.size()) idx = latencies.size() - 1;
  return latencies[idx];
}

namespace {

/// Stamp the release time into the payload so each delivery matches its
/// release exactly (modulo 2^(8·dlc), which far exceeds any latency that
/// is not already a deep miss for dlc >= 2).
void stamp_release(Frame& f, BitTime t) {
  for (int b = 0; b < f.dlc && b < 8; ++b) {
    f.data[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>((t >> (8 * b)) & 0xff);
  }
}

BitTime decode_latency(const Frame& f, BitTime now) {
  const int bytes = std::min<int>(f.dlc, 8);
  BitTime enc = 0;
  for (int b = 0; b < bytes; ++b) {
    enc |= static_cast<BitTime>(f.data[static_cast<std::size_t>(b)])
           << (8 * b);
  }
  if (bytes >= 8) return now - enc;
  const BitTime mask = (BitTime{1} << (8 * bytes)) - 1;
  return (now - enc) & mask;
}

}  // namespace

SimValidation simulate_response_times(std::vector<RtaMessage> messages,
                                      const ProtocolParams& proto, double ber,
                                      BitTime horizon, std::uint64_t seed) {
  if (messages.empty() || horizon == 0) {
    throw std::invalid_argument("simulate_response_times: empty workload");
  }
  for (const RtaMessage& m : messages) {
    if (m.dlc < 1 || m.dlc > 8) {
      throw std::invalid_argument(
          "simulate_response_times: dlc must be 1..8 (the payload carries "
          "the release stamp)");
    }
  }
  std::sort(messages.begin(), messages.end(), arbitration_before);

  SimValidation out;
  out.proto = proto;
  out.ber = ber;
  out.horizon = horizon;
  out.seed = seed;

  const int senders = static_cast<int>(messages.size());
  const int n_nodes = senders + 1;
  Network net(n_nodes, proto);
  RandomFaults faults(ber / n_nodes, Rng(seed, 0x7c7));
  if (ber > 0) net.set_injector(faults);

  out.streams.resize(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    out.streams[i].msg = messages[i];
  }

  // Deliveries are matched by identifier; the payload stamp recovers the
  // release instance.
  net.node(senders).add_delivery_handler([&](const Frame& f, BitTime t) {
    for (SimStreamObservation& s : out.streams) {
      if (s.msg.can_id != f.id || s.msg.extended != f.extended) continue;
      const BitTime lat = decode_latency(f, t);
      ++s.delivered;
      s.worst = std::max(s.worst, lat);
      if (lat > s.msg.period) ++s.missed;
      s.latencies.push_back(lat);
      return;
    }
  });

  std::vector<BitTime> next(messages.size(), 0);
  for (BitTime t = 0; t < horizon; ++t) {
    for (std::size_t i = 0; i < messages.size(); ++i) {
      if (t == next[i]) {
        next[i] += messages[i].period;
        Frame f = Frame::make_blank(
            messages[i].can_id, static_cast<std::uint8_t>(messages[i].dlc));
        f.extended = messages[i].extended;
        stamp_release(f, t);
        net.node(static_cast<int>(i)).enqueue(f);
        ++out.streams[i].released;
      }
    }
    net.sim().step();
  }

  for (SimStreamObservation& s : out.streams) {
    std::sort(s.latencies.begin(), s.latencies.end());
  }
  return out;
}

std::vector<ValidationVerdict> compare_quantiles(const ProbRtaResult& analysis,
                                                 const SimValidation& sim,
                                                 BitTime slack_bits) {
  std::vector<ValidationVerdict> out;
  for (const ProbRtaRow& row : analysis.rows) {
    const SimStreamObservation* obs = nullptr;
    for (const SimStreamObservation& s : sim.streams) {
      if (s.msg.can_id == row.det.msg.can_id &&
          s.msg.extended == row.det.msg.extended) {
        obs = &s;
        break;
      }
    }
    if (obs == nullptr || obs->latencies.empty()) continue;
    for (const auto& [q, analytic] : row.quantiles) {
      if (analytic == kNoTime) continue;  // unbounded inside the deadline
      // Need enough samples above the quantile to resolve it at all.
      const double resolve =
          static_cast<double>(obs->latencies.size()) * (1.0 - q);
      if (resolve < 10.0) continue;
      ValidationVerdict v;
      v.stream = row.det.msg.name;
      v.q = q;
      v.analytic = analytic;
      v.simulated = obs->quantile(q);
      v.ok = v.simulated <= v.analytic + slack_bits;
      out.push_back(std::move(v));
    }
  }
  return out;
}

}  // namespace mcan
