#include "analysis/rta/rta.hpp"

#include <algorithm>
#include <stdexcept>

#include "frame/layout.hpp"

namespace mcan {

int worst_case_frame_bits(int dlc, bool extended, int eof_bits) {
  // Stuffable bits (SOF..CRC sequence); at most one stuff bit per 4
  // stuffable bits after the first — the Davis et al. ⌊(g+8s−1)/4⌋
  // correction of Tindell's refuted ⌊(g+8s)/5⌋ (see the header).
  const int stuffable =
      body_bits_for(8 * dlc) + (extended ? kExtendedExtraBits : 0);
  const int max_stuff = (stuffable - 1) / 4;
  const int tail = tail_bits_for(eof_bits);
  return stuffable + max_stuff + tail + kIntermissionBits;
}

int tindell_refuted_frame_bits(int dlc, bool extended, int eof_bits) {
  const int stuffable =
      body_bits_for(8 * dlc) + (extended ? kExtendedExtraBits : 0);
  const int understuff = stuffable / 5;  // the flaw: one per 5, not per 4
  const int tail = tail_bits_for(eof_bits);
  return stuffable + understuff + tail + kIntermissionBits;
}

bool arbitration_before(const RtaMessage& a, const RtaMessage& b) {
  const std::uint32_t base_a = a.extended ? a.can_id >> kExtIdBits : a.can_id;
  const std::uint32_t base_b = b.extended ? b.can_id >> kExtIdBits : b.can_id;
  if (base_a != base_b) return base_a < base_b;
  if (a.extended != b.extended) return !a.extended;  // dominant RTR/IDE wins
  return a.can_id < b.can_id;
}

std::vector<RtaRow> response_time_analysis(std::vector<RtaMessage> messages,
                                           int eof_bits) {
  std::sort(messages.begin(), messages.end(), arbitration_before);

  std::vector<RtaRow> rows;
  rows.reserve(messages.size());
  for (const RtaMessage& m : messages) {
    RtaRow r;
    r.msg = m;
    r.c_bits = worst_case_frame_bits(m.dlc, m.extended, eof_bits);
    rows.push_back(r);
  }

  for (std::size_t i = 0; i < rows.size(); ++i) {
    // Blocking: the longest lower-priority frame already on the wire.
    int blocking = 0;
    for (std::size_t k = i + 1; k < rows.size(); ++k) {
      blocking = std::max(blocking, rows[k].c_bits);
    }
    rows[i].blocking = blocking;

    // Fixed-point iteration of the queueing delay.
    const BitTime deadline = rows[i].msg.period;
    BitTime w = static_cast<BitTime>(blocking);
    for (;;) {
      BitTime next = static_cast<BitTime>(blocking);
      for (std::size_t j = 0; j < i; ++j) {
        const BitTime tj = rows[j].msg.period;
        const BitTime releases = (w + 1 + tj - 1) / tj;  // ceil((w+1)/T_j)
        next += releases * static_cast<BitTime>(rows[j].c_bits);
      }
      if (next + static_cast<BitTime>(rows[i].c_bits) > deadline) {
        rows[i].schedulable = false;
        rows[i].response = next + static_cast<BitTime>(rows[i].c_bits);
        break;
      }
      if (next == w) {
        rows[i].schedulable = true;
        rows[i].response = w + static_cast<BitTime>(rows[i].c_bits);
        break;
      }
      w = next;
    }
  }
  return rows;
}

std::vector<RtaMessage> sae_benchmark_set() {
  return {
      {"brake_cmd", 0x050, false, 2, 500},
      {"steer_angle", 0x080, false, 4, 700},
      {"wheel_speed", 0x100, false, 8, 900},
      {"engine_status", 0x180, false, 8, 1200},
      {"transmission", 0x200, false, 6, 1500},
      {"body_control", 0x280, false, 8, 2500},
      {"diagnostics", 0x600, false, 8, 5000},
  };
}

std::vector<RtaMessage> scale_periods(std::vector<RtaMessage> messages,
                                      double f) {
  if (f < 0.1 || !(f == f)) {
    throw std::invalid_argument("scale_periods: factor must be >= 0.1");
  }
  for (RtaMessage& m : messages) {
    const double t = static_cast<double>(m.period) * f;
    const BitTime floor_bits = 64;  // never below one short frame
    m.period = t < static_cast<double>(floor_bits)
                   ? floor_bits
                   : static_cast<BitTime>(t);
  }
  return messages;
}

double rta_utilisation(const std::vector<RtaRow>& rows) {
  double u = 0;
  for (const RtaRow& r : rows) {
    u += static_cast<double>(r.c_bits) / static_cast<double>(r.msg.period);
  }
  return u;
}

}  // namespace mcan
