#include "analysis/rta/error_model.hpp"

#include <cmath>
#include <stdexcept>

#include "frame/layout.hpp"

namespace mcan {

VariantErrorModel::VariantErrorModel(ProtocolParams proto, MeasuredRates rates)
    : proto_(proto), rates_(rates) {
  proto_.validate();
  if (rates_.ber < 0 || rates_.ber > 1 || !std::isfinite(rates_.ber)) {
    throw std::invalid_argument("VariantErrorModel: ber outside [0, 1]");
  }
  if (rates_.calibration < 0 || !std::isfinite(rates_.calibration)) {
    throw std::invalid_argument("VariantErrorModel: bad calibration factor");
  }
}

int VariantErrorModel::error_frame_bits() const {
  // First flag 6 bits; late detectors may stretch the superposition by up
  // to 5 more; then the variant's delimiter and the intermission.
  return 2 * ProtocolParams::flag_bits() - 1 + proto_.error_delim_total() +
         kIntermissionBits;
}

int VariantErrorModel::endgame_extra_bits() const {
  if (proto_.variant != Variant::MajorCan) return 0;
  return proto_.worst_case_overhead_bits() - proto_.best_case_overhead_bits();
}

int VariantErrorModel::retransmit_exposure(int c_bits) const {
  if (proto_.variant != Variant::MajorCan) {
    // Any corruption of the frame proper destroys the attempt.  The
    // intermission is not part of the vulnerable window.
    return c_bits - kIntermissionBits;
  }
  // MajorCAN: the accept-side EOF sub-field (and everything after it) no
  // longer forces a retransmission — detection there runs the end-game.
  return c_bits - kIntermissionBits - proto_.eof_bits() +
         proto_.first_subfield_bits();
}

int VariantErrorModel::endgame_exposure() const {
  if (proto_.variant != Variant::MajorCan) return 0;
  return proto_.eof_bits() - proto_.first_subfield_bits();
}

double VariantErrorModel::retransmit_prob(int c_bits) const {
  const int exposed = retransmit_exposure(c_bits);
  if (exposed <= 0) return 0;
  return 1.0 - std::pow(1.0 - bit_error_rate(), exposed);
}

double VariantErrorModel::endgame_prob(int c_bits) const {
  const int exposed = endgame_exposure();
  if (exposed <= 0) return 0;
  // Reaching the accept-side sub-field requires a clean run up to it.
  return (1.0 - retransmit_prob(c_bits)) *
         (1.0 - std::pow(1.0 - bit_error_rate(), exposed));
}

Pmf VariantErrorModel::attempt_pmf(int c_bits, int max_retx,
                                   BitTime cap) const {
  if (c_bits <= 0 || max_retx < 0) {
    throw std::invalid_argument("attempt_pmf: bad c_bits/max_retx");
  }
  const double p_retx = retransmit_prob(c_bits);
  const double p_end = endgame_prob(c_bits);
  const double p_clean = 1.0 - p_retx - p_end;
  // One failed attempt occupies the bus for at most the frame's own
  // worst-case length (error at the last vulnerable bit) plus the error
  // frame — the conservative per-error charge.
  const BitTime retry_cost =
      static_cast<BitTime>(c_bits) + static_cast<BitTime>(error_frame_bits());

  Pmf out;
  double remaining = 1.0;  // mass not yet placed: P{>= r retransmissions}
  for (int r = 0; r <= max_retx; ++r) {
    const BitTime base = static_cast<BitTime>(c_bits) +
                         static_cast<BitTime>(r) * retry_cost;
    if (cap != kNoCap && base > cap) break;  // all deeper outcomes: tail
    const BitTime end_v = base + static_cast<BitTime>(endgame_extra_bits());
    const double p_here = std::pow(p_retx, r);
    // Success (clean or via the tolerated end-game) on attempt r+1.
    const double clean_mass = p_here * p_clean;
    const double end_mass = p_here * p_end;
    out.add_mass(base, clean_mass);
    if (end_mass > 0) {
      if (cap == kNoCap || end_v <= cap) {
        out.add_mass(end_v, end_mass);
      } else {
        out.add_tail(end_mass);
      }
    }
    remaining -= clean_mass + end_mass;
  }
  // Chains deeper than max_retx — or capped out: tail (reads as a miss).
  if (remaining > 0) out.add_tail(remaining);
  return out;
}

}  // namespace mcan
