// Per-variant error models for the probabilistic WCRT analysis: what a
// channel error costs on the wire, per protocol.
//
//   * CAN / MinorCAN: any corrupting error up to the ACK delimiter (and,
//     for the transmitter, through the EOF) destroys the frame — error
//     flag, delimiter, intermission, then a full retransmission.
//   * MajorCAN_m (paper §5): the split EOF changes the economics.  An
//     error in the body or the first (reject-side) EOF sub-field still
//     forces a retransmission, but with the longer 2m+1 delimiter.  An
//     error first seen in the second (accept-side) sub-field runs the
//     end-game instead: the frame is *accepted* at the cost of the
//     extended-flag stretch (worst case 2m−2 extra bits) and no
//     retransmission happens.  That tolerance — disturbances near the
//     frame end cost bits, not a whole extra frame — is exactly what the
//     response-time distributions quantify.
//
// Error positions inside an attempt are bounded conservatively: a failed
// attempt is charged its full worst-case length (error at the last
// possible bit) plus the worst error frame.  The analytic distributions
// are therefore upper bounds, which the simulation harness
// (validate.hpp) confirms from below.
#pragma once

#include "analysis/rta/rates.hpp"
#include "analysis/stats/dist.hpp"
#include "core/protocol.hpp"

namespace mcan {

class VariantErrorModel {
 public:
  VariantErrorModel(ProtocolParams proto, MeasuredRates rates);

  [[nodiscard]] const ProtocolParams& protocol() const { return proto_; }
  [[nodiscard]] const MeasuredRates& rates() const { return rates_; }

  /// Calibrated network-wide per-bit corruption rate (any node's view).
  [[nodiscard]] double bit_error_rate() const {
    return rates_.effective_ber();
  }

  /// Worst-case error-frame overhead after a corrupted attempt: flag
  /// superposition (2·6−1) + error delimiter + intermission.
  [[nodiscard]] int error_frame_bits() const;

  /// MajorCAN: worst extra bits when the accept-side end-game runs
  /// (extended flags through position 3m+4 instead of a clean EOF tail),
  /// i.e. worst_case − best_case overhead = 2m−2.  0 for CAN/MinorCAN.
  [[nodiscard]] int endgame_extra_bits() const;

  /// P{a given transmission attempt of a c_bits frame is destroyed and
  /// must be retransmitted}.
  [[nodiscard]] double retransmit_prob(int c_bits) const;

  /// P{the attempt survives but runs the MajorCAN end-game} (accept-side
  /// detection; 0 for CAN/MinorCAN).
  [[nodiscard]] double endgame_prob(int c_bits) const;

  /// Distribution of the bus time one message transmission occupies,
  /// retransmissions included: an atom at c_bits (clean), the end-game
  /// atom (MajorCAN), and geometric retransmission atoms up to
  /// `max_retx`; deeper retransmission chains land in the tail.  Values
  /// beyond `cap` are truncated into the tail (conservative: reads as a
  /// deadline miss downstream).
  [[nodiscard]] Pmf attempt_pmf(int c_bits, int max_retx,
                                BitTime cap = kNoCap) const;

 private:
  /// Bits of an attempt where an error forces a retransmission.
  [[nodiscard]] int retransmit_exposure(int c_bits) const;
  /// Bits of an attempt where an error triggers the accept-side end-game.
  [[nodiscard]] int endgame_exposure() const;

  ProtocolParams proto_;
  MeasuredRates rates_;
};

}  // namespace mcan
