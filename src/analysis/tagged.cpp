#include "analysis/tagged.hpp"

#include <stdexcept>

namespace mcan {

Frame make_tagged_frame(std::uint32_t can_id, MsgKind kind, MessageKey key,
                        std::uint8_t dlc) {
  if (dlc < 4) throw std::invalid_argument("tagged frames need dlc >= 4");
  Frame f = Frame::make_blank(can_id, dlc);
  f.data[0] = static_cast<std::uint8_t>(kind);
  f.data[1] = static_cast<std::uint8_t>(key.source);
  f.data[2] = static_cast<std::uint8_t>(key.seq >> 8);
  f.data[3] = static_cast<std::uint8_t>(key.seq & 0xff);
  return f;
}

std::optional<Tag> parse_tag(const Frame& f) {
  if (f.remote || f.dlc < 4) return std::nullopt;
  if (f.data[0] > static_cast<std::uint8_t>(MsgKind::Accept)) return std::nullopt;
  Tag tag;
  tag.kind = static_cast<MsgKind>(f.data[0]);
  tag.key.source = f.data[1];
  tag.key.seq = static_cast<std::uint16_t>((f.data[2] << 8) | f.data[3]);
  return tag;
}

}  // namespace mcan
