// Choosing MajorCAN's m for a given environment (paper §5).
//
// The paper proposes m = 5 to match the CRC's detection guarantee, but
// notes: "this decision strongly depends on the ber value.  If ber is
// larger then larger values of m should be considered.  So the new
// protocol ... is designed to be parametrisable in m to make the upgrade
// simpler."  This module makes that engineering decision computable: under
// the ber* error model the number of per-node view errors per frame is
// Binomial(N * tau, ber*); MajorCAN_m guarantees consistency for up to m
// of them, so the residual exposure rate is
//     P{ > m errors in a frame } * frames/hour,
// to be driven below a dependability target (1e-9/h in aerospace).
#pragma once

#include <string>
#include <vector>

#include "analysis/prob_model.hpp"

namespace mcan {

/// P{exactly k Bernoulli(p) successes out of n} — numerically stable for
/// the small-p large-n regime used here.
[[nodiscard]] double binomial_pmf(int n, int k, double p);

/// P{more than m errors affect node views during one frame} under the
/// ber* model: n = N * tau trials at p = ber*.
[[nodiscard]] double p_more_than_m_errors_per_frame(const ModelParams& p, int m);

/// Residual exposure of MajorCAN_m per hour (frames/hour * P{> m}).
[[nodiscard]] double residual_exposure_per_hour(const ModelParams& p, int m);

struct TuningRow {
  int m = 0;
  double p_exceed_per_frame = 0;
  double exposure_per_hour = 0;
  int overhead_bits_best = 0;
  int overhead_bits_worst = 0;
};

/// Exposure/overhead trade-off table for m in [3, m_max].
[[nodiscard]] std::vector<TuningRow> tuning_table(const ModelParams& p,
                                                  int m_max = 12);

/// Smallest m >= 3 whose residual exposure is below `target_per_hour`
/// (returns m_max+1 if none qualifies up to m_max).
[[nodiscard]] int recommend_m(const ModelParams& p, double target_per_hour,
                              int m_max = 32);

[[nodiscard]] std::string render_tuning_table(const std::vector<TuningRow>& rows);

}  // namespace mcan
