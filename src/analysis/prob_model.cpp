#include "analysis/prob_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/text.hpp"

namespace mcan {

void ModelParams::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("prob_model: " + what);
  };
  if (!(ber > 0.0) || ber > 1.0) {
    bad("ber must be in (0, 1], got " + sci(ber));
  }
  if (!(load > 0.0) || load > 1.0) {
    bad("load must be in (0, 1], got " + sci(load));
  }
  if (n_nodes < 2) {
    bad("n_nodes must be >= 2 (a transmitter and at least one receiver), "
        "got " + std::to_string(n_nodes));
  }
  if (frame_bits <= 0) {
    bad("frame_bits must be positive, got " + std::to_string(frame_bits));
  }
  if (!(bitrate > 0.0)) {
    bad("bitrate must be positive, got " + sci(bitrate));
  }
  if (lambda_per_hour < 0.0 || !std::isfinite(lambda_per_hour)) {
    bad("lambda_per_hour must be finite and >= 0, got " +
        sci(lambda_per_hour));
  }
  if (delta_t_s < 0.0 || !std::isfinite(delta_t_s)) {
    bad("delta_t_s must be finite and >= 0, got " + sci(delta_t_s));
  }
}

double binom(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double r = 1.0;
  for (int i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

namespace {

/// Shared receiver-split factor of expressions (4) and (5):
///   sum_{i=1}^{N-2} C(N-1, i) * [ (1-b)^(τ-2) * b ]^i * [ (1-b)^(τ-1) ]^(N-1-i)
/// i receivers hit exactly in the last-but-one bit (clean elsewhere), the
/// other N-1-i receivers clean for the whole frame; at least one on each
/// side so the receiver set genuinely splits.
double receiver_split_factor(const ModelParams& p) {
  const double b = p.ber_star();
  const int n = p.n_nodes;
  const int tau = p.frame_bits;
  const double hit = std::pow(1.0 - b, tau - 2) * b;
  const double clean = std::pow(1.0 - b, tau - 1);
  double sum = 0.0;
  for (int i = 1; i <= n - 2; ++i) {
    sum += binom(n - 1, i) * std::pow(hit, i) * std::pow(clean, n - 1 - i);
  }
  return sum;
}

}  // namespace

double p_new_scenario_per_frame(const ModelParams& p) {
  p.validate();
  const double b = p.ber_star();
  const int tau = p.frame_bits;
  // Transmitter clean until the last bit, then hit exactly there so it
  // cannot see the receivers' error flag (expression (4), last factor).
  const double tx_hit_last = std::pow(1.0 - b, tau - 1) * b;
  return receiver_split_factor(p) * tx_hit_last;
}

double p_old_scenario_per_frame(const ModelParams& p) {
  p.validate();
  const double b = p.ber_star();
  const int tau = p.frame_bits;
  // Transmitter clean for the whole frame but crashing within Δt before the
  // retransmission (expression (5), last factor).
  const double lambda_per_s = p.lambda_per_hour / 3600.0;
  const double crash = 1.0 - std::exp(-lambda_per_s * p.delta_t_s);
  const double tx_clean = std::pow(1.0 - b, tau - 2);
  return receiver_split_factor(p) * tx_clean * crash;
}

double imo_new_per_hour(const ModelParams& p) {
  return p_new_scenario_per_frame(p) * p.frames_per_hour();
}

double imo_old_star_per_hour(const ModelParams& p) {
  return p_old_scenario_per_frame(p) * p.frames_per_hour();
}

std::vector<Table1Row> compute_table1() {
  // Published maxima of the Rufino et al. model [10], quoted by the paper
  // for the same ber values (their own model, not re-derived here).
  const double rufino[3] = {3.94e-6, 3.98e-7, 3.98e-8};
  const double bers[3] = {1e-4, 1e-5, 1e-6};

  std::vector<Table1Row> rows;
  for (int i = 0; i < 3; ++i) {
    ModelParams p;
    p.ber = bers[i];
    Table1Row row;
    row.ber = bers[i];
    row.imo_new_per_hour = imo_new_per_hour(p);
    row.imo_rufino_per_hour = rufino[i];
    row.imo_old_star_per_hour = imo_old_star_per_hour(p);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Table1Row> published_table1() {
  return {
      {1e-4, 8.80e-3, 3.94e-6, 3.92e-6},
      {1e-5, 8.91e-5, 3.98e-7, 3.96e-7},
      {1e-6, 8.92e-7, 3.98e-8, 3.96e-8},
  };
}

std::string render_table1(const std::vector<Table1Row>& rows) {
  std::vector<std::vector<std::string>> cells;
  cells.push_back({"ber", "IMOnew/hour (Fig 3a)", "IMO/hour (Fig 1c, [10])",
                   "IMO*/hour (Fig 1c, ber*)"});
  for (const Table1Row& r : rows) {
    cells.push_back({sci(r.ber, 1), sci(r.imo_new_per_hour),
                     sci(r.imo_rufino_per_hour), sci(r.imo_old_star_per_hour)});
  }
  return render_table(cells);
}

}  // namespace mcan
