#include "analysis/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace mcan {

Summary Summary::of(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.0f mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%.0f",
                count, min, mean, p50, p95, p99, max);
  return buf;
}

void LatencyTracker::on_broadcast(const MessageKey& key, BitTime t) {
  sent_.emplace(key, t);
}

void LatencyTracker::on_delivery(NodeId node, const MessageKey& key,
                                 BitTime t) {
  if (!first_delivery_.emplace(std::make_pair(node, key), t).second) {
    return;  // duplicate: latency is to the first copy
  }
  auto it = sent_.find(key);
  if (it == sent_.end()) return;
  latencies_.push_back(static_cast<double>(t - it->second));
}

Summary LatencyTracker::summary() const { return Summary::of(latencies_); }

void UtilizationProbe::on_bit(const BitRecord& rec) {
  ++total_;
  if (is_dominant(rec.bus)) ++dominant_;
  for (std::size_t i = 0; i < rec.info.size(); ++i) {
    if (!rec.active[i]) continue;
    const Seg s = rec.info[i].seg;
    if (s != Seg::Idle && s != Seg::Intermission && s != Seg::Off) {
      ++busy_;
      return;
    }
  }
}

}  // namespace mcan
