#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace mcan {

Summary Summary::of(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.0f mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%.0f",
                count, min, mean, p50, p95, p99, max);
  return buf;
}

void LatencyTracker::on_broadcast(const MessageKey& key, BitTime t) {
  sent_.emplace(key, t);
}

void LatencyTracker::on_delivery(NodeId node, const MessageKey& key,
                                 BitTime t) {
  if (!first_delivery_.emplace(std::make_pair(node, key), t).second) {
    return;  // duplicate: latency is to the first copy
  }
  auto it = sent_.find(key);
  if (it == sent_.end()) return;
  latencies_.push_back(static_cast<double>(t - it->second));
}

Summary LatencyTracker::summary() const { return Summary::of(latencies_); }

void StreamingMoments::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double StreamingMoments::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingMoments::std_error() const {
  return n_ > 1 ? std::sqrt(variance() / static_cast<double>(n_)) : 0.0;
}

std::string StreamingMoments::serialize() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%lld %la %la", n_, mean_, m2_);
  return buf;
}

bool StreamingMoments::parse(const std::string& s, StreamingMoments& out) {
  StreamingMoments m;
  if (std::sscanf(s.c_str(), "%lld %la %la", &m.n_, &m.mean_, &m.m2_) != 3) {
    return false;
  }
  out = m;
  return true;
}

std::pair<double, double> wilson_interval(long long hits, long long trials,
                                          double z) {
  if (trials <= 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(hits) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

std::string RareEstimate::to_string() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "p=%.3e ci95=[%.3e, %.3e] (rel +/-%.0f%%) hits=%lld/%lld "
                "ess=%.1f",
                p_hat, ci_lo, ci_hi, 100.0 * rel_halfwidth, hits, trials,
                ess);
  return buf;
}

void RareAccumulator::add(double x) {
  moments_.add(x);
  if (x != 0.0) {
    ++hits_;
    sum_w_ += x;
    sum_w2_ += x * x;
    max_w_ = std::max(max_w_, x);
    if (x != 1.0) weighted_ = true;
  }
}

RareEstimate RareAccumulator::estimate(double z) const {
  RareEstimate e;
  e.trials = moments_.count();
  e.hits = hits_;
  e.p_hat = moments_.mean();
  e.std_err = moments_.std_error();
  e.max_weight = max_w_;
  e.ess = sum_w2_ > 0 ? sum_w_ * sum_w_ / sum_w2_ : 0.0;
  if (!weighted_) {
    // Unweighted 0/1 indicators: the binomial Wilson interval is exact-ish
    // and behaves at 0 hits, where the log-normal interval degenerates.
    const auto [lo, hi] = wilson_interval(hits_, e.trials, z);
    e.ci_lo = lo;
    e.ci_hi = hi;
  } else if (e.p_hat > 0 && e.std_err > 0) {
    // Log-normal CI (delta method on log p): multiplicative error bars that
    // cannot cross zero, the standard for heavy-tailed importance weights.
    const double delta = z * e.std_err / e.p_hat;
    e.ci_lo = e.p_hat * std::exp(-delta);
    e.ci_hi = e.p_hat * std::exp(delta);
  }
  if (e.p_hat > 0) {
    e.rel_halfwidth = (e.ci_hi - e.ci_lo) / (2.0 * e.p_hat);
  }
  return e;
}

std::string RareAccumulator::serialize() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf), "%s %lld %la %la %la %d",
                moments_.serialize().c_str(), hits_, sum_w_, sum_w2_, max_w_,
                weighted_ ? 1 : 0);
  return buf;
}

bool RareAccumulator::parse(const std::string& s, RareAccumulator& out) {
  RareAccumulator a;
  int weighted = 0;
  long long n = 0;
  double mean = 0, m2 = 0;
  if (std::sscanf(s.c_str(), "%lld %la %la %lld %la %la %la %d", &n, &mean,
                  &m2, &a.hits_, &a.sum_w_, &a.sum_w2_, &a.max_w_,
                  &weighted) != 8) {
    return false;
  }
  if (!StreamingMoments::parse(s, a.moments_)) return false;
  a.weighted_ = weighted != 0;
  out = a;
  return true;
}

void UtilizationProbe::on_bit(const BitRecord& rec) {
  ++total_;
  if (is_dominant(rec.bus)) ++dominant_;
  for (std::size_t i = 0; i < rec.info.size(); ++i) {
    if (!rec.active[i]) continue;
    const Seg s = rec.info[i].seg;
    if (s != Seg::Idle && s != Seg::Intermission && s != Seg::Off) {
      ++busy_;
      return;
    }
  }
}

}  // namespace mcan
