// The paper's probabilistic model of inconsistency scenarios (§4).
//
// Error spatial model (Charzinski): a bit error somewhere on the network
// affects one particular node's view with probability p_eff = 1/N, so the
// per-node per-bit error probability is ber* = ber / N  (expression (3)).
//
// Expression (4): probability per frame of the *new* scenario (Fig. 3a) —
// at least one receiver (but not all) hit in the last-but-one bit, the rest
// of the receivers clean for the whole frame, and the transmitter hit in
// the last bit so it cannot see the error flag.
//
// Expression (5): probability per frame of the *old* scenario (Fig. 1c) —
// same receiver split, transmitter clean but crashing within the
// vulnerability window Δt before the retransmission (rate λ).
//
// Table 1 multiplies by the hourly frame count of the reference bus
// (1 Mbit/s, 90% load, τ = 110-bit frames, 32 nodes).
#pragma once

#include <string>
#include <vector>

namespace mcan {

struct ModelParams {
  int n_nodes = 32;             ///< N
  double ber = 1e-5;            ///< bit error rate, network-wide
  int frame_bits = 110;         ///< τ_data
  double bitrate = 1e6;         ///< bus speed [bit/s]
  double load = 0.9;            ///< fraction of bus time carrying frames
  double lambda_per_hour = 1e-3;  ///< transmitter crash rate (expr. (5))
  double delta_t_s = 5e-3;        ///< vulnerability window Δt (expr. (5))

  /// Throws std::invalid_argument naming the offending field when the
  /// parameters cannot feed the closed forms: ber outside (0, 1], load
  /// outside (0, 1], fewer than 2 nodes, or non-positive frame length /
  /// bitrate / crash-model values.  Every exported expression evaluator
  /// calls this, so a bad configuration fails loudly instead of silently
  /// producing NaN or garbage rates.
  void validate() const;

  /// ber* = ber / N  (expression (3)).
  [[nodiscard]] double ber_star() const { return ber / n_nodes; }

  /// Frames transmitted per hour at the configured load.
  [[nodiscard]] double frames_per_hour() const {
    return bitrate * load / frame_bits * 3600.0;
  }
};

/// Expression (4): P{new scenario (Fig. 3a) in a frame}.
[[nodiscard]] double p_new_scenario_per_frame(const ModelParams& p);

/// Expression (5): P{old scenario (Fig. 1c) in a frame}, ber* model.
[[nodiscard]] double p_old_scenario_per_frame(const ModelParams& p);

/// IMOnew/hour — Table 1, column 2.
[[nodiscard]] double imo_new_per_hour(const ModelParams& p);

/// IMO*/hour — Table 1, column 4.
[[nodiscard]] double imo_old_star_per_hour(const ModelParams& p);

/// One row of Table 1.
struct Table1Row {
  double ber = 0;
  double imo_new_per_hour = 0;       ///< our model, new scenarios (Fig. 3a)
  double imo_rufino_per_hour = 0;    ///< published values from [10] (Fig. 1c)
  double imo_old_star_per_hour = 0;  ///< our ber* model, old scenarios
};

/// The paper's Table 1: ber in {1e-4, 1e-5, 1e-6} with the reference
/// parameters.  The Rufino column carries the values published in the paper
/// (computed with their model, which we do not re-derive).
[[nodiscard]] std::vector<Table1Row> compute_table1();

/// The paper's published Table 1 numbers, for comparison in tests/benches.
[[nodiscard]] std::vector<Table1Row> published_table1();

/// Render rows in the paper's layout.
[[nodiscard]] std::string render_table1(const std::vector<Table1Row>& rows);

/// Binomial coefficient as a double (exact for the sizes used here).
[[nodiscard]] double binom(int n, int k);

}  // namespace mcan
