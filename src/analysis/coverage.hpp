// FSM transition-coverage reporting.
//
// When the build is configured with -DMCAN_FSM_COVERAGE=ON the controller
// records every state transition it takes (core/fsm_coverage.hpp) into a
// per-variant matrix.  This module turns that raw matrix into a report
// against the *expected* transition relation of each protocol variant —
// the edges the paper's rules permit — so a sweep can answer two
// questions the raw violation counts cannot:
//
//   * which legal transitions were never exercised (a hole in the test
//     input space: the sweep proved nothing about that edge), and
//   * which recorded transitions are not in the expected relation (either
//     a controller bug or a hole in this module's model of the FSM —
//     both worth failing CI over).
//
// The expected relation is written down edge-by-edge in coverage.cpp with
// a citation for each edge; docs/MODEL_CHECKING.md explains the
// methodology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fsm_coverage.hpp"
#include "core/protocol.hpp"

namespace mcan {

struct FsmEdge {
  FsmState from = FsmState::Idle;
  FsmState to = FsmState::Idle;
  std::uint64_t count = 0;  ///< 0 for expected-but-unexercised edges
};

struct FsmCoverageReport {
  Variant variant = Variant::StandardCan;
  bool instrumented = false;  ///< false when built without MCAN_FSM_COVERAGE

  std::vector<FsmEdge> visited;          ///< recorded, with counts
  std::vector<FsmEdge> never_exercised;  ///< expected but count == 0
  std::vector<FsmEdge> unexpected;       ///< recorded but not expected
  std::vector<FsmState> unreached_states;  ///< relevant states never entered

  /// Exercised fraction of the expected transition relation, in [0, 1].
  [[nodiscard]] double transition_coverage() const;

  /// Human-readable multi-line report.
  [[nodiscard]] std::string summary() const;

  /// JSON object (stable key order) for the CI artifact.
  [[nodiscard]] std::string to_json() const;
};

/// The expected transition relation for one variant (count fields are 0).
[[nodiscard]] std::vector<FsmEdge> expected_fsm_transitions(Variant v);

/// Snapshot the recorded matrix for `v` and diff it against the expected
/// relation.  Meaningful after running workloads; call
/// fsm_coverage::reset() first to scope the report to one experiment.
[[nodiscard]] FsmCoverageReport collect_fsm_coverage(Variant v);

}  // namespace mcan
