// Atomic Broadcast property checker (paper §2, AB1–AB5).
//
// Consumes ground-truth broadcast records and per-node delivery journals and
// reports, for each property, how many violations occurred:
//
//   AB1 Validity            — a correct node's broadcast is eventually
//                             delivered to some correct node.
//   AB2 Agreement           — delivered at one correct node => delivered at
//                             all correct nodes.  An AB2 violation is exactly
//                             an inconsistent message omission (IMO).
//   AB3 At-most-once        — no duplicate deliveries at a node.
//   AB4 Non-triviality      — every delivered message was broadcast.
//   AB5 Total order         — any two messages delivered at two correct
//                             nodes are delivered in the same order.
//
// "Correct" nodes are supplied by the caller (nodes that were crashed or
// switched off are excluded from the quantifiers, per the definition).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/tagged.hpp"
#include "util/bit.hpp"

namespace mcan {

struct BroadcastRecord {
  MessageKey key;
  NodeId sender = 0;
};

struct DeliveryEvent {
  MessageKey key;
  BitTime t = 0;
};

/// Per-node delivery journal: deliveries in order of occurrence.
using DeliveryJournal = std::vector<DeliveryEvent>;

struct AbReport {
  int broadcasts = 0;
  int correct_nodes = 0;

  int validity_violations = 0;      ///< AB1
  int agreement_violations = 0;     ///< AB2 — the IMO count
  int duplicate_deliveries = 0;     ///< AB3 — extra copies beyond the first
  int nontriviality_violations = 0; ///< AB4
  long long order_inversions = 0;   ///< AB5 — message pairs seen in both orders

  /// Per-source FIFO violations: a node delivering two messages of one
  /// sender out of sequence-number order (first deliveries compared).
  /// CAN's sender-side queue is FIFO, so this should stay zero even where
  /// total order fails — the checker verifies rather than assumes it.
  long long fifo_violations = 0;

  /// Messages delivered twice somewhere (the "double reception" phenomenon).
  int messages_with_duplicates = 0;

  [[nodiscard]] bool atomic_broadcast() const {
    return validity_violations == 0 && agreement_violations == 0 &&
           duplicate_deliveries == 0 && nontriviality_violations == 0 &&
           order_inversions == 0;
  }

  /// Reliable broadcast = everything except total order (what EDCAN gives).
  [[nodiscard]] bool reliable_broadcast() const {
    return validity_violations == 0 && agreement_violations == 0 &&
           nontriviality_violations == 0;
  }

  [[nodiscard]] std::string summary() const;
};

/// Check AB1–AB5.
///
/// `journals` maps node id -> its delivery journal; every key present is
/// treated as a node.  `correct` lists the nodes that remained correct
/// (never crashed / switched off) — only those participate in the
/// quantifiers.  The sender of a broadcast must be correct for AB1 to apply
/// to it; senders not in `correct` relax AB1 (but not AB2) for their
/// messages.
[[nodiscard]] AbReport check_atomic_broadcast(
    const std::vector<BroadcastRecord>& broadcasts,
    const std::map<NodeId, DeliveryJournal>& journals,
    const std::set<NodeId>& correct);

}  // namespace mcan
