// Tagged messages: ground-truth identity for broadcast property checking.
//
// The property checker must match deliveries at different nodes to the
// application message that was broadcast.  We carry the identity *in the
// payload* — data[0] = message kind, data[1] = source node, data[2..3] =
// 16-bit sequence number (big endian) — so identity survives exactly as far
// as the real frame content does: a frame corrupted past the CRC would show
// up as a non-triviality (AB4) violation instead of being silently matched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "frame/frame.hpp"
#include "util/bit.hpp"

namespace mcan {

/// Application-level message kinds used by the campaigns and the
/// higher-level protocols (EDCAN/RELCAN/TOTCAN).
enum class MsgKind : std::uint8_t {
  Data = 0,
  Confirm = 1,  ///< RELCAN
  Accept = 2,   ///< TOTCAN
};

struct MessageKey {
  NodeId source = 0;
  std::uint16_t seq = 0;

  [[nodiscard]] bool operator==(const MessageKey&) const = default;
  [[nodiscard]] auto operator<=>(const MessageKey&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "m(" + std::to_string(source) + "," + std::to_string(seq) + ")";
  }
};

struct Tag {
  MsgKind kind = MsgKind::Data;
  MessageKey key;
};

/// Build a tagged frame.  `can_id` sets the arbitration priority; extra
/// payload bytes (beyond the 4 tag bytes) are zero.
[[nodiscard]] Frame make_tagged_frame(std::uint32_t can_id, MsgKind kind,
                                      MessageKey key, std::uint8_t dlc = 4);

/// Recover the tag from a delivered frame; nullopt if the frame cannot
/// carry one (dlc < 4 or unknown kind byte).
[[nodiscard]] std::optional<Tag> parse_tag(const Frame& f);

}  // namespace mcan
