#include "analysis/stats/dist.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mcan {

Pmf Pmf::point(BitTime v) {
  Pmf d;
  d.add_mass(v, 1.0);
  return d;
}

void Pmf::add_mass(BitTime v, double p) {
  if (p < 0 || !std::isfinite(p)) {
    throw std::invalid_argument("Pmf::add_mass: mass must be finite and >= 0");
  }
  if (v == kNoCap) {
    throw std::invalid_argument("Pmf::add_mass: value collides with kNoCap");
  }
  if (p == 0) return;
  if (p_.empty()) {
    offset_ = v;
    p_.push_back(p);
    return;
  }
  if (v < offset_) {
    p_.insert(p_.begin(), offset_ - v, 0.0);
    offset_ = v;
  } else if (v >= offset_ + p_.size()) {
    p_.resize(static_cast<std::size_t>(v - offset_) + 1, 0.0);
  }
  p_[static_cast<std::size_t>(v - offset_)] += p;
}

BitTime Pmf::max_value() const {
  if (p_.empty()) {
    throw std::logic_error("Pmf::max_value: no finite support");
  }
  return offset_ + p_.size() - 1;
}

double Pmf::mass_at(BitTime v) const {
  if (p_.empty() || v < offset_ || v >= offset_ + p_.size()) return 0.0;
  return p_[static_cast<std::size_t>(v - offset_)];
}

double Pmf::total_mass() const {
  double s = tail_;
  for (double p : p_) s += p;
  return s;
}

double Pmf::cdf(BitTime v) const {
  double s = 0;
  for (std::size_t i = 0; i < p_.size() && offset_ + i <= v; ++i) s += p_[i];
  return s;
}

double Pmf::exceed(BitTime v) const {
  double s = tail_;
  for (std::size_t i = 0; i < p_.size(); ++i) {
    if (offset_ + i > v) s += p_[i];
  }
  return s;
}

double Pmf::partial_mean() const {
  double s = 0;
  for (std::size_t i = 0; i < p_.size(); ++i) {
    s += static_cast<double>(offset_ + i) * p_[i];
  }
  return s;
}

std::optional<BitTime> Pmf::quantile(double q) const {
  const double target = q * total_mass();
  double s = 0;
  for (std::size_t i = 0; i < p_.size(); ++i) {
    s += p_[i];
    if (s >= target) return offset_ + i;
  }
  return std::nullopt;  // the quantile sits in the truncated tail
}

void Pmf::shift(BitTime d) {
  if (!p_.empty()) offset_ += d;
}

void Pmf::scale(double f) {
  if (f < 0 || !std::isfinite(f)) {
    throw std::invalid_argument("Pmf::scale: factor must be finite and >= 0");
  }
  for (double& p : p_) p *= f;
  tail_ *= f;
}

void Pmf::accumulate(const Pmf& other) {
  for (std::size_t i = 0; i < other.p_.size(); ++i) {
    if (other.p_[i] != 0) add_mass(other.offset_ + i, other.p_[i]);
  }
  tail_ += other.tail_;
}

std::pair<Pmf, Pmf> Pmf::split(BitTime t) const {
  Pmf below;
  Pmf above;
  above.tail_ = tail_;
  for (std::size_t i = 0; i < p_.size(); ++i) {
    if (p_[i] == 0) continue;
    const BitTime v = offset_ + i;
    (v < t ? below : above).add_mass(v, p_[i]);
  }
  return {std::move(below), std::move(above)};
}

Pmf Pmf::convolve(const Pmf& a, const Pmf& b, BitTime cap) {
  Pmf out;
  const double ta = a.total_mass(), tb = b.total_mass();
  if (a.p_.empty() || b.p_.empty()) {
    // No finite part on one side: everything lands in the tail (a tail
    // plus anything stays a tail), except the product of two empties.
    out.tail_ = ta * tb;
    return out;
  }
  const BitTime lo = a.offset_ + b.offset_;
  if (cap != kNoCap && lo > cap) {
    out.tail_ = ta * tb;
    return out;
  }
  const BitTime hi_unc = a.offset_ + a.p_.size() - 1 + b.offset_ +
                         b.p_.size() - 1;
  const BitTime hi = cap == kNoCap ? hi_unc : std::min(hi_unc, cap);
  out.offset_ = lo;
  out.p_.assign(static_cast<std::size_t>(hi - lo) + 1, 0.0);
  double kept = 0;
  for (std::size_t i = 0; i < a.p_.size(); ++i) {
    if (a.p_[i] == 0) continue;
    for (std::size_t j = 0; j < b.p_.size(); ++j) {
      if (b.p_[j] == 0) continue;
      const BitTime v = a.offset_ + i + b.offset_ + j;
      if (v > hi) break;  // b support is ordered: the rest only grows
      const double m = a.p_[i] * b.p_[j];
      out.p_[static_cast<std::size_t>(v - lo)] += m;
      kept += m;
    }
  }
  // Mass conservation: everything the finite grid did not keep — capped
  // outcomes and any pairing involving a tail — is tail mass.
  out.tail_ = ta * tb - kept;
  if (out.tail_ < 0) out.tail_ = 0;  // guard against rounding underflow
  return out;
}

std::string Pmf::serialize() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pmf %llu %zu %la",
                static_cast<unsigned long long>(offset_), p_.size(), tail_);
  std::string s = buf;
  for (double p : p_) {
    std::snprintf(buf, sizeof(buf), " %la", p);
    s += buf;
  }
  return s;
}

bool Pmf::parse(const std::string& s, Pmf& out) {
  const char* c = s.c_str();
  unsigned long long offset = 0;
  std::size_t n = 0;
  double tail = 0;
  int consumed = 0;
  if (std::sscanf(c, "pmf %llu %zu %la%n", &offset, &n, &tail, &consumed) != 3) {
    return false;
  }
  Pmf d;
  d.offset_ = offset;
  d.tail_ = tail;
  d.p_.resize(n);
  c += consumed;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::sscanf(c, " %la%n", &d.p_[i], &consumed) != 1) return false;
    c += consumed;
  }
  while (*c == ' ') ++c;
  if (*c != '\0') return false;
  out = std::move(d);
  return true;
}

}  // namespace mcan
