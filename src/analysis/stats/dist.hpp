// Discrete delay distributions for the probabilistic response-time
// analysis (src/analysis/rta/): a probability mass function over integer
// bit-time values, with the operations the convolution-based WCRT method
// needs — convolution under a truncation cap, quantiles, tail bounds —
// and the exact hex-float serialization discipline the rare-event
// accumulators use (parse(serialize()) reproduces the object bit for bit).
//
// Truncation is *absorbing and conservative*: convolving under a cap
// lumps every outcome beyond the cap into an explicit `tail_mass`, which
// the schedulability analysis reads as "deadline missed".  Mass is never
// silently dropped — total_mass() stays at the product/sum the algebra
// implies (1.0 for properly normalised inputs, up to rounding).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/bit.hpp"

namespace mcan {

/// Convolution cap meaning "no truncation".
inline constexpr BitTime kNoCap = ~BitTime{0};

class Pmf {
 public:
  /// The empty distribution (no mass anywhere).
  Pmf() = default;

  /// Degenerate distribution: all mass at `v`.
  [[nodiscard]] static Pmf point(BitTime v);

  /// Add `p` of probability mass at value `v` (extends the support as
  /// needed).  Negative mass and values at kNoCap are rejected.
  void add_mass(BitTime v, double p);

  /// Move `p` of probability mass into the truncated tail ("beyond any
  /// modelled value"; reads as a deadline miss downstream).
  void add_tail(double p) { tail_ += p; }

  [[nodiscard]] bool empty() const { return p_.empty() && tail_ == 0.0; }
  [[nodiscard]] BitTime min_value() const { return offset_; }
  /// Largest finite support value; requires a non-empty finite part.
  [[nodiscard]] BitTime max_value() const;
  [[nodiscard]] bool has_finite_mass() const { return !p_.empty(); }

  /// P{X = v} over the finite support (0 outside it).
  [[nodiscard]] double mass_at(BitTime v) const;
  /// Mass truncated beyond the finite support by a capped convolution.
  [[nodiscard]] double tail_mass() const { return tail_; }
  /// Finite mass + tail mass (≈ 1 for a normalised distribution).
  [[nodiscard]] double total_mass() const;

  /// P{X <= v}, counting finite mass only (the tail sits above every v).
  [[nodiscard]] double cdf(BitTime v) const;
  /// P{X > v}: finite mass above `v` plus the whole truncated tail.
  [[nodiscard]] double exceed(BitTime v) const;

  /// Mean over the finite support (conditional on not-tail, unnormalised:
  /// callers wanting E[X | finite] divide by (total_mass - tail_mass)).
  [[nodiscard]] double partial_mean() const;

  /// Smallest v with cdf(v) >= q * total_mass(); nullopt when the
  /// quantile falls inside the truncated tail (i.e. beyond the cap).
  [[nodiscard]] std::optional<BitTime> quantile(double q) const;

  /// Shift the whole finite support by `d` bit times.
  void shift(BitTime d);

  /// Multiply every mass (finite and tail) by `f` — for building mixtures.
  void scale(double f);

  /// Accumulate another distribution's mass into this one (mixture sum;
  /// combine with scale() for weighted mixtures).
  void accumulate(const Pmf& other);

  /// Split at `t`: first carries the finite mass at values < t, second
  /// the finite mass at values >= t plus the whole tail (the tail sits
  /// above every finite value).  first.total + second.total == total.
  /// The conditional-convolution step of the busy-period iteration is
  /// built on this: only the part of the delay distribution still "busy"
  /// at a release instant receives that instance's transmission time.
  [[nodiscard]] std::pair<Pmf, Pmf> split(BitTime t) const;

  /// Distribution of X + Y for independent X ~ a, Y ~ b.  Outcomes above
  /// `cap` — and every pairing involving either tail — land in the result
  /// tail, so total_mass() is preserved at a.total * b.total exactly
  /// (up to rounding).
  [[nodiscard]] static Pmf convolve(const Pmf& a, const Pmf& b,
                                    BitTime cap = kNoCap);

  /// Exact round-trip serialization ("%la" hex floats, like
  /// StreamingMoments): parse(serialize()) == *this bit for bit.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static bool parse(const std::string& s, Pmf& out);

  [[nodiscard]] bool operator==(const Pmf&) const = default;

 private:
  BitTime offset_ = 0;      ///< value of p_[0]
  std::vector<double> p_;   ///< finite support, contiguous from offset_
  double tail_ = 0;         ///< mass truncated beyond the cap
};

}  // namespace mcan
