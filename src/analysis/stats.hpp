// Run statistics: delivery-latency distributions and bus utilisation,
// computed from delivery journals and the per-bit trace.  Used by the
// latency/bandwidth extension benches (the cost side of the paper's
// overhead argument under realistic traffic and noise).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/tagged.hpp"
#include "sim/simulator.hpp"

namespace mcan {

/// Five-number-ish summary of a sample of values.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  [[nodiscard]] static Summary of(std::vector<double> values);
  [[nodiscard]] std::string to_string() const;
};

/// Tracks broadcast-to-delivery latency per (message, receiver).
class LatencyTracker {
 public:
  /// Record that `key` was handed to its sender's queue at time `t`.
  void on_broadcast(const MessageKey& key, BitTime t);

  /// Record a delivery of `key` at `node` at time `t` (first copy counts).
  void on_delivery(NodeId node, const MessageKey& key, BitTime t);

  /// All recorded latencies, in bit times.
  [[nodiscard]] Summary summary() const;

  /// Messages broadcast but never delivered at some node are not latency
  /// samples; how many (message, node) deliveries were recorded.
  [[nodiscard]] std::size_t samples() const { return latencies_.size(); }

 private:
  std::map<MessageKey, BitTime> sent_;
  std::map<std::pair<NodeId, MessageKey>, BitTime> first_delivery_;
  std::vector<double> latencies_;
};

/// Trace observer measuring how busy the bus is: a bit is "busy" when any
/// node is inside a frame, flag or delimiter (anything but idle,
/// intermission or off).
class UtilizationProbe final : public TraceObserver {
 public:
  void on_bit(const BitRecord& rec) override;

  [[nodiscard]] BitTime total_bits() const { return total_; }
  [[nodiscard]] BitTime busy_bits() const { return busy_; }
  [[nodiscard]] BitTime dominant_bits() const { return dominant_; }

  [[nodiscard]] double utilization() const {
    return total_ ? static_cast<double>(busy_) / static_cast<double>(total_)
                  : 0.0;
  }

 private:
  BitTime total_ = 0;
  BitTime busy_ = 0;
  BitTime dominant_ = 0;
};

}  // namespace mcan
