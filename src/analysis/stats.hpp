// Run statistics: delivery-latency distributions, bus utilisation, and the
// streaming estimators behind the rare-event campaigns (src/rare/) —
// computed from delivery journals, the per-bit trace, and weighted
// Monte-Carlo samples.  Used by the latency/bandwidth extension benches
// (the cost side of the paper's overhead argument) and by mcan-rare /
// bench_table1 (the probability side: Table 1 measured empirically).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/tagged.hpp"
#include "sim/simulator.hpp"

namespace mcan {

/// Five-number-ish summary of a sample of values.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;

  [[nodiscard]] static Summary of(std::vector<double> values);
  [[nodiscard]] std::string to_string() const;
};

/// Tracks broadcast-to-delivery latency per (message, receiver).
class LatencyTracker {
 public:
  /// Record that `key` was handed to its sender's queue at time `t`.
  void on_broadcast(const MessageKey& key, BitTime t);

  /// Record a delivery of `key` at `node` at time `t` (first copy counts).
  void on_delivery(NodeId node, const MessageKey& key, BitTime t);

  /// All recorded latencies, in bit times.
  [[nodiscard]] Summary summary() const;

  /// Messages broadcast but never delivered at some node are not latency
  /// samples; how many (message, node) deliveries were recorded.
  [[nodiscard]] std::size_t samples() const { return latencies_.size(); }

 private:
  std::map<MessageKey, BitTime> sent_;
  std::map<std::pair<NodeId, MessageKey>, BitTime> first_delivery_;
  std::vector<double> latencies_;
};

/// Streaming mean/variance over a sequence of doubles (Welford's online
/// algorithm: numerically stable at any count, O(1) state).  The result is
/// a deterministic function of the *sequence* of add() calls — the
/// rare-event campaigns rely on that to make estimates independent of the
/// worker-thread count and byte-identical across checkpoint/resume, so
/// samples must always be merged in a canonical order.
class StreamingMoments {
 public:
  void add(double x);

  [[nodiscard]] long long count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 with fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// Standard error of the mean, s/sqrt(n); 0 with fewer than 2 samples.
  [[nodiscard]] double std_error() const;

  /// Exact round-trip serialization ("%la" hex floats): parse(serialize())
  /// reproduces the accumulator bit-for-bit.  Used by the campaign journal.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static bool parse(const std::string& s, StreamingMoments& out);

  [[nodiscard]] bool operator==(const StreamingMoments&) const = default;

 private:
  long long n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

/// Wilson score interval for a binomial proportion: [lo, hi] for `hits`
/// successes in `trials` draws at confidence z (1.96 = 95%).  Well-behaved
/// at hits = 0 and hits = trials, unlike the normal approximation — the
/// right interval for *unweighted* (naive Monte-Carlo) counts.
[[nodiscard]] std::pair<double, double> wilson_interval(long long hits,
                                                        long long trials,
                                                        double z = 1.96);

/// Point estimate + uncertainty of a rare-event probability, produced by a
/// RareAccumulator.
struct RareEstimate {
  double p_hat = 0;        ///< Horvitz–Thompson estimate (mean of weights)
  double std_err = 0;      ///< standard error of p_hat
  double ci_lo = 0;        ///< log-normal CI (falls back to Wilson when
  double ci_hi = 0;        ///< the samples are unweighted 0/1 indicators)
  double rel_halfwidth = 0;///< (ci_hi - ci_lo) / (2 p_hat); 0 if p_hat == 0
  double ess = 0;          ///< effective sample size of the nonzero weights
  long long hits = 0;      ///< trials with a nonzero contribution
  long long trials = 0;
  double max_weight = 0;   ///< largest single contribution (outlier alarm)

  [[nodiscard]] std::string to_string() const;
};

/// Streaming estimator for P{event} from weighted Monte-Carlo trials.
///
/// Feed one value per trial: the trial's Horvitz–Thompson contribution
/// (its importance weight if the event occurred, 0 otherwise; for naive
/// Monte-Carlo this degenerates to a 0/1 indicator).  The estimate is the
/// sample mean; the confidence interval is computed on the log scale
/// (delta method), which respects the heavy right tail of importance-
/// sampling weights, with a Wilson fallback for unweighted indicators.
/// ESS = (sum w)^2 / (sum w^2) over the nonzero contributions diagnoses
/// weight degeneracy: ESS << hits means a few outlier weights dominate.
class RareAccumulator {
 public:
  /// `x` = importance weight if the trial exhibited the event, else 0.
  void add(double x);

  [[nodiscard]] long long trials() const { return moments_.count(); }
  [[nodiscard]] long long hits() const { return hits_; }
  [[nodiscard]] const StreamingMoments& moments() const { return moments_; }

  [[nodiscard]] RareEstimate estimate(double z = 1.96) const;

  /// Exact round-trip serialization (see StreamingMoments::serialize).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static bool parse(const std::string& s, RareAccumulator& out);

  [[nodiscard]] bool operator==(const RareAccumulator&) const = default;

 private:
  StreamingMoments moments_;
  long long hits_ = 0;
  double sum_w_ = 0;   ///< over nonzero contributions
  double sum_w2_ = 0;
  double max_w_ = 0;
  bool weighted_ = false;  ///< any contribution other than 0 or 1 seen
};

/// Trace observer measuring how busy the bus is: a bit is "busy" when any
/// node is inside a frame, flag or delimiter (anything but idle,
/// intermission or off).
class UtilizationProbe final : public TraceObserver {
 public:
  void on_bit(const BitRecord& rec) override;

  [[nodiscard]] BitTime total_bits() const { return total_; }
  [[nodiscard]] BitTime busy_bits() const { return busy_; }
  [[nodiscard]] BitTime dominant_bits() const { return dominant_; }

  [[nodiscard]] double utilization() const {
    return total_ ? static_cast<double>(busy_) / static_cast<double>(total_)
                  : 0.0;
  }

 private:
  BitTime total_ = 0;
  BitTime busy_ = 0;
  BitTime dominant_ = 0;
};

}  // namespace mcan
