#include "scenario/minimize.hpp"

#include <stdexcept>

#include "scenario/dsl.hpp"
#include "scenario/model_check.hpp"

namespace mcan {

const char* violation_class_name(ViolationClass c) {
  switch (c) {
    case ViolationClass::None: return "none";
    case ViolationClass::Imo: return "imo";
    case ViolationClass::DoubleRx: return "double-rx";
    case ViolationClass::TotalLoss: return "total-loss";
    case ViolationClass::Timeout: return "timeout";
  }
  return "?";
}

namespace {

ViolationClass classify(const FlipCaseResult& r) {
  // Total loss first: the sweep's imo flag subsumes it (sender believes
  // success, receivers disagree trivially), but for minimization and .scn
  // export the two are distinct verdicts — an IMO scenario must show an
  // actual receiver split, which is what the DSL's `expect imo` checks.
  if (r.loss) return ViolationClass::TotalLoss;
  if (r.imo) return ViolationClass::Imo;
  if (r.dup) return ViolationClass::DoubleRx;
  if (r.timeout) return ViolationClass::Timeout;
  return ViolationClass::None;
}

}  // namespace

ViolationClass classify_flip_pattern(
    const ProtocolParams& protocol, int n_nodes,
    const std::vector<std::pair<NodeId, int>>& flips) {
  return classify(run_flip_case(protocol, n_nodes, flips));
}

MinimizedCounterexample minimize_counterexample(
    const ProtocolParams& protocol, int n_nodes,
    const std::vector<std::pair<NodeId, int>>& flips) {
  MinimizedCounterexample out;
  out.flips = flips;

  const FlipCaseResult base = run_flip_case(protocol, n_nodes, flips);
  out.runs = 1;
  out.cls = classify(base);
  out.outcome = base.describe;
  if (out.cls == ViolationClass::None) return out;

  // Greedy ddmin to a fixpoint: try removing each flip; keep any removal
  // that preserves the violation class, restart the scan after a success.
  bool shrunk = true;
  while (shrunk && out.flips.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < out.flips.size(); ++i) {
      std::vector<std::pair<NodeId, int>> cand = out.flips;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      const FlipCaseResult r = run_flip_case(protocol, n_nodes, cand);
      ++out.runs;
      if (classify(r) == out.cls) {
        out.flips = std::move(cand);
        out.outcome = r.describe;
        shrunk = true;
        break;
      }
    }
  }
  return out;
}

std::string to_scenario_text(const ProtocolParams& protocol, int n_nodes,
                             const MinimizedCounterexample& ce,
                             const std::string& title) {
  const int eof_start = model_check_eof_start(protocol);

  ScenarioSpec spec;
  spec.name = title;
  spec.protocol = protocol;
  spec.n_nodes = n_nodes;
  spec.frame_id = 0x100;
  spec.frame_dlc = 4;

  ScenarioWriteOptions opts;
  opts.header = {
      title,
      "Minimized by the model checker's delta-debugger (mcan-check"
      " --minimize):",
      "verdict " + std::string(violation_class_name(ce.cls)) + " — " +
          (ce.outcome.empty() ? "no violation" : ce.outcome),
      "Flips are addressed by absolute bit time; on the clean probe",
      "frame, EOF-relative position p is bit time " +
          std::to_string(eof_start) + " + p.",
  };
  for (const auto& [node, pos] : ce.flips) {
    spec.flips.push_back(FaultTarget::at_time(
        node, static_cast<BitTime>(eof_start + pos)));
    opts.flip_comments.push_back(
        "EOF" + std::string(pos >= 0 ? "+" : "") + std::to_string(pos) +
        (node == 0 ? " (transmitter)" : ""));
  }
  switch (ce.cls) {
    case ViolationClass::Imo:
      spec.expect = Expectation::Imo;
      break;
    case ViolationClass::DoubleRx:
      spec.expect = Expectation::Double;
      break;
    case ViolationClass::None:
      spec.expect = Expectation::Consistent;
      break;
    case ViolationClass::TotalLoss:
    case ViolationClass::Timeout:
      // Total loss / timeout have no DSL expectation; `expect any` keeps
      // the file replayable and the header records the verdict.
      spec.expect = Expectation::Any;
      break;
  }
  return write_scenario(spec, opts);
}

ReplayResult replay_scenario_text(const std::string& text) {
  ReplayResult res;
  ScenarioSpec spec;
  try {
    spec = parse_scenario(text);
  } catch (const std::invalid_argument& e) {
    res.detail = e.what();
    return res;
  }
  res.parsed = true;
  const DslRunResult run = run_scenario(spec);
  res.expectation_met = run.expectation_met;
  res.invariants_clean = run.invariants.clean();
  res.detail = run.outcome.summary();
  return res;
}

}  // namespace mcan
