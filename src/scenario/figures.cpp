#include "scenario/figures.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/properties.hpp"
#include "analysis/tagged.hpp"
#include "frame/encoder.hpp"

namespace mcan {

namespace {

constexpr BitTime kQuiesceBudget = 20000;

Frame scenario_frame() {
  return make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
}

/// First time node `node` emitted `kind`, or kNoTime.
BitTime first_event_time(const EventLog& log, EventKind kind, NodeId node) {
  for (const Event& e : log.events()) {
    if (e.kind == kind && e.node == node) return e.t;
  }
  return kNoTime;
}

std::string interesting_notes(const EventLog& log) {
  std::string out;
  for (const Event& e : log.events()) {
    switch (e.kind) {
      case EventKind::ErrorDetected:
      case EventKind::SamplingDecision:
      case EventKind::ExtendedFlagStart:
      case EventKind::FrameAccepted:
      case EventKind::FrameRejected:
      case EventKind::TxSuccess:
      case EventKind::TxRejected:
      case EventKind::Crashed:
        out += "  " + e.to_string() + "\n";
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace

bool ScenarioOutcome::imo() const {
  bool some = false;
  bool none = false;
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    if (static_cast<NodeId>(i) == tx_node) continue;
    (deliveries[i] > 0 ? some : none) = true;
  }
  return some && none;
}

bool ScenarioOutcome::double_reception() const {
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    if (static_cast<NodeId>(i) != tx_node && deliveries[i] > 1) return true;
  }
  return false;
}

bool ScenarioOutcome::consistent_single_delivery() const {
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    if (static_cast<NodeId>(i) != tx_node && deliveries[i] != 1) return false;
  }
  return true;
}

std::string ScenarioOutcome::summary() const {
  std::string s = name + " [" + protocol.name() + "]: deliveries per node =";
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    s += ' ';
    if (static_cast<NodeId>(i) == tx_node) {
      s += "tx";
    } else {
      s += std::to_string(deliveries[i]);
    }
  }
  s += "; tx attempts=" + std::to_string(tx_attempts);
  s += " successes=" + std::to_string(tx_success);
  if (tx_crashed) s += " (tx crashed)";
  if (imo()) s += " => INCONSISTENT MESSAGE OMISSION";
  else if (double_reception()) s += " => DOUBLE RECEPTION";
  else if (consistent_single_delivery()) s += " => consistent (exactly once)";
  else s += " => consistent";
  return s;
}

ScenarioOutcome run_eof_scenario(std::string name, const ProtocolParams& protocol,
                                 int n_nodes, std::vector<FaultTarget> faults,
                                 bool crash_tx_before_retransmit) {
  auto run_pass = [&](std::optional<BitTime> crash_at, bool want_trace,
                      ScenarioOutcome* out) -> BitTime {
    Network net(n_nodes, protocol);
    if (want_trace) net.enable_trace();
    ScriptedFaults inj(faults);
    net.set_injector(inj);
    net.node(0).enqueue(scenario_frame());
    if (crash_at) net.sim().schedule_crash(0, *crash_at);
    net.run_until_quiet(kQuiesceBudget);

    const BitTime retransmit_t =
        first_event_time(net.log(), EventKind::TxRetransmit, 0);

    if (out != nullptr) {
      out->n_nodes = n_nodes;
      out->deliveries.assign(static_cast<std::size_t>(n_nodes), 0);
      for (int i = 0; i < n_nodes; ++i) {
        out->deliveries[static_cast<std::size_t>(i)] =
            static_cast<int>(net.deliveries(i).size());
      }
      out->tx_success =
          static_cast<int>(net.log().count(EventKind::TxSuccess, 0));
      out->tx_attempts =
          static_cast<int>(net.log().count(EventKind::SofSent, 0));
      out->tx_crashed = crash_at.has_value();
      out->faults_all_fired = inj.all_fired();
      out->notes.push_back(interesting_notes(net.log()));
      if (want_trace) {
        const Frame f = scenario_frame();
        const int eof_start = wire_length(f, protocol.eof_bits()) -
                              protocol.eof_bits();
        const BitTime from = eof_start > 8 ? static_cast<BitTime>(eof_start - 8) : 0;
        const BitTime to =
            std::min<BitTime>(net.sim().now(), from + 70);
        out->trace = net.trace().render(net.labels(), from, to);
      }
    }
    return retransmit_t;
  };

  ScenarioOutcome out;
  out.name = std::move(name);
  out.protocol = protocol;
  out.tx_node = 0;

  std::optional<BitTime> crash_at;
  if (crash_tx_before_retransmit) {
    // Pass 1: find when the transmitter schedules the retransmission, then
    // crash it right after its error flag, before the frame goes out again.
    const BitTime t = run_pass(std::nullopt, false, nullptr);
    if (t != kNoTime) crash_at = t + 7;
  }
  run_pass(crash_at, true, &out);
  return out;
}

// ---------------------------------------------------------------------------
// the figures
// ---------------------------------------------------------------------------

ScenarioOutcome run_fig1a(const ProtocolParams& p) {
  const int last = p.eof_bits() - 1;
  return run_eof_scenario("Fig 1a (X sees error in last EOF bit)", p, 5,
                          {FaultTarget::eof_bit(1, last),
                           FaultTarget::eof_bit(2, last)});
}

ScenarioOutcome run_fig1b(const ProtocolParams& p) {
  const int last = p.eof_bits() - 1;
  return run_eof_scenario("Fig 1b (X sees error in last-but-one EOF bit)", p, 5,
                          {FaultTarget::eof_bit(1, last - 1),
                           FaultTarget::eof_bit(2, last - 1)});
}

ScenarioOutcome run_fig1c(const ProtocolParams& p) {
  const int last = p.eof_bits() - 1;
  return run_eof_scenario(
      "Fig 1c (as 1b + transmitter crash before retransmission)", p, 5,
      {FaultTarget::eof_bit(1, last - 1), FaultTarget::eof_bit(2, last - 1)},
      /*crash_tx_before_retransmit=*/true);
}

ScenarioOutcome run_fig3(const ProtocolParams& p) {
  const int last = p.eof_bits() - 1;
  return run_eof_scenario(
      "Fig 3 (X hit in last-but-one EOF bit; tx view of last bit flipped)", p,
      5,
      {FaultTarget::eof_bit(1, last - 1), FaultTarget::eof_bit(2, last - 1),
       FaultTarget::eof_bit(0, last)});
}

ScenarioOutcome run_fig5(int m) {
  const ProtocolParams p = ProtocolParams::major_can(m);
  // 1 phantom at X (EOF bit 3, paper numbering), 2 flips hiding the flag
  // from the transmitter (bits 4 and 5), 2 flips on X's sampling window:
  // five disturbances total, the protocol's tolerance for m = 5.
  return run_eof_scenario(
      "Fig 5 (MajorCAN consistency under m errors)", p, 4,
      {FaultTarget::eof_bit(1, 2), FaultTarget::eof_bit(0, 3),
       FaultTarget::eof_bit(0, 4),
       FaultTarget::eof_relative(1, p.sample_begin() + 1),
       FaultTarget::eof_relative(1, p.sample_begin() + 3)});
}

// ---------------------------------------------------------------------------
// Fig. 4: single-node behaviour probe
// ---------------------------------------------------------------------------

int find_crc_error_body_bit(const ProtocolParams& p, int n_nodes) {
  for (int idx = 18; idx < 60; ++idx) {
    Network net(n_nodes, p);
    ScriptedFaults inj;
    FaultTarget t;
    t.node = 1;
    t.seg = Seg::Body;
    t.index = idx;
    inj.add(t);
    net.set_injector(inj);
    net.node(0).enqueue(scenario_frame());
    net.run_until_quiet(kQuiesceBudget);
    for (const Event& e : net.log().events()) {
      if (e.node == 1 && e.kind == EventKind::ErrorDetected &&
          e.detail == "CRC error") {
        return idx;
      }
    }
  }
  return -1;
}

ScenarioOutcome run_crc_delay_scenario(const ProtocolParams& p) {
  const int crc_bit = find_crc_error_body_bit(p, 5);
  std::vector<FaultTarget> faults;
  FaultTarget corrupt;
  corrupt.node = 1;
  corrupt.seg = Seg::Body;
  corrupt.index = crc_bit;
  faults.push_back(corrupt);
  // Node 2 misses the first m-1 bits of node 1's CRC-error flag (which
  // starts at EOF-relative position 0), detecting it only at position m-1.
  for (int d = 0; d < p.m - 1; ++d) {
    faults.push_back(FaultTarget::eof_relative(2, d));
  }
  return run_eof_scenario("CRC flag delayed by m-1 errors", p, 5, faults);
}

std::vector<Fig4Row> run_fig4(int m) {
  const ProtocolParams p = ProtocolParams::major_can(m);
  std::vector<Fig4Row> rows;

  auto probe = [&](const std::string& label, FaultTarget fault) {
    Network net(2, p);
    ScriptedFaults inj;
    inj.add(fault);
    net.set_injector(inj);
    net.node(0).enqueue(scenario_frame());
    net.run_until_quiet(kQuiesceBudget);

    // Only the first attempt characterises the behaviour; a retransmission
    // (if the frame was rejected) adds a clean second reception.
    BitTime cutoff = kNoTime;
    int sofs = 0;
    for (const Event& e : net.log().events()) {
      if (e.kind == EventKind::SofSent && e.node == 0 && ++sofs == 2) {
        cutoff = e.t;
        break;
      }
    }

    Fig4Row row;
    row.error_at = label;
    for (const Event& e : net.log().events()) {
      if (e.node != 1 || e.t >= cutoff) continue;
      switch (e.kind) {
        case EventKind::ErrorFlagStart:
          row.flag = "6-bit error flag";
          break;
        case EventKind::ExtendedFlagStart:
          row.flag = "extended error flag";
          break;
        case EventKind::SamplingDecision:
          row.sampling = true;
          break;
        case EventKind::FrameAccepted:
          row.verdict = "frame is accepted";
          break;
        case EventKind::FrameRejected:
          row.verdict = "frame is rejected";
          break;
        default:
          break;
      }
    }
    rows.push_back(row);
  };

  const int crc_bit = find_crc_error_body_bit(p);
  if (crc_bit >= 0) {
    FaultTarget t;
    t.node = 1;
    t.seg = Seg::Body;
    t.index = crc_bit;
    probe("CRC error", t);
  }
  for (int k = 0; k < p.eof_bits(); ++k) {
    probe("Error in EOF bit " + std::to_string(k + 1),
          FaultTarget::eof_bit(1, k));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// total order (CAN5) scenario
// ---------------------------------------------------------------------------

std::string OrderScenarioOutcome::summary() const {
  std::string s = name + " [" + protocol.name() + "]\n";
  for (std::size_t i = 0; i < per_node_order.size(); ++i) {
    s += "  node " + std::to_string(i + 1) + " delivers: " +
         per_node_order[i] + "\n";
  }
  s += "  order inversions=" + std::to_string(order_inversions);
  s += " duplicate deliveries=" + std::to_string(duplicate_deliveries);
  s += order_inversions == 0 ? " => total order preserved"
                             : " => TOTAL ORDER VIOLATED";
  return s;
}

OrderScenarioOutcome run_order_scenario(const ProtocolParams& p) {
  const int n = 5;
  Network net(n, p);
  ScriptedFaults inj;
  const int last = p.eof_bits() - 1;
  inj.add(FaultTarget::eof_bit(1, last - 1, 0));
  inj.add(FaultTarget::eof_bit(2, last - 1, 0));
  net.set_injector(inj);

  // A has the lower arbitration priority (higher id) so that B overtakes the
  // retransmission of A.
  const Frame a = make_tagged_frame(0x200, MsgKind::Data, MessageKey{0, 1});
  const Frame b = make_tagged_frame(0x080, MsgKind::Data, MessageKey{4, 1});
  net.node(0).enqueue(a);
  net.sim().run(15);  // B becomes pending while A's first copy is in flight
  net.node(4).enqueue(b);
  net.run_until_quiet(kQuiesceBudget);

  OrderScenarioOutcome out;
  out.name = "CAN5 order scenario (A partially received, B overtakes)";
  out.protocol = p;

  std::map<NodeId, DeliveryJournal> journals;
  for (int i = 1; i <= 4; ++i) {
    DeliveryJournal j;
    std::string order;
    for (const Delivery& d : net.deliveries(i)) {
      auto tag = parse_tag(d.frame);
      if (!tag) continue;
      j.push_back({tag->key, d.t});
      if (!order.empty()) order += ' ';
      order += tag->key.source == 0 ? 'A' : 'B';
    }
    journals.emplace(static_cast<NodeId>(i), std::move(j));
    out.per_node_order.push_back(order.empty() ? "(nothing)" : order);
  }

  const AbReport rep = check_atomic_broadcast(
      {{MessageKey{0, 1}, 0}, {MessageKey{4, 1}, 4}}, journals,
      {1, 2, 3, 4});
  out.order_inversions = rep.order_inversions;
  out.duplicate_deliveries = rep.duplicate_deliveries;
  return out;
}

// ---------------------------------------------------------------------------
// error-passive scenario (paper introduction)
// ---------------------------------------------------------------------------

ScenarioOutcome run_error_passive_scenario(bool switch_off_at_warning) {
  const ProtocolParams p = ProtocolParams::standard_can();
  FaultConfinementConfig fc;
  fc.switch_off_at_warning = switch_off_at_warning;

  const int crc_bit = find_crc_error_body_bit(p, 4);

  Network net(4, p, fc);
  net.enable_trace();
  // Node 1 is heavily disturbed: at the warning limit (switch-off policy)
  // or already past the passive limit.
  net.node(1).force_error_counters(0, switch_off_at_warning ? 100 : 130);

  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Body;
  t.index = crc_bit;
  inj.add(t);
  net.set_injector(inj);

  net.node(0).enqueue(scenario_frame());
  net.run_until_quiet(kQuiesceBudget);

  ScenarioOutcome out;
  out.name = switch_off_at_warning
                 ? "error-passive scenario with warning switch-off"
                 : "error-passive scenario (passive flag is invisible)";
  out.protocol = p;
  out.tx_node = 0;
  out.n_nodes = 4;
  out.deliveries.assign(4, 0);
  for (int i = 0; i < 4; ++i) {
    out.deliveries[static_cast<std::size_t>(i)] =
        static_cast<int>(net.deliveries(i).size());
  }
  out.tx_success = static_cast<int>(net.log().count(EventKind::TxSuccess, 0));
  out.tx_attempts = static_cast<int>(net.log().count(EventKind::SofSent, 0));
  out.faults_all_fired = true;
  out.notes.push_back(interesting_notes(net.log()));
  return out;
}

}  // namespace mcan
