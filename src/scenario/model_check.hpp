// The model-checking engine: scalable bounded exhaustive verification.
//
// run_exhaustive() (scenario/exhaustive.hpp) visits every k-combination of
// view-flips and simulates each case from bit 0 to quiescence.  That is
// the reference semantics, but it wastes nearly all of its work: every
// case shares the same clean frame prefix, huge numbers of flip patterns
// converge to identical machine states once the flip window has passed,
// and any two cases that differ only by a permutation of the (identical)
// receiver nodes are relabelings of each other.  This engine exploits all
// three structures without changing what is counted:
//
//   * prefix cloning — one template bus is stepped through the clean
//     prefix once; each case starts from a cloned copy of its state
//     (CanController::clone_runtime_state) with the simulator clock warped
//     to the window start;
//   * tail memoization — after the last possible flip the bus evolves
//     deterministically, so the quiescence tail is keyed on the exact
//     serialized machine state of all nodes (append_state) and each
//     distinct end-game state is simulated once;
//   * symmetry reduction — receiver nodes are interchangeable, so only a
//     canonical representative per receiver-permutation orbit is run and
//     its outcome is counted with the orbit size as weight;
//   * work distribution — first-flip subtrees form a shared queue that
//     worker threads claim dynamically (cheap work stealing), so uneven
//     subtree cost does not serialise the sweep.
//
// With jobs=1, dedup=false, symmetry=false the engine degenerates to the
// reference enumerator (same visit order, same counts, same examples);
// tests assert exact agreement of the optimised modes against it.
// docs/MODEL_CHECKING.md carries the soundness argument for each
// reduction.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "frame/frame.hpp"
#include "scenario/exhaustive.hpp"

namespace mcan {

struct ModelCheckConfig {
  ExhaustiveConfig base;

  /// Worker threads; 0 = one per hardware thread.  jobs=1 runs inline
  /// (deterministic example order).
  int jobs = 0;

  /// Tail memoization + prefix cloning.
  bool dedup = true;

  /// Receiver-permutation symmetry reduction.
  bool symmetry = true;

  /// Budget: stop after checking this many flip patterns (0 = exhaustive).
  /// A budget-cut result has complete == false and reports the explored
  /// prefix of the space — useful for k beyond exhaustive reach (k = 5 at
  /// m = 5).
  long long max_cases = 0;

  /// How many concrete counterexamples to keep.
  int max_examples = 5;

  /// Throws std::invalid_argument on unusable values (delegates to
  /// base.validate() for the window checks).
  void validate() const;
};

struct ModelCheckStats {
  long long enumerated = 0;      ///< combinations visited (incl. skipped)
  long long simulated = 0;       ///< cases actually run on a bus
  long long tail_memo_hits = 0;  ///< cases finished from a memoized tail
  long long symmetry_skips = 0;  ///< non-canonical combos folded into orbits
  std::size_t distinct_tails = 0;  ///< memo table size at the end
  int jobs = 1;                    ///< worker threads actually used
  double seconds = 0.0;            ///< wall-clock time of the sweep
};

struct ModelCheckResult {
  ExhaustiveConfig cfg;  ///< window bound resolved
  bool complete = true;  ///< false iff the max_cases budget cut the sweep
  long long cases = 0;   ///< flip patterns covered (orbit weights included)
  long long imo = 0;
  long long double_rx = 0;
  long long total_loss = 0;
  long long timeouts = 0;
  std::vector<Counterexample> examples;
  ModelCheckStats stats;

  [[nodiscard]] long long violations() const {
    return imo + double_rx + total_loss + timeouts;
  }
  [[nodiscard]] std::string summary() const;
};

/// Periodic progress callback: (combinations visited, total combinations).
/// Called from worker threads — must be thread-safe (ProgressMeter is).
using CheckProgressFn = std::function<void(long long, long long)>;

[[nodiscard]] ModelCheckResult run_model_check(
    const ModelCheckConfig& cfg, const CheckProgressFn& progress = {});

// ---------------------------------------------------------------------------
// Single-case execution (shared with the counterexample minimizer and
// tests): one concrete flip pattern, simulated in isolation with the
// reference semantics.
// ---------------------------------------------------------------------------

struct FlipCaseResult {
  bool imo = false;
  bool dup = false;
  bool loss = false;
  bool timeout = false;
  std::string describe;  ///< classification text ("IMO: deliveries 0 1")

  [[nodiscard]] bool violation() const {
    return imo || dup || loss || timeout;
  }
};

/// Run one flip pattern (EOF-relative positions, same grid as the sweeps)
/// to quiescence and classify it.
[[nodiscard]] FlipCaseResult run_flip_case(
    const ProtocolParams& protocol, int n_nodes,
    const std::vector<std::pair<NodeId, int>>& flips);

/// The probe frame every sweep transmits (also what .scn exports replay).
[[nodiscard]] Frame model_check_frame();

/// Absolute bit time of the probe frame's first EOF bit on a clean bus —
/// the anchor that converts the sweeps' EOF-relative flip positions to the
/// absolute times used by the injector and by .scn exports.
[[nodiscard]] int model_check_eof_start(const ProtocolParams& protocol);

}  // namespace mcan
