// Bounded exhaustive verification — the "model checking" the paper left as
// future work, done on the executable protocol model.
//
// For a given protocol, node count and error budget k, enumerate *every*
// combination of k view-flips over the (node x frame-tail-bit) grid, run
// the bus to quiescence, and classify the outcome.  Within the paper's
// scenario space this is complete: if no pattern up to k errors violates
// agreement / at-most-once, none exists (for that bus size and window).
//
// Standard CAN and MinorCAN produce concrete counterexample sets (the
// Fig. 1b/3a patterns fall out automatically); MajorCAN_m must produce
// none up to k = m.
//
// run_exhaustive() is the reference single-threaded enumerator with a
// deterministic (lexicographic) visit order; the scalable engine with
// parallelism, tail memoization and symmetry reduction lives in
// scenario/model_check.hpp and is verified against this one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "util/bit.hpp"

namespace mcan {

struct ExhaustiveConfig {
  ProtocolParams protocol;
  int n_nodes = 3;
  int errors = 2;      ///< exact number of flips per case
  /// Window of EOF-relative positions to flip, inclusive on both ends.
  /// Default [-4, auto] covers the tail, the EOF and the whole end-game.
  int win_lo_rel = -4;
  /// Upper window bound; disengaged = auto: 3m+5 for MajorCAN (covers the
  /// whole end-game), EOF + intermission for the others.
  std::optional<int> win_hi_rel;

  /// The effective upper bound (resolves the auto default).
  [[nodiscard]] int window_hi() const;

  /// Throws std::invalid_argument on an unusable configuration: an empty
  /// window (win_lo_rel > window_hi()), positions outside the end-game
  /// horizon the EOF-relative grid is meaningful for, a window starting
  /// before the probe frame itself, or degenerate node/error counts.
  void validate() const;
};

struct Counterexample {
  std::vector<std::pair<NodeId, int>> flips;  ///< (node, EOF-relative pos)
  std::string outcome;                        ///< e.g. "IMO: deliveries 0 1"

  [[nodiscard]] std::string to_string() const;
};

struct ExhaustiveResult {
  ExhaustiveConfig cfg;
  long long cases = 0;
  long long imo = 0;
  long long double_rx = 0;
  long long total_loss = 0;
  long long timeouts = 0;
  std::vector<Counterexample> examples;  ///< first few violating patterns

  [[nodiscard]] long long violations() const {
    return imo + double_rx + total_loss + timeouts;
  }
  [[nodiscard]] std::string summary() const;
};

/// Run the full enumeration.  `max_examples` bounds how many concrete
/// counterexamples are kept for reporting.
[[nodiscard]] ExhaustiveResult run_exhaustive(const ExhaustiveConfig& cfg,
                                              int max_examples = 5);

}  // namespace mcan
