// Randomised fault-injection campaigns.
//
// Two drivers:
//
//  * run_eof_campaign — the controlled experiment behind the paper's claim
//    "MajorCAN_m implements Atomic Broadcast in the presence of up to m
//    randomly distributed errors per frame": one broadcast per trial, an
//    exact number of view-flips placed uniformly at random (over nodes and
//    over a bit window), and a consistency verdict per trial.
//
//  * run_soak — a long-running bus with several periodic senders and iid
//    per-node per-bit disturbances at rate ber* (the paper's error model),
//    checked against AB1..AB5 at the end.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/properties.hpp"
#include "core/protocol.hpp"
#include "higher/higher_network.hpp"

namespace mcan {

enum class FaultWindow {
  FrameTail,        ///< the EOF end-game region where the paper's scenarios live
  WholeFrame,       ///< anywhere in the frame
  TailAndRecovery,  ///< end-game plus delimiter/intermission (ablation probes)
};

struct CampaignConfig {
  ProtocolParams protocol;
  int n_nodes = 5;
  int trials = 1000;
  int errors = 2;  ///< exact number of view-flips injected per trial
  FaultWindow window = FaultWindow::FrameTail;
  std::uint64_t seed = 1;
  bool crash_tx_randomly = false;  ///< with p=0.5, crash tx at a random bit
};

struct CampaignResult {
  CampaignConfig cfg;
  int trials = 0;
  int imo = 0;           ///< trials violating agreement (incl. vs the sender)
  int double_rx = 0;     ///< trials where some receiver got duplicates
  int total_loss = 0;    ///< sender succeeded/crashed but nobody delivered
  int retransmissions = 0;  ///< total retransmission events
  int timeouts = 0;      ///< bus failed to quiesce (should stay 0)

  [[nodiscard]] double imo_rate() const {
    return trials ? static_cast<double>(imo) / trials : 0.0;
  }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] CampaignResult run_eof_campaign(const CampaignConfig& cfg);

/// Run only trials [first, last) of the campaign — the unit of work the
/// parallel runner distributes.  Trial outcomes depend only on the trial
/// index (each trial derives its RNG stream from cfg.seed + index), so any
/// partition of the range merges to the same totals.
[[nodiscard]] CampaignResult run_eof_campaign_range(const CampaignConfig& cfg,
                                                    int first, int last);

/// Same campaign, trials distributed over `threads` worker threads
/// (0 = hardware concurrency).  Results are identical to the serial run.
[[nodiscard]] CampaignResult run_eof_campaign_parallel(
    const CampaignConfig& cfg, unsigned threads = 0);

// --- higher-level baselines under the same randomized disturbances ---

struct HigherCampaignConfig {
  HigherKind kind = HigherKind::Edcan;
  int n_nodes = 5;
  int trials = 500;
  int errors = 2;  ///< view-flips in the DATA frame's tail window
  std::uint64_t seed = 1;
  bool crash_tx_randomly = false;
  BitTime timeout_bits = 600;  ///< host protocol timeout
};

struct HigherCampaignResult {
  HigherCampaignConfig cfg;
  int trials = 0;
  int agreement_violations = 0;  ///< trials with an AB2 violation
  int duplicate_trials = 0;      ///< trials with an AB3 violation
  int order_trials = 0;          ///< trials with an AB5 violation
  int timeouts = 0;

  [[nodiscard]] std::string summary() const;
};

/// One tagged broadcast per trial over the chosen baseline protocol, with
/// `errors` random flips in the DATA frame's end-of-frame window (and an
/// optional random transmitter crash); the app-level journals are checked
/// against AB1..AB5.
[[nodiscard]] HigherCampaignResult run_higher_campaign(
    const HigherCampaignConfig& cfg);

struct SoakConfig {
  ProtocolParams protocol;
  int n_nodes = 8;
  int senders = 4;           ///< nodes 0..senders-1 broadcast periodically
  int frames_per_sender = 50;
  int period_bits = 400;     ///< enqueue period per sender
  double ber_star = 1e-4;    ///< per-node per-bit flip probability
  std::uint64_t seed = 1;
};

struct SoakResult {
  SoakConfig cfg;
  AbReport report;
  int frames_broadcast = 0;
  long long errors_injected = 0;
  BitTime duration_bits = 0;

  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] SoakResult run_soak(const SoakConfig& cfg);

}  // namespace mcan
