// Counterexample minimization and .scn export.
//
// A violating flip pattern found by the sweep may contain flips that do
// not contribute to the violation (k=3 patterns routinely embed the k=2
// core).  minimize_counterexample() delta-debugs the pattern down to a
// minimal set — greedy removal to a fixpoint, re-running the bus after
// each candidate removal — while preserving the *class* of the violation:
// dropping a flip from a CAN k=2 IMO pattern typically leaves the Fig. 1b
// double-reception, which is still a violation but not the scenario being
// explained, so "still violates somehow" is not good enough.
//
// The minimized pattern is exported as a .scn scenario (scenario/dsl.hpp)
// that replays through run_scenario and mcan-lint and asserts the same
// verdict, closing the loop with the invariant analyzer: every
// counterexample the checker reports is independently reproducible from a
// committed data file.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "scenario/exhaustive.hpp"

namespace mcan {

enum class ViolationClass {
  None,
  Imo,       ///< inconsistent message omission
  DoubleRx,  ///< duplicate delivery at some receiver
  TotalLoss, ///< transmitter believes success, nobody delivered
  Timeout,   ///< bus never quiesced
};

[[nodiscard]] const char* violation_class_name(ViolationClass c);

/// Classify one flip pattern by running it (priority: IMO > double-rx >
/// total-loss > timeout, matching the sweep's reporting priority).
[[nodiscard]] ViolationClass classify_flip_pattern(
    const ProtocolParams& protocol, int n_nodes,
    const std::vector<std::pair<NodeId, int>>& flips);

struct MinimizedCounterexample {
  std::vector<std::pair<NodeId, int>> flips;  ///< the minimal set
  ViolationClass cls = ViolationClass::None;
  std::string outcome;  ///< classification text of the minimal pattern
  int runs = 0;         ///< simulations spent minimizing
};

/// Delta-debug `flips` to a minimal subset with the same violation class.
/// If the input does not violate at all, returns it unchanged with
/// cls == None.
[[nodiscard]] MinimizedCounterexample minimize_counterexample(
    const ProtocolParams& protocol, int n_nodes,
    const std::vector<std::pair<NodeId, int>>& flips);

/// Render a (minimized) counterexample as a .scn scenario replaying the
/// same probe frame with the same flips — addressed by absolute bit time,
/// which is exact regardless of how earlier flips shift later frame-
/// relative positions — and expecting the violation class's verdict
/// (IMO -> `expect imo`, double-rx -> `expect double`, others -> `expect
/// any`, since the DSL has no total-loss/timeout expectation).
[[nodiscard]] std::string to_scenario_text(const ProtocolParams& protocol,
                                           int n_nodes,
                                           const MinimizedCounterexample& ce,
                                           const std::string& title);

struct ReplayResult {
  bool parsed = false;
  bool expectation_met = false;
  bool invariants_clean = false;
  std::string detail;
};

/// Parse and replay a scenario text through run_scenario (the same path
/// mcan-lint uses for .scn files) and report whether the expected verdict
/// reproduced and the protocol invariants held.
[[nodiscard]] ReplayResult replay_scenario_text(const std::string& text);

}  // namespace mcan
