#include "scenario/model_check.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"
#include "util/mutex.hpp"

namespace mcan {

Frame model_check_frame() {
  return make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
}

int model_check_eof_start(const ProtocolParams& protocol) {
  const Frame frame = model_check_frame();
  return wire_length(frame, protocol.eof_bits()) - protocol.eof_bits();
}

void ModelCheckConfig::validate() const {
  base.validate();
  if (jobs < 0) {
    throw std::invalid_argument("model check: jobs must be >= 0 (0 = auto)");
  }
  if (max_cases < 0) {
    throw std::invalid_argument("model check: max_cases must be >= 0");
  }
  if (max_examples < 0) {
    throw std::invalid_argument("model check: max_examples must be >= 0");
  }
}

std::string ModelCheckResult::summary() const {
  std::string s = cfg.protocol.name();
  s += " nodes=" + std::to_string(cfg.n_nodes);
  s += " k=" + std::to_string(cfg.errors);
  s += " cases=" + std::to_string(cases);
  if (!complete) s += " (budget-bounded)";
  s += " | IMO=" + std::to_string(imo);
  s += " double-rx=" + std::to_string(double_rx);
  s += " total-loss=" + std::to_string(total_loss);
  if (timeouts) s += " TIMEOUTS=" + std::to_string(timeouts);
  if (violations() == 0) {
    s += complete ? " => VERIFIED CONSISTENT" : " => no violation found";
  } else {
    s += " => COUNTEREXAMPLES";
  }
  return s;
}

namespace {

struct CaseOutcome {
  bool imo = false;
  bool dup = false;
  bool loss = false;
  bool timeout = false;
  std::string describe;

  [[nodiscard]] bool violation() const {
    return imo || dup || loss || timeout;
  }
};

/// Reference classification, shared by every execution path.  `deliveries`
/// holds the final per-node delivery counts (index 0 = transmitter,
/// ignored); `tx_success` the transmitter's TxSuccess count.
CaseOutcome classify(int n_nodes, const std::vector<int>& deliveries,
                     int tx_success, bool timeout) {
  CaseOutcome out;
  if (timeout) {
    out.timeout = true;
    out.describe = "TIMEOUT";
    return out;
  }
  bool any = false;
  bool all = true;
  std::string counts;
  for (int i = 1; i < n_nodes; ++i) {
    const int c = deliveries[static_cast<std::size_t>(i)];
    counts += (counts.empty() ? "" : " ") + std::to_string(c);
    if (c > 0) any = true;
    if (c == 0) all = false;
    if (c > 1) out.dup = true;
  }
  const bool sender_has = tx_success > 0;
  out.imo = (any || sender_has) && !all;
  out.loss = !any && sender_has;

  if (out.imo) {
    out.describe = "IMO: deliveries " + counts;
  } else if (out.dup) {
    out.describe = "double reception: deliveries " + counts;
  } else if (out.loss) {
    out.describe = "total loss (tx believed success)";
  }
  return out;
}

/// Per-sweep constants, computed once.
struct SweepPlan {
  ExhaustiveConfig cfg;  ///< window resolved
  Frame frame;
  int eof_start = 0;
  std::vector<std::pair<NodeId, int>> slots;
  BitTime t_first = 0;  ///< absolute time of the earliest possible flip
  BitTime t_cut = 0;    ///< first bit strictly after the flip window
  long long total_combos = 0;
};

long long n_choose_k(std::size_t n, int k) {
  if (k < 0 || static_cast<std::size_t>(k) > n) return 0;
  long long r = 1;
  for (int i = 1; i <= k; ++i) {
    r = r * static_cast<long long>(n - static_cast<std::size_t>(k) + i) / i;
  }
  return r;
}

SweepPlan make_plan(const ExhaustiveConfig& cfg) {
  SweepPlan plan;
  plan.cfg = cfg;
  plan.cfg.win_hi_rel = cfg.window_hi();
  plan.frame = model_check_frame();
  plan.eof_start = model_check_eof_start(cfg.protocol);
  for (int n = 0; n < cfg.n_nodes; ++n) {
    for (int pos = cfg.win_lo_rel; pos <= *plan.cfg.win_hi_rel; ++pos) {
      plan.slots.emplace_back(static_cast<NodeId>(n), pos);
    }
  }
  plan.t_first = static_cast<BitTime>(plan.eof_start + cfg.win_lo_rel);
  plan.t_cut = static_cast<BitTime>(plan.eof_start + *plan.cfg.win_hi_rel + 1);
  plan.total_combos = n_choose_k(plan.slots.size(), cfg.errors);
  return plan;
}

constexpr BitTime kQuietBudget = 30000;

/// Reference execution: fresh bus, full run from bit 0.
CaseOutcome run_full_case(const SweepPlan& plan,
                          const std::vector<std::pair<NodeId, int>>& flips) {
  const ExhaustiveConfig& cfg = plan.cfg;
  Network net(cfg.n_nodes, cfg.protocol);
  ScriptedFaults inj;
  for (const auto& [node, pos] : flips) {
    inj.add(FaultTarget::at_time(
        node, static_cast<BitTime>(plan.eof_start + pos)));
  }
  net.set_injector(inj);
  net.node(0).enqueue(plan.frame);

  const bool quiet = net.run_until_quiet(kQuietBudget);
  std::vector<int> deliveries(static_cast<std::size_t>(cfg.n_nodes), 0);
  for (int i = 0; i < cfg.n_nodes; ++i) {
    deliveries[static_cast<std::size_t>(i)] =
        static_cast<int>(net.deliveries(i).size());
  }
  const int tx_success =
      static_cast<int>(net.log().count(EventKind::TxSuccess, 0));
  return classify(cfg.n_nodes, deliveries, tx_success, !quiet);
}

// ---------------------------------------------------------------------------
// dedup machinery: prefix template + tail memo
// ---------------------------------------------------------------------------

/// The clean-prefix template: a bus stepped (without faults) to t_first,
/// plus the delivery/TxSuccess counts accumulated in that prefix (nonzero
/// when the window starts after the frame's acceptance point).
struct PrefixTemplate {
  Network net;
  std::vector<int> deliveries;
  int tx_success = 0;

  explicit PrefixTemplate(const SweepPlan& plan)
      : net(plan.cfg.n_nodes, plan.cfg.protocol) {
    net.node(0).enqueue(plan.frame);
    while (net.sim().now() < plan.t_first) net.sim().step();
    deliveries.assign(static_cast<std::size_t>(plan.cfg.n_nodes), 0);
    for (int i = 0; i < plan.cfg.n_nodes; ++i) {
      deliveries[static_cast<std::size_t>(i)] =
          static_cast<int>(net.deliveries(i).size());
    }
    tx_success = static_cast<int>(net.log().count(EventKind::TxSuccess, 0));
  }
};

/// What happens between the dedup cut and quiescence, as count deltas.
struct TailDelta {
  std::vector<int> deliveries;  ///< per node, relative to the cut
  int tx_success = 0;
  bool timeout = false;
};

/// Sharded exact-key memo of simulation tails.  Keys are the concatenated
/// append_state() digests of all nodes at t_cut — exact serializations, so
/// equal keys mean bit-identical futures (no hash-collision risk: the map
/// compares full keys on lookup).
class TailMemo {
 public:
  /// True + filled `out` on a hit.
  bool lookup(const std::string& key, TailDelta& out) {
    Shard& s = shard(key);
    MutexLock lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    out = it->second;
    return true;
  }

  void insert(const std::string& key, const TailDelta& delta) {
    Shard& s = shard(key);
    MutexLock lock(s.mu);
    s.map.emplace(key, delta);
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      MutexLock lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, TailDelta> map MCAN_GUARDED_BY(mu);
  };

  Shard& shard(const std::string& key) {
    // Shard choice only spreads lock contention; memo hits/values are
    // identical whichever shard holds a key, so the hash value never
    // influences reported output.
    // mcan-analyze: allow(nondet-hash) shard index never reaches output
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::array<Shard, 16> shards_;
};

/// Dedup execution: clone the prefix, simulate only the flip window, then
/// finish from the memoized tail (simulating it on a miss).
CaseOutcome run_dedup_case(const SweepPlan& plan, const PrefixTemplate& tmpl,
                           TailMemo& memo, long long& memo_hits,
                           const std::vector<std::pair<NodeId, int>>& flips) {
  const ExhaustiveConfig& cfg = plan.cfg;
  const auto n = static_cast<std::size_t>(cfg.n_nodes);

  Network net(cfg.n_nodes, cfg.protocol);
  for (int i = 0; i < cfg.n_nodes; ++i) {
    net.node(i).clone_runtime_state(tmpl.net.node(i));
  }
  net.sim().warp_to(plan.t_first);

  ScriptedFaults inj;
  for (const auto& [node, pos] : flips) {
    inj.add(FaultTarget::at_time(
        node, static_cast<BitTime>(plan.eof_start + pos)));
  }
  net.set_injector(inj);

  // Simulate the flip window: the only part whose evolution depends on
  // this specific case.
  while (net.sim().now() < plan.t_cut) net.sim().step();

  // Counts accumulated inside the window (acceptance usually lands here).
  std::vector<int> at_cut(n, 0);
  for (int i = 0; i < cfg.n_nodes; ++i) {
    at_cut[static_cast<std::size_t>(i)] =
        static_cast<int>(net.deliveries(i).size());
  }
  const int tx_at_cut =
      static_cast<int>(net.log().count(EventKind::TxSuccess, 0));

  // Key the tail on the exact machine state of all nodes.
  std::string key;
  key.reserve(256);
  for (int i = 0; i < cfg.n_nodes; ++i) net.node(i).append_state(key);

  TailDelta delta;
  if (memo.lookup(key, delta)) {
    ++memo_hits;
  } else {
    const bool quiet = net.run_until_quiet(kQuietBudget);
    delta.deliveries.assign(n, 0);
    for (int i = 0; i < cfg.n_nodes; ++i) {
      delta.deliveries[static_cast<std::size_t>(i)] =
          static_cast<int>(net.deliveries(i).size()) -
          at_cut[static_cast<std::size_t>(i)];
    }
    delta.tx_success =
        static_cast<int>(net.log().count(EventKind::TxSuccess, 0)) - tx_at_cut;
    delta.timeout = !quiet;
    memo.insert(key, delta);
  }

  std::vector<int> final_counts(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    final_counts[i] = tmpl.deliveries[i] + at_cut[i] + delta.deliveries[i];
  }
  const int tx_final = tmpl.tx_success + tx_at_cut + delta.tx_success;
  return classify(cfg.n_nodes, final_counts, tx_final, delta.timeout);
}

// ---------------------------------------------------------------------------
// symmetry reduction
// ---------------------------------------------------------------------------

long long factorial(int n) {
  long long r = 1;
  for (int i = 2; i <= n; ++i) r *= i;
  return r;
}

/// Receiver-permutation orbit handling.  Receivers (nodes 1..n-1) are
/// interchangeable: they share configuration and flip window, so renaming
/// them maps any case to an equivalent one with permuted delivery counts —
/// which the classification (all/any/dup over receivers) cannot tell
/// apart.  A case is *canonical* iff the receivers' per-node flip position
/// lists are in non-increasing lexicographic order; returns the orbit size
/// (distinct receiver relabelings) for a canonical case and 0 otherwise.
long long orbit_weight(const std::vector<std::pair<NodeId, int>>& flips,
                       int n_nodes) {
  const int receivers = n_nodes - 1;
  std::vector<std::vector<int>> lists(static_cast<std::size_t>(receivers));
  for (const auto& [node, pos] : flips) {
    if (node >= 1) lists[static_cast<std::size_t>(node - 1)].push_back(pos);
  }
  // Slot enumeration is (node asc, pos asc), so each list is sorted.
  for (int i = 0; i + 1 < receivers; ++i) {
    if (lists[static_cast<std::size_t>(i)] <
        lists[static_cast<std::size_t>(i + 1)]) {
      return 0;  // not canonical: a relabeling with sorted lists exists
    }
  }
  // Orbit size: receivers! / (product over groups of equal lists of
  // group_size!) — equal lists relabel onto themselves.
  long long weight = factorial(receivers);
  int run = 1;
  for (int i = 1; i < receivers; ++i) {
    if (lists[static_cast<std::size_t>(i)] ==
        lists[static_cast<std::size_t>(i - 1)]) {
      ++run;
    } else {
      weight /= factorial(run);
      run = 1;
    }
  }
  weight /= factorial(run);
  return weight;
}

// ---------------------------------------------------------------------------
// the sweep driver
// ---------------------------------------------------------------------------

struct WorkerTally {
  long long cases = 0;
  long long imo = 0;
  long long double_rx = 0;
  long long total_loss = 0;
  long long timeouts = 0;
  long long enumerated = 0;
  long long simulated = 0;
  long long memo_hits = 0;
  long long symmetry_skips = 0;
  std::vector<Counterexample> examples;
};

struct SharedState {
  std::atomic<long long> next_first{0};     ///< first-slot task queue
  std::atomic<long long> enumerated{0};     ///< global progress counter
  std::atomic<long long> checked{0};        ///< cases charged to the budget
  std::atomic<bool> stop{false};            ///< budget exhausted
};

void run_worker(const ModelCheckConfig& mc, const SweepPlan& plan,
                const PrefixTemplate* tmpl, TailMemo* memo,
                SharedState& shared, const CheckProgressFn& progress,
                WorkerTally& tally) {
  const int k = mc.base.errors;
  const auto n_slots = static_cast<long long>(plan.slots.size());
  std::vector<std::pair<NodeId, int>> chosen;
  chosen.reserve(static_cast<std::size_t>(k));

  constexpr long long kProgressStride = 512;
  long long since_progress = 0;

  const auto note_progress = [&](long long batch) {
    const long long done =
        shared.enumerated.fetch_add(batch, std::memory_order_relaxed) + batch;
    if (progress) progress(done, plan.total_combos);
  };

  // Visit every combination extending `chosen` with slots from [start, ..].
  const std::function<void(long long)> recurse = [&](long long start) {
    if (static_cast<int>(chosen.size()) == k) {
      ++tally.enumerated;
      if (++since_progress >= kProgressStride) {
        note_progress(since_progress);
        since_progress = 0;
      }

      long long weight = 1;
      if (mc.symmetry) {
        weight = orbit_weight(chosen, mc.base.n_nodes);
        if (weight == 0) {
          ++tally.symmetry_skips;
          return;
        }
      }

      if (mc.max_cases > 0) {
        const long long seq =
            shared.checked.fetch_add(1, std::memory_order_relaxed);
        if (seq >= mc.max_cases) {
          shared.stop.store(true, std::memory_order_relaxed);
          return;
        }
      }

      CaseOutcome out;
      if (mc.dedup) {
        out = run_dedup_case(plan, *tmpl, *memo, tally.memo_hits, chosen);
        ++tally.simulated;  // window simulated even on a memo hit
      } else {
        out = run_full_case(plan, chosen);
        ++tally.simulated;
      }

      tally.cases += weight;
      if (out.imo) tally.imo += weight;
      if (out.dup) tally.double_rx += weight;
      if (out.loss) tally.total_loss += weight;
      if (out.timeout) tally.timeouts += weight;
      if (out.violation() &&
          static_cast<int>(tally.examples.size()) < mc.max_examples) {
        tally.examples.push_back({chosen, out.describe});
      }
      return;
    }
    for (long long i = start; i < n_slots; ++i) {
      if (shared.stop.load(std::memory_order_relaxed)) return;
      chosen.push_back(plan.slots[static_cast<std::size_t>(i)]);
      recurse(i + 1);
      chosen.pop_back();
    }
  };

  for (;;) {
    if (shared.stop.load(std::memory_order_relaxed)) break;
    const long long first =
        shared.next_first.fetch_add(1, std::memory_order_relaxed);
    if (first > n_slots - k) break;
    chosen.clear();
    chosen.push_back(plan.slots[static_cast<std::size_t>(first)]);
    recurse(first + 1);
  }
  if (since_progress > 0) note_progress(since_progress);
}

}  // namespace

ModelCheckResult run_model_check(const ModelCheckConfig& cfg,
                                 const CheckProgressFn& progress) {
  cfg.validate();
  const SweepPlan plan = make_plan(cfg.base);
  if (cfg.base.errors > static_cast<int>(plan.slots.size())) {
    throw std::invalid_argument(
        "model check: error budget k=" + std::to_string(cfg.base.errors) +
        " exceeds the " + std::to_string(plan.slots.size()) +
        " flip slots of the window");
  }

  int jobs = cfg.jobs;
  if (jobs == 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs < 1) jobs = 1;
  }
  // Never spawn more workers than first-slot subtrees.
  const auto subtrees =
      static_cast<long long>(plan.slots.size()) - cfg.base.errors + 1;
  jobs = static_cast<int>(
      std::min<long long>(jobs, std::max<long long>(subtrees, 1)));

  const auto t0 = std::chrono::steady_clock::now();

  PrefixTemplate* tmpl = nullptr;
  TailMemo* memo = nullptr;
  std::unique_ptr<PrefixTemplate> tmpl_owner;
  std::unique_ptr<TailMemo> memo_owner;
  if (cfg.dedup) {
    tmpl_owner = std::make_unique<PrefixTemplate>(plan);
    memo_owner = std::make_unique<TailMemo>();
    tmpl = tmpl_owner.get();
    memo = memo_owner.get();
  }

  SharedState shared;
  std::vector<WorkerTally> tallies(static_cast<std::size_t>(jobs));
  if (jobs == 1) {
    run_worker(cfg, plan, tmpl, memo, shared, progress, tallies[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) {
      threads.emplace_back([&, j] {
        run_worker(cfg, plan, tmpl, memo, shared, progress,
                   tallies[static_cast<std::size_t>(j)]);
      });
    }
    for (std::thread& th : threads) th.join();
  }

  ModelCheckResult res;
  res.cfg = plan.cfg;
  res.complete = !shared.stop.load();
  for (const WorkerTally& t : tallies) {
    res.cases += t.cases;
    res.imo += t.imo;
    res.double_rx += t.double_rx;
    res.total_loss += t.total_loss;
    res.timeouts += t.timeouts;
    res.stats.enumerated += t.enumerated;
    res.stats.simulated += t.simulated;
    res.stats.tail_memo_hits += t.memo_hits;
    res.stats.symmetry_skips += t.symmetry_skips;
    for (const Counterexample& ce : t.examples) {
      if (static_cast<int>(res.examples.size()) < cfg.max_examples) {
        res.examples.push_back(ce);
      }
    }
  }
  res.stats.distinct_tails = memo ? memo->size() : 0;
  res.stats.jobs = jobs;
  res.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

FlipCaseResult run_flip_case(const ProtocolParams& protocol, int n_nodes,
                             const std::vector<std::pair<NodeId, int>>& flips) {
  ExhaustiveConfig cfg;
  cfg.protocol = protocol;
  cfg.n_nodes = n_nodes;
  cfg.errors = static_cast<int>(flips.size());
  SweepPlan plan;
  plan.cfg = cfg;
  plan.frame = model_check_frame();
  plan.eof_start = model_check_eof_start(protocol);
  const CaseOutcome out = run_full_case(plan, flips);
  FlipCaseResult res;
  res.imo = out.imo;
  res.dup = out.dup;
  res.loss = out.loss;
  res.timeout = out.timeout;
  res.describe = out.describe;
  return res;
}

}  // namespace mcan
