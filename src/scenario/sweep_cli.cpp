#include "scenario/sweep_cli.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "sim/kernel.hpp"

namespace mcan {

namespace {

bool looks_like_int(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool parse_int(const std::string& s, long long& out) {
  if (!looks_like_int(s)) return false;
  out = std::atoll(s.c_str());
  return true;
}

}  // namespace

ProtocolParams parse_protocol_arg(const std::string& token) {
  if (token == "can" || token == "standard") {
    return ProtocolParams::standard_can();
  }
  if (token == "minor") return ProtocolParams::minor_can();
  if (token == "major") return ProtocolParams::major_can(3);
  if (token.rfind("major:", 0) == 0) {
    long long m = 0;
    if (!parse_int(token.substr(6), m) || m < 1 || m > 31) {
      throw std::invalid_argument("bad MajorCAN order in '" + token +
                                  "' (want major:<m>, m in [1, 31])");
    }
    return ProtocolParams::major_can(static_cast<int>(m));
  }
  throw std::invalid_argument("unknown protocol '" + token +
                              "' (want can|minor|major|major:<m>)");
}

std::vector<ProtocolParams> default_protocol_set() {
  return {ProtocolParams::standard_can(), ProtocolParams::minor_can(),
          ProtocolParams::major_can(3), ProtocolParams::major_can(5)};
}

std::vector<ProtocolParams> SweepOptions::protocol_set() const {
  return protocols.empty() ? default_protocol_set() : protocols;
}

bool parse_sweep_args(int argc, char** argv, SweepOptions& opt,
                      std::vector<std::string>& rest, std::string& error) {
  auto need_value = [&](int& i, const std::string& flag,
                        std::string& out) -> bool {
    if (i + 1 >= argc) {
      error = flag + " needs a value";
      return false;
    }
    out = argv[++i];
    return true;
  };
  auto need_int = [&](int& i, const std::string& flag,
                      long long& out) -> bool {
    std::string v;
    if (!need_value(i, flag, v)) return false;
    if (!parse_int(v, out)) {
      error = flag + ": '" + v + "' is not an integer";
      return false;
    }
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    long long v = 0;
    if (a == "--protocol" || a == "-p") {
      std::string tok;
      if (!need_value(i, a, tok)) return false;
      try {
        opt.protocols.push_back(parse_protocol_arg(tok));
      } catch (const std::invalid_argument& e) {
        error = e.what();
        return false;
      }
    } else if (a == "--errors" || a == "-k") {
      if (!need_int(i, a, v)) return false;
      opt.max_k = static_cast<int>(v);
    } else if (a == "--nodes" || a == "-n") {
      if (!need_int(i, a, v)) return false;
      opt.n_nodes = static_cast<int>(v);
    } else if (a == "--jobs" || a == "-j") {
      if (!need_int(i, a, v)) return false;
      opt.jobs = static_cast<int>(v);
    } else if (a == "--budget") {
      if (!need_int(i, a, v)) return false;
      opt.budget = v;
    } else if (a == "--json") {
      if (!need_value(i, a, opt.json)) return false;
    } else if (a == "--kernel") {
      std::string k;
      if (!need_value(i, a, k)) return false;
      const std::optional<KernelKind> kind = parse_kernel_name(k);
      if (!kind) {
        error = "--kernel: '" + k + "' is not ref|fast";
        return false;
      }
      opt.kernel = *kind;
      // Applied at parse time: every bus this process builds through
      // Network — campaign workers included — inherits the selection.
      set_default_kernel(*kind);
    } else if (a == "--no-dedup") {
      opt.dedup = false;
    } else if (a == "--no-symmetry") {
      opt.symmetry = false;
    } else if (a == "--no-progress") {
      opt.progress = false;
    } else if (a == "--window") {
      std::string w;
      if (!need_value(i, a, w)) return false;
      const std::size_t colon = w.find(':');
      long long lo = 0, hi = 0;
      if (colon == std::string::npos || !parse_int(w.substr(0, colon), lo) ||
          !parse_int(w.substr(colon + 1), hi)) {
        error = "--window: '" + w + "' is not LO:HI";
        return false;
      }
      opt.win_lo = static_cast<int>(lo);
      opt.win_hi = static_cast<int>(hi);
    } else if (rest.empty() && looks_like_int(a)) {
      // Bare positional integer: legacy bench_exhaustive usage, same as -k.
      // Only before any unrecognized flag — a later integer is more likely
      // that flag's value and belongs to the caller.
      opt.max_k = static_cast<int>(std::atoll(a.c_str()));
    } else {
      rest.push_back(a);
    }
  }
  return true;
}

const char* sweep_flags_help() {
  return "  --protocol, -p P   sweep protocol P: can|minor|major|major:<m>\n"
         "                     (repeatable; default: can minor major:3"
         " major:5)\n"
         "  --errors, -k N     error budget; sweeps run k = 1..N"
         " (default 2)\n"
         "  --nodes, -n N      bus size (default 3)\n"
         "  --jobs, -j N       worker threads (default 0 = hardware)\n"
         "  --budget N         stop each sweep after N cases (0 ="
         " exhaustive)\n"
         "  --window LO:HI     flip window override, EOF-relative bits\n"
         "  --json PATH        write a machine-readable result to PATH\n"
         "  --kernel K         bit engine: ref (reference loop) or fast\n"
         "                     (event-skipping, certified bit-identical)\n"
         "  --no-dedup         disable tail memoization + prefix cloning\n"
         "  --no-symmetry      disable receiver-permutation reduction\n"
         "  --no-progress      silence the stderr progress meter\n";
}

}  // namespace mcan
