// Shared command-line vocabulary for the sweep drivers.
//
// bench_exhaustive, bench_model_check and the mcan-check CLI all sweep
// the same (protocol set, k, window, engine knobs) space; this header is
// the one place their flags are parsed so the tools cannot drift apart.
// parse_sweep_args consumes the flags it knows and hands everything else
// back to the caller in `rest` for tool-specific options.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "sim/kernel.hpp"

namespace mcan {

/// Parse a protocol selector token: "can", "minor", "major" (m = 3) or
/// "major:<m>".  Throws std::invalid_argument on anything else.
[[nodiscard]] ProtocolParams parse_protocol_arg(const std::string& token);

/// The default sweep set: CAN, MinorCAN, MajorCAN_3, MajorCAN_5.
[[nodiscard]] std::vector<ProtocolParams> default_protocol_set();

struct SweepOptions {
  std::vector<ProtocolParams> protocols;  ///< empty until defaulted/parsed
  int max_k = 2;       ///< sweep k = 1..max_k
  int n_nodes = 3;
  int jobs = 0;        ///< 0 = one worker per hardware thread
  bool dedup = true;
  bool symmetry = true;
  long long budget = 0;   ///< max cases per sweep (0 = exhaustive)
  bool progress = true;   ///< live cases/sec + ETA meter on stderr
  std::optional<int> win_lo;  ///< --window override (EOF-relative)
  std::optional<int> win_hi;
  std::string json;    ///< --json: machine-readable result file ("" = none)
  KernelKind kernel = KernelKind::Ref;  ///< --kernel (also set globally)

  /// Protocols to sweep: the parsed --protocol list, or the default set.
  [[nodiscard]] std::vector<ProtocolParams> protocol_set() const;
};

/// Parse the shared flags out of argv:
///
///   --protocol can|minor|major|major:<m>   (repeatable)
///   --errors N | -k N          error budget; sweeps run k = 1..N
///   --nodes N                  bus size (default 3)
///   --jobs N                   worker threads (0 = hardware)
///   --budget N                 stop each sweep after N cases
///   --no-dedup / --no-symmetry disable engine reductions
///   --no-progress              silence the stderr meter
///   --window LO:HI             flip window override, EOF-relative
///   --json PATH                write a machine-readable result to PATH
///   --kernel ref|fast          bit engine (applied process-globally)
///   <int>                      bare positional: same as --errors
///
/// Unrecognized arguments are appended to `rest` in order.  Returns false
/// (with a message in `error`) on a malformed value for a known flag.
[[nodiscard]] bool parse_sweep_args(int argc, char** argv, SweepOptions& opt,
                                    std::vector<std::string>& rest,
                                    std::string& error);

/// One help paragraph describing the shared flags (for --help texts).
[[nodiscard]] const char* sweep_flags_help();

}  // namespace mcan
