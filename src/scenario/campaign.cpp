#include "scenario/campaign.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <thread>

#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/random_faults.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"
#include "frame/layout.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace mcan {

std::string CampaignResult::summary() const {
  std::string s = cfg.protocol.name();
  s += " errors=" + std::to_string(cfg.errors);
  s += " trials=" + std::to_string(trials);
  s += " | IMO=" + std::to_string(imo);
  s += " double-rx=" + std::to_string(double_rx);
  s += " total-loss=" + std::to_string(total_loss);
  s += " retransmissions=" + std::to_string(retransmissions);
  if (timeouts) s += " TIMEOUTS=" + std::to_string(timeouts);
  return s;
}

CampaignResult run_eof_campaign(const CampaignConfig& cfg) {
  return run_eof_campaign_range(cfg, 0, cfg.trials);
}

CampaignResult run_eof_campaign_range(const CampaignConfig& cfg, int first,
                                      int last) {
  CampaignResult res;
  res.cfg = cfg;

  Rng master(cfg.seed, 0x9d5c0f3a);
  const Frame frame = make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
  const int eof_bits = cfg.protocol.eof_bits();
  const int wire_len = wire_length(frame, eof_bits);
  const int eof_start = wire_len - eof_bits;

  // The frame starts at bit time 0 (node 0 holds the only pending frame).
  BitTime win_lo = 0;
  BitTime win_hi = 0;  // exclusive
  switch (cfg.window) {
    case FaultWindow::FrameTail:
      // The tail plus the whole end-game region (extended flags / sampling
      // run up to EOF-relative position 3m+4 in MajorCAN).
      win_lo = static_cast<BitTime>(eof_start > 4 ? eof_start - 4 : 0);
      win_hi = static_cast<BitTime>(eof_start + 3 * cfg.protocol.m + 6);
      break;
    case FaultWindow::WholeFrame:
      win_lo = 0;
      win_hi = static_cast<BitTime>(wire_len);
      break;
    case FaultWindow::TailAndRecovery:
      // Through the end-game and the full error delimiter — but not the
      // intermission or the retransmitted frame's bits, whose disturbance
      // effects are the separate parser-resynchronisation finding
      // (DESIGN.md §7), not delimiter robustness.
      win_lo = static_cast<BitTime>(eof_start > 4 ? eof_start - 4 : 0);
      win_hi = static_cast<BitTime>(eof_start + 5 * cfg.protocol.m + 6);
      break;
  }
  const auto win_size = static_cast<std::uint32_t>(win_hi - win_lo);

  for (int trial = first; trial < last; ++trial) {
    Rng rng = master.split(static_cast<std::uint64_t>(trial));

    Network net(cfg.n_nodes, cfg.protocol);
    ScriptedFaults inj;
    for (int e = 0; e < cfg.errors; ++e) {
      const auto node =
          static_cast<NodeId>(rng.next_below(static_cast<std::uint32_t>(cfg.n_nodes)));
      const BitTime at = win_lo + rng.next_below(win_size);
      inj.add(FaultTarget::at_time(node, at));
    }
    net.set_injector(inj);

    bool tx_crashed = false;
    if (cfg.crash_tx_randomly && rng.chance(0.5)) {
      // Crash the transmitter somewhere in or shortly after the fault
      // window — the Fig. 1c failure mode, randomised.
      const BitTime at = win_lo + rng.next_below(win_size + 20);
      net.sim().schedule_crash(0, at);
      tx_crashed = true;
    }

    net.node(0).enqueue(frame);
    const bool quiesced = net.run_until_quiet(30000);
    if (!quiesced) {
      ++res.timeouts;
      continue;
    }

    const int tx_success =
        static_cast<int>(net.log().count(EventKind::TxSuccess, 0));
    res.retransmissions +=
        static_cast<int>(net.log().count(EventKind::TxRetransmit, 0));

    bool any = false;
    bool all = true;
    bool dup = false;
    for (int i = 1; i < cfg.n_nodes; ++i) {
      const auto copies = static_cast<int>(net.deliveries(i).size());
      if (copies > 0) any = true;
      if (copies == 0) all = false;
      if (copies > 1) dup = true;
    }

    // The sender counts as having the message iff it reported TxSuccess and
    // did not crash; a correct sender with no deliveries anywhere is a total
    // loss (validity violation).
    const bool sender_has = tx_success > 0 && !tx_crashed;
    if ((any || sender_has) && !all) ++res.imo;
    if (dup) ++res.double_rx;
    if (!any && sender_has) ++res.total_loss;
    ++res.trials;
  }
  return res;
}

CampaignResult run_eof_campaign_parallel(const CampaignConfig& cfg,
                                         unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(
                                            std::max(1, cfg.trials)));
  if (threads <= 1) return run_eof_campaign(cfg);

  std::vector<CampaignResult> parts(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const int per = cfg.trials / static_cast<int>(threads);
  const int extra = cfg.trials % static_cast<int>(threads);
  int next = 0;
  for (unsigned w = 0; w < threads; ++w) {
    const int count = per + (static_cast<int>(w) < extra ? 1 : 0);
    const int first = next;
    const int last = next + count;
    next = last;
    workers.emplace_back([&parts, w, &cfg, first, last] {
      parts[w] = run_eof_campaign_range(cfg, first, last);
    });
  }
  for (std::thread& t : workers) t.join();

  CampaignResult res;
  res.cfg = cfg;
  for (const CampaignResult& p : parts) {
    res.trials += p.trials;
    res.imo += p.imo;
    res.double_rx += p.double_rx;
    res.total_loss += p.total_loss;
    res.retransmissions += p.retransmissions;
    res.timeouts += p.timeouts;
  }
  return res;
}

// ---------------------------------------------------------------------------
// higher-level baselines
// ---------------------------------------------------------------------------

std::string HigherCampaignResult::summary() const {
  std::string s = higher_kind_name(cfg.kind);
  s += " errors=" + std::to_string(cfg.errors);
  if (cfg.crash_tx_randomly) s += " +crashes";
  s += " trials=" + std::to_string(trials);
  s += " | AB2 violations=" + std::to_string(agreement_violations);
  s += " AB3=" + std::to_string(duplicate_trials);
  s += " AB5=" + std::to_string(order_trials);
  if (timeouts) s += " TIMEOUTS=" + std::to_string(timeouts);
  return s;
}

HigherCampaignResult run_higher_campaign(const HigherCampaignConfig& cfg) {
  HigherCampaignResult res;
  res.cfg = cfg;

  Rng master(cfg.seed, 0x8a7e11);
  // The DATA frame is the first thing on the bus; its geometry fixes the
  // disturbance window exactly as in the link-level campaign.
  const Frame data =
      make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
  const int wire_len = wire_length(data, kStandardEofBits);
  const int eof_start = wire_len - kStandardEofBits;
  const BitTime win_lo = static_cast<BitTime>(eof_start - 4);
  const BitTime win_hi = static_cast<BitTime>(eof_start + kStandardEofBits + 3);
  const auto win_size = static_cast<std::uint32_t>(win_hi - win_lo);

  for (int trial = 0; trial < cfg.trials; ++trial) {
    Rng rng = master.split(static_cast<std::uint64_t>(trial));

    HigherNetwork net(cfg.kind, cfg.n_nodes, HostParams{cfg.timeout_bits});
    ScriptedFaults inj;
    for (int e = 0; e < cfg.errors; ++e) {
      const auto node = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint32_t>(cfg.n_nodes)));
      inj.add(FaultTarget::at_time(node, win_lo + rng.next_below(win_size)));
    }
    net.link().set_injector(inj);

    bool crashed = false;
    if (cfg.crash_tx_randomly && rng.chance(0.5)) {
      net.link().sim().schedule_crash(0, win_lo + rng.next_below(win_size + 30));
      crashed = true;
    }

    net.host(0).broadcast(MessageKey{0, 1});
    if (!net.run_until_quiet(60000)) {
      ++res.timeouts;
      continue;
    }

    std::set<NodeId> correct;
    for (int i = crashed ? 1 : 0; i < cfg.n_nodes; ++i) {
      correct.insert(static_cast<NodeId>(i));
    }
    const AbReport rep = net.check(correct);
    if (rep.agreement_violations > 0) ++res.agreement_violations;
    if (rep.duplicate_deliveries > 0) ++res.duplicate_trials;
    if (rep.order_inversions > 0) ++res.order_trials;
    ++res.trials;
  }
  return res;
}

// ---------------------------------------------------------------------------
// soak
// ---------------------------------------------------------------------------

std::string SoakResult::summary() const {
  std::string s = cfg.protocol.name();
  s += " nodes=" + std::to_string(cfg.n_nodes);
  s += " ber*=" + sci(cfg.ber_star, 2);
  s += " frames=" + std::to_string(frames_broadcast);
  s += " injected=" + std::to_string(errors_injected);
  s += " bits=" + std::to_string(duration_bits);
  s += "\n  " + report.summary();
  return s;
}

SoakResult run_soak(const SoakConfig& cfg) {
  SoakResult res;
  res.cfg = cfg;

  Network net(cfg.n_nodes, cfg.protocol);
  RandomFaults inj(cfg.ber_star, Rng(cfg.seed, 0x51a7b0));
  net.set_injector(inj);

  std::vector<BroadcastRecord> broadcasts;
  std::map<NodeId, DeliveryJournal> journals;
  for (int i = 0; i < cfg.n_nodes; ++i) {
    journals.emplace(static_cast<NodeId>(i), DeliveryJournal{});
  }

  // Senders journal their own broadcasts at TxSuccess (the moment the
  // controller reports the frame delivered).
  for (int i = 0; i < cfg.senders; ++i) {
    auto& journal = journals.at(static_cast<NodeId>(i));
    net.node(i).add_tx_done_handler([&journal](const Frame& f, BitTime t) {
      if (auto tag = parse_tag(f)) journal.push_back({tag->key, t});
    });
  }

  std::vector<int> next_seq(static_cast<std::size_t>(cfg.senders), 0);
  BitTime t = 0;
  const BitTime horizon =
      static_cast<BitTime>(cfg.frames_per_sender) * cfg.period_bits + 50;
  while (t < horizon) {
    for (int i = 0; i < cfg.senders; ++i) {
      // Staggered periodic release.
      const BitTime phase = static_cast<BitTime>(i) * 37;
      if ((t + phase) % static_cast<BitTime>(cfg.period_bits) == 0 &&
          next_seq[static_cast<std::size_t>(i)] < cfg.frames_per_sender) {
        const auto seq = static_cast<std::uint16_t>(
            ++next_seq[static_cast<std::size_t>(i)]);
        const MessageKey key{static_cast<NodeId>(i), seq};
        net.node(i).enqueue(make_tagged_frame(
            0x100 + static_cast<std::uint32_t>(i), MsgKind::Data, key));
        broadcasts.push_back({key, static_cast<NodeId>(i)});
      }
    }
    net.sim().step();
    ++t;
  }
  // Drain with a clean channel so pending retransmissions settle.
  inj.set_rate(0.0);
  net.run_until_quiet(60000);

  for (int i = 0; i < cfg.n_nodes; ++i) {
    auto& journal = journals.at(static_cast<NodeId>(i));
    for (const Delivery& d : net.deliveries(i)) {
      if (auto tag = parse_tag(d.frame)) {
        journal.push_back({tag->key, d.t});
      }
    }
    std::sort(journal.begin(), journal.end(),
              [](const DeliveryEvent& a, const DeliveryEvent& b) {
                return a.t < b.t;
              });
  }

  std::set<NodeId> correct;
  for (int i = 0; i < cfg.n_nodes; ++i) {
    if (net.node(i).active()) correct.insert(static_cast<NodeId>(i));
  }

  res.report = check_atomic_broadcast(broadcasts, journals, correct);
  res.frames_broadcast = static_cast<int>(broadcasts.size());
  res.errors_injected = inj.injected();
  res.duration_bits = net.sim().now();
  return res;
}

}  // namespace mcan
