#include "scenario/dsl.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "analysis/tagged.hpp"
#include "attack/injector.hpp"
#include "core/network.hpp"

namespace mcan {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("scenario line " + std::to_string(line) + ": " +
                              what);
}

std::uint32_t parse_uint(int line, const std::string& s) {
  try {
    return static_cast<std::uint32_t>(std::stoul(s, nullptr, 0));
  } catch (const std::exception&) {
    fail(line, "not a number: '" + s + "'");
  }
}

// Signed variant for EOF-relative positions, which are legitimately
// negative (eofrel=-1 is the last bit before EOF); stoul would silently
// wrap the minus sign into a huge position instead.
int parse_int(int line, const std::string& s) {
  try {
    std::size_t used = 0;
    const long v = std::stol(s, &used, 0);
    if (used != s.size()) throw std::invalid_argument(s);
    return static_cast<int>(v);
  } catch (const std::exception&) {
    fail(line, "not an integer: '" + s + "'");
  }
}

/// Parse "key=value" tokens into a map.
std::map<std::string, std::string> parse_kv(
    int line, const std::vector<std::string>& tokens, std::size_t from) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = from; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) fail(line, "expected key=value: " + tokens[i]);
    kv[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return kv;
}

}  // namespace

RsmWorkload sanitize_rsm_workload(RsmWorkload w, int n_nodes) {
  const auto clamp = [](int v, int lo, int hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  // Command count and payload are bounded so the worst-case uncommitted
  // log tail always fits one snapshot message (kRsmMaxPayload); the
  // commit threshold must be reachable by the full membership.
  w.commands = clamp(w.commands, 1, 10);
  w.payload = clamp(w.payload, 1, 16);
  w.k = clamp(w.k, 1, n_nodes < 1 ? 1 : n_nodes);
  if (w.spacing > 10000) w.spacing = 10000;
  w.link = clamp(w.link, 0, 3);
  if (w.crash_node >= n_nodes) w.crash_node = n_nodes - 1;
  if (w.crash_node < 0) {
    w.crash_node = -1;
    w.crash_t = 0;
    w.recover_t = 0;
  } else {
    if (w.crash_t > 100000) w.crash_t = 100000;
    if (w.recover_t != 0 && w.recover_t <= w.crash_t) {
      w.recover_t = w.crash_t + 1;
    }
    if (w.recover_t > 150000) w.recover_t = 150000;
  }
  return w;
}

ScenarioSpec parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  spec.protocol = ProtocolParams::standard_can();

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::vector<std::string> tok;
    for (std::string t; line >> t;) tok.push_back(t);
    if (tok.empty()) continue;

    const std::string& cmd = tok[0];
    if (cmd == "name") {
      spec.name = tok.size() > 1 ? raw.substr(raw.find(tok[1])) : "";
    } else if (cmd == "protocol") {
      if (tok.size() < 2) fail(line_no, "protocol needs a variant");
      if (tok[1] == "can") {
        spec.protocol = ProtocolParams::standard_can();
      } else if (tok[1] == "minor") {
        spec.protocol = ProtocolParams::minor_can();
      } else if (tok[1] == "major") {
        const int m = tok.size() > 2
                          ? static_cast<int>(parse_uint(line_no, tok[2]))
                          : 5;
        spec.protocol = ProtocolParams::major_can(m);
      } else {
        fail(line_no, "unknown protocol: " + tok[1]);
      }
    } else if (cmd == "nodes") {
      if (tok.size() < 2) fail(line_no, "nodes needs a count");
      spec.n_nodes = static_cast<int>(parse_uint(line_no, tok[1]));
      if (spec.n_nodes < 2) fail(line_no, "need at least 2 nodes");
    } else if (cmd == "frame") {
      auto kv = parse_kv(line_no, tok, 1);
      if (kv.contains("id")) spec.frame_id = parse_uint(line_no, kv["id"]);
      if (kv.contains("dlc")) {
        spec.frame_dlc = static_cast<std::uint8_t>(parse_uint(line_no, kv["dlc"]));
      }
    } else if (cmd == "traffic") {
      auto kv = parse_kv(line_no, tok, 1);
      TrafficFrame t;
      if (kv.contains("id")) t.id = parse_uint(line_no, kv["id"]);
      if (kv.contains("dlc")) {
        t.dlc = static_cast<std::uint8_t>(parse_uint(line_no, kv["dlc"]));
      }
      if (kv.contains("node")) t.sender = parse_uint(line_no, kv["node"]);
      spec.traffic.push_back(t);
    } else if (cmd == "flip") {
      auto kv = parse_kv(line_no, tok, 1);
      // parse_fault_target (fault/scripted.hpp) validates the field set and
      // names the offending field; prefixing the line number here gives a
      // bad flip both coordinates.
      try {
        spec.flips.push_back(parse_fault_target(kv));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (cmd == "attack") {
      if (tok.size() < 2) {
        fail(line_no, "attack needs a kind (glitch|busoff|spoof)");
      }
      auto kv = parse_kv(line_no, tok, 2);
      try {
        spec.attacks.push_back(parse_attack(tok[1], kv));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (cmd == "crash") {
      auto kv = parse_kv(line_no, tok, 1);
      if (!kv.contains("node") || !kv.contains("t")) {
        fail(line_no, "crash needs node= and t=");
      }
      spec.crash = {parse_uint(line_no, kv["node"]),
                    parse_uint(line_no, kv["t"])};
    } else if (cmd == "rsm") {
      auto kv = parse_kv(line_no, tok, 1);
      RsmWorkload w;
      if (kv.contains("commands")) {
        w.commands = parse_int(line_no, kv["commands"]);
      }
      if (kv.contains("payload")) w.payload = parse_int(line_no, kv["payload"]);
      if (kv.contains("k")) w.k = parse_int(line_no, kv["k"]);
      if (kv.contains("spacing")) w.spacing = parse_uint(line_no, kv["spacing"]);
      if (kv.contains("link")) {
        const std::string& l = kv["link"];
        if (l == "direct") {
          w.link = 0;
        } else if (l == "edcan") {
          w.link = 1;
        } else if (l == "relcan") {
          w.link = 2;
        } else if (l == "totcan") {
          w.link = 3;
        } else {
          fail(line_no, "unknown rsm link: " + l);
        }
      }
      if (kv.contains("crash")) w.crash_node = parse_int(line_no, kv["crash"]);
      if (kv.contains("crasht")) w.crash_t = parse_uint(line_no, kv["crasht"]);
      if (kv.contains("recovert")) {
        w.recover_t = parse_uint(line_no, kv["recovert"]);
      }
      if (w.crash_node < 0) {  // canonical: no crash means no crash times
        w.crash_node = -1;
        w.crash_t = 0;
        w.recover_t = 0;
      }
      spec.rsm = w;
    } else if (cmd == "expect") {
      if (tok.size() < 2) fail(line_no, "expect needs a verdict");
      if (tok[1] == "imo") {
        spec.expect = Expectation::Imo;
      } else if (tok[1] == "consistent") {
        spec.expect = Expectation::Consistent;
      } else if (tok[1] == "double") {
        spec.expect = Expectation::Double;
      } else if (tok[1] == "any") {
        spec.expect = Expectation::Any;
      } else {
        fail(line_no, "unknown expectation: " + tok[1]);
      }
    } else {
      fail(line_no, "unknown directive: " + cmd);
    }
  }
  return spec;
}

namespace {

std::string hex_id(std::uint32_t id) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", id);
  return buf;
}

std::string render_flip(const FaultTarget& f) {
  std::string s = "flip node=" + std::to_string(f.node);
  if (f.seg == Seg::Eof && f.index) {
    s += " eof=" + std::to_string(*f.index);
  } else if (f.eof_rel) {
    s += " eofrel=" + std::to_string(*f.eof_rel);
  } else if (f.seg == Seg::Body && f.index) {
    s += " body=" + std::to_string(*f.index);
  } else if (f.at) {
    s += " t=" + std::to_string(*f.at);
    return s;  // the t= form carries no frame index
  }
  if (f.frame_index && *f.frame_index != 0) {
    s += " frame=" + std::to_string(*f.frame_index);
  }
  return s;
}

}  // namespace

std::string write_scenario(const ScenarioSpec& spec,
                           const ScenarioWriteOptions& opts) {
  std::string s;
  for (const std::string& line : opts.header) s += "# " + line + "\n";
  if (!spec.name.empty()) s += "name " + spec.name + "\n";
  switch (spec.protocol.variant) {
    case Variant::StandardCan:
      s += "protocol can\n";
      break;
    case Variant::MinorCan:
      s += "protocol minor\n";
      break;
    case Variant::MajorCan:
      s += "protocol major " + std::to_string(spec.protocol.m) + "\n";
      break;
  }
  s += "nodes " + std::to_string(spec.n_nodes) + "\n";
  s += "frame id=" + hex_id(spec.frame_id) +
       " dlc=" + std::to_string(spec.frame_dlc) + "\n";
  for (const TrafficFrame& t : spec.traffic) {
    s += "traffic id=" + hex_id(t.id) + " dlc=" + std::to_string(t.dlc) +
         " node=" + std::to_string(t.sender) + "\n";
  }
  for (std::size_t i = 0; i < spec.flips.size(); ++i) {
    s += render_flip(spec.flips[i]);
    if (i < opts.flip_comments.size() && !opts.flip_comments[i].empty()) {
      s += "   # " + opts.flip_comments[i];
    }
    s += "\n";
  }
  for (const AttackSpec& a : spec.attacks) {
    s += "attack " + render_attack(a) + "\n";
  }
  if (spec.crash) {
    s += "crash node=" + std::to_string(spec.crash->first) +
         " t=" + std::to_string(spec.crash->second) + "\n";
  }
  if (spec.rsm) {
    const RsmWorkload& w = *spec.rsm;
    static const char* const kLinks[] = {"direct", "edcan", "relcan",
                                         "totcan"};
    s += "rsm commands=" + std::to_string(w.commands) +
         " payload=" + std::to_string(w.payload) +
         " k=" + std::to_string(w.k) +
         " spacing=" + std::to_string(w.spacing) + " link=" +
         kLinks[w.link >= 0 && w.link < 4 ? w.link : 0];
    if (w.crash_node >= 0) {
      s += " crash=" + std::to_string(w.crash_node) +
           " crasht=" + std::to_string(w.crash_t) +
           " recovert=" + std::to_string(w.recover_t);
    }
    s += "\n";
  }
  switch (spec.expect) {
    case Expectation::Any:
      s += "expect any\n";
      break;
    case Expectation::Consistent:
      s += "expect consistent\n";
      break;
    case Expectation::Imo:
      s += "expect imo\n";
      break;
    case Expectation::Double:
      s += "expect double\n";
      break;
  }
  return s;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::invalid_argument("cannot open scenario file: " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  ScenarioSpec spec = parse_scenario(buf.str());
  if (spec.name.empty()) spec.name = path;
  return spec;
}

DslRunResult run_scenario(const ScenarioSpec& spec,
                          const InvariantConfig& inv) {
  if (spec.rsm) {
    throw std::invalid_argument(
        "scenario '" + spec.name +
        "' carries an rsm workload; run it through run_rsm_scenario or "
        "run_any_scenario (src/rsm/runner.hpp)");
  }
  // Reuse the figure engine for the run + trace, then layer the crash.
  Network net(spec.n_nodes, spec.protocol);
  net.enable_trace();
  ScriptedFaults inj(spec.flips);
  AttackEngine attacker(spec.attacks);
  CompositeInjector faults;
  faults.add(inj);
  faults.add(attacker);
  net.set_injector(faults);
  if (spec.crash) net.sim().schedule_crash(spec.crash->first, spec.crash->second);

  InvariantScope invariants(net, inv);

  // Tagged journals for the AB1..AB5 verdict: senders journal their own
  // broadcasts at TxSuccess (the run_soak convention), receivers at
  // delivery.  A delivered frame whose tag does not parse is journaled
  // under a key that was never broadcast, so it surfaces as an AB4
  // non-triviality violation instead of disappearing.
  std::vector<BroadcastRecord> broadcasts;
  std::map<NodeId, DeliveryJournal> journals;
  for (int i = 0; i < spec.n_nodes; ++i) {
    journals.emplace(static_cast<NodeId>(i), DeliveryJournal{});
  }
  auto journal_tx = [&journals](NodeId sender) {
    auto& journal = journals.at(sender);
    return [&journal](const Frame& f, BitTime t) {
      if (auto tag = parse_tag(f)) journal.push_back({tag->key, t});
    };
  };

  const Frame frame =
      make_tagged_frame(spec.frame_id, MsgKind::Data, MessageKey{0, 1},
                        std::max<std::uint8_t>(4, spec.frame_dlc));
  net.node(0).enqueue(frame);
  net.node(0).add_tx_done_handler(journal_tx(0));
  broadcasts.push_back({MessageKey{0, 1}, 0});
  std::set<NodeId> journaling{0};
  for (std::size_t j = 0; j < spec.traffic.size(); ++j) {
    const TrafficFrame& t = spec.traffic[j];
    const auto sender =
        static_cast<NodeId>(t.sender % static_cast<NodeId>(spec.n_nodes));
    const MessageKey key{sender, static_cast<std::uint16_t>(100 + j)};
    net.node(static_cast<int>(sender))
        .enqueue(make_tagged_frame(t.id, MsgKind::Data, key,
                                   std::max<std::uint8_t>(4, t.dlc)));
    if (journaling.insert(sender).second) {
      net.node(static_cast<int>(sender)).add_tx_done_handler(journal_tx(sender));
    }
    broadcasts.push_back({key, sender});
  }
  // Spoofed frames are enqueued like traffic but deliberately NOT recorded
  // in `broadcasts`: a delivered spoof is a message no correct sender ever
  // broadcast, which is exactly what the AB4 non-triviality rule flags.
  std::set<MessageKey> spoofed;
  for (const AttackSpec& a : spec.attacks) {
    if (a.kind != AttackKind::Spoof) continue;
    const auto src = static_cast<int>(
        a.attacker % static_cast<std::uint32_t>(spec.n_nodes));
    for (const MessageKey& key : spoof_keys(a)) {
      net.node(src).enqueue(make_tagged_frame(a.id, MsgKind::Data, key,
                                              std::max<std::uint8_t>(4, a.dlc)));
      attacker.note_spoofed(1);
      spoofed.insert(key);
    }
  }
  const bool quiesced = net.run_until_quiet(30000);
  // run_until_quiet stops *before* an all-idle bit is ever recorded (the
  // predicate is checked pre-step), so the reconvergence rule would never
  // see an idle record.  Step a short cooldown so it does.
  for (int i = 0; i < 2 * spec.protocol.eof_bits(); ++i) net.sim().step();

  DslRunResult res;
  res.quiesced = quiesced;
  res.invariants = invariants.report();
  invariants.set_handler(nullptr);  // report travels in the result instead

  for (int i = 0; i < spec.n_nodes; ++i) {
    auto& journal = journals.at(static_cast<NodeId>(i));
    for (const Delivery& d : net.deliveries(i)) {
      if (auto tag = parse_tag(d.frame)) {
        if (spoofed.contains(tag->key)) attacker.note_spoof_delivered();
        journal.push_back({tag->key, d.t});
      } else {
        journal.push_back({MessageKey{255, 0xFFFF}, d.t});  // AB4 sentinel
      }
    }
    // Tx-done entries were journaled live, deliveries appended afterwards:
    // restore one true per-node event order for the AB5 comparison.
    std::stable_sort(journal.begin(), journal.end(),
                     [](const DeliveryEvent& a, const DeliveryEvent& b) {
                       return a.t < b.t;
                     });
  }
  std::set<NodeId> correct;
  for (int i = 0; i < spec.n_nodes; ++i) correct.insert(static_cast<NodeId>(i));
  if (spec.crash) correct.erase(spec.crash->first);
  res.ab = check_atomic_broadcast(broadcasts, journals, correct);

  res.outcome.name = spec.name.empty() ? "scenario" : spec.name;
  res.outcome.protocol = spec.protocol;
  res.outcome.tx_node = 0;
  res.outcome.n_nodes = spec.n_nodes;
  res.outcome.deliveries.assign(static_cast<std::size_t>(spec.n_nodes), 0);
  for (int i = 0; i < spec.n_nodes; ++i) {
    res.outcome.deliveries[static_cast<std::size_t>(i)] =
        static_cast<int>(net.deliveries(i).size());
  }
  res.outcome.tx_success =
      static_cast<int>(net.log().count(EventKind::TxSuccess, 0));
  res.outcome.tx_attempts =
      static_cast<int>(net.log().count(EventKind::SofSent, 0));
  res.outcome.tx_crashed = spec.crash.has_value();
  res.outcome.faults_all_fired = inj.all_fired();
  res.outcome.trace = net.trace().render(net.labels());

  // The injector never observes a victim's terminal state (a bus-off node
  // stops driving bits), so the verdict comes from the controller itself.
  for (NodeId v : attacker.busoff_victims()) {
    if (static_cast<int>(v) >= spec.n_nodes) continue;
    const CanController& victim = net.node(static_cast<int>(v));
    attacker.finalize_victim(v, victim.fc_state() == FcState::BusOff,
                             victim.tec());
  }
  res.attack = attacker.report();

  switch (spec.expect) {
    case Expectation::Any:
      res.expectation_met = true;
      res.expectation_text = "(no expectation)";
      break;
    case Expectation::Imo:
      res.expectation_met = res.outcome.imo();
      res.expectation_text = "expected inconsistent message omission";
      break;
    case Expectation::Consistent:
      res.expectation_met =
          !res.outcome.imo() && !res.outcome.double_reception();
      res.expectation_text = "expected consistency";
      break;
    case Expectation::Double:
      res.expectation_met = res.outcome.double_reception();
      res.expectation_text = "expected double reception";
      break;
  }
  return res;
}

}  // namespace mcan
