// A small text language for disturbance scenarios, so experiments can live
// as data files (scenarios/*.scn) and be replayed by the trace explorer:
//
//     # Fig 3a: the paper's new scenario
//     protocol can            # can | minor | major <m>
//     nodes 5
//     frame id=0x100 dlc=4
//     flip node=1 eof=5       # 0-based EOF bit of that node's view
//     flip node=2 eof=5
//     flip node=0 eof=6
//     crash node=0 t=75       # optional, absolute bit time
//     expect imo              # imo | consistent | double | any
//
// Addressing forms for `flip`: eof=<pos> [frame=<k>], eofrel=<pos>
// [frame=<k>], body=<wire-bit> [frame=<k>], t=<absolute-bit>.
#pragma once

#include <string>

#include "analysis/invariants.hpp"
#include "scenario/figures.hpp"

namespace mcan {

enum class Expectation { Any, Consistent, Imo, Double };

struct ScenarioSpec {
  std::string name;
  ProtocolParams protocol;
  int n_nodes = 5;
  std::uint32_t frame_id = 0x100;
  std::uint8_t frame_dlc = 4;
  std::vector<FaultTarget> flips;
  std::optional<std::pair<NodeId, BitTime>> crash;
  Expectation expect = Expectation::Any;
};

/// Parse the DSL; throws std::invalid_argument with a line-numbered message
/// on syntax errors.
[[nodiscard]] ScenarioSpec parse_scenario(const std::string& text);

/// Load and parse a scenario file.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

struct DslRunResult {
  ScenarioOutcome outcome;
  bool expectation_met = true;
  std::string expectation_text;
  InvariantReport invariants;  ///< protocol conformance of the whole run
};

/// Run the scenario and evaluate its `expect` clause.  Every run is also
/// watched by an InvariantChecker; its report lands in the result (pass a
/// config to tune or disable individual rules).
[[nodiscard]] DslRunResult run_scenario(const ScenarioSpec& spec,
                                        const InvariantConfig& inv = {});

}  // namespace mcan
