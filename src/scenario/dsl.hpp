// A small text language for disturbance scenarios, so experiments can live
// as data files (scenarios/*.scn) and be replayed by the trace explorer:
//
//     # Fig 3a: the paper's new scenario
//     protocol can            # can | minor | major <m>
//     nodes 5
//     frame id=0x100 dlc=4
//     traffic id=0x200 dlc=4 node=1   # optional extra frames (traffic mix)
//     flip node=1 eof=5       # 0-based EOF bit of that node's view
//     flip node=2 eof=5
//     flip node=0 eof=6
//     crash node=0 t=75       # optional, absolute bit time
//     expect imo              # imo | consistent | double | any
//
// Addressing forms for `flip`: eof=<pos> [frame=<k>], eofrel=<pos>
// [frame=<k>], body=<wire-bit> [frame=<k>], t=<absolute-bit>.
//
// Adversarial attackers (attack/attack.hpp) are scripted with `attack`
// directives — targeted disturbances instead of scripted single flips:
//
//     attack glitch victim=1 pos=5 span=2 budget=2 frame=0 when=any
//     attack glitch victim=0 start=57 span=3 budget=3 when=any
//     attack busoff victim=0 budget=40 start=0
//     attack spoof attacker=2 as=0 seq=900 id=0x80 dlc=4 count=1
//
// The format is round-trippable: write_scenario() renders a ScenarioSpec
// back to text that parse_scenario() reads to an equal spec.  Everything
// that exports .scn files (the model checker's minimizer, the fuzzer's
// triage pipeline) goes through that one writer.
#pragma once

#include <string>

#include "analysis/invariants.hpp"
#include "analysis/properties.hpp"
#include "attack/attack.hpp"
#include "scenario/figures.hpp"

namespace mcan {

enum class Expectation { Any, Consistent, Imo, Double };

/// One extra frame in the traffic mix, enqueued at its sender before the
/// bus starts (arbitration interleaves it with the probe frame).
struct TrafficFrame {
  std::uint32_t id = 0x200;
  std::uint8_t dlc = 4;
  NodeId sender = 1;

  [[nodiscard]] bool operator==(const TrafficFrame&) const = default;
};

/// A consensus workload riding on a scenario (the `rsm` directive): run a
/// replicated state machine over the scenario's link instead of the probe
/// frame, and judge the run with the consensus property checkers
/// (src/rsm/).  Kept as a plain value here so the DSL stays independent of
/// the rsm library; src/rsm/runner.hpp interprets it.
///
///   rsm commands=3 payload=4 k=2 spacing=0 link=direct
///   rsm commands=4 k=2 crash=1 crasht=2000 recovert=9000
struct RsmWorkload {
  int commands = 3;       ///< proposals, round-robin across nodes
  int payload = 4;        ///< bytes per command (register op encoding)
  int k = 2;              ///< commit threshold (distinct voters)
  BitTime spacing = 0;    ///< bit-time gap between successive proposals
  int link = 0;           ///< 0 direct, 1 edcan, 2 relcan, 3 totcan
  int crash_node = -1;    ///< host (application) crash; -1 = none
  BitTime crash_t = 0;    ///< host crash time, absolute bits
  BitTime recover_t = 0;  ///< restart + rejoin time; 0 = never

  [[nodiscard]] bool operator==(const RsmWorkload&) const = default;
};

struct ScenarioSpec {
  std::string name;
  ProtocolParams protocol;
  int n_nodes = 5;
  std::uint32_t frame_id = 0x100;
  std::uint8_t frame_dlc = 4;
  std::vector<TrafficFrame> traffic;  ///< extra frames beyond the probe
  std::vector<FaultTarget> flips;
  std::vector<AttackSpec> attacks;  ///< attacker models (attack directive)
  std::optional<std::pair<NodeId, BitTime>> crash;
  std::optional<RsmWorkload> rsm;  ///< consensus workload (rsm directive)
  Expectation expect = Expectation::Any;

  [[nodiscard]] bool operator==(const ScenarioSpec&) const = default;
};

/// Clamp a workload into the range every consumer (runner, fuzzer, serve
/// backend) agrees is runnable on `n_nodes` replicas: command counts and
/// payload sizes the snapshot tail can always carry, a commit threshold
/// within the membership, crash/recovery times in causal order.  Shared
/// here so the fuzz mutator and the rsm runner cannot drift apart.
[[nodiscard]] RsmWorkload sanitize_rsm_workload(RsmWorkload w, int n_nodes);

/// Parse the DSL; throws std::invalid_argument with a line-numbered message
/// on syntax errors.
[[nodiscard]] ScenarioSpec parse_scenario(const std::string& text);

/// Load and parse a scenario file.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

/// Presentation options for write_scenario: free-text comment lines for
/// the file header and per-flip trailing comments (both without the
/// leading "# "; entries beyond spec.flips.size() are ignored).
struct ScenarioWriteOptions {
  std::vector<std::string> header;
  std::vector<std::string> flip_comments;
};

/// Render `spec` as .scn text.  parse_scenario(write_scenario(s)) == s for
/// every valid spec (comments are presentation only).
[[nodiscard]] std::string write_scenario(const ScenarioSpec& spec,
                                         const ScenarioWriteOptions& opts = {});

struct DslRunResult {
  ScenarioOutcome outcome;
  bool expectation_met = true;
  std::string expectation_text;
  InvariantReport invariants;  ///< protocol conformance of the whole run
  bool quiesced = true;        ///< false: the bus never went quiet (timeout)
  /// AB1..AB5 over tagged journals: senders journal their broadcasts at
  /// TxSuccess, receivers at delivery; a crashed node is excluded from the
  /// correct set.  This is the fuzzing oracle's consistency verdict — it
  /// stays meaningful with traffic mixes and crashes, where the legacy
  /// delivery-count expectations (imo/double) only describe the probe.
  AbReport ab;
  /// What the scripted attackers did (empty report without attacks).
  AttackReport attack;
};

/// Run the scenario and evaluate its `expect` clause.  Every run is also
/// watched by an InvariantChecker; its report lands in the result (pass a
/// config to tune or disable individual rules).  Scenarios carrying an
/// `rsm` workload are rejected with std::invalid_argument — run those
/// through run_rsm_scenario / run_any_scenario (src/rsm/runner.hpp), which
/// layer the consensus stack this runner knows nothing about.
[[nodiscard]] DslRunResult run_scenario(const ScenarioSpec& spec,
                                        const InvariantConfig& inv = {});

}  // namespace mcan
