#include "scenario/exhaustive.hpp"

#include <stdexcept>

#include "scenario/model_check.hpp"

namespace mcan {

int ExhaustiveConfig::window_hi() const {
  if (win_hi_rel) return *win_hi_rel;
  if (protocol.variant == Variant::MajorCan) return 3 * protocol.m + 5;
  return protocol.eof_bits() + 3;  // EOF + intermission
}

void ExhaustiveConfig::validate() const {
  protocol.validate();
  if (n_nodes < 2 || n_nodes > 16) {
    throw std::invalid_argument(
        "exhaustive: n_nodes must be in [2, 16], got " +
        std::to_string(n_nodes));
  }
  if (errors < 1) {
    throw std::invalid_argument(
        "exhaustive: error budget k must be >= 1, got " +
        std::to_string(errors));
  }
  const int hi = window_hi();
  if (win_lo_rel > hi) {
    throw std::invalid_argument(
        "exhaustive: empty flip window: win_lo_rel (" +
        std::to_string(win_lo_rel) + ") > win_hi_rel (" + std::to_string(hi) +
        ")");
  }
  // The EOF-relative grid only addresses bits of the probe frame and its
  // end-game; beyond the delimiter + intermission everything is bus-idle
  // and a flip would hit the retransmission instead of the episode the
  // sweep reasons about.
  const int end_horizon =
      (protocol.variant == Variant::MajorCan ? protocol.sample_end()
                                             : protocol.eof_bits() - 1) +
      protocol.error_delim_total() + 3;
  if (hi > end_horizon) {
    throw std::invalid_argument(
        "exhaustive: win_hi_rel (" + std::to_string(hi) +
        ") is past the end-game horizon (" + std::to_string(end_horizon) +
        ") for " + protocol.name());
  }
  const int eof_start = model_check_eof_start(protocol);
  if (win_lo_rel < -eof_start) {
    throw std::invalid_argument(
        "exhaustive: win_lo_rel (" + std::to_string(win_lo_rel) +
        ") starts before the probe frame (EOF-relative " +
        std::to_string(-eof_start) + " is bit time 0)");
  }
}

std::string Counterexample::to_string() const {
  std::string s = "flips:";
  for (const auto& [node, pos] : flips) {
    s += " (node " + std::to_string(node) + ", EOF" +
         (pos >= 0 ? "+" : "") + std::to_string(pos) + ")";
  }
  s += " => " + outcome;
  return s;
}

std::string ExhaustiveResult::summary() const {
  std::string s = cfg.protocol.name();
  s += " nodes=" + std::to_string(cfg.n_nodes);
  s += " k=" + std::to_string(cfg.errors);
  s += " cases=" + std::to_string(cases);
  s += " | IMO=" + std::to_string(imo);
  s += " double-rx=" + std::to_string(double_rx);
  s += " total-loss=" + std::to_string(total_loss);
  if (timeouts) s += " TIMEOUTS=" + std::to_string(timeouts);
  s += violations() == 0 ? " => VERIFIED CONSISTENT" : " => COUNTEREXAMPLES";
  return s;
}

ExhaustiveResult run_exhaustive(const ExhaustiveConfig& cfg, int max_examples) {
  // Reference semantics: the model-checking engine with every reduction
  // disabled degenerates to the original single-threaded lexicographic
  // enumerator (tests pin this equivalence).
  ModelCheckConfig mc;
  mc.base = cfg;
  mc.jobs = 1;
  mc.dedup = false;
  mc.symmetry = false;
  mc.max_cases = 0;
  mc.max_examples = max_examples;
  ModelCheckResult r = run_model_check(mc);

  ExhaustiveResult res;
  res.cfg = r.cfg;
  res.cases = r.cases;
  res.imo = r.imo;
  res.double_rx = r.double_rx;
  res.total_loss = r.total_loss;
  res.timeouts = r.timeouts;
  res.examples = std::move(r.examples);
  return res;
}

}  // namespace mcan
