#include "scenario/exhaustive.hpp"

#include <functional>

#include "analysis/tagged.hpp"
#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"

namespace mcan {

int ExhaustiveConfig::window_hi() const {
  if (win_hi_rel != 0) return win_hi_rel;
  if (protocol.variant == Variant::MajorCan) return 3 * protocol.m + 5;
  return protocol.eof_bits() + 3;  // EOF + intermission
}

std::string Counterexample::to_string() const {
  std::string s = "flips:";
  for (const auto& [node, pos] : flips) {
    s += " (node " + std::to_string(node) + ", EOF" +
         (pos >= 0 ? "+" : "") + std::to_string(pos) + ")";
  }
  s += " => " + outcome;
  return s;
}

std::string ExhaustiveResult::summary() const {
  std::string s = cfg.protocol.name();
  s += " nodes=" + std::to_string(cfg.n_nodes);
  s += " k=" + std::to_string(cfg.errors);
  s += " cases=" + std::to_string(cases);
  s += " | IMO=" + std::to_string(imo);
  s += " double-rx=" + std::to_string(double_rx);
  s += " total-loss=" + std::to_string(total_loss);
  if (timeouts) s += " TIMEOUTS=" + std::to_string(timeouts);
  s += violations() == 0 ? " => VERIFIED CONSISTENT" : " => COUNTEREXAMPLES";
  return s;
}

namespace {

struct CaseOutcome {
  bool imo = false;
  bool dup = false;
  bool loss = false;
  bool timeout = false;
  std::string describe;
};

CaseOutcome run_case(const ExhaustiveConfig& cfg, const Frame& frame,
                     int eof_start,
                     const std::vector<std::pair<NodeId, int>>& flips) {
  Network net(cfg.n_nodes, cfg.protocol);
  ScriptedFaults inj;
  for (const auto& [node, pos] : flips) {
    inj.add(FaultTarget::at_time(node, static_cast<BitTime>(eof_start + pos)));
  }
  net.set_injector(inj);
  net.node(0).enqueue(frame);

  CaseOutcome out;
  if (!net.run_until_quiet(30000)) {
    out.timeout = true;
    out.describe = "TIMEOUT";
    return out;
  }

  const int tx_success =
      static_cast<int>(net.log().count(EventKind::TxSuccess, 0));
  bool any = false;
  bool all = true;
  std::string counts;
  for (int i = 1; i < cfg.n_nodes; ++i) {
    const auto c = static_cast<int>(net.deliveries(i).size());
    counts += (counts.empty() ? "" : " ") + std::to_string(c);
    if (c > 0) any = true;
    if (c == 0) all = false;
    if (c > 1) out.dup = true;
  }
  const bool sender_has = tx_success > 0;
  out.imo = (any || sender_has) && !all;
  out.loss = !any && sender_has;

  if (out.imo) {
    out.describe = "IMO: deliveries " + counts;
  } else if (out.dup) {
    out.describe = "double reception: deliveries " + counts;
  } else if (out.loss) {
    out.describe = "total loss (tx believed success)";
  }
  return out;
}

}  // namespace

ExhaustiveResult run_exhaustive(const ExhaustiveConfig& cfg, int max_examples) {
  ExhaustiveResult res;
  res.cfg = cfg;
  res.cfg.win_hi_rel = cfg.window_hi();

  const Frame frame = make_tagged_frame(0x100, MsgKind::Data, MessageKey{0, 1});
  const int eof_start =
      wire_length(frame, cfg.protocol.eof_bits()) - cfg.protocol.eof_bits();

  // The flip slot grid: (node, EOF-relative position).
  std::vector<std::pair<NodeId, int>> slots;
  for (int n = 0; n < cfg.n_nodes; ++n) {
    for (int pos = cfg.win_lo_rel; pos <= res.cfg.win_hi_rel; ++pos) {
      slots.emplace_back(static_cast<NodeId>(n), pos);
    }
  }

  // Enumerate k-combinations of slots recursively.
  std::vector<std::pair<NodeId, int>> chosen;
  std::function<void(std::size_t)> recurse = [&](std::size_t start) {
    if (static_cast<int>(chosen.size()) == cfg.errors) {
      ++res.cases;
      const CaseOutcome out = run_case(cfg, frame, eof_start, chosen);
      if (out.imo) ++res.imo;
      if (out.dup) ++res.double_rx;
      if (out.loss) ++res.total_loss;
      if (out.timeout) ++res.timeouts;
      if ((out.imo || out.dup || out.loss || out.timeout) &&
          static_cast<int>(res.examples.size()) < max_examples) {
        res.examples.push_back({chosen, out.describe});
      }
      return;
    }
    for (std::size_t i = start; i < slots.size(); ++i) {
      chosen.push_back(slots[i]);
      recurse(i + 1);
      chosen.pop_back();
    }
  };
  recurse(0);
  return res;
}

}  // namespace mcan
