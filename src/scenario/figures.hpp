// Scripted reproductions of the paper's figure scenarios.
//
// Every function builds a small bus (transmitter node 0, receiver set X,
// receiver set Y), injects exactly the disturbances the figure describes —
// addressed by frame-relative position, like the figure captions — runs the
// bus to quiescence and reports who accepted the frame how many times,
// whether the transmitter retransmitted, and a rendered ASCII timeline of
// the interesting window.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/protocol.hpp"
#include "fault/scripted.hpp"

namespace mcan {

struct ScenarioOutcome {
  std::string name;
  ProtocolParams protocol;
  int n_nodes = 0;
  NodeId tx_node = 0;

  std::vector<int> deliveries;  ///< per node: copies of the frame delivered
  int tx_success = 0;           ///< TxSuccess events at the transmitter
  int tx_attempts = 0;          ///< SofSent events at the transmitter
  bool tx_crashed = false;
  bool faults_all_fired = false;  ///< scenario script sanity
  std::string trace;              ///< rendered timeline
  std::vector<std::string> notes;

  /// Inconsistent message omission among receivers: some got it, some never.
  [[nodiscard]] bool imo() const;

  /// Any receiver delivered the frame more than once.
  [[nodiscard]] bool double_reception() const;

  /// Every receiver delivered exactly once.
  [[nodiscard]] bool consistent_single_delivery() const;

  [[nodiscard]] std::string summary() const;
};

/// Generic engine: one transmitter (node 0) sending one frame over
/// `n_nodes` nodes with scripted disturbances.  If
/// `crash_tx_before_retransmit` is set, a first pass locates the moment the
/// transmitter schedules its retransmission and a second pass crashes it
/// right after its error flag — the Fig. 1c transmitter failure.
[[nodiscard]] ScenarioOutcome run_eof_scenario(
    std::string name, const ProtocolParams& protocol, int n_nodes,
    std::vector<FaultTarget> faults, bool crash_tx_before_retransmit = false);

// --- the paper's figures ---
// Node roles in all of these: 0 = transmitter, X = {1, 2}, Y = {3, 4}
// (Fig. 5 uses X = {1}, Y = {2, 3} to stay within the m = 5 error budget).

/// Fig. 1a: X sees a dominant level in the *last* EOF bit; the last-bit rule
/// turns it into an overload condition and consistency survives.
[[nodiscard]] ScenarioOutcome run_fig1a(const ProtocolParams& p);

/// Fig. 1b: X sees a dominant level in the last-but-one EOF bit => X
/// rejects, transmitter retransmits, Y accepts twice (double reception).
[[nodiscard]] ScenarioOutcome run_fig1b(const ProtocolParams& p);

/// Fig. 1c: as 1b but the transmitter crashes before the retransmission =>
/// inconsistent message omission.
[[nodiscard]] ScenarioOutcome run_fig1c(const ProtocolParams& p);

/// Fig. 3a/3b: the paper's new two-disturbance scenario — X hit in the
/// last-but-one EOF bit *and* the transmitter's view of the last EOF bit
/// flipped so it cannot see the error flag.  Defeats CAN and MinorCAN.
[[nodiscard]] ScenarioOutcome run_fig3(const ProtocolParams& p);

/// Fig. 5: MajorCAN_m consistency under m errors (1 phantom at X, 2 on the
/// transmitter's view of the flag, 2 on X's sampling window).
[[nodiscard]] ScenarioOutcome run_fig5(int m = 5);

// --- Fig. 4: single-node behaviour probe ---

struct Fig4Row {
  std::string error_at;   ///< "CRC error" or "EOF bit k" (1-based, paper style)
  std::string flag;       ///< "6-bit error flag" / "extended error flag" / ...
  bool sampling = false;  ///< did the node run the majority vote
  std::string verdict;    ///< "accepted" / "rejected"
};

/// Probe a MajorCAN_m receiver with an error at each interesting position
/// and report its behaviour — the content of the paper's Fig. 4.
[[nodiscard]] std::vector<Fig4Row> run_fig4(int m = 5);

// --- additional protocol demonstrations ---

/// The CAN5 total-order violation: frame A is scheduled for retransmission
/// after a partial reception; frame B wins the arbitration first, so nodes
/// observe A,B,A vs. B,A.  Returns per-node delivery sequences as strings
/// plus the number of order inversions.
struct OrderScenarioOutcome {
  std::string name;
  ProtocolParams protocol;
  std::vector<std::string> per_node_order;  ///< e.g. "A B A"
  long long order_inversions = 0;
  int duplicate_deliveries = 0;
  std::string summary() const;
};
[[nodiscard]] OrderScenarioOutcome run_order_scenario(const ProtocolParams& p);

/// Probe the paper's first-sub-field sizing argument (§5): node 1 suffers a
/// CRC error (flag at EOF position 1) and node 2's view of the first m-1
/// flag bits is disturbed, delaying its detection to position m — the
/// worst case the m-bit first sub-field is sized for.  With the paper's
/// sizing the detection stays on the rejecting side and everyone rejects
/// consistently; with a narrower sub-field (first_subfield_override < m)
/// node 2 reads the flag as an acceptance notification and agreement
/// breaks.  Total error budget: 1 + (m-1) = m.
[[nodiscard]] ScenarioOutcome run_crc_delay_scenario(const ProtocolParams& p);

/// Find a body wire bit whose single view-flip produces a clean CRC error
/// at receiver node 1 (no stuff/form shortcut); used by scenario builders.
/// The search runs on `n_nodes` because the answer is topology-dependent:
/// a flip that desynchronises the destuffer can die at the (acked,
/// dominant) ACK slot on a multi-receiver bus but pass on a 2-node one.
[[nodiscard]] int find_crc_error_body_bit(const ProtocolParams& p,
                                          int n_nodes = 2);

/// The paper's introductory error-passive inconsistency: an error-passive
/// receiver signals a CRC error with a passive (all-recessive) flag nobody
/// sees; the transmitter never retransmits, so only that node misses the
/// frame.  With `switch_off_at_warning` the node disconnects instead and
/// consistency among connected nodes is preserved.
[[nodiscard]] ScenarioOutcome run_error_passive_scenario(bool switch_off_at_warning);

}  // namespace mcan
