// Incremental receiver-side parser for the stuffed frame body
// (SOF .. CRC sequence, including a possible trailing stuff bit).
//
// The controller feeds it one wire bit per bit time starting with SOF and it
// reports when the body is complete, whether the CRC matched, and any stuff
// error.  It is deliberately ignorant of everything after the CRC sequence —
// the fixed-form tail and the EOF end-game are the controller's (and the
// protocol variant's) business.
#pragma once

#include <cstdint>
#include <string>

#include "frame/crc15.hpp"
#include "frame/frame.hpp"
#include "frame/layout.hpp"
#include "frame/stuffing.hpp"

namespace mcan {

class RxParser {
 public:
  enum class Status {
    InBody,      ///< still consuming body bits
    BodyDone,    ///< final CRC bit (and trailing stuff bit, if any) consumed
    StuffError,  ///< six equal bits in the stuffed region
    FormError,   ///< unsupported fixed-form content (e.g. extended IDE)
  };

  RxParser() { reset(); }

  /// Feed the next wire bit; the first bit fed must be the (dominant) SOF.
  Status push(Level wire_bit);

  /// True iff push(wire_bit) would return InBody — i.e. consuming this bit
  /// is a silent parse step with no error and no body completion.  May be
  /// conservatively false (the final CRC bit).  Used by the fast kernel to
  /// advance grouped receivers through their shared shadow.
  [[nodiscard]] bool push_is_quiet(Level wire_bit) const;

  void reset();

  /// Valid once push() has returned BodyDone.
  [[nodiscard]] const Frame& frame() const { return frame_; }
  [[nodiscard]] bool crc_ok() const { return crc_received_ == crc_computed_; }
  [[nodiscard]] std::uint16_t crc_received() const { return crc_received_; }
  [[nodiscard]] std::uint16_t crc_computed() const { return crc_computed_; }

  /// Wire bits consumed so far (payload + stuff bits).
  [[nodiscard]] int bits_consumed() const { return wire_bits_; }

  /// True once the body is fully consumed.
  [[nodiscard]] bool done() const { return field_ == Field::Done; }

  /// Append every field that determines future parse behaviour to a
  /// model-checker state digest (includes the destuffer run and the
  /// partially assembled frame).
  void append_state(std::string& out) const;

 private:
  enum class Field : std::uint8_t {
    Sof,
    Id,        ///< 11 base identifier bits
    RtrOrSrr,  ///< RTR (standard) or SRR (extended) — decided by IDE
    Ide,
    ExtId,     ///< 18 extension identifier bits (2.0B)
    ExtRtr,    ///< RTR of an extended frame
    R1,        ///< reserved bit of an extended frame
    R0,
    Dlc,
    Data,
    Crc,
    TrailingStuff,
    Done,
  };

  Status consume_payload(Level bit);

  BitDestuffer destuff_;
  Crc15 crc_;
  Frame frame_;
  Field field_ = Field::Sof;
  int field_bits_ = 0;   ///< payload bits consumed within current field
  int data_bits_ = 0;    ///< total data bits expected (8 * effective dlc)
  std::uint32_t acc_ = 0;
  Level rtr_or_srr_ = Level::Recessive;
  std::uint16_t crc_received_ = 0;
  std::uint16_t crc_computed_ = 0;
  int wire_bits_ = 0;
};

}  // namespace mcan
