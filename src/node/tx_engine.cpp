#include "node/tx_engine.hpp"

#include "util/statekey.hpp"

namespace mcan {

void TxEngine::start(const Frame& f, int eof_bits) {
  frame_ = f;
  bits_ = encode_tx(f, eof_bits);
  idx_ = 0;
  eof_start_ = bits_.size() - static_cast<std::size_t>(eof_bits);
}

bool TxEngine::advance() {
  if (idx_ < bits_.size()) ++idx_;
  return idx_ >= bits_.size();
}

int TxEngine::stuffed_bits_left() const {
  std::size_t i = idx_;
  while (i < bits_.size() && bits_[i].phase < TxPhase::CrcDelim) ++i;
  return static_cast<int>(i - idx_);
}

int TxEngine::eof_index() const {
  if (idx_ >= eof_start_ && idx_ < bits_.size()) {
    return static_cast<int>(idx_ - eof_start_);
  }
  return -1;
}

void TxEngine::append_state(std::string& out) const {
  statekey::append_tag(out, 'T');
  frame_.append_state(out);
  statekey::append(out, idx_);
  statekey::append(out, eof_start_);
  statekey::append(out, bits_.size());
}

}  // namespace mcan
