// The CAN Fault Confinement Entity (FCE): transmit/receive error counters
// and the error-active / error-passive / bus-off state machine.
//
// The paper's premise (§2) is that the error-passive state must be avoided
// for data consistency: a passive node signals errors with recessive bits
// nobody is forced to see.  Most designs therefore switch the node off when
// a counter reaches the *error warning* limit (96) — "assuring that every
// node is either helping to achieve data consistency or disconnected".
// That recommendation is available here as `switch_off_at_warning`.
#pragma once

#include <cstdint>
#include <string>

namespace mcan {

struct FaultConfinementConfig {
  bool enabled = true;
  int warning_limit = 96;
  int passive_limit = 128;
  int busoff_limit = 256;
  /// Paper §2: disconnect at the warning limit instead of ever going
  /// error-passive.
  bool switch_off_at_warning = false;

  [[nodiscard]] bool operator==(const FaultConfinementConfig&) const = default;
};

enum class FcState : std::uint8_t {
  ErrorActive,
  ErrorPassive,
  BusOff,
  SwitchedOff,  ///< disconnected by the warning rule
};

[[nodiscard]] const char* fc_state_name(FcState s);

class FaultConfinement {
 public:
  FaultConfinement() = default;
  explicit FaultConfinement(FaultConfinementConfig cfg) : cfg_(cfg) {}

  /// Receiver detected an error (REC += 1).
  void on_rx_error();

  /// Receiver saw a dominant bit right after sending its error flag — a
  /// *primary* error (REC += 8).  This is the same MAC observation MinorCAN
  /// reuses for its acceptance rule.
  void on_rx_primary_error();

  /// Transmitter detected an error and sent an error flag (TEC += 8).
  void on_tx_error();

  /// Frame transmitted successfully (TEC -= 1).
  void on_tx_success();

  /// Frame received successfully (REC -= 1).
  void on_rx_success();

  [[nodiscard]] FcState state() const { return state_; }
  [[nodiscard]] int tec() const { return tec_; }
  [[nodiscard]] int rec() const { return rec_; }

  /// Error warning notification (either counter at/above the limit).
  [[nodiscard]] bool warning() const;

  [[nodiscard]] bool error_passive() const { return state_ == FcState::ErrorPassive; }
  [[nodiscard]] bool off() const {
    return state_ == FcState::BusOff || state_ == FcState::SwitchedOff;
  }

  /// Force counters (tests and scenario setup, e.g. "node is already
  /// error-passive" from the paper's introduction).
  void force_counters(int tec, int rec);

  /// Complete a bus-off recovery (ISO 11898: after 128 occurrences of 11
  /// consecutive recessive bits): counters reset, back to error-active.
  /// No-op unless currently bus-off.
  void reset_after_busoff();

  /// Append state and counters to a model-checker state digest.
  void append_state(std::string& out) const;

 private:
  void update_state();

  FaultConfinementConfig cfg_;
  FcState state_ = FcState::ErrorActive;
  int tec_ = 0;
  int rec_ = 0;
};

}  // namespace mcan
