#include "node/rx_parser.hpp"

#include <algorithm>

#include "util/statekey.hpp"

namespace mcan {

void RxParser::reset() {
  destuff_.reset();
  crc_.reset();
  frame_ = Frame{};
  field_ = Field::Sof;
  field_bits_ = 0;
  data_bits_ = 0;
  acc_ = 0;
  rtr_or_srr_ = Level::Recessive;
  crc_received_ = 0;
  crc_computed_ = 0;
  wire_bits_ = 0;
}

RxParser::Status RxParser::push(Level wire_bit) {
  ++wire_bits_;

  if (field_ == Field::TrailingStuff) {
    // One stuff bit owed after the final CRC bit; classify it so a corrupted
    // trailing stuff bit still raises a stuff error.
    if (destuff_.push(wire_bit) == BitDestuffer::Result::StuffError) {
      return Status::StuffError;
    }
    field_ = Field::Done;
    return Status::BodyDone;
  }

  switch (destuff_.push(wire_bit)) {
    case BitDestuffer::Result::StuffError:
      return Status::StuffError;
    case BitDestuffer::Result::StuffBit:
      return Status::InBody;
    case BitDestuffer::Result::Payload:
      return consume_payload(wire_bit);
  }
  return Status::InBody;
}

bool RxParser::push_is_quiet(Level wire_bit) const {
  // Mirrors push() without consuming: every branch that can return
  // StuffError, FormError or BodyDone must be classified non-quiet.
  if (field_ == Field::TrailingStuff || field_ == Field::Done) {
    return false;  // BodyDone or a trailing stuff error either way
  }
  if (destuff_.stuff_pending()) {
    // A stuff bit is owed: same level again is a stuff error, the
    // complement is silently discarded.
    return wire_bit != destuff_.run_level();
  }
  switch (field_) {
    case Field::Ide:
      // Recessive IDE after a dominant SRR is the one body form error.
      return !(is_recessive(wire_bit) && is_dominant(rtr_or_srr_));
    case Field::Crc:
      // The final CRC bit may complete the body (conservative: it may also
      // just owe a trailing stuff bit, but one trial bit per frame is
      // cheaper than reproducing the stuffing lookahead here).
      return field_bits_ + 1 < kCrcBits;
    default:
      return true;
  }
}

RxParser::Status RxParser::consume_payload(Level bit) {
  // CRC covers SOF through the end of the data field.
  if (field_ != Field::Crc) crc_.feed(bit);

  switch (field_) {
    case Field::Sof:
      // The controller only starts us on a dominant bit, so no check needed.
      field_ = Field::Id;
      field_bits_ = 0;
      acc_ = 0;
      return Status::InBody;

    case Field::Id:
      acc_ = (acc_ << 1) | (logical(bit) ? 1u : 0u);
      if (++field_bits_ == kIdBits) {
        frame_.id = acc_;
        field_ = Field::RtrOrSrr;
      }
      return Status::InBody;

    case Field::RtrOrSrr:
      // Standard RTR or extended SRR; the next bit (IDE) disambiguates.
      rtr_or_srr_ = bit;
      field_ = Field::Ide;
      return Status::InBody;

    case Field::Ide:
      if (is_dominant(bit)) {
        // Standard (2.0A) frame: the previous bit was its RTR.
        frame_.extended = false;
        frame_.remote = is_recessive(rtr_or_srr_);
        field_ = Field::R0;
        return Status::InBody;
      }
      // Extended (2.0B) frame: the previous bit was the SRR, which 2.0B
      // requires to be recessive.
      if (is_dominant(rtr_or_srr_)) return Status::FormError;
      frame_.extended = true;
      field_ = Field::ExtId;
      field_bits_ = 0;
      acc_ = 0;
      return Status::InBody;

    case Field::ExtId:
      acc_ = (acc_ << 1) | (logical(bit) ? 1u : 0u);
      if (++field_bits_ == kExtIdBits) {
        frame_.id = (frame_.id << kExtIdBits) | acc_;
        field_ = Field::ExtRtr;
      }
      return Status::InBody;

    case Field::ExtRtr:
      frame_.remote = is_recessive(bit);
      field_ = Field::R1;
      return Status::InBody;

    case Field::R1:
      // Reserved bit: transmitted dominant, accepted either way (ISO 11898).
      field_ = Field::R0;
      return Status::InBody;

    case Field::R0:
      field_ = Field::Dlc;
      field_bits_ = 0;
      acc_ = 0;
      return Status::InBody;

    case Field::Dlc: {
      acc_ = (acc_ << 1) | (logical(bit) ? 1u : 0u);
      if (++field_bits_ == kDlcBits) {
        frame_.dlc = static_cast<std::uint8_t>(acc_);
        // DLC values 9..15 mean 8 data bytes on the wire (ISO 11898).
        int effective = frame_.remote ? 0 : std::min<int>(frame_.dlc, kMaxDataBytes);
        data_bits_ = effective * 8;
        field_bits_ = 0;
        acc_ = 0;
        field_ = data_bits_ > 0 ? Field::Data : Field::Crc;
      }
      return Status::InBody;
    }

    case Field::Data:
      acc_ = (acc_ << 1) | (logical(bit) ? 1u : 0u);
      ++field_bits_;
      if (field_bits_ % 8 == 0) {
        frame_.data[static_cast<std::size_t>(field_bits_ / 8 - 1)] =
            static_cast<std::uint8_t>(acc_ & 0xff);
        acc_ = 0;
      }
      if (field_bits_ == data_bits_) {
        crc_computed_ = crc_.value();
        field_ = Field::Crc;
        field_bits_ = 0;
        acc_ = 0;
      }
      return Status::InBody;

    case Field::Crc:
      if (field_bits_ == 0 && data_bits_ == 0) {
        // No data field: CRC snapshot happens on entry instead.
        crc_computed_ = crc_.value();
      }
      acc_ = (acc_ << 1) | (logical(bit) ? 1u : 0u);
      if (++field_bits_ == kCrcBits) {
        crc_received_ = static_cast<std::uint16_t>(acc_);
        if (destuff_.stuff_pending()) {
          field_ = Field::TrailingStuff;
          return Status::InBody;
        }
        field_ = Field::Done;
        return Status::BodyDone;
      }
      return Status::InBody;

    case Field::TrailingStuff:
    case Field::Done:
      break;
  }
  return Status::InBody;
}

void RxParser::append_state(std::string& out) const {
  statekey::append_tag(out, 'R');
  statekey::append(out, destuff_.run_level());
  statekey::append(out, destuff_.run_length());
  statekey::append(out, crc_.value());
  frame_.append_state(out);
  statekey::append(out, field_);
  statekey::append(out, field_bits_);
  statekey::append(out, data_bits_);
  statekey::append(out, acc_);
  statekey::append(out, rtr_or_srr_);
  statekey::append(out, crc_received_);
  statekey::append(out, crc_computed_);
  statekey::append(out, wire_bits_);
}

}  // namespace mcan
