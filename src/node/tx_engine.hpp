// Transmit-side bit pump.
//
// Wraps the encoded wire bitstream of one frame and tracks the cursor as the
// controller pushes it onto the bus.  The controller consults the current
// phase to pick error semantics (arbitration loss vs. bit error vs. ACK).
#pragma once

#include <string>
#include <vector>

#include "frame/encoder.hpp"

namespace mcan {

class TxEngine {
 public:
  /// Prepare transmission of `f` with a protocol-specific EOF length.
  void start(const Frame& f, int eof_bits);

  [[nodiscard]] bool in_progress() const { return idx_ < bits_.size(); }

  /// The bit to put on the wire this bit time.
  [[nodiscard]] const TxBit& current() const { return bits_[idx_]; }

  /// Advance past the current bit; returns true when the stream is finished.
  bool advance();

  /// Cursor position within the wire stream (0-based).
  [[nodiscard]] int position() const { return static_cast<int>(idx_); }

  /// 0-based index within the EOF field if the cursor is there, else -1.
  [[nodiscard]] int eof_index() const;

  /// Cursor position relative to the first EOF bit (negative inside the
  /// body/tail).  Unlike receivers, the transmitter knows this exactly at
  /// every bit — which MajorCAN uses to time its end-game suppression.
  [[nodiscard]] int eof_relative() const {
    return static_cast<int>(idx_) - static_cast<int>(eof_start_);
  }

  [[nodiscard]] const Frame& frame() const { return frame_; }

  /// Contiguous wire bits from the cursor (inclusive) still inside the
  /// stuffed region (SOF .. CRC sequence).  The fast kernel may replay up
  /// to this many bits word-batched: within the span a clean transmitter
  /// stays in the body (no ACK, no EOF end-game) and the stream is
  /// well-formed by construction.
  [[nodiscard]] int stuffed_bits_left() const;

  /// Level of the wire bit `offset` positions past the cursor (bounds are
  /// the caller's contract; stuffed_bits_left() is the natural cap).
  [[nodiscard]] Level level_at(int offset) const {
    return bits_[idx_ + static_cast<std::size_t>(offset)].level;
  }

  void abort() { idx_ = bits_.size(); }

  /// Append every field that determines future transmit behaviour to a
  /// model-checker state digest.  The bitstream content itself is a pure
  /// function of the started frame, so (cursor, stream length, EOF anchor)
  /// plus the frame identity capture it exactly.
  void append_state(std::string& out) const;

 private:
  Frame frame_;
  std::vector<TxBit> bits_;
  std::size_t idx_ = 0;
  std::size_t eof_start_ = 0;
};

}  // namespace mcan
