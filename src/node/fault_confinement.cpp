#include "node/fault_confinement.hpp"

#include <algorithm>

#include "util/statekey.hpp"

namespace mcan {

const char* fc_state_name(FcState s) {
  switch (s) {
    case FcState::ErrorActive: return "error-active";
    case FcState::ErrorPassive: return "error-passive";
    case FcState::BusOff: return "bus-off";
    case FcState::SwitchedOff: return "switched-off";
  }
  return "?";
}

void FaultConfinement::on_rx_error() {
  if (!cfg_.enabled || off()) return;
  rec_ += 1;
  update_state();
}

void FaultConfinement::on_rx_primary_error() {
  if (!cfg_.enabled || off()) return;
  rec_ += 8;
  update_state();
}

void FaultConfinement::on_tx_error() {
  if (!cfg_.enabled || off()) return;
  tec_ += 8;
  update_state();
}

void FaultConfinement::on_tx_success() {
  if (!cfg_.enabled || off()) return;
  tec_ = std::max(0, tec_ - 1);
  update_state();
}

void FaultConfinement::on_rx_success() {
  if (!cfg_.enabled || off()) return;
  // ISO 11898: if REC was above 127, set it to a value between 119 and 127.
  rec_ = rec_ > 127 ? 119 : std::max(0, rec_ - 1);
  update_state();
}

bool FaultConfinement::warning() const {
  return cfg_.enabled &&
         (tec_ >= cfg_.warning_limit || rec_ >= cfg_.warning_limit);
}

void FaultConfinement::reset_after_busoff() {
  if (state_ != FcState::BusOff) return;
  tec_ = 0;
  rec_ = 0;
  state_ = FcState::ErrorActive;
}

void FaultConfinement::force_counters(int tec, int rec) {
  tec_ = tec;
  rec_ = rec;
  update_state();
}

void FaultConfinement::update_state() {
  if (!cfg_.enabled || off()) return;
  if (cfg_.switch_off_at_warning && warning()) {
    state_ = FcState::SwitchedOff;
    return;
  }
  if (tec_ >= cfg_.busoff_limit) {
    state_ = FcState::BusOff;
    return;
  }
  if (tec_ >= cfg_.passive_limit || rec_ >= cfg_.passive_limit) {
    state_ = FcState::ErrorPassive;
  } else {
    state_ = FcState::ErrorActive;
  }
}

void FaultConfinement::append_state(std::string& out) const {
  statekey::append_tag(out, 'F');
  statekey::append(out, state_);
  statekey::append(out, tec_);
  statekey::append(out, rec_);
}

}  // namespace mcan
