// One consensus replica: leaderless replicated state machine over an
// atomic-broadcast link.
//
// The link's total order does the sequencing a leader would: every replica
// appends commands in delivery order, votes for each append, and commits
// an entry once k distinct replicas have voted for it.  A replica observes
// its *own* messages through the same delivery path as everyone else's
// (direct link: at tx_done, the wire's sequencing point), so the append
// order is the wire order at every node — as long as the link really
// delivers atomically.  Standard CAN's inconsistent message omission
// breaks exactly this assumption; MajorCAN inside its fault envelope
// restores it, and the journals this replica keeps let the property
// checker tell the two apart.
//
// Crash/recovery: a host crash wipes all volatile state (log, machine,
// votes, membership view).  Only the incarnation epoch survives — stable
// storage — and is bumped on recovery.  The recovered node broadcasts a
// Join, buffers traffic delivered after its own Join echo (total order
// makes everything before the echo part of the coordinator's snapshot),
// and resumes from the snapshot a deterministically-chosen coordinator
// ships back: installed state at base, plus the appended-but-unapplied
// log tail with the votes seen so far.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "rsm/frag.hpp"
#include "rsm/log.hpp"
#include "rsm/properties.hpp"

namespace mcan {

struct ReplicaConfig {
  NodeId id = 0;
  int n_nodes = 3;
  int k = 2;                         ///< commit threshold (distinct voters)
  std::uint32_t can_id_base = 0x100; ///< segment id = base + node id
};

class RsmReplica {
 public:
  using SendFn = std::function<void(const Frame&)>;

  RsmReplica(ReplicaConfig cfg, SendFn send);

  /// Propose a client command (appended when its segments deliver back).
  /// Refused (returns false) while crashed or awaiting a snapshot.
  bool propose(const std::vector<std::uint8_t>& payload, BitTime now);

  /// Feed one delivered frame (own frames included — they carry this
  /// replica's position in the total order).
  void on_frame(const Frame& f, BitTime t);

  /// Host crash: volatile state is lost, the journal (observer-side) and
  /// the incarnation epoch (stable storage) survive.
  void crash(BitTime now);

  /// Restart after a crash: bump the epoch, broadcast Join, buffer until
  /// a coordinator ships the snapshot.
  void recover(BitTime now);

  [[nodiscard]] const ReplicaConfig& config() const { return cfg_; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// True between recover() and snapshot install.
  [[nodiscard]] bool awaiting_snapshot() const { return awaiting_; }
  [[nodiscard]] std::uint8_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint8_t members() const { return members_; }
  [[nodiscard]] std::uint8_t term() const { return term_; }
  [[nodiscard]] const RsmLog& log() const { return log_; }
  [[nodiscard]] const RegisterMachine& machine() const { return machine_; }
  [[nodiscard]] const RsmJournal& journal() const { return journal_; }
  [[nodiscard]] const FragStats& frag_stats() const {
    return reassembler_.stats();
  }

 private:
  void broadcast(RsmMsgType type, const std::vector<std::uint8_t>& payload);
  void handle_message(const RsmMessage& m);
  void handle_cmd(const RsmMessage& m);
  void handle_vote(const RsmMessage& m);
  void handle_join(const RsmMessage& m);
  void handle_snap(const RsmMessage& m);
  void append_and_vote(LogEntry e, BitTime t);
  void send_vote(const CommandId& id);
  void try_commit_apply(BitTime t);
  void applied_join(const LogEntry& e, long long index, BitTime t);
  void committed_join(const LogEntry& e, long long index, BitTime t);
  [[nodiscard]] RsmSnapshot build_snapshot(NodeId joiner,
                                           std::uint8_t joiner_epoch) const;

  ReplicaConfig cfg_;
  SendFn send_;

  Reassembler reassembler_;
  RsmLog log_;
  RegisterMachine machine_;
  std::map<CommandId, std::set<NodeId>> votes_;
  std::uint8_t members_ = 0;
  std::uint8_t term_ = 0;

  std::uint8_t epoch_ = 0;        ///< incarnation (stable storage)
  std::uint16_t seq_counter_ = 0; ///< 12-bit wire sequence counter

  bool crashed_ = false;
  bool awaiting_ = false;
  bool join_echoed_ = false;      ///< own Join seen back in the total order
  std::vector<RsmMessage> buffered_;

  RsmJournal journal_;
};

}  // namespace mcan
