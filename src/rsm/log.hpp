// The replicated log and its deterministic state machine.
//
// Atomic broadcast gives every correct node the same delivery order, so
// the log needs no leader to sequence it: each replica appends commands in
// delivery order and the logs match by construction — exactly while the
// link really is an atomic broadcast.  Commit is k-threshold voting
// (the roj_consensus property set): an entry is committed once k distinct
// replicas have voted for it, and applied strictly in log order.
//
// Indices are *absolute*: a recovered replica whose log starts from a
// snapshot at base B appends its first live entry at index B, so the
// property checker can compare entries across replicas with different
// histories position-by-position.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rsm/frag.hpp"

namespace mcan {

/// Identity of one log entry: the proposer and the wire sequence of its
/// command message (epoch in the top nibble disambiguates incarnations).
struct CommandId {
  NodeId source = 0;
  std::uint16_t seq = 0;

  [[nodiscard]] bool operator==(const CommandId&) const = default;
  [[nodiscard]] auto operator<=>(const CommandId&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "c(" + std::to_string(source) + "," + std::to_string(seq) + ")";
  }
};

struct LogEntry {
  CommandId id;
  std::vector<std::uint8_t> payload;
  bool is_join = false;       ///< membership entry (joiner re-entering)
  NodeId joiner = 0;
  std::uint8_t joiner_epoch = 0;

  /// Content digest (id + payload + kind), for log-matching checks.
  [[nodiscard]] std::uint64_t digest() const;
};

/// FNV-1a accumulation helper shared by entry and state digests.
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, const void* data,
                                  std::size_t n);
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

/// The log proper: entries at absolute indices [base, base + size).
class RsmLog {
 public:
  /// Absolute index of the first held entry (snapshot boundary).
  [[nodiscard]] long long base() const { return base_; }
  /// Absolute index one past the last held entry.
  [[nodiscard]] long long end() const {
    return base_ + static_cast<long long>(entries_.size());
  }
  [[nodiscard]] bool holds(long long index) const {
    return index >= base_ && index < end();
  }
  [[nodiscard]] const LogEntry& at(long long index) const {
    return entries_.at(static_cast<std::size_t>(index - base_));
  }
  [[nodiscard]] bool committed(long long index) const {
    return committed_.at(static_cast<std::size_t>(index - base_));
  }

  /// Append in delivery order; returns the entry's absolute index.
  long long append(LogEntry e);

  /// Mark an entry committed (k votes reached).
  void mark_committed(long long index) {
    committed_.at(static_cast<std::size_t>(index - base_)) = true;
  }

  /// True iff some entry carries `id` (duplicate-append guard).
  [[nodiscard]] bool contains(const CommandId& id) const {
    return ids_.contains(id);
  }
  [[nodiscard]] std::optional<long long> index_of(const CommandId& id) const;

  /// Reset to a snapshot boundary: everything below `base` lives only in
  /// the installed state.
  void reset_to_base(long long base);

 private:
  long long base_ = 0;
  std::vector<LogEntry> entries_;
  std::vector<bool> committed_;
  std::set<CommandId> ids_;
};

inline constexpr int kRsmRegisters = 8;

/// The deterministic state machine: eight registers under "reg += delta"
/// commands.  payload[0] % 8 selects the register; the remaining bytes are
/// a little-endian signed delta (missing bytes = 0).  Join entries change
/// no register but still advance the chained digest, so replicas that
/// applied a membership change at different positions diverge detectably.
class RegisterMachine {
 public:
  /// Apply the entry at absolute index `index` (must equal applied()).
  void apply(const LogEntry& e, long long index);

  [[nodiscard]] long long applied() const { return applied_; }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  [[nodiscard]] std::int64_t reg(int i) const {
    return regs_.at(static_cast<std::size_t>(i));
  }

  /// Overwrite from a snapshot.
  void install(const std::array<std::int64_t, kRsmRegisters>& regs,
               long long applied, std::uint64_t digest);
  [[nodiscard]] const std::array<std::int64_t, kRsmRegisters>& regs() const {
    return regs_;
  }

 private:
  std::array<std::int64_t, kRsmRegisters> regs_{};
  long long applied_ = 0;
  std::uint64_t digest_ = kFnvOffset;
};

/// Snapshot transferred to a joiner: the applied state plus the unapplied
/// log tail with the votes the coordinator has seen for it, so the joiner
/// resumes with complete commit bookkeeping (votes broadcast after the
/// snapshot point reach it live; votes before it are in the voter sets).
struct RsmSnapshot {
  NodeId joiner = 0;
  std::uint8_t joiner_epoch = 0;
  std::uint8_t term = 0;
  std::uint8_t members = 0;  ///< membership bitmap (node ids 0..7)
  long long base = 0;        ///< absolute applied count = first live index
  std::array<std::int64_t, kRsmRegisters> regs{};
  std::uint64_t digest = kFnvOffset;

  struct TailEntry {
    LogEntry entry;
    std::uint8_t voters = 0;  ///< voter bitmap (node ids 0..7)
  };
  std::vector<TailEntry> tail;
  bool truncated = false;  ///< tail cut to fit kRsmMaxPayload

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<RsmSnapshot> parse(
      const std::vector<std::uint8_t>& bytes);
};

}  // namespace mcan
