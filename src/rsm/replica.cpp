#include "rsm/replica.hpp"

#include <algorithm>
#include <utility>

namespace mcan {

namespace {

[[nodiscard]] std::uint8_t full_membership(int n_nodes) {
  std::uint8_t bits = 0;
  for (int i = 0; i < n_nodes && i < 8; ++i) {
    bits = static_cast<std::uint8_t>(bits | (1u << i));
  }
  return bits;
}

[[nodiscard]] std::uint16_t term_key_of(NodeId joiner, std::uint8_t epoch) {
  return static_cast<std::uint16_t>((joiner << 8) | epoch);
}

}  // namespace

RsmReplica::RsmReplica(ReplicaConfig cfg, SendFn send)
    : cfg_(cfg), send_(std::move(send)),
      members_(full_membership(cfg.n_nodes)) {}

void RsmReplica::broadcast(RsmMsgType type,
                           const std::vector<std::uint8_t>& payload) {
  const std::uint32_t can_id = cfg_.can_id_base + cfg_.id;
  for (const Frame& f :
       split_message(type, cfg_.id, epoch_, seq_counter_, payload, can_id)) {
    send_(f);
  }
}

bool RsmReplica::propose(const std::vector<std::uint8_t>& payload,
                         BitTime now) {
  if (crashed_ || awaiting_) return false;
  // The command's identity is the wire sequence its first segment will
  // carry — known before the split because the counter is ours.
  const std::uint16_t seq = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(epoch_ & 0x0F) << 12) |
      (seq_counter_ & 0x0FFF));
  journal_.proposals.push_back({CommandId{cfg_.id, seq}, now});
  broadcast(RsmMsgType::Cmd, payload);
  return true;
}

void RsmReplica::on_frame(const Frame& f, BitTime t) {
  if (crashed_) return;
  if (auto m = reassembler_.on_frame(f, t)) handle_message(*m);
}

void RsmReplica::handle_message(const RsmMessage& m) {
  // Own Join echo: our join reached the wire.  Everything buffered before
  // this point sits below the join entry in the total order, so it is
  // covered by the snapshot prefix or tail — replaying it would duplicate
  // history.  Start collecting only what comes after.
  if (m.type == RsmMsgType::Join && m.source == cfg_.id) {
    if (awaiting_ && m.epoch == epoch_) {
      join_echoed_ = true;
      buffered_.clear();
      // Vote for our own join entry: with k = n it cannot commit
      // otherwise, since only the n-1 established members append it.
      send_vote(CommandId{cfg_.id, m.seq});
    }
    return;
  }
  if (awaiting_) {
    if (m.type == RsmMsgType::Snap) {
      handle_snap(m);
    } else {
      if (join_echoed_) buffered_.push_back(m);
    }
    return;
  }
  switch (m.type) {
    case RsmMsgType::Cmd: handle_cmd(m); break;
    case RsmMsgType::Vote: handle_vote(m); break;
    case RsmMsgType::Join: handle_join(m); break;
    case RsmMsgType::Snap: break;  // addressed to a joiner, not us
  }
}

void RsmReplica::append_and_vote(LogEntry e, BitTime t) {
  const CommandId id = e.id;
  const std::uint64_t digest = e.digest();
  const long long index = log_.append(std::move(e));
  journal_.appends.push_back({index, id, digest, t});
  send_vote(id);
  try_commit_apply(t);
}

void RsmReplica::send_vote(const CommandId& id) {
  broadcast(RsmMsgType::Vote,
            {static_cast<std::uint8_t>(id.source),
             static_cast<std::uint8_t>(id.seq >> 8),
             static_cast<std::uint8_t>(id.seq & 0xFF)});
}

void RsmReplica::handle_cmd(const RsmMessage& m) {
  const CommandId id{m.source, m.seq};
  if (log_.contains(id)) return;  // replayed duplicate
  LogEntry e;
  e.id = id;
  e.payload = m.payload;
  append_and_vote(std::move(e), m.t);
}

void RsmReplica::handle_vote(const RsmMessage& m) {
  if (m.payload.size() < 3) return;
  const CommandId id{
      static_cast<NodeId>(m.payload[0]),
      static_cast<std::uint16_t>((m.payload[1] << 8) | m.payload[2])};
  votes_[id].insert(m.source);
  try_commit_apply(m.t);
}

void RsmReplica::handle_join(const RsmMessage& m) {
  const CommandId id{m.source, m.seq};
  if (log_.contains(id)) return;
  LogEntry e;
  e.id = id;
  e.is_join = true;
  e.joiner = m.source;
  e.joiner_epoch = m.epoch;
  append_and_vote(std::move(e), m.t);
}

void RsmReplica::try_commit_apply(BitTime t) {
  for (long long i = log_.base(); i < log_.end(); ++i) {
    if (log_.committed(i)) continue;
    const auto it = votes_.find(log_.at(i).id);
    if (it != votes_.end() &&
        static_cast<int>(it->second.size()) >= cfg_.k) {
      log_.mark_committed(i);
      journal_.commits.push_back({i, log_.at(i).id, t});
      // Ship snapshots at *commit* time, not apply time: an uncommitted
      // entry below the join (proposed while the joiner was down and one
      // vote short of k) would otherwise block the apply forever — the
      // joiner cannot supply that vote until it installs, and the
      // snapshot would wait on the apply.  The tail carries the
      // uncommitted suffix with vote bitmaps, so the joiner's post-install
      // votes break the cycle.
      if (log_.at(i).is_join) committed_join(log_.at(i), i, t);
    }
  }
  while (log_.holds(machine_.applied()) &&
         log_.committed(machine_.applied())) {
    const long long index = machine_.applied();
    const LogEntry& e = log_.at(index);
    machine_.apply(e, index);
    journal_.applies.push_back({index, machine_.digest(), t});
    if (e.is_join) applied_join(e, index, t);
  }
}

void RsmReplica::applied_join(const LogEntry& e, long long index, BitTime t) {
  (void)index;
  (void)t;
  members_ = static_cast<std::uint8_t>(members_ | (1u << (e.joiner & 7)));
  ++term_;
}

void RsmReplica::committed_join(const LogEntry& e, long long index, BitTime t) {
  if (e.joiner == cfg_.id) return;  // our own join: we install, not serve
  // Deterministic coordinator: the eligible member at position (join
  // index mod eligible count) ships the snapshot.  The joiner is not
  // eligible — it has nothing to serve itself.  Replicas whose log
  // positions diverged (inconsistent omission upstream) elect different
  // coordinators for the same term — the election-safety checker's
  // falsification handle.
  std::vector<NodeId> member_list;
  for (int i = 0; i < 8; ++i) {
    if ((members_ & (1u << i)) && static_cast<NodeId>(i) != e.joiner) {
      member_list.push_back(static_cast<NodeId>(i));
    }
  }
  const NodeId coordinator = member_list[static_cast<std::size_t>(
      index % static_cast<long long>(member_list.size()))];
  if (coordinator != cfg_.id) return;
  journal_.claims.push_back({term_key_of(e.joiner, e.joiner_epoch), cfg_.id, t});
  const RsmSnapshot snap = build_snapshot(e.joiner, e.joiner_epoch);
  broadcast(RsmMsgType::Snap, snap.serialize());
}

RsmSnapshot RsmReplica::build_snapshot(NodeId joiner,
                                       std::uint8_t joiner_epoch) const {
  RsmSnapshot s;
  s.joiner = joiner;
  s.joiner_epoch = joiner_epoch;
  s.term = term_;
  s.members = members_;
  s.base = machine_.applied();
  s.regs = machine_.regs();
  s.digest = machine_.digest();
  for (long long i = s.base; i < log_.end(); ++i) {
    RsmSnapshot::TailEntry te;
    te.entry = log_.at(i);
    if (const auto it = votes_.find(te.entry.id); it != votes_.end()) {
      for (const NodeId v : it->second) {
        te.voters = static_cast<std::uint8_t>(te.voters | (1u << (v & 7)));
      }
    }
    s.tail.push_back(std::move(te));
  }
  return s;
}

void RsmReplica::handle_snap(const RsmMessage& m) {
  const auto snap = RsmSnapshot::parse(m.payload);
  if (!snap || snap->joiner != cfg_.id || snap->joiner_epoch != epoch_) {
    return;  // not for this incarnation
  }
  log_.reset_to_base(snap->base);
  machine_.install(snap->regs, snap->base, snap->digest);
  members_ = snap->members;
  term_ = snap->term;
  votes_.clear();
  for (const RsmSnapshot::TailEntry& te : snap->tail) {
    const CommandId id = te.entry.id;
    const std::uint64_t digest = te.entry.digest();
    const long long index = log_.append(te.entry);
    journal_.appends.push_back({index, id, digest, m.t});
    for (int v = 0; v < 8; ++v) {
      if (te.voters & (1u << v)) votes_[id].insert(static_cast<NodeId>(v));
    }
  }
  if (snap->base > 0) {
    // The installed state stands in for having applied [0, base): journal
    // it at the last covered index so state-machine safety can compare it
    // against replicas that applied that prefix live.
    journal_.applies.push_back({snap->base - 1, snap->digest, m.t});
  }
  journal_.installs.push_back(
      {term_key_of(cfg_.id, epoch_), m.source, snap->base, m.t});
  awaiting_ = false;
  join_echoed_ = false;
  // Vote for the tail we just adopted — we were not around to vote at
  // append time — then replay what arrived after our Join echo.  Replays
  // dedup against the log (commands already in the tail) and the vote
  // sets (idempotent inserts).
  for (long long i = log_.base(); i < log_.end(); ++i) {
    send_vote(log_.at(i).id);
  }
  const std::vector<RsmMessage> replay = std::move(buffered_);
  buffered_.clear();
  for (const RsmMessage& r : replay) handle_message(r);
  try_commit_apply(m.t);
}

void RsmReplica::crash(BitTime now) {
  (void)now;
  crashed_ = true;
  journal_.host_crashed = true;
  log_.reset_to_base(0);
  machine_ = RegisterMachine{};
  votes_.clear();
  buffered_.clear();
  members_ = full_membership(cfg_.n_nodes);
  term_ = 0;
  awaiting_ = false;
  join_echoed_ = false;
  reassembler_.reset();
}

void RsmReplica::recover(BitTime now) {
  (void)now;
  if (!crashed_) return;
  crashed_ = false;
  journal_.host_recovered = true;
  epoch_ = static_cast<std::uint8_t>((epoch_ + 1) & 0x0F);
  seq_counter_ = 0;
  awaiting_ = true;
  join_echoed_ = false;
  broadcast(RsmMsgType::Join, {});
}

}  // namespace mcan
