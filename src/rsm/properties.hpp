// Consensus property checking over per-replica journals.
//
// Every replica journals what it did — appends, commits, applies,
// coordinator claims, snapshot installs, proposals — and the checker
// evaluates the roj_consensus property set over the collected journals:
//
//   * election safety     — at most one coordinator claim per term;
//   * log matching        — replicas holding an entry at the same absolute
//                           index hold the same entry;
//   * state-machine safety— replicas that applied the entry at the same
//                           absolute index have equal state digests;
//   * liveness (envelope) — every command proposed by a never-crashed node
//                           commits at every participating node; only
//                           asserted when the run stayed inside the
//                           protocol's fault envelope and quiesced.
//
// "Participating" includes a crash/recovered replica from its snapshot
// install onward: crash-recovery is part of the model, and safety is
// exactly what snapshot transfer must preserve.  A node whose *controller*
// crashed (fail-silent, .scn `crash`) is excluded entirely.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rsm/log.hpp"

namespace mcan {

struct RsmAppendEvent {
  long long index = 0;
  CommandId id;
  std::uint64_t digest = 0;  ///< entry content digest
  BitTime t = 0;
};

struct RsmCommitEvent {
  long long index = 0;
  CommandId id;
  BitTime t = 0;
};

struct RsmApplyEvent {
  long long index = 0;           ///< absolute index of the applied entry
  std::uint64_t state_digest = 0;  ///< machine digest after applying it
  BitTime t = 0;
};

struct RsmClaimEvent {
  std::uint16_t term_key = 0;  ///< (joiner << 8) | joiner_epoch
  NodeId claimant = 0;
  BitTime t = 0;
};

struct RsmInstallEvent {
  std::uint16_t term_key = 0;
  NodeId from = 0;  ///< the coordinator that shipped the snapshot
  long long base = 0;
  BitTime t = 0;
};

struct RsmProposeEvent {
  CommandId id;
  BitTime t = 0;
};

/// Everything one replica's run produced, as the checker sees it.
struct RsmJournal {
  std::vector<RsmAppendEvent> appends;
  std::vector<RsmCommitEvent> commits;
  std::vector<RsmApplyEvent> applies;
  std::vector<RsmClaimEvent> claims;
  std::vector<RsmInstallEvent> installs;
  std::vector<RsmProposeEvent> proposals;
  bool host_crashed = false;   ///< the workload crashed this host
  bool host_recovered = false; ///< ... and later restarted it
};

/// What the checker needs to know about the run besides the journals.
struct RsmCheckContext {
  /// Nodes whose controller fail-silenced (.scn crash) — out of the model.
  std::set<NodeId> controller_crashed;
  /// Assert liveness (run quiesced inside the fault envelope).
  bool check_liveness = false;
  /// A recovery was scheduled, so a snapshot install must have happened.
  bool expect_install = false;
};

struct RsmReport {
  int participating = 0;
  long long proposals = 0;
  long long commits = 0;        ///< total commit events across replicas
  long long installs = 0;       ///< snapshot transfers completed
  int election_violations = 0;
  long long log_mismatches = 0;
  long long state_mismatches = 0;
  int liveness_violations = 0;
  int stalled_recoveries = 0;   ///< expected install that never happened
  bool liveness_checked = false;
  std::string detail;           ///< first few violations, human-readable

  [[nodiscard]] bool clean() const {
    return election_violations == 0 && log_mismatches == 0 &&
           state_mismatches == 0 && liveness_violations == 0 &&
           stalled_recoveries == 0;
  }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] RsmReport check_rsm(
    const std::map<NodeId, RsmJournal>& journals, const RsmCheckContext& ctx);

}  // namespace mcan
