#include "rsm/cluster.hpp"

#include <algorithm>

namespace mcan {

const char* rsm_link_name(RsmLink link) {
  switch (link) {
    case RsmLink::Direct: return "direct";
    case RsmLink::Edcan: return "edcan";
    case RsmLink::Relcan: return "relcan";
    case RsmLink::Totcan: return "totcan";
  }
  return "?";
}

namespace {

[[nodiscard]] HigherKind to_higher_kind(RsmLink link) {
  switch (link) {
    case RsmLink::Edcan: return HigherKind::Edcan;
    case RsmLink::Relcan: return HigherKind::Relcan;
    case RsmLink::Totcan: return HigherKind::Totcan;
    case RsmLink::Direct: break;
  }
  return HigherKind::Edcan;
}

}  // namespace

RsmCluster::RsmCluster(const RsmClusterConfig& cfg) : cfg_(cfg) {
  replicas_.reserve(static_cast<std::size_t>(cfg.n_nodes));
  if (cfg.link == RsmLink::Direct) {
    direct_ = std::make_unique<Network>(cfg.n_nodes, cfg.protocol);
    if (cfg.trace) direct_->enable_trace();
    for (int i = 0; i < cfg.n_nodes; ++i) {
      tx_journals_.emplace(static_cast<NodeId>(i), DeliveryJournal{});
      CanController& node = direct_->node(i);
      auto rep = std::make_unique<RsmReplica>(
          ReplicaConfig{static_cast<NodeId>(i), cfg.n_nodes, cfg.k,
                        cfg.can_id_base},
          [&node](const Frame& f) { node.enqueue(f); });
      RsmReplica* r = rep.get();
      node.add_tx_done_handler(
          [this, i, r](const Frame& f, BitTime t) {
            if (auto tag = parse_tag(f)) {
              broadcasts_.push_back({tag->key, static_cast<NodeId>(i)});
              tx_journals_.at(static_cast<NodeId>(i))
                  .push_back({tag->key, t});
            }
            r->on_frame(f, t);
          });
      node.add_delivery_handler(
          [r](const Frame& f, BitTime t) { r->on_frame(f, t); });
      replicas_.push_back(std::move(rep));
    }
  } else {
    higher_ = std::make_unique<HigherNetwork>(to_higher_kind(cfg.link),
                                              cfg.n_nodes, cfg.host,
                                              cfg.protocol);
    if (cfg.trace) higher_->link().enable_trace();
    for (int i = 0; i < cfg.n_nodes; ++i) {
      HigherHost& host = higher_->host(i);
      auto rep = std::make_unique<RsmReplica>(
          ReplicaConfig{static_cast<NodeId>(i), cfg.n_nodes, cfg.k,
                        cfg.can_id_base},
          [&host](const Frame& f) { host.broadcast_frame(f); });
      host.set_app_frame_handler(
          [r = rep.get()](const Frame& f, BitTime t) { r->on_frame(f, t); });
      replicas_.push_back(std::move(rep));
    }
  }
}

Network& RsmCluster::link() {
  return direct_ ? *direct_ : higher_->link();
}

const Network& RsmCluster::link() const {
  return direct_ ? *direct_
                 : const_cast<HigherNetwork&>(*higher_).link();
}

BitTime RsmCluster::now() const { return link().sim().now(); }

bool RsmCluster::propose(int node, const std::vector<std::uint8_t>& payload) {
  return replica(node).propose(payload, now());
}

void RsmCluster::crash_host(int node) { replica(node).crash(now()); }

void RsmCluster::recover_host(int node) { replica(node).recover(now()); }

void RsmCluster::step() {
  if (higher_) {
    higher_->step();
  } else {
    direct_->sim().step();
  }
}

bool RsmCluster::quiet() const {
  const Network& net = link();
  for (int i = 0; i < net.size(); ++i) {
    const CanController& node = net.node(i);
    if (net.sim().crashed(node.id()) || !node.active()) continue;
    if (!node.bus_idle() || node.pending_tx() > 0) return false;
    if (higher_ &&
        const_cast<HigherNetwork&>(*higher_).host(i).busy()) {
      return false;
    }
  }
  return true;
}

bool RsmCluster::run_until_quiet(BitTime max_bits) {
  for (BitTime i = 0; i < max_bits; ++i) {
    step();
    if (quiet()) return true;
  }
  return false;
}

std::map<NodeId, RsmJournal> RsmCluster::rsm_journals() const {
  std::map<NodeId, RsmJournal> out;
  for (int i = 0; i < cfg_.n_nodes; ++i) {
    out.emplace(static_cast<NodeId>(i), replica(i).journal());
  }
  return out;
}

AbReport RsmCluster::check_link() const {
  if (higher_) return higher_->check();
  std::map<NodeId, DeliveryJournal> journals = tx_journals_;
  for (int i = 0; i < cfg_.n_nodes; ++i) {
    DeliveryJournal& journal = journals.at(static_cast<NodeId>(i));
    for (const Delivery& d : direct_->deliveries(i)) {
      if (auto tag = parse_tag(d.frame)) {
        journal.push_back({tag->key, d.t});
      } else {
        journal.push_back({MessageKey{255, 0xFFFF}, d.t});  // AB4 sentinel
      }
    }
    std::stable_sort(journal.begin(), journal.end(),
                     [](const DeliveryEvent& a, const DeliveryEvent& b) {
                       return a.t < b.t;
                     });
  }
  std::set<NodeId> correct;
  for (int i = 0; i < cfg_.n_nodes; ++i) {
    const CanController& node = direct_->node(i);
    if (!direct_->sim().crashed(node.id()) && node.active()) {
      correct.insert(node.id());
    }
  }
  return check_atomic_broadcast(broadcasts_, journals, correct);
}

}  // namespace mcan
