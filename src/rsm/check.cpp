#include "rsm/check.hpp"

#include <algorithm>
#include <thread>

#include "scenario/exhaustive.hpp"

namespace mcan {

int RsmCheckConfig::window_hi() const {
  if (win_hi >= 0) return win_hi;
  ExhaustiveConfig ex;
  ex.protocol = base.protocol;
  return ex.window_hi();
}

std::string RsmCheckResult::summary() const {
  std::string s = std::to_string(cases) + " cases: " +
                  std::to_string(clean) + " clean, " +
                  std::to_string(violations()) + " violations (election " +
                  std::to_string(election) + ", log " +
                  std::to_string(log_diverge) + ", state " +
                  std::to_string(state_diverge) + ", liveness " +
                  std::to_string(liveness) + ", stall " +
                  std::to_string(stalls) + ", timeout " +
                  std::to_string(timeouts) + ")";
  if (stopped) s += " [interrupted]";
  return s;
}

namespace {

struct FlipTarget {
  NodeId node;
  int pos;
  int frame;
};

struct Partial {
  long long cases = 0;
  long long clean = 0;
  long long timeouts = 0;
  long long election = 0;
  long long log_diverge = 0;
  long long state_diverge = 0;
  long long liveness = 0;
  long long stalls = 0;
  std::vector<ScenarioSpec> findings;
  bool stopped = false;
};

void run_case(const RsmCheckConfig& cfg,
              const std::vector<FlipTarget>& targets,
              const std::vector<int>& combo, Partial& p) {
  ScenarioSpec spec = cfg.base;
  spec.flips.clear();
  for (const int idx : combo) {
    const FlipTarget& t = targets[static_cast<std::size_t>(idx)];
    spec.flips.push_back(
        FaultTarget::eof_relative(t.node, t.pos, t.frame));
  }
  // The sweep judges the report directly; the spec's own expectation is
  // irrelevant here.
  spec.expect = Expectation::Any;
  const RsmRunResult res = run_rsm_scenario(spec);
  ++p.cases;
  const bool quiesced = res.base.quiesced;
  const bool is_clean = res.rsm.clean() && quiesced;
  if (is_clean) {
    ++p.clean;
    return;
  }
  if (!quiesced) ++p.timeouts;
  if (res.rsm.election_violations > 0) ++p.election;
  if (res.rsm.log_mismatches > 0) ++p.log_diverge;
  if (res.rsm.state_mismatches > 0) ++p.state_diverge;
  if (res.rsm.liveness_violations > 0) ++p.liveness;
  if (res.rsm.stalled_recoveries > 0) ++p.stalls;
  if (static_cast<int>(p.findings.size()) < 4) {
    p.findings.push_back(spec);
  }
}

/// Enumerate combinations of size 1..max_k whose first element is `first`
/// (lexicographic within the partition).
void enumerate_first(const RsmCheckConfig& cfg,
                     const std::vector<FlipTarget>& targets, int first,
                     Partial& p) {
  std::vector<int> combo{first};
  run_case(cfg, targets, combo, p);
  const int n = static_cast<int>(targets.size());
  // Depth-first extension: combo already ran; extend while below max_k.
  const auto stopped = [&] { return cfg.stop && cfg.stop->load(); };
  auto extend = [&](auto&& self, int from) -> void {
    if (static_cast<int>(combo.size()) >= cfg.max_k) return;
    for (int next = from; next < n; ++next) {
      if (stopped()) {
        p.stopped = true;
        return;
      }
      combo.push_back(next);
      run_case(cfg, targets, combo, p);
      self(self, next + 1);
      combo.pop_back();
    }
  };
  extend(extend, first + 1);
}

}  // namespace

RsmCheckResult run_rsm_check(const RsmCheckConfig& cfg) {
  std::vector<FlipTarget> targets;
  const int hi = cfg.window_hi();
  for (int node = 0; node < cfg.base.n_nodes; ++node) {
    for (int frame = 0; frame < cfg.max_frames; ++frame) {
      for (int pos = cfg.win_lo; pos <= hi; ++pos) {
        targets.push_back({static_cast<NodeId>(node), pos, frame});
      }
    }
  }

  std::vector<Partial> partials(targets.size());
  std::atomic<int> next{0};
  const auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= static_cast<int>(targets.size())) return;
      Partial& p = partials[static_cast<std::size_t>(i)];
      if (cfg.stop && cfg.stop->load()) {
        p.stopped = true;
        continue;
      }
      enumerate_first(cfg, targets, i, p);
    }
  };
  const int jobs = std::max(
      1, std::min(cfg.jobs, static_cast<int>(targets.size())));
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Merge in partition order: totals and kept findings are independent of
  // the job count.
  RsmCheckResult out;
  for (const Partial& p : partials) {
    out.cases += p.cases;
    out.clean += p.clean;
    out.timeouts += p.timeouts;
    out.election += p.election;
    out.log_diverge += p.log_diverge;
    out.state_diverge += p.state_diverge;
    out.liveness += p.liveness;
    out.stalls += p.stalls;
    out.stopped = out.stopped || p.stopped;
    for (const ScenarioSpec& f : p.findings) {
      if (static_cast<int>(out.findings.size()) < cfg.max_findings) {
        out.findings.push_back(f);
      }
    }
  }
  return out;
}

}  // namespace mcan
