// Scenario runner for consensus workloads: the bridge between the .scn DSL
// and the RSM subsystem.
//
// A scenario carrying an `rsm` directive replaces the probe frame with a
// replicated-state-machine workload: round-robin command proposals, an
// optional host crash + rejoin, all over the scenario's link (the
// protocol variant directly, or EDCAN/RELCAN/TOTCAN above standard CAN).
// Scripted flips and the controller crash apply exactly as in
// run_scenario, so the same fault vocabulary that breaks a single probe
// frame can be aimed at a consensus run — and the result now includes the
// consensus verdict next to the link-level one.
//
// `expect` semantics on RSM scenarios: `consistent` means the consensus
// checkers come back clean; `imo` (and `double`) mean an application-level
// consistency violation was found.  Liveness is asserted only when the run
// quiesced *inside the fault envelope* — MajorCAN with at most m end-game
// flips and no controller crash, or a fault-free CAN/MinorCAN run.  A host
// crash/recovery is part of the model, not a fault.
#pragma once

#include "analysis/invariants.hpp"
#include "rsm/cluster.hpp"
#include "rsm/properties.hpp"
#include "scenario/dsl.hpp"

namespace mcan {

struct RsmRunResult {
  DslRunResult base;           ///< link-level verdicts, shaped as ever
  RsmReport rsm;               ///< the consensus property report
  bool within_envelope = false;
};

/// True when the scenario's faults stay inside the protocol's tolerance
/// envelope: MajorCAN with at most m total end-game flips (eof=/eofrel=
/// forms only) and no controller crash; any other variant only fault-free.
/// Host crash/recovery in the workload does not leave the envelope.
[[nodiscard]] bool rsm_within_envelope(const ScenarioSpec& spec);

/// Run the consensus workload (spec.rsm, defaulted if absent).  Throws
/// std::invalid_argument when spec.n_nodes exceeds 8 — membership and
/// voter sets travel as byte-wide bitmaps.
[[nodiscard]] RsmRunResult run_rsm_scenario(const ScenarioSpec& spec,
                                            const InvariantConfig& inv = {});

/// Dispatch: run_rsm_scenario(...).base for RSM scenarios, run_scenario
/// otherwise — so linting and replay tools handle any .scn uniformly.
[[nodiscard]] DslRunResult run_any_scenario(const ScenarioSpec& spec,
                                            const InvariantConfig& inv = {});

}  // namespace mcan
