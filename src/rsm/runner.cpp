#include "rsm/runner.hpp"

#include <set>
#include <stdexcept>

#include "analysis/tagged.hpp"
#include "attack/injector.hpp"
#include "fault/scripted.hpp"

namespace mcan {

bool rsm_within_envelope(const ScenarioSpec& spec) {
  if (spec.crash) return false;  // controller fail-silence is a fault
  if (!spec.attacks.empty()) return false;  // adversaries are not faults
  if (spec.protocol.variant != Variant::MajorCan) return spec.flips.empty();
  int total_flips = 0;
  for (const FaultTarget& f : spec.flips) {
    const bool endgame =
        (f.seg == Seg::Eof && f.index.has_value()) || f.eof_rel.has_value();
    if (!endgame) return false;
    total_flips += f.count;
  }
  return total_flips <= spec.protocol.m;
}

RsmRunResult run_rsm_scenario(const ScenarioSpec& spec,
                              const InvariantConfig& inv) {
  if (spec.n_nodes > 8) {
    throw std::invalid_argument(
        "rsm scenarios support at most 8 nodes (bitmap membership); got " +
        std::to_string(spec.n_nodes));
  }
  const RsmWorkload w =
      sanitize_rsm_workload(spec.rsm.value_or(RsmWorkload{}), spec.n_nodes);

  RsmClusterConfig cc;
  cc.n_nodes = spec.n_nodes;
  cc.k = w.k;
  cc.link = static_cast<RsmLink>(w.link);
  cc.protocol = spec.protocol;
  cc.can_id_base = spec.frame_id;
  RsmCluster cluster(cc);
  Network& net = cluster.link();

  ScriptedFaults inj(spec.flips);
  AttackEngine attacker(spec.attacks);
  CompositeInjector faults;
  faults.add(inj);
  faults.add(attacker);
  net.set_injector(faults);
  if (spec.crash) {
    net.sim().schedule_crash(spec.crash->first, spec.crash->second);
  }
  InvariantScope invariants(net, inv);

  // Spoofed frames ride the consensus bus as raw tagged CAN frames: the
  // replicas' RSM codec ignores them, but the link-level AB check sees the
  // deliveries — a spoof that lands is a message no replica broadcast.
  std::set<MessageKey> spoofed;
  for (const AttackSpec& a : spec.attacks) {
    if (a.kind != AttackKind::Spoof) continue;
    const auto src = static_cast<int>(
        a.attacker % static_cast<std::uint32_t>(spec.n_nodes));
    for (const MessageKey& key : spoof_keys(a)) {
      net.node(src).enqueue(make_tagged_frame(a.id, MsgKind::Data, key,
                                              std::max<std::uint8_t>(4, a.dlc)));
      attacker.note_spoofed(1);
      spoofed.insert(key);
    }
  }

  // Deterministic workload schedule: command j goes to node j mod n at
  // 1 + j*spacing; payload[0] picks the register, the rest is a delta
  // pattern unique to j so every command changes the state digest.
  struct Proposal {
    BitTime t;
    int node;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Proposal> proposals;
  for (int j = 0; j < w.commands; ++j) {
    Proposal p;
    p.t = 1 + static_cast<BitTime>(j) * w.spacing;
    p.node = j % spec.n_nodes;
    p.payload.push_back(static_cast<std::uint8_t>(j % kRsmRegisters));
    for (int b = 1; b < w.payload; ++b) {
      p.payload.push_back(static_cast<std::uint8_t>(j * 31 + b));
    }
    proposals.push_back(std::move(p));
  }
  const bool crash_scheduled = w.crash_node >= 0;
  const bool recover_scheduled = crash_scheduled && w.recover_t > 0;

  constexpr BitTime kBudget = 200000;
  std::size_t next_proposal = 0;
  bool crash_done = false;
  bool recover_done = false;
  bool quiesced = false;
  for (BitTime i = 0; i < kBudget; ++i) {
    const BitTime now = cluster.now();
    while (next_proposal < proposals.size() &&
           proposals[next_proposal].t <= now) {
      const Proposal& p = proposals[next_proposal];
      cluster.propose(p.node, p.payload);  // refused while down: skipped
      ++next_proposal;
    }
    if (crash_scheduled && !crash_done && now >= w.crash_t) {
      cluster.crash_host(w.crash_node);
      crash_done = true;
    }
    if (recover_scheduled && !recover_done && now >= w.recover_t) {
      cluster.recover_host(w.crash_node);
      recover_done = true;
    }
    cluster.step();
    const bool events_done = next_proposal == proposals.size() &&
                             (!crash_scheduled || crash_done) &&
                             (!recover_scheduled || recover_done);
    if (events_done && cluster.quiet()) {
      quiesced = true;
      break;
    }
  }
  // Same cooldown rationale as run_scenario: let the reconvergence rule
  // observe an all-idle bit after the quiet predicate stopped the loop.
  for (int i = 0; i < 2 * spec.protocol.eof_bits(); ++i) net.sim().step();

  RsmRunResult res;
  res.within_envelope = rsm_within_envelope(spec);
  res.base.quiesced = quiesced;
  res.base.invariants = invariants.report();
  invariants.set_handler(nullptr);
  res.base.ab = cluster.check_link();

  RsmCheckContext ctx;
  if (spec.crash) ctx.controller_crashed.insert(spec.crash->first);
  ctx.check_liveness = quiesced && res.within_envelope;
  ctx.expect_install = quiesced && recover_scheduled;
  res.rsm = check_rsm(cluster.rsm_journals(), ctx);

  res.base.outcome.name = spec.name.empty() ? "rsm scenario" : spec.name;
  res.base.outcome.protocol = spec.protocol;
  res.base.outcome.n_nodes = spec.n_nodes;
  res.base.outcome.tx_node = 0;
  res.base.outcome.deliveries.assign(static_cast<std::size_t>(spec.n_nodes),
                                     0);
  for (int i = 0; i < spec.n_nodes; ++i) {
    res.base.outcome.deliveries[static_cast<std::size_t>(i)] =
        static_cast<int>(net.deliveries(i).size());
  }
  res.base.outcome.tx_crashed = spec.crash.has_value();
  res.base.outcome.faults_all_fired = inj.all_fired();
  res.base.outcome.notes.push_back("rsm: " + res.rsm.summary());

  for (int i = 0; i < spec.n_nodes; ++i) {
    for (const Delivery& d : net.deliveries(i)) {
      if (auto tag = parse_tag(d.frame); tag && spoofed.contains(tag->key)) {
        attacker.note_spoof_delivered();
      }
    }
  }
  for (NodeId v : attacker.busoff_victims()) {
    if (static_cast<int>(v) >= spec.n_nodes) continue;
    const CanController& victim = net.node(static_cast<int>(v));
    attacker.finalize_victim(v, victim.fc_state() == FcState::BusOff,
                             victim.tec());
  }
  res.base.attack = attacker.report();

  switch (spec.expect) {
    case Expectation::Any:
      res.base.expectation_met = true;
      res.base.expectation_text = "(no expectation)";
      break;
    case Expectation::Consistent:
      res.base.expectation_met = res.rsm.clean();
      res.base.expectation_text = "expected consensus safety: " +
                                  res.rsm.summary();
      break;
    case Expectation::Imo:
    case Expectation::Double:
      res.base.expectation_met = !res.rsm.clean();
      res.base.expectation_text =
          "expected an application-level consistency violation: " +
          res.rsm.summary();
      break;
  }
  return res;
}

DslRunResult run_any_scenario(const ScenarioSpec& spec,
                              const InvariantConfig& inv) {
  if (spec.rsm) return run_rsm_scenario(spec, inv).base;
  return run_scenario(spec, inv);
}

}  // namespace mcan
