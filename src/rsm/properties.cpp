#include "rsm/properties.hpp"

namespace mcan {

namespace {

void add_detail(std::string& detail, int& shown, const std::string& line) {
  constexpr int kMaxLines = 6;
  if (shown >= kMaxLines) return;
  if (!detail.empty()) detail += "; ";
  detail += line;
  ++shown;
}

}  // namespace

std::string RsmReport::summary() const {
  std::string s = "participating=" + std::to_string(participating) +
                  " proposals=" + std::to_string(proposals) +
                  " commits=" + std::to_string(commits) +
                  " installs=" + std::to_string(installs) +
                  " election=" + std::to_string(election_violations) +
                  " log=" + std::to_string(log_mismatches) +
                  " state=" + std::to_string(state_mismatches);
  if (liveness_checked) {
    s += " liveness=" + std::to_string(liveness_violations);
  }
  s += " stall=" + std::to_string(stalled_recoveries);
  return s;
}

RsmReport check_rsm(const std::map<NodeId, RsmJournal>& journals,
                    const RsmCheckContext& ctx) {
  RsmReport report;
  report.liveness_checked = ctx.check_liveness;
  int shown = 0;

  const auto participating = [&](NodeId n) {
    return !ctx.controller_crashed.contains(n);
  };
  for (const auto& [node, j] : journals) {
    if (!participating(node)) continue;
    ++report.participating;
    report.proposals += static_cast<long long>(j.proposals.size());
    report.commits += static_cast<long long>(j.commits.size());
    report.installs += static_cast<long long>(j.installs.size());
  }

  // Election safety: at most one coordinator claim per (joiner, epoch)
  // term.  Two claimants mean two replicas believed themselves the
  // deterministic coordinator — their applied counts diverged.
  std::map<std::uint16_t, std::set<NodeId>> claimants;
  for (const auto& [node, j] : journals) {
    if (!participating(node)) continue;
    for (const RsmClaimEvent& c : j.claims) {
      claimants[c.term_key].insert(c.claimant);
    }
  }
  for (const auto& [term_key, who] : claimants) {
    if (who.size() > 1) {
      ++report.election_violations;
      std::string line =
          "election: term " + std::to_string(term_key) + " claimed by";
      for (const NodeId n : who) line += " n" + std::to_string(n);
      add_detail(report.detail, shown, line);
    }
  }

  // Log matching / state-machine safety compare each node's *final* word
  // per absolute index: a later append or apply at the same index
  // (snapshot install after recovery) supersedes the pre-crash one —
  // discarding an uncommitted suffix on crash is legitimate.
  std::map<NodeId, std::map<long long, std::uint64_t>> final_appends;
  std::map<NodeId, std::map<long long, std::uint64_t>> final_applies;
  for (const auto& [node, j] : journals) {
    if (!participating(node)) continue;
    for (const RsmAppendEvent& a : j.appends) {
      final_appends[node][a.index] = a.digest;
    }
    for (const RsmApplyEvent& a : j.applies) {
      final_applies[node][a.index] = a.state_digest;
    }
  }
  const auto count_mismatches = [&](const auto& per_node, long long& out,
                                    const char* what) {
    std::map<long long, std::map<std::uint64_t, std::set<NodeId>>> by_index;
    for (const auto& [node, entries] : per_node) {
      for (const auto& [index, digest] : entries) {
        by_index[index][digest].insert(node);
      }
    }
    for (const auto& [index, digests] : by_index) {
      if (digests.size() > 1) {
        ++out;
        std::string line = std::string(what) + " mismatch at index " +
                           std::to_string(index) + ":";
        for (const auto& [digest, nodes] : digests) {
          line += " {";
          for (const NodeId n : nodes) line += "n" + std::to_string(n);
          line += "}";
        }
        add_detail(report.detail, shown, line);
      }
    }
  };
  count_mismatches(final_appends, report.log_mismatches, "log");
  count_mismatches(final_applies, report.state_mismatches, "state");

  // Recovery stall: a restarted host that never installed a snapshot.
  if (ctx.expect_install) {
    for (const auto& [node, j] : journals) {
      if (!participating(node)) continue;
      if (j.host_recovered && j.installs.empty()) {
        ++report.stalled_recoveries;
        add_detail(report.detail, shown,
                   "recovery stalled: n" + std::to_string(node) +
                       " rejoined but never installed a snapshot");
      }
    }
  }

  // Liveness (asserted only inside the fault envelope, after quiescence):
  // every command proposed by a never-crashed node commits at every
  // participating node.  A recovered node answers only for proposals made
  // at or after its snapshot install — earlier commits live inside the
  // installed state, not its commit journal.
  if (ctx.check_liveness) {
    for (const auto& [proposer, pj] : journals) {
      if (!participating(proposer) || pj.host_crashed) continue;
      for (const RsmProposeEvent& p : pj.proposals) {
        for (const auto& [node, j] : journals) {
          if (!participating(node)) continue;
          if (j.host_crashed && !j.host_recovered) continue;
          if (j.host_recovered) {
            if (j.installs.empty()) continue;  // already flagged as stalled
            if (p.t < j.installs.front().t) continue;
          }
          bool committed = false;
          for (const RsmCommitEvent& c : j.commits) {
            if (c.id == p.id) {
              committed = true;
              break;
            }
          }
          if (!committed) {
            ++report.liveness_violations;
            add_detail(report.detail, shown,
                       "liveness: " + p.id.to_string() + " from n" +
                           std::to_string(proposer) +
                           " never committed at n" + std::to_string(node));
          }
        }
      }
    }
  }

  return report;
}

}  // namespace mcan
