#include "rsm/log.hpp"

#include <stdexcept>

namespace mcan {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t LogEntry::digest() const {
  std::uint64_t h = kFnvOffset;
  const std::uint8_t head[5] = {
      static_cast<std::uint8_t>(id.source),
      static_cast<std::uint8_t>(id.seq >> 8),
      static_cast<std::uint8_t>(id.seq & 0xFF),
      static_cast<std::uint8_t>(is_join ? 1 : 0),
      static_cast<std::uint8_t>(is_join ? joiner : 0),
  };
  h = fnv1a(h, head, sizeof head);
  if (!payload.empty()) h = fnv1a(h, payload.data(), payload.size());
  return h;
}

long long RsmLog::append(LogEntry e) {
  const long long index = end();
  ids_.insert(e.id);
  entries_.push_back(std::move(e));
  committed_.push_back(false);
  return index;
}

std::optional<long long> RsmLog::index_of(const CommandId& id) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      return base_ + static_cast<long long>(i);
    }
  }
  return std::nullopt;
}

void RsmLog::reset_to_base(long long base) {
  base_ = base;
  entries_.clear();
  committed_.clear();
  ids_.clear();
}

void RegisterMachine::apply(const LogEntry& e, long long index) {
  if (index != applied_) {
    throw std::logic_error("RegisterMachine::apply out of order");
  }
  if (!e.is_join && !e.payload.empty()) {
    const int r = e.payload[0] % kRsmRegisters;
    std::int64_t delta = 0;
    for (std::size_t b = e.payload.size(); b > 1; --b) {
      delta = (delta << 8) | e.payload[b - 1];
    }
    // Sign-extend from the payload width so decrements are expressible.
    const int bits = 8 * static_cast<int>(e.payload.size() - 1);
    if (bits > 0 && bits < 64 && (delta & (1LL << (bits - 1)))) {
      delta -= 1LL << bits;
    }
    regs_[static_cast<std::size_t>(r)] += delta;
  }
  const std::uint64_t ed = e.digest();
  digest_ = fnv1a(digest_, &ed, sizeof ed);
  ++applied_;
}

void RegisterMachine::install(
    const std::array<std::int64_t, kRsmRegisters>& regs, long long applied,
    std::uint64_t digest) {
  regs_ = regs;
  applied_ = applied;
  digest_ = digest;
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 7; b >= 0; --b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t pos = 0;

  [[nodiscard]] bool need(std::size_t n) const {
    return pos + n <= bytes.size();
  }
  std::uint8_t u8() { return bytes[pos++]; }
  std::uint16_t u16() {
    const std::uint16_t v =
        static_cast<std::uint16_t>((bytes[pos] << 8) | bytes[pos + 1]);
    pos += 2;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v = (v << 8) | bytes[pos++];
    return v;
  }
};

}  // namespace

std::vector<std::uint8_t> RsmSnapshot::serialize() const {
  std::vector<std::uint8_t> out;
  out.push_back(joiner & 0xFF);
  out.push_back(joiner_epoch);
  out.push_back(term);
  out.push_back(members);
  put_u16(out, static_cast<std::uint16_t>(base));
  for (const std::int64_t r : regs) {
    put_u64(out, static_cast<std::uint64_t>(r));
  }
  put_u64(out, digest);
  const std::size_t count_at = out.size();
  out.push_back(0);  // tail count + truncation bit, patched below
  std::uint8_t shipped = 0;
  bool cut = false;
  for (const TailEntry& te : tail) {
    // Fixed 8 bytes of entry header + payload; stop before overflowing
    // the fragmentation layer's payload ceiling.  The cut is flagged in
    // the count byte's top bit so the joiner knows its tail is partial.
    const std::size_t need = 8 + te.entry.payload.size();
    if (out.size() + need > static_cast<std::size_t>(kRsmMaxPayload)) {
      cut = true;
      break;
    }
    out.push_back(te.entry.id.source & 0xFF);
    put_u16(out, te.entry.id.seq);
    out.push_back(te.voters);
    out.push_back(static_cast<std::uint8_t>(te.entry.is_join ? 1 : 0));
    out.push_back(te.entry.joiner & 0xFF);
    out.push_back(te.entry.joiner_epoch);
    out.push_back(static_cast<std::uint8_t>(te.entry.payload.size()));
    out.insert(out.end(), te.entry.payload.begin(), te.entry.payload.end());
    ++shipped;
  }
  out[count_at] = static_cast<std::uint8_t>(shipped | (cut ? 0x80 : 0));
  return out;
}

std::optional<RsmSnapshot> RsmSnapshot::parse(
    const std::vector<std::uint8_t>& bytes) {
  Reader r{bytes};
  RsmSnapshot s;
  if (!r.need(4 + 2 + 8 * kRsmRegisters + 8 + 1)) return std::nullopt;
  s.joiner = r.u8();
  s.joiner_epoch = r.u8();
  s.term = r.u8();
  s.members = r.u8();
  s.base = r.u16();
  for (std::size_t i = 0; i < kRsmRegisters; ++i) {
    s.regs[i] = static_cast<std::int64_t>(r.u64());
  }
  s.digest = r.u64();
  const std::uint8_t count_byte = r.u8();
  s.truncated = (count_byte & 0x80) != 0;
  const std::uint8_t n_tail = count_byte & 0x7F;
  for (std::uint8_t i = 0; i < n_tail; ++i) {
    if (!r.need(8)) return std::nullopt;
    TailEntry te;
    te.entry.id.source = r.u8();
    te.entry.id.seq = r.u16();
    te.voters = r.u8();
    te.entry.is_join = r.u8() != 0;
    te.entry.joiner = r.u8();
    te.entry.joiner_epoch = r.u8();
    const std::uint8_t len = r.u8();
    if (!r.need(len)) return std::nullopt;
    te.entry.payload.assign(bytes.begin() + static_cast<long>(r.pos),
                            bytes.begin() + static_cast<long>(r.pos + len));
    r.pos += len;
    s.tail.push_back(std::move(te));
  }
  return s;
}

}  // namespace mcan
