// Bounded model checking of the consensus properties — the rsm analogue of
// scenario/exhaustive.hpp, one layer up.
//
// For a given base scenario (protocol, node count, rsm workload),
// enumerate every combination of up to `max_k` view-flips over the
// (node x EOF-relative position x frame index) grid, run the full
// consensus workload for each, and classify the RsmReport.  Within the
// explored window this is complete: MajorCAN_m with max_k <= m must come
// back clean (election safety, log matching, state-machine safety AND
// liveness, since every enumerated case stays inside the envelope), while
// standard CAN yields concrete application-level counterexamples.
//
// Work is parallelised by first-flip index: each worker claims a first
// target, enumerates every combination starting there, and the partial
// results merge in index order — the totals and kept findings are
// identical for any job count.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "rsm/runner.hpp"

namespace mcan {

struct RsmCheckConfig {
  /// Base scenario: protocol, n_nodes and the rsm workload.  Its flips
  /// are ignored; the sweep supplies them.
  ScenarioSpec base;
  int max_k = 2;       ///< combinations of 1..max_k flips
  int win_lo = 0;      ///< EOF-relative window, inclusive
  /// Upper window bound; <0 = auto (whole end-game for MajorCAN, EOF +
  /// intermission otherwise), mirroring ExhaustiveConfig's default.
  int win_hi = -1;
  int max_frames = 2;  ///< flip targets cover frame indices [0, max_frames)
  int jobs = 1;
  int max_findings = 8;
  /// Cooperative stop (signal handling); polled between cases.
  const std::atomic<bool>* stop = nullptr;

  [[nodiscard]] int window_hi() const;
};

struct RsmCheckResult {
  long long cases = 0;
  long long clean = 0;
  long long timeouts = 0;    ///< runs that never quiesced
  long long election = 0;    ///< cases with an election-safety violation
  long long log_diverge = 0; ///< cases with a log mismatch
  long long state_diverge = 0;
  long long liveness = 0;
  long long stalls = 0;      ///< cases with a stalled recovery
  std::vector<ScenarioSpec> findings;  ///< first violating cases, in order
  bool stopped = false;      ///< interrupted before the sweep finished

  [[nodiscard]] long long violations() const {
    return cases - clean;
  }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] RsmCheckResult run_rsm_check(const RsmCheckConfig& cfg);

}  // namespace mcan
