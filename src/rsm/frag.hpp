// Fragmentation/reassembly sublayer for the consensus stack ("Split, Send,
// Reassemble", arXiv 1703.06569, adapted to this repo's tagged frames).
//
// A consensus message (command, vote, join, snapshot) can exceed CAN's
// 8-byte payload, so it is split into sequenced *segments*.  Each segment
// is an ordinary tagged data frame (analysis/tagged.hpp) — bytes 0..3 are
// the standard kind/source/sequence tag, so every existing wire-level
// property checker (AB1..AB5 over tagged journals) and all higher-level
// hosts keep working on RSM traffic unchanged — followed by a segment
// header and up to two payload bytes:
//
//   data[0]  MsgKind::Data
//   data[1]  source node id
//   data[2..3] wire sequence, big endian: (epoch << 12) | counter.  The
//            sender's crash-incarnation epoch rides in the top nibble so a
//            recovered node's fresh segments are never mistaken for stale
//            retransmissions of its previous life.
//   data[4]  (RsmMsgType << 4) | (epoch & 0x0F)
//   data[5]  bit 7: last-segment flag; bits 0..6: segment index
//   data[6..] payload chunk (0..2 bytes; dlc = 6 + chunk length)
//
// The Reassembler detects duplicates (CAN's inconsistent double reception
// delivers a segment twice), gaps (a lost segment under inconsistent
// omission), mid-message epoch resets and malformed segments, and feeds
// the counts to the oracle: fragmentation loss is precisely how a
// link-level Agreement violation becomes an application-level one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "analysis/tagged.hpp"
#include "frame/frame.hpp"

namespace mcan {

/// Consensus message types carried above the fragmentation layer.
enum class RsmMsgType : std::uint8_t {
  Cmd = 0,   ///< a client command to append to the replicated log
  Vote = 1,  ///< a commit vote for one log entry (payload: CommandId)
  Join = 2,  ///< a recovered node (re)joining the membership
  Snap = 3,  ///< log snapshot transfer to a joiner (multi-segment)
};

[[nodiscard]] const char* rsm_msg_type_name(RsmMsgType t);

inline constexpr int kRsmChunkBytes = 2;    ///< payload bytes per segment
inline constexpr int kRsmMaxSegments = 128; ///< 7-bit segment index
/// Largest payload one message can carry (the snapshot serializer caps
/// itself below this).
inline constexpr int kRsmMaxPayload = kRsmChunkBytes * kRsmMaxSegments;

/// One reassembled consensus message.
struct RsmMessage {
  RsmMsgType type = RsmMsgType::Cmd;
  NodeId source = 0;
  std::uint8_t epoch = 0;
  std::uint16_t seq = 0;  ///< wire sequence of the first segment
  std::vector<std::uint8_t> payload;
  BitTime t = 0;  ///< delivery time of the completing segment
};

/// Split `payload` into sequenced segment frames.  `seq_counter` is the
/// sender's running 12-bit segment counter (advanced by the number of
/// segments produced); `can_id` sets the arbitration identifier of every
/// segment.  A message always produces at least one segment (an empty
/// payload rides in a header-only frame).  Throws std::length_error when
/// the payload exceeds kRsmMaxPayload.
[[nodiscard]] std::vector<Frame> split_message(
    RsmMsgType type, NodeId source, std::uint8_t epoch,
    std::uint16_t& seq_counter, const std::vector<std::uint8_t>& payload,
    std::uint32_t can_id);

/// Loss/duplicate accounting, per receiver.  Every counter feeds the
/// consensus oracle's detail output; `gaps` and `dropped` are the smoking
/// gun when link-level omission breaks application-level consistency.
struct FragStats {
  std::uint64_t segments = 0;    ///< well-formed segments processed
  std::uint64_t messages = 0;    ///< messages completed
  std::uint64_t duplicates = 0;  ///< segment received twice (same sequence)
  std::uint64_t stale = 0;       ///< sequence went backwards
  std::uint64_t gaps = 0;        ///< sequence skipped ahead (lost segment)
  std::uint64_t epoch_resets = 0;///< sender restarted with a new epoch
  std::uint64_t dropped = 0;     ///< partial messages abandoned
  std::uint64_t malformed = 0;   ///< frame not a valid segment

  [[nodiscard]] bool lossless() const {
    return gaps == 0 && dropped == 0 && malformed == 0;
  }
};

/// Per-receiver reassembly: feed every delivered frame in, get a complete
/// message out when its last segment arrives.  Keyed by sender; segment
/// sequences must ascend per sender (the wire's total order guarantees it
/// on a correct link — every deviation is counted, not assumed away).
class Reassembler {
 public:
  /// Process one delivered frame.  Returns the completed message when this
  /// frame finishes one; nullopt otherwise (mid-message, duplicate, or not
  /// an RSM segment).
  std::optional<RsmMessage> on_frame(const Frame& f, BitTime t);

  /// Drop all partial state and sequence history (host crash wipes RAM).
  /// Statistics survive: they belong to the observer, not the node.
  void reset();

  [[nodiscard]] const FragStats& stats() const { return stats_; }

 private:
  struct SenderState {
    bool have_seq = false;
    std::uint16_t last_seq = 0;
    bool assembling = false;
    RsmMsgType type = RsmMsgType::Cmd;
    std::uint8_t epoch = 0;
    std::uint16_t first_seq = 0;
    std::uint8_t next_index = 0;
    std::vector<std::uint8_t> buf;
  };

  std::map<NodeId, SenderState> senders_;
  FragStats stats_;
};

}  // namespace mcan
