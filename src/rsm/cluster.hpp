// A complete RSM deployment: n replicas wired over one of the link
// variants this repo models.
//
//   * Direct — replicas talk straight to CAN/MinorCAN/MajorCAN
//     controllers.  A replica observes its own segments at tx_done (the
//     wire's sequencing point) and everyone else's at delivery, so the
//     append order is the wire order — the protocol variant decides how
//     atomic that order really is.
//   * Edcan/Relcan/Totcan — replicas ride the Rufino et al. higher-level
//     protocols over standard CAN, through HigherHost::broadcast_frame and
//     the app-frame handler.  EDCAN/RELCAN deliver a sender's own message
//     immediately (no total order), which the consensus checkers surface
//     as log divergence; TOTCAN's ACCEPT-ordered release preserves it.
//
// Host crash/recovery (RsmReplica::crash/recover) is an *application*
// failure: the controller keeps running, queued segments still drain.
// Controller fail-silence (.scn `crash`) is a separate, link-level fault.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/network.hpp"
#include "higher/higher_network.hpp"
#include "rsm/replica.hpp"

namespace mcan {

enum class RsmLink { Direct, Edcan, Relcan, Totcan };

[[nodiscard]] const char* rsm_link_name(RsmLink link);

struct RsmClusterConfig {
  int n_nodes = 3;
  int k = 2;                     ///< commit threshold
  RsmLink link = RsmLink::Direct;
  ProtocolParams protocol;       ///< the link's wire protocol
  HostParams host;               ///< higher-link host parameters
  std::uint32_t can_id_base = 0x100;
  bool trace = false;            ///< record a per-bit trace (memory-hungry)
};

class RsmCluster {
 public:
  explicit RsmCluster(const RsmClusterConfig& cfg);

  [[nodiscard]] int size() const { return cfg_.n_nodes; }
  [[nodiscard]] RsmReplica& replica(int i) {
    return *replicas_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const RsmReplica& replica(int i) const {
    return *replicas_.at(static_cast<std::size_t>(i));
  }
  /// The underlying bus (fault injection, invariant scope, trace).
  [[nodiscard]] Network& link();
  [[nodiscard]] const Network& link() const;
  [[nodiscard]] BitTime now() const;

  /// Propose a command at `node`; false if that replica cannot right now.
  bool propose(int node, const std::vector<std::uint8_t>& payload);
  void crash_host(int node);
  void recover_host(int node);

  /// One bit time (simulator step + higher-host timers when present).
  void step();
  /// True when the bus is idle, queues are empty and hosts are not busy.
  /// A joiner still awaiting its snapshot is NOT busy: a stalled recovery
  /// must quiesce so the checker can flag it, not hang the run.
  [[nodiscard]] bool quiet() const;
  bool run_until_quiet(BitTime max_bits = 200000);

  [[nodiscard]] std::map<NodeId, RsmJournal> rsm_journals() const;

  /// Link-level AB1..AB5 verdict (direct: tagged journals in the
  /// run_scenario convention; higher: app-level journals).  Call after the
  /// run — direct-mode receiver journals are assembled on demand.
  [[nodiscard]] AbReport check_link() const;

 private:
  RsmClusterConfig cfg_;
  std::unique_ptr<Network> direct_;
  std::unique_ptr<HigherNetwork> higher_;
  std::vector<std::unique_ptr<RsmReplica>> replicas_;

  // Direct-mode link-level journaling: broadcasts and sender journals are
  // recorded live at tx_done; receiver journals come from Network's
  // delivery records at check time.
  std::vector<BroadcastRecord> broadcasts_;
  std::map<NodeId, DeliveryJournal> tx_journals_;
};

}  // namespace mcan
