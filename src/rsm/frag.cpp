#include "rsm/frag.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mcan {

const char* rsm_msg_type_name(RsmMsgType t) {
  switch (t) {
    case RsmMsgType::Cmd: return "cmd";
    case RsmMsgType::Vote: return "vote";
    case RsmMsgType::Join: return "join";
    case RsmMsgType::Snap: return "snap";
  }
  return "?";
}

std::vector<Frame> split_message(RsmMsgType type, NodeId source,
                                 std::uint8_t epoch,
                                 std::uint16_t& seq_counter,
                                 const std::vector<std::uint8_t>& payload,
                                 std::uint32_t can_id) {
  if (static_cast<int>(payload.size()) > kRsmMaxPayload) {
    throw std::length_error("rsm message payload exceeds " +
                            std::to_string(kRsmMaxPayload) + " bytes");
  }
  const int n_segments =
      payload.empty()
          ? 1
          : (static_cast<int>(payload.size()) + kRsmChunkBytes - 1) /
                kRsmChunkBytes;
  std::vector<Frame> out;
  out.reserve(static_cast<std::size_t>(n_segments));
  for (int s = 0; s < n_segments; ++s) {
    const std::uint16_t seq = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(epoch & 0x0F) << 12) |
        (seq_counter & 0x0FFF));
    seq_counter = static_cast<std::uint16_t>((seq_counter + 1) & 0x0FFF);
    Frame f = make_tagged_frame(can_id, MsgKind::Data,
                                MessageKey{source, seq}, 6);
    f.data[4] = static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(type) << 4) | (epoch & 0x0F));
    const bool last = s == n_segments - 1;
    f.data[5] = static_cast<std::uint8_t>((last ? 0x80 : 0x00) |
                                          (s & 0x7F));
    const int off = s * kRsmChunkBytes;
    const int chunk =
        std::min(kRsmChunkBytes, static_cast<int>(payload.size()) - off);
    for (int b = 0; b < chunk; ++b) {
      f.data[static_cast<std::size_t>(6 + b)] =
          payload[static_cast<std::size_t>(off + b)];
    }
    f.dlc = static_cast<std::uint8_t>(6 + std::max(0, chunk));
    out.push_back(f);
  }
  return out;
}

std::optional<RsmMessage> Reassembler::on_frame(const Frame& f, BitTime t) {
  const auto tag = parse_tag(f);
  if (!tag || tag->kind != MsgKind::Data || f.dlc < 6) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const NodeId source = tag->key.source;
  const std::uint16_t seq = tag->key.seq;
  const std::uint8_t type_raw = static_cast<std::uint8_t>(f.data[4] >> 4);
  if (type_raw > static_cast<std::uint8_t>(RsmMsgType::Snap)) {
    ++stats_.malformed;
    return std::nullopt;
  }
  const auto type = static_cast<RsmMsgType>(type_raw);
  const std::uint8_t epoch = static_cast<std::uint8_t>(f.data[4] & 0x0F);
  const bool last = (f.data[5] & 0x80) != 0;
  const std::uint8_t index = static_cast<std::uint8_t>(f.data[5] & 0x7F);

  SenderState& st = senders_[source];

  // Sequence bookkeeping.  Sequences ascend per sender (epoch in the top
  // nibble keeps a recovered node monotone); a repeat is CAN's double
  // reception, a regression is a stale retransmission, a skip is loss.
  if (st.have_seq) {
    if (seq == st.last_seq) {
      ++stats_.duplicates;
      return std::nullopt;
    }
    if (seq < st.last_seq) {
      ++stats_.stale;
      return std::nullopt;
    }
    const bool epoch_changed = (seq >> 12) != (st.last_seq >> 12);
    if (epoch_changed) {
      ++stats_.epoch_resets;
      if (st.assembling) {
        ++stats_.dropped;
        st.assembling = false;
      }
    } else if (seq != static_cast<std::uint16_t>(st.last_seq + 1)) {
      ++stats_.gaps;
      if (st.assembling) {
        ++stats_.dropped;
        st.assembling = false;
      }
    }
  }
  st.have_seq = true;
  st.last_seq = seq;
  ++stats_.segments;

  if (!st.assembling) {
    if (index != 0) {  // orphan tail of a message whose head was lost
      ++stats_.dropped;
      return std::nullopt;
    }
    st.assembling = true;
    st.type = type;
    st.epoch = epoch;
    st.first_seq = seq;
    st.next_index = 0;
    st.buf.clear();
  } else if (type != st.type || epoch != st.epoch || index != st.next_index) {
    // A fresh head interleaved into an unfinished message: the old one is
    // lost.  Restart when this is a plausible head, drop otherwise.
    ++stats_.dropped;
    st.assembling = false;
    if (index != 0) return std::nullopt;
    st.assembling = true;
    st.type = type;
    st.epoch = epoch;
    st.first_seq = seq;
    st.buf.clear();
  }

  for (int b = 6; b < f.dlc; ++b) {
    st.buf.push_back(f.data[static_cast<std::size_t>(b)]);
  }
  st.next_index = static_cast<std::uint8_t>(index + 1);
  if (!last) return std::nullopt;

  st.assembling = false;
  ++stats_.messages;
  RsmMessage m;
  m.type = st.type;
  m.source = source;
  m.epoch = st.epoch;
  m.seq = st.first_seq;
  m.payload = st.buf;
  m.t = t;
  return m;
}

void Reassembler::reset() { senders_.clear(); }

}  // namespace mcan
