// The bus abstraction: a wired-AND medium sampled bit-synchronously.
//
// One simulation step is one bit time.  Every participant drives a level,
// the bus resolves to dominant if anyone drives dominant, and every
// participant then samples the bus *through its own view*, which the fault
// injector may flip.  This mirrors the paper's error model exactly: a
// disturbance affects one node's view of one bit (Charzinski's p_eff
// spatial model), so one physical bit can look recessive to one node and
// dominant to another — which is precisely how every inconsistency scenario
// in the paper arises.
#pragma once

#include <cstdint>

#include "util/bit.hpp"

namespace mcan {

/// Coarse FSM position of a node at one bit time.  Published so that
/// scripted fault injection can target frame-relative positions ("EOF bit 6
/// of the receivers in X") in the same vocabulary the paper's figures use.
enum class Seg : std::uint8_t {
  Off,            ///< bus-off / crashed / switched off
  Idle,           ///< bus idle
  Intermission,   ///< interframe space, index 0..2
  Suspend,        ///< error-passive transmitter suspend window
  Body,           ///< SOF..CRC (stuffed wire bits), index = wire offset
  Tail,           ///< CRC delim (0), ACK slot (1), ACK delim (2)
  Eof,            ///< EOF field, index = 0-based position within EOF
  ErrorFlag,      ///< transmitting an (active) error flag, index 0..5
  PassiveFlag,    ///< error-passive flag window
  ErrorDelimWait, ///< sent flag, waiting to see recessive
  ErrorDelim,     ///< counting the recessive delimiter bits
  OverloadFlag,   ///< transmitting an overload flag, index 0..5
  OverloadDelimWait,
  OverloadDelim,
  Sampling,       ///< MajorCAN: gap + majority-vote window; index = EOF-relative pos
  ExtFlag,        ///< MajorCAN: transmitting the extended error flag; index = EOF-relative pos
};

[[nodiscard]] const char* seg_name(Seg s);

/// Sentinel for "no EOF-relative anchor".
///
/// Contract: anchored values are *negative as well as positive* — a receiver
/// anchors at -3 (CRC delimiter), and a transmitter anchors as early as
/// -(m+4) (the horizon within which an error flag can reach someone else's
/// end-game).  The sentinel therefore must compare strictly below every
/// reachable anchored value; ProtocolParams::validate() bounds the tolerance
/// parameter m so that -(m+4) can never reach it (see kMaxTolerance).
inline constexpr int kNoEofRel = -1000;

/// Everything the simulator / injector / tracer can know about a node's
/// position at the current bit time.
struct NodeBitInfo {
  Seg seg = Seg::Idle;
  int index = 0;          ///< bit index within the segment, 0-based
  int eof_rel = kNoEofRel;///< position relative to EOF start; kNoEofRel if unanchored
  int frame_index = -1;   ///< how many frame starts this node has seen (0-based)
  bool transmitter = false;
  int tec = 0;            ///< transmit error counter snapshot (fault confinement)
  int rec = 0;            ///< receive error counter snapshot (fault confinement)
};

/// A bus participant: one CAN (or variant) controller.
///
/// Contract per bit time t: the simulator calls drive(t) on every active
/// participant, resolves the wired-AND bus level, then calls sample(t, view)
/// on every active participant with that participant's possibly-disturbed
/// view.  State transitions happen inside sample().
class BusParticipant {
 public:
  virtual ~BusParticipant() = default;

  BusParticipant() = default;
  BusParticipant(const BusParticipant&) = delete;
  BusParticipant& operator=(const BusParticipant&) = delete;

  /// Level this node puts on the bus for bit time t.
  [[nodiscard]] virtual Level drive(BitTime t) = 0;

  /// Observe this node's view of the resolved bus level for bit time t.
  virtual void sample(BitTime t, Level view) = 0;

  /// Where this node is right now (valid between drive() and sample()).
  [[nodiscard]] virtual NodeBitInfo bit_info() const = 0;

  /// Stable identity on this bus.
  [[nodiscard]] virtual NodeId id() const = 0;

  /// Inactive nodes (crashed, bus-off, switched off) neither drive nor
  /// sample; the bus sees them as permanently recessive.
  [[nodiscard]] virtual bool active() const { return true; }

  /// Idle-skipping contract: true only if, while the bus stays recessive,
  /// this node drives recessive, samples to no state change and no events,
  /// and remains in that fixed point.  Kernels use it to fast-forward over
  /// all-idle stretches; the default (never quiescent) is always sound for
  /// participants that cannot promise this.
  [[nodiscard]] virtual bool quiescent() const { return false; }
};

}  // namespace mcan
