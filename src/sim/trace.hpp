// Trace recording and paper-style ASCII timeline rendering.
//
// The recorder stores every BitRecord of a run; the renderer prints one row
// per node using the same alphabet as the paper's figures: 'r'/'d' for the
// node's view of each bit, uppercase when the node itself drives dominant,
// '*' marking bits whose view was disturbed by the injector, and '.' when
// the node is off.  A second band shows the node's FSM segment, so a rendered
// trace reads like Fig. 1/2/3/5 of the paper with the decision annotations.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace mcan {

class TraceRecorder final : public TraceObserver {
 public:
  void on_bit(const BitRecord& rec) override { bits_.push_back(rec); }

  [[nodiscard]] const std::vector<BitRecord>& bits() const { return bits_; }
  void clear() { bits_.clear(); }

  /// Render bit times [from, to) as an ASCII timeline.
  /// `labels` — one display name per node (attach order).
  [[nodiscard]] std::string render(const std::vector<std::string>& labels,
                                   BitTime from, BitTime to) const;

  /// Render everything recorded.
  [[nodiscard]] std::string render(const std::vector<std::string>& labels) const;

  /// First bit time at which any node's segment equals `s` (or kNoTime).
  [[nodiscard]] BitTime first_time_in_seg(Seg s) const;

 private:
  std::vector<BitRecord> bits_;
};

}  // namespace mcan
