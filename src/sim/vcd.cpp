#include "sim/vcd.hpp"

#include <fstream>

namespace mcan {

namespace {

/// VCD identifier characters for up to a few hundred signals.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

char vcd_level(Level l) { return is_dominant(l) ? '0' : '1'; }

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return s;
}

}  // namespace

std::string trace_to_vcd(const TraceRecorder& trace,
                         const std::vector<std::string>& labels,
                         const std::string& timescale) {
  const auto& bits = trace.bits();
  std::string out;
  out += "$date majorcan simulation $end\n";
  out += "$version majorcan trace_to_vcd $end\n";
  out += "$timescale " + timescale + " $end\n";
  out += "$scope module bus $end\n";

  const std::size_t n = bits.empty() ? labels.size() : bits.front().driven.size();
  // Signal order: bus, then per node drive/view/fault.
  std::vector<std::string> ids;
  auto declare = [&](const std::string& name) {
    const std::string id = vcd_id(ids.size());
    out += "$var wire 1 " + id + " " + sanitize(name) + " $end\n";
    ids.push_back(id);
  };
  declare("BUS");
  for (std::size_t i = 0; i < n; ++i) {
    const std::string base =
        i < labels.size() ? labels[i] : "node" + std::to_string(i);
    declare(base + ".drive");
    declare(base + ".view");
    declare(base + ".fault");
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  // Emit changes only.
  std::vector<char> last(ids.size(), '?');
  for (const BitRecord& rec : bits) {
    std::string changes;
    auto put = [&](std::size_t sig, char v) {
      if (last[sig] != v) {
        changes += v;
        changes += ids[sig];
        changes += '\n';
        last[sig] = v;
      }
    };
    put(0, vcd_level(rec.bus));
    for (std::size_t i = 0; i < n; ++i) {
      put(1 + 3 * i, vcd_level(rec.driven[i]));
      put(2 + 3 * i, vcd_level(rec.view[i]));
      put(3 + 3 * i, rec.disturbed[i] ? '1' : '0');
    }
    if (!changes.empty()) {
      out += "#" + std::to_string(rec.t) + "\n" + changes;
    }
  }
  if (!bits.empty()) {
    out += "#" + std::to_string(bits.back().t + 1) + "\n";
  }
  return out;
}

bool write_vcd_file(const std::string& path, const TraceRecorder& trace,
                    const std::vector<std::string>& labels) {
  std::ofstream f(path);
  if (!f) return false;
  f << trace_to_vcd(trace, labels);
  return static_cast<bool>(f);
}

}  // namespace mcan
