#include "sim/vcd.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace mcan {

namespace {

/// VCD identifier characters for up to a few hundred signals.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

char vcd_level(Level l) { return is_dominant(l) ? '0' : '1'; }

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return s;
}

}  // namespace

std::string trace_to_vcd(const TraceRecorder& trace,
                         const std::vector<std::string>& labels,
                         const std::string& timescale) {
  const auto& bits = trace.bits();
  std::string out;
  out += "$date majorcan simulation $end\n";
  out += "$version majorcan trace_to_vcd $end\n";
  out += "$timescale " + timescale + " $end\n";
  out += "$scope module bus $end\n";

  const std::size_t n = bits.empty() ? labels.size() : bits.front().driven.size();
  // Signal order: bus, then per node drive/view/fault.
  std::vector<std::string> ids;
  auto declare = [&](const std::string& name) {
    const std::string id = vcd_id(ids.size());
    out += "$var wire 1 " + id + " " + sanitize(name) + " $end\n";
    ids.push_back(id);
  };
  declare("BUS");
  for (std::size_t i = 0; i < n; ++i) {
    const std::string base =
        i < labels.size() ? labels[i] : "node" + std::to_string(i);
    declare(base + ".drive");
    declare(base + ".view");
    declare(base + ".fault");
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  // Emit changes only.
  std::vector<char> last(ids.size(), '?');
  for (const BitRecord& rec : bits) {
    std::string changes;
    auto put = [&](std::size_t sig, char v) {
      if (last[sig] != v) {
        changes += v;
        changes += ids[sig];
        changes += '\n';
        last[sig] = v;
      }
    };
    put(0, vcd_level(rec.bus));
    for (std::size_t i = 0; i < n; ++i) {
      put(1 + 3 * i, vcd_level(rec.driven[i]));
      put(2 + 3 * i, vcd_level(rec.view[i]));
      put(3 + 3 * i, rec.disturbed[i] ? '1' : '0');
    }
    if (!changes.empty()) {
      out += "#" + std::to_string(rec.t) + "\n" + changes;
    }
  }
  if (!bits.empty()) {
    out += "#" + std::to_string(bits.back().t + 1) + "\n";
  }
  return out;
}

bool write_vcd_file(const std::string& path, const TraceRecorder& trace,
                    const std::vector<std::string>& labels) {
  std::ofstream f(path);
  if (!f) return false;
  f << trace_to_vcd(trace, labels);
  return static_cast<bool>(f);
}

namespace {

/// What one VCD wire means in the trace_to_vcd layout.
struct SignalRole {
  enum Kind { Bus, Drive, View, Fault } kind = Bus;
  std::size_t node = 0;
};

Level level_from_vcd(char c) {
  // 'x'/'z' (never emitted by trace_to_vcd, but legal VCD) read as the
  // idle level.
  return c == '0' ? Level::Dominant : Level::Recessive;
}

}  // namespace

VcdTrace parse_vcd(const std::string& text) {
  VcdTrace out;
  std::map<std::string, SignalRole> roles;  // VCD id -> meaning
  std::map<std::string, std::size_t> node_of_label;

  std::istringstream in(text);
  std::string tok;

  // --- header: collect $var declarations until $enddefinitions ---
  while (in >> tok) {
    if (tok == "$enddefinitions") break;
    if (tok != "$var") continue;
    std::string type, width, id, name;
    if (!(in >> type >> width >> id >> name)) {
      throw std::invalid_argument("vcd: truncated $var declaration");
    }
    SignalRole role;
    if (name == "BUS") {
      role.kind = SignalRole::Bus;
    } else {
      const auto dot = name.rfind('.');
      if (dot == std::string::npos) {
        throw std::invalid_argument("vcd: unrecognised signal name: " + name);
      }
      const std::string base = name.substr(0, dot);
      const std::string field = name.substr(dot + 1);
      if (field == "drive") {
        role.kind = SignalRole::Drive;
      } else if (field == "view") {
        role.kind = SignalRole::View;
      } else if (field == "fault") {
        role.kind = SignalRole::Fault;
      } else {
        throw std::invalid_argument("vcd: unrecognised signal name: " + name);
      }
      auto [it, fresh] = node_of_label.try_emplace(base, out.labels.size());
      if (fresh) out.labels.push_back(base);
      role.node = it->second;
    }
    roles[id] = role;
  }
  if (roles.empty()) {
    throw std::invalid_argument("vcd: no signal declarations found");
  }

  const std::size_t n = out.labels.size();
  Level bus = Level::Recessive;
  std::vector<Level> driven(n, Level::Recessive);
  std::vector<Level> view(n, Level::Recessive);
  std::vector<bool> disturbed(n, false);

  bool have_time = false;
  BitTime t = 0;

  auto emit_until = [&](BitTime end) {
    for (; t < end; ++t) {
      BitRecord rec;
      rec.t = t;
      rec.bus = bus;
      rec.driven = driven;
      rec.view = view;
      rec.disturbed = disturbed;
      rec.info.assign(n, NodeBitInfo{});
      rec.active.assign(n, true);
      out.bits.push_back(std::move(rec));
    }
  };

  // --- body: timestamps and value changes ---
  while (in >> tok) {
    if (tok.empty()) continue;
    if (tok[0] == '$') {
      // $dumpvars wraps initial value changes: process its contents
      // normally.  Any other directive is skipped through its $end.
      if (tok == "$dumpvars" || tok == "$end") continue;
      std::string skip;
      while (in >> skip && skip != "$end") {
      }
      continue;
    }
    if (tok[0] == '#') {
      const BitTime next = std::stoull(tok.substr(1));
      if (have_time) emit_until(next);
      t = next;
      have_time = true;
      continue;
    }
    // Scalar value change: <value><id>.
    const char v = tok[0];
    const std::string id = tok.substr(1);
    const auto it = roles.find(id);
    if (it == roles.end()) {
      throw std::invalid_argument("vcd: value change for undeclared id: " + id);
    }
    const SignalRole& role = it->second;
    switch (role.kind) {
      case SignalRole::Bus: bus = level_from_vcd(v); break;
      case SignalRole::Drive: driven[role.node] = level_from_vcd(v); break;
      case SignalRole::View: view[role.node] = level_from_vcd(v); break;
      case SignalRole::Fault: disturbed[role.node] = v == '1'; break;
    }
  }
  return out;
}

VcdTrace read_vcd_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::invalid_argument("cannot open VCD file: " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  return parse_vcd(buf.str());
}

}  // namespace mcan
