#include "sim/bus.hpp"

namespace mcan {

const char* seg_name(Seg s) {
  switch (s) {
    case Seg::Off: return "OFF";
    case Seg::Idle: return "IDLE";
    case Seg::Intermission: return "IFS";
    case Seg::Suspend: return "SUSP";
    case Seg::Body: return "BODY";
    case Seg::Tail: return "TAIL";
    case Seg::Eof: return "EOF";
    case Seg::ErrorFlag: return "EFLAG";
    case Seg::PassiveFlag: return "PFLAG";
    case Seg::ErrorDelimWait: return "EDELW";
    case Seg::ErrorDelim: return "EDEL";
    case Seg::OverloadFlag: return "OFLAG";
    case Seg::OverloadDelimWait: return "ODELW";
    case Seg::OverloadDelim: return "ODEL";
    case Seg::Sampling: return "SAMP";
    case Seg::ExtFlag: return "XFLAG";
  }
  return "?";
}

}  // namespace mcan
