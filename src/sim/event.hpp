// Protocol events emitted by controllers and consumed by the trace
// recorder, the scenario verdict logic, and the atomic-broadcast property
// checker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "frame/frame.hpp"
#include "util/bit.hpp"

namespace mcan {

enum class EventKind : std::uint8_t {
  SofSent,             ///< transmitter put SOF on the wire
  SofSeen,             ///< idle node saw a start of frame
  ArbitrationLost,     ///< transmitter backed off; now receiving
  ErrorDetected,       ///< any of the five detection mechanisms fired
  ErrorFlagStart,      ///< active error flag transmission begins
  PassiveFlagStart,    ///< passive error flag window begins
  OverloadFlagStart,   ///< overload flag transmission begins
  ExtendedFlagStart,   ///< MajorCAN acceptance-notification flag begins
  SamplingDecision,    ///< MajorCAN majority vote concluded
  FrameAccepted,       ///< receiver accepted (delivered) a frame
  FrameRejected,       ///< receiver discarded the frame in progress
  TxSuccess,           ///< transmitter considers the frame delivered
  TxRejected,          ///< transmitter considers the attempt failed
  TxRetransmit,        ///< retransmission scheduled
  AckSent,             ///< receiver drove the ACK slot dominant
  EnteredErrorPassive,
  EnteredBusOff,
  WarningSwitchOff,    ///< node switched itself off at the warning limit
  Crashed,             ///< externally injected crash
  BusOffRecovered,     ///< rejoined after the 128 x 11-recessive sequence
};

[[nodiscard]] const char* event_kind_name(EventKind k);

struct Event {
  BitTime t = 0;
  NodeId node = 0;
  EventKind kind = EventKind::SofSeen;
  std::string detail;           ///< free-form, e.g. "form error at EOF[5]"
  std::optional<Frame> frame;   ///< present for accept/reject/success events

  [[nodiscard]] std::string to_string() const;
};

/// Shared sink controllers emit into.  Observers (trace recorder, property
/// checker) read the log after — or during — the run.
class EventLog {
 public:
  void emit(Event e) { events_.push_back(std::move(e)); }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// All events of one kind, optionally restricted to one node.
  [[nodiscard]] std::vector<Event> filter(
      EventKind kind, std::optional<NodeId> node = std::nullopt) const;

  /// Count of events of one kind, optionally restricted to one node.
  [[nodiscard]] std::size_t count(
      EventKind kind, std::optional<NodeId> node = std::nullopt) const;

 private:
  std::vector<Event> events_;
};

}  // namespace mcan
