#include "sim/trace.hpp"

#include <algorithm>

#include "util/text.hpp"

namespace mcan {

namespace {

char view_char(const BitRecord& rec, std::size_t node) {
  if (!rec.active[node]) return '.';
  char c = level_char(rec.view[node]);
  if (is_dominant(rec.driven[node])) c = static_cast<char>(c - 'a' + 'A');
  return c;
}

}  // namespace

std::string TraceRecorder::render(const std::vector<std::string>& labels,
                                  BitTime from, BitTime to) const {
  if (bits_.empty()) return "(empty trace)\n";
  const std::size_t n = bits_.front().driven.size();

  std::size_t label_w = 4;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());
  label_w += 2;

  std::string out;

  // Time ruler (mod 10 digits) to keep rows readable.
  out += pad_right("t%10", label_w);
  for (const BitRecord& rec : bits_) {
    if (rec.t < from || rec.t >= to) continue;
    out += static_cast<char>('0' + rec.t % 10);
  }
  out += '\n';

  for (std::size_t i = 0; i < n; ++i) {
    std::string label = i < labels.size() ? labels[i] : "n" + std::to_string(i);
    out += pad_right(label, label_w);
    for (const BitRecord& rec : bits_) {
      if (rec.t < from || rec.t >= to) continue;
      out += view_char(rec, i);
    }
    out += '\n';
    // Disturbance band: '*' under every injected flip.
    bool any = false;
    std::string band = pad_right("", label_w);
    for (const BitRecord& rec : bits_) {
      if (rec.t < from || rec.t >= to) continue;
      band += rec.disturbed[i] ? '*' : ' ';
      any = any || rec.disturbed[i];
    }
    if (any) {
      out += band;
      out += '\n';
    }
  }
  return out;
}

std::string TraceRecorder::render(const std::vector<std::string>& labels) const {
  if (bits_.empty()) return "(empty trace)\n";
  return render(labels, bits_.front().t, bits_.back().t + 1);
}

BitTime TraceRecorder::first_time_in_seg(Seg s) const {
  for (const BitRecord& rec : bits_) {
    for (const NodeBitInfo& info : rec.info) {
      if (info.seg == s) return rec.t;
    }
  }
  return kNoTime;
}

}  // namespace mcan
