#include "sim/kernel.hpp"

#include <atomic>

namespace mcan {

namespace {
std::atomic<int> g_kernel{static_cast<int>(KernelKind::Ref)};
}  // namespace

KernelKind default_kernel() {
  return static_cast<KernelKind>(g_kernel.load(std::memory_order_relaxed));
}

void set_default_kernel(KernelKind k) {
  g_kernel.store(static_cast<int>(k), std::memory_order_relaxed);
}

const char* kernel_name(KernelKind k) {
  return k == KernelKind::Fast ? "fast" : "ref";
}

std::optional<KernelKind> parse_kernel_name(const std::string& token) {
  if (token == "ref" || token == "reference") return KernelKind::Ref;
  if (token == "fast") return KernelKind::Fast;
  return std::nullopt;
}

}  // namespace mcan
