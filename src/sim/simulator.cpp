#include "sim/simulator.hpp"

#include <stdexcept>

namespace mcan {

Simulator::~Simulator() {
  // Flush before the backend dies so participants that outlive the
  // simulator (the documented lifetime contract) carry their true state.
  if (kernel_) kernel_->flush();
}

void Simulator::attach(BusParticipant& node) {
  for (const Slot& s : nodes_) {
    if (s.node->id() == node.id()) {
      throw std::invalid_argument("duplicate node id on bus");
    }
  }
  nodes_.push_back(Slot{&node, kNoTime, false});
  if (kernel_) kernel_->on_attach();
}

void Simulator::install_kernel(std::unique_ptr<KernelBackend> k) {
  if (kernel_) kernel_->flush();
  kernel_ = std::move(k);
}

void Simulator::schedule_crash(NodeId node, BitTime t) {
  for (Slot& s : nodes_) {
    if (s.node->id() == node) {
      if (!s.crashed && s.crash_at == kNoTime) ++pending_crashes_;
      s.crash_at = t;
      return;
    }
  }
  throw std::invalid_argument("schedule_crash: unknown node");
}

void Simulator::remove_observer(TraceObserver& obs) {
  std::erase(observers_, &obs);
}

bool Simulator::crashed(NodeId node) const {
  for (const Slot& s : nodes_) {
    if (s.node->id() == node) return s.crashed;
  }
  return false;
}

void Simulator::activate_crashes() {
  if (pending_crashes_ == 0) return;
  for (Slot& s : nodes_) {
    if (!s.crashed && s.crash_at != kNoTime && now_ >= s.crash_at) {
      s.crashed = true;
      --pending_crashes_;
    }
  }
}

void Simulator::step() {
  if (kernel_) {
    kernel_->step();
    return;
  }
  step_reference();
}

void Simulator::step_reference() {
  const std::size_t n = nodes_.size();

  FaultInjector& inj = effective_injector();

  // Apply scheduled crashes for this bit time.
  activate_crashes();

  // Idle short-circuit: when the previous bit resolved recessive, probe
  // whether every participant is in its idle fixed point and the injector
  // promises this bit is disturbance-free — then the whole bit is a no-op
  // except the clock.  Observers force the full path (they get a record
  // per bit); the hint keeps saturated workloads from ever paying for the
  // scan.
  if (maybe_idle_ && observers_.empty()) {
    bool all_quiescent = true;
    for (const Slot& s : nodes_) {
      if (s.crashed || !s.node->active()) continue;
      if (!s.node->quiescent()) {
        all_quiescent = false;
        break;
      }
    }
    if (!all_quiescent) {
      maybe_idle_ = false;
    } else if (inj.quiet_until(now_) > now_) {
      ++now_;
      return;
    }
  }

  driven_.assign(n, Level::Recessive);
  infos_.resize(n);
  views_.assign(n, Level::Recessive);
  active_.assign(n, false);
  disturbed_.assign(n, false);

  // Phase 1: drive.  Participation is latched here: a node whose
  // fault-confinement state flips to bus-off during this bit's sample
  // phase still drove this bit, and the trace record must agree with the
  // resolution (the wired-AND invariant checks record-internal
  // consistency).
  Level bus = Level::Recessive;
  for (std::size_t i = 0; i < n; ++i) {
    Slot& s = nodes_[i];
    if (s.crashed || !s.node->active()) {
      driven_[i] = Level::Recessive;
      infos_[i] = NodeBitInfo{};
      infos_[i].seg = Seg::Off;
      continue;
    }
    active_[i] = true;
    driven_[i] = s.node->drive(now_);
    infos_[i] = s.node->bit_info();
    bus = bus & driven_[i];
  }

  // Phase 2: resolve views and sample.
  for (std::size_t i = 0; i < n; ++i) {
    Slot& s = nodes_[i];
    if (s.crashed || !s.node->active()) {
      views_[i] = bus;
      continue;
    }
    bool f = inj.flips(s.node->id(), now_, infos_[i], bus);
    disturbed_[i] = f;
    views_[i] = f ? flip(bus) : bus;
  }
  for (std::size_t i = 0; i < n; ++i) {
    Slot& s = nodes_[i];
    if (s.crashed || !s.node->active()) continue;
    s.node->sample(now_, views_[i]);
  }

  // Phase 3: trace.
  if (!observers_.empty()) {
    BitRecord rec;
    rec.t = now_;
    rec.bus = bus;
    rec.driven = driven_;
    rec.view = views_;
    rec.info = infos_;
    rec.disturbed = disturbed_;
    rec.active = active_;
    for (TraceObserver* obs : observers_) obs->on_bit(rec);
  }

  maybe_idle_ = bus == Level::Recessive;
  ++now_;
}

void Simulator::run(BitTime n) {
  if (kernel_) {
    kernel_->run(n);
    return;
  }
  for (BitTime i = 0; i < n; ++i) step_reference();
}

bool Simulator::run_until(const std::function<bool()>& pred, BitTime max_bits) {
  for (BitTime i = 0; i < max_bits; ++i) {
    if (pred()) return true;
    step();
  }
  return pred();
}

}  // namespace mcan
