#include "sim/simulator.hpp"

#include <stdexcept>

namespace mcan {

void Simulator::attach(BusParticipant& node) {
  for (const Slot& s : nodes_) {
    if (s.node->id() == node.id()) {
      throw std::invalid_argument("duplicate node id on bus");
    }
  }
  nodes_.push_back(Slot{&node, kNoTime, false});
}

void Simulator::schedule_crash(NodeId node, BitTime t) {
  for (Slot& s : nodes_) {
    if (s.node->id() == node) {
      s.crash_at = t;
      return;
    }
  }
  throw std::invalid_argument("schedule_crash: unknown node");
}

void Simulator::remove_observer(TraceObserver& obs) {
  std::erase(observers_, &obs);
}

bool Simulator::crashed(NodeId node) const {
  for (const Slot& s : nodes_) {
    if (s.node->id() == node) return s.crashed;
  }
  return false;
}

void Simulator::step() {
  const std::size_t n = nodes_.size();
  driven_.assign(n, Level::Recessive);
  infos_.resize(n);
  views_.assign(n, Level::Recessive);

  FaultInjector& inj = injector_ ? *injector_ : no_faults_;

  // Apply scheduled crashes for this bit time.
  for (Slot& s : nodes_) {
    if (!s.crashed && s.crash_at != kNoTime && now_ >= s.crash_at) {
      s.crashed = true;
    }
  }

  // Phase 1: drive.  Participation is latched here: a node whose
  // fault-confinement state flips to bus-off during this bit's sample
  // phase still drove this bit, and the trace record must agree with the
  // resolution (the wired-AND invariant checks record-internal
  // consistency).
  Level bus = Level::Recessive;
  std::vector<bool> active(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    Slot& s = nodes_[i];
    if (s.crashed || !s.node->active()) {
      driven_[i] = Level::Recessive;
      infos_[i] = NodeBitInfo{};
      infos_[i].seg = Seg::Off;
      continue;
    }
    active[i] = true;
    driven_[i] = s.node->drive(now_);
    infos_[i] = s.node->bit_info();
    bus = bus & driven_[i];
  }

  // Phase 2: resolve views and sample.
  std::vector<bool> disturbed(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    Slot& s = nodes_[i];
    if (s.crashed || !s.node->active()) {
      views_[i] = bus;
      continue;
    }
    bool f = inj.flips(s.node->id(), now_, infos_[i], bus);
    disturbed[i] = f;
    views_[i] = f ? flip(bus) : bus;
  }
  for (std::size_t i = 0; i < n; ++i) {
    Slot& s = nodes_[i];
    if (s.crashed || !s.node->active()) continue;
    s.node->sample(now_, views_[i]);
  }

  // Phase 3: trace.
  if (!observers_.empty()) {
    BitRecord rec;
    rec.t = now_;
    rec.bus = bus;
    rec.driven = driven_;
    rec.view = views_;
    rec.info = infos_;
    rec.disturbed = disturbed;
    rec.active = active;
    for (TraceObserver* obs : observers_) obs->on_bit(rec);
  }

  ++now_;
}

void Simulator::run(BitTime n) {
  for (BitTime i = 0; i < n; ++i) step();
}

bool Simulator::run_until(const std::function<bool()>& pred, BitTime max_bits) {
  for (BitTime i = 0; i < max_bits; ++i) {
    if (pred()) return true;
    step();
  }
  return pred();
}

}  // namespace mcan
