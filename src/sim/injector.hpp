// Fault-injection interface.
//
// The simulator asks the injector, for every (node, bit), whether that
// node's view of the resolved bus level is flipped.  A flip models a channel
// disturbance local to that node: recessive seen as dominant (a phantom
// error flag, Fig. 1 of the paper) or dominant seen as recessive (a missed
// error flag, Fig. 3a).  Concrete injectors live in src/fault.
#pragma once

#include "sim/bus.hpp"
#include "util/bit.hpp"

namespace mcan {

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// True iff `node`'s view of the bus at time `t` is inverted.
  /// `info` describes the node's frame-relative position (for scripted
  /// scenarios); `bus` is the resolved level before disturbance.
  [[nodiscard]] virtual bool flips(NodeId node, BitTime t,
                                   const NodeBitInfo& info, Level bus) = 0;
};

/// The default: a perfectly clean channel.
class NoFaults final : public FaultInjector {
 public:
  [[nodiscard]] bool flips(NodeId, BitTime, const NodeBitInfo&,
                           Level) override {
    return false;
  }
};

}  // namespace mcan
