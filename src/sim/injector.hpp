// Fault-injection interface.
//
// The simulator asks the injector, for every (node, bit), whether that
// node's view of the resolved bus level is flipped.  A flip models a channel
// disturbance local to that node: recessive seen as dominant (a phantom
// error flag, Fig. 1 of the paper) or dominant seen as recessive (a missed
// error flag, Fig. 3a).  Concrete injectors live in src/fault.
#pragma once

#include "sim/bus.hpp"
#include "util/bit.hpp"

namespace mcan {

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// True iff `node`'s view of the bus at time `t` is inverted.
  /// `info` describes the node's frame-relative position (for scripted
  /// scenarios); `bus` is the resolved level before disturbance.
  [[nodiscard]] virtual bool flips(NodeId node, BitTime t,
                                   const NodeBitInfo& info, Level bus) = 0;

  /// Event-skipping contract: the earliest bit time >= `t` at which this
  /// injector might flip any view, draw from an RNG, or mutate its own
  /// bookkeeping.  A kernel may skip all flips() calls for bits strictly
  /// before the returned time; kNoTime promises the injector is inert
  /// forever.  The default — return `t` itself — promises nothing, which
  /// is always sound.  Overrides must be conservative: an injector whose
  /// flips() has side effects on every call (RNG draws, per-call counters)
  /// must not claim quiet bits, or skipped calls would change its
  /// downstream behaviour and break the kernels' bit-identity guarantee.
  [[nodiscard]] virtual BitTime quiet_until(BitTime t) { return t; }
};

/// The default: a perfectly clean channel.
class NoFaults final : public FaultInjector {
 public:
  [[nodiscard]] bool flips(NodeId, BitTime, const NodeBitInfo&,
                           Level) override {
    return false;
  }
  [[nodiscard]] BitTime quiet_until(BitTime) override { return kNoTime; }
};

}  // namespace mcan
