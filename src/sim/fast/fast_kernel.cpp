#include "sim/fast/fast_kernel.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace mcan {

namespace {

/// Regroup cadence: how often ungrouped controllers are re-scanned for
/// symmetry.  Ejected members (a finished transmitter, a disturbed
/// receiver) pay at most this many solo bits before rejoining.
constexpr BitTime kRegroupInterval = 128;

/// Minimum worthwhile word-batch: below this the setup scan costs more
/// than the per-bit path it bypasses.
constexpr int kMinBatchBits = 8;

std::atomic<bool> g_paranoid{false};

NodeBitInfo off_info() {
  NodeBitInfo info;
  info.seg = Seg::Off;
  return info;
}

}  // namespace

void FastKernel::set_paranoid(bool on) {
  g_paranoid.store(on, std::memory_order_relaxed);
}

bool FastKernel::paranoid() {
  return g_paranoid.load(std::memory_order_relaxed);
}

FastKernel::FastKernel(Simulator& sim) : sim_(sim) { sync_topology(); }

FastKernel::~FastKernel() { flush(); }

void FastKernel::on_attach() { topo_dirty_ = true; }

void FastKernel::note_extern_mutation(std::uint32_t index) {
  touched_.push_back(index);
}

void FastKernel::sync_topology() {
  const std::size_t n = sim_.nodes_.size();
  const std::size_t old = ctrl_.size();
  ctrl_.resize(n, nullptr);
  group_of_.resize(n, -1);
  for (std::size_t i = old; i < n; ++i) {
    ctrl_[i] = dynamic_cast<CanController*>(sim_.nodes_[i].node);
  }
  topo_dirty_ = false;
  singles_dirty_ = true;
  next_rebuild_ = sim_.now_;  // new arrivals are grouping candidates
}

void FastKernel::rebuild_singles() {
  singles_.clear();
  for (std::size_t i = 0; i < sim_.nodes_.size(); ++i) {
    if (group_of_[i] < 0) singles_.push_back(static_cast<std::uint32_t>(i));
  }
  singles_dirty_ = false;
}

void FastKernel::materialize(CanController& c) {
  if (c.proxy_ != nullptr) {
    const CanController* p = c.proxy_;
    c.proxy_ = nullptr;
    c.copy_runtime_state_from(*p);
  }
  c.fast_owner_ = nullptr;
  c.fast_touched_ = false;
}

void FastKernel::drop_member(std::uint32_t idx) {
  const int gi = group_of_[idx];
  if (gi < 0) return;
  singles_dirty_ = true;
  Group& g = *groups_[gi];
  materialize(*ctrl_[idx]);
  group_of_[idx] = -1;
  std::erase(g.members, idx);
  if (g.members.size() < 2) {
    // A group of one is pure overhead: dissolve it.
    for (std::uint32_t m : g.members) {
      materialize(*ctrl_[m]);
      group_of_[m] = -1;
    }
    g.members.clear();
    g.live = false;
    groups_[gi].reset();
  }
}

void FastKernel::drain_pending() {
  if (!touched_.empty()) {
    for (std::uint32_t idx : touched_) drop_member(idx);
    touched_.clear();
  }
  if (sim_.pending_crashes_ > 0) {
    for (std::size_t i = 0; i < sim_.nodes_.size(); ++i) {
      Simulator::Slot& s = sim_.nodes_[i];
      if (!s.crashed && s.crash_at != kNoTime && sim_.now_ >= s.crash_at) {
        s.crashed = true;
        --sim_.pending_crashes_;
        if (group_of_[i] >= 0) drop_member(static_cast<std::uint32_t>(i));
      }
    }
  }
}

BitTime FastKernel::crash_horizon() const {
  if (sim_.pending_crashes_ == 0) return kNoTime;
  BitTime h = kNoTime;
  for (const Simulator::Slot& s : sim_.nodes_) {
    if (!s.crashed && s.crash_at != kNoTime) h = std::min(h, s.crash_at);
  }
  return h;
}

bool FastKernel::compatible(const CanController& a,
                            const CanController& b) const {
  return a.cfg_.protocol == b.cfg_.protocol && a.cfg_.fc == b.cfg_.fc &&
         a.cfg_.ack_enabled == b.cfg_.ack_enabled &&
         a.cfg_.auto_retransmit == b.cfg_.auto_retransmit &&
         a.cfg_.busoff_auto_recovery == b.cfg_.busoff_auto_recovery;
}

void FastKernel::add_member(int gi, std::uint32_t idx) {
  Group& g = *groups_[gi];
  CanController& c = *ctrl_[idx];
  c.proxy_ = g.shadow.get();
  c.fast_owner_ = this;
  c.fast_index_ = idx;
  c.fast_touched_ = false;
  group_of_[idx] = gi;
  g.members.push_back(idx);
  singles_dirty_ = true;
}

void FastKernel::rebuild_groups() {
  next_rebuild_ = sim_.now_ + kRegroupInterval;

  // Candidates: ungrouped controllers whose behaviour is provably shared —
  // on the bus, nothing queued (so drive() is pure and the shadow can never
  // start a transmission), not about to crash into a different trajectory.
  std::vector<std::uint32_t> cand;
  for (std::size_t i = 0; i < sim_.nodes_.size(); ++i) {
    if (group_of_[i] >= 0) continue;
    CanController* c = ctrl_[i];
    if (c == nullptr) continue;
    const Simulator::Slot& s = sim_.nodes_[i];
    if (s.crashed || !c->active()) continue;
    if (!c->queue_.empty()) continue;
    cand.push_back(static_cast<std::uint32_t>(i));
  }
  if (cand.empty()) return;

  // First offer candidates to existing groups, then pair the rest up.
  // The digest (append_state) covers every behaviour-bearing runtime
  // field except frame_index_, which bit_info() publishes to injectors,
  // so it is matched separately.
  std::vector<std::uint32_t> rest;
  for (std::uint32_t idx : cand) {
    CanController& c = *ctrl_[idx];
    key_a_.clear();
    c.append_state(key_a_);
    bool joined = false;
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      if (!groups_[gi] || !groups_[gi]->live) continue;
      CanController& sh = *groups_[gi]->shadow;
      if (!compatible(c, sh) || c.frame_index_ != sh.frame_index_) continue;
      key_b_.clear();
      sh.append_state(key_b_);
      if (key_a_ != key_b_) continue;
      add_member(static_cast<int>(gi), idx);
      joined = true;
      break;
    }
    if (!joined) rest.push_back(idx);
  }

  // Pair remaining candidates into new groups (first match wins; the scan
  // is quadratic in the ungrouped population, which the regroup cadence
  // keeps small).
  std::vector<bool> taken(rest.size(), false);
  for (std::size_t a = 0; a < rest.size(); ++a) {
    if (taken[a]) continue;
    CanController& ca = *ctrl_[rest[a]];
    key_a_.clear();
    ca.append_state(key_a_);
    std::vector<std::uint32_t> members{rest[a]};
    for (std::size_t b = a + 1; b < rest.size(); ++b) {
      if (taken[b]) continue;
      CanController& cb = *ctrl_[rest[b]];
      if (!compatible(ca, cb) || ca.frame_index_ != cb.frame_index_) continue;
      key_b_.clear();
      cb.append_state(key_b_);
      if (key_a_ != key_b_) continue;
      taken[b] = true;
      members.push_back(rest[b]);
    }
    if (members.size() < 2) continue;

    int gi = -1;
    for (std::size_t s = 0; s < groups_.size(); ++s) {
      if (!groups_[s]) {
        gi = static_cast<int>(s);
        break;
      }
    }
    if (gi < 0) {
      gi = static_cast<int>(groups_.size());
      groups_.emplace_back();
    }
    auto g = std::make_unique<Group>();
    g->scratch = std::make_unique<EventLog>();
    g->shadow = std::make_unique<CanController>(ca.cfg_, *g->scratch);
    g->shadow->copy_runtime_state_from(ca);
    g->shadow->frame_index_ = ca.frame_index_;
    g->live = true;
    groups_[gi] = std::move(g);
    for (std::uint32_t m : members) add_member(gi, m);
  }
}

void FastKernel::ensure_prev(Group& g) {
  if (!g.prev) {
    g.prev = std::make_unique<CanController>(g.shadow->cfg_, *g.scratch);
  }
}

bool FastKernel::all_quiescent() const {
  for (const auto& gp : groups_) {
    if (!gp || !gp->live) continue;
    const CanController& sh = *gp->shadow;
    if (sh.active() && !sh.quiescent()) return false;
  }
  for (std::uint32_t i : singles_) {
    const Simulator::Slot& s = sim_.nodes_[i];
    if (s.crashed || !s.node->active()) continue;
    if (!s.node->quiescent()) return false;
  }
  return true;
}

void FastKernel::step() {
  if (topo_dirty_) sync_topology();
  drain_pending();
  if (sim_.now_ >= next_rebuild_) rebuild_groups();
  if (singles_dirty_) rebuild_singles();
  FaultInjector& inj = sim_.effective_injector();
  const bool quiet_inj = inj.quiet_until(sim_.now_) > sim_.now_;
  if (quiet_inj && sim_.observers_.empty() && all_quiescent()) {
    ++sim_.now_;  // whole-bus idle fixed point: the bit is a clock tick
    return;
  }
  step_bit(inj, quiet_inj);
}

void FastKernel::run(BitTime n) {
  const BitTime end = sim_.now_ + n;
  while (sim_.now_ < end) {
    if (topo_dirty_) sync_topology();
    drain_pending();
    if (sim_.now_ >= next_rebuild_) rebuild_groups();
    if (singles_dirty_) rebuild_singles();
    FaultInjector& inj = sim_.effective_injector();
    const BitTime quiet = inj.quiet_until(sim_.now_);
    if (sim_.observers_.empty() && quiet > sim_.now_) {
      // Idle jump: everything is in its fixed point, so the clock can leap
      // to the first instant anything could happen — the end of the quiet
      // promise, a scheduled crash, or the caller's horizon.
      if (all_quiescent()) {
        const BitTime target =
            std::min({end, quiet, crash_horizon()});
        if (target > sim_.now_) {
          sim_.now_ = target;
          continue;
        }
      }
      if (try_word_batch(end, quiet) > 0) continue;
    }
    const bool quiet_inj = quiet > sim_.now_;
    if (quiet_inj && sim_.observers_.empty() && all_quiescent()) {
      ++sim_.now_;
      continue;
    }
    step_bit(inj, quiet_inj);
  }
}

BitTime FastKernel::try_word_batch(BitTime end, BitTime quiet_horizon) {
  // Preconditions: exactly one transmitter, inside the stuffed body, and
  // every other on-bus participant a passive CAN listener that (a) drives
  // recessive, (b) cannot start driving otherwise without a non-silent
  // sample first, and (c) has its silence re-checked per bit.
  const BitTime t0 = sim_.now_;
  ++batch_seq_;
  batch_groups_.clear();
  batch_followers_.clear();
  CanController* tx = nullptr;
  for (std::size_t i = 0; i < sim_.nodes_.size(); ++i) {
    const Simulator::Slot& s = sim_.nodes_[i];
    if (s.crashed || !s.node->active()) continue;
    const int gi = group_of_[i];
    if (gi >= 0) {
      Group& g = *groups_[gi];
      if (g.mark == batch_seq_) continue;
      g.mark = batch_seq_;
      CanController& sh = *g.shadow;
      if (sh.st_ == CanController::St::RxTail && sh.will_ack_) return 0;
      if (!is_recessive(sh.drive(t0))) return 0;  // pure: queue is empty
      batch_groups_.push_back(&g);
      continue;
    }
    CanController* c = ctrl_[i];
    if (c == nullptr) return 0;  // generic participant: per-bit only
    if (c->st_ == CanController::St::Tx) {
      if (tx != nullptr) return 0;  // two transmitters: arbitration
      tx = c;
      continue;
    }
    // A queued frame may quietly reach drive() through Idle; a mid-frame
    // receiver cannot (acceptance/rejection is never silent).
    if (!c->queue_.empty() && c->st_ != CanController::St::Rx &&
        c->st_ != CanController::St::RxTail &&
        c->st_ != CanController::St::RxEof) {
      return 0;
    }
    if (c->st_ == CanController::St::RxTail && c->will_ack_) return 0;
    if (!is_recessive(c->drive(t0))) return 0;
    batch_followers_.push_back(c);
  }
  if (tx == nullptr) return 0;

  BitTime cap = std::min(end, quiet_horizon);
  cap = std::min(cap, crash_horizon());
  const BitTime span = cap - t0;
  int len = tx->txe_.stuffed_bits_left();
  if (static_cast<BitTime>(len) > span) len = static_cast<int>(span);
  if (len > 64) len = 64;
  if (len < kMinBatchBits) return 0;

  // Capture the transmitter's next wire levels into one word.  With a
  // lone transmitter and recessive listeners the wired-AND resolution of
  // each of these bits *is* the transmitted level.
  std::uint64_t word = 0;
  for (int j = 0; j < len; ++j) {
    if (is_dominant(tx->txe_.level_at(j))) word |= std::uint64_t{1} << j;
  }

  BitTime consumed = 0;
  for (int j = 0; j < len; ++j) {
    const Level lvl =
        ((word >> j) & 1) != 0 ? Level::Dominant : Level::Recessive;
    bool silent = true;
    for (Group* g : batch_groups_) {
      if (!g->shadow->sample_is_quiet(lvl)) {
        silent = false;
        break;
      }
    }
    if (silent) {
      for (CanController* c : batch_followers_) {
        if (!c->sample_is_quiet(lvl)) {
          silent = false;
          break;
        }
      }
    }
    if (!silent) break;  // fall back to the full per-bit path from here

    const BitTime t = sim_.now_;
    tx->sample(t, lvl);  // view == sent inside the body: silent by contract
    for (Group* g : batch_groups_) {
      const std::size_t before = g->scratch->events().size();
      g->shadow->sample(t, lvl);
      if (g->scratch->events().size() != before) {
        throw std::logic_error(
            "fast kernel: quiet-sample misprediction in word batch");
      }
    }
    for (CanController* c : batch_followers_) {
      std::size_t before = 0;
      if (paranoid()) before = c->log_->events().size();
      c->sample(t, lvl);
      if (paranoid() && c->log_->events().size() != before) {
        throw std::logic_error(
            "fast kernel: follower emitted during word batch");
      }
    }
    ++sim_.now_;
    ++consumed;
  }
  return consumed;
}

void FastKernel::step_bit(FaultInjector& inj, bool quiet_inj) {
  const BitTime t = sim_.now_;
  const std::size_t n = sim_.nodes_.size();
  const bool records = !sim_.observers_.empty();
  if (quiet_inj && !records) {
    // No injector calls and no trace record: every view equals the bus
    // level, so the O(n) scratch arrays below are pure overhead.
    step_bit_quiet();
    return;
  }
  const bool want_infos = records || !quiet_inj;

  views_.assign(n, Level::Recessive);
  active_.assign(n, false);
  if (records) {
    driven_.assign(n, Level::Recessive);
    disturbed_.assign(n, false);
  }
  if (want_infos) infos_.resize(n);

  // Phase 1: drive.  Group shadows drive once for all members (pure: a
  // grouped queue is empty by construction, so drive() cannot start a
  // transmission); singletons drive exactly as the reference kernel.
  Level bus = Level::Recessive;
  for (auto& gp : groups_) {
    if (!gp || !gp->live) continue;
    Group& g = *gp;
    g.dirty = false;
    g.active = g.shadow->active();
    g.driven = Level::Recessive;
    if (!g.active) continue;
    g.driven = g.shadow->drive(t);
    if (want_infos) g.info = g.shadow->bit_info();
    bus = bus & g.driven;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int gi = group_of_[i];
    if (gi >= 0) {
      const Group& g = *groups_[gi];
      if (g.active) {
        active_[i] = true;
        if (want_infos) infos_[i] = g.info;
        if (records) driven_[i] = g.driven;
      } else if (records) {
        infos_[i] = off_info();
      }
      continue;
    }
    Simulator::Slot& s = sim_.nodes_[i];
    if (s.crashed || !s.node->active()) {
      if (records) infos_[i] = off_info();
      continue;
    }
    active_[i] = true;
    const Level d = s.node->drive(t);
    if (records) driven_[i] = d;
    if (want_infos) infos_[i] = s.node->bit_info();
    bus = bus & d;
  }

  // Phase 2a: per-node views.  Injector calls happen for every active
  // node in attach order — the exact reference sequence, so stochastic
  // injectors consume an identical RNG stream.  A disturbed group member
  // is ejected: it adopts the (pre-sample) shadow state and finishes the
  // bit as a singleton.
  if (!quiet_inj) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!active_[i]) {
        views_[i] = bus;
        continue;
      }
      const bool f = inj.flips(sim_.nodes_[i].node->id(), t, infos_[i], bus);
      if (f) {
        views_[i] = flip(bus);
        if (records) disturbed_[i] = true;
        if (group_of_[i] >= 0) drop_member(static_cast<std::uint32_t>(i));
      } else {
        views_[i] = bus;
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) views_[i] = bus;
  }

  // Phase 2b: group trials.  A bit classified quiet advances the shadow
  // with a hard assertion; anything else is trialed against the muted
  // scratch log, and only if events surfaced do members re-run the bit.
  for (auto& gp : groups_) {
    if (!gp || !gp->live || !gp->active) continue;
    Group& g = *gp;
    const std::size_t before = g.scratch->events().size();
    if (g.shadow->sample_is_quiet(bus)) {
      g.shadow->sample(t, bus);
      if (g.scratch->events().size() != before) {
        throw std::logic_error("fast kernel: quiet-sample misprediction");
      }
    } else {
      ensure_prev(g);
      g.prev->copy_runtime_state_from(*g.shadow);
      g.shadow->sample(t, bus);
      if (g.scratch->events().size() != before) {
        g.dirty = true;
        for (std::uint32_t m : g.members) ctrl_[m]->proxy_ = g.prev.get();
      }
    }
  }

  // Phase 2c: sample pass in attach order.  Dirty-group members re-run
  // the bit for real (events, handlers, journals) from the pre-sample
  // state and — unless a handler mutated them — go back to sharing the
  // advanced shadow.  Clean-group members are already done.
  for (std::size_t i = 0; i < n; ++i) {
    const int gi = group_of_[i];
    if (gi >= 0) {
      Group& g = *groups_[gi];
      if (!g.active || !g.dirty) continue;
      CanController* c = ctrl_[i];
      if (c->proxy_ != nullptr) {
        c->proxy_ = nullptr;
        c->copy_runtime_state_from(*g.prev);
      }
      c->sample(t, views_[i]);
      if (!c->fast_touched_) {
        if (paranoid()) {
          key_a_.clear();
          key_b_.clear();
          c->append_state(key_a_);
          g.shadow->append_state(key_b_);
          if (key_a_ != key_b_ || c->frame_index_ != g.shadow->frame_index_) {
            throw std::logic_error(
                "fast kernel: member diverged from group shadow");
          }
        }
        c->proxy_ = g.shadow.get();
      }
      continue;
    }
    if (!active_[i]) continue;
    sim_.nodes_[i].node->sample(t, views_[i]);
  }
  for (auto& gp : groups_) {
    if (gp && gp->live && gp->dirty) gp->scratch->clear();
  }

  // Phase 3: trace.
  if (records) {
    BitRecord rec;
    rec.t = t;
    rec.bus = bus;
    rec.driven = driven_;
    rec.view = views_;
    rec.info = infos_;
    rec.disturbed = disturbed_;
    rec.active = active_;
    for (TraceObserver* obs : sim_.observers_) obs->on_bit(rec);
  }

  ++sim_.now_;
}

void FastKernel::step_bit_quiet() {
  const BitTime t = sim_.now_;

  // Phase 1: drive.  Shadows once per group, then the cached ungrouped
  // list; participation is latched exactly as in the full path.
  Level bus = Level::Recessive;
  for (auto& gp : groups_) {
    if (!gp || !gp->live) continue;
    Group& g = *gp;
    g.dirty = false;
    g.active = g.shadow->active();
    if (g.active) bus = bus & g.shadow->drive(t);
  }
  live_singles_.clear();
  for (std::uint32_t i : singles_) {
    const Simulator::Slot& s = sim_.nodes_[i];
    if (s.crashed || !s.node->active()) continue;
    live_singles_.push_back(i);
    bus = bus & s.node->drive(t);
  }

  // Phase 2b: group trials — identical logic to the full path.
  bool any_dirty = false;
  for (auto& gp : groups_) {
    if (!gp || !gp->live || !gp->active) continue;
    Group& g = *gp;
    const std::size_t before = g.scratch->events().size();
    if (g.shadow->sample_is_quiet(bus)) {
      g.shadow->sample(t, bus);
      if (g.scratch->events().size() != before) {
        throw std::logic_error("fast kernel: quiet-sample misprediction");
      }
    } else {
      ensure_prev(g);
      g.prev->copy_runtime_state_from(*g.shadow);
      g.shadow->sample(t, bus);
      if (g.scratch->events().size() != before) {
        g.dirty = true;
        any_dirty = true;
        for (std::uint32_t m : g.members) ctrl_[m]->proxy_ = g.prev.get();
      }
    }
  }

  // Phase 2c: sample pass.  With no dirty group only the live singles
  // sample; otherwise fall back to the attach-order interleave so member
  // re-runs and singleton events serialize exactly as the reference.
  if (!any_dirty) {
    for (std::uint32_t i : live_singles_) sim_.nodes_[i].node->sample(t, bus);
  } else {
    std::size_t ls = 0;
    const std::size_t n = sim_.nodes_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const int gi = group_of_[i];
      if (gi >= 0) {
        Group& g = *groups_[gi];
        if (!g.active || !g.dirty) continue;
        CanController* c = ctrl_[i];
        if (c->proxy_ != nullptr) {
          c->proxy_ = nullptr;
          c->copy_runtime_state_from(*g.prev);
        }
        c->sample(t, bus);
        if (!c->fast_touched_) {
          if (paranoid()) {
            key_a_.clear();
            key_b_.clear();
            c->append_state(key_a_);
            g.shadow->append_state(key_b_);
            if (key_a_ != key_b_ ||
                c->frame_index_ != g.shadow->frame_index_) {
              throw std::logic_error(
                  "fast kernel: member diverged from group shadow");
            }
          }
          c->proxy_ = g.shadow.get();
        }
        continue;
      }
      if (ls < live_singles_.size() && live_singles_[ls] == i) {
        ++ls;
        sim_.nodes_[i].node->sample(t, bus);
      }
    }
    for (auto& gp : groups_) {
      if (gp && gp->live && gp->dirty) gp->scratch->clear();
    }
  }

  ++sim_.now_;
}

void FastKernel::flush() {
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    if (!groups_[gi] || !groups_[gi]->live) continue;
    for (std::uint32_t m : groups_[gi]->members) {
      materialize(*ctrl_[m]);
      group_of_[m] = -1;
    }
    groups_[gi].reset();
  }
  touched_.clear();
  singles_dirty_ = true;
  next_rebuild_ = sim_.now_;
}

std::unique_ptr<KernelBackend> make_fast_kernel(Simulator& sim) {
  return std::make_unique<FastKernel>(sim);
}

}  // namespace mcan
