// The fast kernel: an event-skipping, symmetry-grouped bit engine.
//
// Semantics are pinned to Simulator::step_reference — every observable
// (events, deliveries, traces, participant state, the clock) must be
// bit-identical; the simfast differential suite certifies this over the
// whole scenario corpus plus fixed-seed fuzz/rare campaigns.  The speed
// comes from three mechanisms:
//
//   1. *Symmetry groups.*  Controllers whose configuration and complete
//      runtime state are equal — the classic case: every receiver of a
//      saturated bus — provably evolve in lockstep while their sampled
//      views agree.  The kernel carries each group's state in one hidden
//      "shadow" controller and advances it once per bit instead of once
//      per member.  Members point at the shadow (CanController::proxy_);
//      reads go through it, and any external mutation first materializes
//      the state back (detach_shared_state) and tells the kernel to eject
//      the member.  Bits whose sample could emit an event or fire a
//      handler are *trialed* on the shadow against a muted scratch log;
//      if anything surfaced, members re-run the bit for real, in attach
//      order, so the shared event log and the delivery journals see
//      exactly the reference sequence.
//
//   2. *Event skipping.*  When every participant is in its idle fixed
//      point and the injector promises a disturbance-free stretch
//      (FaultInjector::quiet_until), whole-bus idle advances the clock
//      without touching any node — O(1) per bit from step(), one jump to
//      the horizon from run().
//
//   3. *Word batching.*  A lone transmitter inside the stuffed body
//      (SOF..CRC) with only passive listeners on the bus has its next
//      <= 64 wire levels captured into one machine word from the
//      precomputed TxEngine stream; the kernel replays them without the
//      per-bit drive/resolve/flip scaffolding, falling back to the full
//      path the moment any listener's sample stops being silent.
//
// Mid-bit caveat (documented, certified empirically): on a bit where a
// group stays silent, member state advances at whole-bit granularity —
// a delivery handler running mid-bit on another node observes a silent
// group member's *end-of-bit* state.  No engine in this repo reads a
// third node's counters from inside a handler; the differential suite
// would catch one that starts to.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"

namespace mcan {

class FastKernel final : public KernelBackend {
 public:
  explicit FastKernel(Simulator& sim);
  ~FastKernel() override;

  void step() override;
  void run(BitTime n) override;
  void on_attach() override;
  void flush() override;

  /// Called by CanController::detach_shared_state when a grouped member is
  /// externally mutated: the member has already materialized its state;
  /// the kernel ejects it from its group before the next bit.
  void note_extern_mutation(std::uint32_t index);

  /// Paranoid mode: after every member re-run, verify the member's state
  /// digest against the group shadow, and re-check silence promises in the
  /// word-batched path.  Costly; the differential tests switch it on.
  static void set_paranoid(bool on);
  [[nodiscard]] static bool paranoid();

 private:
  struct Group {
    std::unique_ptr<EventLog> scratch;        ///< muted shadow event sink
    std::unique_ptr<CanController> shadow;    ///< carries the shared state
    std::unique_ptr<CanController> prev;      ///< pre-sample copy for re-runs
    std::vector<std::uint32_t> members;       ///< slot indices, ascending
    bool live = false;
    std::uint64_t mark = 0;                   ///< batch-scan dedup stamp
    // Per-bit scratch.
    bool active = false;
    Level driven = Level::Recessive;
    NodeBitInfo info;
    bool dirty = false;
  };

  void sync_topology();
  void drain_pending();
  void rebuild_groups();
  void add_member(int gi, std::uint32_t idx);
  void drop_member(std::uint32_t idx);
  void materialize(CanController& c);
  [[nodiscard]] bool all_quiescent() const;
  [[nodiscard]] bool compatible(const CanController& a,
                                const CanController& b) const;
  void ensure_prev(Group& g);
  void rebuild_singles();
  void step_bit(FaultInjector& inj, bool quiet_inj);
  /// The quiet-bit specialization of step_bit: no injector calls, no trace
  /// records, so the per-bit work touches only group shadows and the cached
  /// ungrouped list — nothing scales with the member count.
  void step_bit_quiet();
  [[nodiscard]] BitTime crash_horizon() const;
  /// Replay up to 64 transmitter body bits in one word; returns the number
  /// of bits consumed (0 = preconditions not met, caller takes the per-bit
  /// path).
  BitTime try_word_batch(BitTime end, BitTime quiet_horizon);

  Simulator& sim_;
  std::vector<CanController*> ctrl_;       ///< per slot; null for non-CAN
  std::vector<int> group_of_;              ///< per slot; -1 = ungrouped
  std::vector<std::unique_ptr<Group>> groups_;
  std::vector<std::uint32_t> touched_;     ///< externally mutated members
  std::vector<std::uint32_t> singles_;     ///< ungrouped slots, ascending
  std::vector<std::uint32_t> live_singles_;  ///< per-bit: active singles
  bool singles_dirty_ = true;
  BitTime next_rebuild_ = 0;
  bool topo_dirty_ = true;
  std::uint64_t batch_seq_ = 0;

  // Word-batch entity lists, rebuilt per attempt (slot order).
  std::vector<Group*> batch_groups_;
  std::vector<CanController*> batch_followers_;

  // Per-bit scratch buffers (mirrors the reference kernel's).
  std::vector<Level> driven_;
  std::vector<NodeBitInfo> infos_;
  std::vector<Level> views_;
  std::vector<bool> active_;
  std::vector<bool> disturbed_;
  std::string key_a_, key_b_;              ///< digest scratch
};

/// Factory used by Network when the process-global kernel default says
/// Fast (sim/kernel.hpp); keeps call sites free of the concrete type.
[[nodiscard]] std::unique_ptr<KernelBackend> make_fast_kernel(Simulator& sim);

}  // namespace mcan
