// Kernel selection: which bit-engine executes a Simulator.
//
// Two kernels exist.  The *reference* kernel (Simulator::step_reference) is
// the specification: a plain per-bit loop over every participant.  The
// *fast* kernel (src/sim/fast/) is an optimization of the same semantics —
// symmetry-grouped receivers, event-skipping over disturbance-free
// stretches, word-batched body replay — certified bit-identical by the
// simfast differential suite.  Selection is a process-global default read
// by Network's constructor, so every engine that builds buses through
// Network (scenario runner, fuzzer, rare-event trials, model checker, rsm,
// attack sweeps, serve backends) inherits one `--kernel {ref,fast}` flag.
#pragma once

#include <optional>
#include <string>

namespace mcan {

enum class KernelKind : int {
  Ref,   ///< reference per-bit loop (the specification)
  Fast,  ///< event-skipping batched kernel (certified identical)
};

/// The process-global kernel default (initially Ref).  Thread-safe reads;
/// set it once at CLI-parse time, before any bus is built.
[[nodiscard]] KernelKind default_kernel();
void set_default_kernel(KernelKind k);

/// "ref" / "fast".
[[nodiscard]] const char* kernel_name(KernelKind k);

/// Parse a --kernel value; nullopt on anything but "ref"/"fast".
[[nodiscard]] std::optional<KernelKind> parse_kernel_name(
    const std::string& token);

}  // namespace mcan
