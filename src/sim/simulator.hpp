// The bit-synchronous simulation kernel.
//
// Owns nothing: participants, injector and trace observers are attached by
// reference and must outlive the simulator.  Each step() advances global
// time by one bit:
//   1. every active participant drives a level;
//   2. the bus resolves by wired-AND (dominant wins);
//   3. every active participant samples its own — possibly disturbed —
//      view of the bus and advances its FSM.
// Crashes are scheduled against absolute bit times and take effect before
// the drive phase of that bit.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/bus.hpp"
#include "sim/injector.hpp"
#include "util/bit.hpp"

namespace mcan {

class TraceObserver;
class FastKernel;

/// A pluggable bit engine.  The simulator's own per-bit loop
/// (step_reference) is the specification; an installed backend replaces it
/// with an optimized execution of the *same* semantics — every observable
/// (events, traces, deliveries, participant state, clock) must be
/// bit-identical.  Backends are owned by the simulator and torn down (after
/// flushing any internally shared state back into the participants) before
/// the participants they reference die.
class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  /// Advance exactly one bit time.
  virtual void step() = 0;

  /// Advance `n` bit times; the only entry point allowed to fast-forward
  /// multiple bits at once (per-bit predicates don't exist here).
  virtual void run(BitTime n) = 0;

  /// The participant topology changed (attach).
  virtual void on_attach() = 0;

  /// Write any internally shared participant state back into the real
  /// participants, so they can be read (or the backend destroyed) safely.
  virtual void flush() = 0;
};

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  /// Attach a participant (non-owning; must outlive the simulator).
  void attach(BusParticipant& node);

  /// Install the fault injector (non-owning).  Default: clean channel.
  void set_injector(FaultInjector& inj) { injector_ = &inj; }

  /// Install a trace observer (non-owning).  Optional.
  void add_observer(TraceObserver& obs) { observers_.push_back(&obs); }

  /// Detach a previously added observer (no-op if absent), so an observer
  /// with a shorter lifetime than the simulator can unhook itself.
  void remove_observer(TraceObserver& obs);

  /// Mark a node crashed (fail-silent) from bit time `t` on.
  void schedule_crash(NodeId node, BitTime t);

  /// Install (or, with nullptr, remove) a kernel backend.  The previous
  /// backend is flushed and destroyed.  Install after attaching the
  /// participants the backend should know about; later attaches are
  /// forwarded via KernelBackend::on_attach.
  void install_kernel(std::unique_ptr<KernelBackend> k);
  [[nodiscard]] KernelBackend* kernel() const { return kernel_.get(); }

  /// Advance one bit time.
  void step();

  /// Advance `n` bit times.
  void run(BitTime n);

  /// Run until `pred()` is true or `max_bits` elapsed; returns true if the
  /// predicate fired.
  bool run_until(const std::function<bool()>& pred, BitTime max_bits);

  [[nodiscard]] BitTime now() const { return now_; }

  /// Set the clock without stepping.  Model-checker use only: after cloning
  /// all participants' runtime state from a template bus that was stepped to
  /// `t`, warping aligns this simulator's clock so absolute-time fault
  /// targets and traces line up with the cloned state.  Meaningless (and
  /// unsound) unless every attached participant's state matches time `t`.
  void warp_to(BitTime t) { now_ = t; }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// True iff the node was administratively crashed by schedule_crash.
  [[nodiscard]] bool crashed(NodeId node) const;

 private:
  friend class FastKernel;

  struct Slot {
    BusParticipant* node = nullptr;
    BitTime crash_at = kNoTime;
    bool crashed = false;
  };

  /// The specification kernel: one bit, full per-participant loop.
  void step_reference();

  /// Fire crashes scheduled at or before now_ (cheap when none pending).
  void activate_crashes();

  [[nodiscard]] FaultInjector& effective_injector() {
    return injector_ ? *injector_ : no_faults_;
  }

  std::vector<Slot> nodes_;
  NoFaults no_faults_;
  FaultInjector* injector_ = nullptr;
  std::vector<TraceObserver*> observers_;
  BitTime now_ = 0;
  std::unique_ptr<KernelBackend> kernel_;
  int pending_crashes_ = 0;  ///< scheduled, not yet fired

  // Reference-kernel idle hint: set when the previous bit resolved
  // recessive, so the quiescence scan only runs when the bus is plausibly
  // idle and saturated workloads never pay for it.
  bool maybe_idle_ = true;

  // Scratch buffers reused across steps to avoid per-bit allocation.
  std::vector<Level> driven_;
  std::vector<NodeBitInfo> infos_;
  std::vector<Level> views_;
  std::vector<bool> active_;
  std::vector<bool> disturbed_;
};

/// Per-bit record handed to trace observers.
struct BitRecord {
  BitTime t = 0;
  Level bus = Level::Recessive;
  // Parallel arrays, one entry per attached node (in attach order).
  std::vector<Level> driven;
  std::vector<Level> view;
  std::vector<NodeBitInfo> info;
  std::vector<bool> disturbed;
  std::vector<bool> active;
};

class TraceObserver {
 public:
  virtual ~TraceObserver() = default;
  virtual void on_bit(const BitRecord& rec) = 0;
};

}  // namespace mcan
