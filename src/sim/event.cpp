#include "sim/event.hpp"

#include <cstdio>

namespace mcan {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::SofSent: return "SofSent";
    case EventKind::SofSeen: return "SofSeen";
    case EventKind::ArbitrationLost: return "ArbitrationLost";
    case EventKind::ErrorDetected: return "ErrorDetected";
    case EventKind::ErrorFlagStart: return "ErrorFlagStart";
    case EventKind::PassiveFlagStart: return "PassiveFlagStart";
    case EventKind::OverloadFlagStart: return "OverloadFlagStart";
    case EventKind::ExtendedFlagStart: return "ExtendedFlagStart";
    case EventKind::SamplingDecision: return "SamplingDecision";
    case EventKind::FrameAccepted: return "FrameAccepted";
    case EventKind::FrameRejected: return "FrameRejected";
    case EventKind::TxSuccess: return "TxSuccess";
    case EventKind::TxRejected: return "TxRejected";
    case EventKind::TxRetransmit: return "TxRetransmit";
    case EventKind::AckSent: return "AckSent";
    case EventKind::EnteredErrorPassive: return "EnteredErrorPassive";
    case EventKind::EnteredBusOff: return "EnteredBusOff";
    case EventKind::WarningSwitchOff: return "WarningSwitchOff";
    case EventKind::Crashed: return "Crashed";
    case EventKind::BusOffRecovered: return "BusOffRecovered";
  }
  return "?";
}

std::string Event::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%llu node=%u ",
                static_cast<unsigned long long>(t), node);
  std::string s = buf;
  s += event_kind_name(kind);
  if (!detail.empty()) {
    s += " (";
    s += detail;
    s += ')';
  }
  if (frame) {
    s += ' ';
    s += frame->to_string();
  }
  return s;
}

std::vector<Event> EventLog::filter(EventKind kind,
                                    std::optional<NodeId> node) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind && (!node || e.node == *node)) out.push_back(e);
  }
  return out;
}

std::size_t EventLog::count(EventKind kind, std::optional<NodeId> node) const {
  std::size_t n = 0;
  for (const Event& e : events_) {
    if (e.kind == kind && (!node || e.node == *node)) ++n;
  }
  return n;
}

}  // namespace mcan
