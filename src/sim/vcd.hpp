// VCD (IEEE 1364 value-change dump) export of recorded traces, so bus
// episodes can be inspected in standard waveform viewers (GTKWave et al.):
// one wire for the resolved bus, and per node its driven level, its view,
// and a disturbance marker.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace mcan {

/// Render the recorded trace as VCD text.  `labels` — one display name per
/// node (attach order); `timescale` is cosmetic (one bit time = one unit).
[[nodiscard]] std::string trace_to_vcd(const TraceRecorder& trace,
                                       const std::vector<std::string>& labels,
                                       const std::string& timescale = "1us");

/// Convenience: write to a file; returns false on I/O failure.
bool write_vcd_file(const std::string& path, const TraceRecorder& trace,
                    const std::vector<std::string>& labels);

/// A trace reconstructed from a VCD file in the trace_to_vcd() signal
/// layout (BUS plus per-node drive/view/fault wires).  FSM introspection
/// (NodeBitInfo) is not serialised in VCD, so records carry default info
/// and only record-level invariants can be checked against them.
struct VcdTrace {
  std::vector<std::string> labels;  ///< node display names, signal order
  std::vector<BitRecord> bits;
};

/// Parse VCD text; throws std::invalid_argument on malformed input or a
/// signal layout this reader does not understand.
[[nodiscard]] VcdTrace parse_vcd(const std::string& text);

/// Load and parse a VCD file; throws std::invalid_argument on I/O failure.
[[nodiscard]] VcdTrace read_vcd_file(const std::string& path);

}  // namespace mcan
