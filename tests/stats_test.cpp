// Tests for the statistics module: summaries, latency tracking and the
// bus-utilisation probe.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "invariant_gtest.hpp"

#include "analysis/stats.hpp"
#include "core/network.hpp"

namespace mcan {
namespace {

TEST(Summary, EmptyIsZero) {
  auto s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(Summary, SingleValue) {
  auto s = Summary::of({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.p50, 42.0);
  EXPECT_EQ(s.p99, 42.0);
}

TEST(Summary, Percentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  auto s = Summary::of(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
}

TEST(Summary, UnsortedInput) {
  auto s = Summary::of({5, 1, 3, 2, 4});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
}

TEST(LatencyTracker, MeasuresFirstDeliveryOnly) {
  LatencyTracker lt;
  const MessageKey k{0, 1};
  lt.on_broadcast(k, 100);
  lt.on_delivery(1, k, 150);
  lt.on_delivery(1, k, 300);  // duplicate: ignored
  lt.on_delivery(2, k, 160);
  EXPECT_EQ(lt.samples(), 2u);
  auto s = lt.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 50.0);
  EXPECT_EQ(s.max, 60.0);
}

TEST(LatencyTracker, UnknownMessageIgnored) {
  LatencyTracker lt;
  lt.on_delivery(1, MessageKey{9, 9}, 10);
  EXPECT_EQ(lt.summary().count, 0u);
}

TEST(StreamingMoments, MatchesClosedForm) {
  StreamingMoments m;
  for (int i = 1; i <= 10; ++i) m.add(i);
  EXPECT_EQ(m.count(), 10);
  EXPECT_NEAR(m.mean(), 5.5, 1e-12);
  // Sample variance of 1..10 with the n-1 denominator.
  EXPECT_NEAR(m.variance(), 55.0 / 6.0, 1e-12);
  EXPECT_NEAR(m.std_error(), std::sqrt(55.0 / 60.0), 1e-12);
}

TEST(StreamingMoments, EmptyAndSingleAreZero) {
  StreamingMoments m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_EQ(m.mean(), 0.0);
  EXPECT_EQ(m.variance(), 0.0);
  m.add(7.25);
  EXPECT_EQ(m.mean(), 7.25);
  EXPECT_EQ(m.variance(), 0.0);
  EXPECT_EQ(m.std_error(), 0.0);
}

TEST(StreamingMoments, SerializeRoundTripIsExact) {
  StreamingMoments m;
  m.add(1.0 / 3.0);
  m.add(-2.718281828459045);
  m.add(1e-300);
  StreamingMoments back;
  ASSERT_TRUE(StreamingMoments::parse(m.serialize(), back));
  EXPECT_EQ(m, back);  // bit-for-bit, thanks to %la hex floats
  // Continuing both from the restored state stays bit-identical.
  m.add(0.1);
  back.add(0.1);
  EXPECT_EQ(m, back);
}

TEST(StreamingMoments, ParseRejectsGarbage) {
  StreamingMoments m;
  EXPECT_FALSE(StreamingMoments::parse("", m));
  EXPECT_FALSE(StreamingMoments::parse("3 nonsense", m));
}

TEST(WilsonInterval, KnownValues) {
  // Zero hits: lower edge pinned at 0, upper = z^2 / (n + z^2).
  const auto [lo0, hi0] = wilson_interval(0, 100);
  EXPECT_EQ(lo0, 0.0);
  const double z2 = 1.96 * 1.96;
  EXPECT_NEAR(hi0, z2 / (100.0 + z2), 1e-12);
  // All hits mirrors it at 1.
  const auto [lo1, hi1] = wilson_interval(100, 100);
  EXPECT_NEAR(hi1, 1.0, 1e-12);
  EXPECT_NEAR(lo1, 1.0 - z2 / (100.0 + z2), 1e-12);
  // A half split brackets 0.5 symmetrically.
  const auto [lo, hi] = wilson_interval(50, 100);
  EXPECT_LT(lo, 0.5);
  EXPECT_GT(hi, 0.5);
  EXPECT_NEAR((lo + hi) / 2.0, 0.5, 1e-12);
  // No trials: the vacuous interval.
  EXPECT_EQ(wilson_interval(0, 0), (std::pair<double, double>{0.0, 1.0}));
}

TEST(RareAccumulator, UnweightedUsesWilson) {
  RareAccumulator acc;
  for (int i = 0; i < 3; ++i) acc.add(1.0);
  for (int i = 0; i < 7; ++i) acc.add(0.0);
  const RareEstimate e = acc.estimate();
  EXPECT_EQ(e.trials, 10);
  EXPECT_EQ(e.hits, 3);
  EXPECT_NEAR(e.p_hat, 0.3, 1e-12);
  const auto [lo, hi] = wilson_interval(3, 10);
  EXPECT_NEAR(e.ci_lo, lo, 1e-12);
  EXPECT_NEAR(e.ci_hi, hi, 1e-12);
}

TEST(RareAccumulator, ZeroHitsStillBoundsFromAbove) {
  RareAccumulator acc;
  for (int i = 0; i < 1000; ++i) acc.add(0.0);
  const RareEstimate e = acc.estimate();
  EXPECT_EQ(e.p_hat, 0.0);
  EXPECT_EQ(e.ci_lo, 0.0);
  EXPECT_GT(e.ci_hi, 0.0);  // Wilson upper bound, not a useless [0, 0]
  EXPECT_LT(e.ci_hi, 0.01);
}

TEST(RareAccumulator, WeightedUsesLogNormalCI) {
  RareAccumulator acc;
  acc.add(2e-6);
  acc.add(0.0);
  acc.add(4e-6);
  acc.add(0.0);
  const RareEstimate e = acc.estimate();
  EXPECT_NEAR(e.p_hat, 1.5e-6, 1e-18);
  ASSERT_GT(e.std_err, 0.0);
  const double delta = 1.96 * e.std_err / e.p_hat;
  EXPECT_NEAR(e.ci_lo, e.p_hat * std::exp(-delta), 1e-18);
  EXPECT_NEAR(e.ci_hi, e.p_hat * std::exp(delta), 1e-18);
  EXPECT_GT(e.ci_lo, 0.0);  // multiplicative bars never cross zero
}

TEST(RareAccumulator, EssDiagnosesWeightDegeneracy) {
  RareAccumulator even;
  even.add(0.5);
  even.add(0.5);
  even.add(0.0);
  EXPECT_NEAR(even.estimate().ess, 2.0, 1e-12);

  RareAccumulator skewed;
  skewed.add(0.001);
  skewed.add(100.0);  // one outlier dominates
  const RareEstimate e = skewed.estimate();
  EXPECT_NEAR(e.ess, 1.0, 0.01);
  EXPECT_EQ(e.max_weight, 100.0);
}

TEST(RareAccumulator, SerializeRoundTripIsExact) {
  RareAccumulator acc;
  acc.add(1.0 / 7.0);
  acc.add(0.0);
  acc.add(3.14159e-9);
  RareAccumulator back;
  ASSERT_TRUE(RareAccumulator::parse(acc.serialize(), back));
  EXPECT_EQ(acc, back);
  acc.add(2.5e-4);
  back.add(2.5e-4);
  EXPECT_EQ(acc, back);
  EXPECT_FALSE(RareAccumulator::parse("1 2 3", back));
}

TEST(UtilizationProbe, IdleBusIsZero) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  UtilizationProbe probe;
  net.sim().add_observer(probe);
  net.sim().run(100);
  EXPECT_EQ(probe.total_bits(), 100u);
  EXPECT_EQ(probe.busy_bits(), 0u);
  EXPECT_EQ(probe.utilization(), 0.0);
}

TEST(UtilizationProbe, FrameCountsAsBusy) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  UtilizationProbe probe;
  net.sim().add_observer(probe);
  net.node(0).enqueue(Frame::make_blank(0x10, 1));
  net.run_until_quiet();
  EXPECT_GT(probe.busy_bits(), 40u);
  EXPECT_LT(probe.busy_bits(), probe.total_bits());
  EXPECT_GT(probe.dominant_bits(), 0u);
  EXPECT_GT(probe.utilization(), 0.0);
}

TEST(UtilizationProbe, BusyScalesWithTraffic) {
  Network one(2, ProtocolParams::standard_can());
  ScopedInvariants one_invariants(one);
  Network three(2, ProtocolParams::standard_can());
  ScopedInvariants three_invariants(three);
  UtilizationProbe p1, p3;
  one.sim().add_observer(p1);
  three.sim().add_observer(p3);
  one.node(0).enqueue(Frame::make_blank(0x10, 1));
  for (int i = 0; i < 3; ++i) {
    three.node(0).enqueue(Frame::make_blank(0x10 + static_cast<std::uint32_t>(i), 1));
  }
  one.run_until_quiet();
  three.run_until_quiet();
  EXPECT_GT(p3.busy_bits(), 2 * p1.busy_bits());
}

}  // namespace
}  // namespace mcan
