// Tests for the statistics module: summaries, latency tracking and the
// bus-utilisation probe.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "analysis/stats.hpp"
#include "core/network.hpp"

namespace mcan {
namespace {

TEST(Summary, EmptyIsZero) {
  auto s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(Summary, SingleValue) {
  auto s = Summary::of({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.p50, 42.0);
  EXPECT_EQ(s.p99, 42.0);
}

TEST(Summary, Percentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  auto s = Summary::of(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
}

TEST(Summary, UnsortedInput) {
  auto s = Summary::of({5, 1, 3, 2, 4});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
}

TEST(LatencyTracker, MeasuresFirstDeliveryOnly) {
  LatencyTracker lt;
  const MessageKey k{0, 1};
  lt.on_broadcast(k, 100);
  lt.on_delivery(1, k, 150);
  lt.on_delivery(1, k, 300);  // duplicate: ignored
  lt.on_delivery(2, k, 160);
  EXPECT_EQ(lt.samples(), 2u);
  auto s = lt.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 50.0);
  EXPECT_EQ(s.max, 60.0);
}

TEST(LatencyTracker, UnknownMessageIgnored) {
  LatencyTracker lt;
  lt.on_delivery(1, MessageKey{9, 9}, 10);
  EXPECT_EQ(lt.summary().count, 0u);
}

TEST(UtilizationProbe, IdleBusIsZero) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  UtilizationProbe probe;
  net.sim().add_observer(probe);
  net.sim().run(100);
  EXPECT_EQ(probe.total_bits(), 100u);
  EXPECT_EQ(probe.busy_bits(), 0u);
  EXPECT_EQ(probe.utilization(), 0.0);
}

TEST(UtilizationProbe, FrameCountsAsBusy) {
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  UtilizationProbe probe;
  net.sim().add_observer(probe);
  net.node(0).enqueue(Frame::make_blank(0x10, 1));
  net.run_until_quiet();
  EXPECT_GT(probe.busy_bits(), 40u);
  EXPECT_LT(probe.busy_bits(), probe.total_bits());
  EXPECT_GT(probe.dominant_bits(), 0u);
  EXPECT_GT(probe.utilization(), 0.0);
}

TEST(UtilizationProbe, BusyScalesWithTraffic) {
  Network one(2, ProtocolParams::standard_can());
  ScopedInvariants one_invariants(one);
  Network three(2, ProtocolParams::standard_can());
  ScopedInvariants three_invariants(three);
  UtilizationProbe p1, p3;
  one.sim().add_observer(p1);
  three.sim().add_observer(p3);
  one.node(0).enqueue(Frame::make_blank(0x10, 1));
  for (int i = 0; i < 3; ++i) {
    three.node(0).enqueue(Frame::make_blank(0x10 + static_cast<std::uint32_t>(i), 1));
  }
  one.run_until_quiet();
  three.run_until_quiet();
  EXPECT_GT(p3.busy_bits(), 2 * p1.busy_bits());
}

}  // namespace
}  // namespace mcan
