// Adversarial attacker subsystem (src/attack/): spec parsing and DSL round
// trips, the three attacker engines, the budgeted view-flip optimizer, and
// the fault-confinement boundaries the bus-off flooder exploits.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/attack.hpp"
#include "attack/injector.hpp"
#include "attack/optimize.hpp"
#include "core/network.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracle.hpp"
#include "node/fault_confinement.hpp"
#include "scenario/dsl.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

using KV = std::map<std::string, std::string>;

// --- AttackSpec parse / render ------------------------------------------

TEST(AttackSpec, RenderParseRoundTripPerKind) {
  AttackSpec glitch;
  glitch.kind = AttackKind::Glitch;
  glitch.victim = 2;
  glitch.pos = -3;
  glitch.span = 2;
  glitch.budget = 3;
  glitch.frame = -1;
  glitch.when = GlitchWhen::Recessive;

  AttackSpec busoff;
  busoff.kind = AttackKind::BusOff;
  busoff.victim = 0;
  busoff.budget = 40;
  busoff.start = 123;

  AttackSpec spoof;
  spoof.kind = AttackKind::Spoof;
  spoof.attacker = 2;
  spoof.as = 0;
  spoof.id = 0x7A;
  spoof.seq = 1234;
  spoof.count = 3;
  spoof.dlc = 2;

  for (const AttackSpec& a : {glitch, busoff, spoof}) {
    const std::string body = render_attack(a);
    // body is "<kind> k=v ...": split the kind token off and re-parse.
    const auto sp = body.find(' ');
    ASSERT_NE(sp, std::string::npos) << body;
    KV kv;
    std::string rest = body.substr(sp + 1);
    for (std::size_t i = 0; i < rest.size();) {
      const auto end = rest.find(' ', i);
      const std::string tok = rest.substr(i, end - i);
      const auto eq = tok.find('=');
      ASSERT_NE(eq, std::string::npos) << tok;
      kv[tok.substr(0, eq)] = tok.substr(eq + 1);
      i = end == std::string::npos ? rest.size() : end + 1;
    }
    EXPECT_EQ(parse_attack(body.substr(0, sp), kv), a) << body;
  }
}

TEST(AttackSpec, UnknownKindAndFieldsAreNamed) {
  try {
    (void)parse_attack("jam", {});
    FAIL() << "unknown kind accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("glitch|busoff|spoof"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)parse_attack("glitch", KV{{"bogus", "1"}});
    FAIL() << "unknown field accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown field 'bogus'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pos="), std::string::npos)
        << "error should list the accepted fields: " << msg;
  }
  // A spoof-only field on a glitch attacker is out of vocabulary too.
  EXPECT_THROW((void)parse_attack("glitch", KV{{"seq", "900"}}),
               std::invalid_argument);
  // Bad values name the field they were given for.
  try {
    (void)parse_attack("glitch", KV{{"when", "sometimes"}});
    FAIL() << "bad when accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("field 'when'"), std::string::npos)
        << e.what();
  }
}

TEST(AttackSpec, SanitizeClampsAndCanonicalizes) {
  AttackSpec a;
  a.kind = AttackKind::Glitch;
  a.victim = 99;  // off the bus
  a.pos = 1000;   // outside the window
  a.span = 50;
  a.budget = 0;
  a.seq = 42;  // spoof vocabulary — must reset to default
  sanitize_attack(a, 3, -4, 10);
  EXPECT_LT(a.victim, 3u);
  EXPECT_GE(a.pos, -4);
  EXPECT_LE(a.pos, 10);
  EXPECT_GE(a.budget, 1);
  EXPECT_EQ(a.seq, AttackSpec{}.seq) << "out-of-vocabulary field kept";

  AttackSpec s;
  s.kind = AttackKind::Spoof;
  s.attacker = 7;
  s.as = 7;
  s.count = 0;
  sanitize_attack(s, 3, -4, 10);
  EXPECT_LT(s.attacker, 3u);
  EXPECT_GE(s.count, 1);
}

TEST(AttackSpec, GlitchBudgetSumsGlitchersOnly) {
  AttackSpec g1, g2, b;
  g1.budget = 2;
  g2.budget = 3;
  b.kind = AttackKind::BusOff;
  b.budget = 40;
  EXPECT_EQ(attack_glitch_budget({g1, g2, b}), 5);
}

TEST(AttackSpec, SpoofKeysEnumerateForgedSequence) {
  AttackSpec s;
  s.kind = AttackKind::Spoof;
  s.as = 1;
  s.seq = 900;
  s.count = 3;
  const auto keys = spoof_keys(s);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].source, 1u);
  EXPECT_EQ(keys[0].seq, 900u);
  EXPECT_EQ(keys[2].seq, 902u);
}

// --- DSL integration -----------------------------------------------------

TEST(AttackDsl, ScenarioRoundTripKeepsAttacks) {
  ScenarioSpec spec = seed_scenario(ProtocolParams::major_can(3), 3);
  AttackSpec g;
  g.kind = AttackKind::Glitch;
  g.victim = 1;
  g.pos = 2;
  g.budget = 2;
  AttackSpec s;
  s.kind = AttackKind::Spoof;
  s.attacker = 2;
  spec.attacks = {g, s};
  const ScenarioSpec back = parse_scenario(write_scenario(spec));
  EXPECT_EQ(back, spec);
}

TEST(AttackDsl, ParseErrorsCarryLineAndField) {
  const std::string text =
      "protocol can\n"
      "nodes 3\n"
      "attack glitch victim=1 bogus=2\n";
  try {
    (void)parse_scenario(text);
    FAIL() << "unknown attack field accepted by the DSL";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
  }
  EXPECT_THROW((void)parse_scenario("attack\n"), std::invalid_argument)
      << "attack with no kind";
}

TEST(AttackDsl, BusOffAttackRunsAndCertifiesTime) {
  ScenarioSpec spec = seed_scenario(ProtocolParams::standard_can(), 3);
  AttackSpec b;
  b.kind = AttackKind::BusOff;
  b.victim = 0;
  b.budget = 40;
  spec.attacks = {b};
  const DslRunResult r = run_scenario(spec);
  EXPECT_TRUE(r.attack.victim_busoff);
  EXPECT_EQ(r.attack.busoff_attempts, 32)
      << "TEC +8 per corrupted attempt: 32 attempts reach the 256 limit";
  EXPECT_EQ(r.attack.victim_peak_tec, 256);
  EXPECT_GT(r.attack.busoff_t, 0);
}

TEST(AttackDsl, SpoofDeliveriesAreCountedAndClassified) {
  ScenarioSpec spec = seed_scenario(ProtocolParams::standard_can(), 3);
  AttackSpec s;
  s.kind = AttackKind::Spoof;
  s.attacker = 2;
  s.as = 0;
  s.count = 1;
  spec.attacks = {s};
  const DslRunResult r = run_scenario(spec);
  EXPECT_EQ(r.attack.spoofed, 1);
  EXPECT_GT(r.attack.spoofed_delivered, 0)
      << "a forged frame arbitrates like any other and gets delivered";

  const FuzzVerdict v = run_fuzz_case(spec);
  EXPECT_TRUE(v.classes & fuzz_class_bit(FuzzClass::AttackSpoof)) << v.detail;
}

// --- engines / optimizer -------------------------------------------------

TEST(AttackEngine, ReportStartsEmpty) {
  AttackEngine e;
  EXPECT_FALSE(e.report().any_fired());
  EXPECT_TRUE(e.busoff_victims().empty());
}

TEST(AttackOptimize, SingleFlipDefeatsStandardCan) {
  const BudgetProbe p = probe_budget(ProtocolParams::standard_can(), 3, 1);
  EXPECT_TRUE(p.violation);
  ASSERT_FALSE(p.witness.empty());
  // The witness replays: folding it into glitch attacks breaks a
  // broadcast property under the fuzz oracle.
  const ScenarioSpec w =
      witness_scenario(ProtocolParams::standard_can(), 3, p);
  const FuzzVerdict v = run_fuzz_case(w);
  EXPECT_TRUE(v.classes & fuzz_class_bit(FuzzClass::AttackGlitch)) << v.detail;
}

TEST(AttackOptimize, MinorCanNeedsTwoFlipsCertified) {
  const MinBudgetResult r =
      find_min_defeating_budget(ProtocolParams::minor_can(), 3, 3);
  EXPECT_EQ(r.budget, 2) << r.summary();
  EXPECT_TRUE(r.clean_below_certified()) << "k=1 space is tiny; must certify";
}

TEST(AttackOptimize, TimeToBusOffMatchesScenarioRun) {
  const AttackReport r =
      measure_time_to_busoff(ProtocolParams::standard_can(), 3);
  EXPECT_TRUE(r.victim_busoff);
  EXPECT_EQ(r.busoff_attempts, 32);
  EXPECT_GT(r.busoff_t, 0);
}

// --- fault-confinement boundaries (the flooder's lever) ------------------

TEST(FaultConfinementBoundary, ErrorPassiveExactlyAt128) {
  FaultConfinement fc;
  fc.force_counters(127, 0);
  EXPECT_EQ(fc.state(), FcState::ErrorActive);
  fc.force_counters(128, 0);
  EXPECT_EQ(fc.state(), FcState::ErrorPassive);
  // REC crosses the same limit.
  FaultConfinement rx;
  rx.force_counters(0, 128);
  EXPECT_EQ(rx.state(), FcState::ErrorPassive);
}

TEST(FaultConfinementBoundary, BusOffExactlyAt256) {
  FaultConfinement fc;
  fc.force_counters(255, 0);
  EXPECT_EQ(fc.state(), FcState::ErrorPassive);
  fc.force_counters(248, 0);
  fc.on_tx_error();  // 248 + 8 = 256
  EXPECT_EQ(fc.state(), FcState::BusOff);
  EXPECT_TRUE(fc.off());
  // Off the bus, counters freeze.
  fc.on_tx_error();
  EXPECT_EQ(fc.tec(), 256);
  // Recovery resets everything.
  fc.reset_after_busoff();
  EXPECT_EQ(fc.state(), FcState::ErrorActive);
  EXPECT_EQ(fc.tec(), 0);
  EXPECT_EQ(fc.rec(), 0);
}

TEST(FaultConfinementBoundary, RecoveryNeeds128RecessiveSequences) {
  // A lone transmitter never sees an ACK: 32 attempts take it to bus-off.
  // With auto-recovery it must wait out 128 sequences of 11 recessive
  // bits before rejoining (ISO 11898) — not a bit earlier.
  EventLog log;
  ControllerConfig cfg;
  cfg.id = 0;
  cfg.busoff_auto_recovery = true;
  CanController node(cfg, log);
  Simulator sim;
  sim.attach(node);
  node.enqueue(Frame::make_blank(0x1, 0));
  sim.run(60000);
  ASSERT_GE(log.count(EventKind::EnteredBusOff, 0), 1u);
  ASSERT_GE(log.count(EventKind::BusOffRecovered, 0), 1u);
  const BitTime off_t = log.filter(EventKind::EnteredBusOff, 0).front().t;
  const BitTime rec_t = log.filter(EventKind::BusOffRecovered, 0).front().t;
  EXPECT_GE(rec_t - off_t, BitTime{128 * 11});
}

// --- fuzz integration ----------------------------------------------------

TEST(AttackFuzz, LegacyMutationStreamUnchangedWithoutAttacks) {
  // max_attacks = 0 must keep the mutation case table byte-stable: the
  // same (parent, rng) pair yields the same child as before the attack
  // cases existed, and no child ever carries an attack.
  FuzzBounds legacy;
  const ScenarioSpec seed = seed_scenario(ProtocolParams::major_can(3), 3);
  Rng a(42, 0), b(42, 0);
  for (int i = 0; i < 200; ++i) {
    const ScenarioSpec c1 = mutate_scenario(seed, legacy, a);
    const ScenarioSpec c2 = mutate_scenario(seed, legacy, b);
    ASSERT_EQ(c1, c2) << "iteration " << i;
    ASSERT_TRUE(c1.attacks.empty()) << "attack mutated in with max_attacks=0";
  }
}

TEST(AttackFuzz, MutatorReachesAttacksWithinBudget) {
  FuzzBounds b;
  b.max_attacks = 2;
  b.attack_budget = 4;
  ScenarioSpec g = seed_scenario(ProtocolParams::major_can(3), 3);
  Rng rng(7, 0);
  bool saw_attack = false;
  for (int i = 0; i < 400; ++i) {
    g = mutate_scenario(g, b, rng);
    ASSERT_LE(g.attacks.size(), 2u);
    ASSERT_LE(attack_glitch_budget(g.attacks), 4);
    saw_attack = saw_attack || !g.attacks.empty();
  }
  EXPECT_TRUE(saw_attack) << "400 mutations never produced an attacker";
}

TEST(AttackFuzz, SanitizeDropsDisallowedKinds) {
  FuzzBounds b;
  b.max_attacks = 2;
  b.allow_spoof = false;
  b.allow_busoff = false;
  ScenarioSpec spec = seed_scenario(ProtocolParams::standard_can(), 3);
  AttackSpec s;
  s.kind = AttackKind::Spoof;
  AttackSpec o;
  o.kind = AttackKind::BusOff;
  spec.attacks = {s, o};
  sanitize_scenario(spec, b);
  for (const AttackSpec& a : spec.attacks) {
    EXPECT_EQ(a.kind, AttackKind::Glitch)
        << "disallowed kinds must be rewritten, not kept";
  }
}

TEST(AttackFuzz, VerdictDeterministicWithAttacks) {
  ScenarioSpec spec = seed_scenario(ProtocolParams::minor_can(), 3);
  AttackSpec g;
  g.kind = AttackKind::Glitch;
  g.victim = 1;
  g.pos = 0;
  g.span = 2;
  g.budget = 2;
  spec.attacks = {g};
  const FuzzVerdict v1 = run_fuzz_case(spec);
  const FuzzVerdict v2 = run_fuzz_case(spec);
  EXPECT_EQ(v1.classes, v2.classes);
  EXPECT_EQ(v1.detail, v2.detail);
}

}  // namespace
}  // namespace mcan
