// Test-side glue for the protocol invariant analyzer: attach a
// ScopedInvariants to any Network (or hand-assembled Simulator) and every
// invariant violation observed during the test body becomes a gtest
// failure at scope exit.  This is how the existing suites double as a
// continuous conformance harness.
#pragma once

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "analysis/invariants.hpp"
#include "core/network.hpp"

namespace mcan {

class ScopedInvariants {
 public:
  explicit ScopedInvariants(Network& net, InvariantConfig cfg = {})
      : scope_(net, cfg) {
    install_handler();
  }

  ScopedInvariants(Simulator& sim, std::vector<ProtocolParams> per_node,
                   const EventLog* log, InvariantConfig cfg = {})
      : scope_(sim, std::move(per_node), log, cfg) {
    install_handler();
  }

  [[nodiscard]] const InvariantReport& report() const {
    return scope_.report();
  }

 private:
  void install_handler() {
    scope_.set_handler([](const InvariantReport& r) {
      ADD_FAILURE() << "protocol invariant violations:\n" << r.summary();
    });
  }

  InvariantScope scope_;
};

}  // namespace mcan
