// Golden wire-format vectors: exact transmit bitstreams for reference
// frames, locked as regression anchors, plus format invariants that hold
// independently of our own encoder (CRC residue, stuffing legality,
// recessive tail).
#include <gtest/gtest.h>

#include "frame/crc15.hpp"
#include "frame/encoder.hpp"
#include "frame/layout.hpp"
#include "frame/stuffing.hpp"
#include "util/rng.hpp"

namespace mcan {
namespace {

std::string wire_string(const Frame& f, int eof_bits = kStandardEofBits) {
  std::string s;
  for (const TxBit& b : encode_tx(f, eof_bits)) s += level_char(b.level);
  return s;
}

TEST(Golden, StandardFrameId555NoData) {
  // SOF + id 101'0101'0101 + RTR/IDE/r0 dominant + DLC 0000 (one stuff bit
  // after the five dominants) + CRC + recessive tail.
  EXPECT_EQ(wire_string(Frame::make_blank(0x555, 0)),
            "drdrdrdrdrdrdddddrddrrddrrrdrddrrddrrrrrrrrrr");
}

TEST(Golden, StandardFrameWithDataByte) {
  const std::uint8_t d[] = {0xAA};
  EXPECT_EQ(wire_string(Frame::make_data(0x123, d)),
            "dddrddrdddrrdddddrdrrdrdrdrddrdddrrrrrdrdrrdrrrrrrrrrr");
}

TEST(Golden, RemoteFrameHighestId) {
  EXPECT_EQ(wire_string(Frame::make_remote(0x7ff, 2)),
            "drrrrrdrrrrrdrrddddrdddrrdrddrdddddrrrrrrrrrrrr");
}

TEST(Golden, ExtendedFrameAlternatingId) {
  EXPECT_EQ(wire_string(Frame::make_extended(0x0AAAAAAA & kMaxExtId, {})),
            "ddrdrdrdrdrdrrrdrdrdrdrdrdrdrdrdddddrdddrrdrdrrddddrrrdrrrrrrrrrr");
}

// --- encoder-independent invariants ---

TEST(Golden, CrcResidueIsZero) {
  // Feeding the whole unstuffed body *including* its CRC field back into
  // the CRC register must leave remainder zero — the standard property of
  // systematic CRCs, independent of how we compute the field.
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    Frame f;
    f.id = rng.next_below(kMaxId + 1);
    f.extended = rng.chance(0.3);
    if (f.extended) f.id = rng.next_below(kMaxExtId + 1);
    f.remote = rng.chance(0.2);
    f.dlc = static_cast<std::uint8_t>(rng.next_below(9));
    if (!f.remote) {
      for (int i = 0; i < f.dlc; ++i) {
        f.data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(rng.next_below(256));
      }
    }
    EXPECT_EQ(crc15(unstuffed_body(f)), 0u) << f.to_string();
  }
}

TEST(Golden, WireNeverViolatesStuffingBeforeCrcDelim) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    Frame f = Frame::make_blank(rng.next_below(kMaxId + 1),
                                static_cast<std::uint8_t>(rng.next_below(9)));
    auto bits = encode_tx(f, kStandardEofBits);
    int run = 0;
    Level last = Level::Recessive;
    for (const TxBit& b : bits) {
      if (b.phase == TxPhase::CrcDelim) break;
      run = (run > 0 && b.level == last) ? run + 1 : 1;
      last = b.level;
      ASSERT_LT(run, 6) << f.to_string();
    }
  }
}

TEST(Golden, EveryFrameEndsWithRecessiveTail) {
  // ACK delimiter + EOF: 8 recessive for standard CAN, 2m+1 for MajorCAN —
  // the pattern the (Major)CAN error delimiter mirrors for resync.
  for (int eof : {7, 10, 14}) {
    auto bits = encode_tx(Frame::make_blank(0x111, 3), eof);
    for (int i = 0; i < eof + 1; ++i) {
      EXPECT_EQ(bits[bits.size() - 1 - static_cast<std::size_t>(i)].level,
                Level::Recessive);
    }
  }
}

TEST(Golden, WireLengthFormula) {
  // length = stuffed(body) + CRC delim + ACK slot + ACK delim + EOF.
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    Frame f = Frame::make_blank(rng.next_below(kMaxId + 1),
                                static_cast<std::uint8_t>(rng.next_below(9)));
    const int stuffed =
        static_cast<int>(stuff(unstuffed_body(f)).size());
    EXPECT_EQ(wire_length(f, 7), stuffed + 3 + 7);
  }
}

TEST(Golden, ReferenceFrameLengths) {
  // An 8-byte standard data frame is 108 wire bits before stuffing; with
  // an alternating payload no data-field stuff bits occur and the length
  // lands right at the paper's tau = 110-bit reference.
  std::vector<std::uint8_t> alt(8, 0x55);
  const int len = wire_length(Frame::make_data(0x555, alt), 7);
  EXPECT_GE(len, 108);
  EXPECT_LE(len, 112);

  // A minimal frame: 34 unstuffed body bits + 10 tail bits, plus whatever
  // stuffing the all-dominant id 0 incurs.
  const int tiny = wire_length(Frame::make_blank(0x000, 0), 7);
  EXPECT_GE(tiny, 44);
  EXPECT_LE(tiny, 52);

  // Extended adds SRR + 18 id bits + r1 (plus/minus CRC stuffing churn),
  // measured against its standard sibling with the same base id.
  const int ext = wire_length(Frame::make_extended(0x15555555 & kMaxExtId, {}), 7);
  const int sibling = wire_length(Frame::make_blank(0x555, 0), 7);
  EXPECT_GE(ext - sibling, 18);
  EXPECT_LE(ext - sibling, 24);
}

}  // namespace
}  // namespace mcan
