// Tests for the two-bus gateway: forwarding, filtering, bidirectional
// rules, and end-to-end consistency across the bridge under disturbances.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "higher/gateway.hpp"

namespace mcan {
namespace {

/// Two buses with a gateway: bus A nodes {a0 sender, gwA}, bus B nodes
/// {gwB, b0 receiver}.  Both buses step on one clock.
struct Bridge {
  Network bus_a;
  Network bus_b;
  Gateway gw;

  explicit Bridge(const ProtocolParams& p = ProtocolParams::standard_can())
      : bus_a(3, p), bus_b(3, p), gw(bus_a.node(2), bus_b.node(0)) {}

  void run(BitTime n) {
    for (BitTime i = 0; i < n; ++i) {
      bus_a.sim().step();
      bus_b.sim().step();
    }
  }

  bool quiet() {
    for (Network* net : {&bus_a, &bus_b}) {
      for (int i = 0; i < net->size(); ++i) {
        if (!net->node(i).bus_idle() || net->node(i).pending_tx() > 0) {
          return false;
        }
      }
    }
    return true;
  }

  void run_until_quiet(BitTime max = 20000) {
    for (BitTime i = 0; i < max; ++i) {
      run(1);
      if (quiet()) return;
    }
  }
};

TEST(Gateway, ForwardsMatchingIds) {
  Bridge br;
  br.gw.add_rule(0, 0x100, 0x1ff);
  br.bus_a.node(0).enqueue(Frame::make_blank(0x150, 2));
  br.run_until_quiet();
  ASSERT_EQ(br.bus_b.deliveries(2).size(), 1u);
  EXPECT_EQ(br.bus_b.deliveries(2)[0].frame.id, 0x150u);
  EXPECT_EQ(br.gw.forwarded(0), 1);
}

TEST(Gateway, FiltersNonMatchingIds) {
  Bridge br;
  br.gw.add_rule(0, 0x100, 0x1ff);
  br.bus_a.node(0).enqueue(Frame::make_blank(0x300, 2));
  br.run_until_quiet();
  EXPECT_TRUE(br.bus_b.deliveries(2).empty());
  EXPECT_EQ(br.gw.forwarded(0), 0);
  EXPECT_EQ(br.gw.dropped(0), 1);
}

TEST(Gateway, BidirectionalRulesDoNotLoop) {
  Bridge br;
  br.gw.add_rule(0, 0x000, 0x7ff);
  br.gw.add_rule(1, 0x000, 0x7ff);  // forward everything both ways
  br.bus_a.node(0).enqueue(Frame::make_blank(0x123, 1));
  br.bus_b.node(2).enqueue(Frame::make_blank(0x321, 1));
  br.run_until_quiet();
  // One forward per direction; the forwarded copies are the gateway's own
  // transmissions and are never re-delivered to it.
  EXPECT_EQ(br.gw.forwarded(0), 1);
  EXPECT_EQ(br.gw.forwarded(1), 1);
  EXPECT_EQ(br.bus_b.deliveries(2).size(), 1u)
      << "the sender of 0x321 receives only the forwarded 0x123";
  EXPECT_EQ(br.bus_b.deliveries(1).size(), 2u)
      << "a bystander on B sees both frames exactly once";
}

TEST(Gateway, PayloadSurvivesTheBridge) {
  Bridge br;
  br.gw.add_rule(0, 0x000, 0x7ff);
  const std::uint8_t bytes[] = {0xde, 0xad, 0xbe, 0xef};
  const Frame f = Frame::make_data(0x0aa, bytes);
  br.bus_a.node(0).enqueue(f);
  br.run_until_quiet();
  ASSERT_EQ(br.bus_b.deliveries(2).size(), 1u);
  EXPECT_EQ(br.bus_b.deliveries(2)[0].frame, f);
}

TEST(Gateway, DisturbedSourceBusStillBridgesAfterRetransmission) {
  Bridge br(ProtocolParams::major_can(5));
  br.gw.add_rule(0, 0x000, 0x7ff);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(2, 1));  // gateway's A controller hit in EOF
  br.bus_a.set_injector(inj);
  br.bus_a.node(0).enqueue(Frame::make_blank(0x155, 2));
  br.run_until_quiet();
  ASSERT_EQ(br.bus_b.deliveries(2).size(), 1u)
      << "the end-game resolves on bus A and the frame crosses exactly once";
}

TEST(Gateway, ManyFramesKeepOrderPerDirection) {
  Bridge br;
  br.gw.add_rule(0, 0x000, 0x7ff);
  for (int k = 0; k < 6; ++k) {
    br.bus_a.node(0).enqueue(Frame::make_blank(0x100 + static_cast<std::uint32_t>(k), 1));
  }
  br.run_until_quiet(60000);
  ASSERT_EQ(br.bus_b.deliveries(2).size(), 6u);
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(br.bus_b.deliveries(2)[static_cast<std::size_t>(k)].frame.id,
              0x100u + static_cast<std::uint32_t>(k));
  }
}

}  // namespace
}  // namespace mcan
