// Deep tests of the MajorCAN end-game, parameterised over m and error
// position: geometry, extended-flag extent, vote boundaries, delimiter
// timing (bit-exact reconvergence), and the corner cases analysed in §5.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"
#include "scenario/figures.hpp"

namespace mcan {
namespace {

Frame probe_frame() { return Frame::make_blank(0x155, 2); }

// --- geometry (paper §5 formulas) ---

class Geometry : public ::testing::TestWithParam<int> {};

TEST_P(Geometry, WindowAndFlagFormulas) {
  const int m = GetParam();
  auto p = ProtocolParams::major_can(m);
  EXPECT_EQ(p.eof_bits(), 2 * m);
  EXPECT_EQ(p.first_subfield_last(), m - 1);
  EXPECT_EQ(p.second_subfield_last(), 2 * m - 1);
  // Paper, 1-based: window spans the (m+7)th..(3m+5)th bits = 2m-1 bits.
  EXPECT_EQ(p.sample_begin(), m + 6);
  EXPECT_EQ(p.sample_end(), 3 * m + 4);
  EXPECT_EQ(p.sample_count(), 2 * m - 1);
  EXPECT_EQ(p.sample_end() - p.sample_begin() + 1, p.sample_count());
  EXPECT_EQ(p.majority(), m);
  // A sampler flagging from the last first-sub-field bit ends its 6-bit
  // flag exactly where the window begins: positions m..m+5, window at m+6.
  EXPECT_EQ(p.first_subfield_last() + 1 + ProtocolParams::flag_bits(),
            p.sample_begin());
  EXPECT_EQ(p.error_delim_total(), 2 * m + 1);
  EXPECT_EQ(p.best_case_overhead_bits(), 2 * m - 7);
  EXPECT_EQ(p.worst_case_overhead_bits(), 4 * m - 9);
  EXPECT_EQ(p.name(), "MajorCAN_" + std::to_string(m));
}

INSTANTIATE_TEST_SUITE_P(Ms, Geometry, ::testing::Values(3, 4, 5, 6, 8, 12));

// --- single receiver-side phantom at every EOF position ---

struct PosParam {
  int m;
  int pos;  // 0-based EOF position of the phantom at node 1
};

class SinglePhantom : public ::testing::TestWithParam<PosParam> {};

TEST_P(SinglePhantom, AlwaysConsistentExactlyOnce) {
  const auto [m, pos] = GetParam();
  Network net(5, ProtocolParams::major_can(m));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, pos));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_TRUE(inj.all_fired());
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u)
        << "m=" << m << " pos=" << pos << " node=" << i;
  }
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u);
}

std::vector<PosParam> all_positions() {
  std::vector<PosParam> v;
  for (int m : {3, 5, 7}) {
    for (int pos = 0; pos < 2 * m; ++pos) v.push_back({m, pos});
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(EveryEofPosition, SinglePhantom,
                         ::testing::ValuesIn(all_positions()),
                         [](const ::testing::TestParamInfo<PosParam>& info) {
                           return "m" + std::to_string(info.param.m) + "_pos" +
                                  std::to_string(info.param.pos);
                         });

// --- transmitter-side phantom at every EOF position ---

class TxPhantom : public ::testing::TestWithParam<PosParam> {};

TEST_P(TxPhantom, AlwaysConsistent) {
  const auto [m, pos] = GetParam();
  Network net(4, ProtocolParams::major_can(m));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(0, pos));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  // Whatever the transmitter decides, receivers must agree with it and
  // with each other; final state must be exactly-once everywhere.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u)
        << "m=" << m << " pos=" << pos << " node=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(EveryEofPosition, TxPhantom,
                         ::testing::ValuesIn(all_positions()),
                         [](const ::testing::TestParamInfo<PosParam>& info) {
                           return "m" + std::to_string(info.param.m) + "_pos" +
                                  std::to_string(info.param.pos);
                         });

// --- structural details ---

TEST(MajorCan, ExtendedFlagReachesExactly3mPlus5) {
  // Phantom at the first second-sub-field bit (0-based m): the receiver
  // accepts and extends; its dominant drive must cover positions m+1
  // through 3m+4 (0-based), i.e. paper's (3m+5)th bit inclusive.
  const int m = 5;
  Network net(2, ProtocolParams::major_can(m));
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, m));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());

  const int eof_start = wire_length(probe_frame(), 2 * m) - 2 * m;
  int first_dom = -1, last_dom = -1;
  for (const BitRecord& rec : net.trace().bits()) {
    if (rec.t < static_cast<BitTime>(eof_start)) continue;
    if (is_dominant(rec.driven[1])) {
      const int pos = static_cast<int>(rec.t) - eof_start;
      if (first_dom < 0) first_dom = pos;
      last_dom = pos;
    }
  }
  EXPECT_EQ(first_dom, m + 1) << "flag starts the bit after detection";
  EXPECT_EQ(last_dom, 3 * m + 4) << "extended flag ends at the (3m+5)th bit";
}

TEST(MajorCan, SamplerFlagIsExactlySixBits) {
  const int m = 5;
  Network net(2, ProtocolParams::major_can(m));
  ScopedInvariants net_invariants(net);
  net.enable_trace();
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 0));
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());

  const int eof_start = wire_length(probe_frame(), 2 * m) - 2 * m;
  int dom_bits = 0;
  for (const BitRecord& rec : net.trace().bits()) {
    const auto pos = static_cast<int>(rec.t) - eof_start;
    // Count node 1's driven dominants in the first frame's end-game window.
    if (pos >= 0 && pos <= 3 * m + 5 && is_dominant(rec.driven[1])) ++dom_bits;
  }
  EXPECT_EQ(dom_bits, 6) << "first-sub-field flags are not extended";
}

TEST(MajorCan, AllNodesReenterIdleOnTheSameBit) {
  // Fixed delimiter: every end-game participant must hit Idle on exactly
  // the same bit, for any error position in the EOF.
  const int m = 5;
  for (int pos = 0; pos < 2 * m; ++pos) {
    Network net(4, ProtocolParams::major_can(m));
    ScopedInvariants net_invariants(net);
    net.enable_trace();
    ScriptedFaults inj;
    inj.add(FaultTarget::eof_bit(1, pos));
    net.set_injector(inj);
    net.node(0).enqueue(probe_frame());
    ASSERT_TRUE(net.run_until_quiet());
    net.sim().run(2);  // record the Idle bits in the trace

    // Find, per node, the first time it is Idle after the EOF started.
    const int eof_start = wire_length(probe_frame(), 2 * m) - 2 * m;
    std::vector<BitTime> idle_at(4, kNoTime);
    for (const BitRecord& rec : net.trace().bits()) {
      if (rec.t < static_cast<BitTime>(eof_start)) continue;
      for (int i = 0; i < 4; ++i) {
        if (idle_at[static_cast<std::size_t>(i)] == kNoTime &&
            rec.info[static_cast<std::size_t>(i)].seg == Seg::Idle) {
          idle_at[static_cast<std::size_t>(i)] = rec.t;
        }
      }
    }
    // Compare receivers among themselves (the transmitter may restart a
    // rejected frame in the same bit it would have shown Idle).
    for (int i = 2; i < 4; ++i) {
      EXPECT_EQ(idle_at[static_cast<std::size_t>(i)], idle_at[1])
          << "pos=" << pos << " node=" << i;
    }
    EXPECT_NE(idle_at[1], kNoTime) << "pos=" << pos;
  }
}

TEST(MajorCan, VoteBoundaryExactMajorityAccepts) {
  // Phantom at node 1 in the first sub-field; nobody extends, but inject
  // exactly m dominant samples into node 1's window: majority => accept.
  // The transmitter (which saw node 1's flag in the first sub-field too)
  // votes on a clean window => rejects and retransmits; node 1 ends up
  // with a duplicate.  This documents why vote-splitting needs more errors
  // than the budget: here it takes m+1 (1 phantom + m sample flips).
  const int m = 3;
  auto p = ProtocolParams::major_can(m);
  Network net(3, p);
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 0));
  for (int i = 0; i < m; ++i) {
    inj.add(FaultTarget::eof_relative(1, p.sample_begin() + i));
  }
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.deliveries(1).size(), 2u)
      << "accepted by forged vote + retransmission copy";
  EXPECT_EQ(net.deliveries(2).size(), 1u)
      << "node 2 sampled a clean window, rejected, and got only the "
         "retransmission";
}

TEST(MajorCan, VoteBoundaryOneBelowMajorityRejects) {
  const int m = 3;
  auto p = ProtocolParams::major_can(m);
  Network net(3, p);
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 0));
  for (int i = 0; i < m - 1; ++i) {
    inj.add(FaultTarget::eof_relative(1, p.sample_begin() + i));
  }
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  // m-1 forged samples < majority: node 1 rejects like everyone else and
  // the retransmission delivers exactly once.
  EXPECT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.deliveries(2).size(), 1u);
}

TEST(MajorCan, CrcErrorNeverSamples) {
  const auto p = ProtocolParams::major_can(5);
  const int crc_bit = find_crc_error_body_bit(p, 3);
  ASSERT_GE(crc_bit, 0);
  Network net(3, p);
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Body;
  t.index = crc_bit;
  inj.add(t);
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.log().count(EventKind::SamplingDecision, 1), 0u)
      << "a CRC-error node must reject without voting (Fig. 4, row 1)";
  // Everyone rejects; the retransmission restores exactly-once.
  EXPECT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.deliveries(2).size(), 1u);
}

TEST(MajorCan, HiddenFlagCleanAccepterOverloads) {
  // §5 corner: node 2's view of the entire visible part of node 1's flag
  // is disturbed (m flips), so it sails through its EOF cleanly and
  // accepts; it then sees the extended flags as an overload condition.
  // Consistency must survive: everyone accepts exactly once.
  const int m = 5;
  Network net(4, ProtocolParams::major_can(m));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, m - 1));  // phantom at node 1, pos m-1
  for (int d = 0; d < m; ++d) {
    // node 2 misses flag bits at positions m..2m-1
    inj.add(FaultTarget::eof_relative(2, m + d));
  }
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_TRUE(inj.all_fired());
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
  }
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u);
  EXPECT_GE(net.log().count(EventKind::OverloadFlagStart, 2), 1u)
      << "the clean accepter answers the post-EOF dominants with overload";
}

TEST(MajorCan, AckErrorEndGameConsistent) {
  // Transmitter alone sees a recessive ACK slot (view flip): ACK error,
  // flag at the ACK delimiter; receivers get a form error at EOF position
  // 0-adjacent.  All must reject; the retransmission delivers once.
  Network net(3, ProtocolParams::major_can(5));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 0;
  t.seg = Seg::Tail;
  t.index = 1;  // ACK slot
  inj.add(t);
  net.set_injector(inj);
  net.node(0).enqueue(probe_frame());
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.deliveries(2).size(), 1u);
  EXPECT_GE(net.log().count(EventKind::TxRetransmit, 0), 1u);
}

TEST(MajorCan, BackToBackTrafficAfterEndGame) {
  // An end-game on frame 1 must not disturb frames 2..4.
  Network net(4, ProtocolParams::major_can(5));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 2, 0));
  net.set_injector(inj);
  for (int k = 0; k < 4; ++k) {
    net.node(0).enqueue(Frame::make_blank(0x100 + static_cast<std::uint32_t>(k), 1));
  }
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(net.deliveries(i).size(), 4u) << "node " << i;
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(net.deliveries(i)[static_cast<std::size_t>(k)].frame.id,
                0x100u + static_cast<std::uint32_t>(k));
    }
  }
}

}  // namespace
}  // namespace mcan
