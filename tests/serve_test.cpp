// Campaign orchestration service tests (src/serve/): scheduler semantics
// (priorities, backpressure, cancel), the determinism gate — served
// results byte-identical to local single-process runs for any worker
// count, across worker deaths and kill/resume — the job journal's crash
// recovery, and the socket server end to end, including malformed-input
// rejection and concurrent clients.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/engine.hpp"
#include "rare/campaign.hpp"
#include "serve/backend.hpp"
#include "serve/journal.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/worker.hpp"

namespace mcan {
namespace {

std::string temp_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "mcan-serve-" + tag + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

Json fuzz_spec(std::uint64_t seed, std::uint64_t max_execs) {
  Json spec = Json::object();
  spec.set("backend", Json("fuzz"));
  spec.set("protocol", Json("major:5"));
  spec.set("seed", Json(static_cast<long long>(seed)));
  spec.set("max_execs", Json(static_cast<long long>(max_execs)));
  return spec;
}

Json rare_spec(std::uint64_t seed, long long trials) {
  Json spec = Json::object();
  spec.set("backend", Json("rare"));
  spec.set("protocol", Json("can"));
  spec.set("nodes", Json(8LL));
  spec.set("mode", Json("importance"));
  spec.set("seed", Json(static_cast<long long>(seed)));
  spec.set("trials", Json(trials));
  return spec;
}

/// The local single-process reference the serve results must match byte
/// for byte (wall-clock fields zeroed, as the backends do).
std::string local_fuzz_result(std::uint64_t seed, std::uint64_t max_execs) {
  FuzzConfig cfg;
  cfg.protocol = ProtocolParams::major_can(5);
  cfg.seed = seed;
  cfg.max_execs = max_execs;
  FuzzResult res = run_fuzz(cfg, {});
  res.stats.elapsed_s = 0;
  return fuzz_stats_json(res.stats, cfg.protocol, cfg.n_nodes, cfg.seed);
}

std::string local_rare_result(std::uint64_t seed, long long trials) {
  RareConfig cfg;
  cfg.protocol = ProtocolParams::standard_can();
  cfg.n_nodes = 8;
  cfg.mode = RareMode::kImportance;
  cfg.seed = seed;
  cfg.trials = trials;
  RareResult res = run_campaign(cfg);
  res.seconds = 0;
  return res.to_json();
}

void wait_terminal(JobManager& mgr, std::uint64_t id, JobProgress& out) {
  for (int i = 0; i < 6000; ++i) {
    ASSERT_TRUE(mgr.status(id, out));
    if (job_state_terminal(out.state)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "job " << id << " did not finish within 60 s";
}

struct ServeRun {
  std::string result;
  JobProgress progress;
  std::uint64_t deaths = 0;
};

/// Submit one job into a fresh manager + pool, wait for it, tear down.
ServeRun run_serve(const Json& spec, int workers, ServeConfig scfg = {},
                   WorkerPoolConfig pcfg = {}) {
  ServeRun out;
  JobManager mgr(scfg);
  pcfg.workers = workers;
  pcfg.monitor_period_s = 0.02;  // notice injected deaths fast
  WorkerPool pool(mgr, pcfg);
  pool.start();
  std::string error;
  bool rejected = false;
  const std::uint64_t id = mgr.submit(spec, 0, error, rejected);
  EXPECT_NE(id, 0u) << error;
  if (id != 0) {
    wait_terminal(mgr, id, out.progress);
    JobState state = JobState::kQueued;
    std::string result;
    if (mgr.result(id, state, result, error)) out.result = result;
  }
  pool.stop_join();
  out.deaths = pool.deaths();
  return out;
}

// --- scheduler semantics ---------------------------------------------------

TEST(Scheduler, BackpressureRejectsBeyondCapacity) {
  ServeConfig cfg;
  cfg.capacity = 1;
  JobManager mgr(cfg);  // no workers: the first job stays live
  std::string error;
  bool rejected = false;
  ASSERT_NE(mgr.submit(fuzz_spec(1, 100), 0, error, rejected), 0u);
  EXPECT_EQ(mgr.submit(fuzz_spec(2, 100), 0, error, rejected), 0u);
  EXPECT_TRUE(rejected);  // retry-later, not a malformed-spec error
  mgr.stop();
}

TEST(Scheduler, InvalidSpecsAreErrorsNotBackpressure) {
  JobManager mgr(ServeConfig{});
  Json spec = Json::object();
  spec.set("backend", Json("warp-drive"));
  std::string error;
  bool rejected = false;
  EXPECT_EQ(mgr.submit(spec, 0, error, rejected), 0u);
  EXPECT_FALSE(rejected);
  EXPECT_FALSE(error.empty());
  mgr.stop();
}

TEST(Scheduler, HigherPriorityJobsClaimFirst) {
  JobManager mgr(ServeConfig{});
  std::string error;
  bool rejected = false;
  const std::uint64_t low = mgr.submit(fuzz_spec(1, 100), 0, error, rejected);
  const std::uint64_t high = mgr.submit(fuzz_spec(2, 100), 5, error, rejected);
  ASSERT_NE(low, 0u);
  ASSERT_NE(high, 0u);
  {
    Claim claim;
    ASSERT_TRUE(mgr.claim_wait(claim));
    EXPECT_EQ(claim.ref.job_id, high);
  }
  mgr.stop();
}

TEST(Scheduler, CancelIsTerminalAndSticky) {
  JobManager mgr(ServeConfig{});  // no workers: job stays queued
  std::string error;
  bool rejected = false;
  const std::uint64_t id = mgr.submit(fuzz_spec(1, 100), 0, error, rejected);
  ASSERT_NE(id, 0u);
  ASSERT_TRUE(mgr.cancel(id, error));
  JobProgress p;
  ASSERT_TRUE(mgr.status(id, p));
  EXPECT_EQ(p.state, JobState::kCancelled);
  EXPECT_FALSE(mgr.cancel(id, error));  // already terminal
  JobState state = JobState::kQueued;
  std::string result;
  EXPECT_FALSE(mgr.result(id, state, result, error));
  EXPECT_EQ(state, JobState::kCancelled);
  mgr.stop();
}

// --- the determinism gate --------------------------------------------------

TEST(Determinism, ServedFuzzResultMatchesLocalRunForAnyWorkerCount) {
  const std::string expected = local_fuzz_result(7, 600);
  const ServeRun one = run_serve(fuzz_spec(7, 600), 1);
  const ServeRun four = run_serve(fuzz_spec(7, 600), 4);
  EXPECT_EQ(one.result, expected);
  EXPECT_EQ(four.result, expected);
}

TEST(Determinism, ServedRareResultMatchesLocalRunForAnyWorkerCount) {
  const std::string expected = local_rare_result(3, 1500);
  const ServeRun one = run_serve(rare_spec(3, 1500), 1);
  const ServeRun four = run_serve(rare_spec(3, 1500), 4);
  EXPECT_EQ(one.result, expected);
  EXPECT_EQ(four.result, expected);
}

TEST(Determinism, KilledWorkerShardRequeueDoesNotPerturbTheResult) {
  // One worker dies holding its first shard; the monitor requeues it, a
  // surviving worker re-executes the same slots, and the merged result is
  // still byte-identical to an undisturbed run.
  const std::string expected = local_fuzz_result(11, 600);
  std::atomic<int> deaths_left{1};
  WorkerPoolConfig pcfg;
  pcfg.fail_hook = [&deaths_left](const ShardRef&) {
    return deaths_left.fetch_sub(1) > 0;
  };
  const ServeRun run = run_serve(fuzz_spec(11, 600), 3, ServeConfig{}, pcfg);
  EXPECT_EQ(run.deaths, 1u);
  EXPECT_GE(run.progress.retries, 1u);
  EXPECT_EQ(run.progress.state, JobState::kDone);
  EXPECT_EQ(run.result, expected);
}

TEST(Determinism, RetryCapFailsAJobWhoseShardsKeepDying) {
  ServeConfig scfg;
  scfg.max_retries = 1;
  scfg.shard_size = 100000;  // one shard per round: deaths hit one shard
  WorkerPoolConfig pcfg;
  pcfg.fail_hook = [](const ShardRef&) { return true; };  // every claim dies
  const ServeRun run = run_serve(fuzz_spec(1, 600), 4, scfg, pcfg);
  EXPECT_EQ(run.progress.state, JobState::kFailed);
  EXPECT_FALSE(run.progress.error.empty());
  EXPECT_TRUE(run.result.empty());
}

// --- journal + crash recovery ----------------------------------------------

TEST(Journal, SnapshotAndTerminalRoundTrip) {
  const std::string dir = temp_dir("jnl");
  JobJournal journal(dir);
  ASSERT_TRUE(journal.open(3, 2, "{\"backend\":\"fuzz\"}", "{\"fp\":1}"));
  ASSERT_TRUE(journal.append_snapshot(3, 64, "{\"state\":\"a\"}"));
  ASSERT_TRUE(journal.append_snapshot(3, 128, "{\"state\":\"b\"}"));
  ASSERT_TRUE(journal.append_done(3, "{\"result\":true}\n"));
  JournalRecord rec;
  std::string error;
  ASSERT_TRUE(JobJournal::load_file(journal.path_for(3), rec, error)) << error;
  EXPECT_EQ(rec.id, 3u);
  EXPECT_EQ(rec.priority, 2);
  EXPECT_EQ(rec.fingerprint, "{\"fp\":1}");
  EXPECT_TRUE(rec.has_snapshot);
  EXPECT_EQ(rec.snap_units, 128u);          // newest snapshot wins
  EXPECT_EQ(rec.snapshot, "{\"state\":\"b\"}");
  EXPECT_EQ(rec.terminal, JournalTerminal::kDone);
  EXPECT_EQ(rec.result, "{\"result\":true}\n");
  std::filesystem::remove_all(dir);
}

TEST(Journal, TornTrailingLineIsDroppedNotFatal) {
  // A kill -9 can interrupt a snapshot append mid-line; the loader must
  // fall back to the previous complete snapshot.
  const std::string dir = temp_dir("torn");
  JobJournal journal(dir);
  ASSERT_TRUE(journal.open(1, 0, "{}", "{}"));
  ASSERT_TRUE(journal.append_snapshot(1, 64, "{\"good\":1}"));
  {
    std::ofstream f(journal.path_for(1), std::ios::app);
    f << "snap 128 {\"tor";  // no trailing newline: torn write
  }
  JournalRecord rec;
  std::string error;
  ASSERT_TRUE(JobJournal::load_file(journal.path_for(1), rec, error)) << error;
  EXPECT_EQ(rec.snap_units, 64u);
  EXPECT_EQ(rec.snapshot, "{\"good\":1}");
  EXPECT_EQ(rec.terminal, JournalTerminal::kNone);
  std::filesystem::remove_all(dir);
}

TEST(Journal, CorruptHeaderIsAnError) {
  const std::string dir = temp_dir("hdr");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/job-9.jnl";
  {
    std::ofstream f(path);
    f << "not a journal\n";
  }
  JournalRecord rec;
  std::string error;
  EXPECT_FALSE(JobJournal::load_file(path, rec, error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove_all(dir);
}

/// Drive `shards` claims by hand (the worker loop without the threads).
void drive_shards(JobManager& mgr, int shards) {
  for (int i = 0; i < shards; ++i) {
    Claim claim;
    ASSERT_TRUE(mgr.claim_wait(claim));
    for (std::size_t s = claim.ref.begin; s < claim.ref.end; ++s) {
      claim.backend->execute_slot(s);
    }
    mgr.complete(claim.ref);
  }
}

TEST(Recovery, KilledServerResumesByteIdentically) {
  const std::string dir = temp_dir("resume");
  ServeConfig scfg;
  scfg.journal_dir = dir;
  scfg.checkpoint_every = 1;  // snapshot at every merged round
  scfg.shard_size = 16;
  std::uint64_t id = 0;
  {
    // "First daemon": run part of the campaign, snapshot, vanish without
    // a terminal line — exactly what kill -9 after a merge looks like.
    JobManager mgr(scfg);
    std::string error;
    bool rejected = false;
    id = mgr.submit(fuzz_spec(7, 600), 0, error, rejected);
    ASSERT_NE(id, 0u) << error;
    drive_shards(mgr, 6);
    mgr.flush_journals();
    mgr.stop();
  }
  JobManager mgr(scfg);
  const std::vector<std::string> notes = mgr.recover();
  ASSERT_FALSE(notes.empty());
  JobProgress p;
  ASSERT_TRUE(mgr.status(id, p));
  EXPECT_GT(p.resumed_units, 0u);
  EXPECT_LT(p.resumed_units, 600u);
  WorkerPoolConfig pcfg;
  pcfg.workers = 2;
  WorkerPool pool(mgr, pcfg);
  pool.start();
  JobProgress done;
  wait_terminal(mgr, id, done);
  JobState state = JobState::kQueued;
  std::string result, error;
  ASSERT_TRUE(mgr.result(id, state, result, error)) << error;
  pool.stop_join();
  EXPECT_EQ(result, local_fuzz_result(7, 600));
  std::filesystem::remove_all(dir);
}

TEST(Recovery, TerminalJobsStayQueryableAfterRestart) {
  const std::string dir = temp_dir("term");
  ServeConfig scfg;
  scfg.journal_dir = dir;
  std::string expected;
  std::uint64_t id = 0;
  {
    JobManager mgr(scfg);
    WorkerPoolConfig pcfg;
    pcfg.workers = 2;
    WorkerPool pool(mgr, pcfg);
    pool.start();
    std::string error;
    bool rejected = false;
    id = mgr.submit(fuzz_spec(5, 300), 0, error, rejected);
    ASSERT_NE(id, 0u);
    JobProgress p;
    wait_terminal(mgr, id, p);
    JobState state = JobState::kQueued;
    ASSERT_TRUE(mgr.result(id, state, expected, error));
    pool.stop_join();
  }
  JobManager mgr(scfg);
  (void)mgr.recover();
  JobState state = JobState::kQueued;
  std::string result, error;
  ASSERT_TRUE(mgr.result(id, state, result, error)) << error;
  EXPECT_EQ(state, JobState::kDone);
  EXPECT_EQ(result, expected);
  // New submissions must not collide with recovered ids.
  bool rejected = false;
  const std::uint64_t next = mgr.submit(fuzz_spec(1, 100), 0, error, rejected);
  EXPECT_GT(next, id);
  mgr.stop();
  std::filesystem::remove_all(dir);
}

TEST(Recovery, FingerprintMismatchFailsTheJobInsteadOfGuessing) {
  const std::string dir = temp_dir("fpmm");
  ServeConfig scfg;
  scfg.journal_dir = dir;
  scfg.checkpoint_every = 1;
  std::uint64_t id = 0;
  {
    JobManager mgr(scfg);
    std::string error;
    bool rejected = false;
    id = mgr.submit(fuzz_spec(7, 600), 0, error, rejected);
    ASSERT_NE(id, 0u);
    drive_shards(mgr, 6);
    mgr.flush_journals();
    mgr.stop();
  }
  // Corrupt the identity the snapshots belong to.
  const std::string path = JobJournal(dir).path_for(id);
  std::ifstream in(path);
  std::stringstream edited;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("fingerprint ", 0) == 0) {
      line = "fingerprint {\"backend\":\"fuzz\",\"tampered\":true}";
    }
    edited << line << '\n';
  }
  in.close();
  std::ofstream(path) << edited.str();
  JobManager mgr(scfg);
  (void)mgr.recover();
  JobProgress p;
  ASSERT_TRUE(mgr.status(id, p));
  EXPECT_EQ(p.state, JobState::kFailed);
  EXPECT_FALSE(p.error.empty());
  mgr.stop();
  std::filesystem::remove_all(dir);
}

// --- the socket server -----------------------------------------------------

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(path.size(), sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << path << ": " << std::strerror(errno);
  return fd;
}

Json rpc(int fd, const Json& req) {
  EXPECT_TRUE(write_frame(fd, req.dump()));
  std::string payload;
  EXPECT_EQ(read_frame(fd, payload), FrameRead::kOk);
  Json res;
  std::string error;
  EXPECT_TRUE(Json::parse(payload, res, error)) << error;
  return res;
}

struct ServerFixture {
  std::string sock;
  CampaignServer server;
  explicit ServerFixture(ServerConfig cfg = make_config())
      : sock(cfg.socket_path), server(std::move(cfg)) {
    std::vector<std::string> notes;
    std::string error;
    EXPECT_TRUE(server.start(notes, error)) << error;
  }
  ~ServerFixture() { server.stop(); }
  static ServerConfig make_config() {
    static std::atomic<int> counter{0};
    ServerConfig cfg;
    cfg.socket_path = ::testing::TempDir() + "mcan-serve-test-" +
                      std::to_string(::getpid()) + "-" +
                      std::to_string(counter.fetch_add(1)) + ".sock";
    cfg.pool.workers = 2;
    return cfg;
  }
};

TEST(Server, SubmitRunsToTheSameBytesAsALocalRun) {
  ServerFixture fx;
  const int fd = connect_unix(fx.sock);
  EXPECT_TRUE(rpc(fd, make_request("ping")).find("ok")->as_bool());
  Json submit = make_request("submit");
  submit.set("spec", fuzz_spec(7, 600));
  const Json res = rpc(fd, submit);
  ASSERT_TRUE(res.find("ok")->as_bool()) << res.dump();
  const long long id = res.find("id")->as_int();
  Json status = make_request("status");
  status.set("id", Json(id));
  for (int i = 0; i < 6000; ++i) {
    const Json s = rpc(fd, status);
    ASSERT_TRUE(s.find("ok")->as_bool());
    const std::string state = s.find("job")->find("state")->as_string();
    if (state == "done") break;
    ASSERT_NE(state, "failed") << s.dump();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Json result = make_request("result");
  result.set("id", Json(id));
  const Json r = rpc(fd, result);
  ASSERT_TRUE(r.find("ok")->as_bool()) << r.dump();
  EXPECT_EQ(r.find("result")->as_string(), local_fuzz_result(7, 600));
  const Json stats = rpc(fd, make_request("stats"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  const Json* body = stats.find("stats");
  ASSERT_NE(body, nullptr);
  for (const char* key :
       {"workers", "capacity", "jobs", "queue_depth", "shards", "throughput",
        "per_job"}) {
    EXPECT_NE(body->find(key), nullptr) << "stats missing " << key;
  }
  EXPECT_GE(body->find("throughput")->find("units_merged")->as_int(), 600);
  ::close(fd);
}

TEST(Server, RejectsMalformedInputWithoutDying) {
  ServerFixture fx;
  const int fd = connect_unix(fx.sock);
  // Bytes that do not parse.
  ASSERT_TRUE(write_frame(fd, "this is not json"));
  std::string payload;
  ASSERT_EQ(read_frame(fd, payload), FrameRead::kOk);
  Json res;
  std::string error;
  ASSERT_TRUE(Json::parse(payload, res, error));
  EXPECT_FALSE(res.find("ok")->as_bool());
  // A non-object request.
  ASSERT_TRUE(write_frame(fd, "[1,2,3]"));
  ASSERT_EQ(read_frame(fd, payload), FrameRead::kOk);
  ASSERT_TRUE(Json::parse(payload, res, error));
  EXPECT_FALSE(res.find("ok")->as_bool());
  // Wrong protocol version.
  Json req = make_request("ping");
  req.set("proto", Json(99LL));
  res = rpc(fd, req);
  EXPECT_FALSE(res.find("ok")->as_bool());
  // Unknown request type.
  res = rpc(fd, make_request("frobnicate"));
  EXPECT_FALSE(res.find("ok")->as_bool());
  EXPECT_NE(res.find("error")->as_string().find("unknown"),
            std::string::npos);
  // The connection survived all of the above.
  EXPECT_TRUE(rpc(fd, make_request("ping")).find("ok")->as_bool());
  ::close(fd);
}

TEST(Server, OversizedFramesAreRejectedAndTheConnectionDropped) {
  ServerFixture fx;
  const int fd = connect_unix(fx.sock);
  const unsigned char prefix[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(fd, prefix, 4), 4);
  std::string payload;
  ASSERT_EQ(read_frame(fd, payload), FrameRead::kOk);
  Json res;
  std::string error;
  ASSERT_TRUE(Json::parse(payload, res, error));
  EXPECT_FALSE(res.find("ok")->as_bool());
  // The server cannot skip a 2 GiB body, so the connection is closed.
  EXPECT_EQ(read_frame(fd, payload), FrameRead::kEof);
  ::close(fd);
  // A fresh connection still works.
  const int fd2 = connect_unix(fx.sock);
  EXPECT_TRUE(rpc(fd2, make_request("ping")).find("ok")->as_bool());
  ::close(fd2);
}

TEST(Server, ServesConcurrentClients) {
  ServerFixture fx;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&fx, &failures] {
      const int fd = connect_unix(fx.sock);
      for (int i = 0; i < 25; ++i) {
        const Json res = rpc(fd, make_request(i % 2 ? "ping" : "stats"));
        const Json* ok = res.find("ok");
        if (ok == nullptr || !ok->as_bool()) failures.fetch_add(1);
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- throughput (env-gated: the CI container is single-core) ---------------

TEST(Throughput, FourWorkersBeatOneByThreeX) {
  if (std::getenv("MCAN_SERVE_PERF") == nullptr) {
    GTEST_SKIP() << "set MCAN_SERVE_PERF=1 on a >= 4-core machine";
  }
  const auto timed = [](int workers) {
    const auto t0 = std::chrono::steady_clock::now();
    const ServeRun run = run_serve(fuzz_spec(1, 20000), workers);
    EXPECT_EQ(run.progress.state, JobState::kDone);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const double one = timed(1);
  const double four = timed(4);
  EXPECT_GE(one / four, 3.0) << "1 worker: " << one << " s, 4 workers: "
                             << four << " s";
}

}  // namespace
}  // namespace mcan
