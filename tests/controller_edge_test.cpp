// Edge-case controller tests: oversized DLC codes, remote-frame
// request/response traffic, intermission disturbances, error-passive
// receivers, and recovery of the bus after a fake start of frame.
#include <gtest/gtest.h>

#include "invariant_gtest.hpp"

#include "core/network.hpp"
#include "fault/scripted.hpp"
#include "frame/encoder.hpp"

namespace mcan {
namespace {

TEST(ControllerEdge, OversizedDlcCarriesEightBytesOnTheWire) {
  // DLC 9..15 is legal on the wire and means 8 data bytes (ISO 11898).
  Frame f;
  f.id = 0x123;
  f.dlc = 12;
  for (int i = 0; i < 8; ++i) {
    f.data[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);
  }
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.node(0).enqueue(f);
  ASSERT_TRUE(net.run_until_quiet());
  ASSERT_EQ(net.deliveries(1).size(), 1u);
  const Frame& rx = net.deliveries(1)[0].frame;
  EXPECT_EQ(rx.dlc, 12) << "the code itself is preserved";
  EXPECT_EQ(rx.payload().size(), 8u);
  EXPECT_EQ(rx.data[7], 8);
  // Wire length equals a dlc=8 frame apart from the DLC bits themselves.
  EXPECT_EQ(unstuffed_body(f).size(),
            static_cast<std::size_t>(body_bits_for(64)));
}

TEST(ControllerEdge, RemoteFrameRequestResponse) {
  // Classic RTR usage: node 1 answers a remote request for id 0x155 with
  // the matching data frame.
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  const std::uint8_t value[] = {0x42, 0x99};
  net.node(1).add_delivery_handler([&net, &value](const Frame& f, BitTime) {
    if (f.remote && f.id == 0x155) {
      net.node(1).enqueue(Frame::make_data(0x155, value));
    }
  });
  net.node(0).enqueue(Frame::make_remote(0x155, 2));
  ASSERT_TRUE(net.run_until_quiet());
  // Node 2 saw the request and the answer.
  ASSERT_EQ(net.deliveries(2).size(), 2u);
  EXPECT_TRUE(net.deliveries(2)[0].frame.remote);
  EXPECT_FALSE(net.deliveries(2)[1].frame.remote);
  EXPECT_EQ(net.deliveries(2)[1].frame.data[0], 0x42);
}

TEST(ControllerEdge, FakeSofInIntermissionRecovers) {
  // A phantom dominant at a node's third intermission bit makes it parse a
  // nonexistent frame; the resulting error frame delays the bus but every
  // later frame still arrives everywhere exactly once.
  Network net(3, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 1;
  t.seg = Seg::Intermission;
  t.index = 2;
  inj.add(t);
  net.set_injector(inj);
  net.node(0).enqueue(Frame::make_blank(0x100, 1));
  net.node(0).enqueue(Frame::make_blank(0x101, 1));
  ASSERT_TRUE(net.run_until_quiet(60000));
  EXPECT_TRUE(inj.all_fired());
  ASSERT_EQ(net.deliveries(2).size(), 2u);
  EXPECT_EQ(net.deliveries(1).size(), 2u);
}

TEST(ControllerEdge, FakeSofWhileIdleRecovers) {
  Network net(3, ProtocolParams::major_can(5));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  FaultTarget t;
  t.node = 2;
  t.seg = Seg::Idle;
  t.index = 0;
  inj.add(t);
  net.set_injector(inj);
  net.sim().run(5);  // the idle phantom fires immediately
  net.node(0).enqueue(Frame::make_blank(0x100, 1));
  ASSERT_TRUE(net.run_until_quiet(60000));
  EXPECT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.deliveries(2).size(), 1u);
}

TEST(ControllerEdge, ErrorPassiveReceiverStillAcksAndDelivers) {
  Network net(2, ProtocolParams::standard_can());
  ScopedInvariants net_invariants(net);
  net.node(1).force_error_counters(0, 130);
  EXPECT_EQ(net.node(1).fc_state(), FcState::ErrorPassive);
  net.node(0).enqueue(Frame::make_blank(0x42, 1));
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.deliveries(1).size(), 1u);
  EXPECT_EQ(net.log().count(EventKind::TxSuccess, 0), 1u)
      << "the passive receiver's ACK still satisfies the transmitter";
  EXPECT_EQ(net.node(1).rec(), 119)
      << "a successful reception resets REC below the passive limit "
         "(ISO 11898: >127 becomes 119..127)";
  EXPECT_EQ(net.node(1).fc_state(), FcState::ErrorActive);
}

TEST(ControllerEdge, ReplacePendingSupersedesQueuedOnly) {
  EventLog log;
  ControllerConfig cfg;
  cfg.id = 0;
  CanController node(cfg, log);
  Frame a = Frame::make_blank(0x100, 1);
  a.data[0] = 1;
  Frame b = a;
  b.data[0] = 2;
  node.enqueue(a);
  EXPECT_TRUE(node.replace_pending(b)) << "idle: the queued frame is fair game";
  Frame c = Frame::make_blank(0x200, 1);
  EXPECT_FALSE(node.replace_pending(c)) << "no matching id queued";
  EXPECT_EQ(node.pending_tx(), 1u);
}

TEST(ControllerEdge, MajorCanDlc0FrameEndGame) {
  // The shortest possible frame still carries the full end-game.
  Network net(4, ProtocolParams::major_can(5));
  ScopedInvariants net_invariants(net);
  ScriptedFaults inj;
  inj.add(FaultTarget::eof_bit(1, 7));  // second sub-field
  net.set_injector(inj);
  net.node(0).enqueue(Frame::make_blank(0x001, 0));
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.deliveries(i).size(), 1u) << "node " << i;
  }
  EXPECT_EQ(net.log().count(EventKind::ExtendedFlagStart, 1), 1u);
}

}  // namespace
}  // namespace mcan
