// Edge-case tests for the higher-level baselines: timer paths (RELCAN
// relay after missing CONFIRM, TOTCAN discard after missing ACCEPT),
// deduplication under relay storms, id bands, and overhead accounting.
#include <gtest/gtest.h>

#include "fault/scripted.hpp"
#include "higher/higher_network.hpp"

namespace mcan {
namespace {

TEST(RelcanEdge, TimeoutRelayFiresWhenConfirmNeverComes) {
  // Crash the sender right after the DATA frame succeeds: no CONFIRM is
  // ever sent; every receiver's timer must expire and the relay must keep
  // the message alive everywhere.
  HigherNetwork net(HigherKind::Relcan, 4, HostParams{400});
  net.host(0).broadcast(MessageKey{0, 1});
  // The tagged DATA frame is ~86 wire bits: crash just after it completes,
  // before the CONFIRM can go out.
  net.link().sim().schedule_crash(0, 95);
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check({1, 2, 3});
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.host(i).app_deliveries().size(), 1u) << "node " << i;
  }
  // At least one relay happened (timeout path), maybe several (every
  // waiting receiver relays).
  EXPECT_GE(net.extra_frames(), 1);
}

TEST(RelcanEdge, ConfirmSuppressesRelays) {
  HigherNetwork net(HigherKind::Relcan, 4, HostParams{400});
  net.host(0).broadcast(MessageKey{0, 1});
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.extra_frames(), 1) << "only the CONFIRM, no relays";
}

TEST(TotcanEdge, MissingAcceptDiscardsEverywhere) {
  // Crash the sender after DATA but before the ACCEPT: receivers must
  // discard the pending message on timeout — consistently undelivered.
  HigherNetwork net(HigherKind::Totcan, 4, HostParams{400});
  net.host(0).broadcast(MessageKey{0, 1});
  net.link().sim().schedule_crash(0, 95);  // after DATA, before ACCEPT
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check({1, 2, 3});
  EXPECT_EQ(rep.agreement_violations, 0) << rep.summary();
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(net.host(i).app_deliveries().size(), 0u)
        << "node " << i << " must drop the unaccepted message";
  }
}

TEST(TotcanEdge, HeadOfLineBlockingUntilAccept) {
  // Two messages from two senders; the first sender's ACCEPT is what
  // releases both in order at every node.  Delivery times must not precede
  // the corresponding ACCEPT's success on the wire.
  HigherNetwork net(HigherKind::Totcan, 4, HostParams{800});
  net.host(0).broadcast(MessageKey{0, 1});
  net.host(1).broadcast(MessageKey{1, 1});
  ASSERT_TRUE(net.run_until_quiet());
  auto rep = net.check();
  EXPECT_TRUE(rep.atomic_broadcast()) << rep.summary();
  // Every node delivered both messages in the same order.
  auto js = net.journals();
  const auto& ref = js.at(2);
  ASSERT_EQ(ref.size(), 2u);
  for (const auto& [node, j] : js) {
    ASSERT_EQ(j.size(), 2u) << "node " << node;
    EXPECT_EQ(j[0].key, ref[0].key) << "node " << node;
    EXPECT_EQ(j[1].key, ref[1].key) << "node " << node;
  }
}

TEST(EdcanEdge, RelayStormIsDeduplicated) {
  // 6 nodes: one broadcast triggers 5 relays; every host must still
  // deliver exactly once.
  HigherNetwork net(HigherKind::Edcan, 6);
  net.host(0).broadcast(MessageKey{0, 1});
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.extra_frames(), 5);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(net.host(i).app_deliveries().size(), 1u) << "node " << i;
  }
  auto rep = net.check();
  EXPECT_EQ(rep.duplicate_deliveries, 0);
}

TEST(EdcanEdge, RelaysDoNotRelayRelays) {
  // Receiving a relayed copy of an already-seen message must not trigger
  // another relay: the extra-frame count stays at N-1 per broadcast.
  HigherNetwork net(HigherKind::Edcan, 5);
  net.host(0).broadcast(MessageKey{0, 1});
  ASSERT_TRUE(net.run_until_quiet());
  net.host(1).broadcast(MessageKey{1, 1});
  ASSERT_TRUE(net.run_until_quiet());
  EXPECT_EQ(net.extra_frames(), 2 * 4);
}

TEST(HigherEdge, ControlFramesOutrankData) {
  // A CONFIRM queued while another node has DATA pending must win
  // arbitration (control id band 0x080+ < data band 0x100+).
  HigherNetwork net(HigherKind::Relcan, 4, HostParams{600});
  net.host(0).broadcast(MessageKey{0, 1});
  net.run(20);
  net.host(1).broadcast(MessageKey{1, 1});  // queues DATA during frame 1
  ASSERT_TRUE(net.run_until_quiet());
  // After node 0's DATA finishes, its CONFIRM contends with node 1's DATA
  // and must come first on the bus.  Verify via the link-level journal of
  // a third node: kinds in order DATA(0), CONFIRM(0), DATA(1), CONFIRM(1).
  std::vector<MsgKind> kinds;
  for (const Delivery& d : net.link().deliveries(3)) {
    if (auto tag = parse_tag(d.frame)) kinds.push_back(tag->kind);
  }
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], MsgKind::Data);
  EXPECT_EQ(kinds[1], MsgKind::Confirm);
  EXPECT_EQ(kinds[2], MsgKind::Data);
  EXPECT_EQ(kinds[3], MsgKind::Confirm);
}

TEST(HigherEdge, BusyReflectsOutstandingTimers) {
  HigherNetwork net(HigherKind::Relcan, 3, HostParams{5000});
  ScriptedFaults inj;
  net.link().set_injector(inj);
  net.host(0).broadcast(MessageKey{0, 1});
  net.run(70);  // DATA delivered, CONFIRM likely still pending/queued
  // Eventually everything drains and no host stays busy.
  ASSERT_TRUE(net.run_until_quiet());
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(net.host(i).busy());
}

}  // namespace
}  // namespace mcan
