// Unit tests for the util module: levels, bit vectors, RNG, text helpers.
#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "util/bit.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace mcan {
namespace {

TEST(Level, WiredAndDominantWins) {
  EXPECT_EQ(Level::Dominant & Level::Dominant, Level::Dominant);
  EXPECT_EQ(Level::Dominant & Level::Recessive, Level::Dominant);
  EXPECT_EQ(Level::Recessive & Level::Dominant, Level::Dominant);
  EXPECT_EQ(Level::Recessive & Level::Recessive, Level::Recessive);
}

TEST(Level, FlipInverts) {
  EXPECT_EQ(flip(Level::Dominant), Level::Recessive);
  EXPECT_EQ(flip(Level::Recessive), Level::Dominant);
}

TEST(Level, LogicalMapping) {
  // CAN: dominant = logical 0, recessive = logical 1.
  EXPECT_FALSE(logical(Level::Dominant));
  EXPECT_TRUE(logical(Level::Recessive));
  EXPECT_EQ(level_of(false), Level::Dominant);
  EXPECT_EQ(level_of(true), Level::Recessive);
}

TEST(Level, CharRoundTrip) {
  EXPECT_EQ(level_char(Level::Dominant), 'd');
  EXPECT_EQ(level_char(Level::Recessive), 'r');
  EXPECT_EQ(level_from_char('d'), Level::Dominant);
  EXPECT_EQ(level_from_char('R'), Level::Recessive);
  EXPECT_EQ(level_from_char('0'), Level::Dominant);
  EXPECT_EQ(level_from_char('1'), Level::Recessive);
  EXPECT_THROW(level_from_char('x'), std::invalid_argument);
}

TEST(BitVec, FromStringSkipsSpaces) {
  BitVec v = BitVec::from_string("r r d d");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], Level::Recessive);
  EXPECT_EQ(v[2], Level::Dominant);
  EXPECT_EQ(v.to_string(), "rrdd");
}

TEST(BitVec, AppendUintMsbFirst) {
  BitVec v;
  v.append_uint(0b1011, 4);
  EXPECT_EQ(v.to_string(), "rdrr");  // 1=r, 0=d
  EXPECT_EQ(v.read_uint(0, 4), 0b1011u);
}

TEST(BitVec, ReadUintOutOfRangeThrows) {
  BitVec v;
  v.append_uint(3, 2);
  EXPECT_THROW(v.read_uint(1, 2), std::out_of_range);
}

TEST(BitVec, AppendRepeatedAndConcat) {
  BitVec v;
  v.append_repeated(Level::Recessive, 3);
  BitVec w = BitVec::from_string("dd");
  v.append(w);
  EXPECT_EQ(v.to_string(), "rrrdd");
}

TEST(Rng, Deterministic) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 1);
  Rng b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(4);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, SplitIndependence) {
  Rng base(99, 1);
  Rng a = base.split(1);
  Rng b = base.split(2);
  std::set<std::uint32_t> seen;
  int collisions = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++collisions;
  }
  EXPECT_LT(collisions, 4);
}

TEST(Text, PadRight) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");  // never truncates
}

TEST(Text, Sci) {
  EXPECT_EQ(sci(8.8e-3, 3), "8.80e-03");
  EXPECT_EQ(sci(1e-6, 1), "1e-06");
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Text, RenderTableAligns) {
  std::string t = render_table({{"h1", "h2"}, {"aaa", "b"}});
  EXPECT_NE(t.find("h1"), std::string::npos);
  EXPECT_NE(t.find("aaa"), std::string::npos);
}

TEST(Text, JsonEscapeNamedEscapes) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("\b\t\n\f\r"), "\\b\\t\\n\\f\\r");
}

TEST(Text, JsonEscapeEveryControlCharacter) {
  // All of 0x01..0x1f must come out escaped — raw control bytes inside a
  // string literal are invalid JSON.
  for (int c = 1; c < 0x20; ++c) {
    const std::string escaped = json_escape(std::string(1, static_cast<char>(c)));
    EXPECT_EQ(escaped[0], '\\') << "control char " << c << " left raw";
    EXPECT_GE(escaped.size(), 2u);
  }
  // ... and 0x7f and beyond pass through untouched (UTF-8 stays UTF-8).
  EXPECT_EQ(json_escape("\x7f\xc3\xa9"), "\x7f\xc3\xa9");
}

TEST(Text, JsonNumberFiniteValuesRoundTrip) {
  EXPECT_EQ(json_number(0), "0");
  EXPECT_EQ(std::stod(json_number(0.1)), 0.1);  // %.17g is exact for doubles
  EXPECT_EQ(std::stod(json_number(-2.5e-300)), -2.5e-300);
}

TEST(Text, JsonNumberNonFiniteSentinels) {
  // NaN/Infinity are not valid JSON numbers; json_number writes quoted
  // sentinels that serve/proto's Json::as_double converts back.
  EXPECT_EQ(json_number(std::nan("")), "\"NaN\"");
  EXPECT_EQ(json_number(HUGE_VAL), "\"Infinity\"");
  EXPECT_EQ(json_number(-HUGE_VAL), "\"-Infinity\"");
}

}  // namespace
}  // namespace mcan
