// The paper's figure scenarios, asserted outcome by outcome.  These tests
// are the heart of the reproduction: each one checks that our simulated bus
// reproduces exactly the behaviour the corresponding figure describes.
#include <gtest/gtest.h>

#include "scenario/figures.hpp"

namespace mcan {
namespace {

// --- Fig. 1: the classic scenarios on standard CAN ---

TEST(Fig1, A_LastBitErrorIsConsistent) {
  auto r = run_fig1a(ProtocolParams::standard_can());
  EXPECT_TRUE(r.faults_all_fired);
  EXPECT_TRUE(r.consistent_single_delivery()) << r.summary();
  EXPECT_EQ(r.tx_attempts, 1) << "the overload rule avoids retransmission";
  EXPECT_EQ(r.tx_success, 1);
}

TEST(Fig1, B_DoubleReception) {
  auto r = run_fig1b(ProtocolParams::standard_can());
  EXPECT_TRUE(r.faults_all_fired);
  EXPECT_TRUE(r.double_reception()) << r.summary();
  EXPECT_FALSE(r.imo());
  // X (nodes 1,2) got it once, Y (nodes 3,4) twice.
  EXPECT_EQ(r.deliveries[1], 1);
  EXPECT_EQ(r.deliveries[2], 1);
  EXPECT_EQ(r.deliveries[3], 2);
  EXPECT_EQ(r.deliveries[4], 2);
  EXPECT_EQ(r.tx_attempts, 2) << "transmitter retransmitted";
}

TEST(Fig1, C_TransmitterCrashGivesImo) {
  auto r = run_fig1c(ProtocolParams::standard_can());
  EXPECT_TRUE(r.faults_all_fired);
  EXPECT_TRUE(r.tx_crashed);
  EXPECT_TRUE(r.imo()) << r.summary();
  EXPECT_EQ(r.deliveries[1], 0) << "X never gets the frame";
  EXPECT_EQ(r.deliveries[2], 0);
  EXPECT_EQ(r.deliveries[3], 1) << "Y keeps its copy";
  EXPECT_EQ(r.deliveries[4], 1);
}

// --- Fig. 2: MinorCAN fixes the Fig. 1 scenarios ---

TEST(Fig2, MinorCanFixesFig1a) {
  auto r = run_fig1a(ProtocolParams::minor_can());
  EXPECT_TRUE(r.consistent_single_delivery()) << r.summary();
  EXPECT_EQ(r.tx_attempts, 1) << "primary-error rule avoids retransmission";
}

TEST(Fig2, MinorCanFixesFig1b) {
  auto r = run_fig1b(ProtocolParams::minor_can());
  EXPECT_TRUE(r.consistent_single_delivery()) << r.summary();
  EXPECT_FALSE(r.double_reception()) << "Y is obliged to reject";
  EXPECT_EQ(r.tx_attempts, 2) << "transmitter retransmits for everyone";
}

TEST(Fig2, MinorCanFixesFig1c) {
  auto r = run_fig1c(ProtocolParams::minor_can());
  // Everyone rejected the first copy; the crash before retransmission means
  // nobody has it: consistent (all-or-none), no IMO.
  EXPECT_FALSE(r.imo()) << r.summary();
  EXPECT_FALSE(r.double_reception());
  for (int i = 1; i <= 4; ++i) EXPECT_EQ(r.deliveries[static_cast<std::size_t>(i)], 0);
}

// --- Fig. 3: the new scenarios defeat CAN and MinorCAN ---

TEST(Fig3, A_StandardCanSuffersImoWithoutTxFailure) {
  auto r = run_fig3(ProtocolParams::standard_can());
  EXPECT_TRUE(r.faults_all_fired);
  EXPECT_TRUE(r.imo()) << r.summary();
  EXPECT_EQ(r.tx_attempts, 1) << "no retransmission: tx saw a clean frame";
  EXPECT_EQ(r.tx_success, 1) << "the transmitter remained correct";
  EXPECT_EQ(r.deliveries[1], 0);
  EXPECT_EQ(r.deliveries[2], 0);
  EXPECT_EQ(r.deliveries[3], 1);
  EXPECT_EQ(r.deliveries[4], 1);
}

TEST(Fig3, B_MinorCanSuffersImoToo) {
  auto r = run_fig3(ProtocolParams::minor_can());
  EXPECT_TRUE(r.faults_all_fired);
  EXPECT_TRUE(r.imo()) << r.summary();
  EXPECT_EQ(r.tx_attempts, 1);
  EXPECT_EQ(r.tx_success, 1);
  // Y decides "primary" and accepts; X rejected.
  EXPECT_EQ(r.deliveries[3], 1);
  EXPECT_EQ(r.deliveries[4], 1);
  EXPECT_EQ(r.deliveries[1], 0);
  EXPECT_EQ(r.deliveries[2], 0);
}

TEST(Fig3, MajorCanSurvivesTheSamePattern) {
  auto r = run_fig3(ProtocolParams::major_can(5));
  EXPECT_FALSE(r.imo()) << r.summary();
  EXPECT_FALSE(r.double_reception());
}

// --- Fig. 4: MajorCAN_5 per-position behaviour ---

TEST(Fig4, BehaviourTableMatchesPaper) {
  const int m = 5;
  auto rows = run_fig4(m);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(1 + 2 * m));

  // Row 0: CRC error -> 6-bit flag, no sampling, rejected.
  EXPECT_EQ(rows[0].error_at, "CRC error");
  EXPECT_EQ(rows[0].flag, "6-bit error flag");
  EXPECT_FALSE(rows[0].sampling);
  EXPECT_EQ(rows[0].verdict, "frame is rejected");

  // Rows 1..m: first sub-field -> 6-bit flag + sampling.
  for (int k = 1; k <= m; ++k) {
    SCOPED_TRACE("EOF bit " + std::to_string(k));
    EXPECT_EQ(rows[static_cast<std::size_t>(k)].flag, "6-bit error flag");
    EXPECT_TRUE(rows[static_cast<std::size_t>(k)].sampling);
  }

  // Rows m+1..2m: second sub-field -> extended flag, frame accepted.
  for (int k = m + 1; k <= 2 * m; ++k) {
    SCOPED_TRACE("EOF bit " + std::to_string(k));
    EXPECT_EQ(rows[static_cast<std::size_t>(k)].flag, "extended error flag");
    EXPECT_FALSE(rows[static_cast<std::size_t>(k)].sampling);
    EXPECT_EQ(rows[static_cast<std::size_t>(k)].verdict, "frame is accepted");
  }
}

// --- Fig. 5: MajorCAN_5 consistency under five errors ---

TEST(Fig5, MajorCan5ConsistentUnderFiveErrors) {
  auto r = run_fig5(5);
  EXPECT_TRUE(r.faults_all_fired) << "all five scripted disturbances fired";
  EXPECT_TRUE(r.consistent_single_delivery()) << r.summary();
  EXPECT_EQ(r.tx_attempts, 1) << "transmitter accepted via extended flag";
  EXPECT_EQ(r.tx_success, 1);
}

TEST(Fig5, ScalesWithM) {
  for (int m : {4, 5, 6}) {
    auto r = run_fig5(m);
    EXPECT_TRUE(r.consistent_single_delivery())
        << "m=" << m << ": " << r.summary();
  }
}

// --- CAN5: total order ---

TEST(Order, StandardCanViolatesTotalOrder) {
  auto r = run_order_scenario(ProtocolParams::standard_can());
  EXPECT_GT(r.order_inversions, 0) << r.summary();
  EXPECT_GT(r.duplicate_deliveries, 0) << "Y sees A twice (A,B,A)";
}

TEST(Order, MajorCanPreservesTotalOrder) {
  auto r = run_order_scenario(ProtocolParams::major_can(5));
  EXPECT_EQ(r.order_inversions, 0) << r.summary();
  EXPECT_EQ(r.duplicate_deliveries, 0);
}

TEST(Order, MinorCanPreservesTotalOrderHere) {
  auto r = run_order_scenario(ProtocolParams::minor_can());
  EXPECT_EQ(r.order_inversions, 0) << r.summary();
  EXPECT_EQ(r.duplicate_deliveries, 0);
}

// --- the error-passive impairment from the introduction ---

TEST(ErrorPassive, PassiveFlagIsInvisibleAndBreaksAgreement) {
  auto r = run_error_passive_scenario(/*switch_off_at_warning=*/false);
  EXPECT_EQ(r.tx_attempts, 1) << "transmitter never learns of the error";
  EXPECT_EQ(r.deliveries[1], 0) << "the passive node misses the frame";
  EXPECT_EQ(r.deliveries[2], 1);
  EXPECT_EQ(r.deliveries[3], 1);
  EXPECT_TRUE(r.imo()) << r.summary();
}

TEST(ErrorPassive, WarningSwitchOffKeepsConnectedNodesConsistent) {
  auto r = run_error_passive_scenario(/*switch_off_at_warning=*/true);
  // Node 1 disconnected itself at the warning limit: among connected nodes
  // the broadcast is consistent.
  EXPECT_EQ(r.deliveries[2], 1);
  EXPECT_EQ(r.deliveries[3], 1);
  EXPECT_EQ(r.deliveries[1], 0) << "disconnected, by design";
}

}  // namespace
}  // namespace mcan
